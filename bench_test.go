// Benchmarks regenerating every table and figure of the paper's evaluation
// (one target per panel; see DESIGN.md's per-experiment index). Each
// iteration runs the corresponding experiment at Small scale and reports
// the tables through b.Log, so `go test -bench=. -benchmem` both times the
// harness and emits the reproduced numbers.
package blinkml_test

import (
	"testing"

	"blinkml/internal/experiments"
)

const benchSeed = 1

func benchWorkload(b *testing.B, id string, accs []float64) experiments.Workload {
	b.Helper()
	w, err := experiments.WorkloadByID(id)
	if err != nil {
		b.Fatal(err)
	}
	if accs != nil {
		w.Accuracies = accs
	}
	return w
}

// fig5Bench runs one Figure 5 / Table 4 panel.
func fig5Bench(b *testing.B, id string) {
	w := benchWorkload(b, id, nil)
	for i := 0; i < b.N; i++ {
		t, err := experiments.RunFig5(w, experiments.Small, 2, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkFig5SpeedupLinGas(b *testing.B)    { fig5Bench(b, "lin-gas") }
func BenchmarkFig5SpeedupLinPower(b *testing.B)  { fig5Bench(b, "lin-power") }
func BenchmarkFig5SpeedupLRCriteo(b *testing.B)  { fig5Bench(b, "lr-criteo") }
func BenchmarkFig5SpeedupLRHiggs(b *testing.B)   { fig5Bench(b, "lr-higgs") }
func BenchmarkFig5SpeedupMEMnist(b *testing.B)   { fig5Bench(b, "me-mnist") }
func BenchmarkFig5SpeedupMEYelp(b *testing.B)    { fig5Bench(b, "me-yelp") }
func BenchmarkFig5SpeedupPPCAMnist(b *testing.B) { fig5Bench(b, "ppca-mnist") }
func BenchmarkFig5SpeedupPPCAHiggs(b *testing.B) { fig5Bench(b, "ppca-higgs") }

// fig6Bench runs one Figure 6 / Table 5 panel.
func fig6Bench(b *testing.B, id string) {
	w := benchWorkload(b, id, nil)
	for i := 0; i < b.N; i++ {
		t, err := experiments.RunFig6(w, experiments.Small, 5, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkFig6GuaranteeLinGas(b *testing.B)    { fig6Bench(b, "lin-gas") }
func BenchmarkFig6GuaranteeLinPower(b *testing.B)  { fig6Bench(b, "lin-power") }
func BenchmarkFig6GuaranteeLRCriteo(b *testing.B)  { fig6Bench(b, "lr-criteo") }
func BenchmarkFig6GuaranteeLRHiggs(b *testing.B)   { fig6Bench(b, "lr-higgs") }
func BenchmarkFig6GuaranteeMEMnist(b *testing.B)   { fig6Bench(b, "me-mnist") }
func BenchmarkFig6GuaranteeMEYelp(b *testing.B)    { fig6Bench(b, "me-yelp") }
func BenchmarkFig6GuaranteePPCAMnist(b *testing.B) { fig6Bench(b, "ppca-mnist") }
func BenchmarkFig6GuaranteePPCAHiggs(b *testing.B) { fig6Bench(b, "ppca-higgs") }

// fig7Bench runs Figure 7 / Tables 6–7 for one workload.
func fig7Bench(b *testing.B, id string) {
	w := benchWorkload(b, id, nil)
	for i := 0; i < b.N; i++ {
		eff, effc, err := experiments.RunFig7(w, experiments.Small, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + eff.String() + "\n" + effc.String())
		}
	}
}

func BenchmarkFig7StrategiesLinPower(b *testing.B) { fig7Bench(b, "lin-power") }
func BenchmarkFig7StrategiesLRCriteo(b *testing.B) { fig7Bench(b, "lr-criteo") }

func BenchmarkFig8DimensionSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		overhead, genErr, iters, err := experiments.RunFig8(experiments.Small, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + overhead.String() + "\n" + genErr.String() + "\n" + iters.String())
		}
	}
}

func BenchmarkFig9aVarianceTightness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.RunFig9a(experiments.Small, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkFig9bStatsMethods(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.RunFig9b(experiments.Small, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkFig10Hyperparam(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.RunFig10(experiments.Small, benchSeed, 5)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkFig11aRegularization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.RunFig11a(experiments.Small, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkFig11bNumParams(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.RunFig11b(experiments.Small, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}
