// Command blinkml trains an approximate model with an accuracy contract on
// one of the synthetic paper workloads and prints the contract, the chosen
// sample size, and the realized difference against a fully trained model —
// the Figure-1 interaction in CLI form.
//
// Usage:
//
//	blinkml -model logistic -data criteo -rows 20000 -dim 500 -accuracy 0.95 -delta 0.05
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"blinkml"
)

func main() {
	var (
		modelName = flag.String("model", "logistic", "model class: linear | logistic | maxent | poisson | ppca")
		dataName  = flag.String("data", "criteo", "dataset: gas | power | criteo | higgs | mnist | yelp | counts")
		rows      = flag.Int("rows", 20000, "synthetic rows (0 = dataset default)")
		dim       = flag.Int("dim", 0, "feature dimension (0 = dataset default)")
		accuracy  = flag.Float64("accuracy", 0.95, "requested accuracy (1-ε)")
		delta     = flag.Float64("delta", 0.05, "allowed violation probability δ")
		reg       = flag.Float64("reg", 0.001, "L2 regularization coefficient")
		classes   = flag.Int("classes", 10, "classes for maxent")
		factors   = flag.Int("factors", 4, "factors for ppca")
		n0        = flag.Int("n0", 1000, "initial sample size")
		seed      = flag.Int64("seed", 1, "random seed")
		compare   = flag.Bool("compare-full", true, "also train the full model and report the realized difference")
	)
	flag.Parse()
	if err := run(*modelName, *dataName, *rows, *dim, *accuracy, *delta, *reg, *classes, *factors, *n0, *seed, *compare); err != nil {
		fmt.Fprintln(os.Stderr, "blinkml:", err)
		os.Exit(1)
	}
}

func run(modelName, dataName string, rows, dim int, accuracy, delta, reg float64, classes, factors, n0 int, seed int64, compare bool) error {
	var spec blinkml.ModelSpec
	switch strings.ToLower(modelName) {
	case "linear":
		spec = blinkml.LinearRegression(reg)
	case "logistic":
		spec = blinkml.LogisticRegression(reg)
	case "maxent":
		spec = blinkml.MaxEntropy(classes, reg)
	case "poisson":
		spec = blinkml.PoissonRegression(reg)
	case "ppca":
		spec = blinkml.PPCA(factors)
	default:
		return fmt.Errorf("unknown model %q", modelName)
	}

	ds, err := blinkml.SyntheticDataset(dataName, rows, dim, seed)
	if err != nil {
		return err
	}
	cfg := blinkml.Config{
		Epsilon:           1 - accuracy,
		Delta:             delta,
		Seed:              seed,
		InitialSampleSize: n0,
	}
	fmt.Printf("dataset %s: %d rows, %d features\n", dataName, ds.Len(), ds.Dim)
	fmt.Printf("contract: accuracy >= %.4g%% with probability >= %.4g%%\n", 100*accuracy, 100*(1-delta))

	model, err := blinkml.Train(spec, ds, cfg)
	if err != nil {
		return err
	}
	d := model.Diag
	fmt.Printf("\napproximate model (%s):\n", spec.Name())
	fmt.Printf("  sample size        %d of %d (%.2f%%)\n", model.SampleSize, model.PoolSize, 100*float64(model.SampleSize)/float64(model.PoolSize))
	fmt.Printf("  estimated epsilon  %.5f\n", model.EstimatedEpsilon)
	fmt.Printf("  initial model used %v\n", model.UsedInitialModel)
	fmt.Printf("  phases             init %v | stats %v | search %v | final %v\n",
		d.InitialTrain.Round(1e6), d.Statistics.Round(1e6), d.SampleSearch.Round(1e6), d.FinalTrain.Round(1e6))
	fmt.Printf("  total              %v\n", d.Total().Round(1e6))

	if !compare {
		return nil
	}
	full, err := blinkml.TrainFull(spec, ds, cfg)
	if err != nil {
		return err
	}
	env := blinkml.NewEnv(ds, cfg)
	v := model.Diff(full, env.Holdout)
	fmt.Printf("\nfull model (for comparison):\n")
	fmt.Printf("  realized difference v = %.5f (contract ε = %.5f) — %s\n",
		v, cfg.Epsilon, verdict(v <= cfg.Epsilon))
	return nil
}

func verdict(ok bool) string {
	if ok {
		return "contract met"
	}
	return "CONTRACT MISSED"
}
