// Command blinkml trains an approximate model with an accuracy contract on
// one of the synthetic paper workloads and prints the contract, the chosen
// sample size, and the realized difference against a fully trained model —
// the Figure-1 interaction in CLI form.
//
// Usage:
//
//	blinkml -model logistic -data criteo -rows 20000 -dim 500 -accuracy 0.95 -delta 0.05
//
// With -json the result is emitted as a single machine-readable JSON
// document using the same response structs blinkml-serve returns.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"blinkml"
	"blinkml/internal/compute"
	"blinkml/internal/modelio"
	"blinkml/internal/obs"
	"blinkml/internal/serve"
	"blinkml/internal/store"
)

func main() {
	var (
		modelName = flag.String("model", "logistic", "model class: linear | logistic | maxent | poisson | ppca")
		dataName  = flag.String("data", "criteo", "synthetic dataset: gas | power | criteo | higgs | mnist | yelp | counts")
		storeDir  = flag.String("store", "", "dataset store directory (enables -dataset)")
		datasetID = flag.String("dataset", "", "train against a stored dataset id instead of -data (out of core: only sampled rows are read)")
		rows      = flag.Int("rows", 20000, "synthetic rows (0 = dataset default)")
		dim       = flag.Int("dim", 0, "feature dimension (0 = dataset default)")
		accuracy  = flag.Float64("accuracy", 0.95, "requested accuracy (1-ε)")
		delta     = flag.Float64("delta", 0.05, "allowed violation probability δ")
		reg       = flag.Float64("reg", 0.001, "L2 regularization coefficient")
		classes   = flag.Int("classes", 10, "classes for maxent")
		factors   = flag.Int("factors", 4, "factors for ppca")
		n0        = flag.Int("n0", 1000, "initial sample size")
		seed      = flag.Int64("seed", 1, "random seed")
		compare   = flag.Bool("compare-full", true, "also train the full model and report the realized difference")
		jsonOut   = flag.Bool("json", false, "emit the result as JSON (blinkml-serve response structs)")
		par       = flag.Int("parallelism", 0, "compute-pool degree for all training kernels (0 = GOMAXPROCS)")
	)
	flag.Parse()
	compute.SetParallelism(*par)
	if err := run(*modelName, *dataName, *storeDir, *datasetID, *rows, *dim, *accuracy, *delta, *reg, *classes, *factors, *n0, *seed, *compare, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "blinkml:", err)
		os.Exit(1)
	}
}

func run(modelName, dataName, storeDir, datasetID string, rows, dim int, accuracy, delta, reg float64, classes, factors, n0 int, seed int64, compare, jsonOut bool) error {
	var spec blinkml.ModelSpec
	switch strings.ToLower(modelName) {
	case "linear":
		spec = blinkml.LinearRegression(reg)
	case "logistic":
		spec = blinkml.LogisticRegression(reg)
	case "maxent":
		spec = blinkml.MaxEntropy(classes, reg)
	case "poisson":
		spec = blinkml.PoissonRegression(reg)
	case "ppca":
		spec = blinkml.PPCA(factors)
	default:
		return fmt.Errorf("unknown model %q", modelName)
	}

	src, err := openSource(dataName, storeDir, datasetID, rows, dim, seed)
	if err != nil {
		return err
	}
	meta := src.Meta()
	cfg := blinkml.Config{
		Epsilon:           1 - accuracy,
		Delta:             delta,
		Seed:              seed,
		InitialSampleSize: n0,
	}
	if !jsonOut {
		fmt.Printf("dataset %s: %d rows, %d features\n", meta.Name, meta.Rows, meta.Dim)
		fmt.Printf("contract: accuracy >= %.4g%% with probability >= %.4g%%\n", 100*accuracy, 100*(1-delta))
	}

	// The run ledger meters the whole invocation (training and, with
	// -compare, the full-data train) so -json reports carry the same
	// resource attribution as server jobs. Bound to this goroutine so the
	// context-free kernel and store layers can charge it.
	ledger := obs.NewLedger()
	ctx := obs.WithLedger(context.Background(), ledger)
	unbind := obs.BindLedger(ledger)
	defer unbind()

	model, err := blinkml.TrainSource(ctx, spec, src, cfg)
	if err != nil {
		return err
	}
	d := model.Diag

	// In text mode the approximate results print before the (slow) full
	// comparison train — the whole point is that the user sees them early.
	if !jsonOut {
		fmt.Printf("\napproximate model (%s):\n", spec.Name())
		fmt.Printf("  sample size        %d of %d (%.2f%%)\n", model.SampleSize, model.PoolSize, 100*float64(model.SampleSize)/float64(model.PoolSize))
		fmt.Printf("  estimated epsilon  %.5f\n", model.EstimatedEpsilon)
		fmt.Printf("  initial model used %v\n", model.UsedInitialModel)
		fmt.Printf("  phases             init %v | stats %v | search %v | final %v\n",
			d.InitialTrain.Round(1e6), d.Statistics.Round(1e6), d.SampleSearch.Round(1e6), d.FinalTrain.Round(1e6))
		fmt.Printf("  total              %v\n", d.Total().Round(1e6))
	}

	var full *serve.FullComparison
	if compare {
		// The comparison trains on the entire pool — the one step that
		// materializes all N rows, store-backed or not.
		env, err := blinkml.NewEnvFromSource(src, cfg)
		if err != nil {
			return err
		}
		fullRes, err := env.TrainFull(spec, cfg.Optimizer)
		if err != nil {
			return err
		}
		fullModel := &blinkml.Model{Spec: spec, Theta: fullRes.Theta}
		v := model.Diff(fullModel, env.Holdout())
		full = &serve.FullComparison{RealizedDiff: v, ContractMet: v <= cfg.Epsilon}
	}

	if jsonOut {
		sj, err := modelio.SpecToJSON(model.Spec)
		if err != nil {
			return err
		}
		report := serve.RunReport{
			Dataset:  serve.DatasetInfo{Name: meta.Name, Rows: meta.Rows, Dim: meta.Dim},
			Contract: serve.Contract{Epsilon: cfg.Epsilon, Delta: delta},
			Model: serve.ModelInfo{
				Spec:             sj,
				Dim:              meta.Dim,
				SampleSize:       model.SampleSize,
				PoolSize:         model.PoolSize,
				EstimatedEpsilon: model.EstimatedEpsilon,
				UsedInitialModel: model.UsedInitialModel,
			},
			Phases:    serve.NewPhaseBreakdown(d),
			Full:      full,
			Resources: ledger.Snapshot(),
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}

	if full != nil {
		fmt.Printf("\nfull model (for comparison):\n")
		fmt.Printf("  realized difference v = %.5f (contract ε = %.5f) — %s\n",
			full.RealizedDiff, cfg.Epsilon, verdict(full.ContractMet))
	}
	return nil
}

// openSource resolves the training data: a stored dataset id when given
// (reading rows on demand), a synthetic workload otherwise.
func openSource(dataName, storeDir, datasetID string, rows, dim int, seed int64) (blinkml.DataSource, error) {
	if datasetID == "" {
		return blinkml.SyntheticDataset(dataName, rows, dim, seed)
	}
	if storeDir == "" {
		return nil, fmt.Errorf("-dataset needs -store pointing at the dataset store directory")
	}
	st, err := store.Open(storeDir)
	if err != nil {
		return nil, err
	}
	return st.Get(datasetID)
}

func verdict(ok bool) string {
	if ok {
		return "contract met"
	}
	return "CONTRACT MISSED"
}
