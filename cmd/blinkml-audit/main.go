// Command blinkml-audit drives the guarantee-audit plane of a running
// blinkml-serve instance from the shell: trigger replays of pending
// calibration records, read the per-family coverage report, and export
// the raw record/replay pairs as JSONL for offline analysis.
//
// Usage:
//
//	blinkml-audit report -addr http://localhost:8080 [-json]
//	blinkml-audit replay -addr http://localhost:8080 [-model m-000001] [-max 10]
//	blinkml-audit export -addr http://localhost:8080 [-out FILE]
//
// `report` prints one row per model family: records, replays, empirical
// coverage Pr[v ≤ ε̂] against the 1−δ target, and the mean calibration
// ratio ε̂ / realized. `replay` blocks while the server retrains the
// full-data models, so expect it to take roughly as long as the original
// jobs did.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"blinkml/internal/audit"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "report":
		err = cmdReport(os.Args[2:])
	case "replay":
		err = cmdReplay(os.Args[2:])
	case "export":
		err = cmdExport(os.Args[2:])
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "blinkml-audit: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "blinkml-audit:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `blinkml-audit inspects and drives a server's guarantee audits.

commands:
  report   per-family empirical (ε, δ) coverage against the 1−δ target
  replay   replay pending calibration records (train the full-data models)
  export   stream raw calibration records + replays as JSONL

run "blinkml-audit <command> -h" for the command's flags
`)
}

func addrFlag(fs *flag.FlagSet) *string {
	return fs.String("addr", "http://localhost:8080", "blinkml-serve base URL")
}

// getJSON decodes a GET response, surfacing non-2xx bodies as errors.
func getJSON(addr, path string, out any) error {
	resp, err := http.Get(strings.TrimRight(addr, "/") + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("GET %s: %s: %s", path, resp.Status, bytes.TrimSpace(body))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func cmdReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	addr := addrFlag(fs)
	asJSON := fs.Bool("json", false, "print the raw report JSON")
	fs.Parse(args)

	var rep audit.Report
	if err := getJSON(*addr, "/v1/audit", &rep); err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Printf("records %d  replayed %d  pending %d  failures %d\n\n",
		rep.Records, rep.Replayed, rep.Pending, rep.Failures)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "FAMILY\tRECORDS\tREPLAYED\tVIOLATIONS\tCOVERAGE\tTARGET\tCALIBRATION\tSTATUS")
	for _, fr := range rep.Families {
		status := "-"
		if fr.Replayed > 0 {
			if fr.Coverage >= fr.Target {
				status = "ok"
			} else {
				status = "BELOW TARGET"
			}
		}
		cal := "-"
		if fr.MeanCalibration > 0 {
			cal = fmt.Sprintf("%.2fx", fr.MeanCalibration)
		}
		cov := "-"
		if fr.Replayed > 0 {
			cov = fmt.Sprintf("%.3f", fr.Coverage)
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%s\t%.3f\t%s\t%s\n",
			fr.Family, fr.Records, fr.Replayed, fr.Violations, cov, fr.Target, cal, status)
	}
	return w.Flush()
}

func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	addr := addrFlag(fs)
	model := fs.String("model", "", "replay this single model ID (retries errored replays too)")
	max := fs.Int("max", 0, "replay at most this many pending records (0 = all)")
	timeout := fs.Duration("timeout", 0, "client-side timeout (0 = none; replays retrain full models)")
	fs.Parse(args)

	body, err := json.Marshal(map[string]any{"model_id": *model, "max": *max})
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: *timeout}
	resp, err := client.Post(strings.TrimRight(*addr, "/")+"/v1/audit/replay", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	var rr struct {
		Replayed int          `json:"replayed"`
		Entry    *audit.Entry `json:"entry,omitempty"`
		Error    string       `json:"error,omitempty"`
	}
	if err := json.Unmarshal(raw, &rr); err != nil {
		return fmt.Errorf("POST /v1/audit/replay: %s: %s", resp.Status, bytes.TrimSpace(raw))
	}
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("replayed %d before failing: %s", rr.Replayed, rr.Error)
	}
	fmt.Printf("replayed %d record(s)\n", rr.Replayed)
	if e := rr.Entry; e != nil && e.Replay != nil {
		fmt.Printf("%s: realized %.6f vs ε̂ %.6f (satisfied=%v, full-theta %s, %s)\n",
			e.Record.ModelID, e.Replay.Realized, e.Replay.EpsilonHat, e.Replay.Satisfied,
			e.Replay.FullThetaFNV, time.Duration(e.Replay.ElapsedMs*float64(time.Millisecond)).Round(time.Millisecond))
	}
	return nil
}

func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	addr := addrFlag(fs)
	out := fs.String("out", "", "write JSONL here instead of stdout")
	fs.Parse(args)

	var entries []audit.Entry
	if err := getJSON(*addr, "/v1/audit/records", &entries); err != nil {
		return err
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		bw := bufio.NewWriter(f)
		defer bw.Flush()
		w = bw
	}
	enc := json.NewEncoder(w)
	for _, e := range entries {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "exported %d entr(ies)\n", len(entries))
	return nil
}
