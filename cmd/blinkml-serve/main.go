// Command blinkml-serve runs the BlinkML training-and-inference HTTP
// service: an async job queue (training runs and POST /v1/tune
// hyperparameter searches) with a bounded worker pool, a model registry
// persisted to disk (so models survive restarts), and batched prediction.
//
// Usage:
//
//	blinkml-serve -addr :8080 -dir ./blinkml-models -workers 4
//
// Quick walkthrough:
//
//	curl -s localhost:8080/v1/train -d '{
//	  "model":   {"name":"logistic","reg":0.001},
//	  "dataset": {"synthetic":{"name":"criteo","rows":20000}},
//	  "epsilon": 0.05, "delta": 0.05
//	}'
//	curl -s localhost:8080/v1/jobs/j-000001
//	curl -s localhost:8080/v1/models/m-000001
//	curl -s localhost:8080/v1/models/m-000001/predict -d '{"rows":[[...]]}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"blinkml/internal/cluster"
	"blinkml/internal/obs"
	"blinkml/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		dir         = flag.String("dir", "./blinkml-models", "model registry directory")
		dataDir     = flag.String("data-dir", "", "dataset store directory (default: <dir>/datasets)")
		workers     = flag.Int("workers", 2, "training worker pool size")
		depth       = flag.Int("queue", 64, "max queued training jobs (backpressure beyond this)")
		upload      = flag.Int64("max-upload", 0, "max dataset upload bytes (0 = default 4 GiB)")
		parallelism = flag.Int("parallelism", 0, "compute-pool degree shared by all training kernels (0 = GOMAXPROCS)")
		spanLog     = flag.String("span-log", "", "append completed job spans as JSONL to this file")
		spanLogMax  = flag.Int64("span-log-max-bytes", 0, "rotate the span log past this size, keeping one .old generation (0 = unbounded)")
		auditEvery  = flag.Duration("audit-interval", 0, "background guarantee-audit pass interval (0 = on-demand only)")
		auditFrac   = flag.Float64("audit-fraction", 1, "fraction of pending jobs each background audit pass replays")
		debugAddr   = flag.String("debug-addr", "", "serve net/http/pprof and /metrics on this extra address (off by default)")
		slowMs      = flag.Float64("slow-request-ms", 0, "log a warning for requests slower than this many ms (0 = off)")
		sloMs       = flag.Float64("slo-latency-ms", obs.DefaultSLOLatencyMs, "latency threshold for the SLO attainment gauges on /metrics")
		flightDir   = flag.String("flight-dir", "", "enable the flight recorder: dump diagnostic bundles here on SLO breaches and slow requests")
		flightRing  = flag.Int("flight-ring", 0, "flight-recorder ring size (0 = default 64)")
		flightEvery = flag.Duration("flight-min-interval", 0, "minimum interval between flight-record dumps (0 = default 30s)")
		flightKeep  = flag.Int("flight-max-bundles", 0, "on-disk flight-record bundles kept after rotation (0 = default 8)")
		flightCPU   = flag.Duration("flight-cpu-profile", 0, "CPU-profile window captured into each bundle (0 = default 5s, negative = off)")

		clusterMode = flag.Bool("cluster", false, "run as a cluster coordinator: dispatch jobs to blinkml-worker processes")
		hbTimeout   = flag.Duration("cluster-heartbeat-timeout", 0, "declare a worker dead after this silence (default 6s)")
		maxAttempts = flag.Int("cluster-max-attempts", 0, "task lease attempts before a job fails (default 3)")
	)
	flag.Parse()
	var ccfg *cluster.Config
	if *clusterMode {
		ccfg = &cluster.Config{HeartbeatTimeout: *hbTimeout, MaxAttempts: *maxAttempts}
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	cfg := serve.Config{
		Dir:             *dir,
		DataDir:         *dataDir,
		Workers:         *workers,
		QueueDepth:      *depth,
		MaxUploadBytes:  *upload,
		Parallelism:     *parallelism,
		Cluster:         ccfg,
		Logger:          logger,
		SpanLog:         *spanLog,
		SpanLogMaxBytes: *spanLogMax,
		AuditInterval:   *auditEvery,
		AuditFraction:   *auditFrac,
		SlowRequestMs:   *slowMs,
		SLOLatencyMs:    *sloMs,

		FlightDir:         *flightDir,
		FlightRingSize:    *flightRing,
		FlightMinInterval: *flightEvery,
		FlightMaxBundles:  *flightKeep,
		FlightCPUProfile:  *flightCPU,
	}
	if err := run(*addr, *debugAddr, cfg, logger); err != nil {
		fmt.Fprintln(os.Stderr, "blinkml-serve:", err)
		os.Exit(1)
	}
}

func run(addr, debugAddr string, cfg serve.Config, logger *slog.Logger) error {
	s, err := serve.New(cfg)
	if err != nil {
		return err
	}
	httpServer := &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	if debugAddr != "" {
		debugServer := &http.Server{
			Addr:              debugAddr,
			Handler:           obs.DebugHandler(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			logger.Info("debug endpoint listening", "addr", debugAddr)
			if err := debugServer.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Warn("debug endpoint failed", "err", err)
			}
		}()
		defer debugServer.Close()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		mode := "local execution"
		if cfg.Cluster != nil {
			mode = "cluster coordinator"
		}
		logger.Info("blinkml-serve listening",
			"addr", addr, "registry", cfg.Dir, "models", s.Registry().Len(), "workers", cfg.Workers, "mode", mode)
		errc <- httpServer.ListenAndServe()
	}()

	select {
	case err := <-errc:
		s.Close()
		return err
	case <-ctx.Done():
		logger.Info("shutting down: draining HTTP, cancelling training jobs")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		err := httpServer.Shutdown(shutdownCtx)
		s.Close() // cancels running jobs; their contexts stop the optimizers
		if err != nil && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		return nil
	}
}
