// Command blinkml-data manages the persistent dataset store from the shell:
// import CSV/LibSVM files into the binary row format, inspect manifests,
// draw out-of-core samples, and export back to text formats. It operates on
// the same store directory blinkml-serve uses (<registry>/datasets by
// default): a running server adopts a completed CLI import on the first
// train request that names its id. (Avoid *concurrent* imports from two
// processes into one directory — each issues ids from its own counter.)
//
// Usage:
//
//	blinkml-data import  -store DIR -format csv -task binary [-name n] [-label-col -1] FILE
//	blinkml-data list    -store DIR
//	blinkml-data inspect -store DIR [-verify] ID
//	blinkml-data sample  -store DIR -n 1000 [-seed 1] [-format csv] [-out FILE] ID
//	blinkml-data export  -store DIR [-format libsvm] [-out FILE] ID
//
// Sampling is out of core: the seeded pseudorandom permutation touches only
// the n requested rows, and samples at the same seed nest — sample 100 is a
// prefix of sample 1000.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"blinkml/internal/dataset"
	"blinkml/internal/store"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "import":
		err = cmdImport(os.Args[2:])
	case "list":
		err = cmdList(os.Args[2:])
	case "inspect":
		err = cmdInspect(os.Args[2:])
	case "sample":
		err = cmdSample(os.Args[2:])
	case "export":
		err = cmdExport(os.Args[2:])
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "blinkml-data: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "blinkml-data:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `blinkml-data manages the blinkml dataset store.

commands:
  import   stream a CSV/LibSVM file into the store
  list     list stored datasets
  inspect  show a dataset's manifest (-verify checks checksums)
  sample   materialize an out-of-core sample (nested across sizes per seed)
  export   stream a dataset back out as CSV/LibSVM

run "blinkml-data <command> -h" for the command's flags
`)
}

func cmdImport(args []string) error {
	fs := flag.NewFlagSet("import", flag.ExitOnError)
	var (
		dir      = fs.String("store", "./blinkml-models/datasets", "dataset store directory")
		format   = fs.String("format", "csv", "input format: csv | libsvm")
		task     = fs.String("task", "regression", "label semantics: regression | binary | multiclass | unsupervised")
		name     = fs.String("name", "", "dataset name (default: the assigned id)")
		labelCol = fs.Int("label-col", -1, "CSV label column (negative counts from the end)")
		dim      = fs.Int("dim", 0, "declared dimension (0 = infer; LibSVM only)")
		classes  = fs.Int("classes", 0, "class count for multiclass (0 = infer from the labels)")
		maxLine  = fs.Int("max-line-bytes", 0, "line length cap (0 = 16 MiB default)")
	)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("import needs exactly one input file (or - for stdin), got %d args", fs.NArg())
	}
	t, err := dataset.ParseTask(*task)
	if err != nil {
		return err
	}
	in := os.Stdin
	if path := fs.Arg(0); path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	st, err := store.Open(*dir)
	if err != nil {
		return err
	}
	h, err := st.Ingest(in, store.IngestOptions{
		Name:         *name,
		Format:       *format,
		Task:         t,
		NumClasses:   *classes,
		LabelCol:     dataset.Column(*labelCol),
		Dim:          *dim,
		MaxLineBytes: *maxLine,
	})
	if err != nil {
		return err
	}
	man := h.Manifest()
	fmt.Printf("imported %s: %d rows × %d features (%s, %s, %.1f%% dense, %d bytes on disk)\n",
		h.ID, man.Rows, man.Dim, man.Task, man.SourceFormat, 100*man.Density(), h.DiskBytes())
	return nil
}

func cmdList(args []string) error {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	dir := fs.String("store", "./blinkml-models/datasets", "dataset store directory")
	fs.Parse(args)
	st, err := store.Open(*dir)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "ID\tNAME\tTASK\tROWS\tDIM\tFORMAT\tBYTES")
	for _, id := range st.List() {
		h, err := st.Get(id)
		if err != nil {
			continue
		}
		m := h.Manifest()
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%d\t%s\t%d\n", id, m.Name, m.Task, m.Rows, m.Dim, m.SourceFormat, h.DiskBytes())
	}
	return tw.Flush()
}

func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	var (
		dir    = fs.String("store", "./blinkml-models/datasets", "dataset store directory")
		verify = fs.Bool("verify", false, "re-read both data files and check their CRC32 checksums")
	)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("inspect needs exactly one dataset id")
	}
	st, err := store.Open(*dir)
	if err != nil {
		return err
	}
	h, err := st.Get(fs.Arg(0))
	if err != nil {
		return err
	}
	m := h.Manifest()
	fmt.Printf("id             %s\n", h.ID)
	fmt.Printf("name           %s\n", m.Name)
	fmt.Printf("task           %s\n", m.Task)
	fmt.Printf("rows × dim     %d × %d\n", m.Rows, m.Dim)
	if m.NumClasses > 0 {
		fmt.Printf("classes        %d\n", m.NumClasses)
	}
	enc := "dense"
	if m.Sparse {
		enc = "sparse"
	}
	fmt.Printf("encoding       %s, density %.4f%% (%d stored entries, %.1f nnz/row)\n",
		enc, 100*m.Density(), m.NNZ, float64(m.NNZ)/float64(m.Rows))
	fmt.Printf("labels         min %g, max %g, mean %g\n", m.LabelMin, m.LabelMax, m.LabelMean)
	fmt.Printf("disk           rows.bin %d B (crc %08x), index.bin %d B (crc %08x)\n",
		m.RowBytes, m.RowCRC32, m.IndexBytes, m.IndexCRC32)
	fmt.Printf("source         %s, imported %s\n", m.SourceFormat, m.CreatedAt.Format("2006-01-02 15:04:05 MST"))
	if *verify {
		if err := h.Verify(); err != nil {
			return err
		}
		fmt.Println("checksums      OK")
	}
	return nil
}

func cmdSample(args []string) error {
	fs := flag.NewFlagSet("sample", flag.ExitOnError)
	var (
		dir    = fs.String("store", "./blinkml-models/datasets", "dataset store directory")
		n      = fs.Int("n", 1000, "sample size")
		seed   = fs.Int64("seed", 1, "sampling seed (same seed → nested samples across sizes)")
		format = fs.String("format", "csv", "output format: csv | libsvm")
		out    = fs.String("out", "", "output path (default stdout)")
	)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("sample needs exactly one dataset id")
	}
	st, err := store.Open(*dir)
	if err != nil {
		return err
	}
	h, err := st.Get(fs.Arg(0))
	if err != nil {
		return err
	}
	ds, err := h.SamplePrefix(*seed, *n)
	if err != nil {
		return err
	}
	return writeDataset(ds, *format, *out)
}

func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	var (
		dir    = fs.String("store", "./blinkml-models/datasets", "dataset store directory")
		format = fs.String("format", "csv", "output format: csv | libsvm")
		out    = fs.String("out", "", "output path (default stdout)")
	)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("export needs exactly one dataset id")
	}
	st, err := store.Open(*dir)
	if err != nil {
		return err
	}
	h, err := st.Get(fs.Arg(0))
	if err != nil {
		return err
	}
	if *format != "csv" && *format != "libsvm" {
		return fmt.Errorf("unknown format %q (csv|libsvm)", *format)
	}
	w, closeFn, err := outWriter(*out)
	if err != nil {
		return err
	}
	defer closeFn()
	// Stream rows through one shared buffered writer — the export never
	// materializes the dataset and writes in large blocks.
	bw := bufio.NewWriterSize(w, 1<<20)
	dense := make([]float64, h.Meta().Dim)
	err = h.Scan(func(i int, row dataset.Row, label float64) error {
		if *format == "libsvm" {
			if _, err := fmt.Fprintf(bw, "%g", label); err != nil {
				return err
			}
			var werr error
			row.ForEach(func(j int, v float64) {
				if v == 0 || werr != nil {
					return
				}
				_, werr = fmt.Fprintf(bw, " %d:%g", j+1, v)
			})
			if werr != nil {
				return werr
			}
			_, err := fmt.Fprintln(bw)
			return err
		}
		for j := range dense {
			dense[j] = 0
		}
		row.AddTo(dense, 1)
		for _, v := range dense {
			if _, err := fmt.Fprintf(bw, "%g,", v); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintf(bw, "%g\n", label)
		return err
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

func writeDataset(ds *dataset.Dataset, format, out string) error {
	w, closeFn, err := outWriter(out)
	if err != nil {
		return err
	}
	defer closeFn()
	switch format {
	case "csv":
		return dataset.WriteCSV(w, ds)
	case "libsvm":
		return dataset.WriteLibSVM(w, ds)
	default:
		return fmt.Errorf("unknown format %q (csv|libsvm)", format)
	}
}

func outWriter(path string) (io.Writer, func(), error) {
	if path == "" {
		return os.Stdout, func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, func() { f.Close() }, nil
}
