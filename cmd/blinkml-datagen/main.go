// Command blinkml-datagen writes one of the synthetic paper workloads to a
// file in CSV or LibSVM format, so the datasets the experiments use can be
// inspected, shared, or fed to other systems.
//
// Usage:
//
//	blinkml-datagen -data criteo -rows 50000 -dim 2000 -format libsvm -out criteo.svm
//	blinkml-datagen -data gas -rows 10000 -format csv -out gas.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"blinkml"
)

func main() {
	var (
		dataName = flag.String("data", "criteo", "dataset: gas | power | criteo | higgs | mnist | yelp | counts | onehot")
		rows     = flag.Int("rows", 10000, "rows to generate (0 = dataset default)")
		dim      = flag.Int("dim", 0, "feature dimension (0 = dataset default)")
		nnz      = flag.Int("nnz", 0, "stored entries per row for sparse generators (0 = generator default)")
		seed     = flag.Int64("seed", 1, "random seed")
		format   = flag.String("format", "libsvm", "output format: libsvm | csv")
		out      = flag.String("out", "", "output path (default stdout)")
	)
	flag.Parse()
	if err := run(*dataName, *rows, *dim, *nnz, *seed, *format, *out); err != nil {
		fmt.Fprintln(os.Stderr, "blinkml-datagen:", err)
		os.Exit(1)
	}
}

func run(dataName string, rows, dim, nnz int, seed int64, format, out string) error {
	ds, err := blinkml.SyntheticSparseDataset(dataName, rows, dim, nnz, seed)
	if err != nil {
		return err
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch format {
	case "libsvm":
		err = blinkml.WriteLibSVM(w, ds)
	case "csv":
		err = blinkml.WriteCSV(w, ds)
	default:
		return fmt.Errorf("unknown format %q (libsvm|csv)", format)
	}
	if err != nil {
		return err
	}
	if out != "" {
		fmt.Fprintf(os.Stderr, "wrote %d rows x %d features to %s (%s)\n", ds.Len(), ds.Dim, out, format)
	}
	return nil
}
