// Command blinkml-bench regenerates the paper's evaluation tables and
// figures (Figures 5–11, Tables 4–9) on the synthetic workloads, and — with
// -json — writes a machine-readable benchmark summary (one seeded BlinkML
// training per workload: ns/op, chosen sample size, estimated ε), seeding
// the repo's BENCH_*.json performance trajectory.
//
// Usage:
//
//	blinkml-bench -list
//	blinkml-bench -experiment fig5-lr-criteo -scale medium
//	blinkml-bench -all -scale small
//	blinkml-bench -json BENCH_small.json -scale small
//	blinkml-bench -json - -scale medium     # summary to stdout
//
// With -load it instead drives a live blinkml-serve instance with the
// open-loop load harness (internal/loadgen) and appends the stepped-QPS
// sweep — coordinated-omission-safe tail latencies, achieved vs offered
// rate, max sustainable QPS under the SLO — to BENCH_load.json:
//
//	blinkml-bench -load -addr http://localhost:8080 -qps 100,200,400,800
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"blinkml/internal/compute"
	"blinkml/internal/experiments"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list available experiments")
		exp        = flag.String("experiment", "", "experiment id (see -list)")
		all        = flag.Bool("all", false, "run every experiment")
		scale      = flag.String("scale", "small", "small | medium | large")
		seed       = flag.Int64("seed", 1, "random seed")
		jsonOut    = flag.String("json", "", "run the benchmark suite and write the JSON summary to this path (\"-\" = stdout)")
		par        = flag.Int("parallelism", 0, "compute-pool degree for all training kernels (0 = GOMAXPROCS)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this path")
		memProfile = flag.String("memprofile", "", "write a heap profile to this path on exit")
		load       = flag.Bool("load", false, "run the open-loop load sweep against a live blinkml-serve (see -addr, -qps)")
	)
	lf := registerLoadFlags()
	flag.Parse()
	compute.SetParallelism(*par)

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		// fatal() runs stopProfiles before os.Exit, so an error mid-run
		// still leaves a parseable profile.
		stopCPUProfile = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
		defer stopProfiles()
	}
	if *memProfile != "" {
		writeMemProfile = func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "blinkml-bench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "blinkml-bench: memprofile:", err)
			}
		}
		defer stopProfiles()
	}

	if *list {
		for _, r := range experiments.Runners() {
			fmt.Printf("%-18s %s\n", r.ID, r.Desc)
		}
		return
	}
	if *load {
		if err := runLoad(lf, *seed); err != nil {
			fatal(err)
		}
		return
	}
	s, err := experiments.ParseScale(*scale)
	if err != nil {
		fatal(err)
	}
	switch {
	case *jsonOut != "":
		if err := writeBench(s, *seed, *jsonOut); err != nil {
			fatal(err)
		}
	case *all:
		if err := experiments.RunAll(s, *seed, os.Stdout); err != nil {
			fatal(err)
		}
	case *exp != "":
		r, err := experiments.RunnerByID(*exp)
		if err != nil {
			fatal(err)
		}
		tables, err := r.Run(s, *seed)
		if err != nil {
			fatal(err)
		}
		for _, t := range tables {
			t.Fprint(os.Stdout)
		}
	default:
		fmt.Fprintln(os.Stderr, "blinkml-bench: pass -list, -all, -experiment <id>, or -json <path>")
		os.Exit(2)
	}
}

// writeBench runs the benchmark suite and writes the JSON summary to path
// ("-" for stdout). Progress goes to stderr so a piped stdout stays pure
// JSON.
func writeBench(s experiments.Scale, seed int64, path string) error {
	fmt.Fprintf(os.Stderr, "blinkml-bench: running %s-scale benchmark suite (seed %d)\n", s, seed)
	sum, err := experiments.RunBench(s, seed)
	if err != nil {
		return err
	}
	if path == "-" {
		return sum.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := sum.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "blinkml-bench: wrote %s (%d workloads)\n", path, len(sum.Results))
	return nil
}

// stopCPUProfile and writeMemProfile are installed when the respective
// flags are set; stopProfiles runs each at most once, on normal return
// (via defer) and on fatal() alike.
var (
	stopCPUProfile  func()
	writeMemProfile func()
)

func stopProfiles() {
	if stopCPUProfile != nil {
		stopCPUProfile()
		stopCPUProfile = nil
	}
	if writeMemProfile != nil {
		writeMemProfile()
		writeMemProfile = nil
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "blinkml-bench:", err)
	stopProfiles()
	os.Exit(1)
}
