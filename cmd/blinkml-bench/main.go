// Command blinkml-bench regenerates the paper's evaluation tables and
// figures (Figures 5–11, Tables 4–9) on the synthetic workloads.
//
// Usage:
//
//	blinkml-bench -list
//	blinkml-bench -experiment fig5-lr-criteo -scale medium
//	blinkml-bench -all -scale small
package main

import (
	"flag"
	"fmt"
	"os"

	"blinkml/internal/experiments"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list available experiments")
		exp   = flag.String("experiment", "", "experiment id (see -list)")
		all   = flag.Bool("all", false, "run every experiment")
		scale = flag.String("scale", "small", "small | medium | large")
		seed  = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	if *list {
		for _, r := range experiments.Runners() {
			fmt.Printf("%-18s %s\n", r.ID, r.Desc)
		}
		return
	}
	s, err := experiments.ParseScale(*scale)
	if err != nil {
		fatal(err)
	}
	switch {
	case *all:
		if err := experiments.RunAll(s, *seed, os.Stdout); err != nil {
			fatal(err)
		}
	case *exp != "":
		r, err := experiments.RunnerByID(*exp)
		if err != nil {
			fatal(err)
		}
		tables, err := r.Run(s, *seed)
		if err != nil {
			fatal(err)
		}
		for _, t := range tables {
			t.Fprint(os.Stdout)
		}
	default:
		fmt.Fprintln(os.Stderr, "blinkml-bench: pass -list, -all, or -experiment <id>")
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "blinkml-bench:", err)
	os.Exit(1)
}
