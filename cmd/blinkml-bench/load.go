// Load mode: blinkml-bench -load points the open-loop generator at a live
// blinkml-serve instance and appends the sweep to BENCH_load.json. See
// internal/loadgen for why the harness is open-loop (coordinated omission).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"blinkml/internal/loadgen"
)

// loadFlags are registered alongside the experiment flags in main; they only
// take effect under -load.
type loadFlags struct {
	addr        *string
	model       *string
	endpoint    *string
	qps         *string
	stepDur     *time.Duration
	arrival     *string
	batch       *int
	maxInflight *int
	sloMs       *float64
	sloQuantile *float64
	sloMaxErr   *float64
	out         *string
}

func registerLoadFlags() *loadFlags {
	return &loadFlags{
		addr:        flag.String("addr", "http://localhost:8080", "blinkml-serve base URL for -load"),
		model:       flag.String("model", "", "model id to predict against (default: first registered model)"),
		endpoint:    flag.String("endpoint", "predict", "load target: predict | train"),
		qps:         flag.String("qps", "100,200,400,800", "comma-separated offered QPS steps for the sweep"),
		stepDur:     flag.Duration("step-duration", 5*time.Second, "duration of each offered-QPS step"),
		arrival:     flag.String("arrival", "constant", "arrival process: constant | poisson"),
		batch:       flag.Int("batch", 1, "rows per predict request"),
		maxInflight: flag.Int("max-inflight", 64, "max concurrent in-flight requests (the schedule is open-loop regardless)"),
		sloMs:       flag.Float64("slo-ms", 0, "SLO latency bound in ms at -slo-quantile (0 = default 250)"),
		sloQuantile: flag.Float64("slo-quantile", 0, "SLO latency quantile (0 = default 0.99)"),
		sloMaxErr:   flag.Float64("slo-max-errors", 0, "SLO max error fraction (0 = default 0.01)"),
		out:         flag.String("load-out", "BENCH_load.json", "append the sweep record to this file (\"-\" = stdout only)"),
	}
}

// parseQPSSteps parses "100,200,400" into offered rates.
func parseQPSSteps(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad QPS step %q (want a positive number)", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-qps %q has no steps", s)
	}
	return out, nil
}

// runLoad executes the -load sweep end to end.
func runLoad(lf *loadFlags, seed int64) error {
	steps, err := parseQPSSteps(*lf.qps)
	if err != nil {
		return err
	}
	arrival, err := loadgen.ParseArrival(*lf.arrival)
	if err != nil {
		return err
	}
	base := strings.TrimRight(*lf.addr, "/")

	var (
		target   loadgen.Target
		endpoint string
		modelID  string
		batch    int
	)
	switch *lf.endpoint {
	case "predict":
		t, err := loadgen.NewPredictTarget(base, *lf.model, *lf.batch, seed, *lf.maxInflight)
		if err != nil {
			return err
		}
		target = t
		endpoint = "/v1/models/{id}/predict"
		modelID = t.ModelID
		batch = t.Batch
	case "train":
		t, err := loadgen.NewTrainTarget(base, seed, *lf.maxInflight)
		if err != nil {
			return err
		}
		target = t
		endpoint = "/v1/train"
	default:
		return fmt.Errorf("unknown -endpoint %q (want predict|train)", *lf.endpoint)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	slo := loadgen.SLO{
		Quantile:     *lf.sloQuantile,
		LatencyMs:    *lf.sloMs,
		MaxErrorRate: *lf.sloMaxErr,
	}.WithDefaults()
	fmt.Fprintf(os.Stderr,
		"blinkml-bench: load sweep against %s%s (%s arrival, %v/step, SLO p%g <= %gms, err <= %g%%)\n",
		base, endpoint, arrival, *lf.stepDur, 100*slo.Quantile, slo.LatencyMs, 100*slo.MaxErrorRate)

	sweep, err := loadgen.RunSweep(ctx, target, loadgen.SweepConfig{
		StepQPS:      steps,
		StepDuration: *lf.stepDur,
		Arrival:      arrival,
		Seed:         seed,
		MaxInflight:  *lf.maxInflight,
		SLO:          slo,
		OnStep: func(r loadgen.StepResult) {
			verdict := "FAIL"
			if r.SLOOK {
				verdict = "ok"
			}
			fmt.Fprintf(os.Stderr,
				"  %8.0f QPS offered: achieved %8.1f  p50 %7.2fms  p99 %7.2fms  errs %d/%d  [%s]\n",
				r.OfferedQPS, r.AchievedQPS, r.P50Ms, r.P99Ms, r.Errors, r.Sent, verdict)
		},
	})
	if sweep != nil && len(sweep.Steps) > 0 {
		run := loadgen.NewRun(endpoint, modelID, batch, sweep, time.Now())
		if *lf.out != "" && *lf.out != "-" {
			if aerr := loadgen.AppendRun(*lf.out, run); aerr != nil {
				return aerr
			}
			fmt.Fprintf(os.Stderr, "blinkml-bench: appended sweep (%d steps, max sustainable %.0f QPS) to %s\n",
				len(sweep.Steps), sweep.MaxSustainableQPS, *lf.out)
		} else {
			fmt.Fprintf(os.Stderr, "blinkml-bench: max sustainable %.0f QPS\n", sweep.MaxSustainableQPS)
		}
	}
	return err
}
