// Command blinkml-tune runs a hyperparameter search with approximate
// models: every candidate trains under the same (ε, δ) contract on one
// shared data split, optionally with successive-halving early pruning, and
// the ranked leaderboard plus the winning configuration are printed (or
// emitted as JSON with -json).
//
// Usage:
//
//	blinkml-tune -data higgs -rows 40000 -model logistic -candidates 20 -halving
//	blinkml-tune -data higgs -grid 1e-5,1e-4,1e-3,1e-2 -json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"blinkml"
	"blinkml/internal/compute"
	"blinkml/internal/serve"
	"blinkml/internal/store"
	"blinkml/internal/tune"
)

func main() {
	var (
		modelName  = flag.String("model", "logistic", "model family: linear | logistic | maxent | poisson | ppca")
		dataName   = flag.String("data", "higgs", "synthetic dataset: gas | power | criteo | higgs | mnist | yelp | counts")
		storeDir   = flag.String("store", "", "dataset store directory (enables -dataset)")
		datasetID  = flag.String("dataset", "", "search over a stored dataset id instead of -data (out of core)")
		rows       = flag.Int("rows", 40000, "synthetic rows (0 = dataset default)")
		dim        = flag.Int("dim", 0, "feature dimension (0 = dataset default)")
		accuracy   = flag.Float64("accuracy", 0.95, "requested accuracy (1-ε) per candidate")
		delta      = flag.Float64("delta", 0.05, "allowed violation probability δ")
		grid       = flag.String("grid", "", "comma-separated explicit grid: regularization for GLMs (e.g. 1e-4,1e-3), factor counts for ppca")
		candidates = flag.Int("candidates", 12, "random candidates to draw (0 disables random search; defaults to 0 when -grid is given)")
		regMin     = flag.Float64("reg-min", 1e-6, "log-uniform regularization range lower bound")
		regMax     = flag.Float64("reg-max", 1, "log-uniform regularization range upper bound")
		classes    = flag.Int("classes", 10, "classes for maxent")
		halving    = flag.Bool("halving", false, "enable successive-halving early pruning")
		rungs      = flag.Int("rungs", 3, "successive-halving pruning rounds")
		eta        = flag.Int("eta", 2, "successive-halving rate (keep 1/eta per rung)")
		workers    = flag.Int("workers", 0, "concurrent candidate trainings (0 = auto)")
		n0         = flag.Int("n0", 1000, "initial sample size per candidate")
		seed       = flag.Int64("seed", 1, "random seed")
		jsonOut    = flag.Bool("json", false, "emit the leaderboard as JSON (blinkml-serve wire structs)")
		par        = flag.Int("parallelism", 0, "compute-pool degree for all training kernels (0 = GOMAXPROCS)")
	)
	flag.Parse()
	compute.SetParallelism(*par)

	// An explicit -grid means "search exactly these": random draws are only
	// added on top when the user also passed -candidates themselves.
	if *grid != "" {
		candidatesSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "candidates" {
				candidatesSet = true
			}
		})
		if !candidatesSet {
			*candidates = 0
		}
	}

	// Ctrl-C cancels the search cleanly: queued candidates never start and
	// running ones stop between optimizer iterations.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if err := run(ctx, config{
		model: *modelName, data: *dataName, storeDir: *storeDir, datasetID: *datasetID, rows: *rows, dim: *dim,
		epsilon: 1 - *accuracy, delta: *delta,
		grid: *grid, candidates: *candidates, regMin: *regMin, regMax: *regMax,
		classes: *classes, halving: *halving, rungs: *rungs, eta: *eta,
		workers: *workers, n0: *n0, seed: *seed, jsonOut: *jsonOut,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "blinkml-tune:", err)
		os.Exit(1)
	}
}

type config struct {
	model, data             string
	storeDir, datasetID     string
	rows, dim               int
	epsilon, delta          float64
	grid                    string
	candidates              int
	regMin, regMax          float64
	classes                 int
	halving                 bool
	rungs, eta, workers, n0 int
	seed                    int64
	jsonOut                 bool
}

func run(ctx context.Context, c config) error {
	space, err := buildSpace(c)
	if err != nil {
		return err
	}
	src, err := openSource(c)
	if err != nil {
		return err
	}
	meta := src.Meta()
	cfg := blinkml.TuneConfig{
		Train: blinkml.Config{
			Epsilon:           c.epsilon,
			Delta:             c.delta,
			Seed:              c.seed,
			InitialSampleSize: c.n0,
			TestFraction:      0.15,
		},
		Workers: c.workers,
		Halving: c.halving,
		Rungs:   c.rungs,
		Eta:     c.eta,
		Seed:    c.seed,
	}
	if !c.jsonOut {
		fmt.Printf("dataset %s: %d rows, %d features\n", meta.Name, meta.Rows, meta.Dim)
		fmt.Printf("contract per candidate: accuracy >= %.4g%% with probability >= %.4g%%\n",
			100*(1-c.epsilon), 100*(1-c.delta))
	}
	res, err := blinkml.TuneSource(ctx, space, src, cfg)
	if err != nil {
		return err
	}
	if c.jsonOut {
		tr := &tune.Result{
			Entries:   res.Leaderboard,
			Evaluated: res.Evaluated,
			Pruned:    res.Pruned,
			PoolSize:  res.PoolSize,
			Elapsed:   res.Elapsed,
		}
		rep, err := serve.NewTuneReport(tr)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	printLeaderboard(res)
	return nil
}

// openSource resolves the search's data: a stored dataset id when given
// (the whole search reads only the rows it touches), a synthetic workload
// otherwise.
func openSource(c config) (blinkml.DataSource, error) {
	if c.datasetID == "" {
		return blinkml.SyntheticDataset(c.data, c.rows, c.dim, c.seed)
	}
	if c.storeDir == "" {
		return nil, fmt.Errorf("-dataset needs -store pointing at the dataset store directory")
	}
	st, err := store.Open(c.storeDir)
	if err != nil {
		return nil, err
	}
	return st.Get(c.datasetID)
}

func buildSpace(c config) (blinkml.TuneSpace, error) {
	var space blinkml.TuneSpace
	if c.grid != "" {
		for _, f := range strings.Split(c.grid, ",") {
			reg, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return space, fmt.Errorf("bad -grid entry %q: %w", f, err)
			}
			spec, err := specFor(c.model, reg, c.classes)
			if err != nil {
				return space, err
			}
			space.Grid = append(space.Grid, spec)
		}
	}
	if c.candidates > 0 {
		space.Random = &blinkml.TuneRandomSpace{
			Model:   c.model,
			N:       c.candidates,
			RegMin:  c.regMin,
			RegMax:  c.regMax,
			Classes: c.classes,
		}
	}
	return space, nil
}

func specFor(model string, reg float64, classes int) (blinkml.ModelSpec, error) {
	switch strings.ToLower(model) {
	case "linear":
		return blinkml.LinearRegression(reg), nil
	case "logistic":
		return blinkml.LogisticRegression(reg), nil
	case "maxent":
		return blinkml.MaxEntropy(classes, reg), nil
	case "poisson":
		return blinkml.PoissonRegression(reg), nil
	case "ppca":
		f := int(reg)
		if float64(f) != reg || f < 1 {
			return nil, fmt.Errorf("ppca -grid entries are factor counts (positive integers), got %v", reg)
		}
		return blinkml.PPCA(f), nil
	default:
		return nil, fmt.Errorf("unknown model %q", model)
	}
}

func printLeaderboard(res *blinkml.TuneResult) {
	fmt.Printf("\nsearch: %d candidates, %d pruned, pool %d rows, %v total\n\n",
		res.Evaluated, res.Pruned, res.PoolSize, res.Elapsed.Round(time.Millisecond))
	fmt.Printf("%-5s %-10s %-12s %-11s %-10s %-8s %-10s %s\n",
		"rank", "model", "params", "test err", "est ε", "rung", "n", "time")
	for _, e := range res.Leaderboard {
		testErr := "-"
		if !math.IsNaN(e.TestError) {
			testErr = fmt.Sprintf("%.4f", e.TestError)
		}
		eps := "-"
		if e.EstimatedEpsilon > 0 {
			eps = fmt.Sprintf("%.4f", e.EstimatedEpsilon)
		}
		status := ""
		if e.Pruned {
			status = " (pruned)"
		}
		if e.Err != "" {
			status = " (failed: " + e.Err + ")"
		}
		fmt.Printf("%-5d %-10s %-12s %-11s %-10s %-8d %-10d %v%s\n",
			e.Rank, e.Spec.Name(), specParams(e.Spec), testErr, eps, e.Rung,
			e.SampleSize, e.Wall.Round(time.Millisecond), status)
	}
	best := res.Best
	fmt.Printf("\nwinner: %s %s — sample %d of %d, estimated ε %.4f\n",
		best.Spec.Name(), specParams(best.Spec), best.SampleSize, best.PoolSize, best.EstimatedEpsilon)
	fmt.Println("the winner carries the per-candidate (ε, δ) fidelity contract, so its")
	fmt.Println("ranking transfers to full training with high probability.")
}

// specParams renders the searched knob of a spec compactly.
func specParams(s blinkml.ModelSpec) string {
	type regged interface{ Beta() float64 }
	if r, ok := s.(regged); ok && r.Beta() > 0 {
		return fmt.Sprintf("reg=%.2e", r.Beta())
	}
	return ""
}
