// Command blinkml-worker is the cluster execution node: it registers with a
// blinkml-serve coordinator (started with -cluster), heartbeats, leases
// training and tuning-trial tasks, and executes them with the same kernels
// the in-process path uses — results are bit-identical at a fixed seed and
// parallelism. Datasets referenced by id are fetched from the coordinator
// once, verified against their checksums, and cached in -data-dir.
//
// Usage:
//
//	blinkml-worker -coordinator http://coordinator:8080 -data-dir ./worker-cache
//
// Stopping the worker (SIGINT/SIGTERM) hands in-flight tasks back to the
// coordinator for requeueing on another worker.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"blinkml/internal/cluster"
	"blinkml/internal/compute"
	"blinkml/internal/obs"
)

func main() {
	var (
		coordinator = flag.String("coordinator", "", "coordinator base URL (required), e.g. http://host:8080")
		name        = flag.String("name", "", "worker name shown in cluster status (default: hostname)")
		capacity    = flag.Int("capacity", 1, "concurrent tasks (each task already uses the full compute pool)")
		dataDir     = flag.String("data-dir", "", "dataset cache directory (default: a temporary directory)")
		parallelism = flag.Int("parallelism", 0, "compute-pool degree for training kernels (0 = GOMAXPROCS)")
		debugAddr   = flag.String("debug-addr", "", "serve net/http/pprof and /metrics on this address (off by default)")
		flightDir   = flag.String("flight-dir", "", "enable the flight recorder: dump diagnostic bundles here on deterministic task failures")
		flightCPU   = flag.Duration("flight-cpu-profile", 0, "CPU-profile window captured into each bundle (0 = default 5s, negative = off)")
	)
	flag.Parse()
	if *coordinator == "" {
		fmt.Fprintln(os.Stderr, "blinkml-worker: -coordinator is required")
		os.Exit(2)
	}
	if *parallelism > 0 {
		compute.SetParallelism(*parallelism)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	obs.RegisterRuntimeMetrics()
	if *debugAddr != "" {
		debugServer := &http.Server{
			Addr:              *debugAddr,
			Handler:           obs.DebugHandler(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			logger.Info("debug endpoint listening", "addr", *debugAddr)
			if err := debugServer.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Warn("debug endpoint failed", "err", err)
			}
		}()
		defer debugServer.Close()
	}
	var flight *obs.FlightRecorder
	if *flightDir != "" {
		fr, err := obs.NewFlightRecorder(obs.FlightConfig{
			Dir:        *flightDir,
			CPUProfile: *flightCPU,
			Logger:     logger,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "blinkml-worker:", err)
			os.Exit(1)
		}
		flight = fr
	}
	w, err := cluster.NewWorker(cluster.WorkerConfig{
		Coordinator: *coordinator,
		Name:        *name,
		Capacity:    *capacity,
		DataDir:     *dataDir,
		Log:         logger,
		Flight:      flight,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "blinkml-worker:", err)
		os.Exit(1)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := w.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "blinkml-worker:", err)
		os.Exit(1)
	}
}
