// Bring-your-own-data workflow: export a sparse dataset to the standard
// LibSVM format, load it back (as a user would load their own file), and
// train with an accuracy contract. Demonstrates the I/O layer a downstream
// adopter needs to use BlinkML on real data.
//
//	go run ./examples/libsvm
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"blinkml"
)

func main() {
	// Stand-in for "your data": write a sparse click-through dataset to a
	// LibSVM file, the format Criteo-style data usually ships in.
	src, err := blinkml.SyntheticDataset("criteo", 20000, 800, 13)
	if err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(os.TempDir(), "blinkml-example.libsvm")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := blinkml.WriteLibSVM(f, src); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%.1f MB)\n", path, float64(info.Size())/1e6)

	// Load it back the way a user would.
	in, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer in.Close()
	data, err := blinkml.ReadLibSVM(in, 0, blinkml.BinaryClassification)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d rows, %d features\n", data.Len(), data.Dim)

	cfg := blinkml.Config{Epsilon: 0.05, Delta: 0.05, Seed: 13}
	model, err := blinkml.Train(blinkml.LogisticRegression(0.001), data, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BlinkML used %d of %d rows; estimated ε = %.4f (requested 0.05)\n",
		model.SampleSize, model.PoolSize, model.EstimatedEpsilon)

	if err := os.Remove(path); err != nil {
		log.Fatal(err)
	}
}
