// Example store demonstrates the out-of-core training path: a synthetic
// dataset is written to CSV, imported into a temporary dataset store, and
// trained by handle under an (ε, δ) contract — and the run reports how few
// of the N rows the store actually had to read. It finishes by checking
// that the store-backed model is bit-identical to the in-memory one at the
// same seed: where the data lives changes the memory bill, not the answer.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"blinkml"
	"blinkml/internal/store"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const rows = 30000
	ds, err := blinkml.SyntheticDataset("higgs", rows, 20, 7)
	if err != nil {
		return err
	}

	// Round-trip through CSV so the store ingests exactly what a real
	// upload would carry.
	dir, err := os.MkdirTemp("", "blinkml-store-example")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	csvPath := filepath.Join(dir, "higgs.csv")
	f, err := os.Create(csvPath)
	if err != nil {
		return err
	}
	if err := blinkml.WriteCSV(f, ds); err != nil {
		return err
	}
	f.Close()

	st, err := store.Open(filepath.Join(dir, "datasets"))
	if err != nil {
		return err
	}
	in, err := os.Open(csvPath)
	if err != nil {
		return err
	}
	defer in.Close()
	h, err := st.Ingest(in, store.IngestOptions{
		Name:   "higgs-example",
		Format: "csv",
		Task:   blinkml.BinaryClassification,
	})
	if err != nil {
		return err
	}
	man := h.Manifest()
	fmt.Printf("imported %s: %d rows × %d features, %d bytes on disk\n",
		h.ID, man.Rows, man.Dim, h.DiskBytes())

	// Train against the handle. The pool is never loaded: a materialize
	// budget well below N turns any accidental full load into an error.
	h.LimitMaterialize(rows / 2)
	cfg := blinkml.Config{Epsilon: 0.05, Delta: 0.05, Seed: 42, InitialSampleSize: 1000}
	spec := blinkml.LogisticRegression(0.001)
	approx, err := blinkml.TrainSource(context.Background(), spec, h, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("store-backed contract: n=%d of N=%d, estimated ε=%.4f\n",
		approx.SampleSize, approx.PoolSize, approx.EstimatedEpsilon)
	fmt.Printf("rows read off disk: %d of %d (%.1f%%)\n",
		h.RowsMaterialized(), rows, 100*float64(h.RowsMaterialized())/float64(rows))

	// Same contract, same seed, fully in memory — the thetas must agree
	// exactly. The CSV round-trip is part of the check, so compare against
	// a model trained on the parsed file, not the generator's floats.
	parsed, err := os.Open(csvPath)
	if err != nil {
		return err
	}
	defer parsed.Close()
	mem, err := blinkml.ReadCSV(parsed, -1, blinkml.BinaryClassification)
	if err != nil {
		return err
	}
	inMem, err := blinkml.Train(spec, mem, cfg)
	if err != nil {
		return err
	}
	for i := range approx.Theta {
		if approx.Theta[i] != inMem.Theta[i] {
			return fmt.Errorf("theta[%d] differs: store %v vs memory %v", i, approx.Theta[i], inMem.Theta[i])
		}
	}
	fmt.Println("store-backed and in-memory training agree bit-for-bit at the same seed")
	return nil
}
