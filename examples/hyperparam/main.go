// Hyperparameter search with approximate models (the paper's §5.7
// scenario): random-search over regularization coefficients, training a
// 95%-accurate BlinkML model per configuration instead of a full model.
// Each BlinkML evaluation costs a fraction of full training, so many more
// configurations fit in the same time budget.
//
//	go run ./examples/hyperparam
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"blinkml"
)

func main() {
	data, err := blinkml.SyntheticDataset("higgs", 40000, 28, 11)
	if err != nil {
		log.Fatal(err)
	}
	cfg := blinkml.Config{Epsilon: 0.05, Delta: 0.05, Seed: 11, TestFraction: 0.15}
	env := blinkml.NewEnv(data, cfg)

	rng := rand.New(rand.NewSource(11))
	bestAcc, bestReg := 0.0, 0.0
	var elapsed time.Duration
	const configs = 12

	fmt.Printf("%-6s %-10s %-10s %-10s\n", "step", "reg", "test acc", "cum time")
	for step := 1; step <= configs; step++ {
		reg := math.Pow(10, -6+6*rng.Float64()) // log-uniform in [1e-6, 1]
		start := time.Now()
		model, err := blinkml.Train(blinkml.LogisticRegression(reg), data, cfg)
		if err != nil {
			log.Fatal(err)
		}
		elapsed += time.Since(start)
		acc := model.Accuracy(env.Test)
		if acc > bestAcc {
			bestAcc, bestReg = acc, reg
		}
		fmt.Printf("%-6d %-10.2e %-10.4f %-10v\n", step, reg, acc, elapsed.Round(1e6))
	}
	fmt.Printf("\nbest configuration: reg=%.2e with test accuracy %.2f%%\n", bestReg, 100*bestAcc)
	fmt.Println("every model above carries the (ε=0.05, δ=0.05) fidelity contract,")
	fmt.Println("so the winner's ranking transfers to full training with high probability.")
}
