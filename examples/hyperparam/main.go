// Hyperparameter search with approximate models (the paper's §5.7
// scenario): a seeded random search over regularization coefficients
// through the blinkml.Tune subsystem. Every candidate trains a
// 95%-accurate BlinkML model on the same shared train/holdout/test split —
// a fraction of full training per configuration — and successive halving
// prunes weak configurations on small nested subsamples before they ever
// cost a contract-grade training.
//
//	go run ./examples/hyperparam
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"blinkml"
)

func main() {
	data, err := blinkml.SyntheticDataset("higgs", 40000, 28, 11)
	if err != nil {
		log.Fatal(err)
	}

	space := blinkml.TuneSpace{
		Random: &blinkml.TuneRandomSpace{
			Model:  "logistic",
			N:      12,
			RegMin: 1e-6, // log-uniform in [1e-6, 1]
			RegMax: 1,
		},
	}
	cfg := blinkml.TuneConfig{
		Train: blinkml.Config{
			Epsilon:      0.05, // "95% accurate, 95% confident" per candidate
			Delta:        0.05,
			Seed:         11,
			TestFraction: 0.15,
		},
		Halving: true, // prune weak configs on small shared subsamples
		Rungs:   2,
		Eta:     2,
	}

	res, err := blinkml.Tune(context.Background(), space, data, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-6s %-10s %-10s %-8s %-10s %s\n", "rank", "reg", "test err", "rung", "n", "time")
	for _, e := range res.Leaderboard {
		testErr := "-"
		if !math.IsNaN(e.TestError) {
			testErr = fmt.Sprintf("%.4f", e.TestError)
		}
		status := ""
		if e.Pruned {
			status = "  (pruned)"
		}
		fmt.Printf("%-6d %-10.2e %-10s %-8d %-10d %v%s\n",
			e.Rank, e.Spec.Beta(), testErr, e.Rung, e.SampleSize,
			e.Wall.Round(time.Millisecond), status)
	}

	best := res.Best
	fmt.Printf("\nbest configuration: reg=%.2e with test accuracy %.2f%%\n",
		best.Spec.Beta(), 100*(1-res.Leaderboard[0].TestError))
	fmt.Printf("search: %d candidates (%d pruned early) in %v, sample %d of %d rows\n",
		res.Evaluated, res.Pruned, res.Elapsed.Round(time.Millisecond),
		best.SampleSize, best.PoolSize)
	fmt.Println("every surviving model carries the (ε=0.05, δ=0.05) fidelity contract,")
	fmt.Println("so the winner's ranking transfers to full training with high probability.")
}
