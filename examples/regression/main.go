// Regression with explicit sample-size introspection: train linear
// regression on a Gas-sensor-like workload at several accuracy targets and
// watch the automatically chosen sample size adapt (the §5.8 behaviour).
//
//	go run ./examples/regression
package main

import (
	"fmt"
	"log"

	"blinkml"
)

func main() {
	data, err := blinkml.SyntheticDataset("gas", 50000, 57, 21)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %-12s %-12s %-14s %-10s\n", "req. acc", "sample n", "pct of N", "est. epsilon", "time")
	for _, acc := range []float64{0.80, 0.90, 0.95, 0.99} {
		cfg := blinkml.Config{Epsilon: 1 - acc, Delta: 0.05, Seed: 21}
		model, err := blinkml.Train(blinkml.LinearRegression(0.001), data, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10.2f %-12d %-12.2f %-14.5f %-10v\n",
			acc, model.SampleSize,
			100*float64(model.SampleSize)/float64(model.PoolSize),
			model.EstimatedEpsilon, model.Diag.Total().Round(1e6))
	}

	// Verify the tightest contract against a fully trained model.
	cfg := blinkml.Config{Epsilon: 0.01, Delta: 0.05, Seed: 21}
	approx, err := blinkml.Train(blinkml.LinearRegression(0.001), data, cfg)
	if err != nil {
		log.Fatal(err)
	}
	full, err := blinkml.TrainFull(blinkml.LinearRegression(0.001), data, cfg)
	if err != nil {
		log.Fatal(err)
	}
	env := blinkml.NewEnv(data, cfg)
	fmt.Printf("\n99%% contract check: realized difference %.5f (<= 0.01 expected)\n",
		approx.Diff(full, env.Holdout()))
}
