// PPCA with an accuracy contract (the paper's unsupervised model class,
// Appendix C): extract principal factors from an MNIST-like image stream
// using a sample sized so that — with 95% probability — the factor loadings
// are within 1% cosine distance of what full training would produce.
//
//	go run ./examples/ppca
package main

import (
	"fmt"
	"log"
	"math"

	"blinkml"
)

func main() {
	data, err := blinkml.SyntheticDataset("mnist", 20000, 144, 3) // 12x12 images
	if err != nil {
		log.Fatal(err)
	}
	cfg := blinkml.Config{
		Epsilon: 0.01, // 99% cosine similarity to the full model's loadings
		Delta:   0.05,
		Seed:    3,
	}
	const factors = 6

	approx, err := blinkml.Train(blinkml.PPCA(factors), data, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PPCA trained on %d of %d rows; estimated 1-cosine <= %.4f\n",
		approx.SampleSize, approx.PoolSize, approx.EstimatedEpsilon)

	full, err := blinkml.TrainFull(blinkml.PPCA(factors), data, cfg)
	if err != nil {
		log.Fatal(err)
	}
	// For PPCA the model difference is parameter-space cosine distance.
	v := approx.Diff(full, nil)
	fmt.Printf("realized 1-cosine vs full model: %.5f (contract: <= %.4f)\n", v, cfg.Epsilon)

	// Report per-factor energy (column norms of the loading matrix).
	d := data.Dim
	fmt.Println("\nfactor loadings (column norms):")
	for j := 0; j < factors; j++ {
		var approxNorm, fullNorm float64
		for i := 0; i < d; i++ {
			a := approx.Theta[i*factors+j]
			f := full.Theta[i*factors+j]
			approxNorm += a * a
			fullNorm += f * f
		}
		fmt.Printf("  factor %d: approx %.3f, full %.3f\n", j, math.Sqrt(approxNorm), math.Sqrt(fullNorm))
	}
}
