// Quickstart: train a 95%-accurate logistic-regression model on a
// Criteo-like click-through workload and compare it with a fully trained
// model — the Figure-1 interaction of the paper.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"blinkml"
)

func main() {
	// A sparse click-through dataset: 30K rows, 1,000 one-hot features.
	data, err := blinkml.SyntheticDataset("criteo", 30000, 1000, 7)
	if err != nil {
		log.Fatal(err)
	}

	// The approximation contract: with probability >= 95%, the approximate
	// model predicts the same labels as the full model on >= 95% of unseen
	// examples.
	cfg := blinkml.Config{Epsilon: 0.05, Delta: 0.05, Seed: 7}

	approx, err := blinkml.Train(blinkml.LogisticRegression(0.001), data, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BlinkML trained on %d of %d rows (%.1f%%) in %v\n",
		approx.SampleSize, approx.PoolSize,
		100*float64(approx.SampleSize)/float64(approx.PoolSize),
		approx.Diag.Total().Round(1e6))

	// Train the full model the traditional way, on the same pool, to verify
	// the contract empirically.
	full, err := blinkml.TrainFull(blinkml.LogisticRegression(0.001), data, cfg)
	if err != nil {
		log.Fatal(err)
	}
	env := blinkml.NewEnv(data, cfg)
	v := approx.Diff(full, env.Holdout())
	fmt.Printf("prediction difference vs full model: %.4f (contract: <= %.4f)\n", v, cfg.Epsilon)
	fmt.Printf("holdout accuracy: approx %.2f%%, full %.2f%%\n",
		100*approx.Accuracy(env.Holdout()), 100*full.Accuracy(env.Holdout()))
}
