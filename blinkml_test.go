package blinkml

import (
	"context"
	"math"
	"testing"
)

// TestPublicAPITune drives the hyperparameter-search subsystem through the
// public surface: a mixed grid+random space with successive halving, a
// ranked leaderboard, and a contract-carrying winner that predicts.
func TestPublicAPITune(t *testing.T) {
	ds, err := SyntheticDataset("higgs", 6000, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	space := TuneSpace{
		Grid: []ModelSpec{LogisticRegression(0.001)},
		Random: &TuneRandomSpace{
			Model: "logistic", N: 7, RegMin: 1e-6, RegMax: 1,
		},
	}
	cfg := TuneConfig{
		Train: Config{
			Epsilon: 0.1, Delta: 0.05, Seed: 3,
			InitialSampleSize: 300, K: 60, TestFraction: 0.15,
		},
		Halving: true,
		Rungs:   2,
		Eta:     2,
	}
	res, err := Tune(context.Background(), space, ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated != 8 || len(res.Leaderboard) != 8 {
		t.Fatalf("evaluated %d, want 8", res.Evaluated)
	}
	if res.Pruned == 0 {
		t.Fatal("halving pruned nothing")
	}
	if math.IsNaN(res.Leaderboard[0].TestError) {
		t.Fatal("winner has no test metric")
	}
	best := res.Best
	if best == nil || best.EstimatedEpsilon <= 0 || best.EstimatedEpsilon > cfg.Train.Epsilon {
		t.Fatalf("winner %+v, want contract ε in (0, %v]", best, cfg.Train.Epsilon)
	}
	env := NewEnv(ds, cfg.Train)
	if p := best.Predict(env.Holdout().X[0]); p != 0 && p != 1 {
		t.Fatalf("winner prediction %v, want a class in {0,1}", p)
	}
	if acc := best.Accuracy(env.Test()); acc < 0.5 {
		t.Fatalf("winner test accuracy %v, want > 0.5", acc)
	}
}

func TestPublicAPIEndToEnd(t *testing.T) {
	ds, err := SyntheticDataset("higgs", 12000, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Epsilon: 0.05, Delta: 0.05, Seed: 1, InitialSampleSize: 400}
	approx, err := Train(LogisticRegression(0.01), ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if approx.SampleSize <= 0 || approx.SampleSize > approx.PoolSize {
		t.Fatalf("bad sample size %d of %d", approx.SampleSize, approx.PoolSize)
	}
	full, err := TrainFull(LogisticRegression(0.01), ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	env := NewEnv(ds, cfg)
	if v := approx.Diff(full, env.Holdout()); v > cfg.Epsilon {
		t.Fatalf("contract violated: v=%v > ε=%v", v, cfg.Epsilon)
	}
	// Predictions must be valid class labels.
	for i := 0; i < 10; i++ {
		p := approx.Predict(env.Holdout().X[i])
		if p != 0 && p != 1 {
			t.Fatalf("prediction %v not a binary label", p)
		}
	}
	if acc := approx.Accuracy(env.Holdout()); acc < 0.5 {
		t.Fatalf("holdout accuracy %v suspiciously low", acc)
	}
}

func TestPublicAPIAllModelConstructors(t *testing.T) {
	cases := []struct {
		spec ModelSpec
		data string
		dim  int
	}{
		{LinearRegression(0.001), "gas", 10},
		{LogisticRegression(0.001), "criteo", 200},
		{MaxEntropy(10, 0.001), "mnist", 36},
		{PoissonRegression(0.001), "counts", 6},
		{PPCA(3), "mnist", 25},
	}
	for _, c := range cases {
		t.Run(c.spec.Name(), func(t *testing.T) {
			ds, err := SyntheticDataset(c.data, 4000, c.dim, 7)
			if err != nil {
				t.Fatal(err)
			}
			m, err := Train(c.spec, ds, Config{Epsilon: 0.2, Seed: 2, InitialSampleSize: 300, K: 40})
			if err != nil {
				t.Fatal(err)
			}
			if len(m.Theta) == 0 {
				t.Fatal("empty parameters")
			}
			if m.EstimatedEpsilon > 0.2 {
				t.Fatalf("estimated ε %v exceeds request", m.EstimatedEpsilon)
			}
		})
	}
}

func TestPublicAPISyntheticUnknown(t *testing.T) {
	if _, err := SyntheticDataset("nope", 10, 10, 1); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestPublicAPISparseRowConstructor(t *testing.T) {
	r, err := NewSparseRow(10, []int32{2, 5}, []float64{1, -1})
	if err != nil {
		t.Fatal(err)
	}
	if r.NNZ() != 2 || r.Dim() != 10 {
		t.Fatal("sparse row misconstructed")
	}
	if _, err := NewSparseRow(10, []int32{5, 2}, []float64{1, -1}); err == nil {
		t.Fatal("out-of-order indices accepted")
	}
}

func TestPublicAPIGeneralizationError(t *testing.T) {
	ds, err := SyntheticDataset("higgs", 8000, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Epsilon: 0.1, Seed: 4, TestFraction: 0.2}
	m, err := Train(LogisticRegression(0.01), ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	env := NewEnv(ds, cfg)
	ge := m.GeneralizationError(env.Test())
	if ge < 0 || ge > 1 {
		t.Fatalf("generalization error %v out of range", ge)
	}
}
