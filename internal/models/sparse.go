package models

import "blinkml/internal/dataset"

// Fused sparse kernels for the multiclass hot path. The max-entropy model
// walks each example's features once per class — K dots for the logits, K
// scatters for the gradient — which re-reads the row's index/value arrays
// K times. The fused forms below walk the row once and keep K accumulators,
// loading each stored entry a single time. Per class, every term is still
// produced by the same expression in the same order as the per-class loop,
// so the results are bit-identical; only memory traffic changes.

// maxFusedClasses bounds the stack-allocated per-class scratch of the fused
// kernels; class counts beyond it fall back to the per-class loops.
const maxFusedClasses = 16

// logitsInto fills z[c] = θ_cᵀx for all k classes, where class c occupies
// theta[c*d : (c+1)*d]. Sparse rows take the single-pass fused path; every
// other row type computes the per-class dots directly.
func logitsInto(theta []float64, x dataset.Row, k, d int, z []float64) {
	sp, ok := x.(*dataset.SparseRow)
	if !ok {
		for c := 0; c < k; c++ {
			z[c] = x.Dot(theta[c*d : (c+1)*d])
		}
		return
	}
	z = z[:k]
	for c := range z {
		z[c] = 0
	}
	idx := sp.Idx
	val := sp.Val[:len(idx)]
	for t, j := range idx {
		v := val[t]
		off := int(j)
		for c := range z {
			z[c] += v * theta[c*d+off]
		}
	}
}

// scatterGrad accumulates coef[c]·x into class block c of grad for every
// class with a non-zero coefficient. Zero coefficients skip their block
// entirely, exactly as the unfused per-class AddTo guard does; each touched
// slot receives the same single update `grad[slot] += coef*v` either way.
func scatterGrad(grad []float64, coef []float64, x dataset.Row, k, d int) {
	sp, ok := x.(*dataset.SparseRow)
	if !ok || k > maxFusedClasses {
		for c := 0; c < k; c++ {
			if coef[c] != 0 {
				x.AddTo(grad[c*d:(c+1)*d], coef[c])
			}
		}
		return
	}
	var offs [maxFusedClasses]int
	var cs [maxFusedClasses]float64
	m := 0
	for c := 0; c < k; c++ {
		if coef[c] != 0 {
			offs[m] = c * d
			cs[m] = coef[c]
			m++
		}
	}
	idx := sp.Idx
	val := sp.Val[:len(idx)]
	for t, j := range idx {
		v := val[t]
		for a := 0; a < m; a++ {
			grad[offs[a]+int(j)] += cs[a] * v
		}
	}
}
