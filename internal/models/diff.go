package models

import (
	"math"

	"blinkml/internal/dataset"
	"blinkml/internal/linalg"
)

// Diff computes the model difference v between two parameter vectors of the
// same model class on a holdout set (the paper's diff MCS method, §2.1 and
// Appendix C):
//
//   - classification: the disagreement rate E[1{m_a(x) ≠ m_b(x)}];
//   - regression: the RMS prediction difference normalized by the RMS of
//     the first model's predictions (substitution S6 — makes 1−v read as a
//     relative accuracy, as the paper's plots do);
//   - unsupervised (PPCA): 1 − cosine(θ_a, θ_b) on flattened parameters.
//
// The result is clamped to [0, 1] for classification and unsupervised
// tasks; the normalized regression difference is clamped to [0, 1] as well
// since a 100% relative deviation already means "no fidelity left".
//
// A spec implementing Differ overrides the default metric entirely (the
// experiments use this to reproduce the paper's unnormalized Appendix-C
// regression difference where the figure calls for it).
func Diff(spec Spec, thetaA, thetaB []float64, holdout *dataset.Dataset) float64 {
	if d, ok := spec.(Differ); ok {
		return d.Diff(thetaA, thetaB, holdout)
	}
	switch spec.Task() {
	case dataset.Unsupervised:
		return clamp01(1 - linalg.Cosine(thetaA, thetaB))
	case dataset.BinaryClassification, dataset.MultiClassification:
		return classificationDiff(spec, thetaA, thetaB, holdout)
	default:
		return regressionDiff(spec, thetaA, thetaB, holdout)
	}
}

// Differ lets a spec supply its own model-difference metric v(m_a, m_b).
// Implementations must return values in [0, 1] with v(θ, θ) = 0.
type Differ interface {
	Diff(thetaA, thetaB []float64, holdout *dataset.Dataset) float64
}

// AbsoluteRMSDiff returns the paper's Appendix-C unnormalized regression
// difference sqrt(E[(m_a(x) − m_b(x))²]) scaled by 1/scale and clamped to
// [0, 1], for callers that need an absolute rather than relative tolerance.
func AbsoluteRMSDiff(spec Spec, thetaA, thetaB []float64, holdout *dataset.Dataset, scale float64) float64 {
	n := holdout.Len()
	if n == 0 {
		return 0
	}
	var sq float64
	for i := 0; i < n; i++ {
		d := spec.Predict(thetaA, holdout.X[i]) - spec.Predict(thetaB, holdout.X[i])
		sq += d * d
	}
	if scale <= 0 {
		scale = 1
	}
	return clamp01(math.Sqrt(sq/float64(n)) / scale)
}

func classificationDiff(spec Spec, thetaA, thetaB []float64, holdout *dataset.Dataset) float64 {
	n := holdout.Len()
	if n == 0 {
		return 0
	}
	disagree := 0
	for i := 0; i < n; i++ {
		if spec.Predict(thetaA, holdout.X[i]) != spec.Predict(thetaB, holdout.X[i]) {
			disagree++
		}
	}
	return float64(disagree) / float64(n)
}

func regressionDiff(spec Spec, thetaA, thetaB []float64, holdout *dataset.Dataset) float64 {
	n := holdout.Len()
	if n == 0 {
		return 0
	}
	var sqDiff, sqBase float64
	for i := 0; i < n; i++ {
		a := spec.Predict(thetaA, holdout.X[i])
		b := spec.Predict(thetaB, holdout.X[i])
		d := a - b
		sqDiff += d * d
		sqBase += a * a
	}
	base := math.Sqrt(sqBase / float64(n))
	if base < 1e-12 {
		base = 1e-12
	}
	return clamp01(math.Sqrt(sqDiff/float64(n)) / base)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Accuracy returns the fraction of holdout rows whose predicted label
// matches the true label (classification tasks only).
func Accuracy(spec Spec, theta []float64, ds *dataset.Dataset) float64 {
	n := ds.Len()
	if n == 0 {
		return math.NaN()
	}
	correct := 0
	for i := 0; i < n; i++ {
		if spec.Predict(theta, ds.X[i]) == ds.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(n)
}

// GeneralizationError returns the test error: misclassification rate for
// classification, normalized RMSE for regression.
func GeneralizationError(spec Spec, theta []float64, ds *dataset.Dataset) float64 {
	switch spec.Task() {
	case dataset.BinaryClassification, dataset.MultiClassification:
		return 1 - Accuracy(spec, theta, ds)
	default:
		n := ds.Len()
		if n == 0 {
			return math.NaN()
		}
		var sq, base float64
		for i := 0; i < n; i++ {
			d := spec.Predict(theta, ds.X[i]) - ds.Y[i]
			sq += d * d
			base += ds.Y[i] * ds.Y[i]
		}
		denom := math.Sqrt(base / float64(n))
		if denom < 1e-12 {
			denom = 1e-12
		}
		return math.Sqrt(sq/float64(n)) / denom
	}
}

// GeneralizationBound is Lemma 1 of the paper: given the approximate
// model's generalization error εg and the model-difference bound ε, the
// full model's generalization error is at most εg + ε − εg·ε with
// probability ≥ 1−δ.
func GeneralizationBound(epsG, eps float64) float64 {
	return epsG + eps - epsG*eps
}
