package models

import (
	"math"

	"blinkml/internal/dataset"
)

// ScoreModel is implemented by models whose prediction depends on x only
// through a small vector of linear scores s_c = θ_cᵀx. The Sample Size
// Estimator exploits this to precompute holdout scores once and then probe
// many candidate sample sizes with O(1) work per example (the §4.3 spirit
// of avoiding redundant computation across the binary search).
type ScoreModel interface {
	// NumScores returns the score-vector length (1 for GLMs, K for the
	// max-entropy classifier).
	NumScores(paramDim, featureDim int) int
	// Scores fills out[c] = θ[c·d:(c+1)·d]ᵀ·x.
	Scores(theta []float64, x dataset.Row, out []float64)
	// PredictScores maps a score vector to the model's prediction; it must
	// agree with Predict(θ, x) when given Scores(θ, x).
	PredictScores(scores []float64) float64
}

// NumScores implements ScoreModel.
func (LinearRegression) NumScores(paramDim, featureDim int) int { return 1 }

// Scores implements ScoreModel.
func (LinearRegression) Scores(theta []float64, x dataset.Row, out []float64) {
	out[0] = x.Dot(theta)
}

// PredictScores implements ScoreModel.
func (LinearRegression) PredictScores(scores []float64) float64 { return scores[0] }

// NumScores implements ScoreModel.
func (LogisticRegression) NumScores(paramDim, featureDim int) int { return 1 }

// Scores implements ScoreModel.
func (LogisticRegression) Scores(theta []float64, x dataset.Row, out []float64) {
	out[0] = x.Dot(theta)
}

// PredictScores implements ScoreModel.
func (LogisticRegression) PredictScores(scores []float64) float64 {
	if scores[0] >= 0 {
		return 1
	}
	return 0
}

// NumScores implements ScoreModel.
func (PoissonRegression) NumScores(paramDim, featureDim int) int { return 1 }

// Scores implements ScoreModel.
func (PoissonRegression) Scores(theta []float64, x dataset.Row, out []float64) {
	out[0] = x.Dot(theta)
}

// PredictScores implements ScoreModel.
func (PoissonRegression) PredictScores(scores []float64) float64 {
	z := scores[0]
	if z > linPredCap {
		z = linPredCap
	}
	return math.Exp(z)
}

// NumScores implements ScoreModel.
func (m MaxEntropy) NumScores(paramDim, featureDim int) int { return paramDim / featureDim }

// Scores implements ScoreModel.
func (m MaxEntropy) Scores(theta []float64, x dataset.Row, out []float64) {
	d := x.Dim()
	k := len(theta) / d
	for c := 0; c < k; c++ {
		out[c] = x.Dot(theta[c*d : (c+1)*d])
	}
}

// PredictScores implements ScoreModel.
func (m MaxEntropy) PredictScores(scores []float64) float64 {
	best, bestZ := 0, math.Inf(-1)
	for c, z := range scores {
		if z > bestZ {
			best, bestZ = c, z
		}
	}
	return float64(best)
}
