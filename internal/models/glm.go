package models

import (
	"math"

	"blinkml/internal/compute"
	"blinkml/internal/dataset"
	"blinkml/internal/linalg"
)

// scaledRow returns c*x as a Row in a parameter space of the same
// dimension, preserving sparsity. GLM per-example gradients all have the
// form qᵢ = c(θᵀxᵢ, yᵢ) · xᵢ, so this is the shared "grads" kernel.
func scaledRow(x dataset.Row, c float64) dataset.Row {
	switch r := x.(type) {
	case dataset.DenseRow:
		out := make(dataset.DenseRow, len(r))
		for i, v := range r {
			out[i] = c * v
		}
		return out
	case *dataset.SparseRow:
		val := make([]float64, len(r.Val))
		for i, v := range r.Val {
			val[i] = c * v
		}
		return &dataset.SparseRow{N: r.N, Idx: r.Idx, Val: val}
	default:
		out := make(dataset.DenseRow, x.Dim())
		x.AddTo(out, c)
		return out
	}
}

// glmHessian accumulates H = (1/n) Σ wᵢ xᵢxᵢᵀ + βI for per-example weights
// w produced by weight (the GLM closed-form Hessian shared by linear,
// logistic, and Poisson regression). The example range is chunked over
// the compute pool into per-chunk d x d partials merged in tree order:
// deterministic at a fixed parallelism degree, and the exact serial sums
// at degree 1 (where the output matrix itself is the single chunk's
// accumulator). Both triangles are accumulated on purpose — the rank-one
// updates round asymmetrically (fl(w·xₐ)·x_b vs fl(w·x_b)·xₐ), exactly
// as the serial algorithm does. Sparse datasets (chosen per-dataset by
// measured density) skip the densify and scatter each example's nnz x nnz
// block via linalg.SpOuterAdd, which replicates OuterAdd's rounding and
// zero-skip guards exactly — the two paths are bit-identical.
func glmHessian(ds *dataset.Dataset, theta []float64, beta float64, weight func(z, y float64) float64) *linalg.Dense {
	d := ds.Dim
	n := ds.Len()
	h := linalg.NewDense(d, d)
	sparse := dataset.SparsePath(ds.X)
	// The per-chunk scratch is a d x d matrix, so cap the fan-out harder
	// than the usual example grain: each chunk must amortize its scratch.
	chunks := compute.Chunks(n, 256+d)
	parts := make([][]float64, chunks)
	compute.ForChunksN(n, chunks, func(chunk, lo, hi int) {
		acc := h
		if chunk > 0 {
			acc = linalg.NewDense(d, d)
		}
		var buf []float64
		if !sparse {
			buf = make([]float64, d)
		}
		for i := lo; i < hi; i++ {
			x := ds.X[i]
			z := x.Dot(theta)
			w := weight(z, label(ds, i))
			if w == 0 {
				continue
			}
			if sparse {
				sp := x.(*dataset.SparseRow)
				linalg.SpOuterAdd(acc, w, sp.Idx, sp.Val)
				continue
			}
			linalg.Fill(buf, 0)
			x.AddTo(buf, 1)
			acc.OuterAdd(w, buf, buf)
		}
		parts[chunk] = acc.Data
	})
	compute.ReduceVecs(parts) // folds into parts[0] == h.Data
	h.ScaleInPlace(1 / float64(n))
	h.AddDiag(beta)
	return h
}

// sigmoid is the logistic function 1/(1+e^{-z}), computed stably for large
// |z|.
func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// log1pExp computes log(1+e^z) without overflow.
func log1pExp(z float64) float64 {
	if z > 35 {
		return z
	}
	if z < -35 {
		return math.Exp(z)
	}
	return math.Log1p(math.Exp(z))
}
