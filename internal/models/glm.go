package models

import (
	"math"

	"blinkml/internal/dataset"
	"blinkml/internal/linalg"
)

// scaledRow returns c*x as a Row in a parameter space of the same
// dimension, preserving sparsity. GLM per-example gradients all have the
// form qᵢ = c(θᵀxᵢ, yᵢ) · xᵢ, so this is the shared "grads" kernel.
func scaledRow(x dataset.Row, c float64) dataset.Row {
	switch r := x.(type) {
	case dataset.DenseRow:
		out := make(dataset.DenseRow, len(r))
		for i, v := range r {
			out[i] = c * v
		}
		return out
	case *dataset.SparseRow:
		val := make([]float64, len(r.Val))
		for i, v := range r.Val {
			val[i] = c * v
		}
		return &dataset.SparseRow{N: r.N, Idx: r.Idx, Val: val}
	default:
		out := make(dataset.DenseRow, x.Dim())
		x.AddTo(out, c)
		return out
	}
}

// glmHessian accumulates H = (1/n) Σ wᵢ xᵢxᵢᵀ + βI for per-example weights
// w produced by weight (the GLM closed-form Hessian shared by linear,
// logistic, and Poisson regression).
func glmHessian(ds *dataset.Dataset, theta []float64, beta float64, weight func(z, y float64) float64) *linalg.Dense {
	d := ds.Dim
	h := linalg.NewDense(d, d)
	buf := make([]float64, d)
	for i := 0; i < ds.Len(); i++ {
		x := ds.X[i]
		z := x.Dot(theta)
		w := weight(z, label(ds, i))
		if w == 0 {
			continue
		}
		linalg.Fill(buf, 0)
		x.AddTo(buf, 1)
		h.OuterAdd(w, buf, buf)
	}
	h.ScaleInPlace(1 / float64(ds.Len()))
	h.AddDiag(beta)
	return h
}

// sigmoid is the logistic function 1/(1+e^{-z}), computed stably for large
// |z|.
func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// log1pExp computes log(1+e^z) without overflow.
func log1pExp(z float64) float64 {
	if z > 35 {
		return z
	}
	if z < -35 {
		return math.Exp(z)
	}
	return math.Log1p(math.Exp(z))
}
