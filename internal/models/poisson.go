package models

import (
	"math"

	"blinkml/internal/dataset"
	"blinkml/internal/linalg"
)

// PoissonRegression is the log-link Poisson GLM, one of the MLE model
// classes the paper lists as supported (§1, §2.2).
// ℓᵢ = e^{θᵀxᵢ} − yᵢ·θᵀxᵢ (+ log yᵢ!, a constant), qᵢ = (e^{θᵀxᵢ} − yᵢ)xᵢ.
type PoissonRegression struct {
	Reg float64
}

// linPredCap keeps e^{θᵀx} finite during line-search probing; 30 already
// corresponds to a rate of ~10¹³ events, far beyond any realistic count.
const linPredCap = 30

// Name implements Spec.
func (PoissonRegression) Name() string { return "poisson" }

// Task implements Spec.
func (PoissonRegression) Task() dataset.Task { return dataset.Regression }

// ParamDim implements Spec.
func (PoissonRegression) ParamDim(ds *dataset.Dataset) int { return ds.Dim }

// Beta implements Spec.
func (m PoissonRegression) Beta() float64 { return m.Reg }

// ExampleLossGrad implements Spec.
func (PoissonRegression) ExampleLossGrad(theta []float64, x dataset.Row, y float64, gradAccum []float64) float64 {
	z := x.Dot(theta)
	if z > linPredCap {
		z = linPredCap
	}
	ez := math.Exp(z)
	if gradAccum != nil {
		x.AddTo(gradAccum, ez-y)
	}
	return ez - y*z
}

// ExampleGradRow implements Spec.
func (PoissonRegression) ExampleGradRow(theta []float64, x dataset.Row, y float64) dataset.Row {
	z := x.Dot(theta)
	if z > linPredCap {
		z = linPredCap
	}
	return scaledRow(x, math.Exp(z)-y)
}

// Predict implements Spec: the expected count λ = e^{θᵀx}.
func (PoissonRegression) Predict(theta []float64, x dataset.Row) float64 {
	z := x.Dot(theta)
	if z > linPredCap {
		z = linPredCap
	}
	return math.Exp(z)
}

// Hessian implements Hessianer: H = (1/n) Σ e^{θᵀxᵢ} xᵢxᵢᵀ + βI.
func (m PoissonRegression) Hessian(theta []float64, ds *dataset.Dataset) *linalg.Dense {
	return glmHessian(ds, theta, m.Reg, func(z, y float64) float64 {
		if z > linPredCap {
			z = linPredCap
		}
		return math.Exp(z)
	})
}
