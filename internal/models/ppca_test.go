package models

import (
	"math"
	"math/rand"
	"testing"

	"blinkml/internal/dataset"
	"blinkml/internal/linalg"
	"blinkml/internal/optimize"
)

// ppcaData generates zero-mean data from a true 2-factor PPCA model in d
// dimensions: x = W z + σ ε.
func ppcaData(rng *rand.Rand, n, d int, sigma float64) (*dataset.Dataset, *linalg.Dense) {
	q := 2
	w := linalg.NewDense(d, q)
	w.Set(0, 0, 3)
	w.Set(1, 0, 2)
	w.Set(2, 1, 2.5)
	w.Set(3, 1, -1.5)
	ds := &dataset.Dataset{Dim: d, Task: dataset.Unsupervised, Name: "ppca-synth"}
	z := make([]float64, q)
	for i := 0; i < n; i++ {
		z[0], z[1] = rng.NormFloat64(), rng.NormFloat64()
		row := make(dataset.DenseRow, d)
		for r := 0; r < d; r++ {
			row[r] = linalg.Dot(w.Row(r), z) + sigma*rng.NormFloat64()
		}
		ds.X = append(ds.X, row)
	}
	return ds, w
}

func TestPPCATrainRecoversSubspace(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	ds, trueW := ppcaData(rng, 3000, 6, 0.3)
	spec := NewPPCA(2)
	res, err := Train(spec, ds, nil, optimize.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The span of the learned loading matrix must match the true span:
	// project each true column onto the learned columns.
	w := linalg.NewDenseFrom(6, 2, res.Theta)
	for col := 0; col < 2; col++ {
		truth := make([]float64, 6)
		for r := 0; r < 6; r++ {
			truth[r] = trueW.At(r, col)
		}
		// cos of angle between truth and its projection onto span(w).
		g := linalg.MatMulTransA(w, w)
		wx := make([]float64, 2)
		w.MulTransVec(truth, wx)
		coef, err := linalg.SolveLinear(g, wx)
		if err != nil {
			t.Fatal(err)
		}
		proj := make([]float64, 6)
		w.MulVec(coef, proj)
		cos := linalg.Cosine(truth, proj)
		if cos < 0.98 {
			t.Fatalf("column %d recovered with cosine %v", col, cos)
		}
	}
	// σ² should be near the true noise variance.
	if s := spec.SigmaSq(); math.Abs(s-0.09) > 0.05 {
		t.Fatalf("sigma² = %v want ≈ 0.09", s)
	}
}

func TestPPCATrainDeterministicSigns(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	ds, _ := ppcaData(rng, 1000, 5, 0.2)
	a := NewPPCA(2)
	b := NewPPCA(2)
	ta, _, err := a.TrainCustom(ds)
	if err != nil {
		t.Fatal(err)
	}
	tb, _, err := b.TrainCustom(ds)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ta {
		if ta[i] != tb[i] {
			t.Fatal("PPCA training is not deterministic")
		}
	}
	// Two models trained on overlapping samples of the same source should
	// be cosine-close thanks to sign canonicalization.
	rng2 := rand.New(rand.NewSource(74))
	ds2, _ := ppcaData(rng2, 1000, 5, 0.2)
	c := NewPPCA(2)
	tc, _, err := c.TrainCustom(ds2)
	if err != nil {
		t.Fatal(err)
	}
	if cos := linalg.Cosine(ta, tc); cos < 0.95 {
		t.Fatalf("independently sampled PPCA models have cosine %v", cos)
	}
}

// The PPCA per-example gradient must match finite differences of the
// per-example negative log-likelihood.
func TestPPCAGradientMatchesFiniteDifferences(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	ds, _ := ppcaData(rng, 50, 4, 0.5)
	spec := NewPPCA(2)
	theta, _, err := spec.TrainCustom(ds)
	if err != nil {
		t.Fatal(err)
	}
	// Perturb away from the optimum so the gradient is non-trivial.
	for i := range theta {
		theta[i] += 0.1 * rng.NormFloat64()
	}
	small := ds.Subset([]int{0, 1, 2, 3, 4})
	got := analyticGradSum(spec, small, theta)
	want := fdGrad(spec, small, theta)
	for j := range got {
		if math.Abs(got[j]-want[j]) > 1e-3*(1+math.Abs(want[j])) {
			t.Fatalf("ppca grad[%d]=%v fd %v", j, got[j], want[j])
		}
	}
}

func TestPPCAGradRowMatchesAccumulated(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	ds, _ := ppcaData(rng, 30, 4, 0.5)
	spec := NewPPCA(2)
	theta, _, err := spec.TrainCustom(ds)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		row := spec.ExampleGradRow(theta, ds.X[i], 0)
		got := make([]float64, len(theta))
		row.AddTo(got, 1)
		want := make([]float64, len(theta))
		spec.ExampleLossGrad(theta, ds.X[i], 0, want)
		for j := range got {
			if math.Abs(got[j]-want[j]) > 1e-10 {
				t.Fatalf("row %d grad mismatch at %d", i, j)
			}
		}
	}
}

// At the MLE the mean per-example gradient should be near zero (stationary
// point of the likelihood).
func TestPPCAStationaryAtMLE(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	ds, _ := ppcaData(rng, 4000, 5, 0.4)
	spec := NewPPCA(2)
	theta, _, err := spec.TrainCustom(ds)
	if err != nil {
		t.Fatal(err)
	}
	g := analyticGradSum(spec, ds, theta)
	linalg.Scale(1/float64(ds.Len()), g)
	if n := linalg.NormInf(g); n > 0.02 {
		t.Fatalf("mean gradient at MLE = %v, want ≈ 0", n)
	}
}

func TestPPCARejectsBadShapes(t *testing.T) {
	ds := &dataset.Dataset{Dim: 3, Task: dataset.Unsupervised}
	ds.X = append(ds.X, dataset.DenseRow{1, 2, 3})
	spec := NewPPCA(5) // q >= d
	if _, _, err := spec.TrainCustom(ds); err == nil {
		t.Fatal("expected q >= d error")
	}
	spec2 := NewPPCA(2)
	if _, _, err := spec2.TrainCustom(ds); err == nil {
		t.Fatal("expected too-few-rows error")
	}
}

func TestPPCADefaultSigmaBeforeTraining(t *testing.T) {
	spec := NewPPCA(2)
	if spec.SigmaSq() != 1 {
		t.Fatalf("default sigma² = %v want 1", spec.SigmaSq())
	}
}
