package models

import (
	"math"

	"blinkml/internal/dataset"
	"blinkml/internal/linalg"
)

// LogisticRegression is the binary logistic classifier with L2
// regularization ("LR" in the paper).
// ℓᵢ = −[y log σ(θᵀx) + (1−y) log(1−σ(θᵀx))], qᵢ = (σ(θᵀxᵢ) − yᵢ)xᵢ.
type LogisticRegression struct {
	Reg float64
}

// Name implements Spec.
func (LogisticRegression) Name() string { return "logistic" }

// Task implements Spec.
func (LogisticRegression) Task() dataset.Task { return dataset.BinaryClassification }

// ParamDim implements Spec.
func (LogisticRegression) ParamDim(ds *dataset.Dataset) int { return ds.Dim }

// Beta implements Spec.
func (m LogisticRegression) Beta() float64 { return m.Reg }

// ExampleLossGrad implements Spec. A single exp serves both the gradient
// coefficient σ(z)−y and the loss −log Pr(y|x) = log(1+e^z) − y·z: each
// branch computes t = e^{-|z|} once and derives σ(z) and the softplus from
// it (the z ≥ 0 loss uses the z + log1p(e^{-z}) form, which needs no
// overflow cutoff).
func (LogisticRegression) ExampleLossGrad(theta []float64, x dataset.Row, y float64, gradAccum []float64) float64 {
	z := x.Dot(theta)
	var sig, loss float64
	if z >= 0 {
		t := math.Exp(-z)
		sig = 1 / (1 + t)
		loss = z + math.Log1p(t) - y*z
	} else {
		e := math.Exp(z)
		sig = e / (1 + e)
		loss = math.Log1p(e) - y*z
	}
	if gradAccum != nil {
		x.AddTo(gradAccum, sig-y)
	}
	return loss
}

// ExampleGradRow implements Spec.
func (LogisticRegression) ExampleGradRow(theta []float64, x dataset.Row, y float64) dataset.Row {
	return scaledRow(x, sigmoid(x.Dot(theta))-y)
}

// Predict implements Spec: the hard class label 1{σ(θᵀx) ≥ ½} = 1{θᵀx ≥ 0}.
func (LogisticRegression) Predict(theta []float64, x dataset.Row) float64 {
	if x.Dot(theta) >= 0 {
		return 1
	}
	return 0
}

// Hessian implements Hessianer: H = (1/n) XᵀQX + βI with
// Qᵢᵢ = σ(θᵀxᵢ)(1−σ(θᵀxᵢ)) — the paper's §3.4 ClosedForm example.
func (m LogisticRegression) Hessian(theta []float64, ds *dataset.Dataset) *linalg.Dense {
	return glmHessian(ds, theta, m.Reg, func(z, y float64) float64 {
		s := sigmoid(z)
		return s * (1 - s)
	})
}
