package models

import (
	"blinkml/internal/dataset"
	"blinkml/internal/linalg"
)

// LogisticRegression is the binary logistic classifier with L2
// regularization ("LR" in the paper).
// ℓᵢ = −[y log σ(θᵀx) + (1−y) log(1−σ(θᵀx))], qᵢ = (σ(θᵀxᵢ) − yᵢ)xᵢ.
type LogisticRegression struct {
	Reg float64
}

// Name implements Spec.
func (LogisticRegression) Name() string { return "logistic" }

// Task implements Spec.
func (LogisticRegression) Task() dataset.Task { return dataset.BinaryClassification }

// ParamDim implements Spec.
func (LogisticRegression) ParamDim(ds *dataset.Dataset) int { return ds.Dim }

// Beta implements Spec.
func (m LogisticRegression) Beta() float64 { return m.Reg }

// ExampleLossGrad implements Spec.
func (LogisticRegression) ExampleLossGrad(theta []float64, x dataset.Row, y float64, gradAccum []float64) float64 {
	z := x.Dot(theta)
	if gradAccum != nil {
		x.AddTo(gradAccum, sigmoid(z)-y)
	}
	// −log Pr(y|x) = log(1+e^z) − y·z (numerically stable form).
	return log1pExp(z) - y*z
}

// ExampleGradRow implements Spec.
func (LogisticRegression) ExampleGradRow(theta []float64, x dataset.Row, y float64) dataset.Row {
	return scaledRow(x, sigmoid(x.Dot(theta))-y)
}

// Predict implements Spec: the hard class label 1{σ(θᵀx) ≥ ½} = 1{θᵀx ≥ 0}.
func (LogisticRegression) Predict(theta []float64, x dataset.Row) float64 {
	if x.Dot(theta) >= 0 {
		return 1
	}
	return 0
}

// Hessian implements Hessianer: H = (1/n) XᵀQX + βI with
// Qᵢᵢ = σ(θᵀxᵢ)(1−σ(θᵀxᵢ)) — the paper's §3.4 ClosedForm example.
func (m LogisticRegression) Hessian(theta []float64, ds *dataset.Dataset) *linalg.Dense {
	return glmHessian(ds, theta, m.Reg, func(z, y float64) float64 {
		s := sigmoid(z)
		return s * (1 - s)
	})
}
