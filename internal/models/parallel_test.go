package models

import (
	"math"
	"math/rand"
	"testing"

	"blinkml/internal/compute"
	"blinkml/internal/dataset"
	"blinkml/internal/optimize"
)

// The pool-parallel objective path (several chunks at degree > 1) must
// produce the same loss/gradient as the serial path to within rounding.
func TestParallelObjectiveMatchesSerial(t *testing.T) {
	prev := compute.Parallelism()
	compute.SetParallelism(4)
	defer compute.SetParallelism(prev)
	rng := rand.New(rand.NewSource(91))
	n := 4*evalGrain + 513 // forces several chunks
	ds := tinyBinary(rng, n, 6, false)
	spec := LogisticRegression{Reg: 0.01}
	theta := make([]float64, 6)
	for i := range theta {
		theta[i] = rng.NormFloat64()
	}

	obj := Objective(spec, ds)
	gradPar := make([]float64, 6)
	lossPar := obj.Eval(theta, gradPar)

	// Serial reference via chunked subsets below the threshold.
	var lossSer float64
	gradSer := make([]float64, 6)
	for lo := 0; lo < n; lo += 1024 {
		hi := lo + 1024
		if hi > n {
			hi = n
		}
		idx := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			idx = append(idx, i)
		}
		sub := ds.Subset(idx)
		g := make([]float64, 6)
		subObj := Objective(LogisticRegression{Reg: 0}, sub)
		l := subObj.Eval(theta, g)
		w := float64(hi - lo)
		lossSer += l * w
		for j := range g {
			gradSer[j] += g[j] * w
		}
	}
	lossSer /= float64(n)
	for j := range gradSer {
		gradSer[j] /= float64(n)
	}
	// Add the regularizer the reference skipped.
	var sq float64
	for _, v := range theta {
		sq += v * v
	}
	lossSer += 0.5 * 0.01 * sq
	for j := range gradSer {
		gradSer[j] += 0.01 * theta[j]
	}

	if math.Abs(lossPar-lossSer) > 1e-9*(1+math.Abs(lossSer)) {
		t.Fatalf("parallel loss %v, serial %v", lossPar, lossSer)
	}
	for j := range gradPar {
		if math.Abs(gradPar[j]-gradSer[j]) > 1e-9*(1+math.Abs(gradSer[j])) {
			t.Fatalf("parallel grad[%d]=%v serial %v", j, gradPar[j], gradSer[j])
		}
	}
}

// At a fixed parallelism degree, repeated training runs must be
// bit-identical — the chunk decomposition and ordered reductions may not
// depend on scheduling.
func TestTrainingDeterministicAtFixedDegree(t *testing.T) {
	prev := compute.Parallelism()
	compute.SetParallelism(4)
	defer compute.SetParallelism(prev)
	rng := rand.New(rand.NewSource(92))
	ds := tinyBinary(rng, 3*evalGrain, 8, false)
	spec := LogisticRegression{Reg: 0.01}
	first, err := Train(spec, ds, nil, optimize.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 2; rep++ {
		again, err := Train(spec, ds, nil, optimize.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for j := range first.Theta {
			if first.Theta[j] != again.Theta[j] {
				t.Fatalf("rep %d: theta[%d] = %v vs %v (not bit-identical)", rep, j, again.Theta[j], first.Theta[j])
			}
		}
	}
}

// Training must reject datasets containing non-finite features gracefully
// (non-finite parameters are reported as errors, not panics).
func TestTrainRejectsNonFiniteOutcome(t *testing.T) {
	ds := &dataset.Dataset{Dim: 2, Task: dataset.Regression, Name: "inf"}
	ds.X = append(ds.X, dataset.DenseRow{math.Inf(1), 1}, dataset.DenseRow{1, 2})
	ds.Y = append(ds.Y, 1, 2)
	_, err := Train(LinearRegression{Reg: 0.001}, ds, nil, optimize.Options{})
	if err == nil {
		t.Skip("optimizer escaped the non-finite region; nothing to assert")
	}
}

// The stochastic objective view must agree with the batch objective on the
// full index set.
func TestStochasticObjectiveMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	ds := tinyBinary(rng, 128, 5, false)
	spec := LogisticRegression{Reg: 0.05}
	theta := make([]float64, 5)
	for i := range theta {
		theta[i] = rng.NormFloat64()
	}
	sObj := StochasticObjective(spec, ds)
	idx := make([]int, ds.Len())
	for i := range idx {
		idx[i] = i
	}
	gs := make([]float64, 5)
	fs := sObj.EvalBatch(theta, idx, gs)
	gb := make([]float64, 5)
	fb := Objective(spec, ds).Eval(theta, gb)
	if math.Abs(fs-fb) > 1e-12 {
		t.Fatalf("losses differ: %v vs %v", fs, fb)
	}
	for j := range gs {
		if math.Abs(gs[j]-gb[j]) > 1e-12 {
			t.Fatalf("gradients differ at %d", j)
		}
	}
	if sObj.NumExamples() != 128 {
		t.Fatal("NumExamples wrong")
	}
}
