package models

import (
	"math/rand"
	"testing"
	"testing/quick"

	"blinkml/internal/dataset"
)

// The Sample Size Estimator's fast path assumes
// PredictScores(Scores(θ, x)) == Predict(θ, x) for every ScoreModel. This
// property test guards that contract for all four GLM specs, dense and
// sparse inputs.
func TestScoreModelConsistentWithPredict(t *testing.T) {
	for name, spec := range specsUnderTest() {
		sm, ok := spec.(ScoreModel)
		if !ok {
			t.Fatalf("%s must implement ScoreModel", name)
		}
		t.Run(name, func(t *testing.T) {
			f := func(seed int64) bool {
				r := rand.New(rand.NewSource(seed))
				d := 2 + r.Intn(6)
				ds := datasetFor(name, r, 4, d, r.Intn(2) == 0)
				pd := spec.ParamDim(ds)
				theta := make([]float64, pd)
				for i := range theta {
					theta[i] = 2 * r.NormFloat64()
				}
				ns := sm.NumScores(pd, d)
				scores := make([]float64, ns)
				for i := 0; i < ds.Len(); i++ {
					sm.Scores(theta, ds.X[i], scores)
					if sm.PredictScores(scores) != spec.Predict(theta, ds.X[i]) {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestNumScores(t *testing.T) {
	if got := (LinearRegression{}).NumScores(7, 7); got != 1 {
		t.Errorf("linear NumScores=%d", got)
	}
	if got := (LogisticRegression{}).NumScores(7, 7); got != 1 {
		t.Errorf("logistic NumScores=%d", got)
	}
	if got := (PoissonRegression{}).NumScores(7, 7); got != 1 {
		t.Errorf("poisson NumScores=%d", got)
	}
	if got := (MaxEntropy{Classes: 4}).NumScores(28, 7); got != 4 {
		t.Errorf("maxent NumScores=%d", got)
	}
}

func TestMaxEntropyPredictScoresTieBreak(t *testing.T) {
	m := MaxEntropy{Classes: 3}
	// Equal scores resolve to the lowest class index, matching Predict.
	if got := m.PredictScores([]float64{1, 1, 1}); got != 0 {
		t.Fatalf("tie broke to %v", got)
	}
	ds := &dataset.Dataset{Dim: 1, Task: dataset.MultiClassification, NumClasses: 3}
	theta := []float64{1, 1, 1} // identical rows for every class
	if got := m.Predict(theta, dataset.DenseRow{1}); got != 0 {
		t.Fatalf("Predict tie broke to %v", got)
	}
	_ = ds
}
