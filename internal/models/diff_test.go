package models

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"blinkml/internal/dataset"
)

func TestDiffReflexivity(t *testing.T) {
	for name, spec := range specsUnderTest() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(3))
			ds := datasetFor(name, rng, 40, 5, false)
			theta := make([]float64, spec.ParamDim(ds))
			for i := range theta {
				theta[i] = rng.NormFloat64()
			}
			if v := Diff(spec, theta, theta, ds); v != 0 {
				t.Fatalf("Diff(θ,θ)=%v want 0", v)
			}
		})
	}
}

func TestDiffSymmetryClassification(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	spec := LogisticRegression{}
	ds := tinyBinary(rng, 60, 4, false)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := make([]float64, 4)
		b := make([]float64, 4)
		for i := range a {
			a[i], b[i] = r.NormFloat64(), r.NormFloat64()
		}
		return Diff(spec, a, b, ds) == Diff(spec, b, a, ds)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDiffBounds(t *testing.T) {
	for name, spec := range specsUnderTest() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			ds := datasetFor(name, rng, 30, 4, false)
			for trial := 0; trial < 30; trial++ {
				a := make([]float64, spec.ParamDim(ds))
				b := make([]float64, spec.ParamDim(ds))
				for i := range a {
					a[i], b[i] = 5*rng.NormFloat64(), 5*rng.NormFloat64()
				}
				v := Diff(spec, a, b, ds)
				if v < 0 || v > 1 || math.IsNaN(v) {
					t.Fatalf("Diff out of [0,1]: %v", v)
				}
			}
		})
	}
}

func TestClassificationDiffCountsDisagreements(t *testing.T) {
	spec := LogisticRegression{}
	ds := &dataset.Dataset{Dim: 1, Task: dataset.BinaryClassification}
	// Four points at x = -2, -1, 1, 2.
	for _, x := range []float64{-2, -1, 1, 2} {
		ds.X = append(ds.X, dataset.DenseRow{x})
		ds.Y = append(ds.Y, 0)
	}
	// θ=+1 predicts 1 for x>=0; θ=-1 predicts 1 for x<=0 (x=0 excluded here).
	got := Diff(spec, []float64{1}, []float64{-1}, ds)
	if got != 1 {
		t.Fatalf("full disagreement expected, got %v", got)
	}
	if got := Diff(spec, []float64{1}, []float64{2}, ds); got != 0 {
		t.Fatalf("same decision boundary should agree, got %v", got)
	}
}

func TestRegressionDiffNormalized(t *testing.T) {
	spec := LinearRegression{}
	ds := &dataset.Dataset{Dim: 1, Task: dataset.Regression}
	ds.X = append(ds.X, dataset.DenseRow{1}, dataset.DenseRow{2})
	ds.Y = append(ds.Y, 0, 0)
	// Predictions a: (1,2); b: (1.1, 2.2): relative RMS diff = 10%.
	v := Diff(spec, []float64{1}, []float64{1.1}, ds)
	if math.Abs(v-0.1) > 1e-9 {
		t.Fatalf("relative diff %v want 0.1", v)
	}
}

func TestPPCADiffIsCosineBased(t *testing.T) {
	spec := NewPPCA(2)
	a := []float64{1, 0, 0, 1, 0, 0}
	b := []float64{2, 0, 0, 2, 0, 0} // same direction, scaled
	if v := Diff(spec, a, b, nil); v > 1e-12 {
		t.Fatalf("parallel parameters should have diff 0, got %v", v)
	}
	c := []float64{0, 1, 1, 0, 0, 0}
	v := Diff(spec, a, c, nil)
	if v <= 0 || v > 1 {
		t.Fatalf("orthogonal-ish parameters diff %v", v)
	}
}

func TestAccuracyAndGeneralizationError(t *testing.T) {
	spec := LogisticRegression{}
	ds := &dataset.Dataset{Dim: 1, Task: dataset.BinaryClassification}
	ds.X = append(ds.X, dataset.DenseRow{1}, dataset.DenseRow{-1}, dataset.DenseRow{2})
	ds.Y = append(ds.Y, 1, 0, 0)
	theta := []float64{1} // predicts 1, 0, 1 → 2/3 correct
	if acc := Accuracy(spec, theta, ds); math.Abs(acc-2.0/3.0) > 1e-12 {
		t.Fatalf("accuracy %v", acc)
	}
	if ge := GeneralizationError(spec, theta, ds); math.Abs(ge-1.0/3.0) > 1e-12 {
		t.Fatalf("gen error %v", ge)
	}
}

func TestGeneralizationBound(t *testing.T) {
	// Lemma 1: bound = εg + ε − εg·ε; check endpoints and monotonicity.
	if got := GeneralizationBound(0, 0); got != 0 {
		t.Fatalf("bound(0,0)=%v", got)
	}
	if got := GeneralizationBound(1, 0.5); got != 1 {
		t.Fatalf("bound(1,0.5)=%v", got)
	}
	f := func(a, b float64) bool {
		eg := math.Mod(math.Abs(a), 1)
		ep := math.Mod(math.Abs(b), 1)
		bound := GeneralizationBound(eg, ep)
		return bound >= eg-1e-15 && bound >= ep-1e-15 && bound <= 1+1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDiffEmptyHoldout(t *testing.T) {
	spec := LogisticRegression{}
	empty := &dataset.Dataset{Dim: 2, Task: dataset.BinaryClassification}
	if v := Diff(spec, []float64{1, 0}, []float64{0, 1}, empty); v != 0 {
		t.Fatalf("empty holdout diff %v want 0", v)
	}
}
