// Package models implements BlinkML's model class specifications (MCS,
// paper §2.2): linear regression, logistic regression, the max-entropy
// (softmax) classifier, Poisson regression, and PPCA. Each model exposes
// the two primitives the BlinkML core needs — per-example gradients
// ("grads") and a prediction-difference metric ("diff") — plus a training
// objective for the optimizers.
//
// Scaling convention (see DESIGN.md §2): the training objective is
//
//	f_n(θ) = (1/n) Σᵢ ℓᵢ(θ) + (β/2)‖θ‖², ℓᵢ = −log Pr(xᵢ,yᵢ;θ)
//
// so per-example gradients qᵢ = ∇ℓᵢ exclude the regularizer, exactly as
// Equation (3) of the paper separates q and r.
package models

import (
	"errors"
	"fmt"

	"blinkml/internal/compute"
	"blinkml/internal/dataset"
	"blinkml/internal/linalg"
	"blinkml/internal/optimize"
)

// Spec is a model class specification. Implementations must be stateless
// value types: all model state lives in the parameter vector θ.
type Spec interface {
	// Name identifies the model class (e.g. "logistic").
	Name() string
	// Task reports the label semantics the model expects.
	Task() dataset.Task
	// ParamDim returns the flattened parameter dimension for a dataset.
	ParamDim(ds *dataset.Dataset) int
	// Beta returns the L2 regularization coefficient β (r(θ) = βθ).
	Beta() float64
	// ExampleLossGrad returns ℓᵢ(θ) for one example and, when gradAccum is
	// non-nil, adds qᵢ(θ) into it (without zeroing it first).
	ExampleLossGrad(theta []float64, x dataset.Row, y float64, gradAccum []float64) float64
	// ExampleGradRow returns qᵢ(θ) as a Row in parameter space; the row is
	// sparse whenever x is sparse. This is the paper's "grads" MCS method:
	// individual per-example gradients, not their average.
	ExampleGradRow(theta []float64, x dataset.Row, y float64) dataset.Row
	// Predict returns the model's prediction for x: a class index for
	// classification tasks, a real value for regression.
	Predict(theta []float64, x dataset.Row) float64
}

// Hessianer is implemented by models with a closed-form Hessian of the
// objective (the ClosedForm statistics method, paper §3.4 Method 1).
type Hessianer interface {
	// Hessian returns H(θ) = ∇²f_n(θ), including the βI regularizer term.
	Hessian(theta []float64, ds *dataset.Dataset) *linalg.Dense
}

// CustomTrainer is implemented by models whose MLE is computed directly
// rather than by a generic convex solver (PPCA's closed form).
type CustomTrainer interface {
	TrainCustom(ds *dataset.Dataset) (theta []float64, iters int, err error)
}

// ErrIncompatibleTask is returned when a model is trained on a dataset
// whose task does not match the model class.
var ErrIncompatibleTask = errors.New("models: dataset task does not match model class")

// evalGrain is the minimum number of examples per parallel chunk in
// objective evaluation; below 2·evalGrain the whole loop stays serial, so
// small problems never pay pool-dispatch overhead.
const evalGrain = 1024

// objective adapts a Spec and a dataset to optimize.Problem, evaluating
// f_n(θ) = (1/n)Σ ℓᵢ + (β/2)‖θ‖² and its gradient.
type objective struct {
	spec Spec
	ds   *dataset.Dataset
	dim  int
}

// Objective returns the training problem for spec on ds.
func Objective(spec Spec, ds *dataset.Dataset) optimize.Problem {
	return &objective{spec: spec, ds: ds, dim: spec.ParamDim(ds)}
}

// Dim implements optimize.Problem.
func (o *objective) Dim() int { return o.dim }

// Eval implements optimize.Problem. Large example sets are accumulated in
// one fused pass per chunk on the shared compute pool — each chunk
// gathers loss and gradient into its own scratch buffer, and the partials
// merge in a fixed tree order, so the result is bit-identical across runs
// at a fixed parallelism degree (and exactly the serial accumulation at
// degree 1, where grad itself is the single chunk's scratch).
func (o *objective) Eval(x, grad []float64) float64 {
	n := o.ds.Len()
	linalg.Fill(grad, 0)
	chunks := compute.Chunks(n, evalGrain)
	lossParts := make([]float64, chunks)
	gradParts := make([][]float64, chunks)
	compute.ForChunksN(n, chunks, func(chunk, lo, hi int) {
		g := grad
		if chunk > 0 {
			g = make([]float64, o.dim)
		}
		var loss float64
		for i := lo; i < hi; i++ {
			loss += o.spec.ExampleLossGrad(x, o.ds.X[i], label(o.ds, i), g)
		}
		lossParts[chunk] = loss
		gradParts[chunk] = g
	})
	loss := compute.ReduceFloats(lossParts)
	compute.ReduceVecs(gradParts) // folds into gradParts[0] == grad
	inv := 1 / float64(n)
	loss *= inv
	linalg.Scale(inv, grad)
	// Regularizer (β/2)‖θ‖², gradient βθ.
	beta := o.spec.Beta()
	if beta > 0 {
		loss += 0.5 * beta * linalg.Dot(x, x)
		linalg.Axpy(beta, x, grad)
	}
	return loss
}

// NumExamples implements optimize.StochasticProblem.
func (o *objective) NumExamples() int { return o.ds.Len() }

// EvalBatch implements optimize.StochasticProblem: the mean loss and
// gradient over the given example subset, plus the regularizer.
func (o *objective) EvalBatch(x []float64, idx []int, grad []float64) float64 {
	linalg.Fill(grad, 0)
	var loss float64
	for _, i := range idx {
		loss += o.spec.ExampleLossGrad(x, o.ds.X[i], label(o.ds, i), grad)
	}
	inv := 1 / float64(len(idx))
	loss *= inv
	linalg.Scale(inv, grad)
	beta := o.spec.Beta()
	if beta > 0 {
		loss += 0.5 * beta * linalg.Dot(x, x)
		linalg.Axpy(beta, x, grad)
	}
	return loss
}

// StochasticObjective returns the minibatch view of the training problem
// for the SGD/Adam baselines.
func StochasticObjective(spec Spec, ds *dataset.Dataset) optimize.StochasticProblem {
	return &objective{spec: spec, ds: ds, dim: spec.ParamDim(ds)}
}

func label(ds *dataset.Dataset, i int) float64 {
	if ds.Task == dataset.Unsupervised {
		return 0
	}
	return ds.Y[i]
}

// TrainResult is the outcome of fitting a model.
type TrainResult struct {
	Theta     []float64
	Loss      float64
	Iters     int
	Converged bool
}

// Train fits spec on ds to convergence: models with a closed-form MLE use
// it; everything else runs BFGS/L-BFGS per the paper's §5.1 setup. theta0
// may be nil for a zero start (a warm start is passed through unchanged).
func Train(spec Spec, ds *dataset.Dataset, theta0 []float64, opt optimize.Options) (TrainResult, error) {
	if err := checkTask(spec, ds); err != nil {
		return TrainResult{}, err
	}
	if ds.Len() == 0 {
		return TrainResult{}, errors.New("models: empty training set")
	}
	if ct, ok := spec.(CustomTrainer); ok {
		// Closed-form trainers have no iteration boundaries to poll, so
		// cancellation is only honored before they start (and again at the
		// coordinator's next phase boundary).
		if opt.Stop != nil {
			if err := opt.Stop(); err != nil {
				return TrainResult{}, err
			}
		}
		theta, iters, err := ct.TrainCustom(ds)
		if err != nil {
			return TrainResult{}, err
		}
		return TrainResult{Theta: theta, Iters: iters, Converged: true}, nil
	}
	dim := spec.ParamDim(ds)
	if theta0 == nil {
		theta0 = make([]float64, dim)
	} else if len(theta0) != dim {
		return TrainResult{}, fmt.Errorf("models: warm start has dim %d, want %d", len(theta0), dim)
	}
	res, err := optimize.Minimize(Objective(spec, ds), theta0, opt)
	if err != nil {
		return TrainResult{}, err
	}
	if !linalg.AllFinite(res.X) {
		return TrainResult{}, errors.New("models: training produced non-finite parameters")
	}
	return TrainResult{Theta: res.X, Loss: res.F, Iters: res.Iters, Converged: res.Converged}, nil
}

func checkTask(spec Spec, ds *dataset.Dataset) error {
	want := spec.Task()
	if want == ds.Task {
		return nil
	}
	// PPCA accepts any dataset (it ignores labels).
	if want == dataset.Unsupervised {
		return nil
	}
	return fmt.Errorf("%w: model %s wants %v, dataset %q is %v", ErrIncompatibleTask, spec.Name(), want, ds.Name, ds.Task)
}

// BatchGradient returns g_n(θ) = (1/n)Σ qᵢ + βθ, used by the
// InverseGradients statistics method and by tests.
func BatchGradient(spec Spec, ds *dataset.Dataset, theta []float64) []float64 {
	grad := make([]float64, len(theta))
	p := Objective(spec, ds)
	p.Eval(theta, grad)
	return grad
}

// PerExampleGradRows materializes qᵢ(θ) for every row of ds. The rows stay
// sparse for sparse inputs, which keeps the ObservedFisher path at O(nnz)
// memory — the paper's O(d) claim (§3.4). Rows are independent, so they
// are computed in parallel on the shared compute pool.
func PerExampleGradRows(spec Spec, ds *dataset.Dataset, theta []float64) []dataset.Row {
	rows := make([]dataset.Row, ds.Len())
	compute.For(ds.Len(), 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			rows[i] = spec.ExampleGradRow(theta, ds.X[i], label(ds, i))
		}
	})
	return rows
}
