package models

import (
	"blinkml/internal/dataset"
	"blinkml/internal/linalg"
)

// LinearRegression is the Gaussian-noise MLE linear model with L2
// regularization ("Lin" in the paper, β = 0.001 by default in §5.1).
// ℓᵢ = ½(θᵀxᵢ − yᵢ)², qᵢ = (θᵀxᵢ − yᵢ)xᵢ.
type LinearRegression struct {
	Reg float64 // L2 coefficient β
}

// Name implements Spec.
func (LinearRegression) Name() string { return "linear" }

// Task implements Spec.
func (LinearRegression) Task() dataset.Task { return dataset.Regression }

// ParamDim implements Spec.
func (LinearRegression) ParamDim(ds *dataset.Dataset) int { return ds.Dim }

// Beta implements Spec.
func (m LinearRegression) Beta() float64 { return m.Reg }

// ExampleLossGrad implements Spec.
func (LinearRegression) ExampleLossGrad(theta []float64, x dataset.Row, y float64, gradAccum []float64) float64 {
	r := x.Dot(theta) - y
	if gradAccum != nil {
		x.AddTo(gradAccum, r)
	}
	return 0.5 * r * r
}

// ExampleGradRow implements Spec.
func (LinearRegression) ExampleGradRow(theta []float64, x dataset.Row, y float64) dataset.Row {
	return scaledRow(x, x.Dot(theta)-y)
}

// Predict implements Spec: the real-valued regression estimate θᵀx.
func (LinearRegression) Predict(theta []float64, x dataset.Row) float64 {
	return x.Dot(theta)
}

// Hessian implements Hessianer: H = (1/n) XᵀX + βI — the ClosedForm method
// for linear regression.
func (m LinearRegression) Hessian(theta []float64, ds *dataset.Dataset) *linalg.Dense {
	return glmHessian(ds, theta, m.Reg, func(z, y float64) float64 { return 1 })
}
