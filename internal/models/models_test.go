package models

import (
	"math"
	"math/rand"
	"testing"

	"blinkml/internal/dataset"
	"blinkml/internal/linalg"
	"blinkml/internal/optimize"
)

// fdGrad computes a central finite-difference gradient of the summed
// example loss at theta.
func fdGrad(spec Spec, ds *dataset.Dataset, theta []float64) []float64 {
	h := 1e-6
	g := make([]float64, len(theta))
	loss := func(t []float64) float64 {
		var s float64
		for i := 0; i < ds.Len(); i++ {
			s += spec.ExampleLossGrad(t, ds.X[i], label(ds, i), nil)
		}
		return s
	}
	for j := range theta {
		tp := linalg.CopyVec(theta)
		tm := linalg.CopyVec(theta)
		tp[j] += h
		tm[j] -= h
		g[j] = (loss(tp) - loss(tm)) / (2 * h)
	}
	return g
}

// analyticGradSum accumulates Σ qᵢ via ExampleLossGrad.
func analyticGradSum(spec Spec, ds *dataset.Dataset, theta []float64) []float64 {
	g := make([]float64, len(theta))
	for i := 0; i < ds.Len(); i++ {
		spec.ExampleLossGrad(theta, ds.X[i], label(ds, i), g)
	}
	return g
}

func tinyRegression(rng *rand.Rand, n, d int, sparse bool) *dataset.Dataset {
	trueTheta := make([]float64, d)
	for i := range trueTheta {
		trueTheta[i] = rng.NormFloat64()
	}
	ds := &dataset.Dataset{Dim: d, Task: dataset.Regression, Name: "tiny-reg"}
	for i := 0; i < n; i++ {
		row := makeRow(rng, d, sparse)
		ds.X = append(ds.X, row)
		ds.Y = append(ds.Y, row.Dot(trueTheta)+0.01*rng.NormFloat64())
	}
	return ds
}

func tinyBinary(rng *rand.Rand, n, d int, sparse bool) *dataset.Dataset {
	trueTheta := make([]float64, d)
	for i := range trueTheta {
		trueTheta[i] = rng.NormFloat64() * 2
	}
	ds := &dataset.Dataset{Dim: d, Task: dataset.BinaryClassification, Name: "tiny-bin"}
	for i := 0; i < n; i++ {
		row := makeRow(rng, d, sparse)
		p := sigmoid(row.Dot(trueTheta))
		y := 0.0
		if rng.Float64() < p {
			y = 1
		}
		ds.X = append(ds.X, row)
		ds.Y = append(ds.Y, y)
	}
	return ds
}

func tinyMulti(rng *rand.Rand, n, d, k int) *dataset.Dataset {
	centers := make([][]float64, k)
	for c := range centers {
		centers[c] = make([]float64, d)
		for j := range centers[c] {
			centers[c][j] = 3 * rng.NormFloat64()
		}
	}
	ds := &dataset.Dataset{Dim: d, Task: dataset.MultiClassification, NumClasses: k, Name: "tiny-multi"}
	for i := 0; i < n; i++ {
		c := rng.Intn(k)
		row := make(dataset.DenseRow, d)
		for j := range row {
			row[j] = centers[c][j] + rng.NormFloat64()
		}
		ds.X = append(ds.X, row)
		ds.Y = append(ds.Y, float64(c))
	}
	return ds
}

func tinyCounts(rng *rand.Rand, n, d int) *dataset.Dataset {
	trueTheta := make([]float64, d)
	for i := range trueTheta {
		trueTheta[i] = 0.3 * rng.NormFloat64()
	}
	ds := &dataset.Dataset{Dim: d, Task: dataset.Regression, Name: "tiny-counts"}
	for i := 0; i < n; i++ {
		row := makeRow(rng, d, false)
		lambda := math.Exp(row.Dot(trueTheta))
		// Poisson draw via inversion (small lambda regime).
		y, p, u := 0.0, math.Exp(-lambda), rng.Float64()
		cum := p
		for u > cum && y < 100 {
			y++
			p *= lambda / y
			cum += p
		}
		ds.X = append(ds.X, row)
		ds.Y = append(ds.Y, y)
	}
	return ds
}

func makeRow(rng *rand.Rand, d int, sparse bool) dataset.Row {
	if !sparse {
		row := make(dataset.DenseRow, d)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		return row
	}
	var idx []int32
	var val []float64
	for j := 0; j < d; j++ {
		if rng.Float64() < 0.4 {
			idx = append(idx, int32(j))
			val = append(val, rng.NormFloat64())
		}
	}
	if len(idx) == 0 {
		idx, val = []int32{0}, []float64{1}
	}
	sp, _ := dataset.NewSparseRow(d, idx, val)
	return sp
}

func specsUnderTest() map[string]Spec {
	return map[string]Spec{
		"linear":   LinearRegression{Reg: 0.01},
		"logistic": LogisticRegression{Reg: 0.01},
		"maxent":   MaxEntropy{Reg: 0.01, Classes: 3},
		"poisson":  PoissonRegression{Reg: 0.01},
	}
}

func datasetFor(name string, rng *rand.Rand, n, d int, sparse bool) *dataset.Dataset {
	switch name {
	case "linear":
		return tinyRegression(rng, n, d, sparse)
	case "logistic":
		return tinyBinary(rng, n, d, sparse)
	case "maxent":
		return tinyMulti(rng, n, d, 3)
	case "poisson":
		return tinyCounts(rng, n, d)
	}
	panic("unknown spec " + name)
}

// Gradient check: the accumulated analytic gradient must match finite
// differences of the example losses.
func TestExampleGradientsMatchFiniteDifferences(t *testing.T) {
	for name, spec := range specsUnderTest() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			ds := datasetFor(name, rng, 20, 5, false)
			theta := make([]float64, spec.ParamDim(ds))
			for i := range theta {
				theta[i] = 0.3 * rng.NormFloat64()
			}
			got := analyticGradSum(spec, ds, theta)
			want := fdGrad(spec, ds, theta)
			for j := range got {
				if math.Abs(got[j]-want[j]) > 1e-4*(1+math.Abs(want[j])) {
					t.Fatalf("grad[%d]=%v, finite-diff %v", j, got[j], want[j])
				}
			}
		})
	}
}

// The per-example gradient rows must agree with the accumulated gradient.
func TestExampleGradRowMatchesAccumulation(t *testing.T) {
	for name, spec := range specsUnderTest() {
		for _, sparse := range []bool{false, true} {
			if sparse && name == "maxent" {
				continue // maxent sparse covered separately below
			}
			t.Run(name, func(t *testing.T) {
				rng := rand.New(rand.NewSource(13))
				ds := datasetFor(name, rng, 15, 6, sparse)
				theta := make([]float64, spec.ParamDim(ds))
				for i := range theta {
					theta[i] = 0.2 * rng.NormFloat64()
				}
				sum := make([]float64, len(theta))
				for i := 0; i < ds.Len(); i++ {
					spec.ExampleGradRow(theta, ds.X[i], label(ds, i)).AddTo(sum, 1)
				}
				want := analyticGradSum(spec, ds, theta)
				for j := range sum {
					if math.Abs(sum[j]-want[j]) > 1e-9*(1+math.Abs(want[j])) {
						t.Fatalf("grad row sum[%d]=%v want %v", j, sum[j], want[j])
					}
				}
			})
		}
	}
}

func TestMaxEntSparseGradRow(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	spec := MaxEntropy{Reg: 0, Classes: 3}
	d := 8
	ds := &dataset.Dataset{Dim: d, Task: dataset.MultiClassification, NumClasses: 3}
	for i := 0; i < 10; i++ {
		ds.X = append(ds.X, makeRow(rng, d, true))
		ds.Y = append(ds.Y, float64(rng.Intn(3)))
	}
	theta := make([]float64, spec.ParamDim(ds))
	for i := range theta {
		theta[i] = rng.NormFloat64()
	}
	for i := 0; i < ds.Len(); i++ {
		row := spec.ExampleGradRow(theta, ds.X[i], ds.Y[i])
		if _, ok := row.(*dataset.SparseRow); !ok {
			t.Fatal("sparse input should give sparse gradient row")
		}
		dense := make([]float64, len(theta))
		spec.ExampleLossGrad(theta, ds.X[i], ds.Y[i], dense)
		got := make([]float64, len(theta))
		row.AddTo(got, 1)
		for j := range got {
			if math.Abs(got[j]-dense[j]) > 1e-10 {
				t.Fatalf("sparse grad row mismatch at %d: %v vs %v", j, got[j], dense[j])
			}
		}
	}
}

// The batch gradient must equal mean(qᵢ) + βθ.
func TestBatchGradientIncludesRegularizer(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	spec := LogisticRegression{Reg: 0.5}
	ds := tinyBinary(rng, 30, 4, false)
	theta := []float64{0.1, -0.2, 0.3, 0.4}
	got := BatchGradient(spec, ds, theta)
	want := analyticGradSum(spec, ds, theta)
	for j := range want {
		want[j] = want[j]/float64(ds.Len()) + 0.5*theta[j]
	}
	for j := range got {
		if math.Abs(got[j]-want[j]) > 1e-10 {
			t.Fatalf("batch grad[%d]=%v want %v", j, got[j], want[j])
		}
	}
}

// Closed-form Hessians must match finite differences of the batch gradient.
func TestClosedFormHessians(t *testing.T) {
	for name, spec := range specsUnderTest() {
		hs, ok := spec.(Hessianer)
		if !ok {
			continue
		}
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(31))
			ds := datasetFor(name, rng, 40, 4, false)
			dim := spec.ParamDim(ds)
			theta := make([]float64, dim)
			for i := range theta {
				theta[i] = 0.2 * rng.NormFloat64()
			}
			h := hs.Hessian(theta, ds)
			eps := 1e-5
			for j := 0; j < dim; j++ {
				tp := linalg.CopyVec(theta)
				tm := linalg.CopyVec(theta)
				tp[j] += eps
				tm[j] -= eps
				gp := BatchGradient(spec, ds, tp)
				gm := BatchGradient(spec, ds, tm)
				for i := 0; i < dim; i++ {
					fd := (gp[i] - gm[i]) / (2 * eps)
					if math.Abs(h.At(i, j)-fd) > 1e-3*(1+math.Abs(fd)) {
						t.Fatalf("H[%d,%d]=%v finite-diff %v", i, j, h.At(i, j), fd)
					}
				}
			}
		})
	}
}

func TestTrainLinearRecoversTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	d := 6
	trueTheta := make([]float64, d)
	for i := range trueTheta {
		trueTheta[i] = rng.NormFloat64()
	}
	ds := &dataset.Dataset{Dim: d, Task: dataset.Regression}
	for i := 0; i < 500; i++ {
		row := makeRow(rng, d, false)
		ds.X = append(ds.X, row)
		ds.Y = append(ds.Y, row.Dot(trueTheta))
	}
	res, err := Train(LinearRegression{Reg: 1e-6}, ds, nil, optimize.Options{GradTol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	for i := range trueTheta {
		if math.Abs(res.Theta[i]-trueTheta[i]) > 1e-3 {
			t.Fatalf("theta[%d]=%v want %v", i, res.Theta[i], trueTheta[i])
		}
	}
}

func TestTrainLogisticSeparates(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	ds := tinyBinary(rng, 800, 5, false)
	spec := LogisticRegression{Reg: 0.001}
	res, err := Train(spec, ds, nil, optimize.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(spec, res.Theta, ds); acc < 0.75 {
		t.Fatalf("training accuracy %v too low", acc)
	}
}

func TestTrainMaxEntSeparatesBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	ds := tinyMulti(rng, 600, 6, 3)
	spec := MaxEntropy{Reg: 0.001, Classes: 3}
	res, err := Train(spec, ds, nil, optimize.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(spec, res.Theta, ds); acc < 0.9 {
		t.Fatalf("maxent accuracy %v too low", acc)
	}
}

func TestTrainPoissonRecoversRates(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	ds := tinyCounts(rng, 2000, 4)
	spec := PoissonRegression{Reg: 1e-5}
	res, err := Train(spec, ds, nil, optimize.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("poisson did not converge")
	}
	// Gradient at optimum should be ~0.
	if g := linalg.NormInf(BatchGradient(spec, ds, res.Theta)); g > 1e-4 {
		t.Fatalf("gradient at optimum %v", g)
	}
}

func TestTrainTaskMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	ds := tinyRegression(rng, 10, 3, false)
	if _, err := Train(LogisticRegression{}, ds, nil, optimize.Options{}); err == nil {
		t.Fatal("expected task mismatch error")
	}
}

func TestTrainEmptyDataset(t *testing.T) {
	ds := &dataset.Dataset{Dim: 3, Task: dataset.Regression}
	if _, err := Train(LinearRegression{}, ds, nil, optimize.Options{}); err == nil {
		t.Fatal("expected error on empty dataset")
	}
}

func TestTrainWarmStartDimensionChecked(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	ds := tinyRegression(rng, 10, 3, false)
	if _, err := Train(LinearRegression{}, ds, make([]float64, 7), optimize.Options{}); err == nil {
		t.Fatal("expected warm-start dimension error")
	}
}
