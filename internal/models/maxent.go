package models

import (
	"math"

	"blinkml/internal/dataset"
	"blinkml/internal/linalg"
)

// MaxEntropy is the multiclass softmax (maximum-entropy) classifier with L2
// regularization ("ME" in the paper). The parameter vector flattens a K x d
// weight matrix: class k occupies θ[k·d : (k+1)·d].
// ℓᵢ = −log softmax_{yᵢ}(z), z_k = θ_kᵀxᵢ; the per-example gradient block
// for class k is (p_k − 1{k=yᵢ})·xᵢ.
type MaxEntropy struct {
	Reg     float64
	Classes int
}

// Name implements Spec.
func (MaxEntropy) Name() string { return "maxent" }

// Task implements Spec.
func (MaxEntropy) Task() dataset.Task { return dataset.MultiClassification }

// ParamDim implements Spec.
func (m MaxEntropy) ParamDim(ds *dataset.Dataset) int { return ds.Dim * m.classes(ds) }

func (m MaxEntropy) classes(ds *dataset.Dataset) int {
	if m.Classes > 0 {
		return m.Classes
	}
	return ds.NumClasses
}

// Beta implements Spec.
func (m MaxEntropy) Beta() float64 { return m.Reg }

// logits computes z_k = θ_kᵀx for all classes (one fused pass over sparse
// rows).
func (m MaxEntropy) logits(theta []float64, x dataset.Row, k int) []float64 {
	z := make([]float64, k)
	logitsInto(theta, x, k, x.Dim(), z)
	return z
}

// softmaxInPlace converts logits to probabilities, returning the
// log-sum-exp for the loss.
func softmaxInPlace(z []float64) float64 {
	maxZ := z[0]
	for _, v := range z[1:] {
		if v > maxZ {
			maxZ = v
		}
	}
	var sum float64
	for i, v := range z {
		// exp(0) is exactly 1, so elements at the max (including ties)
		// skip the libm call without changing a single bit.
		e := 1.0
		if v != maxZ {
			e = math.Exp(v - maxZ)
		}
		z[i] = e
		sum += e
	}
	for i := range z {
		z[i] /= sum
	}
	return maxZ + math.Log(sum)
}

// ExampleLossGrad implements Spec. The per-class logits and the gradient
// scatter each make one fused pass over sparse rows; the logit scratch
// lives on the stack for realistic class counts, so the inner training
// loop is allocation-free.
func (m MaxEntropy) ExampleLossGrad(theta []float64, x dataset.Row, y float64, gradAccum []float64) float64 {
	d := x.Dim()
	k := len(theta) / d
	var zbuf [maxFusedClasses]float64
	z := zbuf[:]
	if k > maxFusedClasses {
		z = make([]float64, k)
	}
	z = z[:k]
	logitsInto(theta, x, k, d, z)
	yi := int(y)
	zy := z[yi]
	lse := softmaxInPlace(z)
	if gradAccum != nil {
		z[yi] -= 1 // z now holds the per-class coefficients p_c − 1{c=y}
		scatterGrad(gradAccum, z, x, k, d)
	}
	return lse - zy
}

// ExampleGradRow implements Spec. The returned row is sparse over the K·d
// parameter space whenever x is sparse (K·nnz stored entries).
func (m MaxEntropy) ExampleGradRow(theta []float64, x dataset.Row, y float64) dataset.Row {
	d := x.Dim()
	k := len(theta) / d
	z := m.logits(theta, x, k)
	yi := int(y)
	softmaxInPlace(z)
	z[yi] -= 1 // z now holds the per-class coefficients

	if sp, ok := x.(*dataset.SparseRow); ok {
		nnz := len(sp.Idx)
		idx := make([]int32, 0, k*nnz)
		val := make([]float64, 0, k*nnz)
		for c := 0; c < k; c++ {
			off := int32(c * d)
			coeff := z[c]
			for t, j := range sp.Idx {
				idx = append(idx, off+j)
				val = append(val, coeff*sp.Val[t])
			}
		}
		return &dataset.SparseRow{N: k * d, Idx: idx, Val: val}
	}
	out := make(dataset.DenseRow, k*d)
	for c := 0; c < k; c++ {
		if z[c] != 0 {
			x.AddTo(out[c*d:(c+1)*d], z[c])
		}
	}
	return out
}

// Predict implements Spec: argmax over class scores (the softmax is
// monotone, so logits suffice). Ties resolve to the lowest class index.
func (m MaxEntropy) Predict(theta []float64, x dataset.Row) float64 {
	d := x.Dim()
	k := len(theta) / d
	var zbuf [maxFusedClasses]float64
	z := zbuf[:]
	if k > maxFusedClasses {
		z = make([]float64, k)
	}
	z = z[:k]
	logitsInto(theta, x, k, d, z)
	best, bestZ := 0, math.Inf(-1)
	for c, v := range z {
		if v > bestZ {
			best, bestZ = c, v
		}
	}
	return float64(best)
}

// Hessian implements Hessianer for low-dimensional problems: the (c,c')
// block is (1/n) Σᵢ p_c(δ_{cc'} − p_{c'}) xᵢxᵢᵀ, plus βI. Sparse datasets
// (chosen per-dataset by measured density) scatter each example's
// nnz x nnz block directly instead of densifying: every surviving term
// uses the dense path's exact expression and zero-skip guards, so the two
// paths are bit-identical.
func (m MaxEntropy) Hessian(theta []float64, ds *dataset.Dataset) *linalg.Dense {
	d := ds.Dim
	k := len(theta) / d
	h := linalg.NewDense(k*d, k*d)
	sparse := dataset.SparsePath(ds.X)
	var xbuf []float64
	if !sparse {
		xbuf = make([]float64, d)
	}
	for i := 0; i < ds.Len(); i++ {
		x := ds.X[i]
		z := m.logits(theta, x, k)
		softmaxInPlace(z)
		if !sparse {
			linalg.Fill(xbuf, 0)
			x.AddTo(xbuf, 1)
		}
		for c := 0; c < k; c++ {
			for c2 := 0; c2 < k; c2++ {
				w := -z[c] * z[c2]
				if c == c2 {
					w += z[c]
				}
				if w == 0 {
					continue
				}
				if sparse {
					sp := x.(*dataset.SparseRow)
					idx := sp.Idx
					val := sp.Val[:len(idx)]
					base := c2 * d
					for t, a := range idx {
						va := val[t]
						if va == 0 {
							continue
						}
						s := w * va
						if s == 0 {
							continue
						}
						row := h.Row(c*d + int(a))
						for u, b := range idx {
							row[base+int(b)] += s * val[u]
						}
					}
					continue
				}
				for a := 0; a < d; a++ {
					if xbuf[a] == 0 {
						continue
					}
					row := h.Row(c*d + a)
					linalg.Axpy(w*xbuf[a], xbuf, row[c2*d:(c2+1)*d])
				}
			}
		}
	}
	h.ScaleInPlace(1 / float64(ds.Len()))
	h.AddDiag(m.Reg)
	return h
}
