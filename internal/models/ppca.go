package models

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"blinkml/internal/dataset"
	"blinkml/internal/linalg"
)

// PPCA is probabilistic principal component analysis (Tipping & Bishop),
// the unsupervised model class of the paper (§2.2, Appendix A). The
// parameter vector flattens the d x q factor-loading matrix W row-major:
// θ[i·q + j] = W_{ij}. The noise variance σ² is a derived quantity (the
// paper: "the optimal value for σ can be obtained once the values for Θ are
// determined"); TrainCustom records it on the spec so the per-example
// gradient evaluations at the trained parameter use the matching σ².
//
// Per-example gradient (Appendix A): q(Θ;xᵢ) = C⁻¹Θ − C⁻¹xᵢxᵢᵀC⁻¹Θ with
// C = ΘΘᵀ + σ²I, evaluated through the Woodbury identity so no d x d matrix
// is ever formed.
type PPCA struct {
	Factors int // q, number of factors (default 10, as in the paper §5.1)

	// sigmaSqBits holds math.Float64bits of the recorded noise variance
	// (0 means "not yet trained", read as 1.0). Atomic so that the
	// pool-parallel per-example gradient evaluations never serialize on a
	// lock.
	sigmaSqBits atomic.Uint64
	// cache holds the per-θ quantities shared by every example; an
	// immutable snapshot swapped atomically (racing recomputations for
	// the same θ are idempotent).
	cache atomic.Pointer[ppcaCache]
}

// ppcaCache is an immutable snapshot of the per-θ PPCA quantities.
type ppcaCache struct {
	theta   []float64
	minv    *linalg.Dense // (σ²I + WᵀW)⁻¹, q x q
	a       *linalg.Dense // C⁻¹W = W·Minv, d x q
	sigmaSq float64
}

// NewPPCA returns a PPCA spec with q factors.
func NewPPCA(q int) *PPCA { return &PPCA{Factors: q} }

// Name implements Spec.
func (*PPCA) Name() string { return "ppca" }

// Task implements Spec.
func (*PPCA) Task() dataset.Task { return dataset.Unsupervised }

// ParamDim implements Spec.
func (m *PPCA) ParamDim(ds *dataset.Dataset) int { return ds.Dim * m.q() }

func (m *PPCA) q() int {
	if m.Factors > 0 {
		return m.Factors
	}
	return 10
}

// Beta implements Spec: PPCA is unregularized (r(θ) = 0).
func (*PPCA) Beta() float64 { return 0 }

// SigmaSq returns the noise variance recorded by the last TrainCustom call
// (1.0 before any training).
func (m *PPCA) SigmaSq() float64 {
	bits := m.sigmaSqBits.Load()
	if bits == 0 {
		return 1
	}
	s := math.Float64frombits(bits)
	if s <= 0 {
		return 1
	}
	return s
}

// RestoreSigmaSq reinstates a previously recorded noise variance on the
// spec (deserialization support): gradient and likelihood evaluations at a
// stored θ need the σ² that TrainCustom originally found. Non-positive
// values are ignored.
func (m *PPCA) RestoreSigmaSq(s float64) {
	if s <= 0 {
		return
	}
	m.sigmaSqBits.Store(math.Float64bits(s))
	m.cache.Store(nil)
}

// TrainCustom implements CustomTrainer with the closed-form PPCA MLE: the
// top-q eigenpairs of the sample second-moment matrix S = (1/n)Σ xᵢxᵢᵀ give
// W = V_q(Λ_q − σ²I)^{1/2} and σ² = mean of the discarded eigenvalues.
// Columns are sign-canonicalized (largest-magnitude entry positive) so that
// independently trained models are comparable by cosine similarity.
func (m *PPCA) TrainCustom(ds *dataset.Dataset) ([]float64, int, error) {
	n, d, q := ds.Len(), ds.Dim, m.q()
	if q >= d {
		return nil, 0, fmt.Errorf("models: PPCA needs q < d, got q=%d d=%d", q, d)
	}
	if n < 2 {
		return nil, 0, errors.New("models: PPCA needs at least 2 rows")
	}
	// Densify the data matrix and take its thin SVD; singular values map to
	// eigenvalues of S via λ_j = s_j²/n.
	a := linalg.NewDense(n, d)
	var trace float64
	for i := 0; i < n; i++ {
		row := a.Row(i)
		ds.X[i].AddTo(row, 1)
		trace += linalg.Dot(row, row)
	}
	trace /= float64(n)
	svd, err := linalg.NewThinSVD(a, 0)
	if err != nil {
		return nil, 0, fmt.Errorf("models: PPCA SVD failed: %w", err)
	}
	kept := q
	if svd.Rank() < kept {
		kept = svd.Rank()
	}
	var topSum float64
	lambda := make([]float64, kept)
	for j := 0; j < kept; j++ {
		lambda[j] = svd.S[j] * svd.S[j] / float64(n)
		topSum += lambda[j]
	}
	sigmaSq := (trace - topSum) / float64(d-q)
	if sigmaSq < 1e-8 {
		sigmaSq = 1e-8
	}
	theta := make([]float64, d*q)
	for j := 0; j < kept; j++ {
		scale := math.Sqrt(math.Max(lambda[j]-sigmaSq, 0))
		// Sign canonicalization: flip so the largest-|entry| is positive.
		maxAbs, sign := 0.0, 1.0
		for i := 0; i < d; i++ {
			v := svd.V.At(i, j)
			if av := math.Abs(v); av > maxAbs {
				maxAbs = av
				if v < 0 {
					sign = -1
				} else {
					sign = 1
				}
			}
		}
		for i := 0; i < d; i++ {
			theta[i*q+j] = sign * scale * svd.V.At(i, j)
		}
	}
	m.sigmaSqBits.Store(math.Float64bits(sigmaSq))
	m.cache.Store(nil)
	return theta, 1, nil
}

// wMatrix reshapes θ into the d x q loading matrix.
func (m *PPCA) wMatrix(theta []float64) *linalg.Dense {
	q := m.q()
	d := len(theta) / q
	return linalg.NewDenseFrom(d, q, theta)
}

// prepared returns (Minv, A=C⁻¹W, σ²) for θ, caching across calls with the
// same parameter values (PerExampleGradRows calls this once per example).
// The cache is a lock-free atomic snapshot: concurrent evaluations at the
// same θ — the pool-parallel objective and gradient-row loops — share one
// hit without serializing, and a racing recomputation just stores an
// equivalent snapshot.
func (m *PPCA) prepared(theta []float64) (*linalg.Dense, *linalg.Dense, float64) {
	if c := m.cache.Load(); c != nil && len(c.theta) == len(theta) && c.sigmaSq == m.SigmaSq() {
		same := true
		for i, v := range theta {
			if c.theta[i] != v {
				same = false
				break
			}
		}
		if same {
			return c.minv, c.a, c.sigmaSq
		}
	}
	sigmaSq := m.SigmaSq()
	w := m.wMatrix(theta)
	mm := linalg.SyrkT(w) // WᵀW, q x q
	mm.AddDiag(sigmaSq)
	minv, err := linalg.Inverse(mm)
	if err != nil {
		// σ² > 0 makes M positive definite; a failure here means θ has
		// non-finite entries. Fall back to a scaled identity so callers see
		// finite garbage rather than a panic deep in sampling code.
		minv = linalg.Identity(mm.Rows)
		minv.ScaleInPlace(1 / sigmaSq)
	}
	a := linalg.MatMul(w, minv) // C⁻¹W = W·Minv
	m.cache.Store(&ppcaCache{theta: linalg.CopyVec(theta), minv: minv, a: a, sigmaSq: sigmaSq})
	return minv, a, sigmaSq
}

// cInvX computes u = C⁻¹x = (x − W·Minv·(Wᵀx))/σ² via Woodbury.
func (m *PPCA) cInvX(w, minv *linalg.Dense, sigmaSq float64, x dataset.Row) []float64 {
	d, q := w.Rows, w.Cols
	wx := make([]float64, q) // Wᵀx
	for j := 0; j < q; j++ {
		wx[j] = 0
	}
	x.ForEach(func(i int, v float64) {
		linalg.Axpy(v, w.Row(i), wx)
	})
	mw := make([]float64, q)
	minv.MulVec(wx, mw)
	u := make([]float64, d)
	x.AddTo(u, 1)
	// u -= W * mw
	for i := 0; i < d; i++ {
		u[i] -= linalg.Dot(w.Row(i), mw)
	}
	linalg.Scale(1/sigmaSq, u)
	return u
}

// ExampleLossGrad implements Spec: the per-example negative log-likelihood
// ½(d·log 2π + log|C| + xᵀC⁻¹x) and its gradient A − u·(xᵀA) flattened.
func (m *PPCA) ExampleLossGrad(theta []float64, x dataset.Row, _ float64, gradAccum []float64) float64 {
	minv, a, sigmaSq := m.prepared(theta)
	w := m.wMatrix(theta)
	d, q := w.Rows, w.Cols
	u := m.cInvX(w, minv, sigmaSq, x)
	if gradAccum != nil {
		xa := make([]float64, q) // xᵀA
		x.ForEach(func(i int, v float64) {
			linalg.Axpy(v, a.Row(i), xa)
		})
		for i := 0; i < d; i++ {
			dst := gradAccum[i*q : (i+1)*q]
			linalg.Axpy(1, a.Row(i), dst)
			linalg.Axpy(-u[i], xa, dst)
		}
	}
	// log|C| = (d−q)·log σ² + log|M| = (d−q)·log σ² − log|Minv|.
	luMinv, err := linalg.NewLU(minv)
	logDetC := float64(d-q) * math.Log(sigmaSq)
	if err == nil {
		logDetC -= math.Log(math.Abs(luMinv.Det()))
	}
	xCx := 0.0
	x.ForEach(func(i int, v float64) { xCx += v * u[i] })
	return 0.5 * (float64(d)*math.Log(2*math.Pi) + logDetC + xCx)
}

// ExampleGradRow implements Spec.
func (m *PPCA) ExampleGradRow(theta []float64, x dataset.Row, _ float64) dataset.Row {
	minv, a, sigmaSq := m.prepared(theta)
	w := m.wMatrix(theta)
	d, q := w.Rows, w.Cols
	u := m.cInvX(w, minv, sigmaSq, x)
	xa := make([]float64, q)
	x.ForEach(func(i int, v float64) {
		linalg.Axpy(v, a.Row(i), xa)
	})
	out := make(dataset.DenseRow, d*q)
	for i := 0; i < d; i++ {
		dst := out[i*q : (i+1)*q]
		copy(dst, a.Row(i))
		linalg.Axpy(-u[i], xa, dst)
	}
	return out
}

// Predict implements Spec. PPCA is unsupervised; its model difference is
// computed on parameters (Appendix C), so Predict returns the squared
// projection length of x onto the factor space — a scalar summary used only
// by diagnostics.
func (m *PPCA) Predict(theta []float64, x dataset.Row) float64 {
	w := m.wMatrix(theta)
	q := w.Cols
	wx := make([]float64, q)
	x.ForEach(func(i int, v float64) {
		linalg.Axpy(v, w.Row(i), wx)
	})
	return linalg.Dot(wx, wx)
}
