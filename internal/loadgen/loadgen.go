// Package loadgen is the open-loop load harness behind blinkml-bench -load:
// it drives a live blinkml-serve endpoint at an offered request rate (or a
// stepped QPS sweep), records latency against each request's *intended*
// start time, and reports tail quantiles, achieved vs offered QPS, error
// rate, and the maximum sustainable QPS under a latency SLO.
//
// The generator is open-loop on purpose. A closed-loop client (fixed
// concurrency, next request after the previous response) slows down exactly
// when the server does, silently dropping the requests that would have
// observed the stall — the coordinated-omission trap. Here arrival times
// are fixed up front by the schedule (constant-rate or Poisson), and when
// the server falls behind, queueing delay is charged to every late request:
// latency is measured from the intended start, not the actual send. A
// one-second server stall therefore inflates the recorded tail by the full
// backlog it caused, which is what a real user population would experience.
//
// The Clock seam exists so the correction is testable: with a fake clock
// and a deterministic stalling target, the inflated tail is exact.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"blinkml/internal/obs"
)

// Clock abstracts time for the runner; RealClock is used in production and
// a deterministic fake in tests.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

type realClock struct{}

func (realClock) Now() time.Time        { return time.Now() }
func (realClock) Sleep(d time.Duration) { time.Sleep(d) }

// RealClock returns the wall clock.
func RealClock() Clock { return realClock{} }

// Arrival selects the open-loop arrival process.
type Arrival string

const (
	// Constant spaces intended starts exactly 1/QPS apart.
	Constant Arrival = "constant"
	// Poisson draws exponential inter-arrivals with mean 1/QPS (seeded, so
	// a schedule is reproducible).
	Poisson Arrival = "poisson"
)

// ParseArrival validates an arrival-process name.
func ParseArrival(s string) (Arrival, error) {
	switch Arrival(s) {
	case Constant, Poisson:
		return Arrival(s), nil
	case "":
		return Constant, nil
	}
	return "", fmt.Errorf("loadgen: unknown arrival process %q (want constant|poisson)", s)
}

// Target issues one request. Implementations must be safe for concurrent
// use; status is the HTTP status code (0 for transport-level failures).
type Target interface {
	Do(ctx context.Context) (status int, err error)
}

// Schedule precomputes the intended start offsets for an open-loop run of
// duration d at the offered rate qps.
func Schedule(qps float64, d time.Duration, arrival Arrival, seed int64) ([]time.Duration, error) {
	if qps <= 0 {
		return nil, fmt.Errorf("loadgen: offered QPS must be positive, got %g", qps)
	}
	if d <= 0 {
		return nil, fmt.Errorf("loadgen: step duration must be positive, got %v", d)
	}
	n := int(qps * d.Seconds())
	if n < 1 {
		n = 1
	}
	out := make([]time.Duration, n)
	switch arrival {
	case Constant, "":
		interval := float64(time.Second) / qps
		for i := range out {
			out[i] = time.Duration(float64(i) * interval)
		}
	case Poisson:
		rng := rand.New(rand.NewSource(seed))
		t := 0.0
		for i := range out {
			t += rng.ExpFloat64() / qps
			out[i] = time.Duration(t * float64(time.Second))
		}
	default:
		return nil, fmt.Errorf("loadgen: unknown arrival process %q", arrival)
	}
	return out, nil
}

// StepConfig describes one offered-QPS step.
type StepConfig struct {
	// QPS is the offered request rate.
	QPS float64
	// Duration is the step length; QPS*Duration requests are scheduled.
	Duration time.Duration
	// Arrival is the arrival process (default Constant).
	Arrival Arrival
	// Seed seeds the Poisson schedule and any target-side randomness.
	Seed int64
	// MaxInflight bounds concurrent senders (default 64). It caps resource
	// use, not the schedule: when all senders are busy, intended start
	// times keep accumulating and the backlog is charged to latency.
	MaxInflight int
	// Clock defaults to the wall clock.
	Clock Clock
}

func (c StepConfig) withDefaults() StepConfig {
	if c.MaxInflight <= 0 {
		c.MaxInflight = 64
	}
	if c.Clock == nil {
		c.Clock = realClock{}
	}
	if c.Arrival == "" {
		c.Arrival = Constant
	}
	return c
}

// StepResult is one completed step of a load run — the JSON shape appended
// to BENCH_load.json.
type StepResult struct {
	OfferedQPS  float64 `json:"offered_qps"`
	AchievedQPS float64 `json:"achieved_qps"`
	DurationS   float64 `json:"duration_s"`
	Sent        int     `json:"sent"`
	Errors      int     `json:"errors"`
	ErrorRate   float64 `json:"error_rate"`
	// Latency quantiles are coordinated-omission-safe: measured from each
	// request's intended start per the open-loop schedule.
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	// SLOLatencyMs is the observed latency at the sweep's SLO quantile;
	// SLOOK reports whether this step met the SLO (latency bound, error
	// rate, and achieved rate within 90% of offered).
	SLOLatencyMs float64 `json:"slo_latency_ms,omitempty"`
	SLOOK        bool    `json:"slo_ok"`

	// Hist carries the full latency histogram for programmatic consumers
	// (not serialized; the quantiles above are the durable record).
	Hist *obs.Histogram `json:"-"`
}

// TraceID is the deterministic per-request trace identity: schedule seed
// plus schedule index. Reproducible, so a recorded offender can be replayed
// by rerunning the same step.
func TraceID(seed int64, index int) string {
	return fmt.Sprintf("load-%x-%06d", uint64(seed), index)
}

// RunStep drives one open-loop step against target and reports the
// intended-start-based latency distribution.
func RunStep(ctx context.Context, target Target, cfg StepConfig) (*StepResult, error) {
	if target == nil {
		return nil, errors.New("loadgen: nil target")
	}
	cfg = cfg.withDefaults()
	offsets, err := Schedule(cfg.QPS, cfg.Duration, cfg.Arrival, cfg.Seed)
	if err != nil {
		return nil, err
	}
	clock := cfg.Clock
	hist := obs.NewHistogram()
	var next, sent, failed atomic.Int64
	start := clock.Now()
	workers := cfg.MaxInflight
	if workers > len(offsets) {
		workers = len(offsets)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1) - 1)
				if i >= len(offsets) {
					return
				}
				intended := start.Add(offsets[i])
				if d := intended.Sub(clock.Now()); d > 0 {
					clock.Sleep(d)
				}
				// Each request carries a trace ID derived from its schedule
				// index (stamped as X-Blinkml-Trace by the HTTP targets), so a
				// slow request in a server-side flight-record bundle maps back
				// to the exact point in the offered schedule that produced it.
				status, err := target.Do(obs.WithTrace(ctx, TraceID(cfg.Seed, i)))
				// Latency from the intended start: a late send (backlogged
				// schedule) charges its queueing delay to the tail.
				lat := clock.Now().Sub(intended)
				hist.Observe(float64(lat) / float64(time.Millisecond))
				sent.Add(1)
				if err != nil || status == 0 || status >= 400 {
					failed.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := clock.Now().Sub(start)
	if elapsed <= 0 {
		elapsed = cfg.Duration
	}
	n := int(sent.Load())
	res := &StepResult{
		OfferedQPS:  cfg.QPS,
		AchievedQPS: float64(n) / elapsed.Seconds(),
		DurationS:   elapsed.Seconds(),
		Sent:        n,
		Errors:      int(failed.Load()),
		P50Ms:       hist.Quantile(0.50),
		P95Ms:       hist.Quantile(0.95),
		P99Ms:       hist.Quantile(0.99),
		P999Ms:      hist.Quantile(0.999),
		Hist:        hist,
	}
	if n > 0 {
		res.ErrorRate = float64(res.Errors) / float64(n)
		res.MeanMs = hist.SumMs() / float64(n)
	}
	if ctx.Err() != nil && n < len(offsets) {
		return res, ctx.Err()
	}
	return res, nil
}

// SLO is the service-level objective a sweep evaluates each step against.
type SLO struct {
	// Quantile is the latency quantile the bound applies to (default 0.99).
	Quantile float64 `json:"quantile"`
	// LatencyMs is the latency bound at that quantile (default 250).
	LatencyMs float64 `json:"latency_ms"`
	// MaxErrorRate is the tolerated error fraction (default 0.01).
	MaxErrorRate float64 `json:"max_error_rate"`
}

// WithDefaults fills the zero fields.
func (s SLO) WithDefaults() SLO {
	if s.Quantile <= 0 || s.Quantile >= 1 {
		s.Quantile = 0.99
	}
	if s.LatencyMs <= 0 {
		s.LatencyMs = obs.DefaultSLOLatencyMs
	}
	if s.MaxErrorRate <= 0 {
		s.MaxErrorRate = 0.01
	}
	return s
}

// achievedFloor is the fraction of the offered rate the generator must
// actually sustain for a step to count as met: below it the server (or the
// harness) is saturated and the offered rate is fiction.
const achievedFloor = 0.9

// Meets evaluates one step against the SLO.
func (s SLO) Meets(r *StepResult) bool {
	return r.SLOLatencyMs <= s.LatencyMs &&
		r.ErrorRate <= s.MaxErrorRate &&
		r.AchievedQPS >= achievedFloor*r.OfferedQPS
}

// SweepConfig describes a stepped-QPS sweep.
type SweepConfig struct {
	// StepQPS are the offered rates, run in order (ascending for a max-
	// sustainable search).
	StepQPS []float64
	// StepDuration is the length of each step.
	StepDuration time.Duration
	Arrival      Arrival
	Seed         int64
	MaxInflight  int
	SLO          SLO
	Clock        Clock
	// OnStep, when non-nil, observes each finished step (progress output).
	OnStep func(StepResult)
}

// SweepResult is a completed sweep: every step plus the highest offered QPS
// that met the SLO (0 when none did).
type SweepResult struct {
	Arrival           Arrival      `json:"arrival"`
	SLO               SLO          `json:"slo"`
	Steps             []StepResult `json:"steps"`
	MaxSustainableQPS float64      `json:"max_sustainable_qps"`
}

// RunSweep runs each offered-QPS step in order and evaluates the SLO per
// step. Steps keep running after a failure — the shape of the degradation
// curve is the point of the sweep.
func RunSweep(ctx context.Context, target Target, cfg SweepConfig) (*SweepResult, error) {
	if len(cfg.StepQPS) == 0 {
		return nil, errors.New("loadgen: sweep needs at least one QPS step")
	}
	slo := cfg.SLO.WithDefaults()
	out := &SweepResult{Arrival: cfg.Arrival, SLO: slo}
	if out.Arrival == "" {
		out.Arrival = Constant
	}
	for si, qps := range cfg.StepQPS {
		r, err := RunStep(ctx, target, StepConfig{
			QPS:         qps,
			Duration:    cfg.StepDuration,
			Arrival:     cfg.Arrival,
			Seed:        cfg.Seed + int64(si),
			MaxInflight: cfg.MaxInflight,
			Clock:       cfg.Clock,
		})
		if r != nil {
			r.SLOLatencyMs = r.Hist.Quantile(slo.Quantile)
			r.SLOOK = slo.Meets(r)
			out.Steps = append(out.Steps, *r)
			if r.SLOOK && qps > out.MaxSustainableQPS {
				out.MaxSustainableQPS = qps
			}
			if cfg.OnStep != nil {
				cfg.OnStep(*r)
			}
		}
		if err != nil {
			return out, err
		}
	}
	return out, nil
}
