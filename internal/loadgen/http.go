package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"time"

	"blinkml/internal/obs"
)

// newLoadClient builds an http.Client sized for an open-loop generator:
// enough idle connections per host that the sender pool never serializes on
// connection churn.
func newLoadClient(maxInflight int) *http.Client {
	if maxInflight <= 0 {
		maxInflight = 64
	}
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = maxInflight
	tr.MaxIdleConnsPerHost = maxInflight
	return &http.Client{Transport: tr}
}

// PredictTarget drives POST /v1/models/{id}/predict with a fixed,
// pre-marshalled batch of rows — the serving hot path. The body is built
// once so the generator measures the server, not client-side JSON work.
type PredictTarget struct {
	client *http.Client
	url    string
	body   []byte
	// Batch is the rows-per-request the target was built with.
	Batch int
	// ModelID is the resolved model (after any auto-pick).
	ModelID string
}

// modelInfo is the slice of GET /v1/models/{id} the target needs.
type modelInfo struct {
	ID  string `json:"id"`
	Dim int    `json:"dim"`
}

// NewPredictTarget resolves the model's input dimension from the server and
// prepares the request body: batch rows of seeded values in [-1, 1). An
// empty modelID picks the first registered model.
func NewPredictTarget(baseURL, modelID string, batch int, seed int64, maxInflight int) (*PredictTarget, error) {
	if batch <= 0 {
		batch = 1
	}
	client := newLoadClient(maxInflight)
	if modelID == "" {
		var list struct {
			Models []modelInfo `json:"models"`
		}
		if err := getJSON(client, baseURL+"/v1/models", &list); err != nil {
			return nil, fmt.Errorf("loadgen: list models: %w", err)
		}
		if len(list.Models) == 0 {
			return nil, errors.New("loadgen: no registered models to predict against (train one first or pass -model)")
		}
		modelID = list.Models[0].ID
	}
	var info modelInfo
	if err := getJSON(client, baseURL+"/v1/models/"+modelID, &info); err != nil {
		return nil, fmt.Errorf("loadgen: resolve model %s: %w", modelID, err)
	}
	if info.Dim <= 0 {
		return nil, fmt.Errorf("loadgen: model %s reports dim %d", modelID, info.Dim)
	}
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, batch)
	for i := range rows {
		row := make([]float64, info.Dim)
		for j := range row {
			row[j] = 2*rng.Float64() - 1
		}
		rows[i] = row
	}
	body, err := json.Marshal(struct {
		Rows [][]float64 `json:"rows"`
	}{Rows: rows})
	if err != nil {
		return nil, err
	}
	return &PredictTarget{
		client:  client,
		url:     baseURL + "/v1/models/" + modelID + "/predict",
		body:    body,
		Batch:   batch,
		ModelID: modelID,
	}, nil
}

// Do implements Target.
func (t *PredictTarget) Do(ctx context.Context) (int, error) {
	return doPost(ctx, t.client, t.url, t.body)
}

// TrainTarget drives POST /v1/train submission: each request enqueues a
// small synthetic training job and only the admission path (validation,
// queue backpressure) is measured — a 202 is success, a 503 shed counts as
// an error. It exists to load-test the control plane, not training itself.
type TrainTarget struct {
	client *http.Client
	url    string
	body   []byte
}

// NewTrainTarget prepares a fixed small synthetic train submission.
func NewTrainTarget(baseURL string, seed int64, maxInflight int) (*TrainTarget, error) {
	body, err := json.Marshal(map[string]any{
		"model":   map[string]any{"name": "logistic", "reg": 0.001},
		"dataset": map[string]any{"synthetic": map[string]any{"name": "higgs", "rows": 2000, "dim": 8, "seed": seed}},
		"epsilon": 0.1,
		"delta":   0.1,
		"options": map[string]any{"seed": seed, "initial_sample_size": 500},
	})
	if err != nil {
		return nil, err
	}
	return &TrainTarget{client: newLoadClient(maxInflight), url: baseURL + "/v1/train", body: body}, nil
}

// Do implements Target.
func (t *TrainTarget) Do(ctx context.Context) (int, error) {
	return doPost(ctx, t.client, t.url, t.body)
}

// doPost issues one POST and fully drains the response so connections are
// reused; the status code is the result (0 on transport failure).
func doPost(ctx context.Context, client *http.Client, url string, body []byte) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if trace := obs.TraceID(ctx); trace != "" {
		req.Header.Set(obs.TraceHeader, trace)
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	return resp.StatusCode, nil
}

func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("GET %s: %s: %s", url, resp.Status, bytes.TrimSpace(b))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// LoadRun is one appended BENCH_load.json entry: a full sweep plus the
// environment stanza that keeps cross-machine trajectories comparable.
type LoadRun struct {
	Timestamp string  `json:"timestamp"`
	Endpoint  string  `json:"endpoint"`
	ModelID   string  `json:"model_id,omitempty"`
	Batch     int     `json:"batch,omitempty"`
	Arrival   Arrival `json:"arrival"`
	Env       obs.Env `json:"env"`
	SLO       SLO     `json:"slo"`
	// Steps are the sweep's offered-QPS steps in run order.
	Steps             []StepResult `json:"steps"`
	MaxSustainableQPS float64      `json:"max_sustainable_qps"`
}

// LoadFile is the BENCH_load.json envelope. Runs accumulate: every
// blinkml-bench -load invocation appends one, so the file is the repo's
// serving-throughput trajectory.
type LoadFile struct {
	Runs []LoadRun `json:"runs"`
}

// ReadLoadFile parses an existing BENCH_load.json; a missing file is an
// empty trajectory, not an error.
func ReadLoadFile(path string) (*LoadFile, error) {
	raw, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return &LoadFile{}, nil
	}
	if err != nil {
		return nil, err
	}
	var f LoadFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("loadgen: parse %s: %w", path, err)
	}
	return &f, nil
}

// AppendRun appends one run to the load file at path, creating it if
// needed. The write is whole-file (the file is small and append atomicity
// across crashes is not a requirement for a benchmark log).
func AppendRun(path string, run LoadRun) error {
	f, err := ReadLoadFile(path)
	if err != nil {
		return err
	}
	f.Runs = append(f.Runs, run)
	out, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// NewRun assembles the durable record of one sweep.
func NewRun(endpoint, modelID string, batch int, sweep *SweepResult, at time.Time) LoadRun {
	return LoadRun{
		Timestamp:         at.UTC().Format(time.RFC3339),
		Endpoint:          endpoint,
		ModelID:           modelID,
		Batch:             batch,
		Arrival:           sweep.Arrival,
		Env:               obs.CaptureEnv(),
		SLO:               sweep.SLO,
		Steps:             sweep.Steps,
		MaxSustainableQPS: sweep.MaxSustainableQPS,
	}
}
