package loadgen

import (
	"context"
	"math"
	"sort"
	"sync"
	"testing"
	"time"
)

// fakeClock is a deterministic manual clock: Sleep advances time instantly.
// With MaxInflight 1 every step run is fully sequential, so recorded
// latencies are exact functions of the schedule and the target's service
// times.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(0, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// fakeTarget serves request i by advancing the fake clock by service(i) —
// a zero-network in-process server model.
type fakeTarget struct {
	clock   *fakeClock
	mu      sync.Mutex
	calls   int
	service func(i int) time.Duration
	status  func(i int) int
}

func (t *fakeTarget) Do(ctx context.Context) (int, error) {
	t.mu.Lock()
	i := t.calls
	t.calls++
	t.mu.Unlock()
	t.clock.Sleep(t.service(i))
	if t.status != nil {
		return t.status(i), nil
	}
	return 200, nil
}

func TestScheduleConstantAndPoisson(t *testing.T) {
	offs, err := Schedule(100, time.Second, Constant, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(offs) != 100 {
		t.Fatalf("constant schedule length = %d, want 100", len(offs))
	}
	if offs[0] != 0 || offs[10] != 100*time.Millisecond {
		t.Fatalf("constant offsets wrong: [0]=%v [10]=%v", offs[0], offs[10])
	}

	p1, err := Schedule(100, time.Second, Poisson, 7)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := Schedule(100, time.Second, Poisson, 7)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("poisson schedule not deterministic in seed at %d", i)
		}
	}
	if !sort.SliceIsSorted(p1, func(i, j int) bool { return p1[i] < p1[j] }) {
		t.Fatal("poisson offsets must be non-decreasing")
	}
	// Mean inter-arrival over 100 draws should be near 10ms (law of large
	// numbers; seeded, so the tolerance is stable).
	mean := p1[len(p1)-1].Seconds() / float64(len(p1))
	if mean < 0.005 || mean > 0.02 {
		t.Fatalf("poisson mean inter-arrival = %gs, want ~0.01s", mean)
	}

	if _, err := Schedule(0, time.Second, Constant, 1); err == nil {
		t.Fatal("zero QPS must error")
	}
	if _, err := Schedule(10, time.Second, "weird", 1); err == nil {
		t.Fatal("unknown arrival must error")
	}
}

// TestRecorderQuantileAccuracy feeds a known latency distribution through
// the full open-loop recorder (unloaded: inter-arrival far above service
// time, so recorded latency == service time) and checks the histogram
// quantiles against the exact empirical ones within the geometric-bucket
// resolution (~41% relative error plus interpolation).
func TestRecorderQuantileAccuracy(t *testing.T) {
	clock := newFakeClock()
	// Deterministic long-tailed distribution on [1, 1000] ms:
	// service(i) = 1000 / (1 + 999*u) with u uniform via a seeded LCG —
	// anything reproducible with a computable empirical quantile works.
	lat := make([]float64, 2000)
	x := uint64(42)
	for i := range lat {
		x = x*6364136223846793005 + 1442695040888963407
		u := float64(x>>11) / float64(1<<53)
		lat[i] = 1 + 999*u*u // quadratic: dense head, long tail
	}
	target := &fakeTarget{clock: clock, service: func(i int) time.Duration {
		return time.Duration(lat[i] * float64(time.Millisecond))
	}}
	// 0.2 QPS => 5s inter-arrival >> max 1s service: zero queueing.
	res, err := RunStep(context.Background(), target, StepConfig{
		QPS:         0.2,
		Duration:    time.Duration(len(lat)) * 5 * time.Second,
		Arrival:     Constant,
		MaxInflight: 1,
		Clock:       clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != len(lat) {
		t.Fatalf("sent %d, want %d", res.Sent, len(lat))
	}
	sorted := append([]float64(nil), lat...)
	sort.Float64s(sorted)
	exact := func(q float64) float64 { return sorted[int(q*float64(len(sorted)))-1] }
	for _, tc := range []struct {
		name     string
		got, ref float64
	}{
		{"p50", res.P50Ms, exact(0.50)},
		{"p95", res.P95Ms, exact(0.95)},
		{"p99", res.P99Ms, exact(0.99)},
	} {
		ratio := tc.got / tc.ref
		if math.IsNaN(ratio) || ratio < 0.55 || ratio > 1.8 {
			t.Errorf("%s = %.2fms vs exact %.2fms (ratio %.2f) outside bucket resolution", tc.name, tc.got, tc.ref, ratio)
		}
	}
	// The mean is tracked exactly (sum is not bucketed).
	var sum float64
	for _, v := range lat {
		sum += v
	}
	if got, want := res.MeanMs, sum/float64(len(lat)); math.Abs(got-want) > 1e-6 {
		t.Errorf("mean = %v, want %v exactly", got, want)
	}
	if res.Errors != 0 || res.ErrorRate != 0 {
		t.Errorf("unexpected errors: %+v", res)
	}
}

// TestCoordinatedOmissionCorrection: a server that stalls 1s on the first
// request then serves in 1ms must inflate the *recorded* tail by the whole
// backlog. A closed-loop recorder (latency from actual send time) would
// report ~1ms for everything but the first request; the open-loop recorder
// charges every queued request its wait from the intended start.
func TestCoordinatedOmissionCorrection(t *testing.T) {
	clock := newFakeClock()
	const serviceMs = 1.0
	target := &fakeTarget{clock: clock, service: func(i int) time.Duration {
		if i == 0 {
			return time.Second // the stall
		}
		return time.Duration(serviceMs * float64(time.Millisecond))
	}}
	// 100 QPS for 1s: arrivals every 10ms; the 1s stall backs up the whole
	// schedule. Request k (k>=1) starts at 1000+(k-1)*1ms but was intended
	// at 10k ms => latency 1000+k-10k-? — deterministic; min latency is
	// ~109ms at k=99, max 1000ms at k=0.
	res, err := RunStep(context.Background(), target, StepConfig{
		QPS:         100,
		Duration:    time.Second,
		Arrival:     Constant,
		MaxInflight: 1,
		Clock:       clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != 100 {
		t.Fatalf("sent %d, want 100", res.Sent)
	}
	// Exact latencies: k=0 -> 1000ms; k>=1 -> (1000 + k*1) - 10k = 1000-9k.
	// So min = 1000-9*99 = 109ms, median ~ 1000-9*50 = 550ms.
	if res.P50Ms < 300 {
		t.Errorf("p50 = %.1fms; coordinated-omission correction lost the backlog (service time is %gms)", res.P50Ms, serviceMs)
	}
	if res.P99Ms < 700 {
		t.Errorf("p99 = %.1fms, want near the 1000ms stall", res.P99Ms)
	}
	// The exact mean survives bucketing: sum = 1000 + Σ_{k=1..99} (1000-9k)
	wantMean := (1000.0 + (99*1000.0 - 9*99*100/2)) / 100.0
	if math.Abs(res.MeanMs-wantMean) > 1e-6 {
		t.Errorf("mean = %vms, want exactly %vms", res.MeanMs, wantMean)
	}
	// Achieved rate reflects the stall: 100 requests in ~1.1s < offered.
	if res.AchievedQPS >= res.OfferedQPS {
		t.Errorf("achieved %.1f >= offered %.1f under a stalled server", res.AchievedQPS, res.OfferedQPS)
	}
}

// TestSweepFindsMaxSustainableQPS: with a fixed 5ms service time and one
// sender, capacity is 200 QPS. Steps at 50/100/400 must pass, pass, fail
// the SLO, yielding max sustainable 100.
func TestSweepFindsMaxSustainableQPS(t *testing.T) {
	clock := newFakeClock()
	target := &fakeTarget{clock: clock, service: func(i int) time.Duration {
		return 5 * time.Millisecond
	}}
	sweep, err := RunSweep(context.Background(), target, SweepConfig{
		StepQPS:      []float64{50, 100, 400},
		StepDuration: 2 * time.Second,
		Arrival:      Constant,
		MaxInflight:  1,
		SLO:          SLO{Quantile: 0.99, LatencyMs: 50, MaxErrorRate: 0.01},
		Clock:        clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Steps) != 3 {
		t.Fatalf("got %d steps, want 3", len(sweep.Steps))
	}
	for i, wantOK := range []bool{true, true, false} {
		if sweep.Steps[i].SLOOK != wantOK {
			t.Errorf("step %d (%.0f qps) slo_ok = %v, want %v: %+v",
				i, sweep.Steps[i].OfferedQPS, sweep.Steps[i].SLOOK, wantOK, sweep.Steps[i])
		}
	}
	if sweep.MaxSustainableQPS != 100 {
		t.Errorf("max sustainable = %.0f, want 100", sweep.MaxSustainableQPS)
	}
	// Offered steps are recorded monotone, as given.
	for i := 1; i < len(sweep.Steps); i++ {
		if sweep.Steps[i].OfferedQPS <= sweep.Steps[i-1].OfferedQPS {
			t.Errorf("steps not monotone at %d", i)
		}
	}
}

// TestStepErrorsCounted: non-2xx statuses and transport failures count
// toward the error rate the SLO gate uses.
func TestStepErrorsCounted(t *testing.T) {
	clock := newFakeClock()
	target := &fakeTarget{
		clock:   clock,
		service: func(i int) time.Duration { return time.Millisecond },
		status: func(i int) int {
			if i%4 == 3 {
				return 503
			}
			return 200
		},
	}
	res, err := RunStep(context.Background(), target, StepConfig{
		QPS: 100, Duration: time.Second, MaxInflight: 1, Clock: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 25 || math.Abs(res.ErrorRate-0.25) > 1e-9 {
		t.Fatalf("errors = %d rate %.3f, want 25 / 0.25", res.Errors, res.ErrorRate)
	}
	if (SLO{MaxErrorRate: 0.01}.WithDefaults()).Meets(res) {
		t.Fatal("25% error rate must fail the SLO")
	}
}

// TestAppendRunAccumulates: the BENCH_load.json trajectory grows one run
// per invocation and round-trips.
func TestAppendRunAccumulates(t *testing.T) {
	path := t.TempDir() + "/BENCH_load.json"
	sweep := &SweepResult{
		Arrival:           Constant,
		SLO:               SLO{}.WithDefaults(),
		Steps:             []StepResult{{OfferedQPS: 100, AchievedQPS: 99, Sent: 500, P50Ms: 1, P99Ms: 2, SLOOK: true}},
		MaxSustainableQPS: 100,
	}
	at := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 2; i++ {
		if err := AppendRun(path, NewRun("/v1/models/{id}/predict", "m-1", 4, sweep, at)); err != nil {
			t.Fatal(err)
		}
	}
	f, err := ReadLoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Runs) != 2 {
		t.Fatalf("runs = %d, want 2", len(f.Runs))
	}
	r := f.Runs[1]
	if r.Endpoint != "/v1/models/{id}/predict" || r.ModelID != "m-1" || r.Batch != 4 {
		t.Fatalf("run round-trip lost fields: %+v", r)
	}
	if r.Env.GoVersion == "" || r.Env.NumCPU <= 0 || r.Env.GOMAXPROCS <= 0 {
		t.Fatalf("env stanza incomplete: %+v", r.Env)
	}
	if r.Timestamp != "2026-08-07T12:00:00Z" {
		t.Fatalf("timestamp = %q", r.Timestamp)
	}
	if len(r.Steps) != 1 || r.Steps[0].OfferedQPS != 100 {
		t.Fatalf("steps lost: %+v", r.Steps)
	}
}
