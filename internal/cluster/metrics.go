package cluster

import (
	"expvar"
	"sync"

	"blinkml/internal/obs"
)

// Metrics are the cluster's expvar counters, published once under the
// "blinkml_cluster" map so repeated coordinator construction (tests,
// restarts in one process) reuses the same vars instead of panicking on
// re-publish.
type Metrics struct {
	Workers       *expvar.Int // gauge: registered workers
	WorkersJoined *expvar.Int // total registrations
	WorkersLost   *expvar.Int // workers reaped on heartbeat timeout

	TasksSubmitted *expvar.Int
	TasksPending   *expvar.Int // gauge
	TasksLeased    *expvar.Int // gauge
	TasksSucceeded *expvar.Int
	TasksFailed    *expvar.Int
	TasksCancelled *expvar.Int
	TasksRequeued  *expvar.Int // requeues after worker loss / give-back
	LeasesGranted  *expvar.Int
	// TaskLeaseWait is how long a task sat queued before a worker leased it
	// (ms) — the scheduling delay a fleet that is too small shows first.
	TaskLeaseWait *obs.Histogram
	// TaskLeaseToComplete is how long a leased task took to come back
	// successfully (ms), fleet-wide; Status breaks it down per worker.
	TaskLeaseToComplete *obs.Histogram

	DatasetsExported *expvar.Int // bundle downloads served to workers
}

var (
	metricsOnce sync.Once
	metrics     *Metrics
)

func sharedMetrics() *Metrics {
	metricsOnce.Do(func() {
		m := expvar.NewMap("blinkml_cluster")
		newInt := func(name string) *expvar.Int {
			v := new(expvar.Int)
			m.Set(name, v)
			return v
		}
		metrics = &Metrics{
			Workers:          newInt("workers"),
			WorkersJoined:    newInt("workers_joined"),
			WorkersLost:      newInt("workers_lost"),
			TasksSubmitted:   newInt("tasks_submitted"),
			TasksPending:     newInt("tasks_pending"),
			TasksLeased:      newInt("tasks_leased"),
			TasksSucceeded:   newInt("tasks_succeeded"),
			TasksFailed:      newInt("tasks_failed"),
			TasksCancelled:   newInt("tasks_cancelled"),
			TasksRequeued:    newInt("tasks_requeued"),
			LeasesGranted:    newInt("leases_granted"),
			DatasetsExported: newInt("datasets_exported"),
		}
		metrics.TaskLeaseWait = obs.NewHistogram()
		m.Set("task_lease_wait_ms", metrics.TaskLeaseWait)
		metrics.TaskLeaseToComplete = obs.NewHistogram()
		m.Set("task_lease_to_complete_ms", metrics.TaskLeaseToComplete)
	})
	return metrics
}
