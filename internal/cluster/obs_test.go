package cluster

import (
	"context"
	"net/http"
	"testing"
	"time"

	"blinkml/internal/modelio"
	"blinkml/internal/obs"
)

// TestSharedGaugesResyncOnNewCoordinator guards against gauge drift: the
// expvar vars under "blinkml_cluster" are process singletons, so a
// coordinator constructed after another one died must reset the gauges to
// its own (empty) state instead of inheriting the predecessor's workers and
// queue depth.
func TestSharedGaugesResyncOnNewCoordinator(t *testing.T) {
	m := sharedMetrics()

	c1 := NewCoordinator(testConfig(), nil)
	if _, err := c1.Register(RegisterRequest{Name: "drift", Capacity: 1, Parallelism: 1}); err != nil {
		t.Fatalf("register: %v", err)
	}
	if _, err := c1.Submit(TaskSpec{Kind: KindTrain, Train: &TrainTask{
		Spec:    modelio.SpecJSON{Name: "logistic"},
		Dataset: syntheticRef(),
		Options: testTrainOptions(),
	}}); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if m.Workers.Value() != 1 {
		t.Fatalf("workers gauge %d after register, want 1", m.Workers.Value())
	}
	if m.TasksPending.Value() != 1 {
		t.Fatalf("pending gauge %d after submit, want 1", m.TasksPending.Value())
	}
	// Close without draining: the dead coordinator leaves the gauges at
	// whatever it last set (Close clears pending but the worker gauge keeps
	// its final value).
	c1.Close()

	c2 := NewCoordinator(testConfig(), nil)
	defer c2.Close()
	if m.Workers.Value() != 0 {
		t.Fatalf("workers gauge %d on fresh coordinator, want 0", m.Workers.Value())
	}
	if m.TasksPending.Value() != 0 || m.TasksLeased.Value() != 0 {
		t.Fatalf("task gauges pending=%d leased=%d on fresh coordinator, want 0/0",
			m.TasksPending.Value(), m.TasksLeased.Value())
	}
}

// TestTaskTraceReachesWorkerSpans checks the wire-level half of trace
// propagation: a trace id attached to a submitted task must come back on
// the worker-recorded spans in the completion payload, each stamped with
// the worker's name.
func TestTaskTraceReachesWorkerSpans(t *testing.T) {
	tc := newTestCluster(t, testConfig(), nil)
	tc.startWorker(t, "w-obs")

	const trace = "feedc0de12345678"
	id, err := tc.coord.Submit(TaskSpec{Kind: KindTrain, Trace: trace, Train: &TrainTask{
		Spec:    modelio.SpecJSON{Name: "logistic"},
		Dataset: syntheticRef(),
		Options: testTrainOptions(),
	}})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	payload, err := tc.coord.Await(ctx, id)
	if err != nil {
		t.Fatalf("await: %v", err)
	}
	if len(payload.Spans) == 0 {
		t.Fatal("completion payload carries no spans")
	}
	names := make(map[string]bool)
	for _, sp := range payload.Spans {
		if sp.Trace != trace {
			t.Fatalf("span %q has trace %q, want %q", sp.Name, sp.Trace, trace)
		}
		if sp.Worker != "w-obs" {
			t.Fatalf("span %q has worker %q, want w-obs", sp.Name, sp.Worker)
		}
		if sp.DurMs < 0 {
			t.Fatalf("span %q has negative duration %v", sp.Name, sp.DurMs)
		}
		names[sp.Name] = true
	}
	for _, want := range []string{"ingest", "sample", "optimize", "statistics", "probe"} {
		if !names[want] {
			t.Fatalf("worker spans missing stage %q (got %v)", want, names)
		}
	}
}

// TestMountRoutesThroughHTTPMiddleware checks that the coordinator's
// protocol endpoints are wrapped by the shared obs HTTP middleware under
// their parameterized route labels, so the cluster control plane shows up
// in the blinkml_http_* series alongside the public API.
func TestMountRoutesThroughHTTPMiddleware(t *testing.T) {
	tc := newTestCluster(t, Config{}, nil)
	route := obs.SharedHTTP().Route("/v1/cluster/status")
	before := route.Requests()
	resp, err := http.Get(tc.server.URL + "/v1/cluster/status")
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status code %d", resp.StatusCode)
	}
	if got := route.Requests(); got != before+1 {
		t.Fatalf("route counter %d, want %d — Mount must wrap handlers in obs middleware", got, before+1)
	}
}
