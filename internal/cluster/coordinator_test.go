package cluster

import (
	"context"
	"errors"
	"testing"
	"time"
)

// testConfig keeps heartbeats fast but the liveness timeout generous:
// tests that need a worker declared dead call reapDead with a future
// timestamp instead of waiting, so a slow CI machine (or the race
// detector's overhead) can never falsely reap a healthy worker mid-test.
func testConfig() Config {
	return Config{
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatTimeout:  5 * time.Second,
		SweepInterval:     10 * time.Millisecond,
		MaxAttempts:       3,
	}
}

// trialSpec is a minimal valid task payload for queue-level tests (no
// worker ever executes it here).
func trialSpec() TaskSpec {
	return TaskSpec{Kind: KindTrial, Trial: &TrialTask{
		Dataset: DatasetRef{Synthetic: &Synth{Name: "higgs", Rows: 100, Dim: 4}},
		Options: TrainOptions{Epsilon: 0.1},
	}}
}

// registerWorker is a helper returning the new worker's id.
func registerWorker(t *testing.T, c *Coordinator, name string) string {
	t.Helper()
	resp, err := c.Register(RegisterRequest{Name: name, Capacity: 1})
	if err != nil {
		t.Fatalf("register %s: %v", name, err)
	}
	return resp.WorkerID
}

// mustLease leases one task within the wait window.
func mustLease(t *testing.T, c *Coordinator, worker string) *LeaseResponse {
	t.Helper()
	lease, err := c.Lease(context.Background(), worker, time.Second)
	if err != nil {
		t.Fatalf("lease: %v", err)
	}
	if lease == nil {
		t.Fatalf("lease for %s timed out with tasks pending", worker)
	}
	return lease
}

func TestLeaseCompleteRoundTrip(t *testing.T) {
	c := NewCoordinator(testConfig(), nil)
	defer c.Close()
	id, err := c.Submit(trialSpec())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	w := registerWorker(t, c, "w1")
	lease := mustLease(t, c, w)
	if lease.TaskID != id {
		t.Fatalf("leased %s, want %s", lease.TaskID, id)
	}
	score := 0.25
	if err := c.Complete(CompleteRequest{WorkerID: w, TaskID: id,
		Result: &TaskResultPayload{Theta: []float64{1, 2}, Score: &score, SampleSize: 10}}); err != nil {
		t.Fatalf("complete: %v", err)
	}
	res, err := c.Await(context.Background(), id)
	if err != nil {
		t.Fatalf("await: %v", err)
	}
	if len(res.Theta) != 2 || *res.Score != 0.25 {
		t.Fatalf("result round-trip mangled: %+v", res)
	}
}

// TestCancelMidLease covers cancellation of a task a worker is executing:
// the cancel flag reaches the worker via heartbeat, the worker acknowledges
// with a cancelled completion, and the awaiter sees context.Canceled.
func TestCancelMidLease(t *testing.T) {
	c := NewCoordinator(testConfig(), nil)
	defer c.Close()
	id, _ := c.Submit(trialSpec())
	w := registerWorker(t, c, "w1")
	mustLease(t, c, w)

	c.CancelTask(id)
	hb, err := c.Heartbeat(HeartbeatRequest{WorkerID: w, Running: []string{id}})
	if err != nil {
		t.Fatalf("heartbeat: %v", err)
	}
	if len(hb.Cancel) != 1 || hb.Cancel[0] != id {
		t.Fatalf("heartbeat cancellations = %v, want [%s]", hb.Cancel, id)
	}
	if err := c.Complete(CompleteRequest{WorkerID: w, TaskID: id, Cancelled: true}); err != nil {
		t.Fatalf("complete cancelled: %v", err)
	}
	_, err = c.Await(context.Background(), id)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("await after cancel = %v, want context.Canceled", err)
	}
}

// TestCancelPendingIsImmediate: a never-leased task goes terminal without a
// worker involved.
func TestCancelPendingIsImmediate(t *testing.T) {
	c := NewCoordinator(testConfig(), nil)
	defer c.Close()
	id, _ := c.Submit(trialSpec())
	c.CancelTask(id)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := c.Await(ctx, id); !errors.Is(err, context.Canceled) {
		t.Fatalf("await = %v, want context.Canceled", err)
	}
	if st := c.Status(); st.TasksPending != 0 || st.TasksLeased != 0 {
		t.Fatalf("cancelled task still counted: %+v", st)
	}
}

// TestWorkerLossRequeues is the worker-death path: the leaseholder goes
// silent, the sweeper reaps it, and the task returns to the queue for a
// replacement worker — deterministically in task-id order.
func TestWorkerLossRequeues(t *testing.T) {
	c := NewCoordinator(testConfig(), nil)
	defer c.Close()
	idA, _ := c.Submit(trialSpec())
	idB, _ := c.Submit(trialSpec())

	dead := registerWorker(t, c, "doomed")
	l1 := mustLease(t, c, dead)
	l2 := mustLease(t, c, dead)
	if l1.TaskID != idA || l2.TaskID != idB {
		t.Fatalf("fifo violated: leased %s, %s", l1.TaskID, l2.TaskID)
	}

	// Reap directly with a time beyond the deadline: deterministic, no
	// sleeping.
	c.reapDead(time.Now().Add(time.Minute))

	replacement := registerWorker(t, c, "replacement")
	r1 := mustLease(t, c, replacement)
	r2 := mustLease(t, c, replacement)
	// Requeue order must be deterministic: task-id order.
	if r1.TaskID != idA || r2.TaskID != idB {
		t.Fatalf("requeue order %s, %s; want %s, %s", r1.TaskID, r2.TaskID, idA, idB)
	}

	// The dead worker's late completion must be fenced off…
	err := c.Complete(CompleteRequest{WorkerID: dead, TaskID: idA,
		Result: &TaskResultPayload{Theta: []float64{9}}})
	if !errors.Is(err, ErrStaleLease) && !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("stale completion error = %v, want ErrStaleLease", err)
	}
	// …and the replacement's must stand.
	if err := c.Complete(CompleteRequest{WorkerID: replacement, TaskID: idA,
		Result: &TaskResultPayload{Theta: []float64{1}}}); err != nil {
		t.Fatalf("replacement complete: %v", err)
	}
	res, err := c.Await(context.Background(), idA)
	if err != nil {
		t.Fatalf("await: %v", err)
	}
	if len(res.Theta) != 1 || res.Theta[0] != 1 {
		t.Fatalf("fencing failed: got result %+v from the dead worker", res)
	}
}

// TestAttemptCapExhaustion: losing the worker MaxAttempts times fails the
// task with a structured TaskError recording every attempt.
func TestAttemptCapExhaustion(t *testing.T) {
	cfg := testConfig()
	cfg.MaxAttempts = 2
	c := NewCoordinator(cfg, nil)
	defer c.Close()
	id, _ := c.Submit(trialSpec())

	for i := 0; i < 2; i++ {
		w := registerWorker(t, c, "doomed")
		mustLease(t, c, w)
		c.reapDead(time.Now().Add(time.Minute))
	}

	_, err := c.Await(context.Background(), id)
	var te *TaskError
	if !errors.As(err, &te) {
		t.Fatalf("await = %v, want *TaskError", err)
	}
	if te.TaskID != id || te.Attempts != 2 {
		t.Fatalf("TaskError = %+v, want task %s with 2 attempts", te, id)
	}
	if len(te.Log) != 2 {
		t.Fatalf("attempt log has %d entries, want 2: %v", len(te.Log), te.Log)
	}
}

// TestWorkerErrorFailsImmediately: an error reported by a worker is
// deterministic and must not be retried.
func TestWorkerErrorFailsImmediately(t *testing.T) {
	c := NewCoordinator(testConfig(), nil)
	defer c.Close()
	id, _ := c.Submit(trialSpec())
	w := registerWorker(t, c, "w1")
	mustLease(t, c, w)
	if err := c.Complete(CompleteRequest{WorkerID: w, TaskID: id, Error: "training diverged"}); err != nil {
		t.Fatalf("complete: %v", err)
	}
	_, err := c.Await(context.Background(), id)
	var te *TaskError
	if !errors.As(err, &te) {
		t.Fatalf("await = %v, want *TaskError", err)
	}
	if te.Attempts != 1 || te.Reason != "training diverged" {
		t.Fatalf("TaskError = %+v", te)
	}
}

// TestRequeueFlagHandsBack: a worker giving a task back (graceful shutdown)
// requeues rather than fails.
func TestRequeueFlagHandsBack(t *testing.T) {
	c := NewCoordinator(testConfig(), nil)
	defer c.Close()
	id, _ := c.Submit(trialSpec())
	w1 := registerWorker(t, c, "leaving")
	mustLease(t, c, w1)
	if err := c.Complete(CompleteRequest{WorkerID: w1, TaskID: id, Requeue: true, Error: "worker shutting down"}); err != nil {
		t.Fatalf("requeue complete: %v", err)
	}
	w2 := registerWorker(t, c, "staying")
	lease := mustLease(t, c, w2)
	if lease.TaskID != id {
		t.Fatalf("requeued lease = %s, want %s", lease.TaskID, id)
	}
	if err := c.Complete(CompleteRequest{WorkerID: w2, TaskID: id,
		Result: &TaskResultPayload{Theta: []float64{1}}}); err != nil {
		t.Fatalf("complete: %v", err)
	}
	if _, err := c.Await(context.Background(), id); err != nil {
		t.Fatalf("await: %v", err)
	}
}

// TestAwaitCancelPropagates: a cancelled await marks the task for
// cancellation so the leaseholder is told to stop.
func TestAwaitCancelPropagates(t *testing.T) {
	c := NewCoordinator(testConfig(), nil)
	defer c.Close()
	id, _ := c.Submit(trialSpec())
	w := registerWorker(t, c, "w1")
	mustLease(t, c, w)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Await(ctx, id); !errors.Is(err, context.Canceled) {
		t.Fatalf("await = %v, want context.Canceled", err)
	}
	hb, err := c.Heartbeat(HeartbeatRequest{WorkerID: w})
	if err != nil {
		t.Fatalf("heartbeat: %v", err)
	}
	if len(hb.Cancel) != 1 || hb.Cancel[0] != id {
		t.Fatalf("cancellation did not reach the leaseholder: %v", hb.Cancel)
	}
}

// TestCancelledTaskNotRequeuedOnWorkerLoss: when the leaseholder of a
// cancelled task dies, the task goes terminal cancelled, never back to the
// queue.
func TestCancelledTaskNotRequeuedOnWorkerLoss(t *testing.T) {
	c := NewCoordinator(testConfig(), nil)
	defer c.Close()
	id, _ := c.Submit(trialSpec())
	w := registerWorker(t, c, "w1")
	mustLease(t, c, w)
	c.CancelTask(id)
	c.reapDead(time.Now().Add(time.Minute))
	if _, err := c.Await(context.Background(), id); !errors.Is(err, context.Canceled) {
		t.Fatalf("await = %v, want context.Canceled", err)
	}
	if st := c.Status(); st.TasksPending != 0 {
		t.Fatalf("cancelled task requeued: %+v", st)
	}
}

// TestLeaseLongPollWakes: a lease blocked on an empty queue wakes as soon
// as work arrives.
func TestLeaseLongPollWakes(t *testing.T) {
	c := NewCoordinator(testConfig(), nil)
	defer c.Close()
	w := registerWorker(t, c, "w1")
	done := make(chan *LeaseResponse, 1)
	go func() {
		lease, _ := c.Lease(context.Background(), w, 5*time.Second)
		done <- lease
	}()
	time.Sleep(20 * time.Millisecond)
	id, _ := c.Submit(trialSpec())
	select {
	case lease := <-done:
		if lease == nil || lease.TaskID != id {
			t.Fatalf("long poll returned %+v, want task %s", lease, id)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("long poll never woke")
	}
}

// TestSubmitValidation rejects malformed specs up front.
func TestSubmitValidation(t *testing.T) {
	c := NewCoordinator(testConfig(), nil)
	defer c.Close()
	bad := []TaskSpec{
		{Kind: KindTrain},
		{Kind: KindTrial},
		{Kind: "mystery"},
		{Kind: KindTrial, Trial: &TrialTask{}}, // no dataset
		{Kind: KindTrial, Trial: &TrialTask{Dataset: DatasetRef{ID: "d-1", Synthetic: &Synth{Name: "higgs"}}}}, // two datasets
	}
	for i, spec := range bad {
		if _, err := c.Submit(spec); err == nil {
			t.Fatalf("case %d: submit accepted %+v", i, spec)
		}
	}
}

// TestClosedCoordinator: submits are refused and in-flight awaits fail.
func TestClosedCoordinator(t *testing.T) {
	c := NewCoordinator(testConfig(), nil)
	id, _ := c.Submit(trialSpec())
	c.Close()
	if _, err := c.Submit(trialSpec()); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close = %v, want ErrClosed", err)
	}
	if _, err := c.Await(context.Background(), id); !errors.Is(err, ErrClosed) {
		t.Fatalf("await after close = %v, want ErrClosed", err)
	}
	if _, err := c.Register(RegisterRequest{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("register after close = %v, want ErrClosed", err)
	}
}

// TestConfigKeepsIntervalBelowTimeout: an operator-set timeout below the
// default heartbeat interval must pull the interval down — never leave a
// config where workers are told to heartbeat slower than they are reaped.
func TestConfigKeepsIntervalBelowTimeout(t *testing.T) {
	c := Config{HeartbeatTimeout: time.Second}.withDefaults()
	if c.HeartbeatInterval > c.HeartbeatTimeout/3 {
		t.Fatalf("interval %v exceeds timeout/3 (%v)", c.HeartbeatInterval, c.HeartbeatTimeout/3)
	}
	d := Config{}.withDefaults()
	if d.HeartbeatInterval != 2*time.Second || d.HeartbeatTimeout != 6*time.Second {
		t.Fatalf("defaults changed: interval %v timeout %v", d.HeartbeatInterval, d.HeartbeatTimeout)
	}
}

// TestStatusScoreboard: completions and failures feed the per-worker fleet
// scoreboard — counts, error rate, and lease-to-complete p95.
func TestStatusScoreboard(t *testing.T) {
	c := NewCoordinator(testConfig(), nil)
	defer c.Close()
	w := registerWorker(t, c, "w1")
	for i := 0; i < 3; i++ {
		id, _ := c.Submit(trialSpec())
		mustLease(t, c, w)
		req := CompleteRequest{WorkerID: w, TaskID: id, Result: &TaskResultPayload{Theta: []float64{1}}}
		if i == 2 {
			req = CompleteRequest{WorkerID: w, TaskID: id, Error: "diverged"}
		}
		if err := c.Complete(req); err != nil {
			t.Fatalf("complete %s: %v", id, err)
		}
	}
	st := c.Status()
	if len(st.Workers) != 1 {
		t.Fatalf("workers = %d, want 1", len(st.Workers))
	}
	ws := st.Workers[0]
	if ws.TasksCompleted != 2 || ws.TasksFailed != 1 {
		t.Fatalf("scoreboard counts %d/%d, want 2/1", ws.TasksCompleted, ws.TasksFailed)
	}
	if ws.ErrorRate < 0.3 || ws.ErrorRate > 0.4 {
		t.Fatalf("error rate %v, want 1/3", ws.ErrorRate)
	}
	if ws.P95LeaseToCompleteMs < 0 {
		t.Fatalf("p95 lease-to-complete %v", ws.P95LeaseToCompleteMs)
	}
}
