// Package cluster implements BlinkML's coordinator/worker distributed
// execution layer. A coordinator — embedded in blinkml-serve when cluster
// mode is on — owns a queue of tasks (full training runs and individual
// hyperparameter-search trials) and leases them to blinkml-worker processes
// that register over HTTP, heartbeat, and advertise capacity. Workers fetch
// the datasets a task references from the coordinator's store (checksummed,
// cached locally, fetched at most once per content), rebuild the exact
// training environment the in-process path would use, and ship results
// back — trained models travel in the versioned modelio format straight
// into the coordinator's registry.
//
// The contract that makes the fan-out safe to reason about:
//
//   - Determinism: a task is a pure function of its payload. Given the same
//     dataset bytes, seed, and compute parallelism, a worker produces
//     bit-identical results to the in-process path — so requeueing a task
//     after a worker dies cannot change the answer, only the latency.
//   - Leases are fenced: a task is leased to one worker at a time, and a
//     completion from anyone but the current leaseholder is rejected. A
//     worker presumed dead that comes back cannot overwrite the result of
//     the retry that replaced it.
//   - Failure policy: worker loss (heartbeat timeout) or graceful worker
//     shutdown requeues the task, up to Config.MaxAttempts, after which the
//     task fails with a TaskError recording every attempt. An error
//     *reported* by a worker is deterministic (training genuinely failed)
//     and fails the task immediately — retrying it elsewhere would burn a
//     machine to get the same error.
//   - Cancellation propagates: cancelling a task marks pending work
//     terminal at once and tells the leaseholder to stop via its next
//     heartbeat or lease response; the training loop observes its context
//     between optimizer iterations.
//
// HTTP surface (mounted by the serving layer under /v1/cluster):
//
//	POST /v1/cluster/register       worker joins, gets an id + protocol timings
//	POST /v1/cluster/heartbeat      liveness + lease renewal; returns cancellations
//	POST /v1/cluster/lease          long-poll for a task (renews liveness too)
//	POST /v1/cluster/complete       deliver a task result (lease-fenced)
//	GET  /v1/cluster/datasets/{id}  stream a dataset bundle (store export format)
//	GET  /v1/cluster/status         workers + queue snapshot
package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"strings"
	"time"

	"blinkml/internal/core"
	"blinkml/internal/modelio"
	"blinkml/internal/obs"
	"blinkml/internal/optimize"
)

// TaskKind tags what a task payload carries.
type TaskKind string

const (
	// KindTrain is a full BlinkML training run (POST /v1/train shaped).
	KindTrain TaskKind = "train"
	// KindTrial is one hyperparameter-search trial: a halving rung or a
	// contract training of a single candidate.
	KindTrial TaskKind = "trial"
	// KindAudit is a guarantee replay: train the full-data model at the
	// recorded options and measure the realized difference against the
	// shipped approximate model.
	KindAudit TaskKind = "audit"
)

// TaskSpec is the wire form of one schedulable unit. Exactly one payload
// field is set, matching Kind.
type TaskSpec struct {
	Kind TaskKind `json:"kind"`
	// Trace is the originating request's trace ID; it travels with the task
	// (and in the X-Blinkml-Trace header of lease responses) so worker-side
	// spans and log lines rejoin the submitting job's trace.
	Trace string     `json:"trace,omitempty"`
	Train *TrainTask `json:"train,omitempty"`
	Trial *TrialTask `json:"trial,omitempty"`
	Audit *AuditTask `json:"audit,omitempty"`
}

// Validate checks the spec shape before admission.
func (s *TaskSpec) Validate() error {
	switch s.Kind {
	case KindTrain:
		if s.Train == nil {
			return errors.New("cluster: train task without payload")
		}
		return s.Train.Dataset.Validate()
	case KindTrial:
		if s.Trial == nil {
			return errors.New("cluster: trial task without payload")
		}
		return s.Trial.Dataset.Validate()
	case KindAudit:
		if s.Audit == nil {
			return errors.New("cluster: audit task without payload")
		}
		if len(s.Audit.Theta) == 0 {
			return errors.New("cluster: audit task without approximate model parameters")
		}
		return s.Audit.Dataset.Validate()
	default:
		return fmt.Errorf("cluster: unknown task kind %q", s.Kind)
	}
}

// DatasetRef names the data a task trains on. Exactly one of ID, Synthetic,
// or Inline is set. ID names a dataset in the coordinator's store; the
// checksums pin the content so a worker's cached copy is either provably
// the same bytes or refetched.
type DatasetRef struct {
	ID         string  `json:"id,omitempty"`
	Rows       int     `json:"rows,omitempty"`
	RowCRC32   uint32  `json:"row_crc32,omitempty"`
	IndexCRC32 uint32  `json:"index_crc32,omitempty"`
	Synthetic  *Synth  `json:"synthetic,omitempty"`
	Inline     *Inline `json:"inline,omitempty"`
}

// Validate checks that exactly one source is named.
func (r *DatasetRef) Validate() error {
	set := 0
	if r.ID != "" {
		set++
	}
	if r.Synthetic != nil {
		set++
	}
	if r.Inline != nil {
		set++
	}
	if set != 1 {
		return errors.New("cluster: dataset ref must name exactly one of id, synthetic, inline")
	}
	return nil
}

// Key returns a stable identity for caching: datasets with equal keys are
// the same bytes.
func (r *DatasetRef) Key() string {
	switch {
	case r.ID != "":
		return fmt.Sprintf("id:%s:%08x:%08x", r.ID, r.RowCRC32, r.IndexCRC32)
	case r.Synthetic != nil:
		s := r.Synthetic
		return fmt.Sprintf("syn:%s:%d:%d:%d", s.Name, s.Rows, s.Dim, s.Seed)
	case r.Inline != nil:
		// Inline data rides in the payload itself, so identity must come
		// from the content: payloads with equal shapes but different values
		// must never share a cached environment.
		return fmt.Sprintf("inline:%s:%d:%016x", r.Inline.Task, len(r.Inline.X), r.Inline.contentHash())
	default:
		return "none"
	}
}

// Synth names a deterministic synthetic workload — workers regenerate it
// locally instead of transferring it.
type Synth struct {
	Name string `json:"name"`
	Rows int    `json:"rows,omitempty"`
	Dim  int    `json:"dim,omitempty"`
	Seed int64  `json:"seed,omitempty"`
}

// Inline is a small dense dataset shipped inside the task payload. It is
// the small-data path: every trial task of a search carries the rows, so
// anything beyond a few thousand rows belongs in the dataset store, where
// tasks carry only an id and workers fetch the bytes once.
type Inline struct {
	Task    string      `json:"task"`
	X       [][]float64 `json:"x,omitempty"`
	Dim     int         `json:"dim,omitempty"`
	Indices [][]int32   `json:"indices,omitempty"`
	Values  [][]float64 `json:"values,omitempty"`
	Y       []float64   `json:"y,omitempty"`
	Classes int         `json:"classes,omitempty"`
}

// contentHash folds every value, label, row boundary, and the class count
// into an FNV-1a hash — the content identity behind DatasetRef.Key. Sparse
// payloads additionally fold the ambient dim and every stored index, so two
// sparse datasets with the same values at different coordinates hash apart.
func (d *Inline) contentHash() uint64 {
	h := fnv.New64a()
	var b [8]byte
	word := func(u uint64) {
		binary.LittleEndian.PutUint64(b[:], u)
		h.Write(b[:])
	}
	word(uint64(d.Classes))
	for _, row := range d.X {
		word(uint64(len(row)))
		for _, v := range row {
			word(math.Float64bits(v))
		}
	}
	word(uint64(d.Dim))
	for i, idx := range d.Indices {
		word(uint64(len(idx)))
		for _, j := range idx {
			word(uint64(uint32(j)))
		}
		if i < len(d.Values) {
			for _, v := range d.Values[i] {
				word(math.Float64bits(v))
			}
		}
	}
	word(uint64(len(d.Y)))
	for _, v := range d.Y {
		word(math.Float64bits(v))
	}
	return h.Sum64()
}

// TrainOptions is the wire form of the core.Options subset the serving
// layer exposes — everything a worker needs to rebuild the coordinator's
// exact training environment.
type TrainOptions struct {
	Epsilon           float64 `json:"epsilon"`
	Delta             float64 `json:"delta,omitempty"`
	Seed              int64   `json:"seed,omitempty"`
	InitialSampleSize int     `json:"initial_sample_size,omitempty"`
	MinSampleSize     int     `json:"min_sample_size,omitempty"`
	MaxIters          int     `json:"max_iters,omitempty"`
	WarmStart         bool    `json:"warm_start,omitempty"`
	TestFraction      float64 `json:"test_fraction,omitempty"`
}

// CoreOptions converts the wire options to core.Options.
func (o TrainOptions) CoreOptions() core.Options {
	return core.Options{
		Epsilon:           o.Epsilon,
		Delta:             o.Delta,
		Seed:              o.Seed,
		InitialSampleSize: o.InitialSampleSize,
		MinSampleSize:     o.MinSampleSize,
		WarmStart:         o.WarmStart,
		TestFraction:      o.TestFraction,
		Optimizer:         optimize.Options{MaxIters: o.MaxIters},
	}
}

// TrainTask is a full BlinkML training run.
type TrainTask struct {
	Spec    modelio.SpecJSON `json:"spec"`
	Dataset DatasetRef       `json:"dataset"`
	Options TrainOptions     `json:"options"`
}

// TrialTask is one hyperparameter-search trial (see tune.Trial). The worker
// rebuilds the search environment from (Dataset, Options) — identical to
// the coordinator's by determinism of the split — and runs the single
// trial.
type TrialTask struct {
	Spec    modelio.SpecJSON `json:"spec"`
	Dataset DatasetRef       `json:"dataset"`
	Options TrainOptions     `json:"options"`
	// Contract selects a full (ε, δ) training; otherwise a halving rung.
	Contract bool `json:"contract,omitempty"`
	// N is the rung subsample size; Rung the 0-based rung index.
	N    int       `json:"n,omitempty"`
	Rung int       `json:"rung,omitempty"`
	Warm []float64 `json:"warm,omitempty"`
}

// AuditTask is one guarantee replay. The worker rebuilds the recorded
// environment from (Dataset, Options) — identical to the original job's by
// determinism of the split — trains the full-data model, and compares the
// shipped Theta against it at Bound.
type AuditTask struct {
	Spec    modelio.SpecJSON `json:"spec"`
	Dataset DatasetRef       `json:"dataset"`
	Options TrainOptions     `json:"options"`
	// Theta is the approximate model under audit.
	Theta []float64 `json:"theta"`
	// Bound is the ε̂ the model shipped with.
	Bound float64 `json:"bound"`
}

// TaskResultPayload is what a worker ships back for a finished task.
type TaskResultPayload struct {
	// Model is the modelio envelope of the trained model (train tasks and
	// contract trials) — the exact bytes the coordinator registers.
	Model []byte `json:"model,omitempty"`
	// Theta is the raw parameter vector (rung trials, which produce
	// intermediate fits rather than registrable models).
	Theta []float64 `json:"theta,omitempty"`
	// Score is the trial's evaluation score; nil encodes NaN (model classes
	// without a supervised metric).
	Score *float64 `json:"score,omitempty"`
	// SampleSize is the rows of the training run (rung trials).
	SampleSize int `json:"sample_size,omitempty"`
	// Spans are the pipeline-stage spans the worker recorded while running
	// the task, stamped with the worker's name; the coordinator merges them
	// into the originating job's trace.
	Spans []obs.Span `json:"spans,omitempty"`
	// Ledger is the worker-side resource ledger of the task — CPU self-time,
	// kernel calls/flops, rows and bytes materialized, bundle-cache traffic.
	// The coordinator merges it into the originating job's ledger and rolls
	// its totals into the worker's fleet-scoreboard counters.
	Ledger *obs.LedgerSnapshot `json:"ledger,omitempty"`
	// Audit-task results: the realized model difference, whether it stayed
	// within the recorded bound, the full training's iteration count, and
	// the hex FNV-1a fingerprint of the full model's parameter bits (the
	// determinism witness).
	Realized     float64 `json:"realized,omitempty"`
	Satisfied    bool    `json:"satisfied,omitempty"`
	FullIters    int     `json:"full_iters,omitempty"`
	FullThetaFNV string  `json:"full_theta_fnv,omitempty"`
}

// TaskError is the structured terminal error of a task that exhausted its
// attempts or failed deterministically. The serving layer surfaces it as
// the job error.
type TaskError struct {
	// TaskID is the cluster task id ("t-000001").
	TaskID string
	// Attempts is how many leases the task consumed.
	Attempts int
	// Reason is the final failure ("worker lost", or the worker's error).
	Reason string
	// Log records one line per failed attempt, oldest first.
	Log []string
}

// Error implements error with a stable, greppable shape.
func (e *TaskError) Error() string {
	msg := fmt.Sprintf("cluster: task %s failed after %d attempt(s): %s", e.TaskID, e.Attempts, e.Reason)
	if len(e.Log) > 0 {
		msg += " [" + strings.Join(e.Log, "; ") + "]"
	}
	return msg
}

// Protocol messages.

// RegisterRequest announces a worker to the coordinator.
type RegisterRequest struct {
	// Name is a human label for logs and status (defaults to the id).
	Name string `json:"name,omitempty"`
	// Capacity is how many tasks the worker runs concurrently.
	Capacity int `json:"capacity"`
	// Parallelism is the worker's compute-pool degree (advertised for
	// status; kernels inside one task use it fully).
	Parallelism int `json:"parallelism"`
}

// RegisterResponse assigns the worker its id and the protocol timings the
// coordinator enforces.
type RegisterResponse struct {
	WorkerID            string `json:"worker_id"`
	HeartbeatIntervalMs int64  `json:"heartbeat_interval_ms"`
	// HeartbeatTimeoutMs is how long the coordinator waits before declaring
	// the worker dead and requeueing its tasks.
	HeartbeatTimeoutMs int64 `json:"heartbeat_timeout_ms"`
}

// HeartbeatRequest renews liveness and the leases of the listed tasks.
type HeartbeatRequest struct {
	WorkerID string   `json:"worker_id"`
	Running  []string `json:"running,omitempty"`
}

// HeartbeatResponse carries cancellation notices for the worker's tasks.
type HeartbeatResponse struct {
	Cancel []string `json:"cancel,omitempty"`
}

// LeaseRequest asks for one task, long-polling up to WaitMs.
type LeaseRequest struct {
	WorkerID string `json:"worker_id"`
	WaitMs   int64  `json:"wait_ms,omitempty"`
}

// LeaseResponse hands the worker a task (HTTP 204 means none available).
type LeaseResponse struct {
	TaskID string   `json:"task_id"`
	Spec   TaskSpec `json:"spec"`
	// Cancel piggybacks cancellation notices (same as heartbeat).
	Cancel []string `json:"cancel,omitempty"`
}

// CompleteRequest delivers a task outcome. Exactly one of Result, Error, or
// the Cancelled/Requeue flags describes it: Error is a deterministic
// training failure (fails the task), Cancelled acknowledges a cancellation,
// and Requeue signals the worker could not finish for reasons of its own
// (graceful shutdown) so the task should run elsewhere.
type CompleteRequest struct {
	WorkerID  string             `json:"worker_id"`
	TaskID    string             `json:"task_id"`
	Result    *TaskResultPayload `json:"result,omitempty"`
	Error     string             `json:"error,omitempty"`
	Cancelled bool               `json:"cancelled,omitempty"`
	Requeue   bool               `json:"requeue,omitempty"`
}

// Status is the coordinator snapshot (GET /v1/cluster/status, healthz).
type Status struct {
	Workers      []WorkerStatus `json:"workers"`
	TasksPending int            `json:"tasks_pending"`
	TasksLeased  int            `json:"tasks_leased"`
}

// WorkerStatus describes one live worker, including its fleet-scoreboard
// counters: lifetime completions and failures, the derived error rate, and
// the p95 of lease-to-complete latency (how long tasks spend on this
// worker once leased — a slow or overloaded box shows here first).
type WorkerStatus struct {
	ID          string    `json:"id"`
	Name        string    `json:"name"`
	Capacity    int       `json:"capacity"`
	Parallelism int       `json:"parallelism"`
	Leased      int       `json:"leased"`
	LastSeen    time.Time `json:"last_seen"`

	TasksCompleted       int64   `json:"tasks_completed"`
	TasksFailed          int64   `json:"tasks_failed"`
	ErrorRate            float64 `json:"error_rate"`
	P95LeaseToCompleteMs float64 `json:"p95_lease_to_complete_ms"`

	// CPUMs and AllocBytes roll up the resource ledgers of the tasks this
	// worker completed: pool CPU milliseconds spent and data-plane bytes
	// materialized on the worker's side.
	CPUMs      float64 `json:"cpu_ms"`
	AllocBytes int64   `json:"alloc_bytes"`
}
