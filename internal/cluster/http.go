package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"blinkml/internal/obs"
)

// maxProtocolBody caps coordinator-side protocol request bodies. Trial
// completions carry parameter vectors and phase diagnostics, never rows, so
// this is generous.
const maxProtocolBody = 256 << 20

// maxLeaseWait caps one long-poll; workers re-poll in a loop.
const maxLeaseWait = 30 * time.Second

// Mount registers the coordinator's HTTP protocol on mux under /v1/cluster.
// Every route runs through the shared obs HTTP middleware, so the cluster
// control plane shows up in the blinkml_http_* per-endpoint series next to
// the public API. (Lease long-polls sit inflight for up to maxLeaseWait by
// design — their latency histogram reflects the poll, not slowness.)
func (c *Coordinator) Mount(mux *http.ServeMux) {
	hm := obs.SharedHTTP()
	handle := func(pattern string, h http.HandlerFunc) {
		route := pattern[strings.IndexByte(pattern, ' ')+1:]
		mux.Handle(pattern, hm.Wrap(route, h))
	}
	handle("POST /v1/cluster/register", c.handleRegister)
	handle("POST /v1/cluster/heartbeat", c.handleHeartbeat)
	handle("POST /v1/cluster/lease", c.handleLease)
	handle("POST /v1/cluster/complete", c.handleComplete)
	handle("GET /v1/cluster/datasets/{id}", c.handleDatasetExport)
	handle("GET /v1/cluster/status", c.handleStatus)
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if !readProtoJSON(w, r, &req) {
		return
	}
	resp, err := c.Register(req)
	if err != nil {
		writeProtoError(w, err)
		return
	}
	writeProtoJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !readProtoJSON(w, r, &req) {
		return
	}
	resp, err := c.Heartbeat(req)
	if err != nil {
		writeProtoError(w, err)
		return
	}
	writeProtoJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !readProtoJSON(w, r, &req) {
		return
	}
	wait := time.Duration(req.WaitMs) * time.Millisecond
	if wait < 0 {
		wait = 0
	}
	if wait > maxLeaseWait {
		wait = maxLeaseWait
	}
	resp, err := c.Lease(r.Context(), req.WorkerID, wait)
	if err != nil {
		writeProtoError(w, err)
		return
	}
	if resp == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	if resp.Spec.Trace != "" {
		w.Header().Set(obs.TraceHeader, resp.Spec.Trace)
	}
	writeProtoJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if !readProtoJSON(w, r, &req) {
		return
	}
	if err := c.Complete(req); err != nil {
		writeProtoError(w, err)
		return
	}
	writeProtoJSON(w, http.StatusOK, struct{}{})
}

// handleDatasetExport streams a dataset bundle to a worker.
func (c *Coordinator) handleDatasetExport(w http.ResponseWriter, r *http.Request) {
	if c.store == nil {
		writeProtoJSON(w, http.StatusNotFound, protoError{Error: "cluster: coordinator has no dataset store"})
		return
	}
	h, err := c.store.Get(r.PathValue("id"))
	if err != nil {
		writeProtoJSON(w, http.StatusNotFound, protoError{Error: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	c.m.DatasetsExported.Add(1)
	// The status line is out after the first byte; a mid-stream error can
	// only truncate, which the importer's checksum verification catches.
	_ = h.ExportTo(w)
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeProtoJSON(w, http.StatusOK, c.Status())
}

// protoError is the protocol's uniform error body.
type protoError struct {
	Error string `json:"error"`
}

func readProtoJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxProtocolBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeProtoJSON(w, http.StatusBadRequest, protoError{Error: fmt.Sprintf("cluster: bad request body: %v", err)})
		return false
	}
	return true
}

func writeProtoJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeProtoError maps coordinator errors to protocol statuses: unknown
// workers and tasks are 404 (the worker should re-register / drop the
// task), stale leases 409 (the completion is discarded), a closed
// coordinator 503, anything else 400.
func writeProtoError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrUnknownWorker), errors.Is(err, ErrUnknownTask):
		status = http.StatusNotFound
	case errors.Is(err, ErrStaleLease):
		status = http.StatusConflict
	case errors.Is(err, ErrClosed):
		status = http.StatusServiceUnavailable
	}
	writeProtoJSON(w, status, protoError{Error: err.Error()})
}
