package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"os"
	"sync"
	"time"

	"blinkml/internal/compute"
	"blinkml/internal/core"
	"blinkml/internal/datagen"
	"blinkml/internal/dataset"
	"blinkml/internal/modelio"
	"blinkml/internal/models"
	"blinkml/internal/obs"
	"blinkml/internal/optimize"
	"blinkml/internal/store"
	"blinkml/internal/tune"
)

// WorkerConfig sizes a Worker.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL (e.g. "http://host:8080").
	Coordinator string
	// Name labels the worker in coordinator status (default: hostname).
	Name string
	// Capacity is how many tasks run concurrently (default 1 — each task
	// already fans out across the compute pool).
	Capacity int
	// DataDir is the local dataset cache directory (default: a fresh
	// temporary directory).
	DataDir string
	// Client is the HTTP client (default: http.DefaultClient with generous
	// timeouts handled per-call).
	Client *http.Client
	// Log receives structured progress events, scoped per task by trace ID
	// (default slog.Default; tests pass obs.Discard()).
	Log *slog.Logger
	// Flight, when non-nil, receives every completed task (spans + ledger)
	// in its ring and is triggered on deterministic task failures, so a
	// worker that starts failing tasks leaves a diagnostic bundle behind.
	Flight *obs.FlightRecorder
}

// Worker executes coordinator tasks: it registers, heartbeats, leases,
// trains, and completes. One Worker handles Capacity tasks concurrently;
// kernels inside each task draw on the process-wide compute pool.
type Worker struct {
	cfg    WorkerConfig
	client *http.Client
	log    *slog.Logger
	cache  *store.Store

	regMu     sync.Mutex // serializes (re-)registration
	mu        sync.Mutex
	id        string
	hbEvery   time.Duration
	running   map[string]*runningTask
	fetchMu   sync.Mutex // serializes dataset bundle fetches
	envMu     sync.Mutex
	envs      map[string]*envEntry
	envOrder  []string
	envsLimit int
}

// runningTask is one in-flight execution.
type runningTask struct {
	cancel    context.CancelFunc
	cancelled bool // coordinator asked for cancellation
}

// envEntry memoizes one prepared training environment.
type envEntry struct {
	once sync.Once
	env  *core.Env
	err  error
}

// NewWorker validates cfg and opens the local dataset cache.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Coordinator == "" {
		return nil, errors.New("cluster: worker needs a coordinator URL")
	}
	if cfg.Capacity < 1 {
		cfg.Capacity = 1
	}
	if cfg.Name == "" {
		if host, err := os.Hostname(); err == nil {
			cfg.Name = host
		}
	}
	if cfg.DataDir == "" {
		dir, err := os.MkdirTemp("", "blinkml-worker-*")
		if err != nil {
			return nil, fmt.Errorf("cluster: worker cache dir: %w", err)
		}
		cfg.DataDir = dir
	}
	cache, err := store.Open(cfg.DataDir)
	if err != nil {
		return nil, err
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	logger := cfg.Log
	if logger == nil {
		logger = slog.Default()
	}
	return &Worker{
		cfg:       cfg,
		client:    client,
		log:       logger,
		cache:     cache,
		running:   make(map[string]*runningTask),
		envs:      make(map[string]*envEntry),
		envsLimit: 4,
	}, nil
}

// ID returns the coordinator-assigned worker id ("" before registration).
func (w *Worker) ID() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.id
}

// Run registers and serves tasks until ctx is done. On shutdown, in-flight
// tasks are cancelled and handed back to the coordinator for requeueing
// (best effort — if the handback cannot be delivered, the heartbeat timeout
// requeues them anyway).
func (w *Worker) Run(ctx context.Context) error {
	if err := w.register(ctx, ""); err != nil {
		return err
	}
	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	var hbDone sync.WaitGroup
	hbDone.Add(1)
	go func() { defer hbDone.Done(); w.heartbeatLoop(hbCtx) }()

	slots := make(chan struct{}, w.cfg.Capacity)
	for i := 0; i < w.cfg.Capacity; i++ {
		slots <- struct{}{}
	}
	var tasks sync.WaitGroup
loop:
	for {
		select {
		case <-ctx.Done():
			break loop
		case <-slots:
		}
		lease, err := w.lease(ctx)
		if err != nil {
			slots <- struct{}{}
			if ctx.Err() != nil {
				break loop
			}
			w.log.Warn("lease failed, retrying", "err", err)
			select {
			case <-time.After(500 * time.Millisecond):
			case <-ctx.Done():
				break loop
			}
			continue
		}
		if lease == nil {
			slots <- struct{}{}
			continue
		}
		w.applyCancels(lease.Cancel)
		tasks.Add(1)
		go func(lease *LeaseResponse) {
			defer tasks.Done()
			defer func() { slots <- struct{}{} }()
			w.execute(ctx, lease)
		}(lease)
	}
	tasks.Wait()
	stopHB()
	hbDone.Wait()
	return ctx.Err()
}

// register joins the coordinator, retrying until ctx is done. staleID is
// the id the caller saw rejected ("" on first registration): if another
// goroutine already replaced it — heartbeat and lease can observe the same
// coordinator restart concurrently — the call is a no-op, so one restart
// never yields two live registrations (and a phantom worker inflating the
// coordinator's capacity until it times out).
func (w *Worker) register(ctx context.Context, staleID string) error {
	w.regMu.Lock()
	defer w.regMu.Unlock()
	if cur := w.ID(); cur != staleID {
		return nil // already re-registered by a concurrent observer
	}
	req := RegisterRequest{
		Name:        w.cfg.Name,
		Capacity:    w.cfg.Capacity,
		Parallelism: compute.Parallelism(),
	}
	for {
		var resp RegisterResponse
		err := w.call(ctx, "/v1/cluster/register", req, &resp)
		if err == nil {
			w.mu.Lock()
			w.id = resp.WorkerID
			w.hbEvery = time.Duration(resp.HeartbeatIntervalMs) * time.Millisecond
			if w.hbEvery <= 0 {
				w.hbEvery = 2 * time.Second
			}
			w.mu.Unlock()
			w.log.Info("registered with coordinator",
				"worker", resp.WorkerID, "capacity", req.Capacity, "parallelism", req.Parallelism)
			return nil
		}
		w.log.Warn("register failed, retrying", "err", err)
		select {
		case <-time.After(time.Second):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// heartbeatLoop renews liveness and applies cancellation notices.
func (w *Worker) heartbeatLoop(ctx context.Context) {
	for {
		w.mu.Lock()
		every := w.hbEvery
		id := w.id
		ids := make([]string, 0, len(w.running))
		for tid := range w.running {
			ids = append(ids, tid)
		}
		w.mu.Unlock()
		select {
		case <-ctx.Done():
			return
		case <-time.After(every):
		}
		var resp HeartbeatResponse
		err := w.call(ctx, "/v1/cluster/heartbeat", HeartbeatRequest{WorkerID: id, Running: ids}, &resp)
		if isStatus(err, http.StatusNotFound) {
			// The coordinator forgot us (restart, or we were declared dead).
			// Re-register under a new id; completions of tasks leased under
			// the old id will be fenced off, which is exactly right — the
			// coordinator has already requeued them.
			if rerr := w.register(ctx, id); rerr != nil {
				return
			}
			continue
		}
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			w.log.Warn("heartbeat failed", "err", err)
			continue
		}
		w.applyCancels(resp.Cancel)
	}
}

// applyCancels cancels the named in-flight tasks.
func (w *Worker) applyCancels(ids []string) {
	if len(ids) == 0 {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, id := range ids {
		if rt, ok := w.running[id]; ok && !rt.cancelled {
			rt.cancelled = true
			rt.cancel()
		}
	}
}

// lease long-polls for one task; (nil, nil) means none available.
func (w *Worker) lease(ctx context.Context) (*LeaseResponse, error) {
	w.mu.Lock()
	id := w.id
	w.mu.Unlock()
	var resp LeaseResponse
	err := w.call(ctx, "/v1/cluster/lease", LeaseRequest{WorkerID: id, WaitMs: 2000}, &resp)
	if isStatus(err, http.StatusNoContent) {
		return nil, nil
	}
	if isStatus(err, http.StatusNotFound) {
		if rerr := w.register(ctx, id); rerr != nil {
			return nil, rerr
		}
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// execute runs one leased task and reports its outcome. The lease's trace
// id (minted at the coordinator's API admission) scopes the task's spans and
// log lines; recorded spans ship back in the completion payload so they
// rejoin the submitting job's trace on the coordinator.
func (w *Worker) execute(ctx context.Context, lease *LeaseResponse) {
	taskCtx, cancel := context.WithCancel(ctx)
	rt := &runningTask{cancel: cancel}
	w.mu.Lock()
	workerID := w.id
	w.running[lease.TaskID] = rt
	w.mu.Unlock()
	defer func() {
		cancel()
		w.mu.Lock()
		delete(w.running, lease.TaskID)
		w.mu.Unlock()
	}()

	rec := obs.NewRecorder(lease.Spec.Trace)
	tlog := w.log.With("task", lease.TaskID)
	if lease.Spec.Trace != "" {
		tlog = tlog.With("trace", lease.Spec.Trace)
	}
	// The per-task ledger meters the worker-side cost (CPU, kernels, rows,
	// bundle-cache traffic); it ships back in the completion payload so the
	// coordinator's job record carries the whole cost. Bound to this
	// goroutine so the context-free layers (pool, kernels, store) can charge.
	ledger := obs.NewLedger()
	taskCtx = obs.WithTrace(taskCtx, lease.Spec.Trace)
	taskCtx = obs.WithRecorder(taskCtx, rec)
	taskCtx = obs.WithLogger(taskCtx, tlog)
	taskCtx = obs.WithLedger(taskCtx, ledger)
	tlog.Info("task leased", "kind", lease.Spec.Kind)

	start := time.Now()
	unbind := obs.BindLedger(ledger)
	result, err := w.runTask(taskCtx, lease.Spec)
	unbind()
	comp := CompleteRequest{WorkerID: workerID, TaskID: lease.TaskID}
	switch {
	case err == nil:
		spans := rec.Spans()
		for i := range spans {
			spans[i].Worker = w.cfg.Name
		}
		result.Spans = spans
		result.Ledger = ledger.Snapshot()
		comp.Result = result
		tlog.Info("task done", "dur_ms", float64(time.Since(start))/float64(time.Millisecond))
	default:
		w.mu.Lock()
		cancelled := rt.cancelled
		w.mu.Unlock()
		switch {
		case cancelled:
			comp.Cancelled = true
		case ctx.Err() != nil:
			// The worker itself is shutting down; hand the task back.
			comp.Requeue = true
			comp.Error = "worker shutting down"
		case errors.Is(err, errInfra) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			// Not the task's fault: a transient fetch failure, or a context
			// error that leaked across a shared cache entry from another
			// task's cancellation. Hand it back for a retry (the attempt cap
			// still bounds the total) instead of failing it as if training
			// itself had diverged.
			comp.Requeue = true
			comp.Error = err.Error()
		default:
			comp.Error = err.Error()
		}
		tlog.Warn("task not completed", "err", err,
			"cancelled", comp.Cancelled, "requeue", comp.Requeue)
	}
	if fr := w.cfg.Flight; fr != nil {
		entry := obs.FlightEntry{
			Trace:      lease.Spec.Trace,
			JobID:      lease.TaskID,
			Kind:       "task:" + string(lease.Spec.Kind),
			Err:        comp.Error,
			DurMs:      float64(time.Since(start)) / float64(time.Millisecond),
			FinishedAt: time.Now(),
			Spans:      rec.Spans(),
			Ledger:     ledger.Snapshot(),
		}
		fr.Record(entry)
		// A deterministic failure (not a cancellation or an infrastructure
		// requeue) is the worker-side analogue of an SLO breach: capture the
		// scene before the evidence scrolls out of the ring.
		if err != nil && !comp.Cancelled && !comp.Requeue {
			fr.Trigger("task-failure", lease.TaskID+": "+comp.Error)
		}
	}
	w.complete(comp)
}

// complete delivers an outcome with bounded retries. It must work during
// shutdown, so it uses its own timeout rather than the run context.
func (w *Worker) complete(comp CompleteRequest) {
	for attempt := 0; attempt < 3; attempt++ {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err := w.call(ctx, "/v1/cluster/complete", comp, &struct{}{})
		cancel()
		if err == nil {
			return
		}
		// A fenced (stale) or unknown completion is final: the coordinator
		// has moved on; our result is void.
		if isStatus(err, http.StatusConflict) || isStatus(err, http.StatusNotFound) {
			w.log.Warn("task result discarded", "task", comp.TaskID, "err", err)
			return
		}
		w.log.Warn("complete failed, retrying", "task", comp.TaskID, "err", err)
		time.Sleep(time.Duration(attempt+1) * 200 * time.Millisecond)
	}
}

// runTask dispatches on the task kind.
func (w *Worker) runTask(ctx context.Context, spec TaskSpec) (*TaskResultPayload, error) {
	switch spec.Kind {
	case KindTrain:
		return w.runTrain(ctx, spec.Train)
	case KindTrial:
		return w.runTrial(ctx, spec.Trial)
	case KindAudit:
		return w.runAudit(ctx, spec.Audit)
	default:
		return nil, fmt.Errorf("cluster: unknown task kind %q", spec.Kind)
	}
}

// runAudit replays one guarantee: rebuild the recorded environment, train
// the full-data model, and measure the realized difference against the
// shipped approximate parameters. The fingerprint of the full model's bits
// rides back as the determinism witness.
func (w *Worker) runAudit(ctx context.Context, t *AuditTask) (*TaskResultPayload, error) {
	spec, err := t.Spec.Spec()
	if err != nil {
		return nil, err
	}
	env, err := w.envFor(ctx, t.Dataset, t.Options)
	if err != nil {
		return nil, err
	}
	optim := core.WithCancel(ctx, optimize.Options{MaxIters: t.Options.MaxIters})
	rep, err := core.ValidateGuarantee(env, spec, &core.Result{Theta: t.Theta, EstimatedEpsilon: t.Bound}, optim)
	if err != nil {
		return nil, err
	}
	return &TaskResultPayload{
		Realized:     rep.Realized,
		Satisfied:    rep.Satisfied,
		FullIters:    rep.FullIters,
		FullThetaFNV: fmt.Sprintf("%016x", core.ThetaFingerprint(rep.FullTheta)),
	}, nil
}

// runTrain executes a full BlinkML training run and returns the model in
// the modelio envelope.
func (w *Worker) runTrain(ctx context.Context, t *TrainTask) (*TaskResultPayload, error) {
	spec, err := t.Spec.Spec()
	if err != nil {
		return nil, err
	}
	src, err := w.source(ctx, t.Dataset)
	if err != nil {
		return nil, err
	}
	res, err := core.TrainSourceContext(ctx, spec, src, t.Options.CoreOptions())
	if err != nil {
		return nil, err
	}
	model, err := encodeModel(spec, res, src.Meta().Dim)
	if err != nil {
		return nil, err
	}
	return &TaskResultPayload{Model: model, SampleSize: res.SampleSize}, nil
}

// runTrial executes one search trial against the locally rebuilt
// environment (identical to the coordinator's by split determinism).
func (w *Worker) runTrial(ctx context.Context, t *TrialTask) (*TaskResultPayload, error) {
	spec, err := t.Spec.Spec()
	if err != nil {
		return nil, err
	}
	opts := t.Options.CoreOptions()
	env, err := w.envFor(ctx, t.Dataset, t.Options)
	if err != nil {
		return nil, err
	}
	runner := tune.NewEnvRunner(env, opts)
	res, err := runner.RunTrial(ctx, tune.Trial{
		Spec:     spec,
		Contract: t.Contract,
		N:        t.N,
		Rung:     t.Rung,
		Warm:     t.Warm,
	})
	if err != nil {
		return nil, err
	}
	out := &TaskResultPayload{
		Theta:      res.Theta,
		Score:      encodeScore(res.Score),
		SampleSize: res.SampleSize,
	}
	if res.Res != nil {
		model, err := encodeModel(spec, res.Res, env.Holdout().Dim)
		if err != nil {
			return nil, err
		}
		out.Model = model
	}
	return out, nil
}

// envFor memoizes prepared environments per (dataset, options) so a search
// of many trials pays data preparation once, like the in-process path.
func (w *Worker) envFor(ctx context.Context, ref DatasetRef, opts TrainOptions) (*core.Env, error) {
	key := ref.Key() + "|" + envOptionsKey(opts)
	w.envMu.Lock()
	e, ok := w.envs[key]
	if !ok {
		e = &envEntry{}
		w.envs[key] = e
		w.envOrder = append(w.envOrder, key)
		for len(w.envOrder) > w.envsLimit {
			old := w.envOrder[0]
			w.envOrder = w.envOrder[1:]
			if old != key {
				delete(w.envs, old)
			}
		}
	}
	w.envMu.Unlock()
	e.once.Do(func() {
		src, err := w.source(ctx, ref)
		if err != nil {
			e.err = err
			return
		}
		e.env, e.err = core.NewEnvFromSource(src, opts.CoreOptions())
	})
	if e.err != nil {
		// A failed build must not poison the cache for later tasks (the
		// fetch may have been interrupted by a cancellation).
		w.envMu.Lock()
		if w.envs[key] == e {
			delete(w.envs, key)
		}
		w.envMu.Unlock()
	}
	return e.env, e.err
}

// envOptionsKey fingerprints the options fields that shape an environment
// (split fractions and seed; the contract fields don't change the split but
// keying on all of them is harmlessly conservative).
func envOptionsKey(opts TrainOptions) string {
	b, _ := json.Marshal(opts)
	return string(b)
}

// source resolves a dataset reference: synthetic workloads regenerate
// locally, inline rows come from the payload, and store ids resolve through
// the local cache — fetched from the coordinator at most once per content.
func (w *Worker) source(ctx context.Context, ref DatasetRef) (dataset.Source, error) {
	switch {
	case ref.Synthetic != nil:
		s := ref.Synthetic
		return datagen.Generate(s.Name, datagen.Config{Rows: s.Rows, Dim: s.Dim, Seed: s.Seed})
	case ref.Inline != nil:
		return ref.Inline.Build()
	case ref.ID != "":
		return w.fetchDataset(ctx, ref)
	default:
		return nil, errors.New("cluster: task has no dataset")
	}
}

// Build materializes the inline payload as a Dataset (sparse payloads pack
// into a CSR block, with the standard density-threshold dense fallback).
func (d *Inline) Build() (*dataset.Dataset, error) {
	task, err := dataset.ParseTask(d.Task)
	if err != nil {
		return nil, err
	}
	if len(d.Indices) > 0 {
		return dataset.FromSparse(task, d.Dim, d.Indices, d.Values, d.Y, d.Classes)
	}
	return dataset.FromDense(task, d.X, d.Y, d.Classes)
}

// fetchDataset returns the cached handle for ref, downloading the bundle
// from the coordinator when the cache misses (or holds different content).
func (w *Worker) fetchDataset(ctx context.Context, ref DatasetRef) (*store.Handle, error) {
	w.fetchMu.Lock()
	defer w.fetchMu.Unlock()
	if h, err := w.cache.Get(ref.ID); err == nil {
		man := h.Manifest()
		if man.RowCRC32 == ref.RowCRC32 && man.IndexCRC32 == ref.IndexCRC32 {
			obs.LedgerFrom(ctx).ChargeBundle(true)
			return h, nil
		}
		// Same id, different content: the cache is from another coordinator
		// lifetime. Replace it.
		if err := w.cache.Delete(ref.ID); err != nil {
			return nil, err
		}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		w.cfg.Coordinator+"/v1/cluster/datasets/"+ref.ID, nil)
	if err != nil {
		return nil, err
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("%w: fetch dataset %s: %v", errInfra, ref.ID, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		// The coordinator genuinely has no such dataset — deterministic.
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<10))
		return nil, fmt.Errorf("cluster: fetch dataset %s: status %d: %s", ref.ID, resp.StatusCode, body)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<10))
		return nil, fmt.Errorf("%w: fetch dataset %s: status %d: %s", errInfra, ref.ID, resp.StatusCode, body)
	}
	h, err := w.cache.ImportBundle(ref.ID, resp.Body)
	if err != nil {
		// A truncated or checksum-failing transfer is retryable; the bytes
		// on the coordinator are fine.
		return nil, fmt.Errorf("%w: %v", errInfra, err)
	}
	obs.LedgerFrom(ctx).ChargeBundle(false)
	w.log.Info("cached dataset", "dataset", ref.ID, "rows", h.Manifest().Rows)
	return h, nil
}

// encodeScore maps a trial score to the wire (nil encodes NaN, which JSON
// cannot carry).
func encodeScore(v float64) *float64 {
	if math.IsNaN(v) {
		return nil
	}
	return &v
}

// DecodeScore is the inverse of encodeScore.
func DecodeScore(p *float64) float64 {
	if p == nil {
		return math.NaN()
	}
	return *p
}

// encodeModel serializes a training result as a modelio envelope.
func encodeModel(spec models.Spec, res *core.Result, dim int) ([]byte, error) {
	var buf bytes.Buffer
	err := modelio.Encode(&buf, &modelio.Model{
		Spec:             spec,
		Theta:            res.Theta,
		Dim:              dim,
		SampleSize:       res.SampleSize,
		PoolSize:         res.PoolSize,
		EstimatedEpsilon: res.EstimatedEpsilon,
		UsedInitialModel: res.UsedInitialModel,
		Diag:             res.Diag,
	})
	if err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// errInfra marks failures of the worker's own infrastructure (dataset
// transfer, cross-task cache contamination) rather than of the task: the
// task is handed back for a retry instead of failed as deterministic.
var errInfra = errors.New("cluster: worker infrastructure error")

// statusError carries a non-2xx protocol response.
type statusError struct {
	status int
	msg    string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("cluster: status %d: %s", e.status, e.msg)
}

// isStatus reports whether err is a statusError with the given code.
func isStatus(err error, status int) bool {
	var se *statusError
	return errors.As(err, &se) && se.status == status
}

// call POSTs a JSON request to the coordinator and decodes the JSON
// response. Non-2xx responses become statusErrors carrying the protocol
// error message.
func (w *Worker) call(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if trace := obs.TraceID(ctx); trace != "" {
		req.Header.Set(obs.TraceHeader, trace)
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		return &statusError{status: http.StatusNoContent}
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxProtocolBody))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var pe protoError
		msg := string(raw)
		if json.Unmarshal(raw, &pe) == nil && pe.Error != "" {
			msg = pe.Error
		}
		return &statusError{status: resp.StatusCode, msg: msg}
	}
	if out != nil && len(raw) > 0 {
		if err := json.Unmarshal(raw, out); err != nil {
			return fmt.Errorf("cluster: decode %s response: %w", path, err)
		}
	}
	return nil
}
