package cluster

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"blinkml/internal/obs"
	"blinkml/internal/store"
)

// Config sizes a Coordinator. Zero values take the documented defaults.
type Config struct {
	// HeartbeatInterval is how often workers are told to heartbeat
	// (default 2s; tests use milliseconds).
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is how long a worker may stay silent before it is
	// declared dead and its leases are requeued (default 3×interval).
	HeartbeatTimeout time.Duration
	// MaxAttempts caps how many leases one task may consume before it fails
	// with a TaskError (default 3).
	MaxAttempts int
	// SweepInterval is the liveness-check period (default
	// HeartbeatInterval/2, floored at 10ms).
	SweepInterval time.Duration
	// Logger receives worker join/loss and task requeue/failure events.
	// Nil discards (tests).
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 2 * time.Second
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 3 * c.HeartbeatInterval
	}
	// The timeout must leave room for several heartbeats, or every worker
	// would be reaped before its first one (an operator setting only
	// -cluster-heartbeat-timeout can otherwise put the timeout below the
	// default interval). The interval yields: the operator's timeout keeps
	// its meaning, and workers are simply told to heartbeat fast enough.
	if c.HeartbeatInterval > c.HeartbeatTimeout/3 {
		c.HeartbeatInterval = c.HeartbeatTimeout / 3
		if c.HeartbeatInterval < 10*time.Millisecond {
			c.HeartbeatInterval = 10 * time.Millisecond
		}
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.SweepInterval <= 0 {
		c.SweepInterval = c.HeartbeatInterval / 2
		if c.SweepInterval < 10*time.Millisecond {
			c.SweepInterval = 10 * time.Millisecond
		}
	}
	return c
}

// Coordinator errors.
var (
	ErrClosed        = errors.New("cluster: coordinator is closed")
	ErrUnknownWorker = errors.New("cluster: unknown worker")
	ErrUnknownTask   = errors.New("cluster: unknown task")
	ErrStaleLease    = errors.New("cluster: stale lease")
)

// Task states.
const (
	taskPending   = "pending"
	taskLeased    = "leased"
	taskSucceeded = "succeeded"
	taskFailed    = "failed"
	taskCancelled = "cancelled"
)

// task is the coordinator-side record of one schedulable unit.
type task struct {
	id   string
	spec TaskSpec

	state       string
	worker      string // current leaseholder ("" when pending/terminal)
	attempts    int    // leases consumed
	cancelled   bool   // cancellation requested
	submittedAt time.Time
	leasedAt    time.Time // when the current lease was granted
	log         []string

	result *TaskResultPayload
	err    error

	done chan struct{} // closed on terminal state
}

// workerState tracks one registered worker. The completed/failed counters
// and the lease-to-complete histogram feed the fleet scoreboard in Status.
type workerState struct {
	id          string
	name        string
	capacity    int
	parallelism int
	deadline    time.Time
	leased      map[string]*task

	completed int64
	failed    int64
	ltc       *obs.Histogram // lease-to-complete latency (ms)

	// cpuMs / allocBytes accumulate the shipped ledgers of completed tasks
	// (the scoreboard's per-worker resource rollup).
	cpuMs      float64
	allocBytes int64
}

// Coordinator owns the task queue and worker registry. All methods are safe
// for concurrent use.
type Coordinator struct {
	cfg   Config
	store *store.Store
	m     *Metrics
	log   *slog.Logger

	mu      sync.Mutex
	closed  bool
	workers map[string]*workerState
	tasks   map[string]*task
	pending []*task // FIFO
	wake    chan struct{}
	taskSeq uint64
	wkrSeq  uint64

	stopSweep chan struct{}
	sweepDone chan struct{}
}

// NewCoordinator starts a coordinator. st may be nil when no stored
// datasets will be referenced (tests); the dataset-export endpoint then 404s.
func NewCoordinator(cfg Config, st *store.Store) *Coordinator {
	log := cfg.Logger
	if log == nil {
		log = obs.Discard()
	}
	c := &Coordinator{
		cfg:       cfg.withDefaults(),
		store:     st,
		m:         sharedMetrics(),
		log:       log,
		workers:   make(map[string]*workerState),
		tasks:     make(map[string]*task),
		wake:      make(chan struct{}),
		stopSweep: make(chan struct{}),
		sweepDone: make(chan struct{}),
	}
	// The shared-metrics gauges outlive any one coordinator (expvar
	// singletons); resync them to this coordinator's actual — empty — state
	// so a reconstructed coordinator doesn't report its predecessor's
	// workers and queue.
	c.m.Workers.Set(0)
	c.refreshGaugesLocked()
	go c.sweeper()
	return c
}

// Close fails every non-terminal task with ErrClosed, wakes all pollers,
// and stops the liveness sweeper.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		<-c.sweepDone
		return
	}
	c.closed = true
	for _, t := range c.tasks {
		if !terminal(t.state) {
			c.finishLocked(t, taskFailed, nil, ErrClosed)
		}
	}
	c.pending = nil
	c.wakeAllLocked()
	c.mu.Unlock()
	close(c.stopSweep)
	<-c.sweepDone
}

// Store returns the dataset store the coordinator exports from (may be nil).
func (c *Coordinator) Store() *store.Store { return c.store }

// Submit admits a task and returns its id. The task starts pending; a
// worker will lease it.
func (c *Coordinator) Submit(spec TaskSpec) (string, error) {
	if err := spec.Validate(); err != nil {
		return "", err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return "", ErrClosed
	}
	c.taskSeq++
	t := &task{
		id:          fmt.Sprintf("t-%06d", c.taskSeq),
		spec:        spec,
		state:       taskPending,
		submittedAt: time.Now(),
		done:        make(chan struct{}),
	}
	c.tasks[t.id] = t
	c.pending = append(c.pending, t)
	c.m.TasksSubmitted.Add(1)
	c.refreshGaugesLocked()
	c.wakeAllLocked()
	return t.id, nil
}

// Await blocks until the task is terminal or ctx is done. Cancellation
// propagates: a done ctx requests task cancellation (the leaseholder is
// told to stop on its next poll) and returns ctx.Err() immediately. On a
// terminal task it returns the result, the task's error, or a
// context.Canceled-wrapping error for a cancelled task.
func (c *Coordinator) Await(ctx context.Context, id string) (*TaskResultPayload, error) {
	c.mu.Lock()
	t, ok := c.tasks[id]
	c.mu.Unlock()
	if !ok {
		return nil, ErrUnknownTask
	}
	select {
	case <-t.done:
	case <-ctx.Done():
		c.CancelTask(id)
		return nil, ctx.Err()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	switch t.state {
	case taskSucceeded:
		return t.result, nil
	case taskCancelled:
		return nil, fmt.Errorf("cluster: task %s cancelled: %w", id, context.Canceled)
	default:
		return nil, t.err
	}
}

// CancelTask requests cancellation: pending tasks go terminal at once;
// leased tasks are flagged, and the leaseholder learns via its next
// heartbeat or lease response. Cancelling an unknown or terminal task is a
// no-op.
func (c *Coordinator) CancelTask(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tasks[id]
	if !ok || terminal(t.state) {
		return
	}
	t.cancelled = true
	if t.state == taskPending {
		c.dropPendingLocked(t)
		c.finishLocked(t, taskCancelled, nil, nil)
	}
}

// Register admits a worker.
func (c *Coordinator) Register(req RegisterRequest) (RegisterResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return RegisterResponse{}, ErrClosed
	}
	c.wkrSeq++
	id := fmt.Sprintf("w-%06d", c.wkrSeq)
	name := req.Name
	if name == "" {
		name = id
	}
	cap := req.Capacity
	if cap < 1 {
		cap = 1
	}
	c.workers[id] = &workerState{
		id:          id,
		name:        name,
		capacity:    cap,
		parallelism: req.Parallelism,
		deadline:    time.Now().Add(c.cfg.HeartbeatTimeout),
		leased:      make(map[string]*task),
		ltc:         obs.NewHistogram(),
	}
	c.m.WorkersJoined.Add(1)
	c.m.Workers.Set(int64(len(c.workers)))
	c.log.Info("worker joined", "worker", id, "name", name, "capacity", cap, "parallelism", req.Parallelism)
	return RegisterResponse{
		WorkerID:            id,
		HeartbeatIntervalMs: c.cfg.HeartbeatInterval.Milliseconds(),
		HeartbeatTimeoutMs:  c.cfg.HeartbeatTimeout.Milliseconds(),
	}, nil
}

// Heartbeat renews the worker's liveness deadline and returns ids of its
// tasks that should be cancelled.
func (c *Coordinator) Heartbeat(req HeartbeatRequest) (HeartbeatResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[req.WorkerID]
	if !ok {
		return HeartbeatResponse{}, ErrUnknownWorker
	}
	w.deadline = time.Now().Add(c.cfg.HeartbeatTimeout)
	return HeartbeatResponse{Cancel: c.cancellationsLocked(w)}, nil
}

// cancellationsLocked lists the worker's leased tasks flagged for
// cancellation.
func (c *Coordinator) cancellationsLocked(w *workerState) []string {
	var cancel []string
	for id, t := range w.leased {
		if t.cancelled {
			cancel = append(cancel, id)
		}
	}
	sort.Strings(cancel)
	return cancel
}

// Lease hands the worker the oldest pending task, blocking up to wait for
// one to appear. It returns (nil, nil, nil-error) — no task — on timeout.
// Leasing renews the worker's liveness like a heartbeat.
func (c *Coordinator) Lease(ctx context.Context, workerID string, wait time.Duration) (*LeaseResponse, error) {
	deadline := time.Now().Add(wait)
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return nil, ErrClosed
		}
		w, ok := c.workers[workerID]
		if !ok {
			c.mu.Unlock()
			return nil, ErrUnknownWorker
		}
		w.deadline = time.Now().Add(c.cfg.HeartbeatTimeout)
		if t := c.popPendingLocked(); t != nil {
			t.state = taskLeased
			t.worker = workerID
			t.leasedAt = time.Now()
			t.attempts++
			w.leased[t.id] = t
			resp := &LeaseResponse{TaskID: t.id, Spec: t.spec, Cancel: c.cancellationsLocked(w)}
			c.m.LeasesGranted.Add(1)
			c.m.TaskLeaseWait.Observe(float64(time.Since(t.submittedAt)) / float64(time.Millisecond))
			c.refreshGaugesLocked()
			c.mu.Unlock()
			return resp, nil
		}
		wake := c.wake
		c.mu.Unlock()

		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, nil
		}
		timer := time.NewTimer(remain)
		select {
		case <-wake:
			timer.Stop()
		case <-timer.C:
			return nil, nil
		case <-ctx.Done():
			timer.Stop()
			return nil, ctx.Err()
		}
	}
}

// popPendingLocked removes and returns the oldest pending, non-cancelled
// task.
func (c *Coordinator) popPendingLocked() *task {
	for len(c.pending) > 0 {
		t := c.pending[0]
		c.pending = c.pending[1:]
		if t.state == taskPending && !t.cancelled {
			return t
		}
	}
	return nil
}

// Complete delivers a task outcome from a worker. The lease is fenced: only
// the current leaseholder's completion is accepted; a stale one (the task
// was requeued to someone else after this worker was declared dead) returns
// ErrStaleLease and is otherwise ignored. Completing an already-terminal
// task is an idempotent no-op.
func (c *Coordinator) Complete(req CompleteRequest) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tasks[req.TaskID]
	if !ok {
		return ErrUnknownTask
	}
	if terminal(t.state) {
		return nil
	}
	if t.state != taskLeased || t.worker != req.WorkerID {
		return fmt.Errorf("%w: task %s is not leased to %s", ErrStaleLease, req.TaskID, req.WorkerID)
	}
	w := c.workers[req.WorkerID]
	if w != nil {
		delete(w.leased, req.TaskID)
		w.deadline = time.Now().Add(c.cfg.HeartbeatTimeout)
	}
	switch {
	case t.cancelled || req.Cancelled:
		c.finishLocked(t, taskCancelled, nil, nil)
	case req.Requeue:
		c.requeueLocked(t, fmt.Sprintf("worker %s gave the task back: %s", req.WorkerID, orMsg(req.Error, "shutting down")))
	case req.Error != "":
		// Deterministic failure: the training itself errored. Rerunning the
		// same pure function elsewhere yields the same error; fail now.
		t.log = append(t.log, fmt.Sprintf("attempt %d on %s: %s", t.attempts, req.WorkerID, req.Error))
		if w != nil {
			w.failed++
		}
		c.finishLocked(t, taskFailed, nil, &TaskError{TaskID: t.id, Attempts: t.attempts, Reason: req.Error, Log: t.log})
	case req.Result == nil:
		t.log = append(t.log, fmt.Sprintf("attempt %d on %s: empty completion", t.attempts, req.WorkerID))
		if w != nil {
			w.failed++
		}
		c.finishLocked(t, taskFailed, nil, &TaskError{TaskID: t.id, Attempts: t.attempts, Reason: "worker sent an empty completion", Log: t.log})
	default:
		if w != nil {
			w.completed++
			ms := float64(time.Since(t.leasedAt)) / float64(time.Millisecond)
			w.ltc.Observe(ms)
			c.m.TaskLeaseToComplete.Observe(ms)
			if l := req.Result.Ledger; l != nil {
				w.cpuMs += l.CPUMs
				w.allocBytes += l.BytesMaterialized
			}
		}
		c.finishLocked(t, taskSucceeded, req.Result, nil)
	}
	return nil
}

// orMsg returns s, or def when s is empty.
func orMsg(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// requeueLocked puts a lost task back on the queue, or fails it when its
// attempts are exhausted. Cancelled tasks go terminal instead of rerunning.
func (c *Coordinator) requeueLocked(t *task, reason string) {
	t.log = append(t.log, fmt.Sprintf("attempt %d: %s", t.attempts, reason))
	t.worker = ""
	if t.cancelled {
		c.finishLocked(t, taskCancelled, nil, nil)
		return
	}
	if t.attempts >= c.cfg.MaxAttempts {
		c.finishLocked(t, taskFailed, nil, &TaskError{TaskID: t.id, Attempts: t.attempts, Reason: reason, Log: t.log})
		return
	}
	t.state = taskPending
	c.pending = append(c.pending, t)
	c.m.TasksRequeued.Add(1)
	c.log.Info("task requeued", "task", t.id, "trace", t.spec.Trace, "attempt", t.attempts, "reason", reason)
	c.refreshGaugesLocked()
	c.wakeAllLocked()
}

// finishLocked records a terminal state and wakes waiters.
func (c *Coordinator) finishLocked(t *task, state string, result *TaskResultPayload, err error) {
	t.state = state
	t.worker = ""
	t.result = result
	t.err = err
	close(t.done)
	switch state {
	case taskSucceeded:
		c.m.TasksSucceeded.Add(1)
	case taskFailed:
		c.m.TasksFailed.Add(1)
		c.log.Warn("task failed", "task", t.id, "trace", t.spec.Trace, "err", err)
	case taskCancelled:
		c.m.TasksCancelled.Add(1)
	}
	c.refreshGaugesLocked()
	// Terminal tasks are forgotten once their waiter has collected them —
	// the serving layer holds the job history; keeping every task forever
	// would leak on a long-lived coordinator. A short grace keeps late
	// duplicate completions idempotent.
	tid := t.id
	time.AfterFunc(10*c.cfg.HeartbeatTimeout, func() {
		c.mu.Lock()
		delete(c.tasks, tid)
		c.mu.Unlock()
	})
}

// dropPendingLocked removes t from the pending queue.
func (c *Coordinator) dropPendingLocked(t *task) {
	for i, p := range c.pending {
		if p == t {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			return
		}
	}
}

// wakeAllLocked wakes every lease long-poll.
func (c *Coordinator) wakeAllLocked() {
	close(c.wake)
	c.wake = make(chan struct{})
}

// sweeper periodically reaps workers whose heartbeat deadline passed,
// requeueing their leased tasks.
func (c *Coordinator) sweeper() {
	defer close(c.sweepDone)
	ticker := time.NewTicker(c.cfg.SweepInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stopSweep:
			return
		case <-ticker.C:
			c.reapDead(time.Now())
		}
	}
}

// reapDead removes workers past their deadline and requeues their tasks.
// Exposed to tests via the sweeper's clock; callers pass time.Now().
func (c *Coordinator) reapDead(now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for id, w := range c.workers {
		if now.Before(w.deadline) {
			continue
		}
		delete(c.workers, id)
		c.m.WorkersLost.Add(1)
		c.m.Workers.Set(int64(len(c.workers)))
		c.log.Warn("worker lost", "worker", id, "name", w.name, "leased", len(w.leased))
		// Requeue in task-id order so recovery is deterministic.
		ids := make([]string, 0, len(w.leased))
		for tid := range w.leased {
			ids = append(ids, tid)
		}
		sort.Strings(ids)
		for _, tid := range ids {
			c.requeueLocked(w.leased[tid], fmt.Sprintf("worker %s (%s) lost: heartbeat timeout", id, w.name))
		}
	}
}

// TotalCapacity sums the task capacity of every live worker — how many
// tasks the fleet can execute at once. Schedulers use it to size their
// dispatch concurrency.
func (c *Coordinator) TotalCapacity() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0
	for _, w := range c.workers {
		total += w.capacity
	}
	return total
}

// Status snapshots the registry and queue.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{Workers: make([]WorkerStatus, 0, len(c.workers))}
	for _, w := range c.workers {
		ws := WorkerStatus{
			ID:             w.id,
			Name:           w.name,
			Capacity:       w.capacity,
			Parallelism:    w.parallelism,
			Leased:         len(w.leased),
			LastSeen:       w.deadline.Add(-c.cfg.HeartbeatTimeout),
			TasksCompleted: w.completed,
			TasksFailed:    w.failed,
			CPUMs:          w.cpuMs,
			AllocBytes:     w.allocBytes,
		}
		if total := w.completed + w.failed; total > 0 {
			ws.ErrorRate = float64(w.failed) / float64(total)
		}
		if w.completed > 0 {
			ws.P95LeaseToCompleteMs = w.ltc.Quantile(0.95)
		}
		st.Workers = append(st.Workers, ws)
	}
	sort.Slice(st.Workers, func(i, j int) bool { return st.Workers[i].ID < st.Workers[j].ID })
	for _, t := range c.tasks {
		switch t.state {
		case taskPending:
			st.TasksPending++
		case taskLeased:
			st.TasksLeased++
		}
	}
	return st
}

// refreshGaugesLocked recomputes the pending/leased gauges.
func (c *Coordinator) refreshGaugesLocked() {
	var pending, leased int64
	for _, t := range c.tasks {
		switch t.state {
		case taskPending:
			pending++
		case taskLeased:
			leased++
		}
	}
	c.m.TasksPending.Set(pending)
	c.m.TasksLeased.Set(leased)
}

// terminal reports whether a task state is final.
func terminal(state string) bool {
	return state == taskSucceeded || state == taskFailed || state == taskCancelled
}
