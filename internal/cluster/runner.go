package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"

	"blinkml/internal/core"
	"blinkml/internal/modelio"
	"blinkml/internal/obs"
	"blinkml/internal/tune"
)

// TrialRunner implements tune.Runner by shipping every trial to the
// cluster: the searcher's leaderboard logic runs on the coordinator while
// each candidate training (halving rungs and contract runs alike) becomes
// one remote task. Concurrent RunTrial calls — the searcher's worker pool —
// turn into concurrent outstanding tasks, so a search fans out across as
// many cluster workers as are free.
type TrialRunner struct {
	coord   *Coordinator
	dataset DatasetRef
	options TrainOptions
	poolLen int
}

// NewTrialRunner builds a runner for one search: every trial references the
// same dataset and training options, so remote workers rebuild (and cache)
// one shared environment per search, just like the in-process path.
// poolLen is N for the dataset/options pair — core.PoolSize(rows, opts).
func NewTrialRunner(coord *Coordinator, ref DatasetRef, opts TrainOptions, poolLen int) *TrialRunner {
	return &TrialRunner{coord: coord, dataset: ref, options: opts, poolLen: poolLen}
}

// PoolLen implements tune.Runner.
func (r *TrialRunner) PoolLen() int { return r.poolLen }

// RunTrial implements tune.Runner: submit, await, decode.
func (r *TrialRunner) RunTrial(ctx context.Context, t tune.Trial) (tune.TrialResult, error) {
	sj, err := modelio.SpecToJSON(t.Spec)
	if err != nil {
		return tune.TrialResult{}, err
	}
	id, err := r.coord.Submit(TaskSpec{Kind: KindTrial, Trace: obs.TraceID(ctx), Trial: &TrialTask{
		Spec:     sj,
		Dataset:  r.dataset,
		Options:  r.options,
		Contract: t.Contract,
		N:        t.N,
		Rung:     t.Rung,
		Warm:     t.Warm,
	}})
	if err != nil {
		return tune.TrialResult{}, err
	}
	payload, err := r.coord.Await(ctx, id)
	if err != nil {
		return tune.TrialResult{}, err
	}
	// Worker-side spans and ledger rejoin the submitting job's trace and
	// cost record.
	obs.RecorderFrom(ctx).Add(payload.Spans)
	obs.LedgerFrom(ctx).Merge(payload.Ledger)
	res := tune.TrialResult{
		Theta:      payload.Theta,
		Score:      DecodeScore(payload.Score),
		SampleSize: payload.SampleSize,
	}
	if t.Contract {
		m, err := DecodeModel(payload.Model)
		if err != nil {
			return tune.TrialResult{}, fmt.Errorf("cluster: trial %s: %w", id, err)
		}
		res.Theta = m.Theta
		res.SampleSize = m.SampleSize
		res.Res = &core.Result{
			Theta:            m.Theta,
			SampleSize:       m.SampleSize,
			EstimatedEpsilon: m.EstimatedEpsilon,
			UsedInitialModel: m.UsedInitialModel,
			PoolSize:         m.PoolSize,
			Diag:             m.Diag,
		}
	}
	return res, nil
}

// DecodeModel parses the modelio envelope a worker shipped back.
func DecodeModel(raw []byte) (*modelio.Model, error) {
	if len(raw) == 0 {
		return nil, errors.New("cluster: task result has no model")
	}
	return modelio.Decode(bytes.NewReader(raw))
}
