package cluster

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"blinkml/internal/core"
	"blinkml/internal/datagen"
	"blinkml/internal/modelio"
	"blinkml/internal/models"
	"blinkml/internal/obs"
	"blinkml/internal/store"
	"blinkml/internal/tune"
)

// testCluster is one in-process coordinator + HTTP server.
type testCluster struct {
	coord  *Coordinator
	server *httptest.Server
}

func newTestCluster(t *testing.T, cfg Config, st *store.Store) *testCluster {
	t.Helper()
	coord := NewCoordinator(cfg, st)
	mux := http.NewServeMux()
	coord.Mount(mux)
	server := httptest.NewServer(mux)
	t.Cleanup(func() {
		coord.Close()
		server.Close()
	})
	return &testCluster{coord: coord, server: server}
}

// startWorker runs a real Worker against the cluster until the test ends.
func (tc *testCluster) startWorker(t *testing.T, name string) *Worker {
	t.Helper()
	w, err := NewWorker(WorkerConfig{
		Coordinator: tc.server.URL,
		Name:        name,
		DataDir:     t.TempDir(),
		Log:         obs.Discard(),
	})
	if err != nil {
		t.Fatalf("new worker: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var done sync.WaitGroup
	done.Add(1)
	go func() { defer done.Done(); _ = w.Run(ctx) }()
	t.Cleanup(func() {
		cancel()
		done.Wait()
	})
	return w
}

// syntheticRef is a small deterministic binary-classification workload.
func syntheticRef() DatasetRef {
	return DatasetRef{Synthetic: &Synth{Name: "higgs", Rows: 4000, Dim: 8, Seed: 11}}
}

func testTrainOptions() TrainOptions {
	return TrainOptions{Epsilon: 0.08, Delta: 0.05, Seed: 7, InitialSampleSize: 400}
}

// localModel trains in-process — the reference the remote path must match
// bit for bit.
func localModel(t *testing.T, ref DatasetRef, opts TrainOptions) *core.Result {
	t.Helper()
	s := ref.Synthetic
	ds, err := datagen.Generate(s.Name, datagen.Config{Rows: s.Rows, Dim: s.Dim, Seed: s.Seed})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	spec, err := (modelio.SpecJSON{Name: "logistic"}).Spec()
	if err != nil {
		t.Fatalf("spec: %v", err)
	}
	res, err := core.TrainSourceContext(context.Background(), spec, ds, opts.CoreOptions())
	if err != nil {
		t.Fatalf("local train: %v", err)
	}
	return res
}

// TestRemoteTrainMatchesLocal: one train task through a real worker must
// reproduce the in-process result bit for bit (same seed, same process-wide
// compute parallelism).
func TestRemoteTrainMatchesLocal(t *testing.T) {
	tc := newTestCluster(t, testConfig(), nil)
	tc.startWorker(t, "w1")

	opts := testTrainOptions()
	want := localModel(t, syntheticRef(), opts)

	id, err := tc.coord.Submit(TaskSpec{Kind: KindTrain, Train: &TrainTask{
		Spec:    modelio.SpecJSON{Name: "logistic"},
		Dataset: syntheticRef(),
		Options: opts,
	}})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	payload, err := tc.coord.Await(ctx, id)
	if err != nil {
		t.Fatalf("await: %v", err)
	}
	m, err := DecodeModel(payload.Model)
	if err != nil {
		t.Fatalf("decode model: %v", err)
	}
	if len(m.Theta) != len(want.Theta) {
		t.Fatalf("remote theta has %d params, want %d", len(m.Theta), len(want.Theta))
	}
	for i := range m.Theta {
		if m.Theta[i] != want.Theta[i] {
			t.Fatalf("theta[%d]: remote %v != local %v (bit-exactness violated)", i, m.Theta[i], want.Theta[i])
		}
	}
	if m.SampleSize != want.SampleSize || m.EstimatedEpsilon != want.EstimatedEpsilon || m.PoolSize != want.PoolSize {
		t.Fatalf("contract metadata differs: remote {n=%d ε=%v N=%d} local {n=%d ε=%v N=%d}",
			m.SampleSize, m.EstimatedEpsilon, m.PoolSize, want.SampleSize, want.EstimatedEpsilon, want.PoolSize)
	}
}

// TestRemoteTuneMatchesLocal: a whole search through the remote trial
// runner must reproduce the in-process leaderboard and winner exactly.
func TestRemoteTuneMatchesLocal(t *testing.T) {
	tc := newTestCluster(t, testConfig(), nil)
	tc.startWorker(t, "w1")

	ref := syntheticRef()
	space := tune.Space{Grid: mustSpecs(t,
		modelio.SpecJSON{Name: "logistic", Reg: 0.0005},
		modelio.SpecJSON{Name: "logistic", Reg: 0.01},
		modelio.SpecJSON{Name: "logistic", Reg: 0.3},
	)}

	opts := TrainOptions{Epsilon: 0.1, Delta: 0.05, Seed: 5, InitialSampleSize: 300, TestFraction: 0.15}
	cfg := tune.Config{Train: opts.CoreOptions(), Workers: 2, Seed: 5}

	// Local reference search.
	s := ref.Synthetic
	ds, err := datagen.Generate(s.Name, datagen.Config{Rows: s.Rows, Dim: s.Dim, Seed: s.Seed})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	want, err := tune.RunSource(context.Background(), space, ds, cfg)
	if err != nil {
		t.Fatalf("local search: %v", err)
	}

	runner := NewTrialRunner(tc.coord, ref, opts, core.PoolSize(s.Rows, opts.CoreOptions()))
	got, err := tune.SearchRunner(context.Background(), space, runner, cfg)
	if err != nil {
		t.Fatalf("remote search: %v", err)
	}

	if got.Evaluated != want.Evaluated || got.PoolSize != want.PoolSize {
		t.Fatalf("search shape differs: got %d/%d, want %d/%d", got.Evaluated, got.PoolSize, want.Evaluated, want.PoolSize)
	}
	for i := range want.Entries {
		ge, we := got.Entries[i], want.Entries[i]
		if ge.Spec.Name() != we.Spec.Name() || !sameScore(ge.TestError, we.TestError) || ge.SampleSize != we.SampleSize {
			t.Fatalf("leaderboard row %d differs: remote {%s %v n=%d} local {%s %v n=%d}",
				i, ge.Spec.Name(), ge.TestError, ge.SampleSize, we.Spec.Name(), we.TestError, we.SampleSize)
		}
	}
	for i := range want.Best.Theta {
		if got.Best.Theta[i] != want.Best.Theta[i] {
			t.Fatalf("winner theta[%d]: remote %v != local %v", i, got.Best.Theta[i], want.Best.Theta[i])
		}
	}
}

// TestWorkerDeathMidTaskRequeues is the acceptance scenario: a worker
// leases the task and dies silently mid-flight; the coordinator requeues it
// onto a replacement worker, and the final result is identical to the
// in-process run.
func TestWorkerDeathMidTaskRequeues(t *testing.T) {
	tc := newTestCluster(t, testConfig(), nil)

	opts := testTrainOptions()
	want := localModel(t, syntheticRef(), opts)

	id, err := tc.coord.Submit(TaskSpec{Kind: KindTrain, Train: &TrainTask{
		Spec:    modelio.SpecJSON{Name: "logistic"},
		Dataset: syntheticRef(),
		Options: opts,
	}})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	// A "worker" that leases the task and dies on the spot: it never
	// completes and never heartbeats again — the deterministic version of a
	// kill -9 mid-task.
	doomed := registerWorker(t, tc.coord, "doomed")
	lease := mustLease(t, tc.coord, doomed)
	if lease.TaskID != id {
		t.Fatalf("doomed worker leased %s, want %s", lease.TaskID, id)
	}
	tc.coord.reapDead(time.Now().Add(time.Minute))

	// The replacement is a real worker; it must pick the task up and finish
	// the job with the exact same answer.
	tc.startWorker(t, "replacement")
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	payload, err := tc.coord.Await(ctx, id)
	if err != nil {
		t.Fatalf("await after requeue: %v", err)
	}
	m, err := DecodeModel(payload.Model)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	for i := range want.Theta {
		if m.Theta[i] != want.Theta[i] {
			t.Fatalf("requeued result theta[%d] = %v, want %v — requeue changed the answer", i, m.Theta[i], want.Theta[i])
		}
	}
}

// TestWorkerFetchesAndCachesDataset: a stored-dataset task makes the worker
// download the bundle once; later tasks against the same content reuse the
// cache.
func TestWorkerFetchesAndCachesDataset(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	ds, err := datagen.Generate("higgs", datagen.Config{Rows: 2000, Dim: 6, Seed: 3})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	var csv bytes.Buffer
	for i := 0; i < ds.Len(); i++ {
		row := make([]float64, ds.Dim)
		ds.X[i].AddTo(row, 1)
		for _, v := range row {
			fmt.Fprintf(&csv, "%v,", v)
		}
		fmt.Fprintf(&csv, "%v\n", ds.Y[i])
	}
	h, err := st.Ingest(strings.NewReader(csv.String()), store.IngestOptions{
		Format: "csv", Task: ds.Task, Name: "higgs-test",
	})
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	man := h.Manifest()
	ref := DatasetRef{ID: h.ID, Rows: man.Rows, RowCRC32: man.RowCRC32, IndexCRC32: man.IndexCRC32}

	tc := newTestCluster(t, testConfig(), st)
	w := tc.startWorker(t, "w1")

	opts := TrainOptions{Epsilon: 0.1, Delta: 0.05, Seed: 9, InitialSampleSize: 300}
	// The same training against the coordinator's store handle, locally.
	spec, _ := (modelio.SpecJSON{Name: "logistic"}).Spec()
	want, err := core.TrainSourceContext(context.Background(), spec, h, opts.CoreOptions())
	if err != nil {
		t.Fatalf("local train: %v", err)
	}

	submitAndDecode := func() *modelio.Model {
		id, err := tc.coord.Submit(TaskSpec{Kind: KindTrain, Train: &TrainTask{
			Spec: modelio.SpecJSON{Name: "logistic"}, Dataset: ref, Options: opts,
		}})
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		payload, err := tc.coord.Await(ctx, id)
		if err != nil {
			t.Fatalf("await: %v", err)
		}
		m, err := DecodeModel(payload.Model)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		return m
	}

	m1 := submitAndDecode()
	for i := range want.Theta {
		if m1.Theta[i] != want.Theta[i] {
			t.Fatalf("store-backed remote theta[%d] = %v, want %v", i, m1.Theta[i], want.Theta[i])
		}
	}
	// The bundle must now be in the worker's local cache under the same id.
	cached, err := w.cache.Get(h.ID)
	if err != nil {
		t.Fatalf("worker cache miss after task: %v", err)
	}
	if cm := cached.Manifest(); cm.RowCRC32 != man.RowCRC32 {
		t.Fatalf("cached checksum %08x, want %08x", cm.RowCRC32, man.RowCRC32)
	}
	fetches := tc.coord.m.DatasetsExported.Value()

	// A second task must not refetch.
	m2 := submitAndDecode()
	if m2.Theta[0] != m1.Theta[0] {
		t.Fatal("second run differs from first")
	}
	if got := tc.coord.m.DatasetsExported.Value(); got != fetches {
		t.Fatalf("dataset refetched: %d exports, want %d", got, fetches)
	}
}

// TestWorkerReportsTrainingError: a deterministic failure on the worker
// surfaces as a TaskError without retries burning more workers.
func TestWorkerReportsTrainingError(t *testing.T) {
	tc := newTestCluster(t, testConfig(), nil)
	tc.startWorker(t, "w1")
	// counts is a regression workload; logistic on it fails label
	// validation inside training.
	id, err := tc.coord.Submit(TaskSpec{Kind: KindTrain, Train: &TrainTask{
		Spec:    modelio.SpecJSON{Name: "logistic"},
		Dataset: DatasetRef{Synthetic: &Synth{Name: "counts", Rows: 500, Dim: 4, Seed: 1}},
		Options: TrainOptions{Epsilon: 0.1, Seed: 1, InitialSampleSize: 100},
	}})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := tc.coord.Await(ctx, id); err == nil {
		t.Fatal("await succeeded for an impossible task")
	}
}

func mustSpecs(t *testing.T, sjs ...modelio.SpecJSON) []models.Spec {
	t.Helper()
	out := make([]models.Spec, len(sjs))
	for i, sj := range sjs {
		spec, err := sj.Spec()
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		out[i] = spec
	}
	return out
}

func sameScore(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return a == b
}

// TestInlineKeyIsContentAddressed: two inline payloads with identical
// shapes but different values must never share a cache identity (a shared
// key would let a worker's env cache serve one job's rows to another).
func TestInlineKeyIsContentAddressed(t *testing.T) {
	a := DatasetRef{Inline: &Inline{Task: "binary", X: [][]float64{{1, 2}, {3, 4}}, Y: []float64{0, 1}}}
	b := DatasetRef{Inline: &Inline{Task: "binary", X: [][]float64{{1, 2}, {3, 5}}, Y: []float64{0, 1}}}
	c := DatasetRef{Inline: &Inline{Task: "binary", X: [][]float64{{1, 2}, {3, 4}}, Y: []float64{1, 1}}}
	if a.Key() == b.Key() || a.Key() == c.Key() {
		t.Fatalf("inline keys collide: %q %q %q", a.Key(), b.Key(), c.Key())
	}
	same := DatasetRef{Inline: &Inline{Task: "binary", X: [][]float64{{1, 2}, {3, 4}}, Y: []float64{0, 1}}}
	if a.Key() != same.Key() {
		t.Fatalf("equal content produced different keys: %q vs %q", a.Key(), same.Key())
	}
}
