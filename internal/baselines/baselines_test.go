package baselines

import (
	"testing"

	"blinkml/internal/core"
	"blinkml/internal/datagen"
	"blinkml/internal/models"
	"blinkml/internal/optimize"
)

func testEnv(t *testing.T) *core.Env {
	t.Helper()
	ds := datagen.Higgs(datagen.Config{Rows: 12000, Dim: 6, Seed: 1})
	return core.NewEnv(ds, core.Options{Epsilon: 0.1, Seed: 2})
}

func TestFixedRatio(t *testing.T) {
	env := testEnv(t)
	res, err := FixedRatio(env, models.LogisticRegression{Reg: 0.01}, 0.01, 3, optimize.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := env.PoolLen() / 100
	if res.SampleSize != want {
		t.Fatalf("sample size %d want %d", res.SampleSize, want)
	}
	if res.ModelsTrained != 1 {
		t.Fatalf("models trained %d", res.ModelsTrained)
	}
}

func TestFixedRatioRejectsBadRatio(t *testing.T) {
	env := testEnv(t)
	if _, err := FixedRatio(env, models.LogisticRegression{}, 0, 1, optimize.Options{}); err == nil {
		t.Fatal("ratio 0 accepted")
	}
	if _, err := FixedRatio(env, models.LogisticRegression{}, 1.5, 1, optimize.Options{}); err == nil {
		t.Fatal("ratio 1.5 accepted")
	}
}

func TestRelativeRatioScalesWithEpsilon(t *testing.T) {
	env := testEnv(t)
	spec := models.LogisticRegression{Reg: 0.01}
	loose, err := RelativeRatio(env, spec, 0.2, 4, optimize.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := RelativeRatio(env, spec, 0.01, 4, optimize.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if loose.SampleSize >= tight.SampleSize {
		t.Fatalf("looser ε should use a smaller sample: %d vs %d", loose.SampleSize, tight.SampleSize)
	}
}

func TestIncEstimatorMeetsAccuracy(t *testing.T) {
	env := testEnv(t)
	spec := models.LogisticRegression{Reg: 0.01}
	opt := core.Options{Epsilon: 0.05, Delta: 0.05, Seed: 5, K: 50}
	res, err := IncEstimator(env, spec, opt, 500)
	if err != nil {
		t.Fatal(err)
	}
	if res.ModelsTrained < 1 {
		t.Fatal("no models trained")
	}
	if res.SampleSize > env.PoolLen() {
		t.Fatalf("sample %d exceeds pool", res.SampleSize)
	}
	// The model it returns should actually be close to the full model.
	full, err := env.TrainFull(spec, optimize.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v := models.Diff(spec, res.Theta, full.Theta, env.Holdout()); v > 0.08 {
		t.Fatalf("IncEstimator model differs from full by %v", v)
	}
}

func TestIncEstimatorTerminatesAtPool(t *testing.T) {
	// Impossible request (ε ≈ 0) must still terminate by hitting n = N.
	env := testEnv(t)
	spec := models.LogisticRegression{Reg: 0.01}
	opt := core.Options{Epsilon: 1e-9, Delta: 0.05, Seed: 6, K: 20}
	res, err := IncEstimator(env, spec, opt, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if res.SampleSize != env.PoolLen() {
		t.Fatalf("expected full pool, got %d", res.SampleSize)
	}
}
