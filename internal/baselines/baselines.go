// Package baselines implements the three sample-size strategies BlinkML is
// compared against in §5.4 of the paper: FixedRatio (always 1% of the
// data), RelativeRatio ((1−ε)·10%), and IncEstimator (grow the sample until
// the accuracy estimate meets the request). The first two ignore the model,
// so they either miss the requested accuracy or overshoot the cost; the
// third meets the accuracy but trains many models.
package baselines

import (
	"errors"
	"time"

	"blinkml/internal/core"
	"blinkml/internal/models"
	"blinkml/internal/optimize"
	"blinkml/internal/stat"
)

// Result is a baseline-trained model with its cost accounting.
type Result struct {
	Theta         []float64
	SampleSize    int
	Time          time.Duration
	ModelsTrained int
}

// FixedRatio trains once on ratio·N rows (the paper uses ratio = 0.01).
func FixedRatio(env *core.Env, spec models.Spec, ratio float64, seed int64, optim optimize.Options) (*Result, error) {
	if ratio <= 0 || ratio > 1 {
		return nil, errors.New("baselines: ratio must be in (0,1]")
	}
	n := int(ratio * float64(env.PoolLen()))
	if n < 1 {
		n = 1
	}
	full, err := env.TrainOnSample(spec, n, seed, optim)
	if err != nil {
		return nil, err
	}
	return &Result{Theta: full.Theta, SampleSize: n, Time: full.Time, ModelsTrained: 1}, nil
}

// RelativeRatio trains once on (1−ε)·10% of the pool — a heuristic that
// scales the sample with the request but not with the model.
func RelativeRatio(env *core.Env, spec models.Spec, eps float64, seed int64, optim optimize.Options) (*Result, error) {
	n := int((1 - eps) * 0.1 * float64(env.PoolLen()))
	if n < 1 {
		n = 1
	}
	full, err := env.TrainOnSample(spec, n, seed, optim)
	if err != nil {
		return nil, err
	}
	return &Result{Theta: full.Theta, SampleSize: n, Time: full.Time, ModelsTrained: 1}, nil
}

// IncEstimator trains on growing samples n_k = step·k² (the paper uses
// step = 1000) until the BlinkML accuracy estimator certifies the requested
// ε — the descriptive approach the introduction warns can cost more than
// full training, since every iteration trains a fresh model.
func IncEstimator(env *core.Env, spec models.Spec, opt core.Options, step int) (*Result, error) {
	if step <= 0 {
		step = 1000
	}
	opt = opt.WithDefaults()
	bigN := env.PoolLen()
	rng := stat.NewRNG(opt.Seed + 0xB11E)
	start := time.Now()
	trained := 0
	for k := 1; ; k++ {
		n := step * k * k
		if n > bigN {
			n = bigN
		}
		sample, err := env.Sample(rng, n)
		if err != nil {
			return nil, err
		}
		tr, err := models.Train(spec, sample, nil, opt.Optimizer)
		if err != nil {
			return nil, err
		}
		trained++
		if n == bigN {
			return &Result{Theta: tr.Theta, SampleSize: n, Time: time.Since(start), ModelsTrained: trained}, nil
		}
		// Accuracy estimate with statistics computed on the very sample the
		// model was trained on, exactly as BlinkML's estimator requires.
		st, err := core.ComputeStatistics(spec, sample, tr.Theta, opt)
		if err != nil {
			return nil, err
		}
		est := core.EstimateAccuracy(spec, tr.Theta, st.Factor, core.Alpha(n, bigN), env.Holdout(), opt.K, opt.Delta, rng.Split())
		if est.Epsilon <= opt.Epsilon {
			return &Result{Theta: tr.Theta, SampleSize: n, Time: time.Since(start), ModelsTrained: trained}, nil
		}
	}
}
