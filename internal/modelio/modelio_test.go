package modelio

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"blinkml/internal/core"
	"blinkml/internal/datagen"
	"blinkml/internal/dataset"
	"blinkml/internal/models"
	"blinkml/internal/optimize"
)

// fixture trains spec on a small synthetic workload and returns the trained
// model plus a probe set for prediction comparison.
func fixture(t *testing.T, spec models.Spec, workload string) (*Model, *dataset.Dataset) {
	t.Helper()
	ds, err := datagen.Generate(workload, datagen.Config{Rows: 600, Dim: 12, Seed: 7})
	if err != nil {
		t.Fatalf("generate %s: %v", workload, err)
	}
	res, err := models.Train(spec, ds, nil, optimize.Options{MaxIters: 60})
	if err != nil {
		t.Fatalf("train %s on %s: %v", spec.Name(), workload, err)
	}
	return &Model{
		Spec:             spec,
		Theta:            res.Theta,
		SampleSize:       ds.Len(),
		PoolSize:         ds.Len(),
		EstimatedEpsilon: 0.05,
		UsedInitialModel: true,
		Diag:             core.Diagnostics{InitialTrain: 3 * time.Millisecond, InitialIters: res.Iters},
	}, ds
}

// TestRoundTripAllClasses encodes and decodes every model class and checks
// that the decoded model predicts identically on the fixture dataset.
func TestRoundTripAllClasses(t *testing.T) {
	cases := []struct {
		spec     models.Spec
		workload string
	}{
		{models.LinearRegression{Reg: 0.001}, "gas"},
		{models.LogisticRegression{Reg: 0.001}, "higgs"},
		{models.MaxEntropy{Reg: 0.001, Classes: 10}, "mnist"},
		{models.PoissonRegression{Reg: 0.001}, "counts"},
		{models.NewPPCA(4), "gas"},
	}
	for _, tc := range cases {
		t.Run(tc.spec.Name(), func(t *testing.T) {
			m, ds := fixture(t, tc.spec, tc.workload)
			var buf bytes.Buffer
			if err := Encode(&buf, m); err != nil {
				t.Fatalf("encode: %v", err)
			}
			got, err := Decode(&buf)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if got.Spec.Name() != m.Spec.Name() {
				t.Fatalf("spec name %q, want %q", got.Spec.Name(), m.Spec.Name())
			}
			if len(got.Theta) != len(m.Theta) {
				t.Fatalf("theta length %d, want %d", len(got.Theta), len(m.Theta))
			}
			for i := range m.Theta {
				if got.Theta[i] != m.Theta[i] {
					t.Fatalf("theta[%d] = %v, want %v (JSON round trip must be exact)", i, got.Theta[i], m.Theta[i])
				}
			}
			if got.Dim != ds.Dim {
				t.Fatalf("dim %d, want %d", got.Dim, ds.Dim)
			}
			if got.SampleSize != m.SampleSize || got.PoolSize != m.PoolSize ||
				got.EstimatedEpsilon != m.EstimatedEpsilon || got.UsedInitialModel != m.UsedInitialModel {
				t.Fatalf("metadata mismatch: got %+v", got)
			}
			if got.Diag.InitialTrain != m.Diag.InitialTrain || got.Diag.InitialIters != m.Diag.InitialIters {
				t.Fatalf("diagnostics mismatch: got %+v want %+v", got.Diag, m.Diag)
			}
			// The decisive check: identical predictions on every fixture row.
			for i := 0; i < ds.Len(); i++ {
				want := m.Spec.Predict(m.Theta, ds.X[i])
				have := got.Spec.Predict(got.Theta, ds.X[i])
				if have != want {
					t.Fatalf("row %d: decoded model predicts %v, original %v", i, have, want)
				}
			}
		})
	}
}

// TestPPCASigmaSqSurvives checks that the derived noise variance — state
// that lives on the spec, not in θ — round-trips.
func TestPPCASigmaSqSurvives(t *testing.T) {
	spec := models.NewPPCA(4)
	m, _ := fixture(t, spec, "gas")
	var buf bytes.Buffer
	if err := Encode(&buf, m); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	want := spec.SigmaSq()
	if have := got.Spec.(*models.PPCA).SigmaSq(); have != want {
		t.Fatalf("sigma^2 = %v after round trip, want %v", have, want)
	}
}

func TestEncodeRejectsNonFinite(t *testing.T) {
	m := &Model{Spec: models.LinearRegression{Reg: 0.001}, Theta: []float64{1, math.NaN()}}
	var buf bytes.Buffer
	if err := Encode(&buf, m); err == nil {
		t.Fatal("encode accepted a NaN parameter")
	}
}

func TestDecodeRejectsBadEnvelope(t *testing.T) {
	cases := map[string]string{
		"wrong format":  `{"format":"other","version":1,"spec":{"name":"linear"},"theta":[1],"dim":1}`,
		"wrong version": `{"format":"blinkml-model","version":99,"spec":{"name":"linear"},"theta":[1],"dim":1}`,
		"unknown model": `{"format":"blinkml-model","version":1,"spec":{"name":"svm"},"theta":[1],"dim":1}`,
		"empty theta":   `{"format":"blinkml-model","version":1,"spec":{"name":"linear"},"theta":[],"dim":0}`,
		"not json":      `garbage`,
	}
	for name, raw := range cases {
		if _, err := Decode(strings.NewReader(raw)); err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
		}
	}
}

func TestSpecJSONDefaults(t *testing.T) {
	s, err := SpecJSON{Name: "logistic"}.Spec()
	if err != nil {
		t.Fatalf("spec: %v", err)
	}
	if got := s.(models.LogisticRegression).Reg; got != DefaultReg {
		t.Fatalf("default reg %v, want %v", got, DefaultReg)
	}
	if _, err := (SpecJSON{}).Spec(); err == nil {
		t.Fatal("empty spec accepted")
	}
}
