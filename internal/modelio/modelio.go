// Package modelio serializes trained BlinkML models to a versioned,
// round-trippable JSON format. A persisted model carries everything needed
// to reconstruct predictions byte-for-byte: the model class specification
// (including derived quantities such as PPCA's σ²), the flattened
// parameter vector θ, and the accuracy-contract metadata of the run that
// produced it. The format is what lets the serving layer's model registry
// survive restarts.
//
// Floating-point fidelity: Go's encoding/json emits the shortest decimal
// representation that round-trips each float64 exactly, so encode→decode
// reproduces θ bit-for-bit (non-finite parameters are rejected at encode
// time, as they are by training).
package modelio

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"blinkml/internal/core"
	"blinkml/internal/models"
)

// FormatName identifies the envelope; Version is bumped on incompatible
// layout changes so old registries fail loudly instead of silently
// misreading.
const (
	FormatName = "blinkml-model"
	Version    = 1
)

// Model is the persistable view of a trained model: spec, parameters, and
// contract metadata (a superset of what the public blinkml.Model carries).
type Model struct {
	Spec             models.Spec
	Theta            []float64
	Dim              int // feature dimension; inferred from Spec+Theta if 0
	SampleSize       int
	PoolSize         int
	EstimatedEpsilon float64
	UsedInitialModel bool
	Diag             core.Diagnostics
	CreatedAt        time.Time
}

// SpecJSON is the wire form of a model class specification. It doubles as
// the model selector in serving-layer train requests, which is why every
// field is optional with per-model defaults.
type SpecJSON struct {
	// Name is the model class: "linear", "logistic", "maxent", "poisson",
	// or "ppca".
	Name string `json:"name"`
	// Reg is the L2 coefficient β (GLM classes; default 0.001).
	Reg float64 `json:"reg,omitempty"`
	// Classes is the class count for maxent (0 = infer from the dataset).
	Classes int `json:"classes,omitempty"`
	// Factors is q for ppca (0 = the paper's default of 10).
	Factors int `json:"factors,omitempty"`
	// SigmaSq is ppca's derived noise variance; populated when encoding a
	// trained model, ignored in train requests.
	SigmaSq float64 `json:"sigma_sq,omitempty"`
}

// DefaultReg is applied when a train request leaves Reg unset (the paper's
// §5.1 default).
const DefaultReg = 0.001

// SpecToJSON converts a concrete spec to its wire form.
func SpecToJSON(s models.Spec) (SpecJSON, error) {
	switch m := s.(type) {
	case models.LinearRegression:
		return SpecJSON{Name: m.Name(), Reg: m.Reg}, nil
	case models.LogisticRegression:
		return SpecJSON{Name: m.Name(), Reg: m.Reg}, nil
	case models.MaxEntropy:
		return SpecJSON{Name: m.Name(), Reg: m.Reg, Classes: m.Classes}, nil
	case models.PoissonRegression:
		return SpecJSON{Name: m.Name(), Reg: m.Reg}, nil
	case *models.PPCA:
		return SpecJSON{Name: m.Name(), Factors: m.Factors, SigmaSq: m.SigmaSq()}, nil
	default:
		return SpecJSON{}, fmt.Errorf("modelio: unsupported spec type %T", s)
	}
}

// Spec reconstructs the concrete spec. Defaults are filled in (Reg for the
// GLM classes) so the same type also validates serving-layer requests.
func (sj SpecJSON) Spec() (models.Spec, error) {
	reg := sj.Reg
	if reg == 0 {
		reg = DefaultReg
	}
	if reg < 0 {
		return nil, fmt.Errorf("modelio: negative regularization %v", reg)
	}
	switch sj.Name {
	case "linear":
		return models.LinearRegression{Reg: reg}, nil
	case "logistic":
		return models.LogisticRegression{Reg: reg}, nil
	case "maxent":
		if sj.Classes < 0 {
			return nil, fmt.Errorf("modelio: negative class count %d", sj.Classes)
		}
		return models.MaxEntropy{Reg: reg, Classes: sj.Classes}, nil
	case "poisson":
		return models.PoissonRegression{Reg: reg}, nil
	case "ppca":
		if sj.Factors < 0 {
			return nil, fmt.Errorf("modelio: negative factor count %d", sj.Factors)
		}
		p := models.NewPPCA(sj.Factors)
		p.RestoreSigmaSq(sj.SigmaSq)
		return p, nil
	case "":
		return nil, errors.New("modelio: missing model name")
	default:
		return nil, fmt.Errorf("modelio: unknown model %q (want linear|logistic|maxent|poisson|ppca)", sj.Name)
	}
}

// envelope is the on-disk layout.
type envelope struct {
	Format           string           `json:"format"`
	Version          int              `json:"version"`
	Spec             SpecJSON         `json:"spec"`
	Theta            []float64        `json:"theta"`
	Dim              int              `json:"dim"`
	SampleSize       int              `json:"sample_size,omitempty"`
	PoolSize         int              `json:"pool_size,omitempty"`
	EstimatedEpsilon float64          `json:"estimated_epsilon,omitempty"`
	UsedInitialModel bool             `json:"used_initial_model,omitempty"`
	Diag             core.Diagnostics `json:"diag"`
	CreatedAt        time.Time        `json:"created_at,omitzero"`
}

// InferDim recovers the feature dimension from a spec and its flattened
// parameter vector (the inverse of Spec.ParamDim).
func InferDim(spec models.Spec, theta []float64) int {
	switch m := spec.(type) {
	case models.MaxEntropy:
		if m.Classes > 0 {
			return len(theta) / m.Classes
		}
		return 0
	case *models.PPCA:
		f := m.Factors
		if f <= 0 {
			f = 10
		}
		return len(theta) / f
	default:
		return len(theta)
	}
}

// Encode writes m to w. Non-finite parameters are rejected: they cannot
// have come from successful training and would not survive JSON anyway.
func Encode(w io.Writer, m *Model) error {
	if m == nil || m.Spec == nil {
		return errors.New("modelio: nil model or spec")
	}
	if len(m.Theta) == 0 {
		return errors.New("modelio: empty parameter vector")
	}
	for i, v := range m.Theta {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("modelio: theta[%d] is not finite", i)
		}
	}
	sj, err := SpecToJSON(m.Spec)
	if err != nil {
		return err
	}
	dim := m.Dim
	if dim == 0 {
		dim = InferDim(m.Spec, m.Theta)
	}
	env := envelope{
		Format:           FormatName,
		Version:          Version,
		Spec:             sj,
		Theta:            m.Theta,
		Dim:              dim,
		SampleSize:       m.SampleSize,
		PoolSize:         m.PoolSize,
		EstimatedEpsilon: m.EstimatedEpsilon,
		UsedInitialModel: m.UsedInitialModel,
		Diag:             m.Diag,
		CreatedAt:        m.CreatedAt,
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&env)
}

// Decode reads a model written by Encode, validating the envelope and
// reconstructing the concrete spec.
func Decode(r io.Reader) (*Model, error) {
	var env envelope
	dec := json.NewDecoder(r)
	if err := dec.Decode(&env); err != nil {
		return nil, fmt.Errorf("modelio: decode: %w", err)
	}
	if env.Format != FormatName {
		return nil, fmt.Errorf("modelio: not a %s file (format %q)", FormatName, env.Format)
	}
	if env.Version != Version {
		return nil, fmt.Errorf("modelio: unsupported version %d (have %d)", env.Version, Version)
	}
	spec, err := env.Spec.Spec()
	if err != nil {
		return nil, err
	}
	if len(env.Theta) == 0 {
		return nil, errors.New("modelio: empty parameter vector")
	}
	for i, v := range env.Theta {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("modelio: theta[%d] is not finite", i)
		}
	}
	dim := env.Dim
	if dim == 0 {
		dim = InferDim(spec, env.Theta)
	}
	return &Model{
		Spec:             spec,
		Theta:            env.Theta,
		Dim:              dim,
		SampleSize:       env.SampleSize,
		PoolSize:         env.PoolSize,
		EstimatedEpsilon: env.EstimatedEpsilon,
		UsedInitialModel: env.UsedInitialModel,
		Diag:             env.Diag,
		CreatedAt:        env.CreatedAt,
	}, nil
}
