package dataset

import (
	"bufio"
	"fmt"
	"io"
)

// ReadCSV parses a dense labeled dataset from CSV text: one row per line,
// the label in the given column (negative counts from the end, -1 = last),
// every other column a float feature. A non-numeric first line is treated
// as a header and skipped. The task tags the label semantics; NumClasses is
// inferred for MultiClassification.
func ReadCSV(r io.Reader, labelCol int, task Task) (*Dataset, error) {
	return ReadCSVOpts(r, task, StreamOptions{LabelCol: Column(labelCol)})
}

// ReadCSVOpts is ReadCSV with explicit parser options (label column, line
// cap, declared dimension).
func ReadCSVOpts(r io.Reader, task Task, opt StreamOptions) (*Dataset, error) {
	ds := &Dataset{Task: task, Name: "csv"}
	maxClass := -1
	err := StreamCSV(r, opt, func(row RowData) error {
		if ds.Dim == 0 {
			ds.Dim = len(row.Val)
		}
		ds.X = append(ds.X, DenseRow(row.Val))
		ds.Y = append(ds.Y, row.Label)
		if c := int(row.Label); task == MultiClassification && float64(c) == row.Label && c > maxClass {
			maxClass = c
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if task == MultiClassification {
		ds.NumClasses = maxClass + 1
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

// WriteCSV writes the dataset as CSV with the label in the last column.
// Sparse rows are densified (CSV is a dense format; use WriteLibSVM for
// sparse data).
func WriteCSV(w io.Writer, ds *Dataset) error {
	bw := bufio.NewWriter(w)
	dense := make([]float64, ds.Dim)
	for i := 0; i < ds.Len(); i++ {
		for j := range dense {
			dense[j] = 0
		}
		ds.X[i].AddTo(dense, 1)
		for _, v := range dense {
			if _, err := fmt.Fprintf(bw, "%g,", v); err != nil {
				return err
			}
		}
		label := 0.0
		if ds.Task != Unsupervised {
			label = ds.Y[i]
		}
		if _, err := fmt.Fprintf(bw, "%g\n", label); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadLibSVM parses the sparse LibSVM/SVMlight format:
//
//	<label> <index>:<value> <index>:<value> ...
//
// Indices are 1-based in the format and converted to 0-based here. dim of 0
// infers the dimension from the largest index seen.
func ReadLibSVM(r io.Reader, dim int, task Task) (*Dataset, error) {
	return ReadLibSVMOpts(r, task, StreamOptions{Dim: dim})
}

// ReadLibSVMOpts is ReadLibSVM with explicit parser options (declared
// dimension, line cap, dense-fallback threshold). Rows are packed into one
// contiguous CSR block rather than per-row allocations; when the measured
// density exceeds the threshold (DefaultDenseThreshold unless overridden)
// the rows auto-fall back to dense, which is both smaller and faster at
// that density. Either way the values are identical, so training results
// do not depend on the representation chosen.
func ReadLibSVMOpts(r io.Reader, task Task, opt StreamOptions) (*Dataset, error) {
	c := &CSR{Indptr: []int64{0}}
	var labels []float64
	maxIdx := int32(-1)
	maxClass := -1
	err := StreamLibSVM(r, opt, func(row RowData) error {
		c.Idx = append(c.Idx, row.Idx...)
		c.Val = append(c.Val, row.Val...)
		c.Indptr = append(c.Indptr, int64(len(c.Idx)))
		labels = append(labels, row.Label)
		if n := len(row.Idx); n > 0 && row.Idx[n-1] > maxIdx {
			maxIdx = row.Idx[n-1]
		}
		if c := int(row.Label); task == MultiClassification && float64(c) == row.Label && c > maxClass {
			maxClass = c
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	dim := opt.Dim
	if dim <= 0 {
		dim = int(maxIdx) + 1
	}
	c.Dim = dim
	if err := c.Validate(); err != nil {
		return nil, err
	}
	ds := &Dataset{Dim: dim, Task: task, Name: "libsvm", X: c.Rows(), Y: labels}
	threshold := opt.DenseThreshold
	if threshold == 0 {
		threshold = DefaultDenseThreshold
	}
	if n := len(ds.X); n > 0 && dim > 0 && float64(c.NNZ())/(float64(n)*float64(dim)) > threshold {
		Densify(ds)
	}
	if task == MultiClassification {
		ds.NumClasses = maxClass + 1
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

// WriteLibSVM writes the dataset in LibSVM format (1-based indices,
// zero-valued stored entries skipped).
func WriteLibSVM(w io.Writer, ds *Dataset) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < ds.Len(); i++ {
		label := 0.0
		if ds.Task != Unsupervised {
			label = ds.Y[i]
		}
		if _, err := fmt.Fprintf(bw, "%g", label); err != nil {
			return err
		}
		var werr error
		ds.X[i].ForEach(func(j int, v float64) {
			if v == 0 || werr != nil {
				return
			}
			_, werr = fmt.Fprintf(bw, " %d:%g", j+1, v)
		})
		if werr != nil {
			return werr
		}
		if _, err := fmt.Fprintln(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}
