package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadCSV parses a dense labeled dataset from CSV text: one row per line,
// the label in the given column (negative counts from the end, -1 = last),
// every other column a float feature. A non-numeric first line is treated
// as a header and skipped. The task tags the label semantics; NumClasses is
// inferred for MultiClassification.
func ReadCSV(r io.Reader, labelCol int, task Task) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	ds := &Dataset{Task: task, Name: "csv"}
	lineNo := 0
	maxClass := -1
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		lc := labelCol
		if lc < 0 {
			lc = len(fields) + lc
		}
		if lc < 0 || lc >= len(fields) {
			return nil, fmt.Errorf("dataset: line %d: label column %d out of range (%d fields)", lineNo, labelCol, len(fields))
		}
		vals := make([]float64, 0, len(fields)-1)
		var label float64
		parseErr := false
		for i, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				parseErr = true
				break
			}
			if i == lc {
				label = v
			} else {
				vals = append(vals, v)
			}
		}
		if parseErr {
			if lineNo == 1 && ds.Len() == 0 {
				continue // header line
			}
			return nil, fmt.Errorf("dataset: line %d: non-numeric field", lineNo)
		}
		if ds.Dim == 0 {
			ds.Dim = len(vals)
		} else if len(vals) != ds.Dim {
			return nil, fmt.Errorf("dataset: line %d has %d features, want %d", lineNo, len(vals), ds.Dim)
		}
		ds.X = append(ds.X, DenseRow(vals))
		ds.Y = append(ds.Y, label)
		if c := int(label); task == MultiClassification && float64(c) == label && c > maxClass {
			maxClass = c
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: reading CSV: %w", err)
	}
	if task == MultiClassification {
		ds.NumClasses = maxClass + 1
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

// WriteCSV writes the dataset as CSV with the label in the last column.
// Sparse rows are densified (CSV is a dense format; use WriteLibSVM for
// sparse data).
func WriteCSV(w io.Writer, ds *Dataset) error {
	bw := bufio.NewWriter(w)
	dense := make([]float64, ds.Dim)
	for i := 0; i < ds.Len(); i++ {
		for j := range dense {
			dense[j] = 0
		}
		ds.X[i].AddTo(dense, 1)
		for _, v := range dense {
			if _, err := fmt.Fprintf(bw, "%g,", v); err != nil {
				return err
			}
		}
		label := 0.0
		if ds.Task != Unsupervised {
			label = ds.Y[i]
		}
		if _, err := fmt.Fprintf(bw, "%g\n", label); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadLibSVM parses the sparse LibSVM/SVMlight format:
//
//	<label> <index>:<value> <index>:<value> ...
//
// Indices are 1-based in the format and converted to 0-based here. dim of 0
// infers the dimension from the largest index seen.
func ReadLibSVM(r io.Reader, dim int, task Task) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	type rawRow struct {
		idx   []int32
		val   []float64
		label float64
	}
	var raws []rawRow
	maxIdx := int32(-1)
	lineNo := 0
	maxClass := -1
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		label, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: bad label %q", lineNo, fields[0])
		}
		row := rawRow{label: label}
		prev := int32(-1)
		for _, f := range fields[1:] {
			colon := strings.IndexByte(f, ':')
			if colon <= 0 {
				return nil, fmt.Errorf("dataset: line %d: bad pair %q", lineNo, f)
			}
			idx1, err := strconv.Atoi(f[:colon])
			if err != nil || idx1 < 1 {
				return nil, fmt.Errorf("dataset: line %d: bad index %q", lineNo, f[:colon])
			}
			v, err := strconv.ParseFloat(f[colon+1:], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: bad value %q", lineNo, f[colon+1:])
			}
			idx := int32(idx1 - 1)
			if idx <= prev {
				return nil, fmt.Errorf("dataset: line %d: indices not strictly increasing", lineNo)
			}
			prev = idx
			row.idx = append(row.idx, idx)
			row.val = append(row.val, v)
			if idx > maxIdx {
				maxIdx = idx
			}
		}
		raws = append(raws, row)
		if c := int(label); task == MultiClassification && float64(c) == label && c > maxClass {
			maxClass = c
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: reading LibSVM: %w", err)
	}
	if dim <= 0 {
		dim = int(maxIdx) + 1
	} else if int(maxIdx) >= dim {
		return nil, fmt.Errorf("dataset: index %d exceeds declared dim %d", maxIdx+1, dim)
	}
	ds := &Dataset{Dim: dim, Task: task, Name: "libsvm"}
	for _, raw := range raws {
		sp, err := NewSparseRow(dim, raw.idx, raw.val)
		if err != nil {
			return nil, err
		}
		ds.X = append(ds.X, sp)
		ds.Y = append(ds.Y, raw.label)
	}
	if task == MultiClassification {
		ds.NumClasses = maxClass + 1
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

// WriteLibSVM writes the dataset in LibSVM format (1-based indices,
// zero-valued stored entries skipped).
func WriteLibSVM(w io.Writer, ds *Dataset) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < ds.Len(); i++ {
		label := 0.0
		if ds.Task != Unsupervised {
			label = ds.Y[i]
		}
		if _, err := fmt.Fprintf(bw, "%g", label); err != nil {
			return err
		}
		var werr error
		ds.X[i].ForEach(func(j int, v float64) {
			if v == 0 || werr != nil {
				return
			}
			_, werr = fmt.Fprintf(bw, " %d:%g", j+1, v)
		})
		if werr != nil {
			return werr
		}
		if _, err := fmt.Fprintln(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}
