package dataset

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// DefaultMaxLineBytes is the scanner line cap applied when StreamOptions
// leaves MaxLineBytes zero: 16 MiB, enough for a dense row of ~2M features
// or a very long sparse row.
const DefaultMaxLineBytes = 1 << 24

// StreamOptions configures the streaming text parsers.
type StreamOptions struct {
	// LabelCol is the CSV label column; negative counts from the end
	// (LabelCol is ignored by the LibSVM parser, whose label is always the
	// first field). The zero value means the last column: use Column(i) for
	// an explicit zero-based column.
	LabelCol *int
	// Dim, when positive, declares the ambient dimension: the LibSVM parser
	// rejects indices beyond it, and the CSV parser rejects rows whose
	// feature count differs from it.
	Dim int
	// MaxLineBytes caps a single input line (default DefaultMaxLineBytes).
	// Lines beyond the cap fail with a line-numbered error instead of
	// bufio.Scanner's opaque "token too long".
	MaxLineBytes int
	// DenseThreshold overrides the density above which ReadLibSVMOpts
	// falls back to dense rows: 0 means DefaultDenseThreshold, a value
	// >= 1 keeps rows sparse at any density, and a negative value forces
	// dense rows. The streaming parsers themselves ignore it.
	DenseThreshold float64
}

// Column returns a LabelCol pointer for StreamOptions (negative counts from
// the end, -1 = last).
func Column(i int) *int { return &i }

func (o StreamOptions) labelCol() int {
	if o.LabelCol == nil {
		return -1
	}
	return *o.LabelCol
}

func (o StreamOptions) maxLine() int {
	if o.MaxLineBytes <= 0 {
		return DefaultMaxLineBytes
	}
	return o.MaxLineBytes
}

// RowData is one parsed row, handed to the Stream* callbacks before the
// dataset's ambient dimension or class count is fixed. Idx is nil for dense
// rows; for sparse rows Idx holds zero-based, strictly increasing indices.
// The slices are freshly allocated per row: callbacks may retain them.
type RowData struct {
	Idx   []int32
	Val   []float64
	Label float64
	// Line is the 1-based source line the row came from.
	Line int
}

// lineScanner wraps bufio.Scanner with the configured cap and rewrites the
// cap-exceeded error into an actionable, line-numbered message.
func lineScanner(r io.Reader, maxLine int) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	buf := 1 << 20
	if buf > maxLine {
		buf = maxLine
	}
	sc.Buffer(make([]byte, buf), maxLine)
	return sc
}

func scanErr(sc *bufio.Scanner, format string, lineNo, maxLine int) error {
	err := sc.Err()
	if err == nil {
		return nil
	}
	if errors.Is(err, bufio.ErrTooLong) {
		return fmt.Errorf("dataset: %s line %d exceeds the %d-byte line cap (raise MaxLineBytes)", format, lineNo+1, maxLine)
	}
	return fmt.Errorf("dataset: reading %s: %w", format, err)
}

// StreamCSV parses dense CSV rows one line at a time, calling fn for each —
// the full input is never resident. One row per line, the label in
// opt.LabelCol, every other column a float feature. A non-numeric first
// line is treated as a header and skipped. Parse errors name the line, the
// 1-based column, and the offending token. fn returning an error stops the
// scan and surfaces that error.
func StreamCSV(r io.Reader, opt StreamOptions, fn func(RowData) error) error {
	maxLine := opt.maxLine()
	sc := lineScanner(r, maxLine)
	lineNo := 0
	rows := 0
	dim := opt.Dim
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		lc := opt.labelCol()
		if lc < 0 {
			lc = len(fields) + lc
		}
		if lc < 0 || lc >= len(fields) {
			return fmt.Errorf("dataset: line %d: label column %d out of range (%d fields)", lineNo, opt.labelCol(), len(fields))
		}
		vals := make([]float64, 0, len(fields)-1)
		var label float64
		badCol := -1
		for i, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				badCol = i
				break
			}
			if i == lc {
				label = v
			} else {
				vals = append(vals, v)
			}
		}
		if badCol >= 0 {
			if lineNo == 1 && rows == 0 {
				continue // header line
			}
			return fmt.Errorf("dataset: line %d, column %d: non-numeric field %q",
				lineNo, badCol+1, strings.TrimSpace(fields[badCol]))
		}
		if dim == 0 {
			dim = len(vals)
		} else if len(vals) != dim {
			return fmt.Errorf("dataset: line %d has %d features, want %d", lineNo, len(vals), dim)
		}
		rows++
		if err := fn(RowData{Val: vals, Label: label, Line: lineNo}); err != nil {
			return err
		}
	}
	return scanErr(sc, "CSV", lineNo, maxLine)
}

// StreamLibSVM parses sparse LibSVM/SVMlight rows one line at a time,
// calling fn for each — the full input is never resident:
//
//	<label> <index>:<value> <index>:<value> ...
//
// Indices are 1-based in the format and converted to 0-based in RowData.
// Parse errors name the line, the 1-based field, and the offending token.
func StreamLibSVM(r io.Reader, opt StreamOptions, fn func(RowData) error) error {
	maxLine := opt.maxLine()
	sc := lineScanner(r, maxLine)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		label, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return fmt.Errorf("dataset: line %d, field 1: bad label %q", lineNo, fields[0])
		}
		row := RowData{Label: label, Line: lineNo}
		prev := int32(-1)
		for k, f := range fields[1:] {
			colon := strings.IndexByte(f, ':')
			if colon <= 0 {
				return fmt.Errorf("dataset: line %d, field %d: bad pair %q (want index:value)", lineNo, k+2, f)
			}
			idx1, err := strconv.Atoi(f[:colon])
			if err != nil || idx1 < 1 {
				return fmt.Errorf("dataset: line %d, field %d: bad index %q", lineNo, k+2, f[:colon])
			}
			v, err := strconv.ParseFloat(f[colon+1:], 64)
			if err != nil {
				return fmt.Errorf("dataset: line %d, field %d: bad value %q", lineNo, k+2, f[colon+1:])
			}
			idx := int32(idx1 - 1)
			if idx <= prev {
				return fmt.Errorf("dataset: line %d, field %d: index %d not strictly increasing", lineNo, k+2, idx1)
			}
			if opt.Dim > 0 && int(idx) >= opt.Dim {
				return fmt.Errorf("dataset: line %d, field %d: index %d exceeds declared dim %d", lineNo, k+2, idx1, opt.Dim)
			}
			prev = idx
			row.Idx = append(row.Idx, idx)
			row.Val = append(row.Val, v)
		}
		if err := fn(row); err != nil {
			return err
		}
	}
	return scanErr(sc, "LibSVM", lineNo, maxLine)
}
