package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadCSVBasic(t *testing.T) {
	in := "x1,x2,y\n1,2,0\n3,4,1\n"
	ds, err := ReadCSV(strings.NewReader(in), -1, BinaryClassification)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 2 || ds.Dim != 2 {
		t.Fatalf("len=%d dim=%d", ds.Len(), ds.Dim)
	}
	if ds.Y[0] != 0 || ds.Y[1] != 1 {
		t.Fatalf("labels %v", ds.Y)
	}
	if ds.X[1].Dot([]float64{1, 1}) != 7 {
		t.Fatal("features wrong")
	}
}

func TestReadCSVLabelColumnVariants(t *testing.T) {
	in := "5,1,2\n6,3,4\n"
	ds, err := ReadCSV(strings.NewReader(in), 0, Regression)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Y[0] != 5 || ds.Y[1] != 6 {
		t.Fatalf("labels %v", ds.Y)
	}
	if _, err := ReadCSV(strings.NewReader(in), 7, Regression); err == nil {
		t.Fatal("out-of-range label column accepted")
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("1,2\n3\n"), -1, Regression); err == nil {
		t.Fatal("ragged rows accepted")
	}
	if _, err := ReadCSV(strings.NewReader("1,2\nx,3\n"), -1, Regression); err == nil {
		t.Fatal("non-numeric mid-file accepted")
	}
}

func TestReadCSVMultiClassInference(t *testing.T) {
	in := "1,0\n2,2\n3,1\n"
	ds, err := ReadCSV(strings.NewReader(in), -1, MultiClassification)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumClasses != 3 {
		t.Fatalf("classes=%d want 3", ds.NumClasses)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	orig := &Dataset{Dim: 3, Task: Regression, Name: "rt"}
	orig.X = append(orig.X, DenseRow{1, 2, 3}, DenseRow{4, 0, 6})
	orig.Y = append(orig.Y, 0.5, -1.25)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, -1, Regression)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 || back.Dim != 3 {
		t.Fatalf("round trip shape %d x %d", back.Len(), back.Dim)
	}
	for i := range back.Y {
		if back.Y[i] != orig.Y[i] {
			t.Fatalf("label %d: %v != %v", i, back.Y[i], orig.Y[i])
		}
		a := make([]float64, 3)
		b := make([]float64, 3)
		back.X[i].AddTo(a, 1)
		orig.X[i].AddTo(b, 1)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("row %d feature %d: %v != %v", i, j, a[j], b[j])
			}
		}
	}
}

func TestReadLibSVMBasic(t *testing.T) {
	in := "1 1:0.5 3:2\n0 2:1\n"
	// This tiny file is 50% dense, above the auto-dense threshold, so the
	// default reader densifies; DenseThreshold 1 keeps the rows sparse.
	ds, err := ReadLibSVMOpts(strings.NewReader(in), BinaryClassification, StreamOptions{DenseThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Dim != 3 || ds.Len() != 2 {
		t.Fatalf("dim=%d len=%d", ds.Dim, ds.Len())
	}
	if ds.X[0].NNZ() != 2 || ds.X[1].NNZ() != 1 {
		t.Fatal("sparsity wrong")
	}
	if got := ds.X[0].Dot([]float64{1, 1, 1}); got != 2.5 {
		t.Fatalf("row 0 sum %v", got)
	}
	dense, err := ReadLibSVM(strings.NewReader(in), 0, BinaryClassification)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := dense.X[0].(DenseRow); !ok {
		t.Fatalf("above-threshold rows should auto-densify, got %T", dense.X[0])
	}
	if got := dense.X[0].Dot([]float64{1, 1, 1}); got != 2.5 {
		t.Fatalf("densified row 0 sum %v", got)
	}
}

func TestReadLibSVMErrors(t *testing.T) {
	cases := []string{
		"x 1:1\n",     // bad label
		"1 0:1\n",     // index < 1
		"1 2:1 1:1\n", // out of order
		"1 1:x\n",     // bad value
		"1 nocolon\n", // missing colon
	}
	for _, in := range cases {
		if _, err := ReadLibSVM(strings.NewReader(in), 0, Regression); err == nil {
			t.Errorf("malformed input accepted: %q", in)
		}
	}
	// Declared dim too small.
	if _, err := ReadLibSVM(strings.NewReader("1 5:1\n"), 3, Regression); err == nil {
		t.Error("index beyond declared dim accepted")
	}
}

func TestLibSVMRoundTrip(t *testing.T) {
	orig := &Dataset{Dim: 6, Task: MultiClassification, NumClasses: 3, Name: "rt"}
	r1, _ := NewSparseRow(6, []int32{0, 4}, []float64{1.5, -2})
	r2, _ := NewSparseRow(6, []int32{2}, []float64{7})
	orig.X = append(orig.X, r1, r2)
	orig.Y = append(orig.Y, 2, 0)
	var buf bytes.Buffer
	if err := WriteLibSVM(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLibSVM(&buf, 6, MultiClassification)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumClasses != 3 {
		t.Fatalf("classes=%d", back.NumClasses)
	}
	for i := range orig.X {
		a := make([]float64, 6)
		b := make([]float64, 6)
		back.X[i].AddTo(a, 1)
		orig.X[i].AddTo(b, 1)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("row %d feature %d: %v != %v", i, j, a[j], b[j])
			}
		}
	}
}

func TestReadLibSVMSkipsCommentsAndBlanks(t *testing.T) {
	in := "# comment\n\n1 1:1\n"
	ds, err := ReadLibSVM(strings.NewReader(in), 0, Regression)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 1 {
		t.Fatalf("len=%d", ds.Len())
	}
}

// TestReadCSVErrorNamesColumnAndToken: parse failures must point at the
// line, the 1-based column, and quote the offending token — the difference
// between a fixable upload error and an opaque one.
func TestReadCSVErrorNamesColumnAndToken(t *testing.T) {
	_, err := ReadCSV(strings.NewReader("1,2,0\n3,oops,1\n"), -1, Regression)
	if err == nil {
		t.Fatal("non-numeric field accepted")
	}
	for _, want := range []string{"line 2", "column 2", `"oops"`} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not contain %q", err, want)
		}
	}
}

// TestReadLibSVMErrorNamesFieldAndToken mirrors the CSV check for the
// sparse format.
func TestReadLibSVMErrorNamesFieldAndToken(t *testing.T) {
	cases := []struct {
		in    string
		wants []string
	}{
		{"1 1:0.5 nope\n", []string{"line 1", "field 3", `"nope"`}},
		{"1 0:1\n", []string{"line 1", "field 2", `"0"`}},
		{"1 1:1 1:2\n", []string{"line 1", "field 3", "strictly increasing"}},
		{"1 1:abc\n", []string{"line 1", "field 2", `"abc"`}},
	}
	for _, c := range cases {
		_, err := ReadLibSVM(strings.NewReader(c.in), 0, Regression)
		if err == nil {
			t.Fatalf("malformed input accepted: %q", c.in)
		}
		for _, want := range c.wants {
			if !strings.Contains(err.Error(), want) {
				t.Fatalf("input %q: error %q does not contain %q", c.in, err, want)
			}
		}
	}
}

// TestMaxLineBytesConfigurable: the scanner cap is an option, and blowing
// it produces an actionable line-numbered error rather than
// bufio.Scanner's bare "token too long".
func TestMaxLineBytesConfigurable(t *testing.T) {
	long := "1," + strings.Repeat("2,", 400) + "0\n"
	// A tiny cap rejects the line with a useful message...
	_, err := ReadCSVOpts(strings.NewReader(long), Regression, StreamOptions{MaxLineBytes: 64})
	if err == nil {
		t.Fatal("oversized line accepted under a 64-byte cap")
	}
	for _, want := range []string{"line 1", "64-byte", "MaxLineBytes"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("cap error %q does not contain %q", err, want)
		}
	}
	// ...and raising the cap admits the same input.
	ds, err := ReadCSVOpts(strings.NewReader(long), Regression, StreamOptions{MaxLineBytes: 4096})
	if err != nil {
		t.Fatalf("raised cap: %v", err)
	}
	if ds.Len() != 1 || ds.Dim != 401 {
		t.Fatalf("shape %dx%d", ds.Len(), ds.Dim)
	}
	// LibSVM path honors the cap too.
	sparse := "1 " + strings.Repeat("1:1 ", 1)
	if _, err := ReadLibSVMOpts(strings.NewReader(strings.Repeat("x", 100)+sparse), Regression, StreamOptions{MaxLineBytes: 32}); err == nil {
		t.Fatal("oversized libsvm line accepted")
	}
}

// TestStreamCSVLabelColumnOption checks the explicit label-column pointer
// (column 0 is a valid choice, distinct from the "last column" default).
func TestStreamCSVLabelColumnOption(t *testing.T) {
	var labels []float64
	err := StreamCSV(strings.NewReader("5,1,2\n6,3,4\n"), StreamOptions{LabelCol: Column(0)}, func(r RowData) error {
		labels = append(labels, r.Label)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 2 || labels[0] != 5 || labels[1] != 6 {
		t.Fatalf("labels %v", labels)
	}
}
