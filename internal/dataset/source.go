package dataset

// Meta describes a dataset's shape without implying its rows are resident
// in memory.
type Meta struct {
	Name       string
	Rows       int
	Dim        int
	Task       Task
	NumClasses int
}

// Source provides random access to a dataset's rows by index without
// promising they live in memory. An in-memory *Dataset is a Source; the
// persistent dataset store's handles are disk-backed Sources that read only
// the requested rows. core.Env is built from a Source, which is what lets
// the coordinator train an (ε, δ) contract against an N-row pool while
// materializing only the n sampled rows plus the holdout.
type Source interface {
	// Meta returns the dataset's shape.
	Meta() Meta
	// Materialize returns an in-memory dataset holding exactly the rows at
	// idx, in idx order. Implementations must tolerate concurrent calls.
	Materialize(idx []int) (*Dataset, error)
}

// Meta implements Source.
func (d *Dataset) Meta() Meta {
	return Meta{Name: d.Name, Rows: len(d.X), Dim: d.Dim, Task: d.Task, NumClasses: d.NumClasses}
}

// Materialize implements Source: for an in-memory dataset it is Subset
// (rows shared, never copied) and cannot fail.
func (d *Dataset) Materialize(idx []int) (*Dataset, error) {
	return d.Subset(idx), nil
}
