// Package dataset defines BlinkML's training-data representation: rows that
// may be dense or sparse, labeled datasets, uniform random sampling without
// replacement, and the train/holdout split the accuracy estimator needs.
//
// Sparse rows are what make the paper's high-dimensional regimes (Criteo at
// ~10⁶ one-hot features, Yelp bag-of-words) representable in memory: row
// storage is O(nnz), and every model computes gradients through the Row
// interface so the cost of a gradient step is O(nnz) too.
package dataset

import (
	"errors"
	"fmt"
	"math"

	"blinkml/internal/stat"
)

// Row is one feature vector. Implementations must be immutable after
// construction; the package exposes dense and sparse implementations.
type Row interface {
	// Dot returns the inner product with a dense vector of length >= Dim.
	Dot(dense []float64) float64
	// AddTo accumulates scale * row into dst (len(dst) >= Dim).
	AddTo(dst []float64, scale float64)
	// Dim returns the ambient dimensionality.
	Dim() int
	// NNZ returns the number of stored (possibly non-zero) entries.
	NNZ() int
	// ForEach calls fn for every stored entry.
	ForEach(fn func(idx int, val float64))
}

// DenseRow is a dense feature vector.
type DenseRow []float64

// Dot implements Row.
func (r DenseRow) Dot(dense []float64) float64 {
	var s float64
	for i, v := range r {
		s += v * dense[i]
	}
	return s
}

// AddTo implements Row.
func (r DenseRow) AddTo(dst []float64, scale float64) {
	for i, v := range r {
		dst[i] += scale * v
	}
}

// Dim implements Row.
func (r DenseRow) Dim() int { return len(r) }

// NNZ implements Row.
func (r DenseRow) NNZ() int { return len(r) }

// ForEach implements Row.
func (r DenseRow) ForEach(fn func(idx int, val float64)) {
	for i, v := range r {
		fn(i, v)
	}
}

// SparseRow is a compressed sparse feature vector with sorted indices.
type SparseRow struct {
	N   int // ambient dimension
	Idx []int32
	Val []float64
}

// NewSparseRow builds a sparse row; idx must be strictly increasing and
// within [0, dim).
func NewSparseRow(dim int, idx []int32, val []float64) (*SparseRow, error) {
	if len(idx) != len(val) {
		return nil, fmt.Errorf("dataset: index/value length mismatch %d != %d", len(idx), len(val))
	}
	prev := int32(-1)
	for _, i := range idx {
		if i <= prev || int(i) >= dim {
			return nil, fmt.Errorf("dataset: sparse index %d out of order or out of range [0,%d)", i, dim)
		}
		prev = i
	}
	return &SparseRow{N: dim, Idx: idx, Val: val}, nil
}

// Dot implements Row. The accumulation is strictly sequential in index
// order — the 4-way unroll only removes loop/bounds overhead, never
// reorders an add — so results are bit-identical to the naive loop.
func (r *SparseRow) Dot(dense []float64) float64 {
	idx := r.Idx
	val := r.Val[:len(idx)]
	var s float64
	k := 0
	for ; k+4 <= len(idx); k += 4 {
		s += val[k] * dense[idx[k]]
		s += val[k+1] * dense[idx[k+1]]
		s += val[k+2] * dense[idx[k+2]]
		s += val[k+3] * dense[idx[k+3]]
	}
	for ; k < len(idx); k++ {
		s += val[k] * dense[idx[k]]
	}
	return s
}

// AddTo implements Row. Entries touch distinct slots, so the unroll cannot
// change any accumulation order.
func (r *SparseRow) AddTo(dst []float64, scale float64) {
	idx := r.Idx
	val := r.Val[:len(idx)]
	k := 0
	for ; k+4 <= len(idx); k += 4 {
		dst[idx[k]] += scale * val[k]
		dst[idx[k+1]] += scale * val[k+1]
		dst[idx[k+2]] += scale * val[k+2]
		dst[idx[k+3]] += scale * val[k+3]
	}
	for ; k < len(idx); k++ {
		dst[idx[k]] += scale * val[k]
	}
}

// Dim implements Row.
func (r *SparseRow) Dim() int { return r.N }

// NNZ implements Row.
func (r *SparseRow) NNZ() int { return len(r.Idx) }

// ForEach implements Row.
func (r *SparseRow) ForEach(fn func(idx int, val float64)) {
	for k, i := range r.Idx {
		fn(int(i), r.Val[k])
	}
}

// Task tags the label semantics of a dataset.
type Task int

const (
	// Regression labels are real-valued targets.
	Regression Task = iota
	// BinaryClassification labels are 0 or 1.
	BinaryClassification
	// MultiClassification labels are class indices 0..K-1 stored as float64.
	MultiClassification
	// Unsupervised datasets (PPCA) carry no labels.
	Unsupervised
)

// String returns the wire name of the task ("regression", "binary",
// "multiclass", "unsupervised") — the inverse of ParseTask.
func (t Task) String() string {
	switch t {
	case Regression:
		return "regression"
	case BinaryClassification:
		return "binary"
	case MultiClassification:
		return "multiclass"
	case Unsupervised:
		return "unsupervised"
	default:
		return fmt.Sprintf("Task(%d)", int(t))
	}
}

// ParseTask maps a wire task name back to the constant.
func ParseTask(s string) (Task, error) {
	switch s {
	case "regression":
		return Regression, nil
	case "binary":
		return BinaryClassification, nil
	case "multiclass":
		return MultiClassification, nil
	case "unsupervised":
		return Unsupervised, nil
	default:
		return 0, fmt.Errorf("dataset: unknown task %q (want regression|binary|multiclass|unsupervised)", s)
	}
}

// Dataset is an in-memory labeled dataset.
type Dataset struct {
	X          []Row
	Y          []float64 // empty for Unsupervised
	Dim        int
	Task       Task
	NumClasses int // populated for MultiClassification
	Name       string
}

// Len returns the number of rows.
func (d *Dataset) Len() int { return len(d.X) }

// Validate checks internal consistency and finiteness of the labels.
func (d *Dataset) Validate() error {
	if d.Task != Unsupervised && len(d.Y) != len(d.X) {
		return fmt.Errorf("dataset %q: %d rows but %d labels", d.Name, len(d.X), len(d.Y))
	}
	for i, r := range d.X {
		if r.Dim() != d.Dim {
			return fmt.Errorf("dataset %q: row %d has dim %d, want %d", d.Name, i, r.Dim(), d.Dim)
		}
	}
	for i, y := range d.Y {
		if math.IsNaN(y) || math.IsInf(y, 0) {
			return fmt.Errorf("dataset %q: label %d is not finite", d.Name, i)
		}
		if d.Task == BinaryClassification && y != 0 && y != 1 {
			return fmt.Errorf("dataset %q: binary label %d is %v", d.Name, i, y)
		}
		if d.Task == MultiClassification {
			c := int(y)
			if float64(c) != y || c < 0 || c >= d.NumClasses {
				return fmt.Errorf("dataset %q: class label %d is %v (K=%d)", d.Name, i, y, d.NumClasses)
			}
		}
	}
	return nil
}

// Subset returns a view over the given row indices (rows are shared, not
// copied).
func (d *Dataset) Subset(idx []int) *Dataset {
	sub := &Dataset{
		X:          make([]Row, len(idx)),
		Dim:        d.Dim,
		Task:       d.Task,
		NumClasses: d.NumClasses,
		Name:       d.Name,
	}
	if d.Task != Unsupervised {
		sub.Y = make([]float64, len(idx))
	}
	for j, i := range idx {
		sub.X[j] = d.X[i]
		if d.Task != Unsupervised {
			sub.Y[j] = d.Y[i]
		}
	}
	return sub
}

// FromDense builds a Dataset from dense row-major data: the shared
// materialization path for inline payloads (serving-layer requests, cluster
// task payloads). For MultiClassification, classes 0 infers K from the
// labels. The result is validated.
func FromDense(task Task, x [][]float64, y []float64, classes int) (*Dataset, error) {
	if len(x) == 0 {
		return nil, errors.New("dataset: no rows")
	}
	dim := len(x[0])
	if dim == 0 {
		return nil, errors.New("dataset: rows are empty")
	}
	ds := &Dataset{Dim: dim, Task: task, Name: "inline"}
	ds.X = make([]Row, len(x))
	for i, row := range x {
		if len(row) != dim {
			return nil, fmt.Errorf("dataset: row %d has %d features, want %d", i, len(row), dim)
		}
		ds.X[i] = DenseRow(row)
	}
	if task != Unsupervised {
		if len(y) != len(x) {
			return nil, fmt.Errorf("dataset: %d rows but %d labels", len(x), len(y))
		}
		ds.Y = y
	}
	if task == MultiClassification {
		k := classes
		if k == 0 {
			for _, v := range y {
				if c := int(v) + 1; c > k {
					k = c
				}
			}
		}
		ds.NumClasses = k
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

// SampleWithoutReplacement returns n distinct uniform indices into a
// population of the given size, using a partial Fisher-Yates shuffle
// (O(size) memory, O(n) swaps). It panics if n > size; callers are expected
// to clamp first.
func SampleWithoutReplacement(rng *stat.RNG, size, n int) []int {
	if n > size {
		panic(fmt.Sprintf("dataset: sample size %d exceeds population %d", n, size))
	}
	idx := make([]int, size)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < n; i++ {
		j := i + rng.Intn(size-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:n:n]
}

// Split holds the three index sets BlinkML works with: the training pool
// (what "the full model" would train on), the holdout used by diff(), and a
// test set for generalization-error reporting.
type Split struct {
	Train   []int
	Holdout []int
	Test    []int
}

// NewSplit shuffles [0, n) with the given RNG and carves off holdout and
// test fractions (the remainder is the training pool). Fractions are
// clamped so every part gets at least one row when n >= 3.
func NewSplit(rng *stat.RNG, n int, holdoutFrac, testFrac float64) Split {
	perm := rng.Perm(n)
	h, t := SplitSizes(n, holdoutFrac, testFrac)
	return Split{
		Holdout: perm[:h:h],
		Test:    perm[h : h+t : h+t],
		Train:   perm[h+t:],
	}
}

// SplitSizes returns the holdout and test row counts NewSplit would carve
// from n rows, without building the permutation. It exists so a scheduler
// can know a pool's size (n − holdout − test) from dataset metadata alone —
// no rows touched, no O(n) index allocation.
func SplitSizes(n int, holdoutFrac, testFrac float64) (holdout, test int) {
	h := int(float64(n) * holdoutFrac)
	t := int(float64(n) * testFrac)
	if n >= 3 {
		if h < 1 {
			h = 1
		}
		if t < 1 && testFrac > 0 {
			t = 1
		}
	}
	if h+t > n {
		h, t = n/2, n-n/2
	}
	return h, t
}
