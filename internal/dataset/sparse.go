package dataset

import (
	"errors"
	"fmt"
)

// DefaultDenseThreshold is the density (nnz / rows·dim) above which the
// sparse representation stops paying: beyond it a dense row is both smaller
// (no index array) and faster to traverse, so ingestion and sample
// materialization fall back to dense rows. Sparse storage costs 12 bytes
// per entry vs 8 per dense slot, so the break-even on size alone is ~2/3;
// 1/4 leaves headroom for the traversal overhead of index indirection.
const DefaultDenseThreshold = 0.25

// CSR is a compressed-sparse-row block: all rows of a sample share one
// contiguous (indptr, indices, values) allocation instead of n per-row
// slices. Row i's entries live at [Indptr[i], Indptr[i+1]). The contiguity
// is what makes repeated full-sample passes (training epochs, Fisher
// accumulation) stream sequentially through memory.
type CSR struct {
	Dim    int
	Indptr []int64 // len rows+1, Indptr[0] == 0, non-decreasing
	Idx    []int32 // len NNZ(), strictly increasing within each row
	Val    []float64
}

// NRows returns the number of rows in the block.
func (c *CSR) NRows() int { return len(c.Indptr) - 1 }

// NNZ returns the total number of stored entries.
func (c *CSR) NNZ() int { return len(c.Idx) }

// Rows returns Row views over the block: one backing array of SparseRow
// headers whose Idx/Val slices alias the shared buffers (two allocations
// total for the whole sample).
func (c *CSR) Rows() []Row {
	n := c.NRows()
	hdr := make([]SparseRow, n)
	out := make([]Row, n)
	for i := 0; i < n; i++ {
		lo, hi := c.Indptr[i], c.Indptr[i+1]
		hdr[i] = SparseRow{N: c.Dim, Idx: c.Idx[lo:hi:hi], Val: c.Val[lo:hi:hi]}
		out[i] = &hdr[i]
	}
	return out
}

// Validate checks structural invariants: monotone indptr and, per row,
// strictly increasing indices within [0, Dim).
func (c *CSR) Validate() error {
	if len(c.Indptr) == 0 || c.Indptr[0] != 0 {
		return errors.New("dataset: CSR indptr must start at 0")
	}
	if len(c.Idx) != len(c.Val) {
		return fmt.Errorf("dataset: CSR index/value length mismatch %d != %d", len(c.Idx), len(c.Val))
	}
	end := int64(len(c.Idx))
	for i := 0; i < c.NRows(); i++ {
		lo, hi := c.Indptr[i], c.Indptr[i+1]
		if lo > hi || hi > end {
			return fmt.Errorf("dataset: CSR indptr out of order at row %d", i)
		}
		prev := int32(-1)
		for _, j := range c.Idx[lo:hi] {
			if j <= prev || int(j) >= c.Dim {
				return fmt.Errorf("dataset: CSR index %d out of order or out of range [0,%d) in row %d", j, c.Dim, i)
			}
			prev = j
		}
	}
	return nil
}

// NNZ returns the total stored entries across the dataset's rows (dense
// rows count every slot).
func (d *Dataset) NNZ() int64 {
	var nnz int64
	for _, r := range d.X {
		nnz += int64(r.NNZ())
	}
	return nnz
}

// Density returns NNZ / (rows·dim), in [0, 1]. An empty dataset reports 1
// (dense) so threshold comparisons never divide by zero.
func (d *Dataset) Density() float64 {
	if len(d.X) == 0 || d.Dim == 0 {
		return 1
	}
	return float64(d.NNZ()) / (float64(len(d.X)) * float64(d.Dim))
}

// SparsePath reports whether the sparse kernels should run for this row
// set: every row is sparse and the aggregate density is at or below
// DefaultDenseThreshold. Kernels call this once per dataset — the choice is
// per-dataset by measured density, never per-row — and the sparse and dense
// paths produce bit-identical results, so the switch is purely a matter of
// speed.
func SparsePath(rows []Row) bool {
	if len(rows) == 0 {
		return false
	}
	var nnz, total int64
	for _, r := range rows {
		sp, ok := r.(*SparseRow)
		if !ok {
			return false
		}
		nnz += int64(len(sp.Idx))
		total += int64(sp.N)
	}
	if total == 0 {
		return false
	}
	return float64(nnz)/float64(total) <= DefaultDenseThreshold
}

// Compact repacks a dataset whose rows are individually-allocated sparse
// rows into one contiguous CSR block (views shared via CSR.Rows). Datasets
// with any dense row are returned unchanged. The row values are untouched,
// so every downstream computation is bit-identical; only memory layout —
// and therefore cache behavior on full-sample passes — changes.
func Compact(d *Dataset) *Dataset {
	var nnz int64
	for _, r := range d.X {
		sp, ok := r.(*SparseRow)
		if !ok {
			return d
		}
		nnz += int64(len(sp.Idx))
	}
	c := &CSR{
		Dim:    d.Dim,
		Indptr: make([]int64, len(d.X)+1),
		Idx:    make([]int32, 0, nnz),
		Val:    make([]float64, 0, nnz),
	}
	for i, r := range d.X {
		sp := r.(*SparseRow)
		c.Idx = append(c.Idx, sp.Idx...)
		c.Val = append(c.Val, sp.Val...)
		c.Indptr[i+1] = int64(len(c.Idx))
	}
	d.X = c.Rows()
	return d
}

// Densify replaces every sparse row with its dense equivalent. It is the
// auto-dense fallback applied when measured density exceeds the threshold:
// the values are identical, so results are unchanged.
func Densify(d *Dataset) *Dataset {
	for i, r := range d.X {
		if _, ok := r.(DenseRow); ok {
			continue
		}
		buf := make(DenseRow, d.Dim)
		r.AddTo(buf, 1)
		d.X[i] = buf
	}
	return d
}

// FromSparse builds a Dataset from inline sparse rows — the sparse
// counterpart of FromDense for serving-layer requests and cluster task
// payloads. indices[i] must be strictly increasing 0-based feature ids with
// values[i] the matching entries; dim 0 infers the dimension from the
// largest index. The rows are packed into one contiguous CSR block, with
// the same density-threshold auto-dense fallback as LibSVM ingestion.
func FromSparse(task Task, dim int, indices [][]int32, values [][]float64, y []float64, classes int) (*Dataset, error) {
	if len(indices) == 0 {
		return nil, errors.New("dataset: no rows")
	}
	if len(values) != len(indices) {
		return nil, fmt.Errorf("dataset: %d index rows but %d value rows", len(indices), len(values))
	}
	if dim <= 0 {
		for _, idx := range indices {
			if n := len(idx); n > 0 && int(idx[n-1])+1 > dim {
				dim = int(idx[n-1]) + 1
			}
		}
		if dim <= 0 {
			return nil, errors.New("dataset: cannot infer dim from empty rows; pass dim explicitly")
		}
	}
	var nnz int64
	for i, idx := range indices {
		if len(idx) != len(values[i]) {
			return nil, fmt.Errorf("dataset: row %d has %d indices but %d values", i, len(idx), len(values[i]))
		}
		prev := int32(-1)
		for _, j := range idx {
			if j <= prev || int(j) >= dim {
				return nil, fmt.Errorf("dataset: row %d sparse index %d out of order or out of range [0,%d)", i, j, dim)
			}
			prev = j
		}
		nnz += int64(len(idx))
	}
	c := &CSR{Dim: dim, Indptr: make([]int64, len(indices)+1), Idx: make([]int32, 0, nnz), Val: make([]float64, 0, nnz)}
	for i, idx := range indices {
		c.Idx = append(c.Idx, idx...)
		c.Val = append(c.Val, values[i]...)
		c.Indptr[i+1] = int64(len(c.Idx))
	}
	ds := &Dataset{Dim: dim, Task: task, Name: "inline-sparse", X: c.Rows()}
	if density := float64(nnz) / (float64(len(indices)) * float64(dim)); density > DefaultDenseThreshold {
		Densify(ds)
	}
	if task != Unsupervised {
		if len(y) != len(indices) {
			return nil, fmt.Errorf("dataset: %d rows but %d labels", len(indices), len(y))
		}
		ds.Y = y
	}
	if task == MultiClassification {
		k := classes
		if k == 0 {
			for _, v := range y {
				if c := int(v) + 1; c > k {
					k = c
				}
			}
		}
		ds.NumClasses = k
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}
