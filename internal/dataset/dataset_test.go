package dataset

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"blinkml/internal/stat"
)

func TestDenseRowOps(t *testing.T) {
	r := DenseRow{1, 2, 3}
	if got := r.Dot([]float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot=%v", got)
	}
	dst := []float64{1, 1, 1}
	r.AddTo(dst, 2)
	want := []float64{3, 5, 7}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("AddTo got %v", dst)
		}
	}
	if r.Dim() != 3 || r.NNZ() != 3 {
		t.Error("Dim/NNZ wrong")
	}
}

func TestSparseRowOps(t *testing.T) {
	r, err := NewSparseRow(10, []int32{1, 4, 9}, []float64{2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	dense := make([]float64, 10)
	dense[1], dense[4], dense[9] = 1, 1, 1
	if got := r.Dot(dense); got != 9 {
		t.Errorf("sparse Dot=%v", got)
	}
	dst := make([]float64, 10)
	r.AddTo(dst, 0.5)
	if dst[1] != 1 || dst[4] != 1.5 || dst[9] != 2 || dst[0] != 0 {
		t.Errorf("sparse AddTo got %v", dst)
	}
	if r.Dim() != 10 || r.NNZ() != 3 {
		t.Error("sparse Dim/NNZ wrong")
	}
	sum := 0.0
	r.ForEach(func(i int, v float64) { sum += float64(i) * v })
	if sum != 1*2+4*3+9*4 {
		t.Errorf("ForEach sum=%v", sum)
	}
}

func TestNewSparseRowValidation(t *testing.T) {
	if _, err := NewSparseRow(5, []int32{1, 1}, []float64{1, 1}); err == nil {
		t.Error("duplicate index accepted")
	}
	if _, err := NewSparseRow(5, []int32{3, 2}, []float64{1, 1}); err == nil {
		t.Error("out-of-order index accepted")
	}
	if _, err := NewSparseRow(5, []int32{5}, []float64{1}); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := NewSparseRow(5, []int32{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
}

// Property: sparse Dot/AddTo agree with the densified row.
func TestSparseMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dim := 5 + r.Intn(20)
		var idx []int32
		var val []float64
		dense := make([]float64, dim)
		for i := 0; i < dim; i++ {
			if r.Float64() < 0.3 {
				v := r.NormFloat64()
				idx = append(idx, int32(i))
				val = append(val, v)
				dense[i] = v
			}
		}
		sp, err := NewSparseRow(dim, idx, val)
		if err != nil {
			return false
		}
		x := make([]float64, dim)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		if math.Abs(sp.Dot(x)-DenseRow(dense).Dot(x)) > 1e-12 {
			return false
		}
		a := make([]float64, dim)
		b := make([]float64, dim)
		sp.AddTo(a, 1.5)
		DenseRow(dense).AddTo(b, 1.5)
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDatasetValidate(t *testing.T) {
	good := &Dataset{
		X:    []Row{DenseRow{1, 2}, DenseRow{3, 4}},
		Y:    []float64{0, 1},
		Dim:  2,
		Task: BinaryClassification,
		Name: "good",
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid dataset rejected: %v", err)
	}
	bad := &Dataset{X: good.X, Y: []float64{0, 2}, Dim: 2, Task: BinaryClassification}
	if err := bad.Validate(); err == nil {
		t.Error("binary label 2 accepted")
	}
	nan := &Dataset{X: good.X, Y: []float64{0, math.NaN()}, Dim: 2, Task: Regression}
	if err := nan.Validate(); err == nil {
		t.Error("NaN label accepted")
	}
	wrongDim := &Dataset{X: []Row{DenseRow{1}}, Y: []float64{0}, Dim: 2, Task: Regression}
	if err := wrongDim.Validate(); err == nil {
		t.Error("dim mismatch accepted")
	}
	multi := &Dataset{X: good.X, Y: []float64{0, 3}, Dim: 2, Task: MultiClassification, NumClasses: 3}
	if err := multi.Validate(); err == nil {
		t.Error("class index 3 accepted with K=3")
	}
}

func TestSubset(t *testing.T) {
	d := &Dataset{
		X:    []Row{DenseRow{1}, DenseRow{2}, DenseRow{3}},
		Y:    []float64{10, 20, 30},
		Dim:  1,
		Task: Regression,
	}
	s := d.Subset([]int{2, 0})
	if s.Len() != 2 || s.Y[0] != 30 || s.Y[1] != 10 {
		t.Fatalf("Subset wrong: %+v", s)
	}
	if s.X[0].Dot([]float64{1}) != 3 {
		t.Fatal("Subset rows wrong")
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	rng := stat.NewRNG(1)
	idx := SampleWithoutReplacement(rng, 100, 30)
	if len(idx) != 30 {
		t.Fatalf("len=%d", len(idx))
	}
	seen := map[int]bool{}
	for _, i := range idx {
		if i < 0 || i >= 100 {
			t.Fatalf("index %d out of range", i)
		}
		if seen[i] {
			t.Fatalf("duplicate index %d", i)
		}
		seen[i] = true
	}
}

func TestSampleWithoutReplacementUniformity(t *testing.T) {
	rng := stat.NewRNG(2)
	counts := make([]int, 10)
	trials := 20000
	for t := 0; t < trials; t++ {
		for _, i := range SampleWithoutReplacement(rng, 10, 3) {
			counts[i]++
		}
	}
	expect := float64(trials) * 3 / 10
	for i, c := range counts {
		if math.Abs(float64(c)-expect) > 0.08*expect {
			t.Errorf("index %d drawn %d times, expected ~%v", i, c, expect)
		}
	}
}

func TestSampleWithoutReplacementPanicsWhenOversized(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic when n > size")
		}
	}()
	SampleWithoutReplacement(stat.NewRNG(1), 5, 6)
}

func TestNewSplit(t *testing.T) {
	rng := stat.NewRNG(3)
	s := NewSplit(rng, 100, 0.1, 0.2)
	if len(s.Holdout) != 10 || len(s.Test) != 20 || len(s.Train) != 70 {
		t.Fatalf("split sizes %d/%d/%d", len(s.Holdout), len(s.Test), len(s.Train))
	}
	seen := map[int]bool{}
	for _, part := range [][]int{s.Holdout, s.Test, s.Train} {
		for _, i := range part {
			if seen[i] {
				t.Fatalf("index %d in two parts", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != 100 {
		t.Fatalf("split covers %d of 100", len(seen))
	}
}

func TestNewSplitTinyDataset(t *testing.T) {
	s := NewSplit(stat.NewRNG(4), 3, 0.01, 0.01)
	if len(s.Holdout) < 1 || len(s.Test) < 1 {
		t.Fatalf("tiny split starves a part: %+v", s)
	}
}
