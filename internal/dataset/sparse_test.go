package dataset

import (
	"math"
	"testing"
)

func mustSparse(t *testing.T, dim int, idx []int32, val []float64) *SparseRow {
	t.Helper()
	r, err := NewSparseRow(dim, idx, val)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestCSRRowsAndValidate(t *testing.T) {
	c := &CSR{
		Dim:    6,
		Indptr: []int64{0, 2, 2, 5},
		Idx:    []int32{1, 4, 0, 3, 5},
		Val:    []float64{2, -1, 7, 0.5, 3},
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NRows() != 3 || c.NNZ() != 5 {
		t.Fatalf("shape %d rows / %d nnz", c.NRows(), c.NNZ())
	}
	rows := c.Rows()
	if got := rows[0].Dot([]float64{0, 1, 0, 0, 1, 0}); got != 1 {
		t.Fatalf("row 0 dot %v", got)
	}
	if rows[1].NNZ() != 0 {
		t.Fatalf("empty middle row has nnz %d", rows[1].NNZ())
	}
	if got := rows[2].Dot([]float64{1, 1, 1, 1, 1, 1}); got != 10.5 {
		t.Fatalf("row 2 dot %v", got)
	}
	// Views must be capacity-capped: appends may not clobber the neighbor.
	sp := rows[0].(*SparseRow)
	if cap(sp.Idx) != len(sp.Idx) || cap(sp.Val) != len(sp.Val) {
		t.Fatal("row views are not capacity-capped")
	}

	bad := &CSR{Dim: 3, Indptr: []int64{0, 2}, Idx: []int32{2, 1}, Val: []float64{1, 1}}
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-order indices accepted")
	}
	bad = &CSR{Dim: 3, Indptr: []int64{0, 1}, Idx: []int32{3}, Val: []float64{1}}
	if err := bad.Validate(); err == nil {
		t.Fatal("index beyond dim accepted")
	}
}

// TestCompactPreservesValues: repacking per-row sparse allocations into one
// CSR block must not change a single bit of any row, and must leave dense
// datasets untouched.
func TestCompactPreservesValues(t *testing.T) {
	d := &Dataset{Dim: 8, Task: Regression, Y: []float64{1, 2, 3}}
	d.X = []Row{
		mustSparse(t, 8, []int32{0, 7}, []float64{0.1, -0.2}),
		mustSparse(t, 8, []int32{3}, []float64{1.0 / 3}),
		mustSparse(t, 8, []int32{1, 2, 6}, []float64{5, 6, 7}),
	}
	before := make([][]float64, len(d.X))
	for i, r := range d.X {
		buf := make([]float64, d.Dim)
		r.AddTo(buf, 1)
		before[i] = buf
	}
	Compact(d)
	if d.NNZ() != 6 {
		t.Fatalf("nnz %d after compact", d.NNZ())
	}
	for i, r := range d.X {
		buf := make([]float64, d.Dim)
		r.AddTo(buf, 1)
		for j := range buf {
			if math.Float64bits(buf[j]) != math.Float64bits(before[i][j]) {
				t.Fatalf("row %d feature %d changed", i, j)
			}
		}
	}

	mixed := &Dataset{Dim: 2, Task: Regression, Y: []float64{1}}
	mixed.X = []Row{DenseRow{1, 2}}
	if got := Compact(mixed); got.X[0].NNZ() != 2 {
		t.Fatal("dense dataset should pass through Compact unchanged")
	}
}

func TestSparsePathThreshold(t *testing.T) {
	// 2 of 4 slots stored → density 0.5 > threshold.
	dense := []Row{mustSparse(t, 4, []int32{0, 2}, []float64{1, 2})}
	if SparsePath(dense) {
		t.Fatal("half-dense rows took the sparse path")
	}
	// 1 of 40 slots stored → 2.5%.
	sparse := []Row{mustSparse(t, 40, []int32{3}, []float64{1})}
	if !SparsePath(sparse) {
		t.Fatal("low-density rows refused the sparse path")
	}
	// Any dense row disqualifies the set.
	if SparsePath([]Row{sparse[0], DenseRow(make([]float64, 40))}) {
		t.Fatal("mixed representations took the sparse path")
	}
	if SparsePath(nil) {
		t.Fatal("empty set took the sparse path")
	}
}

func TestFromSparse(t *testing.T) {
	indices := [][]int32{{0, 5}, {2}, {1, 9}}
	values := [][]float64{{1, 2}, {3}, {4, 5}}
	y := []float64{0, 1, 1}
	ds, err := FromSparse(BinaryClassification, 0, indices, values, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Dim != 10 {
		t.Fatalf("inferred dim %d, want 10", ds.Dim)
	}
	if !SparsePath(ds.X) {
		t.Fatalf("16%%-dense upload should stay sparse (density %v)", ds.Density())
	}
	if got := ds.X[2].Dot(make([]float64, 10)); got != 0 {
		t.Fatalf("dot with zeros %v", got)
	}

	// Above-threshold uploads densify.
	dd, err := FromSparse(BinaryClassification, 2, [][]int32{{0, 1}}, [][]float64{{1, 2}}, []float64{1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := dd.X[0].(DenseRow); !ok {
		t.Fatalf("100%%-dense upload stayed %T", dd.X[0])
	}

	// Malformed inputs fail loudly.
	if _, err := FromSparse(Regression, 0, [][]int32{{1, 1}}, [][]float64{{1, 2}}, []float64{0}, 0); err == nil {
		t.Fatal("repeated index accepted")
	}
	if _, err := FromSparse(Regression, 3, [][]int32{{4}}, [][]float64{{1}}, []float64{0}, 0); err == nil {
		t.Fatal("index beyond dim accepted")
	}
	if _, err := FromSparse(Regression, 0, [][]int32{{0}}, [][]float64{{1, 2}}, []float64{0}, 0); err == nil {
		t.Fatal("index/value length mismatch accepted")
	}
	if _, err := FromSparse(Regression, 0, [][]int32{{0}}, [][]float64{{1}}, []float64{0, 1}, 0); err == nil {
		t.Fatal("label count mismatch accepted")
	}
}

// TestDensifyMatchesSparse: densification preserves every value bit.
func TestDensifyMatchesSparse(t *testing.T) {
	d := &Dataset{Dim: 5, Task: Regression, Y: []float64{1}}
	d.X = []Row{mustSparse(t, 5, []int32{1, 3}, []float64{0.1, -0.7})}
	want := make([]float64, 5)
	d.X[0].AddTo(want, 1)
	Densify(d)
	got, ok := d.X[0].(DenseRow)
	if !ok {
		t.Fatalf("row stayed %T", d.X[0])
	}
	for j := range want {
		if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
			t.Fatalf("feature %d changed", j)
		}
	}
}
