// Package stat provides the random-sampling and order-statistics utilities
// BlinkML's estimators are built on: a seeded RNG, standard-normal draws,
// empirical quantiles, and the Hoeffding-adjusted conservative quantile of
// Lemma 2 in the paper.
package stat

import (
	"math"
	"math/rand"
	"sort"
)

// RNG is a deterministic random source. It wraps math/rand with an explicit
// seed so that every experiment in the repository is reproducible.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a seeded RNG.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform draw in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform draw in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Norm returns a standard-normal draw.
func (g *RNG) Norm() float64 { return g.r.NormFloat64() }

// NormVec fills dst with independent standard-normal draws.
func (g *RNG) NormVec(dst []float64) {
	for i := range dst {
		dst[i] = g.r.NormFloat64()
	}
}

// Exp returns an Exp(1) draw.
func (g *RNG) Exp() float64 { return g.r.ExpFloat64() }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle permutes the first n positions using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Split derives an independent RNG from the current stream, so concurrent
// consumers do not contend on a shared source.
func (g *RNG) Split() *RNG { return NewRNG(g.r.Int63()) }

// Zipf returns a draw from a Zipf distribution over {0, ..., n-1} with
// exponent s > 1 approximated by inverse-CDF sampling on the harmonic
// weights. It is used by the Criteo- and Yelp-like generators to reproduce
// long-tailed feature popularity.
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf precomputes the CDF for n items with exponent s (s=1 gives the
// classic 1/rank law).
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	cdf := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &Zipf{cdf: cdf, rng: rng}
}

// Draw returns the next Zipf-distributed index.
func (z *Zipf) Draw() int {
	u := z.rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// Quantile returns the empirical q-quantile (0 <= q <= 1) of xs using the
// nearest-rank definition on a sorted copy. An empty input returns NaN.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	// Nearest rank: the ⌈q·k⌉-th smallest value.
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// Mean returns the arithmetic mean (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (NaN for fewer than two
// observations).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var s float64
	for _, v := range xs {
		d := v - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// ConservativeLevel returns the Lemma-2 adjusted empirical level
//
//	τ = min(1, (1-δ)/0.95 + sqrt(ln(1/0.95) / (2k)))
//
// at which the sampled model differences must be cut to guarantee
// Pr[v(m_n) ≤ ε] ≥ 1-δ. The Hoeffding term accounts for using k Monte-Carlo
// parameter samples instead of the exact integral; the 1/0.95 inflation
// buys the 0.95 probability that the Hoeffding event holds. For δ ≤ 0.05
// the level clamps to 1 (use the sample maximum), which is the paper's own
// operating point.
func ConservativeLevel(delta float64, k int) float64 {
	if k <= 0 {
		return 1
	}
	tau := (1-delta)/0.95 + math.Sqrt(math.Log(1/0.95)/(2*float64(k)))
	if tau > 1 {
		return 1
	}
	if tau < 0 {
		return 0
	}
	return tau
}

// ConservativeQuantile returns the Lemma-2 conservative upper bound for the
// sampled model differences vs: the ⌈τk⌉-th smallest value with
// τ = ConservativeLevel(delta, len(vs)). Empty input returns NaN.
func ConservativeQuantile(vs []float64, delta float64) float64 {
	if len(vs) == 0 {
		return math.NaN()
	}
	return Quantile(vs, ConservativeLevel(delta, len(vs)))
}

// FractionAtMost returns the fraction of vs that are ≤ bound.
func FractionAtMost(vs []float64, bound float64) float64 {
	if len(vs) == 0 {
		return math.NaN()
	}
	count := 0
	for _, v := range vs {
		if v <= bound {
			count++
		}
	}
	return float64(count) / float64(len(vs))
}

// MeetsLevel reports whether the empirical fraction of vs at or below bound
// reaches the Lemma-2 conservative level for the given delta. The Sample
// Size Estimator uses this as its binary-search predicate (Equation 8 with
// the Lemma-2 adjustment).
func MeetsLevel(vs []float64, bound, delta float64) bool {
	return FractionAtMost(vs, bound) >= ConservativeLevel(delta, len(vs))
}
