package stat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must produce same stream")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestNormMoments(t *testing.T) {
	g := NewRNG(7)
	n := 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := g.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance %v too far from 1", variance)
	}
}

func TestNormVec(t *testing.T) {
	g := NewRNG(1)
	v := make([]float64, 8)
	g.NormVec(v)
	allZero := true
	for _, x := range v {
		if x != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Fatal("NormVec left dst zeroed")
	}
}

func TestSplitIndependence(t *testing.T) {
	g := NewRNG(9)
	s := g.Split()
	// The split stream must not be the same as the parent's continued stream.
	same := true
	for i := 0; i < 10; i++ {
		if g.Float64() != s.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("split stream mirrors parent")
	}
}

func TestZipfSkew(t *testing.T) {
	g := NewRNG(3)
	z := NewZipf(g, 1000, 1.2)
	counts := make([]int, 1000)
	for i := 0; i < 50000; i++ {
		counts[z.Draw()]++
	}
	if counts[0] <= counts[99] {
		t.Errorf("Zipf head (%d) not more popular than rank 100 (%d)", counts[0], counts[99])
	}
	if counts[0] < 2000 {
		t.Errorf("Zipf head too light: %d", counts[0])
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {0.2, 1}, {0.4, 2}, {0.6, 3}, {0.8, 4}, {1.0, 5}, {0.5, 3},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); got != c.want {
			t.Errorf("Quantile(%v)=%v want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean=%v", got)
	}
	if got := Variance(xs); math.Abs(got-32.0/7.0) > 1e-12 {
		t.Errorf("Variance=%v want %v", got, 32.0/7.0)
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("variance of single value should be NaN")
	}
}

func TestConservativeLevelClampsAtPaperOperatingPoint(t *testing.T) {
	// δ = 0.05 → (1-δ)/0.95 = 1 exactly; the Hoeffding term pushes τ past 1,
	// so the level clamps to 1 (take the sample maximum).
	if got := ConservativeLevel(0.05, 100); got != 1 {
		t.Errorf("level(δ=0.05)=%v want 1", got)
	}
	// Larger δ leaves room below 1.
	got := ConservativeLevel(0.30, 1000)
	if got >= 1 || got <= (1-0.30)/0.95 {
		t.Errorf("level(δ=0.30)=%v out of expected range", got)
	}
}

// Property: the conservative level is non-increasing in δ and
// non-increasing in k (more samples → smaller Hoeffding correction).
func TestConservativeLevelMonotonicity(t *testing.T) {
	f := func(rawDelta float64, rawK int) bool {
		delta := math.Mod(math.Abs(rawDelta), 0.5) // δ in [0, 0.5)
		k := 10 + (abs(rawK) % 10000)
		l1 := ConservativeLevel(delta, k)
		l2 := ConservativeLevel(delta+0.05, k)
		if l2 > l1 {
			return false
		}
		l3 := ConservativeLevel(delta, k*2)
		return l3 <= l1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestConservativeQuantileIsUpperBoundForMostSamples(t *testing.T) {
	g := NewRNG(21)
	vs := make([]float64, 500)
	for i := range vs {
		vs[i] = g.Float64()
	}
	eps := ConservativeQuantile(vs, 0.2)
	frac := FractionAtMost(vs, eps)
	if frac < ConservativeLevel(0.2, len(vs)) {
		t.Errorf("quantile %v covers only %v of samples", eps, frac)
	}
}

func TestMeetsLevel(t *testing.T) {
	vs := []float64{0.01, 0.02, 0.03, 0.9}
	if !MeetsLevel(vs, 0.95, 0.05) {
		t.Error("bound above max must meet any level")
	}
	if MeetsLevel(vs, 0.05, 0.05) {
		t.Error("δ=0.05 requires all samples below the bound")
	}
	if !MeetsLevel(vs, 0.05, 0.40) {
		t.Error("δ=0.40 should accept 3/4 coverage")
	}
}

func TestFractionAtMost(t *testing.T) {
	if got := FractionAtMost([]float64{1, 2, 3, 4}, 2.5); got != 0.5 {
		t.Errorf("FractionAtMost=%v", got)
	}
	if !math.IsNaN(FractionAtMost(nil, 1)) {
		t.Error("empty input should be NaN")
	}
}
