package audit

import (
	"bufio"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// event is one JSONL line of the audit log: exactly one of the fields is
// set. Records and replays interleave in append order, so the file is a
// faithful timeline of decisions and their later validations.
type event struct {
	Record *Record `json:"record,omitempty"`
	Replay *Replay `json:"replay,omitempty"`
}

// Entry joins a calibration record with its replay, if one has run.
type Entry struct {
	Record Record  `json:"record"`
	Replay *Replay `json:"replay,omitempty"`
}

// minReplaysForAlert is how many coverage samples a family needs before a
// below-target coverage fires the alert hook — with fewer, a single
// violation swings the estimate too hard to act on.
const minReplaysForAlert = 5

// Log is the durable audit log: an append-only JSONL file under the data
// directory plus an in-memory index by model ID. Appends are crash-safe in
// the registry's sense — each event is written as one buffered line ending
// in '\n', and Open tolerates a torn final line, so a crash mid-append
// loses at most the event being written.
type Log struct {
	path   string
	logger *slog.Logger
	m      *Metrics

	mu      sync.Mutex
	f       *os.File
	entries map[string]*Entry
	order   []string
}

// Open loads (or creates) the audit log in dir. Blank, torn, or
// unparseable lines are skipped, as are replays for unknown models — the
// log must load after any crash. Metric gauges are resynced to the loaded
// state.
func Open(dir string, logger *slog.Logger) (*Log, error) {
	if logger == nil {
		logger = slog.Default()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("audit: create dir: %w", err)
	}
	l := &Log{
		path:    filepath.Join(dir, "audit.jsonl"),
		logger:  logger,
		m:       sharedMetrics(),
		entries: make(map[string]*Entry),
	}
	if err := l.load(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(l.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("audit: open log: %w", err)
	}
	l.f = f
	l.resyncLocked()
	return l, nil
}

func (l *Log) load() error {
	f, err := os.Open(l.path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("audit: read log: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev event
		if err := json.Unmarshal(line, &ev); err != nil {
			continue // torn or corrupt line: skip, keep loading
		}
		switch {
		case ev.Record != nil:
			l.indexRecord(*ev.Record)
		case ev.Replay != nil:
			if e, ok := l.entries[ev.Replay.ModelID]; ok {
				rep := *ev.Replay
				e.Replay = &rep
			}
		}
	}
	return sc.Err()
}

func (l *Log) indexRecord(rec Record) {
	if e, ok := l.entries[rec.ModelID]; ok {
		e.Record = rec // re-registration wins; keep any replay
		return
	}
	l.entries[rec.ModelID] = &Entry{Record: rec}
	l.order = append(l.order, rec.ModelID)
}

// resyncLocked sets the gauge-style metrics from the loaded state so a
// reopened log in the same process reports truth, not double counts.
// Latency/ratio histograms only accumulate new replays.
func (l *Log) resyncLocked() {
	var records, replays, pending, failures int64
	for _, e := range l.entries {
		records++
		switch {
		case e.Replay == nil:
			pending++
		case e.Replay.Error != "":
			replays++
			failures++
		default:
			replays++
		}
	}
	l.m.Records.Set(records)
	l.m.Replays.Set(replays)
	l.m.ReplaysPending.Set(pending)
	l.m.ReplayFailures.Set(failures)
	for fam, fr := range l.familiesLocked() {
		if fr.Replayed > 0 {
			l.m.Coverage.Set(fam, fr.Coverage)
		}
	}
}

// appendEvent writes one event as a single '\n'-terminated line in one
// Write call, so concurrent appenders never interleave bytes and a crash
// tears at most the line in flight.
func (l *Log) appendEvent(ev event) error {
	buf, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if _, err := l.f.Write(buf); err != nil {
		return fmt.Errorf("audit: append: %w", err)
	}
	return nil
}

// Append durably records a job's calibration decision.
func (l *Log) Append(rec Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.appendEvent(event{Record: &rec}); err != nil {
		return err
	}
	l.indexRecord(rec)
	l.m.Records.Add(1)
	l.m.ReplaysPending.Add(1)
	return nil
}

// AppendReplay durably records a replay outcome and folds it into the
// coverage metrics. Replays for unknown models are rejected.
func (l *Log) AppendReplay(rep Replay) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.entries[rep.ModelID]
	if !ok {
		return fmt.Errorf("audit: no record for model %s", rep.ModelID)
	}
	if err := l.appendEvent(event{Replay: &rep}); err != nil {
		return err
	}
	first := e.Replay == nil
	r := rep
	e.Replay = &r
	l.m.Replays.Add(1)
	if first {
		l.m.ReplaysPending.Add(-1)
	}
	if rep.ElapsedMs > 0 {
		l.m.ReplayLatency.Observe(rep.ElapsedMs)
	}
	if rep.Error != "" {
		l.m.ReplayFailures.Add(1)
		return nil
	}
	fam := e.Record.Family
	if rep.Realized > 0 {
		l.m.CalibrationRatio.With(fam).Observe(rep.EpsilonHat / rep.Realized)
	}
	fr := l.familiesLocked()[fam]
	l.m.Coverage.Set(fam, fr.Coverage)
	if !rep.Satisfied && fr.Replayed >= minReplaysForAlert && fr.Coverage < fr.Target {
		l.m.CoverageAlerts.Add(1)
		l.logger.Warn("audit coverage below guarantee target",
			"family", fam,
			"coverage", fr.Coverage,
			"target", fr.Target,
			"replayed", fr.Replayed,
			"model_id", rep.ModelID,
			"realized", rep.Realized,
			"epsilon_hat", rep.EpsilonHat,
		)
	}
	return nil
}

// Get returns the entry for a model ID.
func (l *Log) Get(modelID string) (Entry, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.entries[modelID]
	if !ok {
		return Entry{}, false
	}
	out := *e
	if e.Replay != nil {
		rep := *e.Replay
		out.Replay = &rep
	}
	return out, true
}

// Entries returns all entries in append order.
func (l *Log) Entries() []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Entry, 0, len(l.order))
	for _, id := range l.order {
		e := l.entries[id]
		cp := *e
		if e.Replay != nil {
			rep := *e.Replay
			cp.Replay = &rep
		}
		out = append(out, cp)
	}
	return out
}

// Pending returns records not yet replayed, in append order. Records whose
// replay errored are not pending — they were attempted and count as
// failures; a retry is an explicit operator action.
func (l *Log) Pending() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Record
	for _, id := range l.order {
		if e := l.entries[id]; e.Replay == nil {
			out = append(out, e.Record)
		}
	}
	return out
}

// FamilyReport aggregates coverage per model family.
type FamilyReport struct {
	Family  string `json:"family"`
	Records int    `json:"records"`
	// Replayed counts successful replays — the coverage sample size.
	Replayed   int `json:"replayed"`
	Violations int `json:"violations"`
	Failures   int `json:"failures,omitempty"`
	// Coverage is the empirical Pr[v ≤ ε̂]; the contract demands
	// Coverage ≥ Target.
	Coverage float64 `json:"coverage"`
	// Target is 1−δ̄, with δ̄ the mean requested δ across the family's
	// records.
	Target float64 `json:"target"`
	// MeanBound and MeanRealized average ε̂ and v over successful replays;
	// MeanCalibration is the mean ε̂/v ratio (how conservative the
	// estimator runs — well above 1 means loose bounds).
	MeanBound       float64 `json:"mean_bound,omitempty"`
	MeanRealized    float64 `json:"mean_realized,omitempty"`
	MeanCalibration float64 `json:"mean_calibration,omitempty"`
}

// Report is the rollup behind GET /v1/audit.
type Report struct {
	Records  int            `json:"records"`
	Replayed int            `json:"replayed"`
	Pending  int            `json:"pending"`
	Failures int            `json:"failures"`
	Families []FamilyReport `json:"families"`
}

func (l *Log) familiesLocked() map[string]FamilyReport {
	fams := make(map[string]FamilyReport)
	sumDelta := make(map[string]float64)
	for _, e := range l.entries {
		fr := fams[e.Record.Family]
		fr.Family = e.Record.Family
		fr.Records++
		sumDelta[fr.Family] += e.Record.Delta
		if e.Replay != nil {
			if e.Replay.Error != "" {
				fr.Failures++
			} else {
				fr.Replayed++
				if !e.Replay.Satisfied {
					fr.Violations++
				}
				fr.MeanBound += e.Replay.EpsilonHat
				fr.MeanRealized += e.Replay.Realized
				if e.Replay.Realized > 0 {
					fr.MeanCalibration += e.Replay.EpsilonHat / e.Replay.Realized
				}
			}
		}
		fams[fr.Family] = fr
	}
	for fam, fr := range fams {
		fr.Target = 1 - sumDelta[fam]/float64(fr.Records)
		if fr.Replayed > 0 {
			fr.Coverage = float64(fr.Replayed-fr.Violations) / float64(fr.Replayed)
			fr.MeanBound /= float64(fr.Replayed)
			fr.MeanRealized /= float64(fr.Replayed)
			fr.MeanCalibration /= float64(fr.Replayed)
		}
		fams[fam] = fr
	}
	return fams
}

// Summary builds the per-family rollup.
func (l *Log) Summary() Report {
	l.mu.Lock()
	defer l.mu.Unlock()
	var rep Report
	fams := l.familiesLocked()
	names := make([]string, 0, len(fams))
	for fam := range fams {
		names = append(names, fam)
	}
	sort.Strings(names)
	for _, fam := range names {
		fr := fams[fam]
		rep.Records += fr.Records
		rep.Replayed += fr.Replayed
		rep.Failures += fr.Failures
		rep.Families = append(rep.Families, fr)
	}
	rep.Pending = rep.Records - rep.Replayed - rep.Failures
	return rep
}

// Close closes the underlying file. Appends are unbuffered at the
// application layer (each event is one Write), so there is nothing to
// flush.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}
