package audit

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"log/slog"
	"sync"
	"time"

	"blinkml/internal/core"
	"blinkml/internal/dataset"
	"blinkml/internal/modelio"
	"blinkml/internal/optimize"
)

// ReplayOutcome is what a Replayer measures for one record: the realized
// model difference against a freshly trained full-data model, and the
// determinism witness of that full model.
type ReplayOutcome struct {
	Realized     float64
	Satisfied    bool
	FullIters    int
	FullThetaFNV uint64
}

// SourceResolver turns a record's opaque dataset reference back into the
// bytes it was trained on. The serving layer supplies this, keeping audit
// free of its wire types.
type SourceResolver func(ctx context.Context, ref json.RawMessage) (dataset.Source, error)

// ModelLookup fetches a stored model by ID (the registry, in serving).
type ModelLookup func(id string) (*modelio.Model, error)

// Replayer validates one record. LocalReplayer trains in-process; the
// serving layer's cluster executor provides a fan-out implementation.
type Replayer interface {
	Replay(ctx context.Context, rec Record, m *modelio.Model) (ReplayOutcome, error)
}

// LocalReplayer rebuilds the recorded environment in-process and trains
// the full-data model through core.ValidateGuarantee. Because the recorded
// options pin the split seed and optimizer budget, the full model is
// bit-identical to what direct training at those options produces.
type LocalReplayer struct {
	Resolve SourceResolver
}

// Replay implements Replayer.
func (r LocalReplayer) Replay(ctx context.Context, rec Record, m *modelio.Model) (ReplayOutcome, error) {
	if r.Resolve == nil {
		return ReplayOutcome{}, errors.New("audit: LocalReplayer needs a source resolver")
	}
	src, err := r.Resolve(ctx, rec.Dataset)
	if err != nil {
		return ReplayOutcome{}, fmt.Errorf("resolve dataset: %w", err)
	}
	env, err := core.NewEnvFromSource(src, rec.Options.Core())
	if err != nil {
		return ReplayOutcome{}, err
	}
	optim := core.WithCancel(ctx, optimize.Options{MaxIters: rec.Options.MaxIters})
	rep, err := core.ValidateGuarantee(env, m.Spec, &core.Result{Theta: m.Theta, EstimatedEpsilon: rec.EpsilonHat}, optim)
	if err != nil {
		return ReplayOutcome{}, err
	}
	return ReplayOutcome{
		Realized:     rep.Realized,
		Satisfied:    rep.Satisfied,
		FullIters:    rep.FullIters,
		FullThetaFNV: core.ThetaFingerprint(rep.FullTheta),
	}, nil
}

// Config tunes the background auditor.
type Config struct {
	// Fraction of pending records each background pass replays, sampled
	// deterministically by model ID (default 1: audit everything).
	Fraction float64
	// Interval between background passes; 0 disables the background loop
	// (replays then run only on explicit request).
	Interval time.Duration
	// Concurrency bounds simultaneous replays (default 1). Each replay is
	// a full-data training, so this rides the compute pool — keep it small
	// or audits starve live jobs.
	Concurrency int
	// Seed perturbs the sampling hash so different deployments audit
	// different subsets.
	Seed   int64
	Logger *slog.Logger
}

// Auditor drains the log's pending records through a Replayer: a
// rate-limited, cancellable background loop plus a synchronous path for
// the replay endpoint and CLI.
type Auditor struct {
	log    *Log
	lookup ModelLookup
	rep    Replayer
	cfg    Config

	sem    chan struct{}
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// NewAuditor wires an auditor over the log. Call Start for the background
// loop; ReplayPending works either way.
func NewAuditor(log *Log, lookup ModelLookup, rep Replayer, cfg Config) *Auditor {
	if cfg.Fraction <= 0 || cfg.Fraction > 1 {
		cfg.Fraction = 1
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 1
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Auditor{
		log:    log,
		lookup: lookup,
		rep:    rep,
		cfg:    cfg,
		sem:    make(chan struct{}, cfg.Concurrency),
		ctx:    ctx,
		cancel: cancel,
	}
}

// Start launches the background loop if an interval is configured.
func (a *Auditor) Start() {
	if a.cfg.Interval <= 0 {
		return
	}
	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		tick := time.NewTicker(a.cfg.Interval)
		defer tick.Stop()
		for {
			select {
			case <-a.ctx.Done():
				return
			case <-tick.C:
				n, err := a.pass(a.ctx)
				if err != nil && !errors.Is(err, context.Canceled) {
					a.cfg.Logger.Warn("audit pass failed", "err", err)
				} else if n > 0 {
					a.cfg.Logger.Info("audit pass complete", "replayed", n)
				}
			}
		}
	}()
}

// Close stops the background loop and waits for in-flight replays.
func (a *Auditor) Close() {
	a.cancel()
	a.wg.Wait()
}

// sampled reports whether the fraction-sampling admits this record on a
// background pass. The hash is deterministic in (seed, model ID), so a
// record's fate doesn't flap between passes — skipped stays skipped until
// an explicit replay asks for everything.
func (a *Auditor) sampled(modelID string) bool {
	if a.cfg.Fraction >= 1 {
		return true
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s", a.cfg.Seed, modelID)
	return float64(h.Sum64()%1000)/1000 < a.cfg.Fraction
}

// pass is one background sweep: the sampled subset of pending records.
func (a *Auditor) pass(ctx context.Context) (int, error) {
	pending := a.log.Pending()
	picked := pending[:0:0]
	for _, rec := range pending {
		if a.sampled(rec.ModelID) {
			picked = append(picked, rec)
		}
	}
	return a.replayAll(ctx, picked)
}

// ReplayPending synchronously replays every pending record (no fraction
// sampling — an explicit request wants the full picture), at most max when
// max > 0. Returns how many replays were appended.
func (a *Auditor) ReplayPending(ctx context.Context, max int) (int, error) {
	pending := a.log.Pending()
	if max > 0 && len(pending) > max {
		pending = pending[:max]
	}
	return a.replayAll(ctx, pending)
}

// ReplayOne replays a single record by model ID, even if already replayed
// (the retry path for errored replays).
func (a *Auditor) ReplayOne(ctx context.Context, modelID string) error {
	e, ok := a.log.Get(modelID)
	if !ok {
		return fmt.Errorf("audit: no record for model %s", modelID)
	}
	return a.replay(ctx, e.Record)
}

func (a *Auditor) replayAll(ctx context.Context, recs []Record) (int, error) {
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		done  int
		first error
	)
	for _, rec := range recs {
		select {
		case <-ctx.Done():
			wg.Wait()
			return done, ctx.Err()
		case a.sem <- struct{}{}:
		}
		wg.Add(1)
		go func(rec Record) {
			defer wg.Done()
			defer func() { <-a.sem }()
			err := a.replay(ctx, rec)
			mu.Lock()
			defer mu.Unlock()
			if err == nil {
				done++
			} else if first == nil {
				first = err
			}
		}(rec)
	}
	wg.Wait()
	return done, first
}

// replay validates one record and appends the outcome. A replay killed by
// context cancellation is not appended — the record stays pending for the
// next pass; any other failure is appended with Error set so it is not
// retried implicitly.
func (a *Auditor) replay(ctx context.Context, rec Record) error {
	start := time.Now()
	out, err := a.replayOutcome(ctx, rec)
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		return err
	}
	rep := Replay{
		ModelID:    rec.ModelID,
		EpsilonHat: rec.EpsilonHat,
		ElapsedMs:  float64(time.Since(start)) / float64(time.Millisecond),
		ReplayedAt: time.Now().UTC(),
	}
	if err != nil {
		rep.Error = err.Error()
	} else {
		rep.Realized = out.Realized
		rep.Satisfied = out.Satisfied
		rep.FullIters = out.FullIters
		rep.FullThetaFNV = fmt.Sprintf("%016x", out.FullThetaFNV)
	}
	if aerr := a.log.AppendReplay(rep); aerr != nil {
		return aerr
	}
	return err
}

func (a *Auditor) replayOutcome(ctx context.Context, rec Record) (ReplayOutcome, error) {
	if a.lookup == nil || a.rep == nil {
		return ReplayOutcome{}, errors.New("audit: auditor has no model lookup or replayer")
	}
	m, err := a.lookup(rec.ModelID)
	if err != nil {
		return ReplayOutcome{}, fmt.Errorf("load model: %w", err)
	}
	return a.rep.Replay(ctx, rec, m)
}
