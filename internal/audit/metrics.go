package audit

import (
	"expvar"
	"sync"

	"blinkml/internal/obs"
)

// Metrics are the audit plane's expvar vars, published once under the
// "blinkml_audit" map so repeated Log construction (tests, restarts in one
// process) reuses the same vars instead of panicking on re-publish. The
// gauges are resynced from the loaded log on Open.
type Metrics struct {
	Records        *expvar.Int // calibration records appended
	Replays        *expvar.Int // replays completed (success or failure)
	ReplaysPending *expvar.Int // gauge: records with no replay yet
	ReplayFailures *expvar.Int // replays that errored (no coverage sample)
	// CoverageAlerts counts coverage-below-target alert firings — the
	// structured-log hook's machine-readable twin.
	CoverageAlerts *expvar.Int
	// ReplayLatency is wall time per replay (ms) — dominated by the
	// full-data training the guarantee is checked against.
	ReplayLatency *obs.Histogram
	// Coverage is the per-family empirical Pr[v ≤ ε̂] over completed
	// replays; the contract demands ≥ 1−δ.
	Coverage *obs.GaugeVec
	// CalibrationRatio is the per-replay ε̂/realized ratio distribution —
	// how conservative the estimator runs (≫1: loose bounds; <1: a
	// violation).
	CalibrationRatio *obs.HistogramVec
}

var (
	metricsOnce sync.Once
	metrics     *Metrics
)

func sharedMetrics() *Metrics {
	metricsOnce.Do(func() {
		m := expvar.NewMap("blinkml_audit")
		newInt := func(name string) *expvar.Int {
			v := new(expvar.Int)
			m.Set(name, v)
			return v
		}
		metrics = &Metrics{
			Records:        newInt("records"),
			Replays:        newInt("replays"),
			ReplaysPending: newInt("replays_pending"),
			ReplayFailures: newInt("replay_failures"),
			CoverageAlerts: newInt("coverage_alerts"),
		}
		metrics.ReplayLatency = obs.NewHistogram()
		m.Set("replay_ms", metrics.ReplayLatency)
		metrics.Coverage = obs.NewGaugeVec()
		m.Set("coverage", metrics.Coverage)
		metrics.CalibrationRatio = obs.NewHistogramVec()
		m.Set("calibration_ratio", metrics.CalibrationRatio)
	})
	return metrics
}
