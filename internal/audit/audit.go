// Package audit is the guarantee-calibration plane: every train/tune job
// appends a durable record of the (ε, δ) contract it promised and the
// decision it made (sample size, ε̂, model family, dataset fingerprint),
// and an opt-in auditor later replays completed jobs — training the
// full-data model the guarantee was stated against — to measure the
// realized model difference v(m_n). Aggregating replays per model family
// yields the empirical coverage Pr[v ≤ ε̂], the number the paper's
// probabilistic contract says must be at least 1−δ.
package audit

import (
	"encoding/json"
	"time"

	"blinkml/internal/core"
	"blinkml/internal/modelio"
	"blinkml/internal/obs"
	"blinkml/internal/optimize"
)

// Options is the JSON-safe mirror of the core.Options a job trained with,
// captured after WithDefaults so a replay rebuilds the identical
// environment (split seeds, holdout size, optimizer budget) even if the
// server's defaults change later. core.Options itself is not recorded
// directly because its optimizer carries callback fields.
type Options struct {
	Epsilon           float64 `json:"epsilon"`
	Delta             float64 `json:"delta"`
	K                 int     `json:"k"`
	Method            int     `json:"method"`
	Seed              int64   `json:"seed"`
	InitialSampleSize int     `json:"initial_sample_size"`
	MinSampleSize     int     `json:"min_sample_size,omitempty"`
	HoldoutFraction   float64 `json:"holdout_fraction"`
	MaxHoldout        int     `json:"max_holdout"`
	TestFraction      float64 `json:"test_fraction,omitempty"`
	WarmStart         bool    `json:"warm_start,omitempty"`
	MaxIters          int     `json:"max_iters,omitempty"`
}

// FromCore captures the replay-relevant fields of o. Callers pass
// o.WithDefaults() so the record holds resolved values, not zeros.
func FromCore(o core.Options) Options {
	return Options{
		Epsilon:           o.Epsilon,
		Delta:             o.Delta,
		K:                 o.K,
		Method:            int(o.Method),
		Seed:              o.Seed,
		InitialSampleSize: o.InitialSampleSize,
		MinSampleSize:     o.MinSampleSize,
		HoldoutFraction:   o.HoldoutFraction,
		MaxHoldout:        o.MaxHoldout,
		TestFraction:      o.TestFraction,
		WarmStart:         o.WarmStart,
		MaxIters:          o.Optimizer.MaxIters,
	}
}

// Core reconstructs the training options for a replay.
func (o Options) Core() core.Options {
	return core.Options{
		Epsilon:           o.Epsilon,
		Delta:             o.Delta,
		K:                 o.K,
		Method:            core.Method(o.Method),
		Seed:              o.Seed,
		InitialSampleSize: o.InitialSampleSize,
		MinSampleSize:     o.MinSampleSize,
		HoldoutFraction:   o.HoldoutFraction,
		MaxHoldout:        o.MaxHoldout,
		TestFraction:      o.TestFraction,
		WarmStart:         o.WarmStart,
		Optimizer:         optimize.Options{MaxIters: o.MaxIters},
	}
}

// Record is the durable calibration record appended when a job registers a
// model: the contract, the decision, and everything a replay needs to
// reconstruct the environment. Dataset is the serving layer's dataset
// reference, kept opaque here so audit does not depend on serve's wire
// types; Fingerprint identifies the bytes it resolves to.
type Record struct {
	ModelID string `json:"model_id"`
	JobID   string `json:"job_id,omitempty"`
	TraceID string `json:"trace_id,omitempty"`
	// Kind is "train" or "tune".
	Kind   string `json:"kind"`
	Family string `json:"family"`
	// Spec round-trips the winning model's hyperparameters.
	Spec        modelio.SpecJSON `json:"spec"`
	Dataset     json.RawMessage  `json:"dataset,omitempty"`
	Fingerprint string           `json:"fingerprint,omitempty"`
	// Contract: the requested bound and confidence, and the Monte-Carlo
	// budget K the estimate was computed with.
	Epsilon float64 `json:"epsilon"`
	Delta   float64 `json:"delta"`
	K       int     `json:"k"`
	// Decision: the chosen sample size n out of pool N, the estimated
	// bound ε̂ the model shipped with, and the first-stage ε₀.
	SampleSize       int       `json:"sample_size"`
	PoolSize         int       `json:"pool_size"`
	EpsilonHat       float64   `json:"epsilon_hat"`
	InitialEpsilon   float64   `json:"initial_epsilon,omitempty"`
	UsedInitialModel bool      `json:"used_initial_model,omitempty"`
	Options          Options   `json:"options"`
	CreatedAt        time.Time `json:"created_at"`
	// Resources is the job's resource-attribution ledger at registration
	// time (CPU self-time, kernel flops, rows/bytes materialized) — what the
	// guarantee cost to produce.
	Resources *obs.LedgerSnapshot `json:"resources,omitempty"`
}

// Replay is the realized outcome of auditing one record: the full-data
// model was trained at the recorded options and compared against the
// approximate model the job shipped.
type Replay struct {
	ModelID string `json:"model_id"`
	// Realized is v(m_n, m_N) on the recorded holdout split.
	Realized float64 `json:"realized"`
	// EpsilonHat echoes the record's bound so a replay line is
	// self-contained in exports.
	EpsilonHat float64 `json:"epsilon_hat"`
	// Satisfied reports Realized ≤ EpsilonHat — one Bernoulli draw of the
	// coverage probability the contract promises is ≥ 1−δ.
	Satisfied bool `json:"satisfied"`
	FullIters int  `json:"full_iters,omitempty"`
	// FullThetaFNV is the hex FNV-1a fingerprint of the full model's
	// parameter bits — the determinism witness: a second replay (or a
	// direct training at the same seed and parallelism) must reproduce it
	// exactly.
	FullThetaFNV string  `json:"full_theta_fnv,omitempty"`
	ElapsedMs    float64 `json:"elapsed_ms,omitempty"`
	// Error is set when the replay itself failed (dataset gone, training
	// diverged); failed replays count toward failures, never coverage.
	Error      string    `json:"error,omitempty"`
	ReplayedAt time.Time `json:"replayed_at"`
}
