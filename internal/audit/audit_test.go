package audit

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"blinkml/internal/core"
	"blinkml/internal/datagen"
	"blinkml/internal/dataset"
	"blinkml/internal/modelio"
	"blinkml/internal/models"
	"blinkml/internal/optimize"
)

func testRecord(id, family string) Record {
	return Record{
		ModelID:    id,
		JobID:      "job-" + id,
		Kind:       "train",
		Family:     family,
		Spec:       modelio.SpecJSON{Name: family},
		Epsilon:    0.1,
		Delta:      0.05,
		K:          100,
		SampleSize: 500,
		PoolSize:   5000,
		EpsilonHat: 0.08,
		Options:    FromCore(core.Options{Epsilon: 0.1, Seed: 1}.WithDefaults()),
		CreatedAt:  time.Unix(0, 0).UTC(),
	}
}

// A crash mid-append leaves a torn final line; Open must load every intact
// record and keep accepting appends.
func TestLogSurvivesTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Append(testRecord(fmt.Sprintf("m-%d", i), "logistic")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.AppendReplay(Replay{ModelID: "m-0", Realized: 0.05, EpsilonHat: 0.08, Satisfied: true, ReplayedAt: time.Unix(0, 0).UTC()}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate the crash: a record line cut off mid-JSON.
	path := filepath.Join(dir, "audit.jsonl")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"record":{"model_id":"m-torn","fam`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := Open(dir, nil)
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	defer l2.Close()
	if got := len(l2.Entries()); got != 3 {
		t.Fatalf("loaded %d records, want 3 (torn line skipped)", got)
	}
	if e, ok := l2.Get("m-0"); !ok || e.Replay == nil || !e.Replay.Satisfied {
		t.Fatalf("replay for m-0 lost across reload: %+v", e)
	}
	if got := len(l2.Pending()); got != 2 {
		t.Fatalf("pending = %d, want 2", got)
	}
	// The log must still accept appends after recovery.
	if err := l2.Append(testRecord("m-after", "linear")); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	if _, ok := l2.Get("m-after"); !ok {
		t.Fatal("post-recovery record not indexed")
	}
}

// Concurrent appends must never interleave bytes (run under -race).
func TestLogConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	const writers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				id := fmt.Sprintf("m-%d-%d", w, i)
				if err := l.Append(testRecord(id, "logistic")); err != nil {
					t.Errorf("append %s: %v", id, err)
					return
				}
				if i%3 == 0 {
					if err := l.AppendReplay(Replay{ModelID: id, Realized: 0.05, EpsilonHat: 0.08, Satisfied: true, ReplayedAt: time.Unix(0, 0).UTC()}); err != nil {
						t.Errorf("replay %s: %v", id, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Every line must parse — torn or interleaved lines would be skipped on
	// load and show up as missing entries.
	l2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := len(l2.Entries()); got != writers*per {
		t.Fatalf("reloaded %d records, want %d", got, writers*per)
	}
	rep := l2.Summary()
	if rep.Replayed != writers*((per+2)/3) {
		t.Fatalf("reloaded %d replays, want %d", rep.Replayed, writers*((per+2)/3))
	}
	if rep.Families[0].Coverage != 1 {
		t.Fatalf("coverage = %v, want 1", rep.Families[0].Coverage)
	}
}

// The auditor's replay must reproduce the full-data model bit for bit:
// identical fingerprints across two replays and a direct training at the
// recorded options.
func TestReplayDeterministicBitIdentical(t *testing.T) {
	pool := datagen.Higgs(datagen.Config{Rows: 3000, Dim: 5, Seed: 9})
	spec := models.LogisticRegression{Reg: 0.01}
	opts := core.Options{Epsilon: 0.15, Seed: 41, InitialSampleSize: 400}.WithDefaults()
	env := core.NewEnv(pool, opts)
	res, err := env.TrainApprox(spec, opts)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	l, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	rec := testRecord("m-det", "logistic")
	rec.EpsilonHat = res.EstimatedEpsilon
	rec.Options = FromCore(opts)
	if err := l.Append(rec); err != nil {
		t.Fatal(err)
	}

	model := &modelio.Model{Spec: spec, Theta: res.Theta}
	a := NewAuditor(l,
		func(id string) (*modelio.Model, error) { return model, nil },
		LocalReplayer{Resolve: func(context.Context, json.RawMessage) (dataset.Source, error) { return pool, nil }},
		Config{Concurrency: 2},
	)
	defer a.Close()
	n, err := a.ReplayPending(context.Background(), 0)
	if err != nil || n != 1 {
		t.Fatalf("ReplayPending = %d, %v", n, err)
	}
	e, _ := l.Get("m-det")
	if e.Replay == nil || e.Replay.Error != "" {
		t.Fatalf("replay failed: %+v", e.Replay)
	}
	first := e.Replay.FullThetaFNV

	// Second replay of the same record (the explicit-retry path).
	if err := a.ReplayOne(context.Background(), "m-det"); err != nil {
		t.Fatal(err)
	}
	e, _ = l.Get("m-det")
	if e.Replay.FullThetaFNV != first {
		t.Fatalf("replay not deterministic: %s vs %s", first, e.Replay.FullThetaFNV)
	}

	// Direct training at the recorded options must land on the same bits.
	env2, err := core.NewEnvFromSource(pool, rec.Options.Core())
	if err != nil {
		t.Fatal(err)
	}
	full, err := env2.TrainFull(spec, optimize.Options{MaxIters: rec.Options.MaxIters})
	if err != nil {
		t.Fatal(err)
	}
	if direct := fmt.Sprintf("%016x", core.ThetaFingerprint(full.Theta)); direct != first {
		t.Fatalf("replay %s != direct training %s", first, direct)
	}
}

// A failed replay is recorded with Error set, leaves pending, and counts
// as a failure — never as a coverage sample.
func TestReplayFailureRecorded(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(testRecord("m-err", "poisson")); err != nil {
		t.Fatal(err)
	}
	a := NewAuditor(l,
		func(id string) (*modelio.Model, error) { return nil, errors.New("registry lost it") },
		LocalReplayer{}, Config{})
	defer a.Close()
	if _, err := a.ReplayPending(context.Background(), 0); err == nil {
		t.Fatal("want replay error surfaced")
	}
	if got := len(l.Pending()); got != 0 {
		t.Fatalf("errored replay still pending: %d", got)
	}
	rep := l.Summary()
	if rep.Failures != 1 || rep.Replayed != 0 {
		t.Fatalf("failures=%d replayed=%d, want 1/0", rep.Failures, rep.Replayed)
	}
	e, _ := l.Get("m-err")
	if e.Replay == nil || e.Replay.Error == "" {
		t.Fatalf("failure not durably recorded: %+v", e.Replay)
	}
}

// The fraction sampler must be deterministic and roughly proportional.
func TestAuditorFractionSampling(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	a := NewAuditor(l, nil, nil, Config{Fraction: 0.4, Seed: 7})
	defer a.Close()
	picked := 0
	for i := 0; i < 500; i++ {
		id := fmt.Sprintf("m-%03d", i)
		if a.sampled(id) != a.sampled(id) {
			t.Fatalf("sampling of %s not deterministic", id)
		}
		if a.sampled(id) {
			picked++
		}
	}
	if picked < 120 || picked > 280 {
		t.Fatalf("fraction 0.4 picked %d/500", picked)
	}
}
