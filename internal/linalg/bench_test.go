package linalg

import (
	"math/rand"
	"testing"
)

func benchMatrix(n, m int) *Dense {
	rng := rand.New(rand.NewSource(1))
	return randDense(rng, n, m)
}

func BenchmarkMatMul64(b *testing.B) {
	a := benchMatrix(64, 64)
	c := benchMatrix(64, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMul(a, c)
	}
}

func BenchmarkMatMul256(b *testing.B) {
	a := benchMatrix(256, 256)
	c := benchMatrix(256, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMul(a, c)
	}
}

func BenchmarkSyrk256(b *testing.B) {
	a := benchMatrix(256, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Syrk(a)
	}
}

func BenchmarkSyrkTTall(b *testing.B) {
	a := benchMatrix(2048, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SyrkT(a)
	}
}

func BenchmarkSymEig64(b *testing.B) {
	a := benchMatrix(64, 64)
	a.Symmetrize()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewSymEig(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSymEig256(b *testing.B) {
	a := benchMatrix(256, 256)
	a.Symmetrize()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewSymEig(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkThinSVDTall(b *testing.B) {
	a := benchMatrix(512, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewThinSVD(a, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCholesky128(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	a := randSPD(rng, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewCholesky(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLUSolve128(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	a := randSPD(rng, 128)
	rhs := randVec(rng, 128)
	f, err := NewLU(a)
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]float64, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Solve(rhs, dst)
	}
}

// Sparse kernel benchmarks: dot and rank-1 update over ~1%-density
// operands, the shapes the sparse Fisher Gram accumulates.

func benchSparseVec(rng *rand.Rand, dim, nnz int) ([]int32, []float64) {
	seen := map[int32]bool{}
	for len(seen) < nnz {
		seen[int32(rng.Intn(dim))] = true
	}
	idx := make([]int32, 0, nnz)
	for j := int32(0); int(j) < dim; j++ {
		if seen[j] {
			idx = append(idx, j)
		}
	}
	val := make([]float64, len(idx))
	for i := range val {
		val[i] = rng.NormFloat64()
	}
	return idx, val
}

func BenchmarkSpDot(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	ai, av := benchSparseVec(rng, 10000, 100)
	bi, bv := benchSparseVec(rng, 10000, 100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkFloat = SpDot(ai, av, bi, bv)
	}
}

func BenchmarkSpOuterAdd(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	idx, val := benchSparseVec(rng, 512, 40)
	m := NewDense(512, 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SpOuterAdd(m, 0.5, idx, val)
	}
}

var sinkFloat float64
