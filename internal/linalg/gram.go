package linalg

import (
	"fmt"
	"time"

	"blinkml/internal/compute"
	"blinkml/internal/obs"
)

// Syrk returns the symmetric rank-k product A * Aᵀ (Rows x Rows),
// computing only the upper triangle and mirroring it — half the
// multiply-adds of MatMulTransB(a, a). Triangle rows are distributed over
// the compute pool with cost-balanced ranges. Each element accumulates
// its dot product in ascending k order, and the mirrored lower triangle
// is exactly the value the naive kernel would compute there (float
// multiplication commutes), so the result is bit-identical to
// MatMulTransB(a, a) at any parallelism degree.
func Syrk(a *Dense) *Dense {
	n := a.Rows
	// n(n+1)k multiply-adds over the upper triangle (k = a.Cols).
	defer obs.ChargeKernel(time.Now(), int64(n)*int64(n+1)*int64(a.Cols))
	c := NewDense(n, n)
	ranges := compute.TriangleRanges(n)
	compute.Run(len(ranges), func(t int) {
		r := ranges[t]
		for i := r.Lo; i < r.Hi; i++ {
			dotRows(a.Row(i), a, i, n, c.Row(i))
		}
	})
	c.MirrorUpper()
	return c
}

// SyrkT returns Aᵀ * A (Cols x Cols) as a symmetric rank-k product: only
// the upper triangle is accumulated (ascending row order, so each element
// matches MatMulTransA(a, a) bit for bit) and then mirrored.
func SyrkT(a *Dense) *Dense {
	n := a.Cols
	defer obs.ChargeKernel(time.Now(), int64(n)*int64(n+1)*int64(a.Rows))
	c := NewDense(n, n)
	ranges := compute.TriangleRanges(n)
	compute.Run(len(ranges), func(t int) {
		r := ranges[t]
		for k := 0; k < a.Rows; k++ {
			arow := a.Row(k)
			for i := r.Lo; i < r.Hi; i++ {
				if av := arow[i]; av != 0 {
					Axpy(av, arow[i:], c.Row(i)[i:])
				}
			}
		}
	})
	c.MirrorUpper()
	return c
}

// MirrorUpper copies the strict upper triangle of the square matrix onto
// the lower one, in parallel over row ranges (row i writes column i below
// the diagonal; distinct rows touch disjoint elements). It completes any
// kernel that fills only the upper triangle of a symmetric result.
func (c *Dense) MirrorUpper() {
	n := c.Rows
	if n != c.Cols {
		panic(fmt.Sprintf("linalg: MirrorUpper of non-square %dx%d", n, c.Cols))
	}
	compute.For(n, 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			crow := c.Row(i)
			for j := i + 1; j < n; j++ {
				c.Data[j*n+i] = crow[j]
			}
		}
	})
}
