package linalg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randSPD returns a random symmetric positive-definite n x n matrix
// AᵀA + I, which is always well-conditioned enough for these tests.
func randSPD(rng *rand.Rand, n int) *Dense {
	a := randDense(rng, n, n)
	spd := MatMulTransA(a, a)
	spd.AddDiag(1)
	return spd
}

func TestLUSolveKnown(t *testing.T) {
	a := NewDenseFrom(2, 2, []float64{2, 1, 1, 3})
	x, err := SolveLinear(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	// 2x + y = 5, x + 3y = 10 → x=1, y=3
	if !almostEq(x[0], 1, tol) || !almostEq(x[1], 3, tol) {
		t.Fatalf("solve got %v", x)
	}
}

func TestLUSingular(t *testing.T) {
	a := NewDenseFrom(2, 2, []float64{1, 2, 2, 4})
	if _, err := NewLU(a); err != ErrSingular {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
}

func TestLUNonSquare(t *testing.T) {
	if _, err := NewLU(NewDense(2, 3)); err == nil {
		t.Fatal("expected error for non-square LU")
	}
}

func TestLUDet(t *testing.T) {
	a := NewDenseFrom(2, 2, []float64{3, 1, 2, 4})
	f, err := NewLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f.Det(), 10, tol) {
		t.Fatalf("det=%v want 10", f.Det())
	}
}

// Property: A * solve(A, b) == b for random well-conditioned A.
func TestLUSolveRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(10)
		a := randSPD(r, n)
		b := randVec(r, n)
		x, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		back := make([]float64, n)
		a.MulVec(x, back)
		for i := range b {
			if !almostEq(back[i], b[i], 1e-7) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Inverse(A) * A == I.
func TestInverseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		a := randSPD(r, n)
		inv, err := Inverse(a)
		if err != nil {
			return false
		}
		return densesAlmostEqual(MatMul(inv, a), Identity(n), 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCholeskyKnown(t *testing.T) {
	a := NewDenseFrom(2, 2, []float64{4, 2, 2, 5})
	c, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	// L = [[2,0],[1,2]]
	if !almostEq(c.L.At(0, 0), 2, tol) || !almostEq(c.L.At(1, 0), 1, tol) || !almostEq(c.L.At(1, 1), 2, tol) {
		t.Fatalf("L = %v", c.L.Data)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewDenseFrom(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, err := NewCholesky(a); err != ErrNotPositiveDefinite {
		t.Fatalf("expected ErrNotPositiveDefinite, got %v", err)
	}
}

// Property: L*Lᵀ reconstructs A, and Cholesky solve matches LU solve.
func TestCholeskyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(10)
		a := randSPD(r, n)
		c, err := NewCholesky(a)
		if err != nil {
			return false
		}
		if !densesAlmostEqual(MatMulTransB(c.L, c.L), a, 1e-8) {
			return false
		}
		b := randVec(r, n)
		x1 := make([]float64, n)
		c.Solve(b, x1)
		x2, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		for i := range x1 {
			if !almostEq(x1[i], x2[i], 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCholeskyMulVec(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	a := randSPD(r, 4)
	c, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	z := randVec(r, 4)
	got := make([]float64, 4)
	c.MulVec(z, got)
	want := make([]float64, 4)
	c.L.MulVec(z, want)
	for i := range got {
		if !almostEq(got[i], want[i], tol) {
			t.Fatalf("MulVec got %v want %v", got, want)
		}
	}
}

func TestCholeskyJittered(t *testing.T) {
	// Slightly indefinite: should succeed after jitter.
	a := NewDenseFrom(2, 2, []float64{1, 1.0001, 1.0001, 1})
	c, jitter, err := NewCholeskyJittered(a, 1e-3, 10)
	if err != nil {
		t.Fatalf("jittered Cholesky failed: %v", err)
	}
	if jitter <= 0 {
		t.Fatalf("expected positive jitter, got %v", jitter)
	}
	if c == nil {
		t.Fatal("nil factor")
	}
	// Severely indefinite with tiny budget: should fail.
	b := NewDenseFrom(2, 2, []float64{-100, 0, 0, -100})
	if _, _, err := NewCholeskyJittered(b, 1e-12, 1); err == nil {
		t.Fatal("expected failure for severely indefinite matrix")
	}
}

func TestCholeskyLogDet(t *testing.T) {
	a := NewDenseFrom(2, 2, []float64{4, 0, 0, 9})
	c, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	// det = 36, log det = log 36
	if !almostEq(c.LogDet(), 3.5835189384561104, 1e-9) {
		t.Fatalf("LogDet=%v", c.LogDet())
	}
}
