// Package linalg provides the dense linear-algebra kernels BlinkML needs:
// vector primitives, row-major dense matrices, LU and Cholesky
// factorizations, a symmetric eigensolver (Householder tridiagonalization
// followed by the implicit-shift QL iteration), and a thin SVD computed
// through the Gram matrix of the smaller side.
//
// Everything is float64 and written against the standard library only. The
// kernels favour clarity and predictable numerical behaviour over raw speed;
// they are the substitute for the numpy/SciPy layer the original BlinkML
// prototype was built on (substitution S3 in DESIGN.md).
package linalg
