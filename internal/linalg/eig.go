package linalg

import (
	"errors"
	"math"
	"sort"
)

// SymEig holds the eigendecomposition of a symmetric matrix:
// A = V * diag(Values) * Vᵀ, with eigenvalues sorted in descending order and
// eigenvectors stored as the COLUMNS of V.
type SymEig struct {
	Values  []float64
	Vectors *Dense // n x n, column j is the eigenvector for Values[j]
}

// NewSymEig computes the eigendecomposition of the symmetric matrix a using
// Householder tridiagonalization followed by the implicit-shift QL
// iteration (the classical tred2/tql2 pair). Only the symmetric part of a
// is used. The input is not modified.
func NewSymEig(a *Dense) (*SymEig, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("linalg: SymEig of non-square matrix")
	}
	n := a.Rows
	if n == 0 {
		return &SymEig{Values: nil, Vectors: NewDense(0, 0)}, nil
	}
	v := a.Clone()
	v.Symmetrize()
	d := make([]float64, n)
	e := make([]float64, n)
	tred2(v, d, e)
	// tql2 applies O(n²) Givens rotations to the eigenvector matrix; on the
	// transposed copy each rotation touches two contiguous rows instead of
	// two strided columns, which dominates the n³ cost.
	vt := v.T()
	if err := tql2(vt, d, e); err != nil {
		return nil, err
	}
	// Sort eigenpairs by descending eigenvalue.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(x, y int) bool { return d[idx[x]] > d[idx[y]] })
	values := make([]float64, n)
	vectors := NewDense(n, n)
	for jNew, jOld := range idx {
		values[jNew] = d[jOld]
		row := vt.Row(jOld)
		for i := 0; i < n; i++ {
			vectors.Set(i, jNew, row[i])
		}
	}
	return &SymEig{Values: values, Vectors: vectors}, nil
}

// tred2 reduces the symmetric matrix stored in v to tridiagonal form using
// Householder reflections, accumulating the orthogonal transformation in v.
// On return d holds the diagonal and e the subdiagonal (e[0] == 0).
// This follows the EISPACK tred2 routine (as popularized by JAMA).
func tred2(v *Dense, d, e []float64) {
	n := v.Rows
	for j := 0; j < n; j++ {
		d[j] = v.At(n-1, j)
	}
	for i := n - 1; i > 0; i-- {
		// Scale to avoid under/overflow.
		scale, h := 0.0, 0.0
		for k := 0; k < i; k++ {
			scale += math.Abs(d[k])
		}
		if scale == 0 {
			e[i] = d[i-1]
			for j := 0; j < i; j++ {
				d[j] = v.At(i-1, j)
				v.Set(i, j, 0)
				v.Set(j, i, 0)
			}
		} else {
			for k := 0; k < i; k++ {
				d[k] /= scale
				h += d[k] * d[k]
			}
			f := d[i-1]
			g := math.Sqrt(h)
			if f > 0 {
				g = -g
			}
			e[i] = scale * g
			h -= f * g
			d[i-1] = f - g
			for j := 0; j < i; j++ {
				e[j] = 0
			}
			// Apply the similarity transformation: e = V·d over the active
			// lower triangle, walked row-by-row so every inner loop is
			// contiguous (the strided column order of the textbook routine
			// dominates the n³ cost otherwise).
			for j := 0; j < i; j++ {
				v.Set(j, i, d[j])
				e[j] += v.At(j, j) * d[j]
			}
			for k := 1; k <= i-1; k++ {
				row := v.Row(k)[:k]
				dk := d[k]
				var acc float64
				for j, vkj := range row {
					e[j] += vkj * dk
					acc += vkj * d[j]
				}
				e[k] += acc
			}
			f = 0
			for j := 0; j < i; j++ {
				e[j] /= h
				f += e[j] * d[j]
			}
			hh := f / (h + h)
			for j := 0; j < i; j++ {
				e[j] -= hh * d[j]
			}
			// Rank-two update of the active lower triangle, row-contiguous.
			for k := 0; k <= i-1; k++ {
				row := v.Row(k)[:k+1]
				ek, dk := e[k], d[k]
				for j := range row {
					row[j] -= d[j]*ek + e[j]*dk
				}
			}
			for j := 0; j < i; j++ {
				d[j] = v.At(i-1, j)
				v.Set(i, j, 0)
			}
		}
		d[i] = h
	}
	// Accumulate transformations.
	for i := 0; i < n-1; i++ {
		v.Set(n-1, i, v.At(i, i))
		v.Set(i, i, 1)
		h := d[i+1]
		if h != 0 {
			for k := 0; k <= i; k++ {
				d[k] = v.At(k, i+1) / h
			}
			// V -= d·(uᵀV) as two row-contiguous passes: w = Σ_k u_k·V[k,:]
			// with u_k = V[k, i+1], then V[k,:] -= d[k]·w.
			w := make([]float64, i+1)
			for k := 0; k <= i; k++ {
				Axpy(v.At(k, i+1), v.Row(k)[:i+1], w)
			}
			for k := 0; k <= i; k++ {
				Axpy(-d[k], w, v.Row(k)[:i+1])
			}
		}
		for k := 0; k <= i; k++ {
			v.Set(k, i+1, 0)
		}
	}
	for j := 0; j < n; j++ {
		d[j] = v.At(n-1, j)
		v.Set(n-1, j, 0)
	}
	v.Set(n-1, n-1, 1)
	e[0] = 0
}

// tql2 diagonalizes the symmetric tridiagonal matrix (d, e) with the
// implicit-shift QL method, accumulating eigenvectors into the TRANSPOSED
// matrix vt (row j of vt ends up holding eigenvector j, so every rotation
// works on contiguous memory). Follows the EISPACK tql2 routine.
func tql2(vt *Dense, d, e []float64) error {
	n := vt.Rows
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0

	f, tst1 := 0.0, 0.0
	eps := math.Pow(2, -52)
	for l := 0; l < n; l++ {
		tst1 = math.Max(tst1, math.Abs(d[l])+math.Abs(e[l]))
		m := l
		for m < n {
			if math.Abs(e[m]) <= eps*tst1 {
				break
			}
			m++
		}
		if m > l {
			for iter := 0; ; iter++ {
				if iter > 60 {
					return errors.New("linalg: tql2 failed to converge")
				}
				// Compute implicit shift.
				g := d[l]
				p := (d[l+1] - g) / (2 * e[l])
				r := math.Hypot(p, 1)
				if p < 0 {
					r = -r
				}
				d[l] = e[l] / (p + r)
				d[l+1] = e[l] * (p + r)
				dl1 := d[l+1]
				h := g - d[l]
				for i := l + 2; i < n; i++ {
					d[i] -= h
				}
				f += h
				// Implicit QL sweep.
				p = d[m]
				c, c2, c3 := 1.0, 1.0, 1.0
				el1 := e[l+1]
				s, s2 := 0.0, 0.0
				for i := m - 1; i >= l; i-- {
					c3 = c2
					c2 = c
					s2 = s
					g = c * e[i]
					h = c * p
					r = math.Hypot(p, e[i])
					e[i+1] = s * r
					s = e[i] / r
					c = p / r
					p = c*d[i] - s*g
					d[i+1] = h + s*(c*g+s*d[i])
					// Accumulate eigenvectors: a Givens rotation of two
					// contiguous rows of the transposed matrix.
					ri := vt.Row(i)
					ri1 := vt.Row(i + 1)
					for k := 0; k < n; k++ {
						h = ri1[k]
						ri1[k] = s*ri[k] + c*h
						ri[k] = c*ri[k] - s*h
					}
				}
				p = -s * s2 * c3 * el1 * e[l] / dl1
				e[l] = s * p
				d[l] = c * p
				if math.Abs(e[l]) <= eps*tst1 {
					break
				}
			}
		}
		d[l] += f
		e[l] = 0
	}
	return nil
}
