package linalg

import (
	"errors"
	"math"
	"sort"
	"time"

	"blinkml/internal/compute"
	"blinkml/internal/obs"
)

// SymEig holds the eigendecomposition of a symmetric matrix:
// A = V * diag(Values) * Vᵀ, with eigenvalues sorted in descending order and
// eigenvectors stored as the COLUMNS of V.
type SymEig struct {
	Values  []float64
	Vectors *Dense // n x n, column j is the eigenvector for Values[j]
}

// NewSymEig computes the eigendecomposition of the symmetric matrix a using
// Householder tridiagonalization followed by the implicit-shift QL
// iteration (the classical tred2/tql2 pair). Only the symmetric part of a
// is used. The input is not modified.
//
// The O(n³) inner loops — the Householder similarity updates and the
// accumulated Givens rotations — run chunked on the compute pool. Chunk
// decompositions depend only on the problem size and the configured
// parallelism degree, so results are bit-identical across runs at a fixed
// degree (and identical to the serial algorithm at degree 1).
func NewSymEig(a *Dense) (*SymEig, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("linalg: SymEig of non-square matrix")
	}
	n := a.Rows
	if n == 0 {
		return &SymEig{Values: nil, Vectors: NewDense(0, 0)}, nil
	}
	// tred2 + tql2 cost ~4n^3 flops (the classical operation-count estimate
	// for the pair); shape-derived, so deterministic in the ledger.
	defer obs.ChargeKernel(time.Now(), 4*int64(n)*int64(n)*int64(n))
	v := a.Clone()
	v.Symmetrize()
	d := make([]float64, n)
	e := make([]float64, n)
	tred2(v, d, e)
	// tql2 applies O(n²) Givens rotations to the eigenvector matrix; on the
	// transposed copy each rotation touches two contiguous rows instead of
	// two strided columns, which dominates the n³ cost.
	vt := v.T()
	if err := tql2(vt, d, e); err != nil {
		return nil, err
	}
	// Sort eigenpairs by descending eigenvalue.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(x, y int) bool { return d[idx[x]] > d[idx[y]] })
	values := make([]float64, n)
	vectors := NewDense(n, n)
	for jNew, jOld := range idx {
		values[jNew] = d[jOld]
		row := vt.Row(jOld)
		for i := 0; i < n; i++ {
			vectors.Set(i, jNew, row[i])
		}
	}
	return &SymEig{Values: values, Vectors: vectors}, nil
}

// tredGrain is the minimum number of length-~i rows per chunk in tred2's
// O(i²) inner loops: small steps stay serial, large ones split so each
// chunk carries ~64k multiply-adds.
func tredGrain(i int) int {
	g := (1 << 16) / (i + 1)
	if g < 16 {
		g = 16
	}
	return g
}

// tred2 reduces the symmetric matrix stored in v to tridiagonal form using
// Householder reflections, accumulating the orthogonal transformation in v.
// On return d holds the diagonal and e the subdiagonal (e[0] == 0).
// This follows the EISPACK tred2 routine (as popularized by JAMA).
func tred2(v *Dense, d, e []float64) {
	n := v.Rows
	for j := 0; j < n; j++ {
		d[j] = v.At(n-1, j)
	}
	for i := n - 1; i > 0; i-- {
		// Scale to avoid under/overflow.
		scale, h := 0.0, 0.0
		for k := 0; k < i; k++ {
			scale += math.Abs(d[k])
		}
		if scale == 0 {
			e[i] = d[i-1]
			for j := 0; j < i; j++ {
				d[j] = v.At(i-1, j)
				v.Set(i, j, 0)
				v.Set(j, i, 0)
			}
		} else {
			for k := 0; k < i; k++ {
				d[k] /= scale
				h += d[k] * d[k]
			}
			f := d[i-1]
			g := math.Sqrt(h)
			if f > 0 {
				g = -g
			}
			e[i] = scale * g
			h -= f * g
			d[i-1] = f - g
			for j := 0; j < i; j++ {
				e[j] = 0
			}
			// Apply the similarity transformation: e = V·d over the active
			// lower triangle, walked row-by-row so every inner loop is
			// contiguous. The row loop is a reduction into e, chunked over
			// the pool with per-chunk partials and an ordered tree merge;
			// a single chunk accumulates straight into e, preserving the
			// serial algorithm's exact rounding.
			for j := 0; j < i; j++ {
				v.Set(j, i, d[j])
				e[j] += v.At(j, j) * d[j]
			}
			simTransform(v, d, e, i)
			f = 0
			for j := 0; j < i; j++ {
				e[j] /= h
				f += e[j] * d[j]
			}
			hh := f / (h + h)
			for j := 0; j < i; j++ {
				e[j] -= hh * d[j]
			}
			// Rank-two update of the active lower triangle: rows are
			// independent, so they chunk across the pool with no change to
			// per-row arithmetic. Small steps skip the pool entirely — the
			// serial call is exactly what the single chunk would run, and
			// skipping it avoids a closure allocation per Householder step.
			if compute.Chunks(i, tredGrain(i)) <= 1 {
				rankTwoUpdate(v, d, e, 0, i)
			} else {
				compute.For(i, tredGrain(i), func(lo, hi int) {
					rankTwoUpdate(v, d, e, lo, hi)
				})
			}
			for j := 0; j < i; j++ {
				d[j] = v.At(i-1, j)
				v.Set(i, j, 0)
			}
		}
		d[i] = h
	}
	// Accumulate transformations.
	for i := 0; i < n-1; i++ {
		v.Set(n-1, i, v.At(i, i))
		v.Set(i, i, 1)
		h := d[i+1]
		if h != 0 {
			for k := 0; k <= i; k++ {
				d[k] = v.At(k, i+1) / h
			}
			// V -= d·(uᵀV) as two row-contiguous passes: w = Σ_k u_k·V[k,:]
			// with u_k = V[k, i+1] (a chunked reduction), then the
			// independent per-row updates V[k,:] -= d[k]·w.
			w := accumulateW(v, i)
			if compute.Chunks(i+1, tredGrain(i)) <= 1 {
				applyW(v, d, w, i, 0, i+1)
			} else {
				compute.For(i+1, tredGrain(i), func(lo, hi int) {
					applyW(v, d, w, i, lo, hi)
				})
			}
		}
		for k := 0; k <= i; k++ {
			v.Set(k, i+1, 0)
		}
	}
	for j := 0; j < n; j++ {
		d[j] = v.At(n-1, j)
		v.Set(n-1, j, 0)
	}
	v.Set(n-1, n-1, 1)
	e[0] = 0
}

// rankTwoUpdate applies tred2's rank-two update to rows [lo, hi) of the
// active lower triangle: V[k, :k+1] -= d·e[k] + e·d[k].
func rankTwoUpdate(v *Dense, d, e []float64, lo, hi int) {
	for k := lo; k < hi; k++ {
		row := v.Row(k)[:k+1]
		ek, dk := e[k], d[k]
		for j := range row {
			row[j] -= d[j]*ek + e[j]*dk
		}
	}
}

// applyW applies the accumulated transformation V[k, :i+1] -= d[k]·w to
// rows [lo, hi).
func applyW(v *Dense, d, w []float64, i, lo, hi int) {
	for k := lo; k < hi; k++ {
		Axpy(-d[k], w, v.Row(k)[:i+1])
	}
}

// simTransform runs tred2's similarity-transform reduction
// (e[j] += V[k][j]·d[k] for j < k, e[k] += V[k,:k]·d[:k]) over k in
// [1, i), chunked with per-chunk partials merged in tree order.
func simTransform(v *Dense, d, e []float64, i int) {
	chunks := compute.Chunks(i-1, tredGrain(i))
	if chunks <= 1 {
		for k := 1; k <= i-1; k++ {
			row := v.Row(k)[:k]
			dk := d[k]
			var acc float64
			for j, vkj := range row {
				e[j] += vkj * dk
				acc += vkj * d[j]
			}
			e[k] += acc
		}
		return
	}
	parts := make([][]float64, chunks)
	compute.ForChunksN(i-1, chunks, func(chunk, lo, hi int) {
		part := make([]float64, i)
		for k := lo + 1; k <= hi; k++ {
			row := v.Row(k)[:k]
			dk := d[k]
			var acc float64
			for j, vkj := range row {
				part[j] += vkj * dk
				acc += vkj * d[j]
			}
			part[k] += acc
		}
		parts[chunk] = part
	})
	Axpy(1, compute.ReduceVecs(parts), e[:i])
}

// accumulateW computes w[j] = Σ_k V[k, i+1]·V[k, j] over k, j in [0, i],
// as a chunked reduction (serial accumulation below the grain).
func accumulateW(v *Dense, i int) []float64 {
	chunks := compute.Chunks(i+1, tredGrain(i))
	if chunks <= 1 {
		w := make([]float64, i+1)
		for k := 0; k <= i; k++ {
			Axpy(v.At(k, i+1), v.Row(k)[:i+1], w)
		}
		return w
	}
	parts := make([][]float64, chunks)
	compute.ForChunksN(i+1, chunks, func(chunk, lo, hi int) {
		part := make([]float64, i+1)
		for k := lo; k < hi; k++ {
			Axpy(v.At(k, i+1), v.Row(k)[:i+1], part)
		}
		parts[chunk] = part
	})
	return compute.ReduceVecs(parts)
}

// applyGivens applies the recorded rotation sweep to vt: rotation r acts
// on rows top−r and top−r+1 with coefficients (cs[r], sn[r]). Rotations
// are column-local, so the column range is chunked across the pool; each
// column sees the rotations in the original order, making the result
// bit-identical to the serial sweep at any parallelism degree.
func applyGivens(vt *Dense, top int, cs, sn []float64) {
	nrot := len(cs)
	if nrot == 0 {
		return
	}
	grain := (1 << 15) / (3 * nrot)
	if grain < 32 {
		grain = 32
	}
	if compute.Chunks(vt.Cols, grain) <= 1 {
		givensSweep(vt, top, cs, sn, 0, vt.Cols)
		return
	}
	compute.For(vt.Cols, grain, func(klo, khi int) {
		givensSweep(vt, top, cs, sn, klo, khi)
	})
}

// givensSweep applies the rotation sweep to columns [klo, khi) of vt.
func givensSweep(vt *Dense, top int, cs, sn []float64, klo, khi int) {
	for r := range cs {
		c, s := cs[r], sn[r]
		ri := vt.Row(top - r)[klo:khi]
		ri1 := vt.Row(top - r + 1)[klo:khi][:len(ri)] // bounds-check hint
		for k, rik := range ri {
			h := ri1[k]
			ri1[k] = s*rik + c*h
			ri[k] = c*rik - s*h
		}
	}
}

// tql2 diagonalizes the symmetric tridiagonal matrix (d, e) with the
// implicit-shift QL method, accumulating eigenvectors into the TRANSPOSED
// matrix vt (row j of vt ends up holding eigenvector j, so every rotation
// works on contiguous memory). Follows the EISPACK tql2 routine; the
// rotation coefficients of each sweep are recorded first and then applied
// in one batched, pool-parallel pass (see applyGivens).
func tql2(vt *Dense, d, e []float64) error {
	n := vt.Rows
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0

	cs := make([]float64, n)
	sn := make([]float64, n)
	f, tst1 := 0.0, 0.0
	eps := math.Pow(2, -52)
	for l := 0; l < n; l++ {
		tst1 = math.Max(tst1, math.Abs(d[l])+math.Abs(e[l]))
		m := l
		for m < n {
			if math.Abs(e[m]) <= eps*tst1 {
				break
			}
			m++
		}
		if m > l {
			for iter := 0; ; iter++ {
				if iter > 60 {
					return errors.New("linalg: tql2 failed to converge")
				}
				// Compute implicit shift.
				g := d[l]
				p := (d[l+1] - g) / (2 * e[l])
				r := math.Hypot(p, 1)
				if p < 0 {
					r = -r
				}
				d[l] = e[l] / (p + r)
				d[l+1] = e[l] * (p + r)
				dl1 := d[l+1]
				h := g - d[l]
				for i := l + 2; i < n; i++ {
					d[i] -= h
				}
				f += h
				// Implicit QL sweep: run the scalar recurrence, recording
				// the Givens coefficients.
				p = d[m]
				c, c2, c3 := 1.0, 1.0, 1.0
				el1 := e[l+1]
				s, s2 := 0.0, 0.0
				nrot := 0
				for i := m - 1; i >= l; i-- {
					c3 = c2
					c2 = c
					s2 = s
					g = c * e[i]
					h = c * p
					r = math.Hypot(p, e[i])
					e[i+1] = s * r
					s = e[i] / r
					c = p / r
					p = c*d[i] - s*g
					d[i+1] = h + s*(c*g+s*d[i])
					cs[nrot], sn[nrot] = c, s
					nrot++
				}
				applyGivens(vt, m-1, cs[:nrot], sn[:nrot])
				p = -s * s2 * c3 * el1 * e[l] / dl1
				e[l] = s * p
				d[l] = c * p
				if math.Abs(e[l]) <= eps*tst1 {
					break
				}
			}
		}
		d[l] += f
		e[l] = 0
	}
	return nil
}
