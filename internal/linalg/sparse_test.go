package linalg

import (
	"math"
	"testing"

	"blinkml/internal/stat"
)

// randSparse draws a sorted sparse vector with nnz stored entries over dim
// (values include awkward floats so rounding differences would show).
func randSparse(rng *stat.RNG, dim, nnz int) ([]int32, []float64) {
	seen := map[int32]bool{}
	for len(seen) < nnz {
		seen[int32(rng.Intn(dim))] = true
	}
	idx := make([]int32, 0, nnz)
	for j := int32(0); int(j) < dim; j++ {
		if seen[j] {
			idx = append(idx, j)
		}
	}
	val := make([]float64, len(idx))
	for i := range val {
		val[i] = rng.Norm() / 3
	}
	return idx, val
}

func gather(dim int, idx []int32, val []float64) []float64 {
	out := make([]float64, dim)
	for i, j := range idx {
		out[j] = val[i]
	}
	return out
}

// TestSpDotMatchesDenseGather: SpDot must be bit-identical to gathering b
// into a dense scratch and running the serial dense dot with a's values on
// the left — the exact substitution the statistics kernels rely on.
func TestSpDotMatchesDenseGather(t *testing.T) {
	rng := stat.NewRNG(3)
	const dim = 64
	for trial := 0; trial < 200; trial++ {
		ai, av := randSparse(rng, dim, 1+rng.Intn(12))
		bi, bv := randSparse(rng, dim, 1+rng.Intn(12))
		got := SpDot(ai, av, bi, bv)
		scratch := gather(dim, bi, bv)
		var want float64
		for k, j := range ai {
			want += av[k] * scratch[j]
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("trial %d: SpDot %x != dense %x", trial, math.Float64bits(got), math.Float64bits(want))
		}
	}
	// Disjoint supports and empty operands.
	if got := SpDot([]int32{1, 3}, []float64{2, 4}, []int32{0, 2}, []float64{5, 6}); got != 0 {
		t.Fatalf("disjoint supports: %v", got)
	}
	if got := SpDot(nil, nil, []int32{0}, []float64{1}); got != 0 {
		t.Fatalf("empty a: %v", got)
	}
}

// TestSpOuterAddMatchesOuterAdd: accumulating a*x·xᵀ through the sparse
// kernel must leave every matrix cell bit-identical to Dense.OuterAdd on
// the densified vector, across scales including 0 and negatives.
func TestSpOuterAddMatchesOuterAdd(t *testing.T) {
	rng := stat.NewRNG(4)
	const dim = 40
	for _, a := range []float64{1, -0.3, 0.125, 0, 1e-12} {
		sp := NewDense(dim, dim)
		de := NewDense(dim, dim)
		for trial := 0; trial < 50; trial++ {
			idx, val := randSparse(rng, dim, 1+rng.Intn(8))
			if trial%7 == 0 && len(val) > 1 {
				val[0] = 0 // exercise the zero-entry skip
			}
			SpOuterAdd(sp, a, idx, val)
			x := gather(dim, idx, val)
			de.OuterAdd(a, x, x)
		}
		for i := range sp.Data {
			if math.Float64bits(sp.Data[i]) != math.Float64bits(de.Data[i]) {
				t.Fatalf("a=%v: cell %d: %x != %x", a, i, math.Float64bits(sp.Data[i]), math.Float64bits(de.Data[i]))
			}
		}
	}
}
