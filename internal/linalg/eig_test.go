package linalg

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSymEigDiagonal(t *testing.T) {
	a := NewDenseFrom(3, 3, []float64{
		2, 0, 0,
		0, 5, 0,
		0, 0, 1,
	})
	e, err := NewSymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 2, 1}
	for i, w := range want {
		if !almostEq(e.Values[i], w, tol) {
			t.Fatalf("eigenvalues %v want %v", e.Values, want)
		}
	}
}

func TestSymEigKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := NewDenseFrom(2, 2, []float64{2, 1, 1, 2})
	e, err := NewSymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(e.Values[0], 3, tol) || !almostEq(e.Values[1], 1, tol) {
		t.Fatalf("eigenvalues %v", e.Values)
	}
}

func TestSymEigEmpty(t *testing.T) {
	e, err := NewSymEig(NewDense(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Values) != 0 {
		t.Fatal("expected empty eigenvalues")
	}
}

func TestSymEigNonSquare(t *testing.T) {
	if _, err := NewSymEig(NewDense(2, 3)); err == nil {
		t.Fatal("expected error")
	}
}

// reconstructEig returns V diag(values) Vᵀ.
func reconstructEig(e *SymEig) *Dense {
	n := e.Vectors.Rows
	vd := e.Vectors.Clone()
	for j := 0; j < len(e.Values); j++ {
		for i := 0; i < n; i++ {
			vd.Set(i, j, vd.At(i, j)*e.Values[j])
		}
	}
	return MatMulTransB(vd, e.Vectors)
}

// Property: eigendecomposition reconstructs the matrix, eigenvectors are
// orthonormal, and eigenvalues are sorted descending.
func TestSymEigProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(12)
		a := randDense(r, n, n)
		a.Symmetrize()
		e, err := NewSymEig(a)
		if err != nil {
			return false
		}
		if !sort.IsSorted(sort.Reverse(sort.Float64Slice(e.Values))) {
			return false
		}
		if !densesAlmostEqual(reconstructEig(e), a, 1e-7) {
			return false
		}
		// VᵀV == I.
		return densesAlmostEqual(MatMulTransA(e.Vectors, e.Vectors), Identity(n), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: trace(A) == sum of eigenvalues; eigenvalues of AᵀA+I are >= 1.
func TestSymEigTraceAndPSD(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(10)
		a := randSPD(r, n)
		e, err := NewSymEig(a)
		if err != nil {
			return false
		}
		var trace, sum float64
		for i := 0; i < n; i++ {
			trace += a.At(i, i)
			sum += e.Values[i]
			if e.Values[i] < 1-1e-8 {
				return false
			}
		}
		return almostEq(trace, sum, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSymEigEigenvectorEquation(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	n := 8
	a := randDense(r, n, n)
	a.Symmetrize()
	e, err := NewSymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < n; j++ {
		v := make([]float64, n)
		for i := 0; i < n; i++ {
			v[i] = e.Vectors.At(i, j)
		}
		av := make([]float64, n)
		a.MulVec(v, av)
		for i := 0; i < n; i++ {
			if math.Abs(av[i]-e.Values[j]*v[i]) > 1e-7 {
				t.Fatalf("A v != λ v for eigenpair %d: residual %v", j, av[i]-e.Values[j]*v[i])
			}
		}
	}
}
