package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQRSolveSquare(t *testing.T) {
	a := NewDenseFrom(2, 2, []float64{2, 1, 1, 3})
	x, err := LeastSquares(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 1, 1e-9) || !almostEq(x[1], 3, 1e-9) {
		t.Fatalf("x=%v", x)
	}
}

func TestQRRejectsWide(t *testing.T) {
	if _, err := NewQR(NewDense(2, 3)); err == nil {
		t.Fatal("wide matrix accepted")
	}
}

func TestQRRankDeficient(t *testing.T) {
	a := NewDenseFrom(3, 2, []float64{1, 2, 2, 4, 3, 6}) // col2 = 2*col1
	f, err := NewQR(a)
	if err != nil {
		t.Fatal(err)
	}
	if f.FullRank() {
		t.Fatal("rank deficiency not detected")
	}
	if err := f.Solve([]float64{1, 2, 3}, make([]float64, 2)); err != ErrSingular {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

// Property: for consistent overdetermined systems, QR recovers the exact
// solution; for noisy ones, the residual is orthogonal to the columns.
func TestQRLeastSquaresProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 6 + r.Intn(20)
		n := 1 + r.Intn(5)
		a := randDense(r, m, n)
		truth := randVec(r, n)
		b := make([]float64, m)
		a.MulVec(truth, b)
		x, err := LeastSquares(a, b)
		if err != nil {
			return false
		}
		for i := range truth {
			if math.Abs(x[i]-truth[i]) > 1e-7 {
				return false
			}
		}
		// Noisy system: residual must be orthogonal to range(A).
		for i := range b {
			b[i] += r.NormFloat64()
		}
		x, err = LeastSquares(a, b)
		if err != nil {
			return false
		}
		resid := make([]float64, m)
		a.MulVec(x, resid)
		Sub(resid, b, resid)
		atr := make([]float64, n)
		a.MulTransVec(resid, atr)
		return NormInf(atr) < 1e-7*(1+Norm2(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Ridge least squares must match the normal-equation solution
// (AᵀA/m + βI)x = Aᵀb/m.
func TestRidgeLeastSquaresMatchesNormalEquations(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	m, n := 40, 5
	a := randDense(r, m, n)
	b := randVec(r, m)
	beta := 0.3
	x, err := RidgeLeastSquares(a, b, beta)
	if err != nil {
		t.Fatal(err)
	}
	lhs := MatMulTransA(a, a)
	lhs.ScaleInPlace(1 / float64(m))
	lhs.AddDiag(beta)
	rhs := make([]float64, n)
	a.MulTransVec(b, rhs)
	Scale(1/float64(m), rhs)
	want, err := SolveLinear(lhs, rhs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-8 {
			t.Fatalf("ridge x[%d]=%v want %v", i, x[i], want[i])
		}
	}
	// β=0 falls back to ordinary least squares.
	x0, err := RidgeLeastSquares(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	ols, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ols {
		if x0[i] != ols[i] {
			t.Fatal("β=0 ridge differs from OLS")
		}
	}
}
