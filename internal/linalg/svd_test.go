package linalg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestThinSVDKnownDiagonal(t *testing.T) {
	a := NewDenseFrom(3, 2, []float64{
		3, 0,
		0, 2,
		0, 0,
	})
	s, err := NewThinSVD(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Rank() != 2 {
		t.Fatalf("rank=%d want 2", s.Rank())
	}
	if !almostEq(s.S[0], 3, tol) || !almostEq(s.S[1], 2, tol) {
		t.Fatalf("singular values %v", s.S)
	}
}

func TestThinSVDRankDeficient(t *testing.T) {
	// Rank-1 matrix: outer product.
	a := NewDense(4, 3)
	a.OuterAdd(1, []float64{1, 2, 3, 4}, []float64{1, 1, 1})
	s, err := NewThinSVD(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Rank() != 1 {
		t.Fatalf("rank=%d want 1 (S=%v)", s.Rank(), s.S)
	}
	if !densesAlmostEqual(s.Reconstruct(), a, 1e-8) {
		t.Fatal("rank-1 reconstruction failed")
	}
}

// Property: thin SVD reconstructs the matrix and both factors have
// orthonormal columns — for tall, wide, and square shapes.
func TestThinSVDProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := 1 + r.Intn(12)
		cols := 1 + r.Intn(12)
		a := randDense(r, rows, cols)
		s, err := NewThinSVD(a, 0)
		if err != nil {
			return false
		}
		if !densesAlmostEqual(s.Reconstruct(), a, 1e-6) {
			return false
		}
		k := s.Rank()
		if !densesAlmostEqual(MatMulTransA(s.U, s.U), Identity(k), 1e-7) {
			return false
		}
		if !densesAlmostEqual(MatMulTransA(s.V, s.V), Identity(k), 1e-7) {
			return false
		}
		// Descending singular values, all positive.
		for i := 0; i < k; i++ {
			if s.S[i] <= 0 {
				return false
			}
			if i > 0 && s.S[i] > s.S[i-1]+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: singular values of A match the square roots of the eigenvalues
// of AᵀA.
func TestThinSVDAgreesWithEig(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	a := randDense(r, 9, 5)
	s, err := NewThinSVD(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewSymEig(MatMulTransA(a, a))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.Rank(); i++ {
		if !almostEq(s.S[i]*s.S[i], e.Values[i], 1e-7) {
			t.Fatalf("s[%d]²=%v eig=%v", i, s.S[i]*s.S[i], e.Values[i])
		}
	}
}

func TestThinSVDWideMatrixUsesRowGram(t *testing.T) {
	// 3 rows, 40 cols: the Gram side must be the 3x3 row Gram matrix. Just
	// verify correctness; the cost asymmetry is what NewThinSVD exploits.
	r := rand.New(rand.NewSource(23))
	a := randDense(r, 3, 40)
	s, err := NewThinSVD(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Rank() > 3 {
		t.Fatalf("rank %d exceeds row count", s.Rank())
	}
	if !densesAlmostEqual(s.Reconstruct(), a, 1e-7) {
		t.Fatal("wide reconstruction failed")
	}
}

func TestThinSVDZeroMatrix(t *testing.T) {
	s, err := NewThinSVD(NewDense(4, 4), 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Rank() != 0 {
		t.Fatalf("zero matrix rank=%d", s.Rank())
	}
}
