package linalg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randDense(rng *rand.Rand, r, c int) *Dense {
	m := NewDense(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func densesAlmostEqual(a, b *Dense, eps float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if !almostEq(a.Data[i], b.Data[i], eps) {
			return false
		}
	}
	return true
}

func TestDenseAtSetRow(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatal("At/Set mismatch")
	}
	r := m.Row(1)
	r[0] = 9
	if m.At(1, 0) != 9 {
		t.Fatal("Row must alias storage")
	}
}

func TestIdentityAndMulVec(t *testing.T) {
	id := Identity(3)
	x := []float64{1, 2, 3}
	dst := make([]float64, 3)
	id.MulVec(x, dst)
	for i := range x {
		if dst[i] != x[i] {
			t.Fatalf("I*x != x: %v", dst)
		}
	}
}

func TestMulVecKnown(t *testing.T) {
	m := NewDenseFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	dst := make([]float64, 2)
	m.MulVec([]float64{1, 1, 1}, dst)
	if dst[0] != 6 || dst[1] != 15 {
		t.Fatalf("MulVec got %v", dst)
	}
	dt := make([]float64, 3)
	m.MulTransVec([]float64{1, 1}, dt)
	if dt[0] != 5 || dt[1] != 7 || dt[2] != 9 {
		t.Fatalf("MulTransVec got %v", dt)
	}
}

func TestMatMulKnown(t *testing.T) {
	a := NewDenseFrom(2, 2, []float64{1, 2, 3, 4})
	b := NewDenseFrom(2, 2, []float64{5, 6, 7, 8})
	c := MatMul(a, b)
	want := []float64{19, 22, 43, 50}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("MatMul got %v want %v", c.Data, want)
		}
	}
}

// Property: MatMulTransA(a,b) == MatMul(aᵀ, b) and MatMulTransB(a,b) == MatMul(a, bᵀ).
func TestMatMulTransVariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a := randDense(r, k, m)
		b := randDense(r, k, n)
		if !densesAlmostEqual(MatMulTransA(a, b), MatMul(a.T(), b), 1e-10) {
			return false
		}
		c := randDense(r, m, k)
		d := randDense(r, n, k)
		return densesAlmostEqual(MatMulTransB(c, d), MatMul(c, d.T()), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: (A*B)ᵀ == Bᵀ*Aᵀ.
func TestTransposeProduct(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a := randDense(r, m, k)
		b := randDense(r, k, n)
		return densesAlmostEqual(MatMul(a, b).T(), MatMul(b.T(), a.T()), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestTransposeInvolution(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a := randDense(r, 4, 7)
	if !densesAlmostEqual(a.T().T(), a, 0) {
		t.Error("transpose is not an involution")
	}
}

func TestAddDiagSymmetrize(t *testing.T) {
	m := NewDenseFrom(2, 2, []float64{1, 4, 2, 1})
	m.Symmetrize()
	if m.At(0, 1) != 3 || m.At(1, 0) != 3 {
		t.Fatalf("Symmetrize got %v", m.Data)
	}
	m.AddDiag(10)
	if m.At(0, 0) != 11 || m.At(1, 1) != 11 {
		t.Fatalf("AddDiag got %v", m.Data)
	}
}

func TestOuterAdd(t *testing.T) {
	m := NewDense(2, 3)
	m.OuterAdd(2, []float64{1, 2}, []float64{3, 4, 5})
	want := []float64{6, 8, 10, 12, 16, 20}
	for i, v := range want {
		if m.Data[i] != v {
			t.Fatalf("OuterAdd got %v want %v", m.Data, want)
		}
	}
}

func TestFrobenius(t *testing.T) {
	a := NewDenseFrom(2, 2, []float64{3, 0, 0, 4})
	if got := a.FrobeniusNorm(); !almostEq(got, 5, tol) {
		t.Errorf("FrobeniusNorm=%v", got)
	}
	b := NewDense(2, 2)
	if got := FrobeniusDistance(a, b); !almostEq(got, 5, tol) {
		t.Errorf("FrobeniusDistance=%v", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := NewDenseFrom(1, 2, []float64{1, 2})
	b := a.Clone()
	b.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestMulVecPanicsOnShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on shape mismatch")
		}
	}()
	NewDense(2, 3).MulVec(make([]float64, 2), make([]float64, 2))
}
