package linalg

import (
	"errors"
	"math"
)

// QR holds a Householder QR factorization A = Q*R of a tall matrix
// (Rows >= Cols), stored compactly: the upper triangle of qr holds R, the
// lower part the Householder vectors, rdiag the diagonal of R.
type QR struct {
	qr    *Dense
	rdiag []float64
}

// NewQR factors a (Rows >= Cols required). The input is not modified.
func NewQR(a *Dense) (*QR, error) {
	if a.Rows < a.Cols {
		return nil, errors.New("linalg: QR requires a tall matrix (rows >= cols)")
	}
	m, n := a.Rows, a.Cols
	qr := a.Clone()
	rdiag := make([]float64, n)
	for k := 0; k < n; k++ {
		// Householder vector for column k.
		var nrm float64
		for i := k; i < m; i++ {
			nrm = math.Hypot(nrm, qr.At(i, k))
		}
		if nrm != 0 {
			if qr.At(k, k) < 0 {
				nrm = -nrm
			}
			for i := k; i < m; i++ {
				qr.Set(i, k, qr.At(i, k)/nrm)
			}
			qr.Set(k, k, qr.At(k, k)+1)
			// Apply the reflection to the remaining columns.
			for j := k + 1; j < n; j++ {
				var s float64
				for i := k; i < m; i++ {
					s += qr.At(i, k) * qr.At(i, j)
				}
				s = -s / qr.At(k, k)
				for i := k; i < m; i++ {
					qr.Set(i, j, qr.At(i, j)+s*qr.At(i, k))
				}
			}
		}
		rdiag[k] = -nrm
	}
	return &QR{qr: qr, rdiag: rdiag}, nil
}

// FullRank reports whether R has no (numerically) zero diagonal entries,
// judged relative to the largest one (exact collinearity leaves rounding
// residue, not exact zeros).
func (f *QR) FullRank() bool {
	var maxAbs float64
	for _, d := range f.rdiag {
		if a := math.Abs(d); a > maxAbs {
			maxAbs = a
		}
	}
	tol := 1e-12 * maxAbs
	for _, d := range f.rdiag {
		if math.Abs(d) <= tol {
			return false
		}
	}
	return true
}

// Solve computes the least-squares solution x minimizing ‖A·x − b‖₂,
// writing it into dst (len = Cols). Returns ErrSingular when A is
// rank-deficient.
func (f *QR) Solve(b, dst []float64) error {
	m, n := f.qr.Rows, f.qr.Cols
	if len(b) != m || len(dst) != n {
		return errors.New("linalg: QR.Solve dimension mismatch")
	}
	if !f.FullRank() {
		return ErrSingular
	}
	y := CopyVec(b)
	// Compute Qᵀb.
	for k := 0; k < n; k++ {
		if f.qr.At(k, k) == 0 {
			continue
		}
		var s float64
		for i := k; i < m; i++ {
			s += f.qr.At(i, k) * y[i]
		}
		s = -s / f.qr.At(k, k)
		for i := k; i < m; i++ {
			y[i] += s * f.qr.At(i, k)
		}
	}
	// Back-substitute R x = (Qᵀb)[:n].
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= f.qr.At(i, j) * dst[j]
		}
		dst[i] = s / f.rdiag[i]
	}
	return nil
}

// LeastSquares solves min ‖A·x − b‖₂ via QR, the numerically stable direct
// method for linear regression (an alternative to the iterative trainers,
// used by tests as an exact oracle).
func LeastSquares(a *Dense, b []float64) ([]float64, error) {
	f, err := NewQR(a)
	if err != nil {
		return nil, err
	}
	x := make([]float64, a.Cols)
	if err := f.Solve(b, x); err != nil {
		return nil, err
	}
	return x, nil
}

// RidgeLeastSquares solves min ‖A·x − b‖² + n·β‖x‖²/... precisely: the
// Tikhonov system stacking √(n·β)·I below A, matching the mean-loss
// convention f = (1/2n)‖Ax−b‖² + (β/2)‖x‖² used by the linear model.
func RidgeLeastSquares(a *Dense, b []float64, beta float64) ([]float64, error) {
	if beta <= 0 {
		return LeastSquares(a, b)
	}
	m, n := a.Rows, a.Cols
	stacked := NewDense(m+n, n)
	copy(stacked.Data[:m*n], a.Data)
	s := math.Sqrt(beta * float64(m))
	for i := 0; i < n; i++ {
		stacked.Set(m+i, i, s)
	}
	rhs := make([]float64, m+n)
	copy(rhs, b)
	return LeastSquares(stacked, rhs)
}
