package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const tol = 1e-9

func almostEq(a, b, eps float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	diff := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return diff <= eps*scale
}

func TestDot(t *testing.T) {
	cases := []struct {
		x, y []float64
		want float64
	}{
		{nil, nil, 0},
		{[]float64{1}, []float64{2}, 2},
		{[]float64{1, 2, 3}, []float64{4, 5, 6}, 32},
		{[]float64{-1, 0.5}, []float64{2, 4}, 0},
	}
	for _, c := range cases {
		if got := Dot(c.x, c.y); !almostEq(got, c.want, tol) {
			t.Errorf("Dot(%v,%v)=%v want %v", c.x, c.y, got, c.want)
		}
	}
}

func TestAxpyAndScale(t *testing.T) {
	y := []float64{1, 2, 3}
	Axpy(2, []float64{10, 20, 30}, y)
	want := []float64{21, 42, 63}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Axpy: got %v want %v", y, want)
		}
	}
	Scale(0.5, y)
	want = []float64{10.5, 21, 31.5}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Scale: got %v want %v", y, want)
		}
	}
}

func TestAxpyZeroAIsNoop(t *testing.T) {
	y := []float64{1, 2}
	Axpy(0, []float64{100, 100}, y)
	if y[0] != 1 || y[1] != 2 {
		t.Fatalf("Axpy with a=0 modified y: %v", y)
	}
}

func TestNorm2(t *testing.T) {
	if got := Norm2([]float64{3, 4}); !almostEq(got, 5, tol) {
		t.Errorf("Norm2(3,4)=%v want 5", got)
	}
	if got := Norm2(nil); got != 0 {
		t.Errorf("Norm2(nil)=%v want 0", got)
	}
	// Overflow guard: naive sum of squares would overflow here.
	big := []float64{1e200, 1e200}
	if got := Norm2(big); math.IsInf(got, 0) || !almostEq(got, 1e200*math.Sqrt2, 1e-9) {
		t.Errorf("Norm2 overflow guard failed: %v", got)
	}
}

func TestNormInf(t *testing.T) {
	if got := NormInf([]float64{1, -7, 3}); got != 7 {
		t.Errorf("NormInf=%v want 7", got)
	}
	if got := NormInf(nil); got != 0 {
		t.Errorf("NormInf(nil)=%v want 0", got)
	}
}

func TestSubAdd(t *testing.T) {
	dst := make([]float64, 2)
	Sub(dst, []float64{5, 7}, []float64{2, 3})
	if dst[0] != 3 || dst[1] != 4 {
		t.Fatalf("Sub got %v", dst)
	}
	Add(dst, dst, []float64{1, 1})
	if dst[0] != 4 || dst[1] != 5 {
		t.Fatalf("Add got %v", dst)
	}
}

func TestCosine(t *testing.T) {
	if got := Cosine([]float64{1, 0}, []float64{0, 1}); !almostEq(got, 0, tol) {
		t.Errorf("orthogonal cosine=%v", got)
	}
	if got := Cosine([]float64{2, 2}, []float64{1, 1}); !almostEq(got, 1, tol) {
		t.Errorf("parallel cosine=%v", got)
	}
	if got := Cosine([]float64{1, 1}, []float64{-1, -1}); !almostEq(got, -1, tol) {
		t.Errorf("antiparallel cosine=%v", got)
	}
	if got := Cosine([]float64{0, 0}, []float64{1, 1}); got != 0 {
		t.Errorf("zero-vector cosine=%v want 0", got)
	}
}

func TestAllFinite(t *testing.T) {
	if !AllFinite([]float64{1, -2, 0}) {
		t.Error("finite slice reported non-finite")
	}
	if AllFinite([]float64{1, math.NaN()}) {
		t.Error("NaN not detected")
	}
	if AllFinite([]float64{math.Inf(1)}) {
		t.Error("Inf not detected")
	}
}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// Property: Dot is symmetric and bilinear in its first argument.
func TestDotProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(16)
		x, y, z := randVec(r, n), randVec(r, n), randVec(r, n)
		a := r.NormFloat64()
		if !almostEq(Dot(x, y), Dot(y, x), 1e-12) {
			return false
		}
		// Dot(a*x + z, y) == a*Dot(x,y) + Dot(z,y)
		ax := CopyVec(z)
		Axpy(a, x, ax)
		return almostEq(Dot(ax, y), a*Dot(x, y)+Dot(z, y), 1e-9)
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: ‖x‖₂² == Dot(x, x) and Cauchy-Schwarz |Dot(x,y)| <= ‖x‖‖y‖.
func TestNormProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(16)
		x, y := randVec(r, n), randVec(r, n)
		n2 := Norm2(x)
		if !almostEq(n2*n2, Dot(x, x), 1e-9) {
			return false
		}
		return math.Abs(Dot(x, y)) <= Norm2(x)*Norm2(y)*(1+1e-12)+1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
