package linalg

// Sparse kernels for the statistics hot path. Both routines are written to
// be bit-identical to their dense counterparts on the same data: skipping a
// zero term only ever removes an exact `s += 0` from the accumulation, and
// every surviving term is computed with the same expression — and consumed
// in the same order — as the dense loop it replaces.

// SpDot returns the inner product of two sparse vectors given as sorted
// (index, value) pairs with strictly increasing indices. The accumulation
// visits matching indices in ascending order, so the result is bit-identical
// to gathering either vector into a dense scratch and calling the other's
// Dot against it (zero terms there add exact +0 and cannot change the sum).
// The product is formed as av*bv — a's value first — matching the dense
// convention row.Dot(scratch) where row supplies the left operand.
func SpDot(ai []int32, av []float64, bi []int32, bv []float64) float64 {
	var s float64
	na, nb := len(ai), len(bi)
	var ka, kb int
	for ka < na && kb < nb {
		ia, ib := ai[ka], bi[kb]
		switch {
		case ia == ib:
			s += av[ka] * bv[kb]
			ka++
			kb++
		case ia < ib:
			ka++
		default:
			kb++
		}
	}
	return s
}

// SpOuterAdd accumulates m += a * x·xᵀ for a sparse x with sorted indices,
// touching only the nnz x nnz stored block. It replicates Dense.OuterAdd's
// rounding exactly: the scale s = a*x_i is formed once per row and each
// entry receives m[i][j] += s*x_j, with the same zero-skip guards
// (x_i == 0 and s == 0) the dense path applies via OuterAdd and Axpy.
func SpOuterAdd(m *Dense, a float64, idx []int32, val []float64) {
	for ki, i := range idx {
		xv := val[ki]
		if xv == 0 {
			continue
		}
		s := a * xv
		if s == 0 {
			continue
		}
		row := m.Row(int(i))
		for kj, j := range idx {
			row[j] += s * val[kj]
		}
	}
}
