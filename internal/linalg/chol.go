package linalg

import (
	"errors"
	"math"
)

// ErrNotPositiveDefinite is returned by NewCholesky when the input is not
// (numerically) positive definite.
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// Cholesky holds the lower-triangular factor L with A = L*Lᵀ.
type Cholesky struct {
	L *Dense
}

// NewCholesky factors the symmetric positive-definite matrix a (only the
// lower triangle is read). The input is not modified.
func NewCholesky(a *Dense) (*Cholesky, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("linalg: Cholesky of non-square matrix")
	}
	n := a.Rows
	l := NewDense(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j) - Dot(l.Row(j)[:j], l.Row(j)[:j])
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotPositiveDefinite
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			v := (a.At(i, j) - Dot(l.Row(i)[:j], l.Row(j)[:j])) / ljj
			l.Set(i, j, v)
		}
	}
	return &Cholesky{L: l}, nil
}

// NewCholeskyJittered retries the factorization with geometrically growing
// diagonal jitter until it succeeds (or maxTries is exhausted). It returns
// the factor and the jitter that was finally applied. BlinkML uses this for
// the ClosedForm and InverseGradients covariance paths, where sampling noise
// can make an asymptotically-PSD matrix slightly indefinite.
func NewCholeskyJittered(a *Dense, initial float64, maxTries int) (*Cholesky, float64, error) {
	jitter := 0.0
	work := a.Clone()
	for try := 0; try <= maxTries; try++ {
		c, err := NewCholesky(work)
		if err == nil {
			return c, jitter, nil
		}
		if try == maxTries {
			break
		}
		add := initial
		if jitter > 0 {
			add = jitter * 9 // total jitter becomes 10x the previous
		}
		work.AddDiag(add)
		jitter += add
	}
	return nil, jitter, ErrNotPositiveDefinite
}

// Solve computes x with A*x = b, writing into dst. dst may alias b.
func (c *Cholesky) Solve(b, dst []float64) {
	n := c.L.Rows
	if len(b) != n || len(dst) != n {
		panic("linalg: Cholesky.Solve dimension mismatch")
	}
	y := make([]float64, n)
	// Forward: L*y = b.
	for i := 0; i < n; i++ {
		y[i] = (b[i] - Dot(c.L.Row(i)[:i], y[:i])) / c.L.At(i, i)
	}
	// Backward: Lᵀ*x = y.
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= c.L.At(k, i) * y[k]
		}
		y[i] = s / c.L.At(i, i)
	}
	copy(dst, y)
}

// MulVec computes dst = L*z, used to map standard-normal draws to draws
// with covariance L*Lᵀ.
func (c *Cholesky) MulVec(z, dst []float64) {
	n := c.L.Rows
	if len(z) != n || len(dst) != n {
		panic("linalg: Cholesky.MulVec dimension mismatch")
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = Dot(c.L.Row(i)[:i+1], z[:i+1])
	}
	copy(dst, out)
}

// LogDet returns log det(A) = 2*sum(log L_ii).
func (c *Cholesky) LogDet() float64 {
	var s float64
	for i := 0; i < c.L.Rows; i++ {
		s += math.Log(c.L.At(i, i))
	}
	return 2 * s
}
