package linalg

import (
	"math/rand"
	"sync"
	"testing"

	"blinkml/internal/compute"
)

// Naive reference kernels (the pre-refactor triple loops). The blocked
// kernels preserve the per-element accumulation order, so for finite
// inputs the comparison below is exact, not approximate.

func matMulNaive(a, b *Dense) *Dense {
	c := NewDense(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			Axpy(av, b.Row(k), crow)
		}
	}
	return c
}

func matMulTransANaive(a, b *Dense) *Dense {
	c := NewDense(a.Cols, b.Cols)
	for k := 0; k < a.Rows; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			Axpy(av, brow, c.Row(i))
		}
	}
	return c
}

func matMulTransBNaive(a, b *Dense) *Dense {
	c := NewDense(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for j := 0; j < b.Rows; j++ {
			crow[j] = Dot(arow, b.Row(j))
		}
	}
	return c
}

// withDegree runs fn at a fixed pool parallelism, restoring it after.
func withDegree(t *testing.T, p int, fn func()) {
	t.Helper()
	prev := compute.Parallelism()
	compute.SetParallelism(p)
	defer compute.SetParallelism(prev)
	fn()
}

// sparsify zeroes a fraction of entries so the skip-zero fast paths and
// the mixed-zero unrolled blocks are both exercised.
func sparsify(rng *rand.Rand, m *Dense, frac float64) {
	for i := range m.Data {
		if rng.Float64() < frac {
			m.Data[i] = 0
		}
	}
}

func requireEqualDense(t *testing.T, name string, got, want *Dense) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i, v := range want.Data {
		if got.Data[i] != v {
			t.Fatalf("%s: element %d = %v, want %v (not bit-identical)", name, i, got.Data[i], v)
		}
	}
}

// The blocked kernels must agree exactly with the naive references at
// degenerate and off-block shapes, serial and parallel alike.
func TestBlockedKernelsMatchNaive(t *testing.T) {
	shapes := []struct{ m, k, n int }{
		{1, 1, 1},    // scalar
		{1, 7, 1},    // inner only
		{3, 1, 5},    // rank-1
		{129, 3, 2},  // tall-thin
		{2, 3, 129},  // wide
		{15, 16, 17}, // block-size −1 / ±0 / +1
		{64, 64, 64}, // exact blocks
		{65, 63, 66}, // blocks ±1
		{5, 4096, 3}, // long shared dimension (forces many chunks)
	}
	for _, p := range []int{1, 4} {
		withDegree(t, p, func() {
			rng := rand.New(rand.NewSource(int64(100 + p)))
			for _, sh := range shapes {
				a := randDense(rng, sh.m, sh.k)
				b := randDense(rng, sh.k, sh.n)
				sparsify(rng, a, 0.3)
				requireEqualDense(t, "MatMul", MatMul(a, b), matMulNaive(a, b))

				at := randDense(rng, sh.k, sh.m) // shared dim first for Aᵀ·B
				sparsify(rng, at, 0.3)
				requireEqualDense(t, "MatMulTransA", MatMulTransA(at, b), matMulTransANaive(at, b))

				bt := randDense(rng, sh.n, sh.k) // B with rows to dot against
				requireEqualDense(t, "MatMulTransB", MatMulTransB(a, bt), matMulTransBNaive(a, bt))
			}
		})
	}
}

func TestSyrkMatchesMatMulTrans(t *testing.T) {
	for _, p := range []int{1, 4} {
		withDegree(t, p, func() {
			rng := rand.New(rand.NewSource(int64(200 + p)))
			for _, sh := range []struct{ m, k int }{
				{1, 1}, {1, 9}, {9, 1}, {17, 5}, {64, 64}, {65, 63}, {33, 200},
			} {
				a := randDense(rng, sh.m, sh.k)
				sparsify(rng, a, 0.25)
				requireEqualDense(t, "Syrk", Syrk(a), matMulTransBNaive(a, a))
				requireEqualDense(t, "SyrkT", SyrkT(a), matMulTransANaive(a, a))
			}
		})
	}
}

// At a fixed parallelism degree the kernels must be bit-deterministic
// across repeated runs.
func TestKernelsDeterministicAtFixedDegree(t *testing.T) {
	withDegree(t, 4, func() {
		rng := rand.New(rand.NewSource(7))
		a := randDense(rng, 120, 80)
		b := randDense(rng, 80, 90)
		first := MatMul(a, b)
		for rep := 0; rep < 3; rep++ {
			requireEqualDense(t, "MatMul-determinism", MatMul(a, b), first)
		}
		g := SyrkT(a)
		for rep := 0; rep < 3; rep++ {
			requireEqualDense(t, "SyrkT-determinism", SyrkT(a), g)
		}
	})
}

// Concurrent Gram computations from many goroutines (the multi-job serve
// pattern) must be safe and consistent; run under -race in CI.
func TestConcurrentGramCalls(t *testing.T) {
	withDegree(t, 4, func() {
		rng := rand.New(rand.NewSource(8))
		a := randDense(rng, 60, 150)
		want := Syrk(a)
		wantT := SyrkT(a)
		var wg sync.WaitGroup
		for j := 0; j < 8; j++ {
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				for rep := 0; rep < 5; rep++ {
					var got *Dense
					var ref *Dense
					if j%2 == 0 {
						got, ref = Syrk(a), want
					} else {
						got, ref = SyrkT(a), wantT
					}
					for i, v := range ref.Data {
						if got.Data[i] != v {
							t.Errorf("goroutine %d: concurrent Gram diverged at %d", j, i)
							return
						}
					}
				}
			}(j)
		}
		wg.Wait()
	})
}

func TestSolveMatTransMatchesSolveMat(t *testing.T) {
	withDegree(t, 4, func() {
		rng := rand.New(rand.NewSource(9))
		a := randSPD(rng, 40)
		b := randDense(rng, 25, 40) // X solves A·X = Bᵀ (40x25)
		f, err := NewLU(a)
		if err != nil {
			t.Fatal(err)
		}
		requireEqualDense(t, "SolveMatTrans", f.SolveMatTrans(b), f.SolveMat(b.T()))
	})
}
