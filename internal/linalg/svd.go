package linalg

import "math"

// ThinSVD holds a thin singular value decomposition A = U * diag(S) * Vᵀ
// with only the leading rank components kept (singular values below a
// relative tolerance are dropped).
type ThinSVD struct {
	U *Dense    // a.Rows x rank, orthonormal columns
	S []float64 // rank singular values, descending
	V *Dense    // a.Cols x rank, orthonormal columns
}

// Rank returns the numerical rank kept in the decomposition.
func (s *ThinSVD) Rank() int { return len(s.S) }

// NewThinSVD computes a thin SVD of a through the Gram matrix of the
// smaller side: when Cols <= Rows it eigendecomposes AᵀA (Cols x Cols),
// otherwise AAᵀ (Rows x Rows), then recovers the other factor by a single
// matrix product. The cost is O(min(r,c)³ + r·c·min(r,c)), which is the
// O(min(n²d, nd²)) ObservedFisher bound claimed in the paper (§3.4).
//
// relTol drops singular values below relTol * s_max; pass 0 for the default
// (1e-10). The dropped directions correspond to the null space of the
// per-example gradient matrix, where the Fisher information carries no
// signal.
func NewThinSVD(a *Dense, relTol float64) (*ThinSVD, error) {
	if relTol <= 0 {
		relTol = 1e-10
	}
	if a.Cols <= a.Rows {
		return svdViaGram(a, relTol, false)
	}
	return svdViaGram(a, relTol, true)
}

// svdViaGram eigendecomposes the Gram matrix of the smaller side. When
// transposed is false the small side is the columns (AᵀA); when true the
// small side is the rows (AAᵀ).
func svdViaGram(a *Dense, relTol float64, transposed bool) (*ThinSVD, error) {
	var gram *Dense
	if transposed {
		gram = Syrk(a) // A*Aᵀ, Rows x Rows
	} else {
		gram = SyrkT(a) // Aᵀ*A, Cols x Cols
	}
	eig, err := NewSymEig(gram)
	if err != nil {
		return nil, err
	}
	n := len(eig.Values)
	// Numerical rank: eigenvalues are s², so the cutoff is (relTol*sMax)².
	sMax := 0.0
	if n > 0 && eig.Values[0] > 0 {
		sMax = math.Sqrt(eig.Values[0])
	}
	cut := relTol * sMax
	rank := 0
	for rank < n {
		ev := eig.Values[rank]
		if ev <= 0 || math.Sqrt(ev) <= cut {
			break
		}
		rank++
	}
	s := make([]float64, rank)
	small := NewDense(gram.Rows, rank) // eigenvectors of the Gram side
	for j := 0; j < rank; j++ {
		s[j] = math.Sqrt(eig.Values[j])
		for i := 0; i < gram.Rows; i++ {
			small.Set(i, j, eig.Vectors.At(i, j))
		}
	}
	// Recover the big-side factor: big = A*small*diag(1/s) (or Aᵀ…).
	var big *Dense
	if transposed {
		big = MatMulTransA(a, small) // Aᵀ * U_rows → Cols x rank (this is V)
	} else {
		big = MatMul(a, small) // A * V → Rows x rank (this is U)
	}
	for j := 0; j < rank; j++ {
		inv := 1 / s[j]
		for i := 0; i < big.Rows; i++ {
			big.Set(i, j, big.At(i, j)*inv)
		}
	}
	if transposed {
		return &ThinSVD{U: small, S: s, V: big}, nil
	}
	return &ThinSVD{U: big, S: s, V: small}, nil
}

// Reconstruct returns U * diag(S) * Vᵀ, primarily for testing.
func (s *ThinSVD) Reconstruct() *Dense {
	us := s.U.Clone()
	for j, sv := range s.S {
		for i := 0; i < us.Rows; i++ {
			us.Set(i, j, us.At(i, j)*sv)
		}
	}
	return MatMulTransB(us, s.V)
}
