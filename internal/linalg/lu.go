package linalg

import (
	"errors"
	"math"
	"time"

	"blinkml/internal/compute"
	"blinkml/internal/obs"
)

// ErrSingular is returned when a factorization encounters an (effectively)
// singular matrix.
var ErrSingular = errors.New("linalg: matrix is singular to working precision")

// LU holds an LU factorization with partial pivoting: P*A = L*U, stored
// compactly in lu (unit lower triangle implicit).
type LU struct {
	lu   *Dense
	piv  []int
	sign float64
}

// NewLU factors the square matrix a. The input is not modified.
func NewLU(a *Dense) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("linalg: LU of non-square matrix")
	}
	n := a.Rows
	// Right-looking LU with partial pivoting: ~(2/3)n^3 flops.
	defer obs.ChargeKernel(time.Now(), 2*int64(n)*int64(n)*int64(n)/3)
	f := &LU{lu: a.Clone(), piv: make([]int, n), sign: 1}
	lu := f.lu
	for i := range f.piv {
		f.piv[i] = i
	}
	for k := 0; k < n; k++ {
		// Partial pivot: largest |value| in column k at/below the diagonal.
		p, maxAbs := k, math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu.At(i, k)); a > maxAbs {
				p, maxAbs = i, a
			}
		}
		if maxAbs == 0 {
			return nil, ErrSingular
		}
		if p != k {
			rk, rp := lu.Row(k), lu.Row(p)
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			f.piv[k], f.piv[p] = f.piv[p], f.piv[k]
			f.sign = -f.sign
		}
		pivot := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pivot
			lu.Set(i, k, m)
			if m != 0 {
				Axpy(-m, lu.Row(k)[k+1:], lu.Row(i)[k+1:])
			}
		}
	}
	return f, nil
}

// Solve computes x such that A*x = b, writing into dst (len n). dst may
// alias b.
func (f *LU) Solve(b, dst []float64) {
	n := f.lu.Rows
	if len(b) != n || len(dst) != n {
		panic("linalg: LU.Solve dimension mismatch")
	}
	// Apply permutation.
	x := make([]float64, n)
	for i, p := range f.piv {
		x[i] = b[p]
	}
	// Forward substitution with unit lower triangle.
	for i := 1; i < n; i++ {
		x[i] -= Dot(f.lu.Row(i)[:i], x[:i])
	}
	// Back substitution with upper triangle.
	for i := n - 1; i >= 0; i-- {
		x[i] -= Dot(f.lu.Row(i)[i+1:], x[i+1:])
		x[i] /= f.lu.At(i, i)
	}
	copy(dst, x)
}

// SolveMat solves A*X = B column by column and returns X. Columns are
// independent triangular solves, so they run in parallel on the compute
// pool.
func (f *LU) SolveMat(b *Dense) *Dense {
	n := f.lu.Rows
	if b.Rows != n {
		panic("linalg: LU.SolveMat dimension mismatch")
	}
	// One triangular solve pair per column: 2n^2 flops each.
	defer obs.ChargeKernel(time.Now(), 2*int64(n)*int64(n)*int64(b.Cols))
	x := NewDense(n, b.Cols)
	compute.For(b.Cols, rowGrain(n*n), func(jlo, jhi int) {
		col := make([]float64, n)
		sol := make([]float64, n)
		for j := jlo; j < jhi; j++ {
			for i := 0; i < n; i++ {
				col[i] = b.At(i, j)
			}
			f.Solve(col, sol)
			for i := 0; i < n; i++ {
				x.Set(i, j, sol[i])
			}
		}
	})
	return x
}

// SolveMatTrans solves A*X = Bᵀ and returns X, reading B's rows directly
// as right-hand sides — the transpose is never materialized, which keeps
// the H⁻¹JH⁻¹ factorization path free of d x d copies.
func (f *LU) SolveMatTrans(b *Dense) *Dense {
	n := f.lu.Rows
	if b.Cols != n {
		panic("linalg: LU.SolveMatTrans dimension mismatch")
	}
	defer obs.ChargeKernel(time.Now(), 2*int64(n)*int64(n)*int64(b.Rows))
	x := NewDense(n, b.Rows)
	compute.For(b.Rows, rowGrain(n*n), func(jlo, jhi int) {
		sol := make([]float64, n)
		for j := jlo; j < jhi; j++ {
			f.Solve(b.Row(j), sol)
			for i := 0; i < n; i++ {
				x.Set(i, j, sol[i])
			}
		}
	})
	return x
}

// Inverse returns A⁻¹.
func (f *LU) Inverse() *Dense {
	return f.SolveMat(Identity(f.lu.Rows))
}

// Det returns det(A).
func (f *LU) Det() float64 {
	d := f.sign
	for i := 0; i < f.lu.Rows; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// SolveLinear is a convenience wrapper: solves a*x = b for x.
func SolveLinear(a *Dense, b []float64) ([]float64, error) {
	f, err := NewLU(a)
	if err != nil {
		return nil, err
	}
	x := make([]float64, len(b))
	f.Solve(b, x)
	return x, nil
}

// Inverse returns a⁻¹ for square a.
func Inverse(a *Dense) (*Dense, error) {
	f, err := NewLU(a)
	if err != nil {
		return nil, err
	}
	return f.Inverse(), nil
}
