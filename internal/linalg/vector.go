package linalg

import "math"

// Dot returns the inner product of x and y. The slices must have equal
// length; this is the caller's responsibility (checked in debug builds via
// tests rather than per-call branching, since Dot sits on the hot path).
func Dot(x, y []float64) float64 {
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Axpy computes y += a*x in place.
func Axpy(a float64, x, y []float64) {
	if a == 0 {
		return
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// Scale multiplies every element of x by a, in place.
func Scale(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// Norm2 returns the Euclidean norm of x, guarding against overflow for
// large components by scaling.
func Norm2(x []float64) float64 {
	var scale, ssq float64 = 0, 1
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// NormInf returns the maximum absolute element of x (0 for empty x).
func NormInf(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// CopyVec returns a fresh copy of x.
func CopyVec(x []float64) []float64 {
	y := make([]float64, len(x))
	copy(y, x)
	return y
}

// Fill sets every element of x to a.
func Fill(x []float64, a float64) {
	for i := range x {
		x[i] = a
	}
}

// Sub computes dst = x - y. dst may alias x or y.
func Sub(dst, x, y []float64) {
	for i := range dst {
		dst[i] = x[i] - y[i]
	}
}

// Add computes dst = x + y. dst may alias x or y.
func Add(dst, x, y []float64) {
	for i := range dst {
		dst[i] = x[i] + y[i]
	}
}

// Cosine returns the cosine similarity of x and y, or 0 if either vector is
// zero. BlinkML uses 1 - Cosine as the PPCA model-difference metric
// (Appendix C of the paper).
func Cosine(x, y []float64) float64 {
	nx, ny := Norm2(x), Norm2(y)
	if nx == 0 || ny == 0 {
		return 0
	}
	c := Dot(x, y) / (nx * ny)
	// Clamp rounding noise so downstream 1-c stays in [0, 2].
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return c
}

// AllFinite reports whether every element of x is finite.
func AllFinite(x []float64) bool {
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}
