package linalg

import (
	"fmt"
	"math"
	"time"

	"blinkml/internal/compute"
	"blinkml/internal/obs"
)

// Dense is a row-major dense matrix. The zero value is an empty matrix;
// use NewDense to allocate one with a shape.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewDense allocates a Rows x Cols zero matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative dimension %dx%d", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewDenseFrom wraps data (row-major) without copying. len(data) must be
// rows*cols.
func NewDenseFrom(rows, cols int, data []float64) *Dense {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("linalg: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: data}
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	return &Dense{Rows: m.Rows, Cols: m.Cols, Data: CopyVec(m.Data)}
}

// T returns the transpose as a new matrix.
func (m *Dense) T() *Dense {
	t := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// MulVec computes dst = M * x. dst must have length M.Rows and must not
// alias x.
func (m *Dense) MulVec(x, dst []float64) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("linalg: MulVec shape mismatch (%dx%d)*%d->%d", m.Rows, m.Cols, len(x), len(dst)))
	}
	for i := 0; i < m.Rows; i++ {
		dst[i] = Dot(m.Row(i), x)
	}
}

// MulTransVec computes dst = Mᵀ * x. dst must have length M.Cols and must
// not alias x.
func (m *Dense) MulTransVec(x, dst []float64) {
	if len(x) != m.Rows || len(dst) != m.Cols {
		panic(fmt.Sprintf("linalg: MulTransVec shape mismatch (%dx%d)ᵀ*%d->%d", m.Rows, m.Cols, len(x), len(dst)))
	}
	Fill(dst, 0)
	for i := 0; i < m.Rows; i++ {
		Axpy(x[i], m.Row(i), dst)
	}
}

// rowGrain returns the minimum number of output rows per parallel chunk
// so that each chunk carries at least ~32k multiply-adds; it depends only
// on the per-row cost, keeping the chunk decomposition deterministic.
func rowGrain(flopsPerRow int) int {
	if flopsPerRow < 1 {
		flopsPerRow = 1
	}
	g := (1 << 15) / flopsPerRow
	if g < 1 {
		g = 1
	}
	return g
}

// MatMul returns A * B as a new matrix. Rows of C are computed in
// parallel on the compute pool; within a row the k dimension is walked in
// ascending order (blocked four-wide for cache reuse of C's row), so each
// output element accumulates its sum in the same order as the naive ikj
// kernel and the result is bit-identical to it for finite inputs at any
// parallelism degree.
func MatMul(a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: MatMul shape mismatch (%dx%d)*(%dx%d)", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	// 2mnk multiply-adds; the flop count is shape-derived, so the ledger's
	// kernel_calls/flops fields stay deterministic at a fixed seed.
	defer obs.ChargeKernel(time.Now(), 2*int64(a.Rows)*int64(a.Cols)*int64(b.Cols))
	c := NewDense(a.Rows, b.Cols)
	compute.For(a.Rows, rowGrain(a.Cols*b.Cols), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			mulAddRow(a.Row(i), b, c.Row(i))
		}
	})
	return c
}

// mulAddRow computes crow += arow · B, streaming four rows of B per pass
// over crow. Zero entries of arow skip their B row entirely (the data
// matrices fed through here are often densified sparse rows).
func mulAddRow(arow []float64, b *Dense, crow []float64) {
	k, kk := 0, len(arow)
	for ; k+4 <= kk; k += 4 {
		a0, a1, a2, a3 := arow[k], arow[k+1], arow[k+2], arow[k+3]
		if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
			continue
		}
		b0, b1, b2, b3 := b.Row(k), b.Row(k+1), b.Row(k+2), b.Row(k+3)
		if a0 != 0 && a1 != 0 && a2 != 0 && a3 != 0 {
			for j := range crow {
				s := crow[j]
				s += a0 * b0[j]
				s += a1 * b1[j]
				s += a2 * b2[j]
				s += a3 * b3[j]
				crow[j] = s
			}
			continue
		}
		// Mixed zeros: fall back to per-k passes so zero coefficients are
		// skipped exactly as in the dense case above (same add order).
		Axpy(a0, b0, crow)
		Axpy(a1, b1, crow)
		Axpy(a2, b2, crow)
		Axpy(a3, b3, crow)
	}
	for ; k < kk; k++ {
		if av := arow[k]; av != 0 {
			Axpy(av, b.Row(k), crow)
		}
	}
}

// MatMulTransA returns Aᵀ * B as a new matrix, operating on A's original
// row-major layout (no transposed copy is ever materialized). Output rows
// are computed in parallel; per output element the shared dimension is
// accumulated in ascending order, matching the naive kernel bit for bit.
func MatMulTransA(a, b *Dense) *Dense {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("linalg: MatMulTransA shape mismatch (%dx%d)ᵀ*(%dx%d)", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	defer obs.ChargeKernel(time.Now(), 2*int64(a.Rows)*int64(a.Cols)*int64(b.Cols))
	c := NewDense(a.Cols, b.Cols)
	compute.For(a.Cols, rowGrain(a.Rows*b.Cols), func(lo, hi int) {
		// Tile the output rows so the C tile stays cache-resident while B
		// streams past it once per tile.
		const tile = 16
		for tlo := lo; tlo < hi; tlo += tile {
			thi := tlo + tile
			if thi > hi {
				thi = hi
			}
			for k := 0; k < a.Rows; k++ {
				arow := a.Row(k)
				brow := b.Row(k)
				for i := tlo; i < thi; i++ {
					if av := arow[i]; av != 0 {
						Axpy(av, brow, c.Row(i))
					}
				}
			}
		}
	})
	return c
}

// MatMulTransB returns A * Bᵀ as a new matrix, operating on B's original
// row-major layout (each output element is a dot product of two
// contiguous rows — no transposed copy). Output rows are computed in
// parallel, four dot products at a time so the shared row of A is loaded
// once per four columns; every dot product accumulates in the same order
// as Dot, so results are bit-identical to the naive kernel.
func MatMulTransB(a, b *Dense) *Dense {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: MatMulTransB shape mismatch (%dx%d)*(%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	defer obs.ChargeKernel(time.Now(), 2*int64(a.Rows)*int64(a.Cols)*int64(b.Rows))
	c := NewDense(a.Rows, b.Rows)
	compute.For(a.Rows, rowGrain(b.Rows*b.Cols), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dotRows(a.Row(i), b, 0, b.Rows, c.Row(i))
		}
	})
	return c
}

// dotRows fills crow[j] = arow · b.Row(j) for j in [jlo, jhi), four rows
// of B at a time (four independent accumulator chains per pass).
func dotRows(arow []float64, b *Dense, jlo, jhi int, crow []float64) {
	j := jlo
	for ; j+4 <= jhi; j += 4 {
		b0, b1, b2, b3 := b.Row(j), b.Row(j+1), b.Row(j+2), b.Row(j+3)
		var s0, s1, s2, s3 float64
		for k, av := range arow {
			s0 += av * b0[k]
			s1 += av * b1[k]
			s2 += av * b2[k]
			s3 += av * b3[k]
		}
		crow[j], crow[j+1], crow[j+2], crow[j+3] = s0, s1, s2, s3
	}
	for ; j < jhi; j++ {
		crow[j] = Dot(arow, b.Row(j))
	}
}

// AddScaled computes m += a*other, in place.
func (m *Dense) AddScaled(a float64, other *Dense) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic("linalg: AddScaled shape mismatch")
	}
	Axpy(a, other.Data, m.Data)
}

// ScaleInPlace multiplies every element by a.
func (m *Dense) ScaleInPlace(a float64) { Scale(a, m.Data) }

// AddDiag adds a to every diagonal element (the matrix must be square).
func (m *Dense) AddDiag(a float64) {
	if m.Rows != m.Cols {
		panic("linalg: AddDiag on non-square matrix")
	}
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Cols+i] += a
	}
}

// Symmetrize replaces m with (m + mᵀ)/2 (the matrix must be square).
func (m *Dense) Symmetrize() {
	if m.Rows != m.Cols {
		panic("linalg: Symmetrize on non-square matrix")
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			v := (m.At(i, j) + m.At(j, i)) / 2
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
}

// FrobeniusNorm returns sqrt(sum of squared elements).
func (m *Dense) FrobeniusNorm() float64 { return Norm2(m.Data) }

// FrobeniusDistance returns ‖a - b‖_F. The matrices must share a shape.
func FrobeniusDistance(a, b *Dense) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("linalg: FrobeniusDistance shape mismatch")
	}
	var s float64
	for i, v := range a.Data {
		d := v - b.Data[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// OuterAdd computes m += a * x*yᵀ, in place.
func (m *Dense) OuterAdd(a float64, x, y []float64) {
	if len(x) != m.Rows || len(y) != m.Cols {
		panic("linalg: OuterAdd shape mismatch")
	}
	for i, xv := range x {
		if xv == 0 {
			continue
		}
		Axpy(a*xv, y, m.Row(i))
	}
}
