package linalg

import (
	"fmt"
	"math"
)

// Dense is a row-major dense matrix. The zero value is an empty matrix;
// use NewDense to allocate one with a shape.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewDense allocates a Rows x Cols zero matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative dimension %dx%d", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewDenseFrom wraps data (row-major) without copying. len(data) must be
// rows*cols.
func NewDenseFrom(rows, cols int, data []float64) *Dense {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("linalg: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: data}
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	return &Dense{Rows: m.Rows, Cols: m.Cols, Data: CopyVec(m.Data)}
}

// T returns the transpose as a new matrix.
func (m *Dense) T() *Dense {
	t := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// MulVec computes dst = M * x. dst must have length M.Rows and must not
// alias x.
func (m *Dense) MulVec(x, dst []float64) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("linalg: MulVec shape mismatch (%dx%d)*%d->%d", m.Rows, m.Cols, len(x), len(dst)))
	}
	for i := 0; i < m.Rows; i++ {
		dst[i] = Dot(m.Row(i), x)
	}
}

// MulTransVec computes dst = Mᵀ * x. dst must have length M.Cols and must
// not alias x.
func (m *Dense) MulTransVec(x, dst []float64) {
	if len(x) != m.Rows || len(dst) != m.Cols {
		panic(fmt.Sprintf("linalg: MulTransVec shape mismatch (%dx%d)ᵀ*%d->%d", m.Rows, m.Cols, len(x), len(dst)))
	}
	Fill(dst, 0)
	for i := 0; i < m.Rows; i++ {
		Axpy(x[i], m.Row(i), dst)
	}
}

// MatMul returns A * B as a new matrix.
func MatMul(a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: MatMul shape mismatch (%dx%d)*(%dx%d)", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := NewDense(a.Rows, b.Cols)
	// ikj loop order: stream rows of B, accumulate into rows of C.
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			Axpy(av, b.Row(k), crow)
		}
	}
	return c
}

// MatMulTransA returns Aᵀ * B as a new matrix.
func MatMulTransA(a, b *Dense) *Dense {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("linalg: MatMulTransA shape mismatch (%dx%d)ᵀ*(%dx%d)", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := NewDense(a.Cols, b.Cols)
	for k := 0; k < a.Rows; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			Axpy(av, brow, c.Row(i))
		}
	}
	return c
}

// MatMulTransB returns A * Bᵀ as a new matrix.
func MatMulTransB(a, b *Dense) *Dense {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: MatMulTransB shape mismatch (%dx%d)*(%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := NewDense(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for j := 0; j < b.Rows; j++ {
			crow[j] = Dot(arow, b.Row(j))
		}
	}
	return c
}

// AddScaled computes m += a*other, in place.
func (m *Dense) AddScaled(a float64, other *Dense) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic("linalg: AddScaled shape mismatch")
	}
	Axpy(a, other.Data, m.Data)
}

// ScaleInPlace multiplies every element by a.
func (m *Dense) ScaleInPlace(a float64) { Scale(a, m.Data) }

// AddDiag adds a to every diagonal element (the matrix must be square).
func (m *Dense) AddDiag(a float64) {
	if m.Rows != m.Cols {
		panic("linalg: AddDiag on non-square matrix")
	}
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Cols+i] += a
	}
}

// Symmetrize replaces m with (m + mᵀ)/2 (the matrix must be square).
func (m *Dense) Symmetrize() {
	if m.Rows != m.Cols {
		panic("linalg: Symmetrize on non-square matrix")
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			v := (m.At(i, j) + m.At(j, i)) / 2
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
}

// FrobeniusNorm returns sqrt(sum of squared elements).
func (m *Dense) FrobeniusNorm() float64 { return Norm2(m.Data) }

// FrobeniusDistance returns ‖a - b‖_F. The matrices must share a shape.
func FrobeniusDistance(a, b *Dense) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("linalg: FrobeniusDistance shape mismatch")
	}
	var s float64
	for i, v := range a.Data {
		d := v - b.Data[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// OuterAdd computes m += a * x*yᵀ, in place.
func (m *Dense) OuterAdd(a float64, x, y []float64) {
	if len(x) != m.Rows || len(y) != m.Cols {
		panic("linalg: OuterAdd shape mismatch")
	}
	for i, xv := range x {
		if xv == 0 {
			continue
		}
		Axpy(a*xv, y, m.Row(i))
	}
}
