// Package datagen generates the synthetic stand-ins for the paper's six
// evaluation datasets (Table 2). The originals (Gas, Power, Criteo, HIGGS,
// MNIST, Yelp) are multi-gigabyte downloads; the generators reproduce each
// dataset's *shape* — dimensionality class, sparsity pattern, label
// mechanism, class counts — at laptop scale with deterministic seeds
// (substitution S1 in DESIGN.md). BlinkML's guarantees are data-independent,
// so shape, not provenance, is what the experiments exercise.
package datagen

import (
	"fmt"
	"math"

	"blinkml/internal/dataset"
	"blinkml/internal/stat"
)

// Config controls a generator. Zero fields fall back to per-dataset
// defaults documented on each generator.
type Config struct {
	Rows int
	Dim  int
	Seed int64
	// NNZ sets the active features per row for sparse generators that
	// honor it (currently "onehot"); 0 means the generator's default.
	NNZ int
}

func (c Config) withDefaults(rows, dim int) Config {
	if c.Rows <= 0 {
		c.Rows = rows
	}
	if c.Dim <= 0 {
		c.Dim = dim
	}
	return c
}

// Gas mimics the chemical-sensor regression dataset (paper: 4.2M rows,
// d=57, target = sensor reading from gas concentrations): features follow
// a slowly drifting AR(1) process per column, the target is a fixed linear
// response plus mild sensor noise. Defaults: 50,000 rows, 57 features.
func Gas(cfg Config) *dataset.Dataset {
	cfg = cfg.withDefaults(defaultShape("gas"))
	rng := stat.NewRNG(mix(cfg.Seed, 0x6A5))
	theta := groundTruth(rng, cfg.Dim, 1.0)
	ds := &dataset.Dataset{Dim: cfg.Dim, Task: dataset.Regression, Name: "gas"}
	state := make([]float64, cfg.Dim)
	rng.NormVec(state)
	for i := 0; i < cfg.Rows; i++ {
		row := make(dataset.DenseRow, cfg.Dim)
		for j := range row {
			// AR(1) drift: concentrations change slowly across readings.
			state[j] = 0.95*state[j] + 0.31*rng.Norm()
			row[j] = state[j]
		}
		// Unit-variance sensor noise keeps the unit-Gaussian linear MLE
		// well-specified, so the information-matrix equality the paper's
		// statistics methods rely on (§3.4) holds exactly.
		y := row.Dot(theta) + rng.Norm()
		ds.X = append(ds.X, row)
		ds.Y = append(ds.Y, y)
	}
	return ds
}

// Power mimics the household power-consumption regression dataset (paper:
// 2.1M rows, d=114): a mix of daily-periodic components and appliance
// spikes. Defaults: 50,000 rows, 114 features.
func Power(cfg Config) *dataset.Dataset {
	cfg = cfg.withDefaults(defaultShape("power"))
	rng := stat.NewRNG(mix(cfg.Seed, 0x90E))
	theta := groundTruth(rng, cfg.Dim, 0.8)
	ds := &dataset.Dataset{Dim: cfg.Dim, Task: dataset.Regression, Name: "power"}
	for i := 0; i < cfg.Rows; i++ {
		row := make(dataset.DenseRow, cfg.Dim)
		phase := 2 * math.Pi * float64(i%1440) / 1440 // minute-of-day period
		for j := range row {
			periodic := math.Sin(phase + float64(j))
			spike := 0.0
			if rng.Float64() < 0.05 {
				spike = 2 + rng.Exp() // appliance turning on
			}
			row[j] = periodic + 0.7*rng.Norm() + spike
		}
		y := row.Dot(theta) + rng.Norm() // unit noise: see Gas
		ds.X = append(ds.X, row)
		ds.Y = append(ds.Y, y)
	}
	return ds
}

// Higgs mimics the HIGGS binary-classification dataset (paper: 11M rows,
// d=28): two overlapping Gaussian classes over dense physics features, so
// the Bayes error is materially above zero, as for the real data. Defaults:
// 60,000 rows, 28 features.
func Higgs(cfg Config) *dataset.Dataset {
	cfg = cfg.withDefaults(defaultShape("higgs"))
	rng := stat.NewRNG(mix(cfg.Seed, 0x8165))
	sep := make([]float64, cfg.Dim)
	for j := range sep {
		sep[j] = 0.35 * rng.Norm()
	}
	ds := &dataset.Dataset{Dim: cfg.Dim, Task: dataset.BinaryClassification, Name: "higgs"}
	for i := 0; i < cfg.Rows; i++ {
		y := 0.0
		if rng.Float64() < 0.53 { // signal fraction ~53% as in HIGGS
			y = 1
		}
		row := make(dataset.DenseRow, cfg.Dim)
		sign := -1.0
		if y == 1 {
			sign = 1
		}
		for j := range row {
			row[j] = sign*sep[j] + rng.Norm()
		}
		ds.X = append(ds.X, row)
		ds.Y = append(ds.Y, y)
	}
	return ds
}

// Criteo mimics the Criteo click-through dataset (paper: 45.8M rows,
// d=998,922 one-hot features): every row activates one bias feature plus
// ~38 one-hot features drawn from a Zipf law over the vocabulary, the label
// is Bernoulli from a sparse ground-truth logistic model calibrated to a
// ~25% positive rate. Defaults: 60,000 rows, 5,000 features (Dim is
// CLI-scalable up to the paper's 10⁶ since rows stay sparse).
func Criteo(cfg Config) *dataset.Dataset {
	cfg = cfg.withDefaults(defaultShape("criteo"))
	rng := stat.NewRNG(mix(cfg.Seed, 0xC417))
	zipf := stat.NewZipf(rng, cfg.Dim-1, 1.1)
	theta := groundTruth(rng, cfg.Dim, 0.9)
	ds := &dataset.Dataset{Dim: cfg.Dim, Task: dataset.BinaryClassification, Name: "criteo"}
	active := make(map[int32]bool, 48)
	// Cap per-row activity well below the vocabulary so distinct draws from
	// the (skewed) Zipf law terminate quickly even at small dims.
	maxNNZ := (cfg.Dim - 1) / 3
	for i := 0; i < cfg.Rows; i++ {
		nnz := 8 + rng.Intn(61) // 8..68 active features, mean ~38
		if nnz > maxNNZ {
			nnz = maxNNZ
		}
		if nnz < 1 {
			nnz = 1
		}
		clear(active)
		active[0] = true // bias feature
		for len(active) < nnz+1 {
			active[int32(1+zipf.Draw())] = true
		}
		idx := make([]int32, 0, len(active))
		for k := range active {
			idx = append(idx, k)
		}
		sortInt32(idx)
		val := make([]float64, len(idx))
		var score float64
		for t, j := range idx {
			val[t] = 1
			score += theta[j]
		}
		row := &dataset.SparseRow{N: cfg.Dim, Idx: idx, Val: val}
		// Intercept −1.9 calibrates the positive rate to ≈ 25%.
		y := 0.0
		if rng.Float64() < sigmoid(score/3-1.1) {
			y = 1
		}
		ds.X = append(ds.X, row)
		ds.Y = append(ds.Y, y)
	}
	return dataset.Compact(ds)
}

// MNIST mimics the infinite-MNIST multiclass dataset (paper: 8M rows,
// d=784, 10 classes): each class has a fixed prototype image; rows are the
// prototype plus pixel noise, clipped to [0, 1]. Defaults: 30,000 rows, 784
// features (tests use Dim=64 for speed).
func MNIST(cfg Config) *dataset.Dataset {
	cfg = cfg.withDefaults(defaultShape("mnist"))
	const k = 10
	rng := stat.NewRNG(mix(cfg.Seed, 0x3157))
	protos := make([][]float64, k)
	for c := range protos {
		protos[c] = make([]float64, cfg.Dim)
		for j := range protos[c] {
			// Sparse bright strokes on a dark background.
			if rng.Float64() < 0.25 {
				protos[c][j] = 0.5 + 0.5*rng.Float64()
			}
		}
	}
	ds := &dataset.Dataset{Dim: cfg.Dim, Task: dataset.MultiClassification, NumClasses: k, Name: "mnist"}
	for i := 0; i < cfg.Rows; i++ {
		c := rng.Intn(k)
		row := make(dataset.DenseRow, cfg.Dim)
		for j := range row {
			v := protos[c][j] + 0.25*rng.Norm()
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			row[j] = v
		}
		ds.X = append(ds.X, row)
		ds.Y = append(ds.Y, float64(c))
	}
	return ds
}

// Yelp mimics the Yelp-review rating dataset (paper: 5.3M rows, d=100,000
// bag-of-words, ratings as classes): documents draw words from a global
// Zipf vocabulary mixed with one of five rating-specific topics. Defaults:
// 30,000 rows, 10,000 vocabulary terms, 5 classes.
func Yelp(cfg Config) *dataset.Dataset {
	cfg = cfg.withDefaults(defaultShape("yelp"))
	const k = 5
	rng := stat.NewRNG(mix(cfg.Seed, 0x9E12))
	global := stat.NewZipf(rng, cfg.Dim, 1.05)
	// Each rating class prefers a distinct slice of the vocabulary.
	topicSize := cfg.Dim / (2 * k)
	if topicSize < 1 {
		topicSize = 1
	}
	ds := &dataset.Dataset{Dim: cfg.Dim, Task: dataset.MultiClassification, NumClasses: k, Name: "yelp"}
	counts := make(map[int32]float64, 64)
	for i := 0; i < cfg.Rows; i++ {
		c := rng.Intn(k)
		length := 20 + rng.Intn(60)
		clear(counts)
		for w := 0; w < length; w++ {
			var term int
			if rng.Float64() < 0.35 {
				term = c*topicSize + rng.Intn(topicSize) // topic word
			} else {
				term = global.Draw()
			}
			counts[int32(term)]++
		}
		idx := make([]int32, 0, len(counts))
		for t := range counts {
			idx = append(idx, t)
		}
		sortInt32(idx)
		val := make([]float64, len(idx))
		for t, j := range idx {
			val[t] = math.Log1p(counts[j]) // sublinear tf weighting
		}
		ds.X = append(ds.X, &dataset.SparseRow{N: cfg.Dim, Idx: idx, Val: val})
		ds.Y = append(ds.Y, float64(c))
	}
	return dataset.Compact(ds)
}

// Counts is a Poisson-regression workload (the paper lists Poisson
// regression as a supported GLM): event counts with a log-linear rate.
// Defaults: 30,000 rows, 20 features.
func Counts(cfg Config) *dataset.Dataset {
	cfg = cfg.withDefaults(defaultShape("counts"))
	rng := stat.NewRNG(mix(cfg.Seed, 0x70C7))
	theta := groundTruth(rng, cfg.Dim, 0.25)
	ds := &dataset.Dataset{Dim: cfg.Dim, Task: dataset.Regression, Name: "counts"}
	for i := 0; i < cfg.Rows; i++ {
		row := make(dataset.DenseRow, cfg.Dim)
		for j := range row {
			row[j] = rng.Norm()
		}
		lambda := math.Exp(row.Dot(theta))
		ds.X = append(ds.X, row)
		ds.Y = append(ds.Y, poissonDraw(rng, lambda))
	}
	return ds
}

// OneHot is the criteo-like seeded sparse one-hot generator: each row has
// exactly NNZ active features (default 10) — a bias feature plus NNZ−1
// indices drawn uniformly without replacement from the vocabulary — with
// value 1 and a binary label from a fixed sparse logistic ground truth.
// Unlike Criteo's Zipf-skewed draw it is uniform, so rows stay cheap to
// generate at dim 10⁴–10⁶, which is what the high-dimensional sparse
// benchmarks need. Defaults: 50,000 rows, 10,000 features.
func OneHot(cfg Config) *dataset.Dataset {
	cfg = cfg.withDefaults(defaultShape("onehot"))
	k := cfg.NNZ
	if k <= 0 {
		k = 10
	}
	if k > cfg.Dim {
		k = cfg.Dim
	}
	rng := stat.NewRNG(mix(cfg.Seed, 0x1407))
	theta := groundTruth(rng, cfg.Dim, 1.2)
	ds := &dataset.Dataset{Dim: cfg.Dim, Task: dataset.BinaryClassification, Name: "onehot"}
	active := make(map[int32]bool, k)
	scale := 1 / math.Sqrt(float64(k))
	for i := 0; i < cfg.Rows; i++ {
		clear(active)
		active[0] = true // bias feature
		for len(active) < k {
			active[int32(1+rng.Intn(cfg.Dim-1))] = true
		}
		idx := make([]int32, 0, len(active))
		for j := range active {
			idx = append(idx, j)
		}
		sortInt32(idx)
		val := make([]float64, len(idx))
		var score float64
		for t, j := range idx {
			val[t] = 1
			score += theta[j]
		}
		y := 0.0
		if rng.Float64() < sigmoid(scale*score-0.4) {
			y = 1
		}
		ds.X = append(ds.X, &dataset.SparseRow{N: cfg.Dim, Idx: idx, Val: val})
		ds.Y = append(ds.Y, y)
	}
	return dataset.Compact(ds)
}

// generators is the single registry of synthetic workloads: each entry
// carries the generator's default rows × dim (laptop-scaled stand-ins for
// the paper's Table 2 sizes) and its builder, so Shape and Generate can
// never drift apart on which names exist.
var generators = map[string]struct {
	rows, dim int
	build     func(Config) *dataset.Dataset
}{}

// The registry is filled in init (not a composite literal) because the
// builders themselves read their defaults back out of it.
func init() {
	reg := func(name string, rows, dim int, build func(Config) *dataset.Dataset) {
		generators[name] = struct {
			rows, dim int
			build     func(Config) *dataset.Dataset
		}{rows, dim, build}
	}
	reg("gas", 50000, 57, Gas)
	reg("power", 50000, 114, Power)
	reg("criteo", 60000, 5000, Criteo)
	reg("higgs", 60000, 28, Higgs)
	reg("mnist", 30000, 784, MNIST)
	reg("yelp", 30000, 10000, Yelp)
	reg("counts", 30000, 20, Counts)
	reg("onehot", 50000, 10000, OneHot)
}

func defaultShape(name string) (rows, dim int) {
	g := generators[name]
	return g.rows, g.dim
}

// Shape returns the rows × dim a Generate(name, cfg) call would produce —
// the per-dataset defaults applied to cfg — without generating anything.
// Schedulers use it to size work for a synthetic workload before (or
// instead of) materializing it.
func Shape(name string, cfg Config) (rows, dim int, err error) {
	if _, ok := generators[name]; !ok {
		return 0, 0, fmt.Errorf("datagen: unknown dataset %q", name)
	}
	cfg = cfg.withDefaults(defaultShape(name))
	return cfg.Rows, cfg.Dim, nil
}

// Generate dispatches by dataset name ("gas", "power", "criteo", "higgs",
// "mnist", "yelp", "counts").
func Generate(name string, cfg Config) (*dataset.Dataset, error) {
	g, ok := generators[name]
	if !ok {
		return nil, fmt.Errorf("datagen: unknown dataset %q", name)
	}
	return g.build(cfg), nil
}

// groundTruth draws a fixed parameter vector with the given scale.
func groundTruth(rng *stat.RNG, d int, scale float64) []float64 {
	theta := make([]float64, d)
	for i := range theta {
		theta[i] = scale * rng.Norm()
	}
	return theta
}

// mix folds a user seed with a per-dataset constant so different datasets
// built from the same seed do not share randomness.
func mix(seed, salt int64) int64 {
	x := uint64(seed)*0x9E3779B97F4A7C15 + uint64(salt)
	x ^= x >> 31
	return int64(x & 0x7FFFFFFFFFFFFFFF)
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// poissonDraw samples Poisson(lambda) by inversion for small rates and a
// normal approximation above 30.
func poissonDraw(rng *stat.RNG, lambda float64) float64 {
	if lambda > 30 {
		v := math.Round(lambda + math.Sqrt(lambda)*rng.Norm())
		if v < 0 {
			v = 0
		}
		return v
	}
	p := math.Exp(-lambda)
	cum, u, y := p, rng.Float64(), 0.0
	for u > cum && y < 1000 {
		y++
		p *= lambda / y
		cum += p
	}
	return y
}

// sortInt32 sorts in place (insertion sort is fine at these row widths).
func sortInt32(a []int32) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}
