package datagen

import (
	"math"
	"testing"

	"blinkml/internal/dataset"
)

func allGenerators() map[string]func(Config) *dataset.Dataset {
	return map[string]func(Config) *dataset.Dataset{
		"gas":    Gas,
		"power":  Power,
		"criteo": Criteo,
		"higgs":  Higgs,
		"mnist":  MNIST,
		"yelp":   Yelp,
		"counts": Counts,
	}
}

func TestGeneratorsProduceValidDatasets(t *testing.T) {
	for name, gen := range allGenerators() {
		t.Run(name, func(t *testing.T) {
			ds := gen(Config{Rows: 500, Seed: 1})
			if ds.Len() != 500 {
				t.Fatalf("rows=%d want 500", ds.Len())
			}
			if err := ds.Validate(); err != nil {
				t.Fatalf("invalid dataset: %v", err)
			}
			if ds.Name != name {
				t.Fatalf("name %q want %q", ds.Name, name)
			}
		})
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for name, gen := range allGenerators() {
		t.Run(name, func(t *testing.T) {
			a := gen(Config{Rows: 100, Seed: 7})
			b := gen(Config{Rows: 100, Seed: 7})
			for i := 0; i < 100; i++ {
				if a.Task != dataset.Unsupervised && a.Y[i] != b.Y[i] {
					t.Fatalf("labels differ at %d", i)
				}
				av := make([]float64, a.Dim)
				bv := make([]float64, b.Dim)
				a.X[i].AddTo(av, 1)
				b.X[i].AddTo(bv, 1)
				for j := range av {
					if av[j] != bv[j] {
						t.Fatalf("row %d feature %d differs", i, j)
					}
				}
			}
			c := gen(Config{Rows: 100, Seed: 8})
			diff := false
			for i := 0; i < 100 && !diff; i++ {
				av := make([]float64, a.Dim)
				cv := make([]float64, c.Dim)
				a.X[i].AddTo(av, 1)
				c.X[i].AddTo(cv, 1)
				for j := range av {
					if av[j] != cv[j] {
						diff = true
						break
					}
				}
			}
			if !diff {
				t.Fatal("different seeds produced identical features")
			}
		})
	}
}

func TestSparseDatasetsAreSparse(t *testing.T) {
	for _, name := range []string{"criteo", "yelp"} {
		ds, err := Generate(name, Config{Rows: 200, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < ds.Len(); i++ {
			sp, ok := ds.X[i].(*dataset.SparseRow)
			if !ok {
				t.Fatalf("%s row %d is not sparse", name, i)
			}
			if sp.NNZ() > ds.Dim/10 {
				t.Fatalf("%s row %d has %d nnz out of %d — not sparse", name, i, sp.NNZ(), ds.Dim)
			}
		}
	}
}

func TestCriteoPositiveRate(t *testing.T) {
	ds := Criteo(Config{Rows: 5000, Seed: 3})
	var pos float64
	for _, y := range ds.Y {
		pos += y
	}
	rate := pos / float64(ds.Len())
	if rate < 0.1 || rate > 0.5 {
		t.Fatalf("criteo positive rate %v outside CTR-like band", rate)
	}
}

func TestHiggsClassBalance(t *testing.T) {
	ds := Higgs(Config{Rows: 5000, Seed: 4})
	var pos float64
	for _, y := range ds.Y {
		pos += y
	}
	rate := pos / float64(ds.Len())
	if math.Abs(rate-0.53) > 0.05 {
		t.Fatalf("higgs signal rate %v want ≈ 0.53", rate)
	}
}

func TestMNISTPixelRangeAndClasses(t *testing.T) {
	ds := MNIST(Config{Rows: 1000, Dim: 64, Seed: 5})
	if ds.NumClasses != 10 {
		t.Fatalf("classes=%d", ds.NumClasses)
	}
	seen := map[float64]bool{}
	for i := 0; i < ds.Len(); i++ {
		seen[ds.Y[i]] = true
		ds.X[i].ForEach(func(_ int, v float64) {
			if v < 0 || v > 1 {
				t.Fatalf("pixel %v out of [0,1]", v)
			}
		})
	}
	if len(seen) != 10 {
		t.Fatalf("only %d classes appear", len(seen))
	}
}

func TestYelpClassesCovered(t *testing.T) {
	ds := Yelp(Config{Rows: 2000, Dim: 500, Seed: 6})
	counts := make([]int, 5)
	for _, y := range ds.Y {
		counts[int(y)]++
	}
	for c, n := range counts {
		if n == 0 {
			t.Fatalf("class %d never generated", c)
		}
	}
}

func TestCountsNonNegativeIntegers(t *testing.T) {
	ds := Counts(Config{Rows: 1000, Seed: 7})
	for _, y := range ds.Y {
		if y < 0 || y != math.Trunc(y) {
			t.Fatalf("count label %v not a non-negative integer", y)
		}
	}
}

func TestGenerateUnknownName(t *testing.T) {
	if _, err := Generate("nope", Config{}); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

func TestGenerateDimOverride(t *testing.T) {
	ds, err := Generate("criteo", Config{Rows: 50, Dim: 300, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Dim != 300 {
		t.Fatalf("dim=%d want 300", ds.Dim)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
}
