package store

import (
	"math"
	"testing"
)

// TestPermIsBijection checks that Index maps [0, n) onto [0, n) with no
// collisions for a spread of sizes, including powers of the domain and
// awkward off-by-ones.
func TestPermIsBijection(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 15, 16, 17, 63, 64, 65, 100, 1000, 4097} {
		p := NewPerm(n, 42)
		seen := make([]bool, n)
		for i := 0; i < n; i++ {
			j := p.Index(i)
			if j < 0 || j >= n {
				t.Fatalf("n=%d: Index(%d)=%d out of range", n, i, j)
			}
			if seen[j] {
				t.Fatalf("n=%d: Index(%d)=%d collides", n, i, j)
			}
			seen[j] = true
		}
	}
}

// TestPermDeterministicAcrossInstances checks reproducibility in (n, seed)
// and that different seeds give different shuffles.
func TestPermDeterministicAcrossInstances(t *testing.T) {
	a, b := NewPerm(500, 7), NewPerm(500, 7)
	diffSeed := NewPerm(500, 8)
	same := true
	for i := 0; i < 500; i++ {
		if a.Index(i) != b.Index(i) {
			t.Fatalf("same (n, seed) disagree at %d", i)
		}
		if a.Index(i) != diffSeed.Index(i) {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced the same permutation")
	}
}

// TestPermUniformity is the chi-square smoke test the out-of-core sampler's
// correctness rides on: across many seeds, the k-prefix of the permutation
// (i.e. the sample) must hit every row about equally often. With N cells,
// trials·k/N expected hits each, the statistic is ~χ²(N−1); we assert it
// stays below a loose 5-sigma-ish bound so the test is stable yet would
// catch a biased round function or a broken cycle walk.
func TestPermUniformity(t *testing.T) {
	const (
		n      = 64
		k      = 16
		trials = 4000
	)
	counts := make([]float64, n)
	for seed := 0; seed < trials; seed++ {
		p := NewPerm(n, int64(seed))
		for i := 0; i < k; i++ {
			counts[p.Index(i)]++
		}
	}
	expected := float64(trials) * k / n
	chi2 := 0.0
	for _, c := range counts {
		d := c - expected
		chi2 += d * d / expected
	}
	// χ²(63): mean 63, sd ≈ √126 ≈ 11.2; 63 + 5·11.2 ≈ 119.
	if limit := float64(n-1) + 5*math.Sqrt(2*float64(n-1)); chi2 > limit {
		t.Fatalf("chi-square %.1f exceeds %.1f — sampler is not uniform", chi2, limit)
	}
}

// TestPermPrefixProperty: the sample of size m is definitionally the first
// m images, so nesting is structural — this guards against someone
// replacing the implementation with one that re-keys per size.
func TestPermPrefixProperty(t *testing.T) {
	p1 := NewPerm(300, 9)
	p2 := NewPerm(300, 9)
	for i := 0; i < 50; i++ {
		if p1.Index(i) != p2.Index(i) {
			t.Fatalf("prefix image %d differs across instances", i)
		}
	}
}
