package store

import (
	"bytes"
	"strings"
	"testing"

	"blinkml/internal/dataset"
)

// exportBundle round-trips h through the bundle format into a fresh store.
func exportBundle(t *testing.T, h *Handle) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := h.ExportTo(&buf); err != nil {
		t.Fatalf("export: %v", err)
	}
	return buf.Bytes()
}

func TestBundleRoundTrip(t *testing.T) {
	_, h := ingestCSV(t, t.TempDir())
	raw := exportBundle(t, h)

	dst, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("open dst: %v", err)
	}
	h2, err := dst.ImportBundle(h.ID, bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	if h2.ID != h.ID {
		t.Fatalf("imported id %q, want %q", h2.ID, h.ID)
	}
	if got, want := h2.Manifest(), h.Manifest(); got.RowCRC32 != want.RowCRC32 || got.IndexCRC32 != want.IndexCRC32 {
		t.Fatalf("manifest checksums differ after import")
	}
	if err := h2.Verify(); err != nil {
		t.Fatalf("verify imported: %v", err)
	}
	// Content must be byte-identical row by row.
	want, _ := h.Materialize([]int{0, 1, 2, 3, 4})
	got, err := h2.Materialize([]int{0, 1, 2, 3, 4})
	if err != nil {
		t.Fatalf("materialize imported: %v", err)
	}
	sameRows(t, got, want, "imported bundle")

	// The imported dataset must survive a store reopen like any ingest.
	dst2, err := Open(dst.Dir())
	if err != nil {
		t.Fatalf("reopen dst: %v", err)
	}
	if _, err := dst2.Get(h.ID); err != nil {
		t.Fatalf("imported dataset lost on reopen: %v", err)
	}
}

func TestBundleImportSparse(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	in := "1 1:0.5 4:-2\n0 2:1.5\n1 1:3 2:4 5:5\n"
	h, err := st.Ingest(strings.NewReader(in), IngestOptions{
		Format: "libsvm", Task: dataset.BinaryClassification, Dim: 6,
	})
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	raw := exportBundle(t, h)
	dst, _ := Open(t.TempDir())
	h2, err := dst.ImportBundle(h.ID, bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	want, _ := h.Materialize([]int{0, 1, 2})
	got, err := h2.Materialize([]int{0, 1, 2})
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	sameRows(t, got, want, "sparse bundle")
}

func TestBundleImportDetectsCorruption(t *testing.T) {
	_, h := ingestCSV(t, t.TempDir())
	raw := exportBundle(t, h)

	// Flip one payload byte (past the header+manifest region).
	bad := bytes.Clone(raw)
	bad[len(bad)-10] ^= 0xFF
	dst, _ := Open(t.TempDir())
	if _, err := dst.ImportBundle(h.ID, bytes.NewReader(bad)); err == nil {
		t.Fatal("import accepted a corrupted bundle")
	}
	if dst.Len() != 0 {
		t.Fatalf("corrupt import left %d datasets behind", dst.Len())
	}

	// Truncation must fail too (and leave nothing behind).
	if _, err := dst.ImportBundle(h.ID, bytes.NewReader(raw[:len(raw)-4])); err == nil {
		t.Fatal("import accepted a truncated bundle")
	}
	if dst.Len() != 0 {
		t.Fatalf("truncated import left %d datasets behind", dst.Len())
	}

	// Garbage magic.
	if _, err := dst.ImportBundle(h.ID, strings.NewReader("not a bundle at all")); err == nil {
		t.Fatal("import accepted garbage")
	}
}

func TestBundleImportIdempotent(t *testing.T) {
	_, h := ingestCSV(t, t.TempDir())
	raw := exportBundle(t, h)
	dst, _ := Open(t.TempDir())
	h1, err := dst.ImportBundle(h.ID, bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("first import: %v", err)
	}
	h2, err := dst.ImportBundle(h.ID, bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("second import: %v", err)
	}
	if h1 != h2 {
		t.Fatal("re-import did not return the cached handle")
	}
	if dst.Len() != 1 {
		t.Fatalf("store has %d datasets, want 1", dst.Len())
	}
}

func TestBundleImportRejectsBadID(t *testing.T) {
	_, h := ingestCSV(t, t.TempDir())
	raw := exportBundle(t, h)
	dst, _ := Open(t.TempDir())
	for _, id := range []string{"", "d-", "../../etc", "d-12x", "m-000001"} {
		if _, err := dst.ImportBundle(id, bytes.NewReader(raw)); err == nil {
			t.Fatalf("import accepted id %q", id)
		}
	}
}
