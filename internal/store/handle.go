package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"

	"blinkml/internal/dataset"
	"blinkml/internal/obs"
)

// Handle is an open stored dataset: the manifest plus the two data files,
// read with positional preads so concurrent materializations never contend
// on a file offset. A Handle is a dataset.Source — core.Env built on one
// trains out of core, touching only the rows it samples.
type Handle struct {
	// ID is the store-assigned dataset id ("d-000001").
	ID string

	dir  string
	man  Manifest
	task dataset.Task
	rows *os.File
	idx  *os.File
	obs  Observer

	rowsRead atomic.Int64
	matNanos atomic.Int64
	// maxMaterialize, when > 0, bounds the rows of a single Materialize
	// call: a guard that turns an accidental full-pool load into a loud
	// error instead of a memory blow-up.
	maxMaterialize atomic.Int64
}

func openHandle(id, dir string, man *Manifest, obs Observer) (*Handle, error) {
	task, err := man.TaskValue()
	if err != nil {
		return nil, err
	}
	rows, err := os.Open(filepath.Join(dir, "rows.bin"))
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", id, err)
	}
	idx, err := os.Open(filepath.Join(dir, "index.bin"))
	if err != nil {
		rows.Close()
		return nil, fmt.Errorf("store: open %s: %w", id, err)
	}
	h := &Handle{ID: id, dir: dir, man: *man, task: task, rows: rows, idx: idx, obs: obs}
	if ri, err := rows.Stat(); err == nil && ri.Size() != man.RowBytes {
		h.close()
		return nil, fmt.Errorf("store: %s: rows.bin is %d bytes, manifest says %d", id, ri.Size(), man.RowBytes)
	}
	if ii, err := idx.Stat(); err == nil && ii.Size() != man.IndexBytes {
		h.close()
		return nil, fmt.Errorf("store: %s: index.bin is %d bytes, manifest says %d", id, ii.Size(), man.IndexBytes)
	}
	return h, nil
}

func (h *Handle) close() {
	h.rows.Close()
	h.idx.Close()
}

// Manifest returns a copy of the dataset's manifest.
func (h *Handle) Manifest() Manifest { return h.man }

// DiskBytes returns the dataset's on-disk footprint (rows + index).
func (h *Handle) DiskBytes() int64 { return h.man.RowBytes + h.man.IndexBytes }

// Meta implements dataset.Source.
func (h *Handle) Meta() dataset.Meta {
	return dataset.Meta{
		Name:       h.man.Name,
		Rows:       h.man.Rows,
		Dim:        h.man.Dim,
		Task:       h.task,
		NumClasses: h.man.NumClasses,
	}
}

// RowsMaterialized returns the cumulative number of rows this handle has
// read off disk — the quantity out-of-core training keeps ≪ N. Tests use
// it to assert the pool was never fully materialized.
func (h *Handle) RowsMaterialized() int64 { return h.rowsRead.Load() }

// MaterializeNanos returns the cumulative wall time spent materializing.
func (h *Handle) MaterializeNanos() int64 { return h.matNanos.Load() }

// LimitMaterialize caps the rows of any single Materialize call (0 removes
// the cap). It is the in-memory row budget: with the cap below the pool
// size, any code path that tries to load the whole pool fails loudly.
func (h *Handle) LimitMaterialize(rows int) { h.maxMaterialize.Store(int64(rows)) }

// span returns the [off, end) byte range of row i in rows.bin.
func (h *Handle) span(i int) (off, end int64, err error) {
	if i < 0 || i >= h.man.Rows {
		return 0, 0, fmt.Errorf("store: %s: row %d out of range [0,%d)", h.ID, i, h.man.Rows)
	}
	var buf [16]byte
	if i == h.man.Rows-1 {
		if _, err := h.idx.ReadAt(buf[:8], int64(i)*8); err != nil {
			return 0, 0, fmt.Errorf("store: %s: read index: %w", h.ID, err)
		}
		return int64(binary.LittleEndian.Uint64(buf[:8])), h.man.RowBytes, nil
	}
	if _, err := h.idx.ReadAt(buf[:], int64(i)*8); err != nil {
		return 0, 0, fmt.Errorf("store: %s: read index: %w", h.ID, err)
	}
	return int64(binary.LittleEndian.Uint64(buf[:8])), int64(binary.LittleEndian.Uint64(buf[8:])), nil
}

// Row reads a single row by index.
func (h *Handle) Row(i int) (dataset.Row, float64, error) {
	off, end, err := h.span(i)
	if err != nil {
		return nil, 0, err
	}
	if end < off || end > h.man.RowBytes {
		return nil, 0, fmt.Errorf("store: %s: corrupt index entry %d (span %d..%d)", h.ID, i, off, end)
	}
	rec := make([]byte, end-off)
	if _, err := h.rows.ReadAt(rec, off); err != nil {
		return nil, 0, fmt.Errorf("store: %s: read row %d: %w", h.ID, i, err)
	}
	return decodeRow(rec, h.man.Sparse, h.man.Dim)
}

// Materialize implements dataset.Source: it builds an in-memory dataset of
// exactly the rows at idx, in idx order, reading them in offset order so a
// batch turns into a forward sweep over rows.bin rather than random
// thrashing. Sparse datasets at or below the density threshold land in one
// contiguous CSR block (sized up front from the index spans, no per-row
// allocations); denser ones fall back to dense rows so training takes the
// dense kernels. Safe for concurrent use.
func (h *Handle) Materialize(idx []int) (*dataset.Dataset, error) {
	if max := h.maxMaterialize.Load(); max > 0 && int64(len(idx)) > max {
		return nil, fmt.Errorf("store: %s: materializing %d rows exceeds the %d-row budget", h.ID, len(idx), max)
	}
	start := time.Now()
	ds := &dataset.Dataset{
		Dim:        h.man.Dim,
		Task:       h.task,
		NumClasses: h.man.NumClasses,
		Name:       h.man.Name,
	}
	if h.task != dataset.Unsupervised {
		ds.Y = make([]float64, len(idx))
	}
	// Read in offset order (ascending row index), place in idx order.
	order := make([]int, len(idx))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return idx[order[a]] < idx[order[b]] })

	// matBytes is the decoded in-memory footprint of the materialized rows,
	// derived purely from shapes (CSR: 12 bytes per stored entry + the
	// indptr array; dense: dim float64s per row) so the ledger's
	// bytes_materialized field is deterministic at a fixed seed.
	var matBytes int64
	if h.man.Sparse && h.man.Density() <= dataset.DefaultDenseThreshold {
		nnz, err := h.materializeCSR(idx, order, ds)
		if err != nil {
			return nil, err
		}
		matBytes = nnz*12 + int64(len(idx)+1)*8
	} else {
		ds.X = make([]dataset.Row, len(idx))
		for _, pos := range order {
			row, label, err := h.rowMaybeDense(idx[pos])
			if err != nil {
				return nil, err
			}
			ds.X[pos] = row
			if ds.Y != nil {
				ds.Y[pos] = label
			}
		}
		matBytes = int64(len(idx)) * int64(h.man.Dim) * 8
	}
	if ds.Y != nil {
		matBytes += int64(len(idx)) * 8
	}
	h.rowsRead.Add(int64(len(idx)))
	// Charge the owning job's ledger, if the calling goroutine is doing
	// attributed work (training); unattributed readers (CLI export) skip.
	obs.BoundLedger().ChargeMaterialize(len(idx), matBytes)
	d := time.Since(start)
	h.matNanos.Add(int64(d))
	if h.obs != nil {
		h.obs.Materialized(len(idx), d)
	}
	return ds, nil
}

// rowMaybeDense reads row i, densifying sparse records — the materialize
// path for sparse datasets above the density threshold.
func (h *Handle) rowMaybeDense(i int) (dataset.Row, float64, error) {
	if !h.man.Sparse {
		return h.Row(i)
	}
	off, end, err := h.span(i)
	if err != nil {
		return nil, 0, err
	}
	if end < off || end > h.man.RowBytes {
		return nil, 0, fmt.Errorf("store: %s: corrupt index entry %d (span %d..%d)", h.ID, i, off, end)
	}
	rec := make([]byte, end-off)
	if _, err := h.rows.ReadAt(rec, off); err != nil {
		return nil, 0, fmt.Errorf("store: %s: read row %d: %w", h.ID, i, err)
	}
	row, label, err := decodeSparseDense(rec, h.man.Dim)
	if err != nil {
		return nil, 0, fmt.Errorf("store: %s: row %d: %w", h.ID, i, err)
	}
	return row, label, nil
}

// materializeCSR fills ds with the rows at idx packed into one contiguous
// CSR block. Each record's nnz comes from its index span length alone, so
// the whole block is sized before the first row read and every record
// decodes straight into its slot — no per-row slice allocations, and the
// sample's stored entries end up cache-adjacent for the full-sample passes
// (gradients, Fisher statistics) that dominate training.
func (h *Handle) materializeCSR(idx, order []int, ds *dataset.Dataset) (int64, error) {
	spans := make([][2]int64, len(idx))
	c := &dataset.CSR{Dim: h.man.Dim, Indptr: make([]int64, len(idx)+1)}
	for pos, i := range idx {
		off, end, err := h.span(i)
		if err != nil {
			return 0, err
		}
		if end < off || end > h.man.RowBytes {
			return 0, fmt.Errorf("store: %s: corrupt index entry %d (span %d..%d)", h.ID, i, off, end)
		}
		nnz, err := sparseRecNNZ(end - off)
		if err != nil {
			return 0, fmt.Errorf("store: %s: row %d: %w", h.ID, i, err)
		}
		spans[pos] = [2]int64{off, end}
		c.Indptr[pos+1] = int64(nnz) // lengths now, offsets after the prefix sum
	}
	for pos := range idx {
		c.Indptr[pos+1] += c.Indptr[pos]
	}
	total := c.Indptr[len(idx)]
	c.Idx = make([]int32, total)
	c.Val = make([]float64, total)
	rec := make([]byte, 0, 4096)
	for _, pos := range order {
		off, end := spans[pos][0], spans[pos][1]
		if int64(cap(rec)) < end-off {
			rec = make([]byte, end-off)
		}
		rec = rec[:end-off]
		if _, err := h.rows.ReadAt(rec, off); err != nil {
			return 0, fmt.Errorf("store: %s: read row %d: %w", h.ID, idx[pos], err)
		}
		lo, hi := c.Indptr[pos], c.Indptr[pos+1]
		label, err := decodeSparseInto(rec, h.man.Dim, c.Idx[lo:hi], c.Val[lo:hi])
		if err != nil {
			return 0, fmt.Errorf("store: %s: row %d: %w", h.ID, idx[pos], err)
		}
		if ds.Y != nil {
			ds.Y[pos] = label
		}
	}
	ds.X = c.Rows()
	return total, nil
}

// Scan streams every row in storage order through fn with one sequential
// buffered read of rows.bin and one of index.bin — the export path, which
// never holds more than one row in memory and costs no per-row syscalls.
// fn returning an error stops the scan.
func (h *Handle) Scan(fn func(i int, row dataset.Row, label float64) error) error {
	rows := bufio.NewReaderSize(io.NewSectionReader(h.rows, 0, h.man.RowBytes), 1<<20)
	idx := bufio.NewReaderSize(io.NewSectionReader(h.idx, 0, h.man.IndexBytes), 1<<16)
	readOff := func() (int64, error) {
		var b [8]byte
		if _, err := io.ReadFull(idx, b[:]); err != nil {
			return 0, fmt.Errorf("store: %s: read index: %w", h.ID, err)
		}
		return int64(binary.LittleEndian.Uint64(b[:])), nil
	}
	start, err := readOff()
	if err != nil {
		return err
	}
	if start != 0 {
		return fmt.Errorf("store: %s: index entry 0 points at %d, expected 0", h.ID, start)
	}
	for i := 0; i < h.man.Rows; i++ {
		end := h.man.RowBytes
		if i < h.man.Rows-1 {
			if end, err = readOff(); err != nil {
				return err
			}
		}
		if end < start || end > h.man.RowBytes {
			return fmt.Errorf("store: %s: corrupt index entry %d (span %d..%d)", h.ID, i, start, end)
		}
		rec := make([]byte, end-start)
		if _, err := io.ReadFull(rows, rec); err != nil {
			return fmt.Errorf("store: %s: read row %d: %w", h.ID, i, err)
		}
		start = end
		row, label, err := decodeRow(rec, h.man.Sparse, h.man.Dim)
		if err != nil {
			return err
		}
		if err := fn(i, row, label); err != nil {
			return err
		}
	}
	return nil
}

// Verify re-reads both data files and checks their CRC32 checksums against
// the manifest. It is a full sequential read — the `blinkml-data inspect
// -verify` path, not something to run per request.
func (h *Handle) Verify() error {
	check := func(name string, f *os.File, size int64, want uint32) error {
		crc := crc32.NewIEEE()
		if _, err := io.Copy(crc, io.NewSectionReader(f, 0, size)); err != nil {
			return fmt.Errorf("store: %s: verify %s: %w", h.ID, name, err)
		}
		if got := crc.Sum32(); got != want {
			return fmt.Errorf("store: %s: %s checksum %08x, manifest says %08x", h.ID, name, got, want)
		}
		return nil
	}
	if err := check("rows.bin", h.rows, h.man.RowBytes, h.man.RowCRC32); err != nil {
		return err
	}
	return check("index.bin", h.idx, h.man.IndexBytes, h.man.IndexCRC32)
}

// SamplePrefix materializes the first n rows of the seeded pseudorandom
// permutation of [0, Rows) — out-of-core sampling with O(1) index memory
// (see Perm). Samples nest: SamplePrefix(seed, m) is a prefix of
// SamplePrefix(seed, n) for m ≤ n, the same reuse contract core.Env's
// SharedSample provides in-core. n is clamped to the dataset size.
func (h *Handle) SamplePrefix(seed int64, n int) (*dataset.Dataset, error) {
	if n > h.man.Rows {
		n = h.man.Rows
	}
	if n < 1 {
		n = 1
	}
	p := NewPerm(h.man.Rows, seed)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = p.Index(i)
	}
	return h.Materialize(idx)
}
