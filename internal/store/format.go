// Package store implements BlinkML's persistent dataset store: CSV/LibSVM
// streams are ingested chunk-by-chunk into a compact binary row format with
// a fixed-size offset index, so any row is one O(1) pread away and an
// (ε, δ) training run against an N-row dataset materializes only the n
// rows it samples. The store is the dataset-side sibling of the serving
// layer's model registry: upload once, train and tune many times against a
// dataset id, survive restarts.
//
// On-disk layout — one directory per dataset under the store root:
//
//	d-000001/
//	  manifest.json   shape, task, label stats, sizes, CRC32 checksums
//	  rows.bin        row records, back to back (see below)
//	  index.bin       rows × uint64 little-endian offsets into rows.bin
//
// Row records (little-endian):
//
//	dense:  label float64 | dim × float64 values
//	sparse: label float64 | nnz uint32 | nnz × int32 indices | nnz × float64 values
//
// The manifest is written last and atomically, so a directory with a
// manifest is a complete ingest; directories without one are garbage from
// a crashed ingest and are swept on open. Float64 bits pass through encode
// and decode untouched, which is what makes store-backed training
// byte-identical to the in-memory path on the same seed.
package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"time"

	"blinkml/internal/dataset"
)

// FormatVersion is the on-disk format version this package reads and
// writes.
const FormatVersion = 1

// Manifest is the checksummed metadata record of one stored dataset
// (manifest.json). It is everything the serving layer needs to admit a
// train request — shape, task, label stats — without touching rows.bin.
type Manifest struct {
	FormatVersion int    `json:"format_version"`
	Name          string `json:"name"`
	Task          string `json:"task"`
	Rows          int    `json:"rows"`
	Dim           int    `json:"dim"`
	NumClasses    int    `json:"num_classes,omitempty"`
	// Sparse marks the row record encoding (LibSVM ingests are sparse, CSV
	// dense).
	Sparse bool `json:"sparse"`
	// NNZ is the total number of stored entries across all rows; NNZ/(Rows·Dim)
	// is the dataset's density.
	NNZ int64 `json:"nnz"`

	RowBytes   int64  `json:"row_bytes"`
	IndexBytes int64  `json:"index_bytes"`
	RowCRC32   uint32 `json:"row_crc32"`
	IndexCRC32 uint32 `json:"index_crc32"`

	LabelMin  float64 `json:"label_min"`
	LabelMax  float64 `json:"label_max"`
	LabelMean float64 `json:"label_mean"`

	SourceFormat string    `json:"source_format"`
	CreatedAt    time.Time `json:"created_at"`
}

// TaskValue returns the manifest's task as a dataset constant.
func (m *Manifest) TaskValue() (dataset.Task, error) { return dataset.ParseTask(m.Task) }

// Density returns NNZ / (Rows·Dim), the fraction of stored entries.
func (m *Manifest) Density() float64 {
	if m.Rows == 0 || m.Dim == 0 {
		return 0
	}
	return float64(m.NNZ) / (float64(m.Rows) * float64(m.Dim))
}

func (m *Manifest) validate() error {
	if m.FormatVersion != FormatVersion {
		return fmt.Errorf("store: manifest format version %d, this build reads %d", m.FormatVersion, FormatVersion)
	}
	if m.Rows <= 0 || m.Dim <= 0 {
		return fmt.Errorf("store: manifest has %d rows × %d dim", m.Rows, m.Dim)
	}
	if _, err := m.TaskValue(); err != nil {
		return err
	}
	if want := int64(m.Rows) * 8; m.IndexBytes != want {
		return fmt.Errorf("store: manifest index_bytes %d, want %d for %d rows", m.IndexBytes, want, m.Rows)
	}
	return nil
}

const manifestName = "manifest.json"

func writeManifest(dir string, m *Manifest) error {
	tmp, err := os.CreateTemp(dir, "manifest.tmp-*")
	if err != nil {
		return fmt.Errorf("store: write manifest: %w", err)
	}
	enc := json.NewEncoder(tmp)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: write manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: write manifest: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, manifestName)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: write manifest: %w", err)
	}
	return nil
}

func readManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("store: decode manifest: %w", err)
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// encodeRow appends the record for one row to buf and returns the extended
// slice. Dense records carry exactly dim values; sparse records carry the
// (index, value) pairs.
func encodeRow(buf []byte, sparse bool, row dataset.RowData) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(row.Label))
	if !sparse {
		for _, v := range row.Val {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
		return buf
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(row.Idx)))
	for _, i := range row.Idx {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(i))
	}
	for _, v := range row.Val {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

// sparseRecNNZ returns the stored-entry count of a sparse record from its
// byte length alone: label (8) + count (4) + nnz × (4 + 8). Knowing nnz
// before touching the payload is what lets Materialize size one contiguous
// CSR block from the index spans and decode every record straight into it.
func sparseRecNNZ(recLen int64) (int, error) {
	payload := recLen - 12
	if payload < 0 || payload%12 != 0 {
		return 0, fmt.Errorf("store: sparse record length %d is not 12+12·nnz", recLen)
	}
	return int(payload / 12), nil
}

// decodeSparseInto parses one sparse record into caller-provided index and
// value slices (len(idx) == len(val) == the record's nnz) and returns the
// label. It is decodeRow's allocation-free core: CSR materialization points
// idx/val at sub-slices of one shared block.
func decodeSparseInto(rec []byte, dim int, idx []int32, val []float64) (float64, error) {
	if len(rec) < 12 {
		return 0, fmt.Errorf("store: sparse record truncated (%d bytes)", len(rec))
	}
	label := math.Float64frombits(binary.LittleEndian.Uint64(rec))
	rec = rec[8:]
	nnz := int(binary.LittleEndian.Uint32(rec))
	rec = rec[4:]
	if nnz != len(idx) || len(rec) != 12*nnz {
		return 0, fmt.Errorf("store: sparse record has %d payload bytes, want %d for nnz=%d", len(rec), 12*len(idx), len(idx))
	}
	prev := int32(-1)
	for i := range idx {
		j := int32(binary.LittleEndian.Uint32(rec[4*i:]))
		if j <= prev || int(j) >= dim {
			return 0, fmt.Errorf("store: corrupt sparse record: index %d at position %d (prev %d, dim %d)", j, i, prev, dim)
		}
		idx[i] = j
		prev = j
	}
	rec = rec[4*nnz:]
	for i := range val {
		val[i] = math.Float64frombits(binary.LittleEndian.Uint64(rec[8*i:]))
	}
	return label, nil
}

// decodeSparseDense parses a sparse record into a dense row — the
// materialize-time fallback when the manifest's measured density says the
// dense kernels will win.
func decodeSparseDense(rec []byte, dim int) (dataset.DenseRow, float64, error) {
	nnz, err := sparseRecNNZ(int64(len(rec)))
	if err != nil {
		return nil, 0, err
	}
	idx := make([]int32, nnz)
	val := make([]float64, nnz)
	label, err := decodeSparseInto(rec, dim, idx, val)
	if err != nil {
		return nil, 0, err
	}
	out := make(dataset.DenseRow, dim)
	for i, j := range idx {
		out[j] = val[i]
	}
	return out, label, nil
}

// decodeRow parses one record. dim is the ambient dimension from the
// manifest.
func decodeRow(rec []byte, sparse bool, dim int) (dataset.Row, float64, error) {
	if len(rec) < 8 {
		return nil, 0, fmt.Errorf("store: row record truncated (%d bytes)", len(rec))
	}
	label := math.Float64frombits(binary.LittleEndian.Uint64(rec))
	rec = rec[8:]
	if !sparse {
		if len(rec) != 8*dim {
			return nil, 0, fmt.Errorf("store: dense record has %d value bytes, want %d", len(rec), 8*dim)
		}
		vals := make([]float64, dim)
		for i := range vals {
			vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(rec[8*i:]))
		}
		return dataset.DenseRow(vals), label, nil
	}
	if len(rec) < 4 {
		return nil, 0, fmt.Errorf("store: sparse record truncated (%d bytes)", len(rec))
	}
	nnz := int(binary.LittleEndian.Uint32(rec))
	rec = rec[4:]
	if len(rec) != 12*nnz {
		return nil, 0, fmt.Errorf("store: sparse record has %d payload bytes, want %d for nnz=%d", len(rec), 12*nnz, nnz)
	}
	idx := make([]int32, nnz)
	for i := range idx {
		idx[i] = int32(binary.LittleEndian.Uint32(rec[4*i:]))
	}
	vals := make([]float64, nnz)
	rec = rec[4*nnz:]
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(rec[8*i:]))
	}
	sp, err := dataset.NewSparseRow(dim, idx, vals)
	if err != nil {
		return nil, 0, fmt.Errorf("store: corrupt sparse record: %w", err)
	}
	return sp, label, nil
}
