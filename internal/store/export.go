package store

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Bundle format: a stored dataset as one self-describing stream, so a
// cluster worker can fetch a dataset from the coordinator's store over HTTP
// and land it in its own store byte-for-byte:
//
//	8-byte magic "BMLDSB01"
//	uint32 LE manifest length
//	manifest JSON (carries sizes and CRC32 checksums)
//	rows.bin   (Manifest.RowBytes bytes)
//	index.bin  (Manifest.IndexBytes bytes)
//
// Import verifies both payload checksums against the manifest before the
// dataset is promoted, so a truncated or corrupted transfer can never
// become a servable dataset.
var bundleMagic = [8]byte{'B', 'M', 'L', 'D', 'S', 'B', '0', '1'}

// ErrBundleExists is returned by ImportBundle when the id is already
// present; callers treat it as success after re-checking the checksums.
var ErrBundleExists = errors.New("store: dataset id already present")

// ExportTo streams the dataset as a bundle. It is a sequential read of both
// data files — no row decoding — so exporting costs disk bandwidth, not
// CPU.
func (h *Handle) ExportTo(w io.Writer) error {
	man, err := json.Marshal(h.man)
	if err != nil {
		return fmt.Errorf("store: export %s: encode manifest: %w", h.ID, err)
	}
	if _, err := w.Write(bundleMagic[:]); err != nil {
		return fmt.Errorf("store: export %s: %w", h.ID, err)
	}
	var sz [4]byte
	binary.LittleEndian.PutUint32(sz[:], uint32(len(man)))
	if _, err := w.Write(sz[:]); err != nil {
		return fmt.Errorf("store: export %s: %w", h.ID, err)
	}
	if _, err := w.Write(man); err != nil {
		return fmt.Errorf("store: export %s: %w", h.ID, err)
	}
	if _, err := io.Copy(w, io.NewSectionReader(h.rows, 0, h.man.RowBytes)); err != nil {
		return fmt.Errorf("store: export %s: rows: %w", h.ID, err)
	}
	if _, err := io.Copy(w, io.NewSectionReader(h.idx, 0, h.man.IndexBytes)); err != nil {
		return fmt.Errorf("store: export %s: index: %w", h.ID, err)
	}
	return nil
}

// ReadBundleManifest decodes and validates a bundle's header, leaving r
// positioned at the start of the rows payload.
func ReadBundleManifest(r io.Reader) (*Manifest, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("store: bundle: read magic: %w", err)
	}
	if magic != bundleMagic {
		return nil, fmt.Errorf("store: bundle: bad magic %q", magic[:])
	}
	var sz [4]byte
	if _, err := io.ReadFull(r, sz[:]); err != nil {
		return nil, fmt.Errorf("store: bundle: read manifest size: %w", err)
	}
	n := binary.LittleEndian.Uint32(sz[:])
	const maxManifest = 1 << 20
	if n == 0 || n > maxManifest {
		return nil, fmt.Errorf("store: bundle: manifest size %d out of range", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("store: bundle: read manifest: %w", err)
	}
	var man Manifest
	if err := json.Unmarshal(buf, &man); err != nil {
		return nil, fmt.Errorf("store: bundle: decode manifest: %w", err)
	}
	if err := man.validate(); err != nil {
		return nil, err
	}
	return &man, nil
}

// ImportBundle streams a bundle produced by ExportTo into this store under
// the given id (the id the exporting store issued — cluster workers mirror
// the coordinator's ids so one name means one dataset everywhere). The
// write is crash-safe like Ingest: payloads land in a temporary directory,
// checksums are verified against the manifest, the manifest is written
// last, and only then is the directory renamed to its id. If the id is
// already present with matching checksums the stream is drained cheaply and
// the existing handle is returned.
func (s *Store) ImportBundle(id string, r io.Reader) (*Handle, error) {
	if !validID(id) {
		return nil, fmt.Errorf("store: import: invalid dataset id %q", id)
	}
	man, err := ReadBundleManifest(r)
	if err != nil {
		return nil, err
	}
	if h, err := s.Get(id); err == nil {
		if h.man.RowCRC32 == man.RowCRC32 && h.man.IndexCRC32 == man.IndexCRC32 {
			return h, nil
		}
		return nil, fmt.Errorf("%w with different content: %q", ErrBundleExists, id)
	}

	tmp, err := os.MkdirTemp(s.dir, "ingest-*")
	if err != nil {
		return nil, fmt.Errorf("store: import: %w", err)
	}
	cleanup := func() { os.RemoveAll(tmp) }

	copyPart := func(name string, size int64, wantCRC uint32) error {
		f, err := os.Create(filepath.Join(tmp, name))
		if err != nil {
			return fmt.Errorf("store: import: %w", err)
		}
		bw := bufio.NewWriterSize(f, 1<<20)
		crc := &crcWriter{w: bw}
		if _, err := io.CopyN(crc, r, size); err != nil {
			f.Close()
			return fmt.Errorf("store: import: copy %s: %w", name, err)
		}
		if err := bw.Flush(); err != nil {
			f.Close()
			return fmt.Errorf("store: import: flush %s: %w", name, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("store: import: close %s: %w", name, err)
		}
		if crc.crc != wantCRC {
			return fmt.Errorf("store: import: %s checksum %08x, manifest says %08x", name, crc.crc, wantCRC)
		}
		return nil
	}
	if err := copyPart("rows.bin", man.RowBytes, man.RowCRC32); err != nil {
		cleanup()
		return nil, err
	}
	if err := copyPart("index.bin", man.IndexBytes, man.IndexCRC32); err != nil {
		cleanup()
		return nil, err
	}
	if err := writeManifest(tmp, man); err != nil {
		cleanup()
		return nil, err
	}
	dst := filepath.Join(s.dir, id)
	if err := os.Rename(tmp, dst); err != nil {
		cleanup()
		// Lost a race with a concurrent import of the same id: adopt the
		// winner.
		if h, gerr := s.Get(id); gerr == nil {
			return h, nil
		}
		return nil, fmt.Errorf("store: import: %w", err)
	}
	h, err := openHandle(id, dst, man, s.observer())
	if err != nil {
		os.RemoveAll(dst)
		return nil, err
	}
	s.mu.Lock()
	s.sets[id] = h
	if n, err := strconv.ParseUint(strings.TrimPrefix(id, "d-"), 10, 64); err == nil && n > s.seq {
		s.seq = n
	}
	s.mu.Unlock()
	return h, nil
}
