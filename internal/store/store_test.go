package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"blinkml/internal/dataset"
)

// rowVec densifies a row for comparison.
func rowVec(r dataset.Row, dim int) []float64 {
	v := make([]float64, dim)
	r.AddTo(v, 1)
	return v
}

func sameRows(t *testing.T, got, want *dataset.Dataset, label string) {
	t.Helper()
	if got.Len() != want.Len() || got.Dim != want.Dim {
		t.Fatalf("%s: shape %dx%d, want %dx%d", label, got.Len(), got.Dim, want.Len(), want.Dim)
	}
	for i := 0; i < got.Len(); i++ {
		a, b := rowVec(got.X[i], got.Dim), rowVec(want.X[i], want.Dim)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("%s: row %d feature %d: %v != %v", label, i, j, a[j], b[j])
			}
		}
	}
	if len(got.Y) != len(want.Y) {
		t.Fatalf("%s: %d labels, want %d", label, len(got.Y), len(want.Y))
	}
	for i := range got.Y {
		if got.Y[i] != want.Y[i] {
			t.Fatalf("%s: label %d: %v != %v", label, i, got.Y[i], want.Y[i])
		}
	}
}

const csvInput = "0.5,-1.25,3,0\n1.5,2.25,-0.75,1\n9,8,7,1\n-1,-2,-3,0\n0.125,0.25,0.5,1\n"

func ingestCSV(t *testing.T, dir string) (*Store, *Handle) {
	t.Helper()
	st, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	h, err := st.Ingest(strings.NewReader(csvInput), IngestOptions{
		Name: "tiny", Format: "csv", Task: dataset.BinaryClassification,
	})
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	return st, h
}

func TestIngestCSVRoundTrip(t *testing.T) {
	dir := t.TempDir()
	_, h := ingestCSV(t, dir)

	want, err := dataset.ReadCSV(strings.NewReader(csvInput), -1, dataset.BinaryClassification)
	if err != nil {
		t.Fatalf("readcsv: %v", err)
	}
	man := h.Manifest()
	if man.Rows != 5 || man.Dim != 3 || man.Sparse || man.Task != "binary" {
		t.Fatalf("manifest %+v", man)
	}
	if man.LabelMin != 0 || man.LabelMax != 1 || man.LabelMean != 0.6 {
		t.Fatalf("label stats min=%v max=%v mean=%v", man.LabelMin, man.LabelMax, man.LabelMean)
	}
	idx := make([]int, man.Rows)
	for i := range idx {
		idx[i] = i
	}
	got, err := h.Materialize(idx)
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	sameRows(t, got, want, "all rows")

	// Scattered access in non-ascending order.
	got, err = h.Materialize([]int{4, 0, 2})
	if err != nil {
		t.Fatalf("materialize scattered: %v", err)
	}
	sameRows(t, got, want.Subset([]int{4, 0, 2}), "scattered rows")

	if err := h.Verify(); err != nil {
		t.Fatalf("verify fresh ingest: %v", err)
	}
}

func TestIngestLibSVMRoundTrip(t *testing.T) {
	in := "1 1:0.5 3:2\n0 2:1\n1 1:-3 4:0.25\n"
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	h, err := st.Ingest(strings.NewReader(in), IngestOptions{
		Format: "libsvm", Task: dataset.BinaryClassification,
	})
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	man := h.Manifest()
	if !man.Sparse || man.Dim != 4 || man.Rows != 3 || man.NNZ != 5 {
		t.Fatalf("manifest %+v", man)
	}
	want, err := dataset.ReadLibSVM(strings.NewReader(in), 0, dataset.BinaryClassification)
	if err != nil {
		t.Fatalf("readlibsvm: %v", err)
	}
	got, err := h.Materialize([]int{0, 1, 2})
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	sameRows(t, got, want, "sparse rows")
	// At 5/12 ≈ 42% density this dataset is above the dense threshold, so
	// materialization falls back to dense rows.
	if _, ok := got.X[0].(dataset.DenseRow); !ok {
		t.Fatalf("above-threshold materialize should densify, got %T", got.X[0])
	}
}

// TestMaterializeSparseCSR: a below-threshold sparse dataset materializes
// into one contiguous CSR block — sparse row views, correct values, correct
// per-row nnz — including out-of-order and repeated-row requests.
func TestMaterializeSparseCSR(t *testing.T) {
	// dim 20, 2 entries per row → 10% density, well under the threshold.
	in := "1 3:0.5 20:2\n0 7:1 9:-4\n1 1:-3 14:0.25\n0 2:8 19:16\n"
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	h, err := st.Ingest(strings.NewReader(in), IngestOptions{
		Format: "libsvm", Task: dataset.BinaryClassification,
	})
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	want, err := dataset.ReadLibSVM(strings.NewReader(in), 0, dataset.BinaryClassification)
	if err != nil {
		t.Fatalf("readlibsvm: %v", err)
	}
	got, err := h.Materialize([]int{2, 0, 3, 1, 2})
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	sameRows(t, got, want.Subset([]int{2, 0, 3, 1, 2}), "csr rows")
	for i, r := range got.X {
		sp, ok := r.(*dataset.SparseRow)
		if !ok {
			t.Fatalf("row %d: want sparse, got %T", i, r)
		}
		if len(sp.Idx) != 2 {
			t.Fatalf("row %d: nnz %d, want 2", i, len(sp.Idx))
		}
	}
	// CSR row views must be capacity-capped so an append through one row
	// cannot clobber the next row's entries in the shared block.
	a := got.X[0].(*dataset.SparseRow)
	if cap(a.Val) != len(a.Val) || cap(a.Idx) != len(a.Idx) {
		t.Fatal("CSR row views are not capacity-capped")
	}
}

// TestSparseCrashSafety: a sparse dataset torn on disk must fail loudly,
// never silently mis-decode. Truncated rows.bin is refused at open; a
// tampered index entry whose span is not a whole sparse record is refused
// at materialize.
func TestSparseCrashSafety(t *testing.T) {
	in := "1 3:0.5 20:2\n0 7:1 9:-4\n1 1:-3 14:0.25\n"
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	h, err := st.Ingest(strings.NewReader(in), IngestOptions{Format: "libsvm", Task: dataset.BinaryClassification})
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	id := h.ID

	// Tamper with one index offset so row 1's span has a non-record length.
	idxPath := filepath.Join(dir, id, "index.bin")
	raw, err := os.ReadFile(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	tampered := append([]byte(nil), raw...)
	tampered[8]++ // shift row 1's start offset by one byte
	if err := os.WriteFile(idxPath, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	h2, err := st2.Get(id)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if _, err := h2.Materialize([]int{0, 1, 2}); err == nil {
		t.Fatal("materialize decoded a torn sparse record")
	}
	if err := os.WriteFile(idxPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// Truncate rows.bin (a crash mid-write): the size check refuses the
	// handle, so the dataset is skipped rather than served corrupt.
	rowsPath := filepath.Join(dir, id, "rows.bin")
	info, err := os.Stat(rowsPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(rowsPath, info.Size()-5); err != nil {
		t.Fatal(err)
	}
	st3, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after truncate: %v", err)
	}
	if _, err := st3.Get(id); err == nil {
		t.Fatal("truncated sparse dataset served")
	}
}

func TestStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	st, h := ingestCSV(t, dir)
	id := h.ID
	if got := st.Len(); got != 1 {
		t.Fatalf("len %d", got)
	}

	st2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	h2, err := st2.Get(id)
	if err != nil {
		t.Fatalf("get after reopen: %v", err)
	}
	if h2.Manifest().Name != "tiny" {
		t.Fatalf("manifest lost: %+v", h2.Manifest())
	}
	// Seq continues: the next ingest must not collide with the old id.
	h3, err := st2.Ingest(strings.NewReader(csvInput), IngestOptions{Format: "csv", Task: dataset.BinaryClassification})
	if err != nil {
		t.Fatalf("second ingest: %v", err)
	}
	if h3.ID == id {
		t.Fatalf("id %s reissued after reopen", id)
	}
}

func TestDeleteRemovesDiskState(t *testing.T) {
	dir := t.TempDir()
	st, h := ingestCSV(t, dir)
	if err := st.Delete(h.ID); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, err := st.Get(h.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get after delete: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, h.ID)); !os.IsNotExist(err) {
		t.Fatalf("directory survived delete: %v", err)
	}
	if err := st.Delete(h.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestOpenSweepsCrashedIngest(t *testing.T) {
	dir := t.TempDir()
	junk := filepath.Join(dir, "ingest-stale123")
	if err := os.MkdirAll(junk, 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := os.Stat(junk); !os.IsNotExist(err) {
		t.Fatal("crashed ingest dir not swept")
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	st, h := ingestCSV(t, dir)
	id := h.ID
	// Flip one byte in the middle of rows.bin.
	path := filepath.Join(dir, id, "rows.bin")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(st.Dir())
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	h2, err := st2.Get(id)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if err := h2.Verify(); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corruption not detected: %v", err)
	}
}

func TestIngestValidation(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		in   string
		opt  IngestOptions
	}{
		{"bad format", csvInput, IngestOptions{Format: "parquet", Task: dataset.Regression}},
		{"empty input", "", IngestOptions{Format: "csv", Task: dataset.Regression}},
		{"bad binary label", "1,2,7\n", IngestOptions{Format: "csv", Task: dataset.BinaryClassification}},
		{"fractional class", "1,2,1.5\n", IngestOptions{Format: "csv", Task: dataset.MultiClassification}},
		{"class beyond declared", "1,2,5\n", IngestOptions{Format: "csv", Task: dataset.MultiClassification, NumClasses: 3}},
	}
	for _, c := range cases {
		if _, err := st.Ingest(strings.NewReader(c.in), c.opt); err == nil {
			t.Errorf("%s: ingest accepted", c.name)
		}
	}
	// Failed ingests must leave no residue behind.
	entries, err := os.ReadDir(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("failed ingests left %d entries on disk", len(entries))
	}
}

func TestScanStreamsInOrder(t *testing.T) {
	_, h := ingestCSV(t, t.TempDir())
	want, _ := dataset.ReadCSV(strings.NewReader(csvInput), -1, dataset.BinaryClassification)
	n := 0
	err := h.Scan(func(i int, row dataset.Row, label float64) error {
		if i != n {
			t.Fatalf("scan order broke: got %d, want %d", i, n)
		}
		a, b := rowVec(row, 3), rowVec(want.X[i], 3)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("scan row %d feature %d: %v != %v", i, j, a[j], b[j])
			}
		}
		if label != want.Y[i] {
			t.Fatalf("scan row %d label %v, want %v", i, label, want.Y[i])
		}
		n++
		return nil
	})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if n != 5 {
		t.Fatalf("scanned %d rows", n)
	}
}

func TestLimitMaterialize(t *testing.T) {
	_, h := ingestCSV(t, t.TempDir())
	h.LimitMaterialize(2)
	if _, err := h.Materialize([]int{0, 1, 2}); err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("budget not enforced: %v", err)
	}
	if _, err := h.Materialize([]int{0, 1}); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	h.LimitMaterialize(0)
	if _, err := h.Materialize([]int{0, 1, 2, 3, 4}); err != nil {
		t.Fatalf("after lifting budget: %v", err)
	}
}

func TestRowsMaterializedCounter(t *testing.T) {
	_, h := ingestCSV(t, t.TempDir())
	if _, err := h.Materialize([]int{0, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Materialize([]int{1}); err != nil {
		t.Fatal(err)
	}
	if got := h.RowsMaterialized(); got != 3 {
		t.Fatalf("rows materialized %d, want 3", got)
	}
}

// TestSamplePrefixNests checks the store-level out-of-core sampler: prefix
// nesting across sizes at one seed, difference across seeds, and clamping.
func TestSamplePrefixNests(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&buf, "%d,%d,%d\n", i, 2*i, i%2)
	}
	h, err := st.Ingest(&buf, IngestOptions{Format: "csv", Task: dataset.BinaryClassification})
	if err != nil {
		t.Fatal(err)
	}
	small, err := h.SamplePrefix(5, 20)
	if err != nil {
		t.Fatal(err)
	}
	big, err := h.SamplePrefix(5, 80)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, big.Subset(firstN(20)), small, "prefix")

	other, err := h.SamplePrefix(6, 20)
	if err != nil {
		t.Fatal(err)
	}
	diff := false
	for i := 0; i < 20 && !diff; i++ {
		diff = rowVec(other.X[i], 2)[0] != rowVec(small.X[i], 2)[0]
	}
	if !diff {
		t.Fatal("different seeds drew identical samples")
	}

	clamped, err := h.SamplePrefix(5, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if clamped.Len() != 200 {
		t.Fatalf("clamped sample has %d rows", clamped.Len())
	}
}

func firstN(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// TestGetAdoptsCrossProcessImport: a second store (standing in for a
// separate process, e.g. the blinkml-data CLI next to a running server)
// ingests into the same directory; the first store must serve the new id
// on Get without reopening — and must not reissue the id afterwards.
func TestGetAdoptsCrossProcessImport(t *testing.T) {
	dir := t.TempDir()
	server, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	h, err := cli.Ingest(strings.NewReader(csvInput), IngestOptions{Format: "csv", Task: dataset.BinaryClassification})
	if err != nil {
		t.Fatal(err)
	}
	adopted, err := server.Get(h.ID)
	if err != nil {
		t.Fatalf("server did not adopt CLI import: %v", err)
	}
	if adopted.Manifest().Rows != 5 {
		t.Fatalf("adopted manifest %+v", adopted.Manifest())
	}
	// The adoption must also advance the server's id counter.
	h2, err := server.Ingest(strings.NewReader(csvInput), IngestOptions{Format: "csv", Task: dataset.BinaryClassification})
	if err != nil {
		t.Fatalf("ingest after adoption: %v", err)
	}
	if h2.ID == h.ID {
		t.Fatalf("id %s reissued after adoption", h.ID)
	}
	// Hostile ids never touch the filesystem.
	for _, id := range []string{"../evil", "d-../../x", "d-", "m-000001", "d-12a"} {
		if _, err := server.Get(id); !errors.Is(err, ErrNotFound) {
			t.Fatalf("id %q: %v", id, err)
		}
	}
}

// TestSeqRecoversFromUnreadableDataset: a directory whose manifest cannot
// be read (future format version) still owns its id — reopening must not
// reissue it.
func TestSeqRecoversFromUnreadableDataset(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "d-000007")
	if err := os.MkdirAll(bad, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(bad, "manifest.json"), []byte(`{"format_version":999}`), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	h, err := st.Ingest(strings.NewReader(csvInput), IngestOptions{Format: "csv", Task: dataset.BinaryClassification})
	if err != nil {
		t.Fatalf("ingest next to unreadable dataset: %v", err)
	}
	if h.ID != "d-000008" {
		t.Fatalf("id %s, want d-000008 (seq must clear the unreadable d-000007)", h.ID)
	}
}
