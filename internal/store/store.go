package store

import (
	"bufio"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"blinkml/internal/dataset"
)

// ErrNotFound is returned for lookups and deletes of unknown dataset ids.
var ErrNotFound = errors.New("store: dataset not found")

// Observer receives store events; the serving layer implements it to feed
// the /metrics counters. Methods must be safe for concurrent use.
type Observer interface {
	// IngestDone fires after a successful ingest.
	IngestDone(rows int, bytes int64, d time.Duration)
	// Materialized fires after each batch of rows is read off disk.
	Materialized(rows int, d time.Duration)
}

// Store is a persistent, concurrency-safe dataset registry rooted at one
// directory: each dataset is a subdirectory in the binary format described
// in the package comment. A store reopened on the same directory serves
// the same datasets it did before the restart.
type Store struct {
	dir string
	obs Observer

	mu   sync.RWMutex
	sets map[string]*Handle
	seq  uint64 // last id issued (monotonic, survives restarts)
}

// Open opens (creating if needed) a store rooted at dir, recovering every
// completed ingest and sweeping directories any crashed ingest left
// behind. Datasets that fail to open are skipped, not fatal: one corrupt
// directory must not take down the whole store.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	s := &Store{dir: dir, sets: make(map[string]*Handle)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: read dir: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() {
			continue
		}
		if strings.HasPrefix(name, "ingest-") {
			os.RemoveAll(filepath.Join(dir, name)) // crashed ingest
			continue
		}
		if !strings.HasPrefix(name, "d-") {
			continue
		}
		// Recover seq from every d- directory, readable or not: an
		// unreadable (future-version, corrupt) dataset still owns its id,
		// and reissuing it would collide on the promote rename.
		if n, err := strconv.ParseUint(strings.TrimPrefix(name, "d-"), 10, 64); err == nil && n > s.seq {
			s.seq = n
		}
		sub := filepath.Join(dir, name)
		man, err := readManifest(sub)
		if err != nil {
			continue // incomplete or future-version dataset; leave it on disk
		}
		h, err := openHandle(name, sub, man, nil)
		if err != nil {
			continue
		}
		s.sets[name] = h
	}
	return s, nil
}

// SetObserver installs the metrics observer on the store and every open
// handle. Call it before serving traffic.
func (s *Store) SetObserver(obs Observer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.obs = obs
	for _, h := range s.sets {
		h.obs = obs
	}
}

// Dir returns the backing directory.
func (s *Store) Dir() string { return s.dir }

// Get returns the handle for id. If the id is unknown in memory but a
// completed dataset directory for it exists on disk — another process
// (the blinkml-data CLI) imported it since this store was opened — the
// dataset is adopted, so a CLI import next to a running server is
// trainable without a restart. (Concurrent *writers* on one directory
// remain unsupported: each process issues ids from its own counter.)
func (s *Store) Get(id string) (*Handle, error) {
	s.mu.RLock()
	h, ok := s.sets[id]
	s.mu.RUnlock()
	if ok {
		return h, nil
	}
	// Only well-formed ids may touch the filesystem: the id arrives from
	// the HTTP API, and anything but d-<digits> (path separators, "..")
	// must not turn into a path probe.
	if !validID(id) {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	sub := filepath.Join(s.dir, id)
	man, err := readManifest(sub)
	if err != nil {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if h, ok := s.sets[id]; ok { // raced with another adopter
		return h, nil
	}
	h, err = openHandle(id, sub, man, s.obs)
	if err != nil {
		return nil, err
	}
	s.sets[id] = h
	if n, err := strconv.ParseUint(strings.TrimPrefix(id, "d-"), 10, 64); err == nil && n > s.seq {
		s.seq = n
	}
	return h, nil
}

// validID reports whether id has the exact d-<digits> shape the store
// issues.
func validID(id string) bool {
	if !strings.HasPrefix(id, "d-") || len(id) == 2 {
		return false
	}
	for _, c := range id[2:] {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// List returns the stored ids in ascending order.
func (s *Store) List() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := make([]string, 0, len(s.sets))
	for id := range s.sets {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Len returns the number of stored datasets.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.sets)
}

// SparseStats returns the aggregate over sparse-encoded datasets: how many
// stored rows use the sparse record format and their total stored entries.
// The serving layer exports both as gauges.
func (s *Store) SparseStats() (rows, nnz int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, h := range s.sets {
		if h.man.Sparse {
			rows += int64(h.man.Rows)
			nnz += h.man.NNZ
		}
	}
	return rows, nnz
}

// DiskBytes returns the total on-disk footprint of all stored datasets.
func (s *Store) DiskBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var total int64
	for _, h := range s.sets {
		total += h.DiskBytes()
	}
	return total
}

// Delete evicts id from memory and disk. In-flight materializations racing
// the delete fail with a read error rather than corrupting anything.
func (s *Store) Delete(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.sets[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	delete(s.sets, id)
	h.close()
	if err := os.RemoveAll(h.dir); err != nil {
		return fmt.Errorf("store: delete %s: %w", id, err)
	}
	return nil
}

// IngestOptions configures one streaming ingest.
type IngestOptions struct {
	// Name labels the dataset (defaults to the assigned id).
	Name string
	// Format is "csv" or "libsvm".
	Format string
	// Task tags the label semantics; for MultiClassification the class
	// count is inferred from the labels unless NumClasses is set.
	Task       dataset.Task
	NumClasses int
	// LabelCol is the CSV label column (nil = last column; negative counts
	// from the end). Ignored for LibSVM.
	LabelCol *int
	// Dim declares the ambient dimension for LibSVM (0 = infer from the
	// largest index seen). For CSV it instead validates the feature count.
	Dim int
	// MaxLineBytes caps one input line (default dataset.DefaultMaxLineBytes).
	MaxLineBytes int
}

// Ingest streams r — never fully resident — into a new stored dataset and
// returns its open handle. The write is crash-safe: everything lands in a
// temporary directory, the manifest is written last, and only then is the
// directory renamed to its id.
func (s *Store) Ingest(r io.Reader, opt IngestOptions) (*Handle, error) {
	sparse := false
	switch opt.Format {
	case "csv":
	case "libsvm":
		sparse = true
	default:
		return nil, fmt.Errorf("store: unknown format %q (want csv|libsvm)", opt.Format)
	}

	start := time.Now()
	tmp, err := os.MkdirTemp(s.dir, "ingest-*")
	if err != nil {
		return nil, fmt.Errorf("store: ingest: %w", err)
	}

	ing, err := newIngestWriters(tmp)
	if err != nil {
		os.RemoveAll(tmp)
		return nil, err
	}
	// Every error exit must release the two data-file descriptors (close
	// is a no-op after a successful finish) or repeated bad uploads would
	// bleed the process dry of fds.
	cleanup := func() {
		ing.close()
		os.RemoveAll(tmp)
	}

	man := &Manifest{
		FormatVersion: FormatVersion,
		Name:          opt.Name,
		Task:          opt.Task.String(),
		Sparse:        sparse,
		SourceFormat:  opt.Format,
		LabelMin:      math.Inf(1),
		LabelMax:      math.Inf(-1),
	}
	var labelSum float64
	maxClass := -1
	maxIdx := int32(-1)
	var encBuf []byte

	consume := func(row dataset.RowData) error {
		if err := validateLabel(opt.Task, row); err != nil {
			return err
		}
		if sparse {
			if n := len(row.Idx); n > 0 && row.Idx[n-1] > maxIdx {
				maxIdx = row.Idx[n-1]
			}
			man.NNZ += int64(len(row.Idx))
		} else {
			man.Dim = len(row.Val)
			man.NNZ += int64(len(row.Val))
		}
		if c := int(row.Label); opt.Task == dataset.MultiClassification && c > maxClass {
			maxClass = c
		}
		if row.Label < man.LabelMin {
			man.LabelMin = row.Label
		}
		if row.Label > man.LabelMax {
			man.LabelMax = row.Label
		}
		labelSum += row.Label
		man.Rows++
		encBuf = encodeRow(encBuf[:0], sparse, row)
		return ing.writeRecord(encBuf)
	}

	sopt := dataset.StreamOptions{LabelCol: opt.LabelCol, Dim: opt.Dim, MaxLineBytes: opt.MaxLineBytes}
	if sparse {
		err = dataset.StreamLibSVM(r, sopt, consume)
	} else {
		err = dataset.StreamCSV(r, sopt, consume)
	}
	if err == nil {
		err = ing.finish(man)
	}
	if err != nil {
		cleanup()
		return nil, err
	}
	if man.Rows == 0 {
		cleanup()
		return nil, errors.New("store: ingest: input has no rows")
	}
	if sparse {
		man.Dim = opt.Dim
		if man.Dim <= 0 {
			man.Dim = int(maxIdx) + 1
		}
	}
	if man.Dim <= 0 {
		cleanup()
		return nil, errors.New("store: ingest: could not determine dimension (empty rows?)")
	}
	if opt.Task == dataset.MultiClassification {
		man.NumClasses = opt.NumClasses
		if man.NumClasses == 0 {
			man.NumClasses = maxClass + 1
		} else if maxClass >= man.NumClasses {
			cleanup()
			return nil, fmt.Errorf("store: ingest: class label %d with declared %d classes", maxClass, man.NumClasses)
		}
	}
	man.LabelMean = labelSum / float64(man.Rows)
	man.CreatedAt = time.Now().UTC()

	// Reserve the id, name the dataset, seal the manifest, then atomically
	// promote the directory.
	s.mu.Lock()
	s.seq++
	id := fmt.Sprintf("d-%06d", s.seq)
	s.mu.Unlock()
	if man.Name == "" {
		man.Name = id
	}
	if err := writeManifest(tmp, man); err != nil {
		cleanup()
		return nil, err
	}
	dst := filepath.Join(s.dir, id)
	if err := os.Rename(tmp, dst); err != nil {
		cleanup()
		return nil, fmt.Errorf("store: ingest: %w", err)
	}
	h, err := openHandle(id, dst, man, s.observer())
	if err != nil {
		os.RemoveAll(dst)
		return nil, err
	}
	s.mu.Lock()
	s.sets[id] = h
	s.mu.Unlock()
	if obs := s.observer(); obs != nil {
		obs.IngestDone(man.Rows, h.DiskBytes(), time.Since(start))
	}
	return h, nil
}

func (s *Store) observer() Observer {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.obs
}

// validateLabel enforces the task's label semantics at ingest time, so a
// bad dataset fails on upload, not inside a training worker.
func validateLabel(task dataset.Task, row dataset.RowData) error {
	y := row.Label
	if math.IsNaN(y) || math.IsInf(y, 0) {
		return fmt.Errorf("store: line %d: label is not finite", row.Line)
	}
	switch task {
	case dataset.BinaryClassification:
		if y != 0 && y != 1 {
			return fmt.Errorf("store: line %d: binary label is %v (want 0 or 1)", row.Line, y)
		}
	case dataset.MultiClassification:
		if c := int(y); float64(c) != y || c < 0 {
			return fmt.Errorf("store: line %d: class label is %v (want a non-negative integer)", row.Line, y)
		}
	}
	return nil
}

// ingestWriters owns the two data files during an ingest: buffered writes,
// CRC32 accumulated as bytes go by, offsets appended per record.
type ingestWriters struct {
	rowsF, idxF *os.File
	rowsW, idxW *bufio.Writer
	rowsCRC     *crcWriter
	idxCRC      *crcWriter
	off         uint64
	closed      bool
}

func newIngestWriters(dir string) (*ingestWriters, error) {
	rowsF, err := os.Create(filepath.Join(dir, "rows.bin"))
	if err != nil {
		return nil, fmt.Errorf("store: ingest: %w", err)
	}
	idxF, err := os.Create(filepath.Join(dir, "index.bin"))
	if err != nil {
		rowsF.Close()
		return nil, fmt.Errorf("store: ingest: %w", err)
	}
	w := &ingestWriters{rowsF: rowsF, idxF: idxF}
	w.rowsCRC = &crcWriter{w: rowsF}
	w.idxCRC = &crcWriter{w: idxF}
	w.rowsW = bufio.NewWriterSize(w.rowsCRC, 1<<20)
	w.idxW = bufio.NewWriterSize(w.idxCRC, 1<<16)
	return w, nil
}

func (w *ingestWriters) writeRecord(rec []byte) error {
	var off [8]byte
	for i := 0; i < 8; i++ {
		off[i] = byte(w.off >> (8 * i))
	}
	if _, err := w.idxW.Write(off[:]); err != nil {
		return fmt.Errorf("store: ingest: write index: %w", err)
	}
	if _, err := w.rowsW.Write(rec); err != nil {
		return fmt.Errorf("store: ingest: write rows: %w", err)
	}
	w.off += uint64(len(rec))
	return nil
}

// finish flushes and closes both files and records sizes and checksums in
// the manifest.
func (w *ingestWriters) finish(man *Manifest) error {
	if err := w.rowsW.Flush(); err != nil {
		return fmt.Errorf("store: ingest: flush rows: %w", err)
	}
	if err := w.idxW.Flush(); err != nil {
		return fmt.Errorf("store: ingest: flush index: %w", err)
	}
	if err := w.rowsF.Close(); err != nil {
		return fmt.Errorf("store: ingest: close rows: %w", err)
	}
	if err := w.idxF.Close(); err != nil {
		return fmt.Errorf("store: ingest: close index: %w", err)
	}
	w.closed = true
	man.RowBytes = int64(w.rowsCRC.n)
	man.IndexBytes = int64(w.idxCRC.n)
	man.RowCRC32 = w.rowsCRC.crc
	man.IndexCRC32 = w.idxCRC.crc
	return nil
}

// close releases the descriptors on an abandoned ingest.
func (w *ingestWriters) close() {
	if w.closed {
		return
	}
	w.closed = true
	w.rowsF.Close()
	w.idxF.Close()
}

// crcWriter forwards writes while accumulating a CRC32 and byte count.
type crcWriter struct {
	w   io.Writer
	crc uint32
	n   int64
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	c.n += int64(n)
	return n, err
}
