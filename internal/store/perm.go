package store

// Perm is a seeded pseudorandom permutation of [0, n) computed point-wise:
// Index(i) is the i-th element of a fixed shuffle of the row ids, but no
// O(n) permutation array is ever built — it is a 4-round Feistel network
// over the smallest even-bit-width domain covering n, cycle-walked back
// into range. That gives out-of-core sampling its two properties for free:
// the first k images are a uniform-without-replacement sample of size k in
// O(k) time and O(1) memory, and samples of different sizes nest (a prefix
// is a prefix). Determinism in (n, seed) makes samples reproducible across
// processes and restarts.
type Perm struct {
	n    uint64
	half uint // bits per Feistel half
	mask uint64
	keys [4]uint64
}

// NewPerm builds the permutation of [0, n) seeded by seed. It panics if
// n <= 0 (callers size it from a manifest's row count).
func NewPerm(n int, seed int64) *Perm {
	if n <= 0 {
		panic("store: Perm needs n > 0")
	}
	// Smallest domain 4^half >= n, so cycle-walking expects < 4 steps.
	half := uint(1)
	for 1<<(2*half) < uint64(n) {
		half++
	}
	p := &Perm{n: uint64(n), half: half, mask: 1<<half - 1}
	x := uint64(seed)
	for i := range p.keys {
		x = splitmix64(x)
		p.keys[i] = x
	}
	return p
}

// Index returns the image of i under the permutation. It panics if i is
// outside [0, n).
func (p *Perm) Index(i int) int {
	if i < 0 || uint64(i) >= p.n {
		panic("store: Perm index out of range")
	}
	x := uint64(i)
	for {
		x = p.encrypt(x)
		if x < p.n {
			return int(x)
		}
	}
}

// encrypt is one pass of the Feistel network over the 2·half-bit domain; a
// bijection, so cycle-walking (re-encrypting until the image lands below n)
// yields a bijection on [0, n).
func (p *Perm) encrypt(x uint64) uint64 {
	l, r := x>>p.half, x&p.mask
	for _, k := range p.keys {
		l, r = r, l^(splitmix64(r^k)&p.mask)
	}
	return l<<p.half | r
}

// splitmix64 is the SplitMix64 finalizer — a cheap, well-mixed hash used
// both to derive round keys from the seed and as the Feistel round
// function.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
