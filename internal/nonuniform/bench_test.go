package nonuniform

import (
	"testing"

	"blinkml/internal/dataset"
	"blinkml/internal/models"
	"blinkml/internal/optimize"
	"blinkml/internal/stat"
)

// Ablation: uniform vs leverage sampling at equal sample size on
// heavy-tailed data (the §7 future-work direction).

func BenchmarkTrainUniformSample(b *testing.B) {
	ds, _ := skewedRegression(11, 20000, 8)
	spec := models.LinearRegression{Reg: 1e-4}
	rng := stat.NewRNG(12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := dataset.SampleWithoutReplacement(rng, ds.Len(), 500)
		if _, err := models.Train(spec, ds.Subset(idx), nil, optimize.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainLeverageSample(b *testing.B) {
	ds, _ := skewedRegression(11, 20000, 8)
	spec := models.LinearRegression{Reg: 1e-4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(spec, ds, 500, int64(i), optimize.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLeverageProbs(b *testing.B) {
	ds, _ := skewedRegression(13, 20000, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LeverageProbs(ds)
	}
}
