// Package nonuniform implements the paper's stated future-work extension
// (§7): task-specific non-uniform sampling. BlinkML proper uses uniform
// sampling so that J is directly the empirical gradient covariance; with
// importance sampling the same machinery applies once every per-example
// term is reweighted by 1/(N·pᵢ) — "even when non-uniform random sampling
// is used, J can still be estimated if we know the sampling probabilities"
// (§3.2).
//
// The package provides leverage-style inclusion probabilities (∝ ‖xᵢ‖²,
// the classical row-norm surrogate for statistical leverage used by the
// linear-regression sketching literature the paper cites), a weighted
// sampler, an importance-weighted training objective, and reweighted
// per-example gradients for the ObservedFisher pipeline.
package nonuniform

import (
	"errors"
	"fmt"

	"blinkml/internal/dataset"
	"blinkml/internal/linalg"
	"blinkml/internal/models"
	"blinkml/internal/optimize"
	"blinkml/internal/stat"
)

// LeverageProbs returns sampling probabilities proportional to ‖xᵢ‖² + λ̄,
// where λ̄ is a small uniform smoothing term (10% of the mass) that keeps
// every row reachable — the standard guard against unbounded importance
// weights.
func LeverageProbs(ds *dataset.Dataset) []float64 {
	n := ds.Len()
	probs := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		var sq float64
		ds.X[i].ForEach(func(_ int, v float64) { sq += v * v })
		probs[i] = sq
		total += sq
	}
	if total == 0 {
		for i := range probs {
			probs[i] = 1 / float64(n)
		}
		return probs
	}
	smooth := 0.1 * total / float64(n)
	total += 0.1 * total
	for i := range probs {
		probs[i] = (probs[i] + smooth) / total
	}
	return probs
}

// Sample draws n indices with replacement according to probs and returns
// each draw's importance weight wᵢ = 1/(N·pᵢ), normalized so the weights
// average to 1 over the sample (self-normalized importance sampling keeps
// the objective on the same scale as uniform training).
func Sample(rng *stat.RNG, probs []float64, n int) (idx []int, weights []float64, err error) {
	if n <= 0 {
		return nil, nil, errors.New("nonuniform: sample size must be positive")
	}
	cdf := make([]float64, len(probs))
	var cum float64
	for i, p := range probs {
		if p < 0 {
			return nil, nil, fmt.Errorf("nonuniform: negative probability at %d", i)
		}
		cum += p
		cdf[i] = cum
	}
	if cum <= 0 {
		return nil, nil, errors.New("nonuniform: probabilities sum to zero")
	}
	idx = make([]int, n)
	weights = make([]float64, n)
	bigN := float64(len(probs))
	var wSum float64
	for t := 0; t < n; t++ {
		u := rng.Float64() * cum
		i := searchCDF(cdf, u)
		idx[t] = i
		weights[t] = cum / (bigN * probs[i])
		wSum += weights[t]
	}
	scale := float64(n) / wSum
	linalg.Scale(scale, weights)
	return idx, weights, nil
}

func searchCDF(cdf []float64, u float64) int {
	lo, hi := 0, len(cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// weightedObjective is the importance-weighted training problem:
// f(θ) = (1/n) Σ wᵢ·ℓ(θ; x_{idx[i]}) + (β/2)‖θ‖².
type weightedObjective struct {
	spec    models.Spec
	ds      *dataset.Dataset
	idx     []int
	weights []float64
	dim     int
}

// Objective returns the weighted problem over the sampled rows.
func Objective(spec models.Spec, ds *dataset.Dataset, idx []int, weights []float64) optimize.Problem {
	return &weightedObjective{spec: spec, ds: ds, idx: idx, weights: weights, dim: spec.ParamDim(ds)}
}

// Dim implements optimize.Problem.
func (o *weightedObjective) Dim() int { return o.dim }

// Eval implements optimize.Problem.
func (o *weightedObjective) Eval(x, grad []float64) float64 {
	linalg.Fill(grad, 0)
	scratch := make([]float64, o.dim)
	var loss float64
	for t, i := range o.idx {
		w := o.weights[t]
		linalg.Fill(scratch, 0)
		l := o.spec.ExampleLossGrad(x, o.ds.X[i], labelOf(o.ds, i), scratch)
		loss += w * l
		linalg.Axpy(w, scratch, grad)
	}
	inv := 1 / float64(len(o.idx))
	loss *= inv
	linalg.Scale(inv, grad)
	beta := o.spec.Beta()
	if beta > 0 {
		loss += 0.5 * beta * linalg.Dot(x, x)
		linalg.Axpy(beta, x, grad)
	}
	return loss
}

func labelOf(ds *dataset.Dataset, i int) float64 {
	if ds.Task == dataset.Unsupervised {
		return 0
	}
	return ds.Y[i]
}

// Train fits spec on a leverage-weighted sample of size n drawn from ds.
func Train(spec models.Spec, ds *dataset.Dataset, n int, seed int64, opt optimize.Options) (models.TrainResult, error) {
	probs := LeverageProbs(ds)
	idx, weights, err := Sample(stat.NewRNG(seed), probs, n)
	if err != nil {
		return models.TrainResult{}, err
	}
	x0 := make([]float64, spec.ParamDim(ds))
	res, err := optimize.Minimize(Objective(spec, ds, idx, weights), x0, opt)
	if err != nil {
		return models.TrainResult{}, err
	}
	if !linalg.AllFinite(res.X) {
		return models.TrainResult{}, errors.New("nonuniform: training produced non-finite parameters")
	}
	return models.TrainResult{Theta: res.X, Loss: res.F, Iters: res.Iters, Converged: res.Converged}, nil
}

// WeightedGradRows returns the importance-reweighted per-example gradient
// rows wᵢ·q(θ; xᵢ, yᵢ) for the sampled indices — what the ObservedFisher
// pipeline consumes to estimate J under non-uniform sampling (§3.2).
func WeightedGradRows(spec models.Spec, ds *dataset.Dataset, idx []int, weights []float64, theta []float64) []dataset.Row {
	rows := make([]dataset.Row, len(idx))
	for t, i := range idx {
		q := spec.ExampleGradRow(theta, ds.X[i], labelOf(ds, i))
		rows[t] = scaleRow(q, weights[t])
	}
	return rows
}

func scaleRow(r dataset.Row, w float64) dataset.Row {
	switch rr := r.(type) {
	case dataset.DenseRow:
		out := make(dataset.DenseRow, len(rr))
		for i, v := range rr {
			out[i] = w * v
		}
		return out
	case *dataset.SparseRow:
		val := make([]float64, len(rr.Val))
		for i, v := range rr.Val {
			val[i] = w * v
		}
		return &dataset.SparseRow{N: rr.N, Idx: rr.Idx, Val: val}
	default:
		out := make(dataset.DenseRow, r.Dim())
		r.AddTo(out, w)
		return out
	}
}
