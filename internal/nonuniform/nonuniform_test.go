package nonuniform

import (
	"math"
	"testing"

	"blinkml/internal/dataset"
	"blinkml/internal/linalg"
	"blinkml/internal/models"
	"blinkml/internal/optimize"
	"blinkml/internal/stat"
)

// skewedRegression builds a regression dataset where a few rows carry most
// of the signal energy (heavy-tailed row norms), the regime where leverage
// sampling beats uniform sampling.
func skewedRegression(seed int64, n, d int) (*dataset.Dataset, []float64) {
	rng := stat.NewRNG(seed)
	truth := make([]float64, d)
	for i := range truth {
		truth[i] = rng.Norm()
	}
	ds := &dataset.Dataset{Dim: d, Task: dataset.Regression, Name: "skewed"}
	for i := 0; i < n; i++ {
		scale := 0.3
		if rng.Float64() < 0.05 {
			scale = 6 // 5% of rows are high-leverage
		}
		row := make(dataset.DenseRow, d)
		for j := range row {
			row[j] = scale * rng.Norm()
		}
		ds.X = append(ds.X, row)
		ds.Y = append(ds.Y, row.Dot(truth)+0.1*rng.Norm())
	}
	return ds, truth
}

func TestLeverageProbsProportionalToRowNorm(t *testing.T) {
	ds := &dataset.Dataset{Dim: 2, Task: dataset.Regression}
	ds.X = append(ds.X, dataset.DenseRow{3, 4}, dataset.DenseRow{0, 1})
	ds.Y = append(ds.Y, 0, 0)
	probs := LeverageProbs(ds)
	if math.Abs(probs[0]+probs[1]-1) > 1e-12 {
		t.Fatalf("probabilities do not sum to 1: %v", probs)
	}
	if probs[0] <= probs[1] {
		t.Fatalf("high-norm row not favoured: %v", probs)
	}
	// With smoothing, even a zero row keeps positive probability.
	zero := &dataset.Dataset{Dim: 1, Task: dataset.Regression}
	zero.X = append(zero.X, dataset.DenseRow{0}, dataset.DenseRow{5})
	zero.Y = append(zero.Y, 0, 0)
	pz := LeverageProbs(zero)
	if pz[0] <= 0 {
		t.Fatalf("zero row starved: %v", pz)
	}
}

func TestLeverageProbsAllZeroRows(t *testing.T) {
	ds := &dataset.Dataset{Dim: 1, Task: dataset.Regression}
	ds.X = append(ds.X, dataset.DenseRow{0}, dataset.DenseRow{0})
	ds.Y = append(ds.Y, 0, 0)
	probs := LeverageProbs(ds)
	if probs[0] != 0.5 || probs[1] != 0.5 {
		t.Fatalf("degenerate case not uniform: %v", probs)
	}
}

func TestSampleWeightsSelfNormalized(t *testing.T) {
	probs := []float64{0.7, 0.1, 0.1, 0.1}
	idx, weights, err := Sample(stat.NewRNG(1), probs, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 200 || len(weights) != 200 {
		t.Fatal("wrong sample shape")
	}
	var sum float64
	for t2, i := range idx {
		if i < 0 || i >= 4 {
			t.Fatalf("index %d out of range", i)
		}
		sum += weights[t2]
	}
	if math.Abs(sum/200-1) > 1e-9 {
		t.Fatalf("weights not self-normalized: mean %v", sum/200)
	}
	// High-probability rows must receive low weights.
	for t2, i := range idx {
		if i == 0 && weights[t2] > 1 {
			t.Fatalf("head row overweighted: %v", weights[t2])
		}
	}
}

func TestSampleErrors(t *testing.T) {
	if _, _, err := Sample(stat.NewRNG(1), []float64{0.5, 0.5}, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, _, err := Sample(stat.NewRNG(1), []float64{-1, 2}, 5); err == nil {
		t.Fatal("negative probability accepted")
	}
	if _, _, err := Sample(stat.NewRNG(1), []float64{0, 0}, 5); err == nil {
		t.Fatal("zero-mass distribution accepted")
	}
}

// The weighted objective at uniform weights must match the plain objective.
func TestWeightedObjectiveReducesToUniform(t *testing.T) {
	ds, _ := skewedRegression(3, 200, 4)
	spec := models.LinearRegression{Reg: 0.01}
	idx := make([]int, ds.Len())
	weights := make([]float64, ds.Len())
	for i := range idx {
		idx[i] = i
		weights[i] = 1
	}
	wobj := Objective(spec, ds, idx, weights)
	uobj := models.Objective(spec, ds)
	theta := []float64{0.3, -0.2, 0.5, 0.1}
	g1 := make([]float64, 4)
	g2 := make([]float64, 4)
	f1 := wobj.Eval(theta, g1)
	f2 := uobj.Eval(theta, g2)
	if math.Abs(f1-f2) > 1e-12 {
		t.Fatalf("losses differ: %v vs %v", f1, f2)
	}
	for i := range g1 {
		if math.Abs(g1[i]-g2[i]) > 1e-12 {
			t.Fatalf("gradients differ at %d", i)
		}
	}
}

// On heavy-tailed data, leverage sampling should recover the full model at
// least as well as uniform sampling of the same size (averaged over seeds).
func TestLeverageBeatsUniformOnSkewedData(t *testing.T) {
	ds, _ := skewedRegression(5, 8000, 5)
	spec := models.LinearRegression{Reg: 1e-4}
	full, err := models.Train(spec, ds, nil, optimize.Options{GradTol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	n := 300
	var levErr, uniErr float64
	trials := 8
	for seed := int64(0); seed < int64(trials); seed++ {
		lev, err := Train(spec, ds, n, 100+seed, optimize.Options{GradTol: 1e-10})
		if err != nil {
			t.Fatal(err)
		}
		rng := stat.NewRNG(200 + seed)
		uniIdx := dataset.SampleWithoutReplacement(rng, ds.Len(), n)
		uni, err := models.Train(spec, ds.Subset(uniIdx), nil, optimize.Options{GradTol: 1e-10})
		if err != nil {
			t.Fatal(err)
		}
		levErr += paramDist(lev.Theta, full.Theta)
		uniErr += paramDist(uni.Theta, full.Theta)
	}
	if levErr > uniErr*1.1 {
		t.Fatalf("leverage sampling (%v) materially worse than uniform (%v)", levErr/float64(trials), uniErr/float64(trials))
	}
}

func paramDist(a, b []float64) float64 {
	d := make([]float64, len(a))
	linalg.Sub(d, a, b)
	return linalg.Norm2(d)
}

// The reweighted gradient rows must average (approximately) to the full
// gradient — the unbiasedness that lets ObservedFisher estimate J under
// non-uniform sampling.
func TestWeightedGradRowsApproximateFullGradient(t *testing.T) {
	ds, _ := skewedRegression(7, 4000, 4)
	spec := models.LinearRegression{Reg: 0}
	theta := []float64{0.2, -0.1, 0.4, 0.3}
	fullGrad := models.BatchGradient(spec, ds, theta)

	probs := LeverageProbs(ds)
	idx, weights, err := Sample(stat.NewRNG(9), probs, 2000)
	if err != nil {
		t.Fatal(err)
	}
	rows := WeightedGradRows(spec, ds, idx, weights, theta)
	mean := make([]float64, 4)
	for _, r := range rows {
		r.AddTo(mean, 1)
	}
	linalg.Scale(1/float64(len(rows)), mean)
	for i := range mean {
		if math.Abs(mean[i]-fullGrad[i]) > 0.15*(1+math.Abs(fullGrad[i])) {
			t.Fatalf("weighted mean gradient [%d]=%v, full %v", i, mean[i], fullGrad[i])
		}
	}
}
