package obs

import (
	"context"
	"sync"
	"time"
)

// Span is one timed region of a traced request: a pipeline stage (ingest,
// sample, statistics, probe, optimize, registry) or a finer-grained unit.
// Worker is set when the span was recorded on a remote worker, so a
// coordinator can tell local from shipped work after merging.
type Span struct {
	Trace  string    `json:"trace_id"`
	Name   string    `json:"name"`
	Worker string    `json:"worker,omitempty"`
	Start  time.Time `json:"start"`
	DurMs  float64   `json:"dur_ms"`
}

// maxRecordedSpans bounds a Recorder's memory: one runaway job (e.g. a tune
// search with thousands of trials) must not grow the job table without
// bound. Overflow is counted, not silently dropped.
const maxRecordedSpans = 1024

// Recorder collects the spans of one trace. It travels in the job's context
// (WithRecorder / StartSpan) and is safe for concurrent use — tune trials
// and probe fan-out record from many goroutines.
type Recorder struct {
	trace string

	mu      sync.Mutex
	spans   []Span
	dropped int
}

// NewRecorder returns a Recorder for the given trace ID.
func NewRecorder(trace string) *Recorder {
	return &Recorder{trace: trace}
}

// Trace returns the trace ID this recorder collects for.
func (r *Recorder) Trace() string { return r.trace }

// Record appends one finished span, stamping the recorder's trace ID.
func (r *Recorder) Record(name string, start time.Time, dur time.Duration) {
	if r == nil {
		return
	}
	s := Span{Trace: r.trace, Name: name, Start: start, DurMs: float64(dur) / float64(time.Millisecond)}
	r.mu.Lock()
	if len(r.spans) >= maxRecordedSpans {
		r.dropped++
	} else {
		r.spans = append(r.spans, s)
	}
	r.mu.Unlock()
}

// Add merges externally recorded spans (e.g. shipped back from a worker in a
// cluster task result) into the recorder, restamping them with this trace.
func (r *Recorder) Add(spans []Span) {
	if r == nil || len(spans) == 0 {
		return
	}
	r.mu.Lock()
	for i, s := range spans {
		if len(r.spans) >= maxRecordedSpans {
			r.dropped += len(spans) - i
			break
		}
		s.Trace = r.trace
		r.spans = append(r.spans, s)
	}
	r.mu.Unlock()
}

// Spans returns a copy of the recorded spans in record order.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, len(r.spans))
	copy(out, r.spans)
	return out
}

// Dropped reports how many spans were discarded because the recorder was
// full.
func (r *Recorder) Dropped() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// WithRecorder returns ctx carrying the recorder.
func WithRecorder(ctx context.Context, r *Recorder) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, recorderKey, r)
}

// RecorderFrom returns the context's recorder, or nil.
func RecorderFrom(ctx context.Context) *Recorder {
	if ctx == nil {
		return nil
	}
	r, _ := ctx.Value(recorderKey).(*Recorder)
	return r
}

// StartSpan begins a named span on the context's recorder and returns the
// closure that ends it. With no recorder in ctx it is a no-op, so
// instrumented code needs no conditionals:
//
//	done := obs.StartSpan(ctx, "statistics")
//	... work ...
//	done()
func StartSpan(ctx context.Context, name string) func() {
	r := RecorderFrom(ctx)
	if r == nil {
		return func() {}
	}
	// The context ledger (if any) attributes resource charges to the stage
	// that is currently executing; the span boundary is that stage marker.
	restoreStage := LedgerFrom(ctx).SetStage(name)
	start := time.Now()
	return func() {
		restoreStage()
		r.Record(name, start, time.Since(start))
	}
}

// Stage is the aggregate of all spans sharing a name: the per-stage
// breakdown GET /v1/jobs/{id} reports.
type Stage struct {
	Name  string  `json:"stage"`
	Ms    float64 `json:"ms"`
	Count int     `json:"count"`
}

// AggregateStages folds spans into per-name totals, ordered by each name's
// first appearance (which tracks pipeline order for a single job).
func AggregateStages(spans []Span) []Stage {
	idx := make(map[string]int, 8)
	var out []Stage
	for _, s := range spans {
		i, ok := idx[s.Name]
		if !ok {
			i = len(out)
			idx[s.Name] = i
			out = append(out, Stage{Name: s.Name})
		}
		out[i].Ms += s.DurMs
		out[i].Count++
	}
	return out
}
