package obs

import (
	"expvar"
	"net/http"
	"net/http/pprof"
)

// DebugHandler is the mux served on an opt-in -debug-addr: net/http/pprof
// profiles, the raw expvar JSON, and the Prometheus exposition. It is a
// separate listener on purpose — profiling endpoints never share a port
// with the public API. The metrics routes run through the shared HTTP
// middleware so a worker's own endpoints appear in its blinkml_http_*
// series (pprof stays unwrapped: profile downloads would only pollute the
// latency histograms).
func DebugHandler() http.Handler {
	mux := http.NewServeMux()
	hm := SharedHTTP()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/metrics", hm.Wrap("/metrics", MetricsHandler()))
	mux.Handle("/metrics.json", hm.Wrap("/metrics.json", expvar.Handler()))
	return mux
}
