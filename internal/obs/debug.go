package obs

import (
	"expvar"
	"net/http"
	"net/http/pprof"
)

// DebugHandler is the mux served on an opt-in -debug-addr: net/http/pprof
// profiles, the raw expvar JSON, and the Prometheus exposition. It is a
// separate listener on purpose — profiling endpoints never share a port
// with the public API.
func DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/metrics", MetricsHandler())
	mux.Handle("/metrics.json", expvar.Handler())
	return mux
}
