package obs

import (
	"runtime"
)

// Env is the benchmark environment stanza embedded in BENCH_small.json and
// BENCH_load.json summaries, so performance trajectories recorded on
// different machines stay comparable: a p99 regression means nothing without
// knowing whether the core count changed underneath it.
type Env struct {
	// GoVersion is the runtime's version string (e.g. "go1.24.0").
	GoVersion string `json:"go_version"`
	// OS and Arch are GOOS/GOARCH of the measuring process.
	OS   string `json:"os"`
	Arch string `json:"arch"`
	// NumCPU is the machine's logical CPU count; GOMAXPROCS is the
	// scheduler parallelism the run actually used.
	NumCPU     int `json:"num_cpu"`
	GOMAXPROCS int `json:"gomaxprocs"`
}

// CaptureEnv snapshots the current process's environment stanza.
func CaptureEnv() Env {
	return Env{
		GoVersion:  runtime.Version(),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}
