package obs

import (
	"sync"
	"time"
)

// DefaultSLOWindowSeconds is the sliding-window length the per-endpoint SLO
// gauges aggregate over: long enough to smooth per-second burst noise,
// short enough that an incident moves the gauge within one scrape interval.
const DefaultSLOWindowSeconds = 60

// sloBucket is one second of request outcomes. The ring reuses slots by
// epoch second, so a bucket whose second has passed out of the window is
// simply overwritten on the next write that lands in its slot.
type sloBucket struct {
	sec    int64 // epoch second this bucket currently holds
	total  uint64
	errors uint64 // 5xx responses and transport-level failures
	slow   uint64 // latency above the SLO threshold
}

// SLOWindow tracks request outcomes over a sliding window of per-second
// buckets, answering the two service-level questions per endpoint:
// availability (fraction of requests that did not fail server-side) and
// latency attainment (fraction at or under the latency threshold). Reads
// and writes take an explicit clock time so the window is exactly testable.
type SLOWindow struct {
	mu      sync.Mutex
	buckets []sloBucket
}

// NewSLOWindow returns a window of the given length in seconds
// (DefaultSLOWindowSeconds when <= 0).
func NewSLOWindow(windowSeconds int) *SLOWindow {
	if windowSeconds <= 0 {
		windowSeconds = DefaultSLOWindowSeconds
	}
	return &SLOWindow{buckets: make([]sloBucket, windowSeconds)}
}

// WindowSeconds reports the configured window length.
func (w *SLOWindow) WindowSeconds() int { return len(w.buckets) }

// Record adds one finished request observed at now.
func (w *SLOWindow) Record(now time.Time, isError, isSlow bool) {
	sec := now.Unix()
	w.mu.Lock()
	defer w.mu.Unlock()
	b := &w.buckets[int(sec%int64(len(w.buckets)))]
	if b.sec != sec {
		*b = sloBucket{sec: sec}
	}
	b.total++
	if isError {
		b.errors++
	}
	if isSlow {
		b.slow++
	}
}

// Snapshot sums the buckets inside the window ending at now.
func (w *SLOWindow) Snapshot(now time.Time) (total, errors, slow uint64) {
	sec := now.Unix()
	lo := sec - int64(len(w.buckets)) + 1
	w.mu.Lock()
	defer w.mu.Unlock()
	for i := range w.buckets {
		b := &w.buckets[i]
		if b.sec >= lo && b.sec <= sec {
			total += b.total
			errors += b.errors
			slow += b.slow
		}
	}
	return total, errors, slow
}

// Availability returns the windowed non-error fraction; ok is false when
// the window holds no requests (render nothing rather than a fake 0 or 1).
func (w *SLOWindow) Availability(now time.Time) (v float64, ok bool) {
	total, errors, _ := w.Snapshot(now)
	if total == 0 {
		return 0, false
	}
	return float64(total-errors) / float64(total), true
}

// LatencyAttainment returns the windowed fraction of requests at or under
// the latency threshold; ok is false when the window is empty.
func (w *SLOWindow) LatencyAttainment(now time.Time) (v float64, ok bool) {
	total, _, slow := w.Snapshot(now)
	if total == 0 {
		return 0, false
	}
	return float64(total-slow) / float64(total), true
}
