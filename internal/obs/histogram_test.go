package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestBucketForBoundaries(t *testing.T) {
	cases := []struct {
		ms   float64
		want int
	}{
		{0, 0},
		{-1, 0},
		{math.NaN(), 0},
		{0.005, 0},
		{0.01, 0},          // exactly the first bound
		{0.010001, 1},      // just above it
		{0.02, 1},          // bucket 1 upper bound
		{0.04, 2},
		{10.24, 10},        // 0.01·2^10
		{10.25, 11},
		{bounds[numBounds-1], numBounds - 1},
		{bounds[numBounds-1] * 2, numBounds}, // overflow
		{1e12, numBounds},
	}
	for _, c := range cases {
		if got := bucketFor(c.ms); got != c.want {
			t.Errorf("bucketFor(%v) = %d, want %d", c.ms, got, c.want)
		}
	}
	// Every bound must land in its own bucket: bucket i covers (..., bounds[i]].
	for i, b := range bounds {
		if got := bucketFor(b); got != i {
			t.Errorf("bucketFor(bounds[%d]=%v) = %d, want %d", i, b, got, i)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram p50 = %v, want 0", got)
	}
	// 100 observations of exactly 1ms: every quantile must fall inside the
	// 1ms bucket, i.e. within (bounds[i-1], bounds[i]] where bounds[i] >= 1.
	for i := 0; i < 100; i++ {
		h.Observe(1.0)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	if got := h.SumMs(); math.Abs(got-100) > 1e-9 {
		t.Fatalf("sum = %v, want 100", got)
	}
	i := bucketFor(1.0)
	lo, hi := bounds[i-1], bounds[i]
	for _, q := range []float64{0.5, 0.95, 0.99} {
		got := h.Quantile(q)
		if got <= lo || got > hi {
			t.Errorf("Quantile(%v) = %v, want in (%v, %v]", q, got, lo, hi)
		}
	}
	// Bimodal: 90 fast (1ms bucket) + 10 slow (1000ms bucket). p50 stays in
	// the fast bucket; p99 must land in the slow one.
	h2 := NewHistogram()
	for i := 0; i < 90; i++ {
		h2.Observe(1.0)
	}
	for i := 0; i < 10; i++ {
		h2.Observe(1000.0)
	}
	slow := bucketFor(1000.0)
	slo, shi := bounds[slow-1], bounds[slow]
	if p50 := h2.Quantile(0.5); p50 <= lo || p50 > hi {
		t.Errorf("bimodal p50 = %v, want in fast bucket (%v, %v]", p50, lo, hi)
	}
	if p99 := h2.Quantile(0.99); p99 <= slo || p99 > shi {
		t.Errorf("bimodal p99 = %v, want in slow bucket (%v, %v]", p99, slo, shi)
	}
	// Quantiles are monotone in q.
	prev := 0.0
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1} {
		v := h2.Quantile(q)
		if v < prev {
			t.Errorf("Quantile(%v) = %v < previous %v; quantiles must be monotone", q, v, prev)
		}
		prev = v
	}
}

func TestHistogramOverflowQuantile(t *testing.T) {
	h := NewHistogram()
	h.Observe(1e9) // far past the last bound
	if got, want := h.Quantile(0.5), bounds[numBounds-1]; got != want {
		t.Fatalf("overflow quantile = %v, want last bound %v", got, want)
	}
}

func TestHistogramMergeAssociativity(t *testing.T) {
	obsv := [][]float64{
		{0.5, 1, 2, 4},
		{100, 200, 300},
		{0.02, 5000, 7, 7, 7},
	}
	mk := func(vals []float64) *Histogram {
		h := NewHistogram()
		for _, v := range vals {
			h.Observe(v)
		}
		return h
	}
	// (a ∪ b) ∪ c
	left := NewHistogram()
	ab := NewHistogram()
	ab.Merge(mk(obsv[0]))
	ab.Merge(mk(obsv[1]))
	left.Merge(ab)
	left.Merge(mk(obsv[2]))
	// a ∪ (b ∪ c)
	right := NewHistogram()
	bc := NewHistogram()
	bc.Merge(mk(obsv[1]))
	bc.Merge(mk(obsv[2]))
	right.Merge(mk(obsv[0]))
	right.Merge(bc)
	// Direct observation of everything.
	direct := mk(append(append(append([]float64{}, obsv[0]...), obsv[1]...), obsv[2]...))

	for name, h := range map[string]*Histogram{"left": left, "right": right} {
		if h.Count() != direct.Count() {
			t.Errorf("%s count = %d, want %d", name, h.Count(), direct.Count())
		}
		if math.Abs(h.SumMs()-direct.SumMs()) > 1e-6 {
			t.Errorf("%s sum = %v, want %v", name, h.SumMs(), direct.SumMs())
		}
		for i := range h.counts {
			if h.counts[i].Load() != direct.counts[i].Load() {
				t.Errorf("%s bucket %d = %d, want %d", name, i, h.counts[i].Load(), direct.counts[i].Load())
			}
		}
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram()
	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(g*perG+i) * 0.01)
				if i%100 == 0 {
					_ = h.Quantile(0.99) // concurrent reads must be safe too
					_ = h.String()
				}
			}
		}(g)
	}
	wg.Wait()
	if got, want := h.Count(), uint64(goroutines*perG); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
	var bucketTotal uint64
	for i := range h.counts {
		bucketTotal += h.counts[i].Load()
	}
	if bucketTotal != uint64(goroutines*perG) {
		t.Fatalf("bucket total = %d, want %d", bucketTotal, goroutines*perG)
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram()
	h.Observe(3)
	s := h.String()
	for _, want := range []string{`"count":1`, `"sum_ms":3`, `"p50":`, `"p95":`, `"p99":`} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %s, missing %s", s, want)
		}
	}
}
