package obs

import (
	"testing"
	"time"
)

func at(sec int64) time.Time { return time.Unix(sec, 0) }

func TestSLOWindowBasicMath(t *testing.T) {
	w := NewSLOWindow(10)
	now := at(1000)
	for i := 0; i < 8; i++ {
		w.Record(now, false, false)
	}
	w.Record(now, true, false)  // one 5xx
	w.Record(now, false, true)  // one slow
	total, errors, slow := w.Snapshot(now)
	if total != 10 || errors != 1 || slow != 1 {
		t.Fatalf("snapshot = %d/%d/%d, want 10/1/1", total, errors, slow)
	}
	if v, ok := w.Availability(now); !ok || v != 0.9 {
		t.Fatalf("availability = %v,%v, want 0.9,true", v, ok)
	}
	if v, ok := w.LatencyAttainment(now); !ok || v != 0.9 {
		t.Fatalf("attainment = %v,%v, want 0.9,true", v, ok)
	}
}

func TestSLOWindowSlides(t *testing.T) {
	w := NewSLOWindow(5)
	// One error at t=100, then clean seconds after it.
	w.Record(at(100), true, true)
	for sec := int64(101); sec <= 104; sec++ {
		w.Record(at(sec), false, false)
	}
	if total, errors, _ := w.Snapshot(at(104)); total != 5 || errors != 1 {
		t.Fatalf("window at 104 = %d/%d, want 5/1", total, errors)
	}
	// At t=105 the error second has slid out.
	if total, errors, _ := w.Snapshot(at(105)); total != 4 || errors != 0 {
		t.Fatalf("window at 105 = %d/%d, want 4/0", total, errors)
	}
	// Far in the future everything has expired; gauges report not-ok.
	if _, ok := w.Availability(at(10_000)); ok {
		t.Fatal("empty window must report ok=false")
	}
}

func TestSLOWindowRingReuse(t *testing.T) {
	w := NewSLOWindow(3)
	w.Record(at(7), true, false) // lands in slot 7%3=1
	// 10 lands in the same slot and must evict second 7, not merge with it.
	w.Record(at(10), false, false)
	total, errors, _ := w.Snapshot(at(10))
	if total != 1 || errors != 0 {
		t.Fatalf("after ring reuse = %d/%d, want 1/0", total, errors)
	}
}
