package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"runtime/metrics"
	"strings"
	"sync"
)

// The runtime collector exports a curated slice of Go runtime/metrics as
// blinkml_go_* series on /metrics: enough to explain a serving-latency
// anomaly (heap growth, GC pauses, goroutine leaks, scheduler queueing)
// without drowning the exposition in the full runtime catalogue. Samples are
// taken at scrape time — there is no background goroutine to leak.

// runtimeMetric maps one runtime/metrics name to its exported suffix.
type runtimeMetric struct {
	name   string // runtime/metrics key
	metric string // suffix under blinkml_go_
}

// runtimeScalars are the gauge/counter samples (KindUint64).
var runtimeScalars = []runtimeMetric{
	{"/sched/goroutines:goroutines", "goroutines"},
	{"/memory/classes/heap/objects:bytes", "heap_objects_bytes"},
	{"/memory/classes/total:bytes", "memory_total_bytes"},
	{"/gc/heap/goal:bytes", "heap_goal_bytes"},
	{"/gc/cycles/total:gc-cycles", "gc_cycles_total"},
}

// runtimeHistograms are the Float64Histogram samples, exported in seconds
// (the runtime's native unit) with downsampled buckets.
var runtimeHistograms = []runtimeMetric{
	{"/sched/pauses/total/gc:seconds", "gc_pause_seconds"},
	{"/sched/latencies:seconds", "sched_latency_seconds"},
}

// runtimeCollector samples runtime/metrics on demand. It implements both
// expvar.Var (a JSON scalar summary for /metrics.json) and PromWriter (the
// full series for /metrics).
type runtimeCollector struct {
	mu      sync.Mutex
	samples []metrics.Sample
	nScalar int // samples[:nScalar] are scalars, the rest histograms
}

var (
	runtimeOnce sync.Once
	runtimeVar  *runtimeCollector
)

// RegisterRuntimeMetrics publishes the blinkml_go runtime collector once per
// process. Both blinkml-serve and blinkml-worker call it at startup so the
// Go runtime's health is visible next to the service's own series.
func RegisterRuntimeMetrics() {
	runtimeOnce.Do(func() {
		runtimeVar = newRuntimeCollector()
		expvar.Publish("blinkml_go", runtimeVar)
	})
}

// newRuntimeCollector builds the sample set, keeping only metrics this
// runtime version actually exports (a renamed key degrades to absence, not
// a panic).
func newRuntimeCollector() *runtimeCollector {
	known := make(map[string]bool)
	for _, d := range metrics.All() {
		known[d.Name] = true
	}
	c := &runtimeCollector{}
	for _, m := range runtimeScalars {
		if known[m.name] {
			c.samples = append(c.samples, metrics.Sample{Name: m.name})
		}
	}
	c.nScalar = len(c.samples)
	for _, m := range runtimeHistograms {
		if known[m.name] {
			c.samples = append(c.samples, metrics.Sample{Name: m.name})
		}
	}
	return c
}

// suffixFor looks up the exported suffix for a runtime/metrics key.
func suffixFor(name string) string {
	for _, m := range runtimeScalars {
		if m.name == name {
			return m.metric
		}
	}
	for _, m := range runtimeHistograms {
		if m.name == name {
			return m.metric
		}
	}
	return sanitizeName(name)
}

// WriteProm implements PromWriter: one sample pass, scalars as plain
// samples, histograms downsampled to a bounded bucket count.
func (c *runtimeCollector) WriteProm(w io.Writer, name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	metrics.Read(c.samples)
	for i, s := range c.samples {
		suffix := suffixFor(s.Name)
		switch s.Value.Kind() {
		case metrics.KindUint64:
			fmt.Fprintf(w, "%s_%s %d\n", name, suffix, s.Value.Uint64())
		case metrics.KindFloat64:
			fmt.Fprintf(w, "%s_%s %s\n", name, suffix, promFloat(s.Value.Float64()))
		case metrics.KindFloat64Histogram:
			if i >= c.nScalar {
				writeRuntimeHistogram(w, name+"_"+suffix, s.Value.Float64Histogram())
			}
		}
	}
}

// maxRuntimeBuckets bounds the per-histogram bucket series on /metrics; the
// runtime's native layouts run to hundreds of buckets, which is scrape noise
// at our resolution needs.
const maxRuntimeBuckets = 20

// writeRuntimeHistogram renders a runtime Float64Histogram as a cumulative
// Prometheus histogram, merging native buckets so at most maxRuntimeBuckets
// finite bounds are emitted. The _sum is a midpoint estimate (the runtime
// does not track exact sums).
func writeRuntimeHistogram(w io.Writer, name string, h *metrics.Float64Histogram) {
	if h == nil || len(h.Counts) == 0 {
		return
	}
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	n := len(h.Counts)
	stride := (n + maxRuntimeBuckets - 1) / maxRuntimeBuckets
	var cum, total uint64
	var sum float64
	for _, cnt := range h.Counts {
		total += cnt
	}
	for lo := 0; lo < n; lo += stride {
		hi := lo + stride
		if hi > n {
			hi = n
		}
		for j := lo; j < hi; j++ {
			cnt := h.Counts[j]
			if cnt == 0 {
				continue
			}
			cum += cnt
			sum += float64(cnt) * bucketMidpoint(h.Buckets, j)
		}
		// Buckets has len(Counts)+1 boundaries; bucket j covers
		// [Buckets[j], Buckets[j+1]).
		le := h.Buckets[hi]
		if math.IsInf(le, 1) {
			continue // folded into the +Inf bucket below
		}
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, promFloat(le), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, total)
	fmt.Fprintf(w, "%s_sum %s\n", name, promFloat(sum))
	fmt.Fprintf(w, "%s_count %d\n", name, total)
}

// bucketMidpoint estimates a representative value for native bucket j,
// clamping the runtime's ±Inf edge boundaries.
func bucketMidpoint(bounds []float64, j int) float64 {
	lo, hi := bounds[j], bounds[j+1]
	switch {
	case math.IsInf(lo, -1) && math.IsInf(hi, 1):
		return 0
	case math.IsInf(lo, -1):
		return hi
	case math.IsInf(hi, 1):
		return lo
	default:
		return (lo + hi) / 2
	}
}

// String implements expvar.Var: the scalar samples as a JSON object, plus
// observation counts for the histograms ( /metrics carries the buckets).
func (c *runtimeCollector) String() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	metrics.Read(c.samples)
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for i, s := range c.samples {
		suffix := suffixFor(s.Name)
		switch s.Value.Kind() {
		case metrics.KindUint64:
			if !first {
				b.WriteByte(',')
			}
			first = false
			fmt.Fprintf(&b, "%q:%d", suffix, s.Value.Uint64())
		case metrics.KindFloat64:
			if !first {
				b.WriteByte(',')
			}
			first = false
			fmt.Fprintf(&b, "%q:%s", suffix, jsonFloat(s.Value.Float64()))
		case metrics.KindFloat64Histogram:
			if i < c.nScalar {
				continue
			}
			var total uint64
			for _, cnt := range s.Value.Float64Histogram().Counts {
				total += cnt
			}
			if !first {
				b.WriteByte(',')
			}
			first = false
			fmt.Fprintf(&b, "%q:%d", suffix+"_count", total)
		}
	}
	b.WriteByte('}')
	return b.String()
}
