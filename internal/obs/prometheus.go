package obs

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// PromWriter is implemented by composite expvar vars that know how to
// render their own Prometheus sample set (the HTTP middleware plane, the Go
// runtime collector). MetricsHandler calls WriteProm with the sanitized
// expvar key as the metric-name prefix.
type PromWriter interface {
	WriteProm(w io.Writer, name string)
}

// MetricsHandler serves every blinkml* expvar map in Prometheus text
// exposition format. Scalar vars become one sample named <map>_<key>;
// Histogram vars expand to the standard cumulative _bucket/_sum/_count
// series plus _p50/_p95/_p99 convenience gauges so tails are readable
// without a query engine; top-level vars implementing PromWriter render
// themselves. The raw expvar JSON stays available on /metrics.json for
// callers that predate this endpoint.
func MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var b strings.Builder
		expvar.Do(func(kv expvar.KeyValue) {
			if !strings.HasPrefix(kv.Key, "blinkml") {
				return
			}
			if pw, ok := kv.Value.(PromWriter); ok {
				pw.WriteProm(&b, sanitizeName(kv.Key))
				return
			}
			m, ok := kv.Value.(*expvar.Map)
			if !ok {
				return
			}
			prefix := sanitizeName(kv.Key)
			m.Do(func(e expvar.KeyValue) {
				name := prefix + "_" + sanitizeName(e.Key)
				switch v := e.Value.(type) {
				case *expvar.Int:
					fmt.Fprintf(&b, "%s %d\n", name, v.Value())
				case *expvar.Float:
					fmt.Fprintf(&b, "%s %s\n", name, promFloat(v.Value()))
				case *Histogram:
					writeHistogram(&b, name, v)
				case *HistogramVec:
					typed := false
					v.Do(func(family string, h *Histogram) {
						if h.Count() == 0 {
							return // an unused family must not emit 40 zero lines
						}
						if !typed {
							fmt.Fprintf(&b, "# TYPE %s histogram\n", name)
							typed = true
						}
						writeLabeledHistogram(&b, name, fmt.Sprintf("%s=%q", FamilyLabel, family), h)
					})
				case *GaugeVec:
					v.Do(func(family string, val float64) {
						fmt.Fprintf(&b, "%s{%s=%q} %s\n", name, FamilyLabel, family, promFloat(val))
					})
				}
			})
		})
		_, _ = w.Write([]byte(b.String()))
	})
}

// writeHistogram renders h as a Prometheus histogram plus quantile gauges.
func writeHistogram(b io.Writer, name string, h *Histogram) {
	fmt.Fprintf(b, "# TYPE %s histogram\n", name)
	writeLabeledHistogram(b, name, "", h)
}

// writeLabeledHistogram renders the series of one histogram, carrying the
// extra label pair (e.g. `family="logistic"`) on every sample; empty labels
// reproduce the plain form. The caller owns the # TYPE line so one vec
// declares its type once across members.
func writeLabeledHistogram(b io.Writer, name, labels string, h *Histogram) {
	c, total := h.snapshot()
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for i := 0; i < numBounds; i++ {
		cum += c[i]
		fmt.Fprintf(b, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, promFloat(bounds[i]), cum)
	}
	fmt.Fprintf(b, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, total)
	brace := ""
	if labels != "" {
		brace = "{" + labels + "}"
	}
	fmt.Fprintf(b, "%s_sum%s %s\n", name, brace, promFloat(h.SumMs()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, brace, total)
	for _, q := range [...]struct {
		suffix string
		q      float64
	}{{"p50", 0.50}, {"p95", 0.95}, {"p99", 0.99}} {
		fmt.Fprintf(b, "%s_%s%s %s\n", name, q.suffix, brace, promFloat(quantileOf(c, total, q.q)))
	}
}

// promFloat formats a float for the exposition format.
func promFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// sanitizeName maps an expvar key to a legal Prometheus metric-name
// fragment: [a-zA-Z0-9_], everything else collapsed to '_'.
func sanitizeName(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
