package obs

import (
	"encoding/json"
	"runtime"
	"strconv"
	"strings"
	"testing"
)

func TestRuntimeCollectorWriteProm(t *testing.T) {
	runtime.GC() // make sure the pause histogram has at least one sample
	c := newRuntimeCollector()
	var b strings.Builder
	c.WriteProm(&b, "blinkml_go")
	out := b.String()
	for _, want := range []string{
		"blinkml_go_goroutines ",
		"blinkml_go_heap_objects_bytes ",
		"blinkml_go_memory_total_bytes ",
		"blinkml_go_gc_cycles_total ",
		"# TYPE blinkml_go_gc_pause_seconds histogram",
		`blinkml_go_gc_pause_seconds_bucket{le="+Inf"}`,
		"blinkml_go_gc_pause_seconds_count ",
		"# TYPE blinkml_go_sched_latency_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("runtime exposition missing %q\n%s", want, out)
		}
	}
	// Sanity: the goroutine gauge is a positive integer, and bucket counts
	// are cumulative within each histogram.
	var lastBucket string
	var prev int64 = -1
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "blinkml_go_goroutines ") {
			n, err := strconv.Atoi(strings.Fields(line)[1])
			if err != nil || n <= 0 {
				t.Errorf("goroutines sample bad: %q", line)
			}
		}
		if i := strings.Index(line, "_bucket{"); i >= 0 {
			series := line[:i]
			if series != lastBucket {
				lastBucket, prev = series, -1
			}
			fields := strings.Fields(line)
			n, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
			if err != nil {
				t.Fatalf("unparseable bucket line %q: %v", line, err)
			}
			if n < prev {
				t.Fatalf("bucket counts not cumulative at %q", line)
			}
			prev = n
		}
	}
	// A bucket series must never exceed maxRuntimeBuckets finite bounds.
	for _, series := range []string{"blinkml_go_gc_pause_seconds", "blinkml_go_sched_latency_seconds"} {
		finite := 0
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, series+"_bucket{") && !strings.Contains(line, "+Inf") {
				finite++
			}
		}
		if finite > maxRuntimeBuckets {
			t.Errorf("%s emits %d finite buckets, cap is %d", series, finite, maxRuntimeBuckets)
		}
	}
}

func TestRuntimeCollectorStringIsJSON(t *testing.T) {
	c := newRuntimeCollector()
	var v map[string]float64
	if err := json.Unmarshal([]byte(c.String()), &v); err != nil {
		t.Fatalf("String() not JSON: %v\n%s", err, c.String())
	}
	if v["goroutines"] <= 0 {
		t.Errorf("goroutines = %v, want > 0", v["goroutines"])
	}
	if v["memory_total_bytes"] <= 0 {
		t.Errorf("memory_total_bytes = %v, want > 0", v["memory_total_bytes"])
	}
}

func TestRegisterRuntimeMetricsIdempotent(t *testing.T) {
	RegisterRuntimeMetrics()
	RegisterRuntimeMetrics() // second call must not re-publish (panic)
}
