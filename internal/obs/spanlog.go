package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// SpanWriter appends finished spans to an io.Writer as JSONL — one span
// object per line, in the Span JSON schema — so a long-lived server can
// stream every job's trace to a file for offline analysis (-span-log).
type SpanWriter struct {
	mu sync.Mutex
	w  io.Writer
}

// NewSpanWriter wraps w. Writes from concurrent jobs are serialized.
func NewSpanWriter(w io.Writer) *SpanWriter {
	return &SpanWriter{w: w}
}

// Write appends each span as one JSON line. Encoding errors stop the batch
// and are returned; the writer stays usable.
func (s *SpanWriter) Write(spans []Span) error {
	if s == nil || len(spans) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	enc := json.NewEncoder(s.w)
	for _, sp := range spans {
		if err := enc.Encode(sp); err != nil {
			return err
		}
	}
	return nil
}

// SpanLog is the file-backed span sink behind -span-log: buffered JSONL
// appends with size-capped rotation. When maxBytes > 0 and a batch would
// push the file past the cap, the current file is atomically renamed to
// <path>.old (replacing the previous .old, so disk usage is bounded at
// roughly 2×maxBytes) and a fresh file is started. Safe for concurrent use;
// Close flushes the buffer, so a graceful server shutdown never truncates
// the last job's spans.
type SpanLog struct {
	path     string
	maxBytes int64

	mu   sync.Mutex
	f    *os.File
	w    *bufio.Writer
	size int64
}

// OpenSpanLog opens (appending) or creates the span log at path. maxBytes
// ≤ 0 disables rotation, preserving the unbounded pre-rotation behavior.
func OpenSpanLog(path string, maxBytes int64) (*SpanLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obs: open span log: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: stat span log: %w", err)
	}
	return &SpanLog{
		path:     path,
		maxBytes: maxBytes,
		f:        f,
		w:        bufio.NewWriter(f),
		size:     st.Size(),
	}, nil
}

// Write appends the batch as JSONL, rotating first if it would push the
// file past the size cap. The batch is encoded up front so a partially
// encodable batch never leaves a torn line behind.
func (l *SpanLog) Write(spans []Span) error {
	if l == nil || len(spans) == 0 {
		return nil
	}
	var buf []byte
	for _, sp := range spans {
		line, err := json.Marshal(sp)
		if err != nil {
			return err
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.maxBytes > 0 && l.size > 0 && l.size+int64(len(buf)) > l.maxBytes {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	n, err := l.w.Write(buf)
	l.size += int64(n)
	return err
}

// rotateLocked swaps the live file for a fresh one, keeping exactly one
// generation as <path>.old. The rename is atomic, so a crash mid-rotation
// leaves either the old layout or the new one — never a half state.
func (l *SpanLog) rotateLocked() error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	if err := os.Rename(l.path, l.path+".old"); err != nil {
		return fmt.Errorf("obs: rotate span log: %w", err)
	}
	f, err := os.OpenFile(l.path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("obs: reopen span log: %w", err)
	}
	l.f = f
	l.w = bufio.NewWriter(f)
	l.size = 0
	return nil
}

// Flush pushes buffered lines to disk.
func (l *SpanLog) Flush() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Flush()
}

// Close flushes and closes the file.
func (l *SpanLog) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	ferr := l.w.Flush()
	cerr := l.f.Close()
	if ferr != nil {
		return ferr
	}
	return cerr
}
