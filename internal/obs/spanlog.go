package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// SpanWriter appends finished spans to an io.Writer as JSONL — one span
// object per line, in the Span JSON schema — so a long-lived server can
// stream every job's trace to a file for offline analysis (-span-log).
type SpanWriter struct {
	mu sync.Mutex
	w  io.Writer
}

// NewSpanWriter wraps w. Writes from concurrent jobs are serialized.
func NewSpanWriter(w io.Writer) *SpanWriter {
	return &SpanWriter{w: w}
}

// Write appends each span as one JSON line. Encoding errors stop the batch
// and are returned; the writer stays usable.
func (s *SpanWriter) Write(spans []Span) error {
	if s == nil || len(spans) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	enc := json.NewEncoder(s.w)
	for _, sp := range spans {
		if err := enc.Encode(sp); err != nil {
			return err
		}
	}
	return nil
}
