package obs

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func spanBatch(trace string, n int) []Span {
	spans := make([]Span, n)
	for i := range spans {
		spans[i] = Span{Trace: trace, Name: "optimize", Start: time.Unix(0, 0).UTC(), DurMs: float64(i)}
	}
	return spans
}

// countLines decodes the JSONL file, failing on any torn line.
func countLines(t *testing.T, path string) int {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	defer f.Close()
	n := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var sp Span
		if err := json.Unmarshal(sc.Bytes(), &sp); err != nil {
			t.Fatalf("%s line %d is torn: %v", path, n+1, err)
		}
		n++
	}
	return n
}

func TestSpanLogRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spans.jsonl")
	l, err := OpenSpanLog(path, 2048)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i := 0; i < 40; i++ {
		batch := spanBatch("deadbeefcafe0123", 4)
		if err := l.Write(batch); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		total += len(batch)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Rotation must have happened: one .old generation, live file under cap.
	old := path + ".old"
	if _, err := os.Stat(old); err != nil {
		t.Fatalf("no rotated generation: %v", err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() > 2048+512 {
		t.Fatalf("live span log not capped: %d bytes", st.Size())
	}
	// No spans torn across the rotation boundary, and nothing written twice:
	// together the two generations hold a clean JSONL suffix of the stream.
	kept := countLines(t, path) + countLines(t, old)
	if kept == 0 || kept > total {
		t.Fatalf("generations hold %d spans, want in (0, %d]", kept, total)
	}
}

// Close must flush the buffered tail — a graceful shutdown cannot lose the
// final job's spans.
func TestSpanLogCloseFlushes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spans.jsonl")
	l, err := OpenSpanLog(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Write(spanBatch("0123456789abcdef", 3)); err != nil {
		t.Fatal(err)
	}
	// Before Close the write may sit in the bufio layer; after Close the
	// file must hold all three complete lines.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if n := countLines(t, path); n != 3 {
		t.Fatalf("flushed %d spans, want 3", n)
	}
}
