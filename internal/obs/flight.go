package obs

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// FlightEntry is one completed unit of traced work kept in the flight
// recorder's ring: a finished job's span tree and ledger, or an offending
// HTTP request (slow, errored, or SLO-violating). When a trigger fires, the
// ring is what explains the seconds leading up to the breach.
type FlightEntry struct {
	Trace      string          `json:"trace_id,omitempty"`
	JobID      string          `json:"job_id,omitempty"`
	Kind       string          `json:"kind"`
	Err        string          `json:"error,omitempty"`
	DurMs      float64         `json:"dur_ms"`
	FinishedAt time.Time       `json:"finished_at"`
	Spans      []Span          `json:"spans,omitempty"`
	Ledger     *LedgerSnapshot `json:"ledger,omitempty"`
}

// FlightConfig configures a FlightRecorder. Zero values take the defaults
// noted per field.
type FlightConfig struct {
	// Dir is the bundle directory (required; created if missing).
	Dir string
	// RingSize bounds the in-memory entry ring (default 64).
	RingSize int
	// MinInterval rate-limits dumps: triggers inside the interval after a
	// dump are dropped (default 30s).
	MinInterval time.Duration
	// MaxBundles rotates the on-disk directory: after a dump, the oldest
	// bundles beyond this count are deleted (default 8).
	MaxBundles int
	// CPUProfile is the CPU-profile capture window included in each bundle
	// (default 5s; negative skips the CPU profile; capture fails soft when
	// another profiler is already running).
	CPUProfile time.Duration
	// Ledgers, when set, returns the live (in-flight) job ledgers to include
	// in the bundle.
	Ledgers func() map[string]*LedgerSnapshot
	Logger  *slog.Logger

	// now is a test seam.
	now func() time.Time
}

// FlightRecorder keeps a bounded ring of recently completed traced work and,
// when triggered (SLO-window breach, slow-request hit, task failure), dumps
// an atomic diagnostic bundle to a rotated on-disk directory:
//
//	<dir>/fr-<utc-timestamp>-<seq>-<reason>/
//	  meta.json       trigger reason/detail, timestamps, entry count
//	  flight.json     ring contents, newest first
//	  ledgers.json    live per-job resource ledgers at dump time
//	  goroutines.txt  full goroutine dump
//	  heap.pprof      heap profile
//	  cpu.pprof       CPU profile over the configured window (optional)
//
// Bundles appear atomically (written to a dot-prefixed temp dir, then
// renamed), so a watcher never sees a half-written bundle.
type FlightRecorder struct {
	cfg FlightConfig

	mu   sync.Mutex
	ring []FlightEntry
	next int
	full bool

	lastDump atomic.Int64 // unix ns of last accepted trigger
	seq      atomic.Int64
	dumps    atomic.Int64 // completed dumps (tests and /metrics)
}

// NewFlightRecorder creates the bundle directory and returns a recorder.
func NewFlightRecorder(cfg FlightConfig) (*FlightRecorder, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("obs: flight recorder needs a directory")
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = 64
	}
	if cfg.MinInterval <= 0 {
		cfg.MinInterval = 30 * time.Second
	}
	if cfg.MaxBundles <= 0 {
		cfg.MaxBundles = 8
	}
	switch {
	case cfg.CPUProfile == 0:
		cfg.CPUProfile = 5 * time.Second
	case cfg.CPUProfile < 0:
		cfg.CPUProfile = 0
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: flight recorder dir: %w", err)
	}
	return &FlightRecorder{cfg: cfg, ring: make([]FlightEntry, cfg.RingSize)}, nil
}

// Dir returns the bundle directory.
func (f *FlightRecorder) Dir() string { return f.cfg.Dir }

// Dumps reports how many bundles this recorder has written.
func (f *FlightRecorder) Dumps() int64 { return f.dumps.Load() }

// Record adds one completed entry to the ring. Nil-safe so call sites need
// no conditionals when the recorder is disabled.
func (f *FlightRecorder) Record(e FlightEntry) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.ring[f.next] = e
	f.next++
	if f.next == len(f.ring) {
		f.next = 0
		f.full = true
	}
	f.mu.Unlock()
}

// Entries returns the ring contents, newest first.
func (f *FlightRecorder) Entries() []FlightEntry {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.next
	if f.full {
		n = len(f.ring)
	}
	out := make([]FlightEntry, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, f.ring[(f.next-i+len(f.ring))%len(f.ring)])
	}
	return out
}

// Trigger requests a diagnostic dump. It returns true when the dump was
// accepted (and started in the background) and false when rate-limited: at
// most one dump per MinInterval, no matter how many goroutines hit breaches
// concurrently. Nil-safe.
func (f *FlightRecorder) Trigger(reason, detail string) bool {
	if f == nil {
		return false
	}
	now := f.cfg.now().UnixNano()
	last := f.lastDump.Load()
	if last != 0 && time.Duration(now-last) < f.cfg.MinInterval {
		return false
	}
	if !f.lastDump.CompareAndSwap(last, now) {
		return false // a concurrent trigger won the race
	}
	go func() {
		if _, err := f.dump(reason, detail); err != nil {
			f.cfg.Logger.Warn("flight-record dump failed", "reason", reason, "err", err)
		}
	}()
	return true
}

// TriggerSync is Trigger with a synchronous dump — tests and shutdown paths
// use it to know the bundle is on disk. Returns the bundle name.
func (f *FlightRecorder) TriggerSync(reason, detail string) (string, error) {
	if f == nil {
		return "", fmt.Errorf("obs: no flight recorder")
	}
	now := f.cfg.now().UnixNano()
	last := f.lastDump.Load()
	if last != 0 && time.Duration(now-last) < f.cfg.MinInterval {
		return "", nil
	}
	if !f.lastDump.CompareAndSwap(last, now) {
		return "", nil
	}
	return f.dump(reason, detail)
}

// sanitizeReason keeps bundle directory names shell- and URL-safe.
func sanitizeReason(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
			out = append(out, r)
		case r >= 'A' && r <= 'Z':
			out = append(out, r+('a'-'A'))
		default:
			out = append(out, '_')
		}
		if len(out) >= 32 {
			break
		}
	}
	if len(out) == 0 {
		return "trigger"
	}
	return string(out)
}

// dump writes one bundle and rotates old ones.
func (f *FlightRecorder) dump(reason, detail string) (string, error) {
	started := f.cfg.now()
	name := fmt.Sprintf("fr-%s-%04d-%s",
		started.UTC().Format("20060102T150405"), f.seq.Add(1), sanitizeReason(reason))
	tmp := filepath.Join(f.cfg.Dir, ".tmp-"+name)
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return "", err
	}
	defer os.RemoveAll(tmp) // no-op after the rename succeeds

	entries := f.Entries()
	writeJSON := func(file string, v any) error {
		b, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(tmp, file), append(b, '\n'), 0o644)
	}
	if err := writeJSON("flight.json", entries); err != nil {
		return "", err
	}
	if f.cfg.Ledgers != nil {
		if live := f.cfg.Ledgers(); len(live) > 0 {
			if err := writeJSON("ledgers.json", live); err != nil {
				return "", err
			}
		}
	}

	// Goroutine dump: grow the buffer until the full dump fits.
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	if err := os.WriteFile(filepath.Join(tmp, "goroutines.txt"), buf, 0o644); err != nil {
		return "", err
	}

	if hf, err := os.Create(filepath.Join(tmp, "heap.pprof")); err == nil {
		werr := pprof.WriteHeapProfile(hf)
		cerr := hf.Close()
		if werr != nil || cerr != nil {
			f.cfg.Logger.Warn("flight-record heap profile failed", "err", werr)
		}
	}

	// CPU profile: fails soft when another profiler holds the singleton
	// (bench -cpuprofile, a concurrent pprof scrape).
	cpuErr := ""
	if f.cfg.CPUProfile > 0 {
		if cf, err := os.Create(filepath.Join(tmp, "cpu.pprof")); err == nil {
			if err := pprof.StartCPUProfile(cf); err != nil {
				cpuErr = err.Error()
				cf.Close()
				os.Remove(cf.Name())
			} else {
				time.Sleep(f.cfg.CPUProfile)
				pprof.StopCPUProfile()
				cf.Close()
			}
		}
	}

	meta := map[string]any{
		"reason":     reason,
		"detail":     detail,
		"created_at": started.UTC().Format(time.RFC3339Nano),
		"entries":    len(entries),
		"cpu_profile_ms": float64(f.cfg.CPUProfile) /
			float64(time.Millisecond),
	}
	if cpuErr != "" {
		meta["cpu_profile_error"] = cpuErr
	}
	if err := writeJSON("meta.json", meta); err != nil {
		return "", err
	}

	if err := os.Rename(tmp, filepath.Join(f.cfg.Dir, name)); err != nil {
		return "", err
	}
	f.dumps.Add(1)
	f.cfg.Logger.Warn("flight-record bundle written",
		"bundle", name, "reason", reason, "detail", detail, "entries", len(entries))
	f.rotate()
	return name, nil
}

// rotate deletes the oldest bundles beyond MaxBundles. Bundle names sort
// chronologically (UTC timestamp prefix), so lexical order is age order.
func (f *FlightRecorder) rotate() {
	names, err := f.bundleNames()
	if err != nil || len(names) <= f.cfg.MaxBundles {
		return
	}
	for _, name := range names[:len(names)-f.cfg.MaxBundles] {
		if err := os.RemoveAll(filepath.Join(f.cfg.Dir, name)); err != nil {
			f.cfg.Logger.Warn("flight-record rotation failed", "bundle", name, "err", err)
		}
	}
}

func (f *FlightRecorder) bundleNames() ([]string, error) {
	ents, err := os.ReadDir(f.cfg.Dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if e.IsDir() && strings.HasPrefix(e.Name(), "fr-") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// BundleFile is one file inside a bundle.
type BundleFile struct {
	Name  string `json:"name"`
	Bytes int64  `json:"bytes"`
}

// BundleInfo describes one on-disk bundle for GET /v1/debug/flightrecords.
type BundleInfo struct {
	Name      string       `json:"name"`
	CreatedAt time.Time    `json:"created_at"`
	Files     []BundleFile `json:"files"`
}

// Bundles lists on-disk bundles, newest first.
func (f *FlightRecorder) Bundles() ([]BundleInfo, error) {
	if f == nil {
		return nil, nil
	}
	names, err := f.bundleNames()
	if err != nil {
		return nil, err
	}
	out := make([]BundleInfo, 0, len(names))
	for i := len(names) - 1; i >= 0; i-- {
		name := names[i]
		info := BundleInfo{Name: name}
		if st, err := os.Stat(filepath.Join(f.cfg.Dir, name)); err == nil {
			info.CreatedAt = st.ModTime().UTC()
		}
		files, err := os.ReadDir(filepath.Join(f.cfg.Dir, name))
		if err != nil {
			continue
		}
		for _, fe := range files {
			if fe.IsDir() {
				continue
			}
			bf := BundleFile{Name: fe.Name()}
			if st, err := fe.Info(); err == nil {
				bf.Bytes = st.Size()
			}
			info.Files = append(info.Files, bf)
		}
		out = append(out, info)
	}
	return out, nil
}

// ReadBundleFile returns one file from one bundle, rejecting any name that
// could escape the bundle directory.
func (f *FlightRecorder) ReadBundleFile(bundle, file string) ([]byte, error) {
	if f == nil {
		return nil, os.ErrNotExist
	}
	if !strings.HasPrefix(bundle, "fr-") || bundle != filepath.Base(bundle) ||
		file == "" || file != filepath.Base(file) || strings.HasPrefix(file, ".") {
		return nil, os.ErrNotExist
	}
	return os.ReadFile(filepath.Join(f.cfg.Dir, bundle, file))
}
