package obs

import (
	"bytes"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestWrapCountsClassesAndLatency(t *testing.T) {
	m := NewHTTPMetrics()
	h := m.Wrap("/v1/models/{id}/predict", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		code, _ := strconv.Atoi(r.URL.Query().Get("code"))
		if code == 200 {
			w.Write([]byte("ok")) // implicit 200 via Write
			return
		}
		w.WriteHeader(code)
	}))
	for _, code := range []int{200, 200, 404, 500} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/models/m-1/predict?code="+strconv.Itoa(code), nil))
		if rec.Code != code {
			t.Fatalf("status = %d, want %d", rec.Code, code)
		}
	}
	rm := m.Route("/v1/models/{id}/predict")
	if got := rm.Class(2); got != 2 {
		t.Errorf("2xx = %d, want 2", got)
	}
	if got := rm.Class(4); got != 1 {
		t.Errorf("4xx = %d, want 1", got)
	}
	if got := rm.Class(5); got != 1 {
		t.Errorf("5xx = %d, want 1", got)
	}
	if got := rm.Requests(); got != 4 {
		t.Errorf("requests = %d, want 4", got)
	}
	if got := rm.Latency().Count(); got != 4 {
		t.Errorf("latency observations = %d, want 4", got)
	}
	if got := rm.Inflight(); got != 0 {
		t.Errorf("inflight after completion = %d, want 0", got)
	}
	if got := m.Inflight(); got != 0 {
		t.Errorf("global inflight = %d, want 0", got)
	}
	// The SLO window saw the 5xx as an error.
	total, errors, _ := rm.SLO().Snapshot(time.Now())
	if total != 4 || errors != 1 {
		t.Errorf("slo window total=%d errors=%d, want 4/1", total, errors)
	}
}

func TestWrapInflightDuringRequest(t *testing.T) {
	m := NewHTTPMetrics()
	entered := make(chan struct{})
	release := make(chan struct{})
	h := m.Wrap("/block", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
	}))
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/block", nil))
	}()
	<-entered
	if got := m.Route("/block").Inflight(); got != 1 {
		t.Errorf("inflight mid-request = %d, want 1", got)
	}
	if got := m.Inflight(); got != 1 {
		t.Errorf("global inflight mid-request = %d, want 1", got)
	}
	close(release)
	wg.Wait()
	if got := m.Route("/block").Inflight(); got != 0 {
		t.Errorf("inflight after = %d, want 0", got)
	}
}

func TestSlowRequestLogCarriesTraceAndRoute(t *testing.T) {
	m := NewHTTPMetrics()
	var buf bytes.Buffer
	m.SetSlowRequestThreshold(0.000001, slog.New(slog.NewTextHandler(&buf, nil)))
	h := m.Wrap("/v1/train", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(TraceHeader, "feedfacecafebeef") // minted at admission
		w.WriteHeader(http.StatusAccepted)
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("POST", "/v1/train", nil))
	out := buf.String()
	for _, want := range []string{"slow request", "route=/v1/train", "trace=feedfacecafebeef", "status=202"} {
		if !strings.Contains(out, want) {
			t.Errorf("slow-request log missing %q: %s", want, out)
		}
	}

	// A request-supplied trace header wins over the response echo.
	buf.Reset()
	req := httptest.NewRequest("POST", "/v1/train", nil)
	req.Header.Set(TraceHeader, "0123456789abcdef")
	h.ServeHTTP(httptest.NewRecorder(), req)
	if !strings.Contains(buf.String(), "trace=0123456789abcdef") {
		t.Errorf("slow-request log did not use request trace: %s", buf.String())
	}

	// Threshold 0 disables logging entirely.
	buf.Reset()
	m.SetSlowRequestThreshold(0, nil)
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("POST", "/v1/train", nil))
	if buf.Len() != 0 {
		t.Errorf("disabled slow-request log still wrote: %s", buf.String())
	}
}

func TestHTTPMetricsWriteProm(t *testing.T) {
	m := NewHTTPMetrics()
	ok := m.Wrap("/healthz", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	bad := m.Wrap("/v1/train", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	for i := 0; i < 3; i++ {
		ok.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/healthz", nil))
	}
	bad.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("POST", "/v1/train", nil))

	var b strings.Builder
	m.WriteProm(&b, "blinkml_http")
	out := b.String()
	for _, want := range []string{
		`blinkml_http_requests_total{route="/healthz",class="2xx"} 3`,
		`blinkml_http_requests_total{route="/v1/train",class="5xx"} 1`,
		"blinkml_http_inflight 0",
		`blinkml_http_route_inflight{route="/healthz"} 0`,
		"# TYPE blinkml_http_request_ms histogram",
		`blinkml_http_request_ms_count{route="/healthz"} 3`,
		`blinkml_http_request_ms_p99{route="/healthz"}`,
		"blinkml_http_slo_latency_threshold_ms 250",
		`blinkml_http_slo_window_requests{route="/healthz"} 3`,
		`blinkml_http_slo_availability{route="/healthz"} 1`,
		`blinkml_http_slo_availability{route="/v1/train"} 0`,
		`blinkml_http_slo_latency_attainment{route="/healthz"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteProm output missing %q\n%s", want, out)
		}
	}
	// The expvar JSON form must stay valid JSON and carry the route keys.
	js := m.String()
	if !strings.Contains(js, `"/healthz":{"requests":3`) {
		t.Errorf("String() missing /healthz summary: %s", js)
	}
}

// TestWrapRouteLabelsBounded: the series set is fixed by Wrap call sites;
// request paths with IDs never mint new routes.
func TestWrapRouteLabelsBounded(t *testing.T) {
	m := NewHTTPMetrics()
	h := m.Wrap("/v1/models/{id}/predict", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	for _, path := range []string{"/v1/models/m-1/predict", "/v1/models/m-2/predict", "/v1/models/zzz/predict"} {
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("POST", path, nil))
	}
	names, _ := m.snapshotRoutes()
	if len(names) != 1 || names[0] != "/v1/models/{id}/predict" {
		t.Fatalf("routes = %v, want exactly the registered pattern", names)
	}
	if got := m.Route("/v1/models/{id}/predict").Requests(); got != 3 {
		t.Fatalf("requests = %d, want 3", got)
	}
}
