package obs

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync/atomic"
)

// Histogram bucket layout: geometric base-2 buckets starting at 0.01 ms.
// Bucket i covers (bounds[i-1], bounds[i]] with bounds[i] = 0.01ms · 2^i,
// so 36 bounds span 10 µs .. ~344 s — from a single predict call to the
// longest plausible training job — at a fixed ~41% relative error, plus one
// overflow bucket. The layout is identical for every Histogram, which makes
// Merge a plain element-wise add.
const (
	numBounds   = 36
	numBuckets  = numBounds + 1 // +1 overflow
	minBoundMs  = 0.01
	boundFactor = 2.0
)

// bucketBounds returns the shared upper bounds in milliseconds.
func bucketBounds() [numBounds]float64 {
	var b [numBounds]float64
	v := minBoundMs
	for i := range b {
		b[i] = v
		v *= boundFactor
	}
	return b
}

var bounds = bucketBounds()

// Histogram is a fixed-bucket log-scale latency histogram. Observe is
// lock-free (one atomic add per bucket plus a CAS loop for the sum), so it
// is safe on hot paths; quantiles are computed at read time by linear
// interpolation within the owning bucket. It implements expvar.Var, so it
// publishes into the same expvar maps as the existing counters.
type Histogram struct {
	counts [numBuckets]atomic.Uint64
	count  atomic.Uint64
	sumMs  atomic.Uint64 // float64 bits, CAS-updated
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketFor maps a latency in ms to its bucket index.
func bucketFor(ms float64) int {
	if !(ms > minBoundMs) { // catches NaN, negatives, and the first bucket
		return 0
	}
	// ceil(log2(ms/minBound)) without a loop.
	i := int(math.Ceil(math.Log2(ms / minBoundMs)))
	if i < 0 {
		return 0
	}
	if i >= numBounds {
		return numBounds // overflow bucket
	}
	// Guard float error at the boundary: ensure ms <= bounds[i].
	if ms > bounds[i] {
		i++
		if i >= numBounds {
			return numBounds
		}
	}
	return i
}

// Observe records one latency in milliseconds.
func (h *Histogram) Observe(ms float64) {
	if math.IsNaN(ms) || ms < 0 {
		ms = 0
	}
	h.counts[bucketFor(ms)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumMs.Load()
		next := math.Float64bits(math.Float64frombits(old) + ms)
		if h.sumMs.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// SumMs returns the sum of all observed latencies in milliseconds.
func (h *Histogram) SumMs() float64 { return math.Float64frombits(h.sumMs.Load()) }

// Merge adds o's observations into h. Both histograms share the fixed
// layout, so merging is associative and commutative.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	var total uint64
	for i := range o.counts {
		n := o.counts[i].Load()
		if n == 0 {
			continue
		}
		h.counts[i].Add(n)
		total += n
	}
	h.count.Add(total)
	add := o.SumMs()
	for {
		old := h.sumMs.Load()
		next := math.Float64bits(math.Float64frombits(old) + add)
		if h.sumMs.CompareAndSwap(old, next) {
			return
		}
	}
}

// snapshot reads the buckets once; quantile math works on the copy so a
// concurrent Observe cannot skew a single read.
func (h *Histogram) snapshot() (c [numBuckets]uint64, total uint64) {
	for i := range h.counts {
		c[i] = h.counts[i].Load()
		total += c[i]
	}
	return c, total
}

// Quantile returns the q-quantile (0 < q < 1) in milliseconds, linearly
// interpolated within the owning bucket. It returns 0 for an empty
// histogram; observations in the overflow bucket report the last bound.
func (h *Histogram) Quantile(q float64) float64 {
	c, total := h.snapshot()
	return quantileOf(c, total, q)
}

func quantileOf(c [numBuckets]uint64, total uint64, q float64) float64 {
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for i, n := range c {
		if n == 0 {
			continue
		}
		prev := cum
		cum += float64(n)
		if cum < rank {
			continue
		}
		if i >= numBounds { // overflow bucket: no finite upper bound
			return bounds[numBounds-1]
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := bounds[i]
		return lo + (hi-lo)*(rank-prev)/float64(n)
	}
	return bounds[numBounds-1]
}

// String implements expvar.Var: a JSON summary with count, sum, and common
// tail quantiles. The full bucket vector is exposed on /metrics instead —
// the JSON form is for /metrics.json and /debug/vars readers.
func (h *Histogram) String() string {
	c, total := h.snapshot()
	var b strings.Builder
	fmt.Fprintf(&b, `{"count":%d,"sum_ms":%s,"p50":%s,"p95":%s,"p99":%s}`,
		h.count.Load(),
		jsonFloat(h.SumMs()),
		jsonFloat(quantileOf(c, total, 0.50)),
		jsonFloat(quantileOf(c, total, 0.95)),
		jsonFloat(quantileOf(c, total, 0.99)))
	return b.String()
}

// jsonFloat formats f as a valid JSON number (expvar requires String() to
// be valid JSON; %g alone can emit "+Inf").
func jsonFloat(f float64) string {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return "0"
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}
