package obs

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestLedgerChargesAndSnapshot(t *testing.T) {
	l := NewLedger()
	l.ChargeCPU(3 * time.Millisecond)
	l.ChargeKernel(2*time.Millisecond, 1000)
	l.ChargeKernel(time.Millisecond, 500)
	l.ChargeMaterialize(10, 640)
	l.ChargeBundle(true)
	l.ChargeBundle(false)
	l.ChargeBundle(false)
	l.ChargeSteals(4)
	l.ChargeQueueWait(5 * time.Millisecond)
	l.ChargeRegistryIO(time.Millisecond)

	s := l.Snapshot()
	if s.CPUMs != 3 || s.KernelMs != 3 || s.KernelCalls != 2 || s.Flops != 1500 {
		t.Fatalf("cpu/kernel fields: %+v", s)
	}
	if s.RowsMaterialized != 10 || s.BytesMaterialized != 640 {
		t.Fatalf("materialize fields: %+v", s)
	}
	if s.BundleHits != 1 || s.BundleMisses != 2 || s.Steals != 4 {
		t.Fatalf("bundle/steal fields: %+v", s)
	}
	if s.QueueWaitMs != 5 || s.RegistryIOMs != 1 {
		t.Fatalf("wait fields: %+v", s)
	}
}

func TestLedgerStageAttribution(t *testing.T) {
	l := NewLedger()
	restore := l.SetStage("statistics")
	l.ChargeKernel(time.Millisecond, 100)
	l.ChargeMaterialize(5, 320)
	inner := l.SetStage("search")
	l.ChargeKernel(time.Millisecond, 100)
	inner() // back to "statistics"
	l.ChargeMaterialize(2, 128)
	restore()
	// No stage set: charges land only in the totals.
	l.ChargeKernel(time.Millisecond, 100)

	s := l.Snapshot()
	if len(s.Stages) != 2 {
		t.Fatalf("stages = %+v, want 2", s.Stages)
	}
	// Sorted by name: search, statistics.
	if s.Stages[0].Stage != "search" || s.Stages[0].KernelCalls != 1 {
		t.Fatalf("search stage: %+v", s.Stages[0])
	}
	st := s.Stages[1]
	if st.Stage != "statistics" || st.KernelCalls != 1 || st.RowsMaterialized != 7 {
		t.Fatalf("statistics stage: %+v", st)
	}
	if s.KernelCalls != 3 || s.RowsMaterialized != 7 {
		t.Fatalf("totals: %+v", s)
	}
}

func TestLedgerMerge(t *testing.T) {
	remote := NewLedger()
	remote.SetStage("final")
	remote.ChargeKernel(2*time.Millisecond, 700)
	remote.ChargeMaterialize(3, 192)
	remote.ChargeBundle(false)

	local := NewLedger()
	local.ChargeKernel(time.Millisecond, 300)
	local.Merge(remote.Snapshot())

	s := local.Snapshot()
	if s.KernelCalls != 2 || s.Flops != 1000 {
		t.Fatalf("merged kernels: %+v", s)
	}
	if s.RowsMaterialized != 3 || s.BytesMaterialized != 192 || s.BundleMisses != 1 {
		t.Fatalf("merged materialize/bundle: %+v", s)
	}
	if len(s.Stages) != 1 || s.Stages[0].Stage != "final" || s.Stages[0].KernelCalls != 1 {
		t.Fatalf("merged stages: %+v", s.Stages)
	}
}

func TestLedgerNilSafe(t *testing.T) {
	var l *Ledger
	l.ChargeCPU(time.Millisecond)
	l.ChargeKernel(time.Millisecond, 1)
	l.ChargeMaterialize(1, 1)
	l.ChargeBundle(true)
	l.ChargeSteals(1)
	l.ChargeQueueWait(time.Millisecond)
	l.ChargeRegistryIO(time.Millisecond)
	l.Merge(&LedgerSnapshot{KernelCalls: 1})
	if l.Snapshot() != nil {
		t.Fatal("nil ledger snapshot should be nil")
	}
	if got := LedgerFrom(context.Background()); got != nil {
		t.Fatalf("LedgerFrom(empty) = %v", got)
	}
	if got := WithLedger(context.Background(), nil); got != context.Background() {
		t.Fatal("WithLedger(nil) should return ctx unchanged")
	}
}

func TestLedgerContextRoundTrip(t *testing.T) {
	l := NewLedger()
	ctx := WithLedger(context.Background(), l)
	if LedgerFrom(ctx) != l {
		t.Fatal("context round trip lost the ledger")
	}
}

func TestBindLedgerNesting(t *testing.T) {
	if BoundLedger() != nil {
		t.Fatal("unexpected bound ledger at test start")
	}
	outer, inner := NewLedger(), NewLedger()
	release1 := BindLedger(outer)
	if BoundLedger() != outer {
		t.Fatal("outer binding not visible")
	}
	release2 := BindLedger(inner)
	if BoundLedger() != inner {
		t.Fatal("inner binding not visible")
	}
	release2()
	if BoundLedger() != outer {
		t.Fatal("release did not restore the outer binding")
	}
	release1()
	if BoundLedger() != nil {
		t.Fatal("bindings leaked")
	}
}

func TestBindLedgerPerGoroutine(t *testing.T) {
	l := NewLedger()
	release := BindLedger(l)
	defer release()
	// A plain `go` goroutine does not inherit the binding; it must bind
	// explicitly (BindLedgerFromContext is the usual route).
	var wg sync.WaitGroup
	wg.Add(1)
	var spawned *Ledger
	go func() {
		defer wg.Done()
		spawned = BoundLedger()
	}()
	wg.Wait()
	if spawned != nil {
		t.Fatalf("spawned goroutine saw binding %v, want nil", spawned)
	}
}

// TestPoolFrameOutermostOnly: nested frames (a parallel kernel inside a
// parallel probe) charge busy time once, from the outermost frame only;
// steals are charged from any depth.
func TestPoolFrameOutermostOnly(t *testing.T) {
	l := NewLedger()
	release := BindLedger(l)
	defer release()

	outer := EnterPool()
	time.Sleep(2 * time.Millisecond)
	inner := EnterPool()
	time.Sleep(2 * time.Millisecond)
	inner.Exit(3)
	if got := l.Snapshot(); got.CPUMs != 0 {
		t.Fatalf("inner frame charged %v CPU ms, want 0", got.CPUMs)
	}
	outer.Exit(0)

	s := l.Snapshot()
	if s.CPUMs < 3 {
		t.Fatalf("outer frame charged %v CPU ms, want >= ~4", s.CPUMs)
	}
	if s.Steals != 3 {
		t.Fatalf("steals = %d, want 3", s.Steals)
	}
}

func TestPoolFrameNoBinding(t *testing.T) {
	f := EnterPool()
	f.Exit(5) // must be a no-op, not a panic
}

// TestLedgerConcurrentCharges exercises the atomic counters and the stage
// map under the race detector.
func TestLedgerConcurrentCharges(t *testing.T) {
	l := NewLedger()
	restore := l.SetStage("stats")
	defer restore()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l.ChargeKernel(time.Microsecond, 10)
				l.ChargeMaterialize(1, 64)
			}
		}()
	}
	wg.Wait()
	s := l.Snapshot()
	if s.KernelCalls != 1600 || s.Flops != 16000 || s.RowsMaterialized != 1600 {
		t.Fatalf("concurrent totals: %+v", s)
	}
}
