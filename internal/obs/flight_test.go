package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// testFlight builds a recorder with a deterministic clock and no CPU-profile
// window (tests should not sleep 5s per dump).
func testFlight(t *testing.T, ringSize int, minInterval time.Duration, maxBundles int, now func() time.Time) *FlightRecorder {
	t.Helper()
	f, err := NewFlightRecorder(FlightConfig{
		Dir:         t.TempDir(),
		RingSize:    ringSize,
		MinInterval: minInterval,
		MaxBundles:  maxBundles,
		CPUProfile:  -1,
		Logger:      Discard(),
		now:         now,
	})
	if err != nil {
		t.Fatalf("new flight recorder: %v", err)
	}
	return f
}

func TestFlightRingNewestFirstAndBounded(t *testing.T) {
	f := testFlight(t, 4, time.Minute, 2, nil)
	for i := 0; i < 7; i++ {
		f.Record(FlightEntry{JobID: fmt.Sprintf("j-%d", i)})
	}
	got := f.Entries()
	if len(got) != 4 {
		t.Fatalf("ring holds %d entries, want 4", len(got))
	}
	for i, want := range []string{"j-6", "j-5", "j-4", "j-3"} {
		if got[i].JobID != want {
			t.Fatalf("entry %d = %s, want %s (newest first)", i, got[i].JobID, want)
		}
	}
}

func TestFlightTriggerRateLimitConcurrent(t *testing.T) {
	base := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	f := testFlight(t, 8, 30*time.Second, 4, func() time.Time { return base })
	f.Record(FlightEntry{JobID: "j-1", Kind: "job:train"})

	// Many goroutines hit a breach at the same instant: exactly one dump.
	var wg sync.WaitGroup
	var accepted sync.Map
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name, err := f.TriggerSync("slo-breach", "goroutine race")
			if err != nil {
				t.Errorf("trigger %d: %v", g, err)
			}
			if name != "" {
				accepted.Store(name, true)
			}
		}(g)
	}
	wg.Wait()
	var names []string
	accepted.Range(func(k, _ any) bool { names = append(names, k.(string)); return true })
	if len(names) != 1 {
		t.Fatalf("accepted dumps %v, want exactly one", names)
	}
	if f.Dumps() != 1 {
		t.Fatalf("dump count %d, want 1", f.Dumps())
	}

	// Inside the interval: rate-limited. Past it: accepted again.
	if name, _ := f.TriggerSync("slo-breach", "again"); name != "" {
		t.Fatalf("trigger inside the interval wrote %s", name)
	}
	base = base.Add(31 * time.Second)
	if name, _ := f.TriggerSync("slo-breach", "later"); name == "" {
		t.Fatal("trigger past the interval was rate-limited")
	}
}

func TestFlightBundleContents(t *testing.T) {
	now := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	ledgers := map[string]*LedgerSnapshot{"j-1": {KernelCalls: 42}}
	f, err := NewFlightRecorder(FlightConfig{
		Dir:        filepath.Join(t.TempDir(), "flight"),
		CPUProfile: -1,
		Ledgers:    func() map[string]*LedgerSnapshot { return ledgers },
		Logger:     Discard(),
		now:        func() time.Time { return now },
	})
	if err != nil {
		t.Fatalf("new flight recorder: %v", err)
	}
	f.Record(FlightEntry{JobID: "j-1", Kind: "job:train", DurMs: 12.5})

	name, err := f.TriggerSync("slow-request", "POST /v1/train 900ms")
	if err != nil || name == "" {
		t.Fatalf("trigger: name=%q err=%v", name, err)
	}
	if !strings.HasPrefix(name, "fr-20260807T120000-0001-slow-request") {
		t.Fatalf("bundle name %q", name)
	}

	// The ring contents round-trip through flight.json.
	raw, err := f.ReadBundleFile(name, "flight.json")
	if err != nil {
		t.Fatalf("read flight.json: %v", err)
	}
	var entries []FlightEntry
	if err := json.Unmarshal(raw, &entries); err != nil {
		t.Fatalf("parse flight.json: %v", err)
	}
	if len(entries) != 1 || entries[0].JobID != "j-1" {
		t.Fatalf("flight.json entries: %+v", entries)
	}
	// Live ledgers and the trigger metadata are present.
	raw, err = f.ReadBundleFile(name, "ledgers.json")
	if err != nil || !strings.Contains(string(raw), `"kernel_calls": 42`) {
		t.Fatalf("ledgers.json: %s (err %v)", raw, err)
	}
	raw, err = f.ReadBundleFile(name, "meta.json")
	if err != nil || !strings.Contains(string(raw), "slow-request") {
		t.Fatalf("meta.json: %s (err %v)", raw, err)
	}
	for _, file := range []string{"goroutines.txt", "heap.pprof"} {
		if _, err := f.ReadBundleFile(name, file); err != nil {
			t.Fatalf("bundle missing %s: %v", file, err)
		}
	}
	// No temp directory left behind.
	ents, _ := os.ReadDir(f.Dir())
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Fatalf("leftover temp dir %s", e.Name())
		}
	}

	bundles, err := f.Bundles()
	if err != nil || len(bundles) != 1 || bundles[0].Name != name {
		t.Fatalf("Bundles() = %+v (err %v)", bundles, err)
	}
}

func TestFlightRotation(t *testing.T) {
	now := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	f := testFlight(t, 4, time.Nanosecond, 2, func() time.Time { return now })
	var names []string
	for i := 0; i < 5; i++ {
		now = now.Add(time.Second)
		name, err := f.TriggerSync("slo-breach", "rotation")
		if err != nil || name == "" {
			t.Fatalf("dump %d: name=%q err=%v", i, name, err)
		}
		names = append(names, name)
	}
	kept, err := f.bundleNames()
	if err != nil {
		t.Fatalf("bundle names: %v", err)
	}
	if len(kept) != 2 {
		t.Fatalf("kept %v, want the newest 2", kept)
	}
	if kept[0] != names[3] || kept[1] != names[4] {
		t.Fatalf("kept %v, want %v", kept, names[3:])
	}
}

func TestFlightReadBundleFileRejectsTraversal(t *testing.T) {
	f := testFlight(t, 4, time.Minute, 2, nil)
	name, err := f.TriggerSync("probe", "")
	if err != nil || name == "" {
		t.Fatalf("trigger: name=%q err=%v", name, err)
	}
	// Plant a file outside any bundle to prove traversal cannot reach it.
	secret := filepath.Join(f.Dir(), "secret.txt")
	if err := os.WriteFile(secret, []byte("nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, tc := range [][2]string{
		{"../" + filepath.Base(f.Dir()), "secret.txt"},
		{name, "../secret.txt"},
		{name, "../../etc/passwd"},
		{"not-a-bundle", "meta.json"},
		{name, ".hidden"},
		{name, ""},
	} {
		if _, err := f.ReadBundleFile(tc[0], tc[1]); err == nil {
			t.Fatalf("ReadBundleFile(%q, %q) succeeded, want rejection", tc[0], tc[1])
		}
	}
	// The legitimate read still works.
	if _, err := f.ReadBundleFile(name, "meta.json"); err != nil {
		t.Fatalf("legitimate read failed: %v", err)
	}
}

func TestFlightNilSafe(t *testing.T) {
	var f *FlightRecorder
	f.Record(FlightEntry{})
	if f.Entries() != nil {
		t.Fatal("nil Entries")
	}
	if f.Trigger("x", "y") {
		t.Fatal("nil Trigger accepted")
	}
	if b, err := f.Bundles(); err != nil || b != nil {
		t.Fatal("nil Bundles")
	}
	if _, err := f.ReadBundleFile("fr-x", "meta.json"); err == nil {
		t.Fatal("nil ReadBundleFile should error")
	}
}
