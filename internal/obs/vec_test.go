package obs

import (
	"encoding/json"
	"expvar"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHistogramVecCollapsesUnknownFamilies(t *testing.T) {
	v := NewHistogramVec()
	v.With("logistic").Observe(5)
	v.With("no-such-family").Observe(7)
	v.With("also-unknown").Observe(9)
	if got := v.With("logistic").Count(); got != 1 {
		t.Fatalf("logistic count = %d, want 1", got)
	}
	if got := v.With(FamilyOther).Count(); got != 2 {
		t.Fatalf("other count = %d, want 2 (unknown labels must collapse)", got)
	}
	// The expvar form must be valid JSON keyed by family, empties omitted.
	var m map[string]json.RawMessage
	if err := json.Unmarshal([]byte(v.String()), &m); err != nil {
		t.Fatalf("vec String is not JSON: %v", err)
	}
	if _, ok := m["logistic"]; !ok {
		t.Fatalf("vec JSON missing logistic: %v", m)
	}
	if _, ok := m["linear"]; ok {
		t.Fatalf("vec JSON renders empty family: %v", m)
	}
}

func TestGaugeVecRendersOnlySetFamilies(t *testing.T) {
	v := NewGaugeVec()
	v.Set("linear", 0.95)
	v.Set("bogus", 0.5)
	if val, ok := v.Get("linear"); !ok || val != 0.95 {
		t.Fatalf("linear gauge = %v,%v", val, ok)
	}
	if val, ok := v.Get(FamilyOther); !ok || val != 0.5 {
		t.Fatalf("other gauge = %v,%v (unknown labels must collapse)", val, ok)
	}
	seen := map[string]float64{}
	v.Do(func(f string, val float64) { seen[f] = val })
	if len(seen) != 2 {
		t.Fatalf("rendered families %v, want exactly the set ones", seen)
	}
}

// The exposition endpoint must render vec members as labeled series of one
// shared metric name.
func TestMetricsHandlerRendersLabeledSeries(t *testing.T) {
	m := expvar.NewMap("blinkml_vectest")
	hv := NewHistogramVec()
	gv := NewGaugeVec()
	m.Set("lat_ms", hv)
	m.Set("coverage", gv)
	hv.With("logistic").Observe(3)
	gv.Set("logistic", 1.0)

	rec := httptest.NewRecorder()
	MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		`blinkml_vectest_lat_ms_bucket{family="logistic",le="+Inf"} 1`,
		`blinkml_vectest_lat_ms_count{family="logistic"} 1`,
		`blinkml_vectest_coverage{family="logistic"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, body)
		}
	}
	if strings.Contains(body, `family="linear"`) {
		t.Fatalf("exposition renders untouched family:\n%s", body)
	}
}
