package obs

import (
	"bytes"
	"context"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Ledger is the per-job resource attribution record: what one training or
// tuning job *cost*, as opposed to what it *did* (the span tree). It travels
// in the job's context alongside the trace and recorder, and is additionally
// bound to the goroutines doing the job's work (BindLedger) so that
// context-free layers — the compute pool, linalg kernels, the row store —
// can charge it without threading a context through every kernel signature.
//
// Fields split into two classes, and the split matters for testing and for
// the cluster-parity guarantee:
//
//   - Deterministic fields (rows/bytes materialized, kernel calls, flops,
//     bundle-cache traffic) depend only on the job's inputs, seed, and the
//     configured parallelism degree. At a fixed seed and degree they are
//     bit-identical across runs and identical local vs remote.
//   - CPU-class fields (pool busy time, kernel wall time, steals, queue
//     wait, registry I/O) are wall-clock observations and vary run to run.
//
// All charge methods are nil-safe and safe for concurrent use.
type Ledger struct {
	cpuNs        atomic.Int64
	kernelNs     atomic.Int64
	kernelCalls  atomic.Int64
	flops        atomic.Int64
	steals       atomic.Int64
	rows         atomic.Int64
	bytes        atomic.Int64
	bundleHits   atomic.Int64
	bundleMisses atomic.Int64
	queueWaitNs  atomic.Int64
	registryNs   atomic.Int64

	// stage is the pipeline stage currently executing (set by StartSpan via
	// the context ledger); charges are attributed to it. With concurrent
	// stages (tune trials) the attribution is last-writer-wins — an
	// approximation, documented as such in the README.
	stage atomic.Pointer[string]

	mu     sync.Mutex
	stages map[string]*stageCost
}

// stageCost accumulates the per-stage slice of the ledger.
type stageCost struct {
	cpuNs       atomic.Int64
	kernelCalls atomic.Int64
	rows        atomic.Int64
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger { return &Ledger{} }

// SetStage marks name as the currently executing stage and returns a func
// restoring the previous one. StartSpan calls this for the context ledger.
func (l *Ledger) SetStage(name string) func() {
	if l == nil || name == "" {
		return func() {}
	}
	prev := l.stage.Swap(&name)
	return func() { l.stage.Store(prev) }
}

// stageFor returns the accumulator for the current stage, or nil when no
// stage is set.
func (l *Ledger) stageFor() *stageCost {
	p := l.stage.Load()
	if p == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.stages == nil {
		l.stages = make(map[string]*stageCost, 8)
	}
	sc := l.stages[*p]
	if sc == nil {
		sc = &stageCost{}
		l.stages[*p] = sc
	}
	return sc
}

// ChargeCPU charges compute-pool busy wall time (one goroutine's work
// interval; summing across goroutines approximates CPU seconds).
func (l *Ledger) ChargeCPU(d time.Duration) {
	if l == nil || d <= 0 {
		return
	}
	l.cpuNs.Add(int64(d))
	if sc := l.stageFor(); sc != nil {
		sc.cpuNs.Add(int64(d))
	}
}

// ChargeSteals counts pool tasks executed by helper goroutines rather than
// the submitting goroutine.
func (l *Ledger) ChargeSteals(n int64) {
	if l == nil || n <= 0 {
		return
	}
	l.steals.Add(n)
}

// ChargeKernel charges one linalg kernel invocation: its wall time and its
// flop count (estimated from operand shapes, hence deterministic).
func (l *Ledger) ChargeKernel(d time.Duration, flops int64) {
	if l == nil {
		return
	}
	l.kernelNs.Add(int64(d))
	l.kernelCalls.Add(1)
	if flops > 0 {
		l.flops.Add(flops)
	}
	if sc := l.stageFor(); sc != nil {
		sc.kernelCalls.Add(1)
	}
}

// ChargeMaterialize charges rows (and their decoded bytes) read out of the
// row store into training memory.
func (l *Ledger) ChargeMaterialize(rows int, bytes int64) {
	if l == nil {
		return
	}
	l.rows.Add(int64(rows))
	l.bytes.Add(bytes)
	if sc := l.stageFor(); sc != nil {
		sc.rows.Add(int64(rows))
	}
}

// ChargeBundle counts one dataset-bundle cache lookup on a cluster worker.
func (l *Ledger) ChargeBundle(hit bool) {
	if l == nil {
		return
	}
	if hit {
		l.bundleHits.Add(1)
	} else {
		l.bundleMisses.Add(1)
	}
}

// ChargeQueueWait charges time spent queued before a worker picked the job
// up.
func (l *Ledger) ChargeQueueWait(d time.Duration) {
	if l == nil || d <= 0 {
		return
	}
	l.queueWaitNs.Add(int64(d))
}

// ChargeRegistryIO charges model-registry persistence time.
func (l *Ledger) ChargeRegistryIO(d time.Duration) {
	if l == nil || d <= 0 {
		return
	}
	l.registryNs.Add(int64(d))
}

// LedgerSnapshot is the JSON surface of a ledger: what GET /v1/jobs/{id}
// reports, what audit records persist, and what a cluster worker ships back
// so its costs rejoin the coordinator's job record.
type LedgerSnapshot struct {
	// CPUMs is compute-pool busy time summed across participating
	// goroutines (approximate CPU milliseconds). Non-deterministic.
	CPUMs float64 `json:"cpu_ms"`
	// KernelMs is wall time inside linalg kernels (non-deterministic);
	// KernelCalls and Flops are shape-derived and deterministic.
	KernelMs    float64 `json:"kernel_ms"`
	KernelCalls int64   `json:"kernel_calls"`
	Flops       int64   `json:"flops"`
	// Steals counts pool tasks executed by helper goroutines. Depends on
	// scheduling, hence non-deterministic.
	Steals int64 `json:"steals"`
	// RowsMaterialized / BytesMaterialized count store rows decoded into
	// training memory. Deterministic at fixed seed and degree.
	RowsMaterialized  int64   `json:"rows_materialized"`
	BytesMaterialized int64   `json:"bytes_materialized"`
	BundleHits        int64   `json:"bundle_cache_hits,omitempty"`
	BundleMisses      int64   `json:"bundle_cache_misses,omitempty"`
	QueueWaitMs       float64 `json:"queue_wait_ms,omitempty"`
	RegistryIOMs      float64 `json:"registry_io_ms,omitempty"`
	// Stages is the per-stage cost breakdown, sorted by stage name so the
	// encoding is stable.
	Stages []StageCost `json:"stages,omitempty"`
}

// StageCost is one stage's slice of the ledger, joined against the span
// stage breakdown in job status responses.
type StageCost struct {
	Stage            string  `json:"stage"`
	CPUMs            float64 `json:"cpu_ms"`
	KernelCalls      int64   `json:"kernel_calls,omitempty"`
	RowsMaterialized int64   `json:"rows_materialized,omitempty"`
}

// Snapshot returns a point-in-time copy of the ledger.
func (l *Ledger) Snapshot() *LedgerSnapshot {
	if l == nil {
		return nil
	}
	s := &LedgerSnapshot{
		CPUMs:             float64(l.cpuNs.Load()) / 1e6,
		KernelMs:          float64(l.kernelNs.Load()) / 1e6,
		KernelCalls:       l.kernelCalls.Load(),
		Flops:             l.flops.Load(),
		Steals:            l.steals.Load(),
		RowsMaterialized:  l.rows.Load(),
		BytesMaterialized: l.bytes.Load(),
		BundleHits:        l.bundleHits.Load(),
		BundleMisses:      l.bundleMisses.Load(),
		QueueWaitMs:       float64(l.queueWaitNs.Load()) / 1e6,
		RegistryIOMs:      float64(l.registryNs.Load()) / 1e6,
	}
	l.mu.Lock()
	for name, sc := range l.stages {
		s.Stages = append(s.Stages, StageCost{
			Stage:            name,
			CPUMs:            float64(sc.cpuNs.Load()) / 1e6,
			KernelCalls:      sc.kernelCalls.Load(),
			RowsMaterialized: sc.rows.Load(),
		})
	}
	l.mu.Unlock()
	sort.Slice(s.Stages, func(i, j int) bool { return s.Stages[i].Stage < s.Stages[j].Stage })
	return s
}

// Merge folds a snapshot (e.g. shipped back from a cluster worker) into the
// ledger, so a remote task's costs rejoin the coordinator-side job record.
func (l *Ledger) Merge(s *LedgerSnapshot) {
	if l == nil || s == nil {
		return
	}
	l.cpuNs.Add(int64(s.CPUMs * 1e6))
	l.kernelNs.Add(int64(s.KernelMs * 1e6))
	l.kernelCalls.Add(s.KernelCalls)
	l.flops.Add(s.Flops)
	l.steals.Add(s.Steals)
	l.rows.Add(s.RowsMaterialized)
	l.bytes.Add(s.BytesMaterialized)
	l.bundleHits.Add(s.BundleHits)
	l.bundleMisses.Add(s.BundleMisses)
	l.queueWaitNs.Add(int64(s.QueueWaitMs * 1e6))
	l.registryNs.Add(int64(s.RegistryIOMs * 1e6))
	for _, st := range s.Stages {
		restore := l.SetStage(st.Stage)
		sc := l.stageFor()
		restore()
		if sc == nil {
			continue
		}
		sc.cpuNs.Add(int64(st.CPUMs * 1e6))
		sc.kernelCalls.Add(st.KernelCalls)
		sc.rows.Add(st.RowsMaterialized)
	}
}

// WithLedger returns ctx carrying the ledger (nil leaves ctx unchanged).
func WithLedger(ctx context.Context, l *Ledger) context.Context {
	if l == nil {
		return ctx
	}
	return context.WithValue(ctx, ledgerKey, l)
}

// LedgerFrom returns the context's ledger, or nil.
func LedgerFrom(ctx context.Context) *Ledger {
	if ctx == nil {
		return nil
	}
	l, _ := ctx.Value(ledgerKey).(*Ledger)
	return l
}

// ---------------------------------------------------------------------------
// Goroutine-bound ledgers.
//
// The compute pool, linalg kernels, and the row store have deliberately
// context-free signatures (they are called millions of times from code that
// predates tracing). To let them charge the owning job's ledger, the job's
// worker goroutine — and every pool helper it spawns — is *bound* to the
// ledger by goroutine ID. The registry keeps an atomic count of live
// bindings so BoundLedger is a single atomic load (and nil) on every path
// that never bound anything: CLI tools, benchmarks, predict serving.

type ledgerBinding struct {
	l *Ledger
	// depth counts open pool frames on the bound goroutine. Only the owning
	// goroutine mutates it (EnterPool/Exit run on that goroutine), so no
	// synchronization is needed beyond the registry lock that publishes the
	// binding itself.
	depth int
}

var ledgerReg struct {
	count atomic.Int64
	mu    sync.RWMutex
	m     map[uint64]*ledgerBinding
}

// goID parses the current goroutine's ID from the runtime.Stack header
// ("goroutine 123 [running]: ..."). ~100ns — paid only on bind and on
// charge paths that actually have a bound ledger.
func goID() uint64 {
	var buf [32]byte
	n := runtime.Stack(buf[:], false)
	s := buf[len("goroutine "):n]
	if i := bytes.IndexByte(s, ' '); i > 0 {
		if id, err := strconv.ParseUint(string(s[:i]), 10, 64); err == nil {
			return id
		}
	}
	return 0
}

// BindLedger binds l to the calling goroutine until the returned release
// func runs. Bindings nest: release restores the previous binding.
func BindLedger(l *Ledger) (release func()) {
	if l == nil {
		return func() {}
	}
	id := goID()
	b := &ledgerBinding{l: l}
	ledgerReg.mu.Lock()
	if ledgerReg.m == nil {
		ledgerReg.m = make(map[uint64]*ledgerBinding, 16)
	}
	prev := ledgerReg.m[id]
	ledgerReg.m[id] = b
	ledgerReg.mu.Unlock()
	ledgerReg.count.Add(1)
	return func() {
		ledgerReg.mu.Lock()
		if prev != nil {
			ledgerReg.m[id] = prev
		} else {
			delete(ledgerReg.m, id)
		}
		ledgerReg.mu.Unlock()
		ledgerReg.count.Add(-1)
	}
}

// BindLedgerFromContext binds the context's ledger (if any) to the calling
// goroutine — the one-liner for worker goroutines spawned with plain `go`,
// which do not inherit the spawner's binding.
func BindLedgerFromContext(ctx context.Context) (release func()) {
	return BindLedger(LedgerFrom(ctx))
}

// BoundLedger returns the ledger bound to the calling goroutine, or nil.
// The no-bindings fast path is one atomic load.
func BoundLedger() *Ledger {
	if ledgerReg.count.Load() == 0 {
		return nil
	}
	id := goID()
	ledgerReg.mu.RLock()
	b := ledgerReg.m[id]
	ledgerReg.mu.RUnlock()
	if b == nil {
		return nil
	}
	return b.l
}

func boundBinding() *ledgerBinding {
	if ledgerReg.count.Load() == 0 {
		return nil
	}
	id := goID()
	ledgerReg.mu.RLock()
	b := ledgerReg.m[id]
	ledgerReg.mu.RUnlock()
	return b
}

// PoolFrame is one compute-pool participation interval on the calling
// goroutine. The pool opens a frame around the work it executes; only the
// outermost frame charges busy time, so nested pool calls (a parallel
// kernel inside a parallel probe) never double-charge.
type PoolFrame struct {
	b     *ledgerBinding
	outer bool
	start time.Time
}

// EnterPool opens a pool frame. Free (one atomic load) when the goroutine
// has no bound ledger.
func EnterPool() PoolFrame {
	b := boundBinding()
	if b == nil {
		return PoolFrame{}
	}
	b.depth++
	f := PoolFrame{b: b, outer: b.depth == 1}
	if f.outer {
		f.start = time.Now()
	}
	return f
}

// Exit closes the frame, charging the goroutine's busy wall time (outermost
// frame only) and any tasks it executed as a helper (steals).
func (f PoolFrame) Exit(steals int64) {
	if f.b == nil {
		return
	}
	f.b.depth--
	if steals > 0 {
		f.b.l.ChargeSteals(steals)
	}
	if f.outer {
		f.b.l.ChargeCPU(time.Since(f.start))
	}
}

// ChargeKernel charges one kernel invocation started at start to the
// calling goroutine's bound ledger, if any. Kernels call it via defer:
//
//	defer obs.ChargeKernel(time.Now(), flops)
func ChargeKernel(start time.Time, flops int64) {
	if l := BoundLedger(); l != nil {
		l.ChargeKernel(time.Since(start), flops)
	}
}
