package obs

import (
	"expvar"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// HTTP middleware: every serve route and every cluster coordinator/worker
// endpoint is wrapped by HTTPMetrics.Wrap, which feeds three per-route
// telemetry planes —
//
//   - request counters by status class (blinkml_http_requests_total),
//   - a latency histogram per route (blinkml_http_request_ms) plus inflight
//     gauges (blinkml_http_inflight / blinkml_http_route_inflight),
//   - a sliding-window SLO tracker (blinkml_http_slo_availability and
//     blinkml_http_slo_latency_attainment)
//
// — and optionally logs a slog warning (route, method, status, trace ID)
// when a request exceeds the slow-request threshold. The route label set is
// bounded by construction: labels come only from Wrap call sites (the
// registered mux patterns), never from request paths, so no client input
// can mint a new series.

// statusClasses are the label values for the response status classes;
// index is status/100, with 0 reserved for hijacked/unclassifiable
// responses.
var statusClasses = [6]string{"0xx", "1xx", "2xx", "3xx", "4xx", "5xx"}

// RouteMetrics is one route's telemetry: class counters, latency histogram,
// inflight gauge, and SLO window.
type RouteMetrics struct {
	classes  [6]atomic.Uint64
	latency  *Histogram
	inflight atomic.Int64
	slo      *SLOWindow
}

// Latency exposes the route's latency histogram (tests and the SLO report).
func (r *RouteMetrics) Latency() *Histogram { return r.latency }

// Inflight reports the route's currently executing request count.
func (r *RouteMetrics) Inflight() int64 { return r.inflight.Load() }

// SLO exposes the route's sliding SLO window.
func (r *RouteMetrics) SLO() *SLOWindow { return r.slo }

// Requests returns the total request count across status classes.
func (r *RouteMetrics) Requests() uint64 {
	var n uint64
	for i := range r.classes {
		n += r.classes[i].Load()
	}
	return n
}

// Class returns the request count for one status class (0-5 = 0xx..5xx).
func (r *RouteMetrics) Class(class int) uint64 {
	if class < 0 || class >= len(r.classes) {
		return 0
	}
	return r.classes[class].Load()
}

// atomicFloat is a float64 readable/writable without locks (threshold
// knobs touched on every request).
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) Load() float64   { return math.Float64frombits(f.bits.Load()) }

// HTTPMetrics is the per-endpoint HTTP telemetry plane. One instance is
// shared process-wide (SharedHTTP) and published as the "blinkml_http"
// expvar; tests may construct private instances with NewHTTPMetrics.
type HTTPMetrics struct {
	mu     sync.RWMutex
	routes map[string]*RouteMetrics

	inflight atomic.Int64 // across all routes

	slowMs atomicFloat // slow-request warning threshold; 0 disables
	sloMs  atomicFloat // latency-attainment threshold for the SLO window
	logger atomic.Pointer[slog.Logger]
	flight atomic.Pointer[FlightRecorder] // diagnostic dump target; nil = off
	now    func() time.Time               // test seam
}

// SLO-breach trigger thresholds for the flight recorder: the window must
// hold at least SLOBreachMinRequests before availability below
// SLOBreachAvailability or latency attainment below SLOBreachAttainment
// counts as a breach (otherwise a single failed request in an idle window
// would dump a bundle).
const (
	SLOBreachMinRequests  = 20
	SLOBreachAvailability = 0.99
	SLOBreachAttainment   = 0.90
)

// DefaultSLOLatencyMs is the latency threshold the SLO attainment gauge
// measures against unless configured otherwise: the repo's interactive
// serving target.
const DefaultSLOLatencyMs = 250.0

// NewHTTPMetrics returns an unpublished metrics plane (tests); services use
// SharedHTTP.
func NewHTTPMetrics() *HTTPMetrics {
	m := &HTTPMetrics{routes: make(map[string]*RouteMetrics), now: time.Now}
	m.sloMs.Store(DefaultSLOLatencyMs)
	return m
}

var (
	httpOnce   sync.Once
	httpShared *HTTPMetrics
)

// SharedHTTP returns the process-wide HTTP telemetry plane, publishing it
// as the "blinkml_http" expvar on first use (so repeated server
// construction in one process reuses the same series, like the other
// shared metric maps).
func SharedHTTP() *HTTPMetrics {
	httpOnce.Do(func() {
		httpShared = NewHTTPMetrics()
		expvar.Publish("blinkml_http", httpShared)
	})
	return httpShared
}

// SetSlowRequestThreshold arms the slow-request warning: any wrapped
// request slower than ms milliseconds logs through logger with its route,
// method, status, and trace ID. ms <= 0 disables (the default).
func (m *HTTPMetrics) SetSlowRequestThreshold(ms float64, logger *slog.Logger) {
	if ms < 0 {
		ms = 0
	}
	m.slowMs.Store(ms)
	if logger != nil {
		m.logger.Store(logger)
	}
}

// SetSLOLatencyThreshold sets the latency bound (ms) the sliding-window
// attainment gauge measures against.
func (m *HTTPMetrics) SetSLOLatencyThreshold(ms float64) {
	if ms > 0 {
		m.sloMs.Store(ms)
	}
}

// SLOLatencyThreshold reports the current attainment bound in ms.
func (m *HTTPMetrics) SLOLatencyThreshold() float64 { return m.sloMs.Load() }

// SetFlightRecorder arms diagnostic dumps: offending requests (errored,
// slow, or SLO-violating) are fed into the recorder's ring, a slow-request
// hit triggers a dump immediately, and an SLO-window breach (availability
// or latency attainment below the breach thresholds with enough requests in
// the window) triggers one too. The recorder rate-limits, so sustained
// breaches still produce one bundle per interval.
func (m *HTTPMetrics) SetFlightRecorder(f *FlightRecorder) {
	m.flight.Store(f)
}

// Inflight reports the number of wrapped requests currently executing.
func (m *HTTPMetrics) Inflight() int64 { return m.inflight.Load() }

// Route returns (creating if needed) the telemetry for one route label.
func (m *HTTPMetrics) Route(route string) *RouteMetrics {
	m.mu.RLock()
	rm := m.routes[route]
	m.mu.RUnlock()
	if rm != nil {
		return rm
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if rm = m.routes[route]; rm == nil {
		rm = &RouteMetrics{latency: NewHistogram(), slo: NewSLOWindow(0)}
		m.routes[route] = rm
	}
	return rm
}

// Wrap instruments h under the given route label. The label should be the
// registered mux pattern sans method (e.g. "/v1/models/{id}/predict") so
// the set stays bounded no matter what paths clients send.
func (m *HTTPMetrics) Wrap(route string, h http.Handler) http.Handler {
	rm := m.Route(route)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		m.inflight.Add(1)
		rm.inflight.Add(1)
		sw := &statusWriter{ResponseWriter: w}
		start := m.now()
		defer func() {
			ms := float64(m.now().Sub(start)) / float64(time.Millisecond)
			m.finish(route, rm, r, sw, ms)
		}()
		h.ServeHTTP(sw, r)
	})
}

// finish records one completed request into every telemetry plane.
func (m *HTTPMetrics) finish(route string, rm *RouteMetrics, r *http.Request, sw *statusWriter, ms float64) {
	m.inflight.Add(-1)
	rm.inflight.Add(-1)
	code := sw.status()
	class := code / 100
	if class < 0 || class >= len(statusClasses) {
		class = 0
	}
	rm.classes[class].Add(1)
	rm.latency.Observe(ms)
	now := m.now()
	sloMs := m.sloMs.Load()
	isErr := class == 5 || class == 0
	isSlow := sloMs > 0 && ms > sloMs
	rm.slo.Record(now, isErr, isSlow)
	slowHit := false
	if t := m.slowMs.Load(); t > 0 && ms >= t {
		slowHit = true
		if logger := m.logger.Load(); logger != nil {
			// The trace ID may arrive on the request (caller-supplied) or be
			// minted at admission and echoed on the response header.
			trace := r.Header.Get(TraceHeader)
			if trace == "" {
				trace = sw.Header().Get(TraceHeader)
			}
			logger.Warn("slow request",
				"route", route, "method", r.Method, "status", code,
				"ms", ms, "threshold_ms", t, "trace", trace)
		}
	}
	if fr := m.flight.Load(); fr != nil && (isErr || isSlow || slowHit) {
		trace := r.Header.Get(TraceHeader)
		if trace == "" {
			trace = sw.Header().Get(TraceHeader)
		}
		errStr := ""
		if isErr {
			errStr = fmt.Sprintf("status %d", code)
		}
		fr.Record(FlightEntry{
			Trace:      trace,
			Kind:       "http:" + route,
			Err:        errStr,
			DurMs:      ms,
			FinishedAt: now,
		})
		switch {
		case slowHit:
			fr.Trigger("slow-request", fmt.Sprintf("route=%s ms=%.1f trace=%s", route, ms, trace))
		default:
			// Only offending requests re-evaluate the window: a breach is by
			// definition preceded by one, and the happy path stays lock-free.
			if total, errors, slow := rm.slo.Snapshot(now); total >= SLOBreachMinRequests {
				avail := float64(total-errors) / float64(total)
				attain := float64(total-slow) / float64(total)
				if avail < SLOBreachAvailability || attain < SLOBreachAttainment {
					fr.Trigger("slo-breach", fmt.Sprintf(
						"route=%s availability=%.4f attainment=%.4f window=%d", route, avail, attain, total))
				}
			}
		}
	}
}

// snapshotRoutes returns the route set in sorted label order.
func (m *HTTPMetrics) snapshotRoutes() (names []string, routes []*RouteMetrics) {
	m.mu.RLock()
	names = make([]string, 0, len(m.routes))
	for name := range m.routes {
		names = append(names, name)
	}
	m.mu.RUnlock()
	sort.Strings(names)
	routes = make([]*RouteMetrics, len(names))
	for i, name := range names {
		routes[i] = m.Route(name)
	}
	return names, routes
}

// WriteProm implements PromWriter: counters by (route, class), inflight
// gauges, per-route latency histograms, and the windowed SLO gauges.
func (m *HTTPMetrics) WriteProm(w io.Writer, name string) {
	names, routes := m.snapshotRoutes()
	now := m.now()

	typed := false
	for i, rm := range routes {
		for class, label := range statusClasses {
			n := rm.classes[class].Load()
			if n == 0 {
				continue
			}
			if !typed {
				fmt.Fprintf(w, "# TYPE %s_requests_total counter\n", name)
				typed = true
			}
			fmt.Fprintf(w, "%s_requests_total{route=%q,class=%q} %d\n", name, names[i], label, n)
		}
	}

	fmt.Fprintf(w, "%s_inflight %d\n", name, m.inflight.Load())
	for i, rm := range routes {
		fmt.Fprintf(w, "%s_route_inflight{route=%q} %d\n", name, names[i], rm.inflight.Load())
	}

	typed = false
	for i, rm := range routes {
		if rm.latency.Count() == 0 {
			continue
		}
		if !typed {
			fmt.Fprintf(w, "# TYPE %s_request_ms histogram\n", name)
			typed = true
		}
		writeLabeledHistogram(w, name+"_request_ms", fmt.Sprintf("route=%q", names[i]), rm.latency)
	}

	fmt.Fprintf(w, "%s_slo_latency_threshold_ms %s\n", name, promFloat(m.sloMs.Load()))
	fmt.Fprintf(w, "%s_slo_window_seconds %d\n", name, DefaultSLOWindowSeconds)
	for i, rm := range routes {
		total, errors, slow := rm.slo.Snapshot(now)
		if total == 0 {
			continue // an idle endpoint has no attainment to report
		}
		fmt.Fprintf(w, "%s_slo_window_requests{route=%q} %d\n", name, names[i], total)
		fmt.Fprintf(w, "%s_slo_availability{route=%q} %s\n", name, names[i],
			promFloat(float64(total-errors)/float64(total)))
		fmt.Fprintf(w, "%s_slo_latency_attainment{route=%q} %s\n", name, names[i],
			promFloat(float64(total-slow)/float64(total)))
	}
}

// String implements expvar.Var: a JSON object keyed by route with request
// totals, inflight, and tail quantiles (the full breakdown lives on
// /metrics).
func (m *HTTPMetrics) String() string {
	names, routes := m.snapshotRoutes()
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for i, rm := range routes {
		total := rm.Requests()
		if total == 0 {
			continue
		}
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%q:{\"requests\":%d,\"errors_5xx\":%d,\"inflight\":%d,\"p50_ms\":%s,\"p99_ms\":%s}",
			names[i], total, rm.classes[5].Load(), rm.inflight.Load(),
			jsonFloat(rm.latency.Quantile(0.50)), jsonFloat(rm.latency.Quantile(0.99)))
	}
	b.WriteByte('}')
	return b.String()
}

// statusWriter captures the response status code. Unwrap keeps
// http.ResponseController features (flush, deadlines) working through the
// wrapper, and Flush is forwarded directly for plain Flusher callers
// (dataset bundle streaming).
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if !w.wrote {
		w.code = http.StatusOK
		w.wrote = true
	}
	return w.ResponseWriter.Write(p)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// status reports the effective status code (200 when the handler never
// wrote an explicit one — net/http's behavior).
func (w *statusWriter) status() int {
	if !w.wrote {
		return http.StatusOK
	}
	return w.code
}
