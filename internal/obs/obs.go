// Package obs is the process-wide observability layer: request tracing,
// latency histograms, metric exposition, and structured logging, shared by
// the serving layer, the cluster coordinator/worker, and the training hot
// path.
//
// The pieces fit together like this:
//
//   - A trace ID is minted when a request is admitted (or taken from the
//     request's X-Blinkml-Trace header) and carried via context.Context
//     through the job queue, tune trials, compute-pool work, and — in
//     cluster mode — over the coordinator/worker HTTP protocol, so every
//     log line and span of one request shares one identity.
//   - Spans cover the paper's pipeline stages (ingest, sample, optimize,
//     statistics, probe, registry). A Recorder collects them per job; the
//     serving layer aggregates them into the per-stage breakdown surfaced
//     by GET /v1/jobs/{id} and can export them as JSONL.
//   - Histogram is a fixed-bucket log-scale latency histogram: lock-cheap
//     to record, mergeable, expvar-publishable, with p50/p95/p99 computed
//     at read time. It replaces sum-only *_ms_sum counters.
//   - MetricsHandler renders every blinkml* expvar map — counters, gauges,
//     and histograms — in Prometheus text format for GET /metrics, and
//     DebugHandler adds net/http/pprof behind an opt-in -debug-addr.
//   - HTTPMetrics (SharedHTTP) is the per-endpoint serving telemetry plane:
//     every serve and cluster route is wrapped in middleware recording
//     request counters by status class, per-route latency histograms,
//     inflight gauges, sliding-window SLO attainment (SLOWindow), and
//     opt-in slow-request warnings — the blinkml_http_* series.
//   - RegisterRuntimeMetrics exports curated Go runtime/metrics samples
//     (heap bytes, GC pauses, goroutines, scheduler latency) as the
//     blinkml_go_* series on both blinkml-serve and blinkml-worker.
//
// obs depends on nothing else in this module, so every layer may import it.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync/atomic"
	"time"
)

// TraceHeader is the HTTP header that carries a trace ID between processes:
// clients may supply one on POST /v1/train and /v1/tune, and the cluster
// protocol propagates it between coordinator and worker so a worker's spans
// and log lines rejoin the originating request.
const TraceHeader = "X-Blinkml-Trace"

// traceFallback distinguishes trace IDs minted when crypto/rand fails.
var traceFallback atomic.Uint64

// NewTraceID mints a 16-hex-character trace ID.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("t%06x%09x", traceFallback.Add(1)&0xFFFFFF, time.Now().UnixNano()&0xFFFFFFFFF)
	}
	return hex.EncodeToString(b[:])
}

type ctxKey int

const (
	traceKey ctxKey = iota
	recorderKey
	loggerKey
	jobKey
	ledgerKey
)

// WithTrace returns ctx carrying the trace ID ("" leaves ctx unchanged).
func WithTrace(ctx context.Context, trace string) context.Context {
	if trace == "" {
		return ctx
	}
	return context.WithValue(ctx, traceKey, trace)
}

// TraceID returns the context's trace ID, or "" when there is none.
func TraceID(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	s, _ := ctx.Value(traceKey).(string)
	return s
}

// WithJobID returns ctx carrying the serving-layer job ID ("" leaves ctx
// unchanged). The audit plane reads it so a durable calibration record can
// be joined back to the job that produced it.
func WithJobID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, jobKey, id)
}

// JobID returns the context's job ID, or "" when there is none.
func JobID(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	s, _ := ctx.Value(jobKey).(string)
	return s
}
