package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"expvar"
	"log/slog"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceContext(t *testing.T) {
	ctx := context.Background()
	if got := TraceID(ctx); got != "" {
		t.Fatalf("TraceID on empty ctx = %q, want empty", got)
	}
	id := NewTraceID()
	if len(id) != 16 {
		t.Fatalf("NewTraceID() = %q, want 16 hex chars", id)
	}
	if id2 := NewTraceID(); id2 == id {
		t.Fatalf("two trace IDs collided: %q", id)
	}
	ctx = WithTrace(ctx, id)
	if got := TraceID(ctx); got != id {
		t.Fatalf("TraceID = %q, want %q", got, id)
	}
	if got := WithTrace(ctx, ""); got != ctx {
		t.Fatal("WithTrace with empty id should return ctx unchanged")
	}
}

func TestRecorderAndSpans(t *testing.T) {
	r := NewRecorder("abc123")
	ctx := WithRecorder(WithTrace(context.Background(), "abc123"), r)

	done := StartSpan(ctx, "sample")
	time.Sleep(time.Millisecond)
	done()
	StartSpan(ctx, "optimize")() // zero-duration span still records
	r.Add([]Span{{Trace: "other", Name: "optimize", Worker: "w1", DurMs: 5}})

	spans := r.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	for _, s := range spans {
		if s.Trace != "abc123" {
			t.Errorf("span %q trace = %q, want abc123 (Add must restamp)", s.Name, s.Trace)
		}
	}
	if spans[0].Name != "sample" || spans[0].DurMs <= 0 {
		t.Errorf("first span = %+v, want sample with positive duration", spans[0])
	}
	if spans[2].Worker != "w1" {
		t.Errorf("merged span worker = %q, want w1", spans[2].Worker)
	}

	stages := AggregateStages(spans)
	if len(stages) != 2 {
		t.Fatalf("got %d stages, want 2: %+v", len(stages), stages)
	}
	if stages[0].Name != "sample" || stages[0].Count != 1 {
		t.Errorf("stage 0 = %+v, want sample count 1", stages[0])
	}
	if stages[1].Name != "optimize" || stages[1].Count != 2 || stages[1].Ms < 5 {
		t.Errorf("stage 1 = %+v, want optimize count 2 with ms >= 5", stages[1])
	}
}

func TestStartSpanNoRecorderIsNoop(t *testing.T) {
	done := StartSpan(context.Background(), "x")
	done() // must not panic
	var nilRec *Recorder
	nilRec.Record("x", time.Now(), time.Second) // nil receiver safe
	nilRec.Add([]Span{{Name: "y"}})
	if nilRec.Spans() != nil || nilRec.Dropped() != 0 {
		t.Fatal("nil recorder must report nothing")
	}
}

func TestRecorderCapAndConcurrency(t *testing.T) {
	r := NewRecorder("t")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Record("s", time.Now(), time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := len(r.Spans()); got != maxRecordedSpans {
		t.Fatalf("recorded %d spans, want cap %d", got, maxRecordedSpans)
	}
	if got, want := r.Dropped(), 8*200-maxRecordedSpans; got != want {
		t.Fatalf("dropped = %d, want %d", got, want)
	}
}

func TestLoggerCarriesTrace(t *testing.T) {
	var buf bytes.Buffer
	base := slog.New(slog.NewJSONHandler(&buf, nil))
	ctx := WithLogger(WithTrace(context.Background(), "deadbeef"), base)
	Logger(ctx).Info("hello")
	var line map[string]any
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("log line not JSON: %v", err)
	}
	if line["trace"] != "deadbeef" {
		t.Fatalf("log line missing trace attr: %s", buf.String())
	}
	// Discard logger must swallow output silently.
	Discard().Info("never seen")
}

func TestSpanWriterJSONL(t *testing.T) {
	var buf bytes.Buffer
	w := NewSpanWriter(&buf)
	spans := []Span{
		{Trace: "t1", Name: "sample", DurMs: 1.5},
		{Trace: "t1", Name: "optimize", Worker: "w0", DurMs: 2},
	}
	if err := w.Write(spans); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var s Span
	if err := json.Unmarshal([]byte(lines[1]), &s); err != nil {
		t.Fatalf("line 2 not a span: %v", err)
	}
	if s.Name != "optimize" || s.Worker != "w0" {
		t.Fatalf("round-tripped span = %+v", s)
	}
}

func TestMetricsHandlerPrometheus(t *testing.T) {
	m := expvar.NewMap("blinkml_obstest")
	m.Add("requests_total", 7)
	f := new(expvar.Float)
	f.Set(1.25)
	m.Set("load_factor", f)
	h := NewHistogram()
	for i := 0; i < 10; i++ {
		h.Observe(2.0)
	}
	m.Set("latency_ms", h)

	rec := httptest.NewRecorder()
	MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	for _, want := range []string{
		"blinkml_obstest_requests_total 7\n",
		"blinkml_obstest_load_factor 1.25\n",
		"# TYPE blinkml_obstest_latency_ms histogram\n",
		`blinkml_obstest_latency_ms_bucket{le="+Inf"} 10`,
		"blinkml_obstest_latency_ms_sum 20\n",
		"blinkml_obstest_latency_ms_count 10\n",
		"blinkml_obstest_latency_ms_p50 ",
		"blinkml_obstest_latency_ms_p99 ",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q\n%s", want, body)
		}
	}
	// Buckets must be cumulative: the +Inf bucket equals _count and every
	// le bound's count is non-decreasing.
	var prev int64 = -1
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, "blinkml_obstest_latency_ms_bucket") {
			continue
		}
		var n int64
		if _, err := fmtSscanLast(line, &n); err != nil {
			t.Fatalf("unparseable bucket line %q: %v", line, err)
		}
		if n < prev {
			t.Fatalf("bucket counts not cumulative at %q", line)
		}
		prev = n
	}
}

// fmtSscanLast parses the final whitespace-separated field of line into n.
func fmtSscanLast(line string, n *int64) (int, error) {
	fields := strings.Fields(line)
	return 1, json.Unmarshal([]byte(fields[len(fields)-1]), n)
}
