package obs

import (
	"context"
	"log/slog"
)

// Discard returns a logger that drops everything — the test default, so
// suites stay quiet without ad-hoc nil checks at call sites.
func Discard() *slog.Logger {
	return slog.New(slog.DiscardHandler)
}

// WithLogger returns ctx carrying the logger.
func WithLogger(ctx context.Context, l *slog.Logger) context.Context {
	if l == nil {
		return ctx
	}
	return context.WithValue(ctx, loggerKey, l)
}

// Logger returns the request-scoped logger: the context's logger (or
// slog.Default), with the context's trace ID attached as a "trace" attr so
// every line of one request is greppable by ID.
func Logger(ctx context.Context) *slog.Logger {
	l := slog.Default()
	if ctx != nil {
		if cl, ok := ctx.Value(loggerKey).(*slog.Logger); ok {
			l = cl
		}
	}
	if t := TraceID(ctx); t != "" {
		l = l.With("trace", t)
	}
	return l
}
