package obs

import (
	"expvar"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// FamilyLabel is the one label name the labeled metric types carry. The
// label set is bounded at construction — per-model-family breakdowns over
// the five model classes — so a vec can never explode Prometheus
// cardinality no matter what strings callers pass: unknown values collapse
// into FamilyOther.
const (
	FamilyLabel = "family"
	FamilyOther = "other"
)

// ModelFamilies is the closed label set: the model classes modelio can
// round-trip. A vec constructed with NewHistogramVec/NewGaugeVec accepts
// exactly these (plus the catch-all), which keeps every labeled series
// enumerable at construction time and every With call lock-free.
var ModelFamilies = []string{"linear", "logistic", "maxent", "poisson", "ppca"}

// HistogramVec is a fixed-label-set family of Histograms, publishable as a
// single expvar.Var. With(family) returns the per-family histogram
// (FamilyOther for anything outside the set); MetricsHandler renders each
// non-empty member as a labeled Prometheus histogram series.
type HistogramVec struct {
	members map[string]*Histogram
	order   []string
}

// NewHistogramVec builds a vec over ModelFamilies plus FamilyOther. All
// members exist up front, so With never allocates or locks.
func NewHistogramVec() *HistogramVec {
	v := &HistogramVec{members: make(map[string]*Histogram, len(ModelFamilies)+1)}
	for _, f := range append(append([]string(nil), ModelFamilies...), FamilyOther) {
		v.members[f] = NewHistogram()
		v.order = append(v.order, f)
	}
	sort.Strings(v.order)
	return v
}

// With returns the histogram for family, collapsing unknown values into
// FamilyOther.
func (v *HistogramVec) With(family string) *Histogram {
	if h, ok := v.members[family]; ok {
		return h
	}
	return v.members[FamilyOther]
}

// Do calls f for every member in label order.
func (v *HistogramVec) Do(f func(family string, h *Histogram)) {
	for _, name := range v.order {
		f(name, v.members[name])
	}
}

// String implements expvar.Var: a JSON object keyed by family, each value
// the member histogram's summary (empty members omitted).
func (v *HistogramVec) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	v.Do(func(family string, h *Histogram) {
		if h.Count() == 0 {
			return
		}
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%q:%s", family, h.String())
	})
	b.WriteByte('}')
	return b.String()
}

// gaugeEntry pairs a float gauge with a touched flag so untouched families
// never render (a coverage gauge that was never computed must not read 0).
type gaugeEntry struct {
	v   expvar.Float
	set atomic.Bool
}

// GaugeVec is a fixed-label-set family of float gauges (same label
// discipline as HistogramVec). Only families that have been Set render.
type GaugeVec struct {
	members map[string]*gaugeEntry
	order   []string
}

// NewGaugeVec builds a vec over ModelFamilies plus FamilyOther.
func NewGaugeVec() *GaugeVec {
	v := &GaugeVec{members: make(map[string]*gaugeEntry, len(ModelFamilies)+1)}
	for _, f := range append(append([]string(nil), ModelFamilies...), FamilyOther) {
		v.members[f] = &gaugeEntry{}
		v.order = append(v.order, f)
	}
	sort.Strings(v.order)
	return v
}

// Set records the gauge value for family (unknown values collapse into
// FamilyOther) and marks it visible.
func (v *GaugeVec) Set(family string, val float64) {
	e, ok := v.members[family]
	if !ok {
		e = v.members[FamilyOther]
	}
	e.v.Set(val)
	e.set.Store(true)
}

// Get returns the gauge value for family and whether it was ever set.
func (v *GaugeVec) Get(family string) (float64, bool) {
	e, ok := v.members[family]
	if !ok {
		e = v.members[FamilyOther]
	}
	return e.v.Value(), e.set.Load()
}

// Do calls f for every set member in label order.
func (v *GaugeVec) Do(f func(family string, val float64)) {
	for _, name := range v.order {
		if e := v.members[name]; e.set.Load() {
			f(name, e.v.Value())
		}
	}
}

// String implements expvar.Var: a JSON object keyed by family.
func (v *GaugeVec) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	v.Do(func(family string, val float64) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%q:%s", family, jsonFloat(val))
	})
	b.WriteByte('}')
	return b.String()
}
