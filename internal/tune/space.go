// Package tune implements hyperparameter search over BlinkML model class
// specifications — the paper's §5.7 scenario (Figure 10) as a first-class
// subsystem instead of a hand-rolled loop. A search evaluates many
// candidate specs over one shared core.Env (a single train/holdout/test
// split, so comparisons are apples-to-apples and data preparation is paid
// once), runs candidates on a bounded worker pool under context
// cancellation, and returns a ranked leaderboard plus the winning model
// trained under the requested (ε, δ) contract.
//
// Three search strategies are supported and compose:
//
//   - grid search: every spec in Space.Grid is evaluated as-is;
//   - random search: Space.Random draws seeded candidates, log-uniform over
//     regularization (the knob that matters for the paper's GLMs) and
//     uniform over PPCA's integer factor count;
//   - successive halving (Config.Halving): candidates first train cheaply on
//     small shared subsamples of the pool, the worst 1−1/Eta are pruned each
//     rung, sample sizes grow geometrically, and only the survivors of the
//     last rung are trained under the full BlinkML contract. Rung samples
//     come from Env.SharedSample, so they are nested (warm starts are
//     honest) and shared across candidates (materialized once per rung).
package tune

import (
	"errors"
	"fmt"
	"math"

	"blinkml/internal/models"
	"blinkml/internal/stat"
)

// Candidate is one point of the search space.
type Candidate struct {
	// Spec is the model class specification to evaluate.
	Spec models.Spec
	// Origin records how the candidate was produced ("grid" or "random").
	Origin string
}

// Space is the candidate set: an explicit grid, a seeded random sampler, or
// both (grid candidates come first).
type Space struct {
	// Grid lists explicit specs, evaluated as-is.
	Grid []models.Spec
	// Random, when set, draws additional candidates from parameter ranges.
	Random *RandomSpace
}

// RandomSpace draws candidates of one model family from seeded parameter
// ranges.
type RandomSpace struct {
	// Model is the family: "linear", "logistic", "poisson", "maxent", or
	// "ppca".
	Model string
	// N is how many candidates to draw (default 10).
	N int
	// RegMin/RegMax bound the log-uniform draw of the L2 coefficient for the
	// GLM families (default [1e-6, 1]).
	RegMin, RegMax float64
	// Classes is K for maxent (0 = infer from the dataset).
	Classes int
	// FactorsMin/FactorsMax bound the uniform integer draw of PPCA's factor
	// count (default [2, 10]).
	FactorsMin, FactorsMax int
}

// Validate checks the space before a search is admitted.
func (s Space) Validate() error {
	if len(s.Grid) == 0 && s.Random == nil {
		return errors.New("tune: empty search space (set Grid or Random)")
	}
	for i, spec := range s.Grid {
		if spec == nil {
			return fmt.Errorf("tune: grid candidate %d is nil", i)
		}
	}
	if s.Random != nil {
		return s.Random.validate()
	}
	return nil
}

func (r *RandomSpace) validate() error {
	switch r.Model {
	case "linear", "logistic", "poisson", "maxent", "ppca":
	case "":
		return errors.New("tune: random space needs a model family")
	default:
		return fmt.Errorf("tune: unknown model family %q (want linear|logistic|maxent|poisson|ppca)", r.Model)
	}
	if r.N < 0 {
		return fmt.Errorf("tune: negative candidate count %d", r.N)
	}
	lo, hi := r.regRange()
	if lo <= 0 || hi <= 0 || lo > hi {
		return fmt.Errorf("tune: bad regularization range [%v, %v] (want 0 < min <= max)", lo, hi)
	}
	if fLo, fHi := r.factorRange(); fLo < 1 || fLo > fHi {
		return fmt.Errorf("tune: bad factor range [%d, %d] (want 1 <= min <= max)", fLo, fHi)
	}
	return nil
}

// regRange fills unset bounds from the documented default [1e-6, 1], so
// setting only RegMax keeps the default lower bound (and vice versa). An
// explicitly inverted range is left for validate to reject.
func (r *RandomSpace) regRange() (lo, hi float64) {
	lo, hi = r.RegMin, r.RegMax
	if lo == 0 {
		lo = 1e-6
	}
	if hi == 0 {
		hi = 1
		if lo > hi {
			hi = lo
		}
	}
	return lo, hi
}

// factorRange fills unset bounds from the default [2, 10]; a FactorsMin
// above the default upper bound raises it so a single lower bound stays
// valid.
func (r *RandomSpace) factorRange() (lo, hi int) {
	lo, hi = r.FactorsMin, r.FactorsMax
	if lo == 0 {
		lo = 2
	}
	if hi == 0 {
		hi = 10
		if lo > hi {
			hi = lo
		}
	}
	return lo, hi
}

// Candidates enumerates the space deterministically in seed: the grid
// first, then the random draws.
func (s Space) Candidates(seed int64) ([]Candidate, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	out := make([]Candidate, 0, len(s.Grid))
	for _, spec := range s.Grid {
		out = append(out, Candidate{Spec: spec, Origin: "grid"})
	}
	if s.Random != nil {
		out = append(out, s.Random.draw(seed)...)
	}
	if len(out) == 0 {
		return nil, errors.New("tune: search space produced no candidates")
	}
	return out, nil
}

func (r *RandomSpace) draw(seed int64) []Candidate {
	n := r.N
	if n <= 0 {
		n = 10
	}
	rng := stat.NewRNG(seed + 0x7E57)
	regLo, regHi := r.regRange()
	fLo, fHi := r.factorRange()
	out := make([]Candidate, 0, n)
	for i := 0; i < n; i++ {
		var spec models.Spec
		switch r.Model {
		case "linear":
			spec = models.LinearRegression{Reg: logUniform(rng, regLo, regHi)}
		case "logistic":
			spec = models.LogisticRegression{Reg: logUniform(rng, regLo, regHi)}
		case "poisson":
			spec = models.PoissonRegression{Reg: logUniform(rng, regLo, regHi)}
		case "maxent":
			spec = models.MaxEntropy{Classes: r.Classes, Reg: logUniform(rng, regLo, regHi)}
		case "ppca":
			spec = models.NewPPCA(fLo + rng.Intn(fHi-fLo+1))
		}
		out = append(out, Candidate{Spec: spec, Origin: "random"})
	}
	return out
}

// logUniform draws from [lo, hi] uniformly in log space — the standard
// sampler for scale-free knobs like regularization strength.
func logUniform(rng *stat.RNG, lo, hi float64) float64 {
	if lo == hi {
		return lo
	}
	llo, lhi := math.Log(lo), math.Log(hi)
	return math.Exp(llo + (lhi-llo)*rng.Float64())
}
