package tune

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"blinkml/internal/compute"
	"blinkml/internal/core"
	"blinkml/internal/dataset"
	"blinkml/internal/models"
	"blinkml/internal/obs"
)

// Config sizes a search. Train carries the per-candidate BlinkML options —
// the (ε, δ) contract every surviving candidate is trained under, plus the
// split fractions and seed the shared Env is built from.
type Config struct {
	// Train is the per-candidate contract and training knobs. Epsilon is
	// required; everything else defaults as in core.Options. The same
	// options (including the seed) are used for every candidate, so all
	// candidates draw identical sample indices — comparisons isolate the
	// hyperparameters, not the sampling noise.
	Train core.Options
	// Workers bounds concurrent candidate trainings (default
	// min(compute.Parallelism(), 8)). Kernel-level parallelism inside each
	// candidate comes from the same shared compute pool, so the two levels
	// together stay within one process-wide budget.
	Workers int
	// Halving enables successive-halving early pruning: candidates start on
	// a small shared subsample, the worst 1−1/Eta are dropped each rung, and
	// only the final survivors are trained under the full contract.
	Halving bool
	// Rungs is the number of pruning rounds before the contract rung
	// (default 3, used only with Halving).
	Rungs int
	// Eta is the halving rate: each rung keeps ceil(len/Eta) candidates and
	// grows the subsample by ×Eta (default 2, used only with Halving).
	Eta int
	// Seed drives candidate generation (random-space draws). Defaults to
	// Train.Seed.
	Seed int64
}

func (c Config) withDefaults() Config {
	c.Train = c.Train.WithDefaults()
	if c.Workers <= 0 {
		c.Workers = compute.Parallelism()
		if c.Workers > 8 {
			c.Workers = 8
		}
	}
	if c.Rungs <= 0 {
		c.Rungs = 3
	}
	if c.Eta < 2 {
		c.Eta = 2
	}
	if c.Seed == 0 {
		c.Seed = c.Train.Seed
	}
	return c
}

// Entry is one leaderboard row. Entries are ranked best-first: contract-
// trained candidates by ascending test error, then pruned candidates by how
// far they got, then failures.
type Entry struct {
	// Rank is the 1-based leaderboard position.
	Rank int
	// Spec is the candidate's model class specification.
	Spec models.Spec
	// Origin is "grid" or "random".
	Origin string
	// TestError is the generalization error on the evaluation set (test
	// split when present, holdout otherwise); for pruned candidates it is
	// the pruning-rung holdout error. NaN when the model class has no
	// supervised test metric (PPCA).
	TestError float64
	// EstimatedEpsilon is the (ε, δ) bound of the contract training (zero
	// for pruned or failed candidates, which never reach the contract rung).
	EstimatedEpsilon float64
	// SampleSize is the number of rows of the candidate's last training.
	SampleSize int
	// Rung counts completed successive-halving rungs (0 without Halving).
	Rung int
	// Pruned marks candidates dropped by successive halving.
	Pruned bool
	// Wall is the candidate's cumulative training time.
	Wall time.Duration
	// Err records a per-candidate training failure (the search continues).
	Err string
}

// Trained is the winning model with its contract metadata — the same shape
// the public blinkml.Model carries, minus the package dependency.
type Trained struct {
	Spec             models.Spec
	Theta            []float64
	SampleSize       int
	PoolSize         int
	EstimatedEpsilon float64
	UsedInitialModel bool
	Diag             core.Diagnostics
}

// Result is a finished search: the ranked leaderboard and the winner.
type Result struct {
	// Entries is the leaderboard, best first.
	Entries []Entry
	// Best is the winning contract-trained model (Entries[0]).
	Best *Trained
	// Evaluated counts candidates that entered the search.
	Evaluated int
	// Pruned counts candidates dropped by successive halving.
	Pruned int
	// PoolSize is N, the shared training pool every candidate drew from.
	PoolSize int
	// Elapsed is the wall-clock time of the whole search.
	Elapsed time.Duration
}

// Run builds a shared environment from ds and searches space. This is what
// the public blinkml.Tune and the serving layer call.
func Run(ctx context.Context, space Space, ds *dataset.Dataset, cfg Config) (*Result, error) {
	return RunSource(ctx, space, ds, cfg)
}

// RunSource is Run over any dataset.Source — with a disk-backed store
// handle the whole search (every rung subsample and every contract
// training) materializes only the rows it touches, so tuning against an
// N-row stored dataset never loads the pool.
func RunSource(ctx context.Context, space Space, src dataset.Source, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	env, err := core.NewEnvFromSource(src, cfg.Train)
	if err != nil {
		return nil, err
	}
	return Search(ctx, space, env, cfg)
}

// Search evaluates space over a prepared environment. All candidates share
// env's split (and, under Halving, its nested SharedSample subsamples), so
// data preparation is paid once and scores are directly comparable.
func Search(ctx context.Context, space Space, env *core.Env, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Seed == 0 {
		// A caller-prepared Env carries the seed the split was built with;
		// candidate draws fall back to it so one number still determines
		// the whole search.
		cfg.Seed = env.Seed()
	}
	return SearchRunner(ctx, space, NewEnvRunner(env, cfg.Train), cfg)
}

// SearchRunner evaluates space with an explicit trial Runner — the
// decomposition point for distributed search: every candidate training
// (each halving rung and each contract run) is one Trial, and the runner
// decides where it executes. With the default EnvRunner this is exactly
// Search; with a remote runner the leaderboard logic stays here while the
// training fans out to workers.
func SearchRunner(ctx context.Context, space Space, runner Runner, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Train.Epsilon <= 0 || cfg.Train.Epsilon > 1 {
		return nil, fmt.Errorf("tune: Train.Epsilon must be in (0,1], got %v", cfg.Train.Epsilon)
	}
	cands, err := space.Candidates(cfg.Seed)
	if err != nil {
		return nil, err
	}
	if cfg.Halving {
		// Pruning decisions need a supervised holdout metric; without one
		// every score is NaN and "keep the best 1/Eta" degenerates to
		// keep-by-index — an arbitrary selection dressed up as a ranking.
		for _, c := range cands {
			if c.Spec.Task() == dataset.Unsupervised {
				return nil, fmt.Errorf("tune: successive halving needs a supervised test metric; %s has none — use a flat search", c.Spec.Name())
			}
		}
	}
	start := time.Now()
	states := make([]*candState, len(cands))
	for i, c := range cands {
		states[i] = &candState{cand: c, index: i, testError: math.NaN(), pruneScore: math.NaN()}
	}

	s := &searcher{runner: runner, cfg: cfg}
	if cfg.Halving {
		err = s.runHalving(ctx, states)
	} else {
		err = s.runFlat(ctx, states)
	}
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("tune: search cancelled: %w", err)
	}
	return assemble(states, runner.PoolLen(), time.Since(start))
}

// candState is the mutable per-candidate record; each candidate is owned by
// at most one worker at a time, so no locking is needed.
type candState struct {
	cand  Candidate
	index int

	theta      []float64 // latest parameters (warm start across rungs)
	rung       int       // completed pruning rungs
	sampleSize int       // rows of the last training
	pruneScore float64   // holdout error at the last pruning rung
	testError  float64   // final evaluation-set error (contract rung)
	pruned     bool
	wall       time.Duration
	err        error

	res *core.Result // contract training outcome (survivors only)
}

type searcher struct {
	runner Runner
	cfg    Config
}

// runFlat trains every candidate under the full contract.
func (s *searcher) runFlat(ctx context.Context, states []*candState) error {
	return forEach(ctx, s.cfg.Workers, len(states), func(i int) {
		s.trainContract(ctx, states[i])
	})
}

// runHalving runs Rungs pruning rounds on growing shared subsamples, then
// trains the survivors under the contract.
func (s *searcher) runHalving(ctx context.Context, states []*candState) error {
	active := make([]*candState, len(states))
	copy(active, states)
	n := s.cfg.Train.InitialSampleSize
	for rung := 0; rung < s.cfg.Rungs && len(active) > 1; rung++ {
		if n >= s.runner.PoolLen() {
			break // the "subsample" would be the whole pool; skip straight to the contract stage
		}
		if err := forEach(ctx, s.cfg.Workers, len(active), func(i int) {
			s.trainRung(ctx, active[i], n, rung)
		}); err != nil {
			return err
		}
		active = survivors(active)
		if len(active) == 0 {
			return nil // every candidate failed; assemble reports the error
		}
		keep := (len(active) + s.cfg.Eta - 1) / s.cfg.Eta
		for _, st := range active[keep:] {
			st.pruned = true
		}
		active = active[:keep]
		n *= s.cfg.Eta
	}
	return forEach(ctx, s.cfg.Workers, len(active), func(i int) {
		s.trainContract(ctx, active[i])
	})
}

// trainRung fits one candidate on the rung's shared subsample (warm-started
// from its previous rung — legitimate because SharedSample nests) and
// scores it on the holdout for the pruning decision.
func (s *searcher) trainRung(ctx context.Context, st *candState, n, rung int) {
	if st.err != nil {
		return
	}
	t0 := time.Now()
	res, err := s.runner.RunTrial(ctx, Trial{Spec: st.cand.Spec, N: n, Rung: rung, Warm: st.theta})
	st.wall += time.Since(t0)
	if err != nil {
		st.err = fmt.Errorf("rung %d (n=%d): %w", rung, n, err)
		return
	}
	st.theta = res.Theta
	st.rung = rung + 1
	st.sampleSize = res.SampleSize
	st.pruneScore = res.Score
}

// trainContract runs the full BlinkML workflow for one candidate and scores
// it on the evaluation set.
func (s *searcher) trainContract(ctx context.Context, st *candState) {
	if st.err != nil {
		return
	}
	t0 := time.Now()
	res, err := s.runner.RunTrial(ctx, Trial{Spec: st.cand.Spec, Contract: true})
	st.wall += time.Since(t0)
	if err != nil {
		st.err = err
		return
	}
	st.res = res.Res
	st.theta = res.Theta
	st.sampleSize = res.SampleSize
	st.testError = res.Score
}

// survivors drops errored candidates and sorts the rest best-first by
// pruning score (ties by candidate index, so the order — and therefore the
// leaderboard — is deterministic).
func survivors(active []*candState) []*candState {
	out := active[:0]
	for _, st := range active {
		if st.err == nil {
			out = append(out, st)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		return scoreLess(out[i].pruneScore, out[j].pruneScore, out[i].index, out[j].index)
	})
	return out
}

// scoreLess orders ascending scores with NaN last and index as tiebreak.
func scoreLess(a, b float64, ia, ib int) bool {
	an, bn := math.IsNaN(a), math.IsNaN(b)
	switch {
	case an && bn:
		return ia < ib
	case an:
		return false
	case bn:
		return true
	case a != b:
		return a < b
	default:
		return ia < ib
	}
}

// assemble ranks the states into the leaderboard and extracts the winner.
func assemble(states []*candState, poolSize int, elapsed time.Duration) (*Result, error) {
	ranked := make([]*candState, len(states))
	copy(ranked, states)
	sort.SliceStable(ranked, func(i, j int) bool {
		a, b := ranked[i], ranked[j]
		// Contract-trained first, then pruned (deepest rung first), then failed.
		ca, cb := class(a), class(b)
		if ca != cb {
			return ca < cb
		}
		switch ca {
		case 0:
			return scoreLess(a.testError, b.testError, a.index, b.index)
		case 1:
			if a.rung != b.rung {
				return a.rung > b.rung
			}
			return scoreLess(a.pruneScore, b.pruneScore, a.index, b.index)
		default:
			return a.index < b.index
		}
	})

	res := &Result{
		Entries:   make([]Entry, len(ranked)),
		Evaluated: len(ranked),
		PoolSize:  poolSize,
		Elapsed:   elapsed,
	}
	var firstErr error
	for i, st := range ranked {
		e := Entry{
			Rank:       i + 1,
			Spec:       st.cand.Spec,
			Origin:     st.cand.Origin,
			TestError:  st.testError,
			SampleSize: st.sampleSize,
			Rung:       st.rung,
			Pruned:     st.pruned,
			Wall:       st.wall,
		}
		if st.pruned {
			res.Pruned++
			e.TestError = st.pruneScore
		}
		if st.res != nil {
			e.EstimatedEpsilon = st.res.EstimatedEpsilon
		}
		if st.err != nil {
			e.Err = st.err.Error()
			if firstErr == nil {
				firstErr = st.err
			}
		}
		res.Entries[i] = e
	}
	best := ranked[0]
	if best.res == nil {
		if firstErr != nil {
			return nil, fmt.Errorf("tune: no candidate survived training: %w", firstErr)
		}
		return nil, errors.New("tune: no candidate survived training")
	}
	res.Best = &Trained{
		Spec:             best.cand.Spec,
		Theta:            best.res.Theta,
		SampleSize:       best.res.SampleSize,
		PoolSize:         best.res.PoolSize,
		EstimatedEpsilon: best.res.EstimatedEpsilon,
		UsedInitialModel: best.res.UsedInitialModel,
		Diag:             best.res.Diag,
	}
	return res, nil
}

// class buckets a candidate for ranking: 0 contract-trained, 1 pruned,
// 2 failed.
func class(st *candState) int {
	switch {
	case st.res != nil:
		return 0
	case st.err != nil:
		return 2
	default:
		return 1
	}
}

// forEach runs fn(0..n-1) on a bounded worker pool, stopping the feed as
// soon as ctx is cancelled. It returns ctx.Err() when cancellation cut the
// loop short (already-started calls finish first — they observe the same
// ctx and stop between optimizer iterations).
func forEach(ctx context.Context, workers, n int, fn func(i int)) error {
	if n == 0 {
		return ctx.Err()
	}
	if workers > n {
		workers = n
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			// Plain `go` does not inherit the job's goroutine-bound resource
			// ledger, so trial work re-binds it from the context here.
			defer obs.BindLedgerFromContext(ctx)()
			for i := range idx {
				fn(i)
			}
		}()
	}
	var err error
feed:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			err = ctx.Err()
			break feed
		}
	}
	close(idx)
	wg.Wait()
	return err
}
