package tune

import (
	"context"
	"math"

	"blinkml/internal/core"
	"blinkml/internal/dataset"
	"blinkml/internal/models"
	"blinkml/internal/obs"
)

// Trial is one unit of search work: either a full (ε, δ) contract training
// of a candidate, or one successive-halving rung — a cheap fit on the first
// N rows of the shared pool permutation. Trials are self-describing so a
// Runner can execute them anywhere an identical environment can be rebuilt
// (same source, same core.Options): the trial carries everything that is
// not derivable from those two.
type Trial struct {
	// Spec is the candidate's model class specification.
	Spec models.Spec
	// Contract selects the full BlinkML workflow; otherwise the trial is a
	// halving rung.
	Contract bool
	// N is the rung's shared-subsample size (rung trials only).
	N int
	// Rung is the 0-based rung index (rung trials only).
	Rung int
	// Warm is the candidate's parameter vector from its previous rung (may
	// be nil or wrongly sized; runners must ignore it then).
	Warm []float64
}

// TrialResult is a finished trial. Score is the holdout error for rung
// trials and the evaluation-set error for contract trials (NaN when the
// model class has no supervised test metric).
type TrialResult struct {
	Theta      []float64
	Score      float64
	SampleSize int
	// Res is the contract-training outcome (contract trials only).
	Res *core.Result
}

// Runner executes trials for a search. The searcher is agnostic to where a
// trial runs: EnvRunner trains in-process on a shared core.Env (the default
// path, bit-identical to the pre-interface searcher), while a distributed
// runner can ship each trial to a remote worker that rebuilds the same
// environment. Implementations must be safe for concurrent RunTrial calls —
// the searcher fans trials out across Config.Workers goroutines.
type Runner interface {
	// PoolLen returns N, the shared training pool size (bounds the halving
	// schedule and is reported on the leaderboard).
	PoolLen() int
	// RunTrial executes one trial under ctx.
	RunTrial(ctx context.Context, t Trial) (TrialResult, error)
}

// EnvRunner is the in-process Runner: trials train directly on a shared
// prepared environment. Rung subsamples come from Env.SharedSample, so they
// are nested (warm starts are honest) and each size is materialized once
// across all candidates.
type EnvRunner struct {
	env  *core.Env
	opts core.Options
}

// NewEnvRunner wraps env with the per-candidate training options (the same
// Config.Train every trial of the search uses).
func NewEnvRunner(env *core.Env, opts core.Options) *EnvRunner {
	return &EnvRunner{env: env, opts: opts}
}

// PoolLen implements Runner.
func (r *EnvRunner) PoolLen() int { return r.env.PoolLen() }

// RunTrial implements Runner.
func (r *EnvRunner) RunTrial(ctx context.Context, t Trial) (TrialResult, error) {
	if t.Contract {
		res, err := r.env.TrainApproxContext(ctx, t.Spec, r.opts)
		if err != nil {
			return TrialResult{}, err
		}
		return TrialResult{
			Theta:      res.Theta,
			Score:      evalError(t.Spec, res.Theta, r.evalSet()),
			SampleSize: res.SampleSize,
			Res:        res,
		}, nil
	}
	endSample := obs.StartSpan(ctx, "sample")
	sample, err := r.env.SharedSample(t.N)
	endSample()
	if err != nil {
		return TrialResult{}, err
	}
	warm := t.Warm
	if dim := t.Spec.ParamDim(sample); len(warm) != dim {
		warm = nil
	}
	endOpt := obs.StartSpan(ctx, "optimize")
	res, err := models.Train(t.Spec, sample, warm, core.WithCancel(ctx, r.opts.Optimizer))
	endOpt()
	if err != nil {
		return TrialResult{}, err
	}
	return TrialResult{
		Theta:      res.Theta,
		Score:      evalError(t.Spec, res.Theta, r.pruneSet()),
		SampleSize: sample.Len(),
	}, nil
}

// evalSet is where final leaderboard scores come from: the test split when
// the environment has one, the holdout otherwise.
func (r *EnvRunner) evalSet() *dataset.Dataset {
	if r.env.Test() != nil && r.env.Test().Len() > 0 {
		return r.env.Test()
	}
	return r.env.Holdout()
}

// pruneSet is where halving decisions come from — the holdout, so the test
// set stays untouched until the final ranking.
func (r *EnvRunner) pruneSet() *dataset.Dataset {
	if r.env.Holdout() != nil && r.env.Holdout().Len() > 0 {
		return r.env.Holdout()
	}
	return r.env.Test()
}

// evalError is the candidate score: models.GeneralizationError (lower is
// better) when the model class and dataset support a supervised test
// metric, NaN otherwise (NaN ranks last).
func evalError(spec models.Spec, theta []float64, ds *dataset.Dataset) float64 {
	if ds == nil || ds.Len() == 0 || len(theta) == 0 {
		return math.NaN()
	}
	if spec.Task() == dataset.Unsupervised || ds.Task == dataset.Unsupervised {
		return math.NaN()
	}
	return models.GeneralizationError(spec, theta, ds)
}
