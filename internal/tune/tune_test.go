package tune

import (
	"context"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"blinkml/internal/core"
	"blinkml/internal/datagen"
	"blinkml/internal/dataset"
	"blinkml/internal/models"
)

func higgs(t *testing.T, rows, dim int) *dataset.Dataset {
	t.Helper()
	ds, err := datagen.Generate("higgs", datagen.Config{Rows: rows, Dim: dim, Seed: 7})
	if err != nil {
		t.Fatalf("generate higgs: %v", err)
	}
	return ds
}

func baseOptions() core.Options {
	return core.Options{
		Epsilon:           0.1,
		Delta:             0.05,
		Seed:              11,
		InitialSampleSize: 300,
		K:                 60,
		TestFraction:      0.15,
	}
}

// TestSpaceCandidatesDeterministic checks that enumeration is a pure
// function of the seed and that grid candidates precede random ones.
func TestSpaceCandidatesDeterministic(t *testing.T) {
	space := Space{
		Grid: []models.Spec{models.LogisticRegression{Reg: 0.5}},
		Random: &RandomSpace{
			Model: "logistic", N: 5, RegMin: 1e-6, RegMax: 1,
		},
	}
	a, err := space.Candidates(42)
	if err != nil {
		t.Fatalf("candidates: %v", err)
	}
	b, _ := space.Candidates(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different candidates")
	}
	if len(a) != 6 {
		t.Fatalf("got %d candidates, want 6", len(a))
	}
	if a[0].Origin != "grid" || a[1].Origin != "random" {
		t.Fatalf("origin order wrong: %v %v", a[0].Origin, a[1].Origin)
	}
	c, _ := space.Candidates(43)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical random draws")
	}
	for _, cand := range a[1:] {
		reg := cand.Spec.(models.LogisticRegression).Reg
		if reg < 1e-6 || reg > 1 {
			t.Fatalf("reg %v outside [1e-6, 1]", reg)
		}
	}
}

// TestRandomSpaceOneSidedRange checks a single bound keeps the documented
// default for the other side instead of collapsing to a point.
func TestRandomSpaceOneSidedRange(t *testing.T) {
	space := Space{Random: &RandomSpace{Model: "logistic", N: 10, RegMax: 0.1}}
	cands, err := space.Candidates(1)
	if err != nil {
		t.Fatalf("candidates: %v", err)
	}
	distinct := map[float64]bool{}
	for _, c := range cands {
		reg := c.Spec.(models.LogisticRegression).Reg
		if reg < 1e-6 || reg > 0.1 {
			t.Fatalf("reg %v outside [1e-6, 0.1]", reg)
		}
		distinct[reg] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("one-sided range collapsed to a point: %v", distinct)
	}
}

func TestSpaceValidation(t *testing.T) {
	cases := []struct {
		name string
		s    Space
		want string
	}{
		{"empty", Space{}, "empty search space"},
		{"nil grid entry", Space{Grid: []models.Spec{nil}}, "is nil"},
		{"unknown family", Space{Random: &RandomSpace{Model: "svm"}}, "unknown model family"},
		{"missing family", Space{Random: &RandomSpace{}}, "needs a model family"},
		{"bad reg range", Space{Random: &RandomSpace{Model: "logistic", RegMin: 1, RegMax: 0.1}}, "regularization range"},
	}
	for _, tc := range cases {
		if _, err := tc.s.Candidates(1); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

// TestGridSearchRanksCandidates runs a small grid search and checks the
// leaderboard is complete, ranked by ascending test error, and the winner
// carries its contract.
func TestGridSearchRanksCandidates(t *testing.T) {
	ds := higgs(t, 4000, 10)
	space := Space{Grid: []models.Spec{
		models.LogisticRegression{Reg: 1e-4},
		models.LogisticRegression{Reg: 1e-2},
		models.LogisticRegression{Reg: 10},
	}}
	res, err := Run(context.Background(), space, ds, Config{Train: baseOptions()})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(res.Entries) != 3 || res.Evaluated != 3 || res.Pruned != 0 {
		t.Fatalf("result %+v, want 3 entries", res)
	}
	for i, e := range res.Entries {
		if e.Rank != i+1 {
			t.Fatalf("entry %d has rank %d", i, e.Rank)
		}
		if e.Err != "" {
			t.Fatalf("entry %d failed: %s", i, e.Err)
		}
		if e.EstimatedEpsilon <= 0 {
			t.Fatalf("entry %d has no contract epsilon: %+v", i, e)
		}
		if i > 0 && res.Entries[i-1].TestError > e.TestError {
			t.Fatalf("leaderboard not sorted: %v then %v", res.Entries[i-1].TestError, e.TestError)
		}
	}
	if res.Best == nil || len(res.Best.Theta) != 10 || res.Best.PoolSize == 0 {
		t.Fatalf("winner not trained: %+v", res.Best)
	}
}

// TestHalvingSearchDeterministicLeaderboard is the acceptance scenario:
// successive halving over 24 seeded random logistic-regression candidates
// on the synthetic higgs workload, run twice, must produce identical
// leaderboards — and must actually prune.
func TestHalvingSearchDeterministicLeaderboard(t *testing.T) {
	ds := higgs(t, 6000, 10)
	space := Space{Random: &RandomSpace{Model: "logistic", N: 24, RegMin: 1e-6, RegMax: 1}}
	cfg := Config{
		Train:   baseOptions(),
		Workers: 4,
		Halving: true,
		Rungs:   3,
		Eta:     2,
	}
	run := func() *Result {
		res, err := Run(context.Background(), space, ds, cfg)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return res
	}
	a, b := run(), run()

	if a.Evaluated != 24 || len(a.Entries) != 24 {
		t.Fatalf("evaluated %d candidates, want 24", a.Evaluated)
	}
	if a.Pruned == 0 {
		t.Fatal("halving pruned nothing")
	}
	// Survivors after 3 rungs of eta=2: 24 → 12 → 6 → 3 contract-trained.
	contract := 0
	for _, e := range a.Entries {
		if !e.Pruned && e.Err == "" && e.EstimatedEpsilon > 0 {
			contract++
		}
	}
	if contract != 3 {
		t.Fatalf("%d contract-trained survivors, want 3", contract)
	}
	if a.Best == nil || a.Best.EstimatedEpsilon <= 0 || a.Best.EstimatedEpsilon > cfg.Train.Epsilon {
		t.Fatalf("winner contract %+v, want 0 < ε ≤ %v", a.Best, cfg.Train.Epsilon)
	}

	// Determinism: identical specs, ranks, scores, sample sizes across runs
	// (wall times differ, so compare the deterministic fields).
	if len(a.Entries) != len(b.Entries) {
		t.Fatalf("leaderboard lengths differ: %d vs %d", len(a.Entries), len(b.Entries))
	}
	for i := range a.Entries {
		ea, eb := a.Entries[i], b.Entries[i]
		if !reflect.DeepEqual(ea.Spec, eb.Spec) || ea.Rank != eb.Rank ||
			ea.Pruned != eb.Pruned || ea.Rung != eb.Rung ||
			ea.SampleSize != eb.SampleSize ||
			!sameScore(ea.TestError, eb.TestError) ||
			ea.EstimatedEpsilon != eb.EstimatedEpsilon {
			t.Fatalf("rank %d differs across seeded runs:\n%+v\n%+v", i+1, ea, eb)
		}
	}
	if !reflect.DeepEqual(a.Best.Spec, b.Best.Spec) {
		t.Fatalf("winners differ: %+v vs %+v", a.Best.Spec, b.Best.Spec)
	}

	// Pruned candidates never trained past their rung's subsample.
	for _, e := range a.Entries {
		if e.Pruned && e.SampleSize >= a.PoolSize {
			t.Fatalf("pruned candidate trained on the whole pool: %+v", e)
		}
	}
}

func sameScore(x, y float64) bool {
	if math.IsNaN(x) || math.IsNaN(y) {
		return math.IsNaN(x) && math.IsNaN(y)
	}
	return x == y
}

// TestSearchCancellation cancels a search mid-flight and checks it returns
// promptly with the context error instead of finishing the sweep.
func TestSearchCancellation(t *testing.T) {
	ds := higgs(t, 20000, 15)
	// Plenty of candidates so the sweep cannot finish before the cancel.
	space := Space{Random: &RandomSpace{Model: "logistic", N: 40}}
	cfg := Config{Train: baseOptions(), Workers: 2}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var res *Result
	var err error
	go func() {
		res, err = Run(ctx, space, ds, cfg)
		close(done)
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("search did not stop after cancellation")
	}
	if err == nil {
		t.Fatalf("cancelled search returned %+v, want error", res)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestSearchSurvivesCandidateFailure mixes one impossible candidate into a
// grid and checks the search completes, records the failure, and ranks it
// last.
func TestSearchSurvivesCandidateFailure(t *testing.T) {
	ds := higgs(t, 3000, 10)
	space := Space{Grid: []models.Spec{
		models.LogisticRegression{Reg: 1e-3},
		models.LinearRegression{Reg: 1e-3}, // wrong task: fails at train time
	}}
	res, err := Run(context.Background(), space, ds, Config{Train: baseOptions()})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(res.Entries) != 2 {
		t.Fatalf("%d entries, want 2", len(res.Entries))
	}
	last := res.Entries[1]
	if last.Err == "" || !strings.Contains(last.Err, "task") {
		t.Fatalf("failed candidate not recorded: %+v", last)
	}
	if res.Best == nil || res.Best.Spec.Name() != "logistic" {
		t.Fatalf("winner %+v, want the logistic candidate", res.Best)
	}
}

// TestSearchAllFail checks the search errors out when nothing survives.
func TestSearchAllFail(t *testing.T) {
	ds := higgs(t, 1000, 5)
	space := Space{Grid: []models.Spec{models.LinearRegression{Reg: 1e-3}}}
	_, err := Run(context.Background(), space, ds, Config{Train: baseOptions()})
	if err == nil || !strings.Contains(err.Error(), "no candidate survived") {
		t.Fatalf("err = %v, want 'no candidate survived'", err)
	}
}

// TestHalvingAllFail checks a halving search where every candidate fails a
// rung returns a clean error instead of panicking (regression: the prune
// slice used to be cut past an empty survivor list).
func TestHalvingAllFail(t *testing.T) {
	ds := higgs(t, 2000, 8)
	// Wrong task for every candidate: all fail at rung 0.
	space := Space{Grid: []models.Spec{
		models.LinearRegression{Reg: 1e-3},
		models.LinearRegression{Reg: 1e-2},
		models.LinearRegression{Reg: 1e-1},
	}}
	_, err := Run(context.Background(), space, ds, Config{Train: baseOptions(), Halving: true, Rungs: 2})
	if err == nil || !strings.Contains(err.Error(), "no candidate survived") {
		t.Fatalf("err = %v, want 'no candidate survived'", err)
	}
}

// TestHalvingRejectsUnsupervised checks halving refuses model classes with
// no supervised pruning metric (PPCA) instead of pruning arbitrarily.
func TestHalvingRejectsUnsupervised(t *testing.T) {
	ds := higgs(t, 2000, 8)
	space := Space{Random: &RandomSpace{Model: "ppca", N: 4}}
	_, err := Run(context.Background(), space, ds, Config{Train: baseOptions(), Halving: true})
	if err == nil || !strings.Contains(err.Error(), "supervised test metric") {
		t.Fatalf("err = %v, want supervised-metric rejection", err)
	}
	// A flat search over the same space is still allowed.
	if _, err := Run(context.Background(), space, ds, Config{Train: baseOptions()}); err != nil {
		t.Fatalf("flat ppca search failed: %v", err)
	}
}

// TestSearchBadEpsilon checks contract validation happens up front.
func TestSearchBadEpsilon(t *testing.T) {
	ds := higgs(t, 1000, 5)
	space := Space{Grid: []models.Spec{models.LogisticRegression{Reg: 1e-3}}}
	if _, err := Run(context.Background(), space, ds, Config{}); err == nil {
		t.Fatal("zero epsilon accepted")
	}
}

// TestSharedEnvReuse checks Search over a caller-prepared Env evaluates all
// candidates against the same pool (PoolSize agrees with the Env).
func TestSharedEnvReuse(t *testing.T) {
	ds := higgs(t, 3000, 10)
	opt := baseOptions()
	env := core.NewEnv(ds, opt)
	space := Space{Grid: []models.Spec{
		models.LogisticRegression{Reg: 1e-3},
		models.LogisticRegression{Reg: 1e-2},
	}}
	res, err := Search(context.Background(), space, env, Config{Train: opt})
	if err != nil {
		t.Fatalf("search: %v", err)
	}
	if res.PoolSize != env.PoolLen() {
		t.Fatalf("pool size %d, want %d", res.PoolSize, env.PoolLen())
	}
	if res.Best.PoolSize != env.PoolLen() {
		t.Fatalf("winner pool %d, want %d", res.Best.PoolSize, env.PoolLen())
	}
}
