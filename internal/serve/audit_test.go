package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"blinkml/internal/audit"
	"blinkml/internal/cluster"
	"blinkml/internal/core"
	"blinkml/internal/datagen"
	"blinkml/internal/modelio"
	"blinkml/internal/optimize"
)

// TestAuditEndToEnd is the guarantee-audit acceptance path: train 20 jobs
// across two model families, replay them all through the auditor, and
// check that (a) every family's empirical coverage meets its 1−δ target,
// (b) the audit view joins into the job endpoint, (c) the replayed
// full-data models are bit-identical to direct training at the recorded
// options, and (d) the coverage and per-family latency series reach the
// metrics endpoint.
func TestAuditEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("audit end-to-end skipped in -short mode")
	}
	dir := t.TempDir()
	s, err := New(Config{Dir: dir, Workers: 4, QueueDepth: 32})
	if err != nil {
		t.Fatalf("new server: %v", err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	// Two families, ten jobs each, every job with its own seed. The ε is
	// generous relative to these easy synthetic workloads, so the contract
	// should hold on every replay (coverage 1.0 ≥ 1−δ).
	type jobCase struct {
		family string
		data   string
	}
	cases := []jobCase{{"logistic", "higgs"}, {"linear", "gas"}}
	var jobIDs []string
	for _, c := range cases {
		for i := 0; i < 10; i++ {
			req := TrainRequest{
				Model:   modelio.SpecJSON{Name: c.family, Reg: 0.001},
				Dataset: DatasetRef{Synthetic: &SyntheticRef{Name: c.data, Rows: 2500, Dim: 6, Seed: int64(100 + i)}},
				Epsilon: 0.2,
				Delta:   0.05,
				Options: TrainOptions{Seed: int64(10*i + 1), InitialSampleSize: 600},
			}
			var tr TrainResponse
			if code := doJSON(t, client, http.MethodPost, ts.URL+"/v1/train", req, &tr); code != http.StatusAccepted {
				t.Fatalf("train %s/%d status %d", c.family, i, code)
			}
			jobIDs = append(jobIDs, tr.JobID)
		}
	}
	for _, id := range jobIDs {
		if st := waitJob(t, client, ts.URL, id, 120*time.Second); st.State != JobSucceeded {
			t.Fatalf("job %s: %+v", id, st)
		}
	}

	// All 20 jobs must have calibration records and sit pending.
	var before audit.Report
	doJSON(t, client, http.MethodGet, ts.URL+"/v1/audit", nil, &before)
	if before.Records != 20 || before.Pending != 20 {
		t.Fatalf("before replay: %+v", before)
	}

	var rr AuditReplayResponse
	if code := doJSON(t, client, http.MethodPost, ts.URL+"/v1/audit/replay", AuditReplayRequest{}, &rr); code != http.StatusOK {
		t.Fatalf("replay status %d: %+v", code, rr)
	}
	if rr.Replayed != 20 {
		t.Fatalf("replayed %d, want 20", rr.Replayed)
	}

	var rep audit.Report
	doJSON(t, client, http.MethodGet, ts.URL+"/v1/audit", nil, &rep)
	if rep.Replayed != 20 || rep.Pending != 0 || rep.Failures != 0 {
		t.Fatalf("after replay: %+v", rep)
	}
	if len(rep.Families) != 2 {
		t.Fatalf("families %+v, want linear+logistic", rep.Families)
	}
	for _, fr := range rep.Families {
		if fr.Replayed != 10 {
			t.Fatalf("family %s replayed %d, want 10", fr.Family, fr.Replayed)
		}
		if fr.Coverage < fr.Target {
			t.Fatalf("family %s coverage %v below target %v", fr.Family, fr.Coverage, fr.Target)
		}
		if fr.MeanCalibration < 1 {
			t.Fatalf("family %s mean calibration %v < 1 with zero violations", fr.Family, fr.MeanCalibration)
		}
	}

	// The job endpoint joins the audit entry.
	var st JobStatus
	doJSON(t, client, http.MethodGet, ts.URL+"/v1/jobs/"+jobIDs[0], nil, &st)
	if st.Audit == nil || st.Audit.Replay == nil {
		t.Fatalf("job %s missing audit join: %+v", jobIDs[0], st.Audit)
	}
	if st.Audit.Record.JobID != jobIDs[0] || st.Audit.Record.TraceID != st.TraceID {
		t.Fatalf("audit record identity mismatch: %+v vs job %s trace %s", st.Audit.Record, jobIDs[0], st.TraceID)
	}
	if !st.Audit.Replay.Satisfied {
		t.Fatalf("job %s replay violated its bound: %+v", jobIDs[0], st.Audit.Replay)
	}

	// Bit-identity: direct full-data training at each record's options must
	// reproduce the replayed full model exactly (one record per family).
	var entries []audit.Entry
	doJSON(t, client, http.MethodGet, ts.URL+"/v1/audit/records", nil, &entries)
	if len(entries) != 20 {
		t.Fatalf("records = %d, want 20", len(entries))
	}
	checked := map[string]bool{}
	for _, e := range entries {
		if checked[e.Record.Family] {
			continue
		}
		checked[e.Record.Family] = true
		spec, err := e.Record.Spec.Spec()
		if err != nil {
			t.Fatal(err)
		}
		var ref DatasetRef
		if err := json.Unmarshal(e.Record.Dataset, &ref); err != nil {
			t.Fatalf("record dataset ref: %v", err)
		}
		src, err := datagen.Generate(ref.Synthetic.Name, datagen.Config{Rows: ref.Synthetic.Rows, Dim: ref.Synthetic.Dim, Seed: ref.Synthetic.Seed})
		if err != nil {
			t.Fatal(err)
		}
		env, err := core.NewEnvFromSource(src, e.Record.Options.Core())
		if err != nil {
			t.Fatal(err)
		}
		full, err := env.TrainFull(spec, optimize.Options{MaxIters: e.Record.Options.MaxIters})
		if err != nil {
			t.Fatal(err)
		}
		direct := fmt.Sprintf("%016x", core.ThetaFingerprint(full.Theta))
		if direct != e.Replay.FullThetaFNV {
			t.Fatalf("family %s: direct training %s != replay %s", e.Record.Family, direct, e.Replay.FullThetaFNV)
		}
	}
	if len(checked) != 2 {
		t.Fatalf("bit-identity checked %v, want both families", checked)
	}

	// Coverage gauges and per-family latency reach the exposition endpoint.
	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		`blinkml_audit_coverage{family="logistic"} 1`,
		`blinkml_audit_coverage{family="linear"} 1`,
		"blinkml_audit_replays 20",
		`blinkml_train_latency_family_ms_count{family="logistic"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q", want)
		}
	}
}

// TestClusterAuditReplayAndScoreboard: in coordinator mode the replay runs
// as a KindAudit task on a worker — same coverage result, same determinism
// — and the fleet scoreboard (completions, error rate, lease-to-complete
// p95) shows up in /v1/cluster/status.
func TestClusterAuditReplayAndScoreboard(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster audit skipped in -short mode")
	}
	_, ts := newClusterServer(t, clusterTestConfig())
	startClusterWorker(t, ts.URL, "w1")

	st := runJob(t, ts, "/v1/train", trainBody())
	if st.State != JobSucceeded {
		t.Fatalf("cluster train: %+v", st)
	}

	var rr AuditReplayResponse
	if code := doJSON(t, ts.Client(), http.MethodPost, ts.URL+"/v1/audit/replay", AuditReplayRequest{}, &rr); code != http.StatusOK {
		t.Fatalf("cluster replay status %d: %+v", code, rr)
	}
	if rr.Replayed != 1 {
		t.Fatalf("replayed %d, want 1", rr.Replayed)
	}
	var job JobStatus
	doJSON(t, ts.Client(), http.MethodGet, ts.URL+"/v1/jobs/"+st.ID, nil, &job)
	if job.Audit == nil || job.Audit.Replay == nil || job.Audit.Replay.Error != "" {
		t.Fatalf("cluster audit join: %+v", job.Audit)
	}
	if !job.Audit.Replay.Satisfied || job.Audit.Replay.FullThetaFNV == "" {
		t.Fatalf("cluster replay outcome: %+v", job.Audit.Replay)
	}

	var cst cluster.Status
	if code := doJSON(t, ts.Client(), http.MethodGet, ts.URL+"/v1/cluster/status", nil, &cst); code != http.StatusOK {
		t.Fatalf("cluster status %d", code)
	}
	if len(cst.Workers) != 1 {
		t.Fatalf("workers %+v", cst.Workers)
	}
	// One train task plus one audit task completed on this worker.
	ws := cst.Workers[0]
	if ws.TasksCompleted < 2 || ws.TasksFailed != 0 || ws.ErrorRate != 0 {
		t.Fatalf("scoreboard %+v, want ≥2 completions and no failures", ws)
	}
	if ws.P95LeaseToCompleteMs <= 0 {
		t.Fatalf("scoreboard p95 lease-to-complete %v, want > 0", ws.P95LeaseToCompleteMs)
	}
	// Per-worker resource rollup from completed-task ledgers: the train task
	// burned pool CPU on this worker.
	if ws.CPUMs <= 0 {
		t.Fatalf("scoreboard cpu_ms %v, want > 0 after a completed train", ws.CPUMs)
	}
}
