package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"blinkml/internal/cluster"
	"blinkml/internal/obs"
)

// clusterTestConfig keeps heartbeats fast; the liveness timeout stays far
// above any scheduling hiccup the race detector can cause, so only a truly
// silent worker is ever reaped.
func clusterTestConfig() *cluster.Config {
	return &cluster.Config{
		HeartbeatInterval: 25 * time.Millisecond,
		HeartbeatTimeout:  2 * time.Second,
		SweepInterval:     10 * time.Millisecond,
		MaxAttempts:       3,
	}
}

// newClusterServer starts a serve.Server in coordinator mode behind an
// httptest server.
func newClusterServer(t *testing.T, cfg *cluster.Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(Config{Dir: t.TempDir(), Workers: 2, QueueDepth: 8, Cluster: cfg})
	if err != nil {
		t.Fatalf("new cluster server: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		s.Close()
		ts.Close()
	})
	return s, ts
}

// startClusterWorker runs a real blinkml-worker runtime against the server.
func startClusterWorker(t *testing.T, url, name string) {
	t.Helper()
	w, err := cluster.NewWorker(cluster.WorkerConfig{
		Coordinator: url,
		Name:        name,
		DataDir:     t.TempDir(),
		Log:         obs.Discard(),
	})
	if err != nil {
		t.Fatalf("new worker: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var done sync.WaitGroup
	done.Add(1)
	go func() { defer done.Done(); _ = w.Run(ctx) }()
	t.Cleanup(func() {
		cancel()
		done.Wait()
	})
}

// trainBody is a fixed-seed train request over a synthetic workload, so the
// result is bit-reproducible across servers in one process.
func trainBody() TrainRequest {
	return TrainRequest{
		Model:   modelSpec("logistic"),
		Dataset: DatasetRef{Synthetic: &SyntheticRef{Name: "higgs", Rows: 4000, Dim: 8, Seed: 11}},
		Epsilon: 0.08,
		Delta:   0.05,
		Options: TrainOptions{Seed: 7, InitialSampleSize: 400},
	}
}

// runJob submits a request and waits for the terminal status.
func runJob(t *testing.T, ts *httptest.Server, path string, body any) JobStatus {
	t.Helper()
	var ack TrainResponse
	if code := doJSON(t, ts.Client(), http.MethodPost, ts.URL+path, body, &ack); code != http.StatusAccepted {
		t.Fatalf("POST %s status %d", path, code)
	}
	return waitJob(t, ts.Client(), ts.URL, ack.JobID, 90*time.Second)
}

// fetchTheta returns the stored model's parameters.
func fetchTheta(t *testing.T, ts *httptest.Server, modelID string) ModelInfo {
	t.Helper()
	var info ModelInfo
	if code := doJSON(t, ts.Client(), http.MethodGet, ts.URL+"/v1/models/"+modelID+"?theta=1", nil, &info); code != http.StatusOK {
		t.Fatalf("GET model status %d", code)
	}
	return info
}

// TestClusterTrainAndTuneMatchLocal is the acceptance scenario: a train job
// and a tune job submitted to a coordinator with one remote worker complete
// with results identical to the in-process path — two in-process HTTP
// servers, one local, one a coordinator with a real worker attached.
func TestClusterTrainAndTuneMatchLocal(t *testing.T) {
	// Local (non-cluster) reference server.
	local, err := New(Config{Dir: t.TempDir(), Workers: 2, QueueDepth: 8})
	if err != nil {
		t.Fatalf("new local server: %v", err)
	}
	localTS := httptest.NewServer(local.Handler())
	defer func() {
		local.Close()
		localTS.Close()
	}()

	// Coordinator server + one remote worker.
	_, clusterTS := newClusterServer(t, clusterTestConfig())
	startClusterWorker(t, clusterTS.URL, "w1")

	// Train on both paths.
	lst := runJob(t, localTS, "/v1/train", trainBody())
	cst := runJob(t, clusterTS, "/v1/train", trainBody())
	if lst.State != JobSucceeded || cst.State != JobSucceeded {
		t.Fatalf("train states local=%s (%s) cluster=%s (%s)", lst.State, lst.Error, cst.State, cst.Error)
	}
	lm := fetchTheta(t, localTS, lst.ModelID)
	cm := fetchTheta(t, clusterTS, cst.ModelID)
	if len(lm.Theta) == 0 || len(lm.Theta) != len(cm.Theta) {
		t.Fatalf("theta sizes local=%d cluster=%d", len(lm.Theta), len(cm.Theta))
	}
	for i := range lm.Theta {
		if lm.Theta[i] != cm.Theta[i] {
			t.Fatalf("train theta[%d]: local %v != cluster %v", i, lm.Theta[i], cm.Theta[i])
		}
	}
	if lm.SampleSize != cm.SampleSize || lm.EstimatedEpsilon != cm.EstimatedEpsilon || lm.PoolSize != cm.PoolSize || lm.Dim != cm.Dim {
		t.Fatalf("model metadata differs: local %+v cluster %+v", lm, cm)
	}

	// Resource-attribution parity: the coordinator does no training in
	// cluster mode, so the worker-side ledger that rejoined the job record
	// must match the local run's on every deterministic field. CPU-class
	// fields (cpu_ms, kernel_ms, steals, queue wait) are wall-clock and
	// excluded by design.
	lr, cr := lst.Resources, cst.Resources
	if lr == nil || cr == nil {
		t.Fatalf("missing job resources: local=%+v cluster=%+v", lr, cr)
	}
	if lr.KernelCalls == 0 || lr.Flops == 0 {
		t.Fatalf("local ledger empty: %+v", lr)
	}
	if lr.KernelCalls != cr.KernelCalls || lr.Flops != cr.Flops ||
		lr.RowsMaterialized != cr.RowsMaterialized || lr.BytesMaterialized != cr.BytesMaterialized {
		t.Fatalf("deterministic ledger fields differ local vs cluster:\n  local   %+v\n  cluster %+v", lr, cr)
	}
	if cr.CPUMs <= 0 {
		t.Fatalf("worker-side CPU time did not rejoin the coordinator job: %+v", cr)
	}

	// Tune on both paths (a small random space, decomposed to per-trial
	// remote tasks on the cluster side).
	tb := TuneRequest{
		Space:   SpaceJSON{Random: &RandomSpaceJSON{Model: "logistic", Candidates: 3}},
		Dataset: DatasetRef{Synthetic: &SyntheticRef{Name: "higgs", Rows: 4000, Dim: 8, Seed: 11}},
		Epsilon: 0.1,
		Delta:   0.05,
		Options: TuneOptions{Seed: 5, InitialSampleSize: 300},
	}
	ltn := runJob(t, localTS, "/v1/tune", tb)
	ctn := runJob(t, clusterTS, "/v1/tune", tb)
	if ltn.State != JobSucceeded || ctn.State != JobSucceeded {
		t.Fatalf("tune states local=%s (%s) cluster=%s (%s)", ltn.State, ltn.Error, ctn.State, ctn.Error)
	}
	if ltn.Tune == nil || ctn.Tune == nil {
		t.Fatal("missing tune reports")
	}
	if len(ltn.Tune.Leaderboard) != len(ctn.Tune.Leaderboard) {
		t.Fatalf("leaderboard sizes differ: %d vs %d", len(ltn.Tune.Leaderboard), len(ctn.Tune.Leaderboard))
	}
	for i := range ltn.Tune.Leaderboard {
		le, ce := ltn.Tune.Leaderboard[i], ctn.Tune.Leaderboard[i]
		if le.Spec.Reg != ce.Spec.Reg || !sameScorePtr(le.TestError, ce.TestError) || le.SampleSize != ce.SampleSize {
			t.Fatalf("leaderboard row %d differs: local %+v cluster %+v", i, le, ce)
		}
	}
	lwin := fetchTheta(t, localTS, ltn.ModelID)
	cwin := fetchTheta(t, clusterTS, ctn.ModelID)
	for i := range lwin.Theta {
		if lwin.Theta[i] != cwin.Theta[i] {
			t.Fatalf("tune winner theta[%d]: local %v != cluster %v", i, lwin.Theta[i], cwin.Theta[i])
		}
	}

	// The coordinator shows its worker in healthz.
	var h Health
	if code := doJSON(t, clusterTS.Client(), http.MethodGet, clusterTS.URL+"/healthz", nil, &h); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	if h.Cluster == nil || h.Cluster.Workers != 1 {
		t.Fatalf("healthz cluster = %+v, want 1 worker", h.Cluster)
	}
}

// TestClusterWorkerLossRequeuesJob kills the worker mid-task; the
// coordinator requeues the job's task onto a replacement worker and the job
// still succeeds, with the same model a local run produces.
func TestClusterWorkerLossRequeuesJob(t *testing.T) {
	s, ts := newClusterServer(t, clusterTestConfig())

	// Reference result from a local (non-cluster) server in this same
	// process (same compute parallelism).
	local, err := New(Config{Dir: t.TempDir(), Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatalf("new local server: %v", err)
	}
	localTS := httptest.NewServer(local.Handler())
	defer func() {
		local.Close()
		localTS.Close()
	}()
	want := runJob(t, localTS, "/v1/train", trainBody())
	if want.State != JobSucceeded {
		t.Fatalf("local reference failed: %s (%s)", want.State, want.Error)
	}
	wantTheta := fetchTheta(t, localTS, want.ModelID).Theta

	// Submit to the coordinator before any worker exists; the job leaves
	// the queue and blocks on the cluster task.
	var ack TrainResponse
	if code := doJSON(t, ts.Client(), http.MethodPost, ts.URL+"/v1/train", trainBody(), &ack); code != http.StatusAccepted {
		t.Fatalf("train submit status %d", code)
	}

	// A doomed "worker" leases the task and dies silently (never completes,
	// never heartbeats): the heartbeat timeout must requeue the task.
	coord := s.Coordinator()
	reg, err := coord.Register(cluster.RegisterRequest{Name: "doomed", Capacity: 1})
	if err != nil {
		t.Fatalf("register doomed: %v", err)
	}
	lease, err := coord.Lease(context.Background(), reg.WorkerID, 5*time.Second)
	if err != nil || lease == nil {
		t.Fatalf("doomed lease: %v (%v)", lease, err)
	}

	// Wait for the sweeper to reap the silent worker, then bring up a real
	// one.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if st := coord.Status(); len(st.Workers) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("silent worker never reaped")
		}
		time.Sleep(20 * time.Millisecond)
	}
	startClusterWorker(t, ts.URL, "replacement")

	st := waitJob(t, ts.Client(), ts.URL, ack.JobID, 90*time.Second)
	if st.State != JobSucceeded {
		t.Fatalf("job after worker loss: %s (%s)", st.State, st.Error)
	}
	got := fetchTheta(t, ts, st.ModelID).Theta
	for i := range wantTheta {
		if got[i] != wantTheta[i] {
			t.Fatalf("requeued job theta[%d] = %v, want %v", i, got[i], wantTheta[i])
		}
	}
}

// TestClusterAttemptCapFailsJob: exhausting the lease attempts surfaces a
// structured cluster error in the job status.
func TestClusterAttemptCapFailsJob(t *testing.T) {
	cfg := clusterTestConfig()
	cfg.MaxAttempts = 1
	s, ts := newClusterServer(t, cfg)

	var ack TrainResponse
	if code := doJSON(t, ts.Client(), http.MethodPost, ts.URL+"/v1/train", trainBody(), &ack); code != http.StatusAccepted {
		t.Fatalf("train submit status %d", code)
	}
	coord := s.Coordinator()
	reg, err := coord.Register(cluster.RegisterRequest{Name: "doomed", Capacity: 1})
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	if lease, err := coord.Lease(context.Background(), reg.WorkerID, 5*time.Second); err != nil || lease == nil {
		t.Fatalf("lease: %v (%v)", lease, err)
	}
	// Silence: the sweeper reaps the worker and — with the cap at 1 — fails
	// the task instead of requeueing.
	st := waitJob(t, ts.Client(), ts.URL, ack.JobID, 30*time.Second)
	if st.State != JobFailed {
		t.Fatalf("job state %s, want failed", st.State)
	}
	if !strings.Contains(st.Error, "failed after 1 attempt") || !strings.Contains(st.Error, "heartbeat timeout") {
		t.Fatalf("job error %q lacks the structured attempt record", st.Error)
	}
}

// TestClusterCancelPropagates cancels a job whose task a live worker is
// executing; the job reaches cancelled and the worker stays usable.
func TestClusterCancelPropagates(t *testing.T) {
	_, ts := newClusterServer(t, clusterTestConfig())
	startClusterWorker(t, ts.URL, "w1")

	// A big slow training keeps the worker busy long enough to cancel.
	req := trainBody()
	req.Dataset = DatasetRef{Synthetic: &SyntheticRef{Name: "mnist", Rows: 20000, Seed: 3}}
	req.Model = modelSpec("maxent")
	req.Epsilon = 0.01
	var ack TrainResponse
	if code := doJSON(t, ts.Client(), http.MethodPost, ts.URL+"/v1/train", req, &ack); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	// Wait until the job is running, then cancel it.
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st JobStatus
		doJSON(t, ts.Client(), http.MethodGet, ts.URL+"/v1/jobs/"+ack.JobID, nil, &st)
		if st.State == JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started: %s", st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	var st JobStatus
	if code := doJSON(t, ts.Client(), http.MethodDelete, ts.URL+"/v1/jobs/"+ack.JobID, nil, &st); code != http.StatusOK {
		t.Fatalf("cancel status %d", code)
	}
	final := waitJob(t, ts.Client(), ts.URL, ack.JobID, 60*time.Second)
	if final.State != JobCancelled {
		t.Fatalf("state after cancel = %s (%s), want cancelled", final.State, final.Error)
	}

	// The worker must still serve later jobs.
	st2 := runJob(t, ts, "/v1/train", trainBody())
	if st2.State != JobSucceeded {
		t.Fatalf("job after cancel: %s (%s)", st2.State, st2.Error)
	}
}

func sameScorePtr(a, b *float64) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || *a == *b
}
