package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"blinkml/internal/audit"
	"blinkml/internal/cluster"
	"blinkml/internal/dataset"
	"blinkml/internal/modelio"
	"blinkml/internal/obs"
)

// resolveAuditSource turns a recorded dataset reference (the serve-layer
// DatasetRef JSON, stored opaquely in the audit record) back into a data
// source for replay.
func (s *Server) resolveAuditSource(_ context.Context, raw json.RawMessage) (dataset.Source, error) {
	if len(raw) == 0 {
		return nil, errors.New("serve: audit record has no dataset reference")
	}
	var ref DatasetRef
	if err := json.Unmarshal(raw, &ref); err != nil {
		return nil, fmt.Errorf("serve: decode audit dataset ref: %w", err)
	}
	return s.buildSource(ref)
}

// clusterReplayer runs audit replays on the worker fleet: the full-data
// training a replay needs is exactly the work the cluster exists to
// spread. The worker rebuilds the recorded environment (identical by split
// determinism) and ships back the realized difference plus the full
// model's bit fingerprint.
type clusterReplayer struct{ s *Server }

// Replay implements audit.Replayer.
func (r clusterReplayer) Replay(ctx context.Context, rec audit.Record, m *modelio.Model) (audit.ReplayOutcome, error) {
	var ref DatasetRef
	if err := json.Unmarshal(rec.Dataset, &ref); err != nil {
		return audit.ReplayOutcome{}, fmt.Errorf("serve: decode audit dataset ref: %w", err)
	}
	cref, _, err := r.s.clusterDatasetRef(ref)
	if err != nil {
		return audit.ReplayOutcome{}, err
	}
	id, err := r.s.coord.Submit(cluster.TaskSpec{Kind: cluster.KindAudit, Trace: obs.TraceID(ctx), Audit: &cluster.AuditTask{
		Spec:    rec.Spec,
		Dataset: cref,
		Options: clusterTrainOptions(rec.Options.Core()),
		Theta:   m.Theta,
		Bound:   rec.EpsilonHat,
	}})
	if err != nil {
		return audit.ReplayOutcome{}, err
	}
	payload, err := r.s.coord.Await(ctx, id)
	if err != nil {
		return audit.ReplayOutcome{}, err
	}
	fnv, err := strconv.ParseUint(payload.FullThetaFNV, 16, 64)
	if err != nil {
		return audit.ReplayOutcome{}, fmt.Errorf("serve: worker audit fingerprint %q: %w", payload.FullThetaFNV, err)
	}
	return audit.ReplayOutcome{
		Realized:     payload.Realized,
		Satisfied:    payload.Satisfied,
		FullIters:    payload.FullIters,
		FullThetaFNV: fnv,
	}, nil
}

// AuditReplayRequest is the body of POST /v1/audit/replay. Empty replays
// everything pending; ModelID targets one record (including re-replaying
// an errored or already-audited one); Max caps a bulk replay.
type AuditReplayRequest struct {
	ModelID string `json:"model_id,omitempty"`
	Max     int    `json:"max,omitempty"`
}

// AuditReplayResponse reports a replay request's outcome.
type AuditReplayResponse struct {
	Replayed int `json:"replayed"`
	// Entry is the joined record+replay when a single model was targeted.
	Entry *audit.Entry `json:"entry,omitempty"`
}

// handleAuditSummary serves GET /v1/audit: the per-family empirical
// coverage rollup.
func (s *Server) handleAuditSummary(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.audit.Summary())
}

// handleAuditRecords serves GET /v1/audit/records: every calibration
// record joined with its replay, in append order.
func (s *Server) handleAuditRecords(w http.ResponseWriter, r *http.Request) {
	entries := s.audit.Entries()
	if entries == nil {
		entries = []audit.Entry{}
	}
	writeJSON(w, http.StatusOK, entries)
}

// handleAuditReplay serves POST /v1/audit/replay: run replays now,
// synchronously — the caller wants coverage numbers, so it waits for them.
func (s *Server) handleAuditReplay(w http.ResponseWriter, r *http.Request) {
	var req AuditReplayRequest
	if r.ContentLength != 0 && !s.readJSON(w, r, &req) {
		return
	}
	if req.ModelID != "" {
		if err := s.auditor.ReplayOne(r.Context(), req.ModelID); err != nil {
			writeError(w, http.StatusBadGateway, err)
			return
		}
		e, _ := s.audit.Get(req.ModelID)
		writeJSON(w, http.StatusOK, AuditReplayResponse{Replayed: 1, Entry: &e})
		return
	}
	n, err := s.auditor.ReplayPending(r.Context(), req.Max)
	if err != nil {
		// Partial progress still matters: report what completed alongside
		// the first failure.
		writeJSON(w, http.StatusBadGateway, struct {
			AuditReplayResponse
			Error string `json:"error"`
		}{AuditReplayResponse{Replayed: n}, err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, AuditReplayResponse{Replayed: n})
}
