package serve

import (
	"expvar"
	"sync"
	"time"

	"blinkml/internal/obs"
)

// Metrics are the service's expvar counters and latency histograms,
// published once under the "blinkml" map so repeated server construction
// (tests, restarts in one process) reuses the same vars instead of
// panicking on re-publish. Latencies are obs.Histograms — mergeable
// log-scale buckets with p50/p95/p99 at read time — rendered in Prometheus
// text form on GET /metrics and as JSON summaries on GET /metrics.json.
type Metrics struct {
	JobsQueued    *expvar.Int // total jobs admitted
	JobsRunning   *expvar.Int // gauge: jobs currently training
	JobsSucceeded *expvar.Int
	JobsFailed    *expvar.Int
	JobsCancelled *expvar.Int

	TrainRuns    *expvar.Int    // completed training runs
	TrainLatency *obs.Histogram // wall-clock train latency (ms)
	// TrainLatencyFamily breaks train latency down per model family — a
	// bounded label set (obs.ModelFamilies plus "other"), so no request
	// input can mint new series.
	TrainLatencyFamily *obs.HistogramVec
	SampleSizeSum      *expvar.Int // sum of chosen sample sizes n
	SampleSizeLast     *expvar.Int // most recent chosen n

	TuneRuns             *expvar.Int    // completed hyperparameter searches
	TuneLatency          *obs.Histogram // wall-clock search latency (ms)
	TuneCandidates       *expvar.Int    // candidates entered across searches
	TuneCandidatesPruned *expvar.Int    // candidates dropped by successive halving

	PredictRequests   *expvar.Int    // predict calls
	PredictionsServed *expvar.Int    // individual rows predicted
	PredictLatency    *obs.Histogram // per-request predict latency (ms)
	// PredictLatencyFamily is PredictLatency per model family (same
	// bounded label set as TrainLatencyFamily).
	PredictLatencyFamily *obs.HistogramVec
	ModelsStored         *expvar.Int // gauge: models in the registry

	DatasetsStored     *expvar.Int    // gauge: datasets in the store
	DatasetBytes       *expvar.Int    // gauge: store bytes on disk
	DatasetsSparseRows *expvar.Int    // gauge: rows stored in the sparse encoding
	DatasetSparseNNZ   *expvar.Int    // gauge: stored entries across sparse datasets
	IngestRows         *expvar.Int    // rows ingested across uploads
	IngestLatency      *obs.Histogram // per-upload ingest latency (ms)
	SampleRows         *expvar.Int    // rows materialized from the store
	MaterializeLatency *obs.Histogram // per-sample materialization latency (ms)

	// JobCPUFamily / JobAllocFamily distribute each finished job's ledger
	// totals (pool CPU milliseconds; data-plane bytes materialized) per model
	// family — the same bounded label set as TrainLatencyFamily, rendered as
	// blinkml_job_cpu_ms / blinkml_job_alloc_bytes on /metrics.
	JobCPUFamily   *obs.HistogramVec
	JobAllocFamily *obs.HistogramVec
}

var (
	metricsOnce sync.Once
	metrics     *Metrics
)

// sharedMetrics returns the process-wide metrics, publishing them on first
// use.
func sharedMetrics() *Metrics {
	metricsOnce.Do(func() {
		m := expvar.NewMap("blinkml")
		newInt := func(name string) *expvar.Int {
			v := new(expvar.Int)
			m.Set(name, v)
			return v
		}
		newHist := func(name string) *obs.Histogram {
			v := obs.NewHistogram()
			m.Set(name, v)
			return v
		}
		metrics = &Metrics{
			JobsQueued:           newInt("jobs_queued"),
			JobsRunning:          newInt("jobs_running"),
			JobsSucceeded:        newInt("jobs_succeeded"),
			JobsFailed:           newInt("jobs_failed"),
			JobsCancelled:        newInt("jobs_cancelled"),
			TrainRuns:            newInt("train_runs"),
			TrainLatency:         newHist("train_latency_ms"),
			SampleSizeSum:        newInt("sample_size_sum"),
			SampleSizeLast:       newInt("sample_size_last"),
			TuneRuns:             newInt("tune_runs"),
			TuneLatency:          newHist("tune_latency_ms"),
			TuneCandidates:       newInt("tune_candidates"),
			TuneCandidatesPruned: newInt("tune_candidates_pruned"),
			PredictRequests:      newInt("predict_requests"),
			PredictionsServed:    newInt("predictions_served"),
			PredictLatency:       newHist("predict_latency_ms"),
			ModelsStored:         newInt("models_stored"),

			DatasetsStored:     newInt("datasets_stored"),
			DatasetBytes:       newInt("dataset_bytes"),
			DatasetsSparseRows: newInt("datasets_sparse_rows"),
			DatasetSparseNNZ:   newInt("datasets_sparse_nnz"),
			IngestRows:         newInt("ingest_rows"),
			IngestLatency:      newHist("ingest_ms"),
			SampleRows:         newInt("sample_rows_materialized"),
			MaterializeLatency: newHist("sample_materialize_ms"),
		}
		metrics.TrainLatencyFamily = obs.NewHistogramVec()
		m.Set("train_latency_family_ms", metrics.TrainLatencyFamily)
		metrics.PredictLatencyFamily = obs.NewHistogramVec()
		m.Set("predict_latency_family_ms", metrics.PredictLatencyFamily)
		metrics.JobCPUFamily = obs.NewHistogramVec()
		m.Set("job_cpu_ms", metrics.JobCPUFamily)
		metrics.JobAllocFamily = obs.NewHistogramVec()
		m.Set("job_alloc_bytes", metrics.JobAllocFamily)
	})
	return metrics
}

// storeObserver feeds store events into the expvar counters (it implements
// store.Observer).
type storeObserver struct{ m *Metrics }

func (o storeObserver) IngestDone(rows int, bytes int64, d time.Duration) {
	o.m.IngestRows.Add(int64(rows))
	o.m.IngestLatency.Observe(float64(d) / float64(time.Millisecond))
}

func (o storeObserver) Materialized(rows int, d time.Duration) {
	o.m.SampleRows.Add(int64(rows))
	o.m.MaterializeLatency.Observe(float64(d) / float64(time.Millisecond))
}
