package serve

import (
	"expvar"
	"sync"
	"time"
)

// Metrics are the service's expvar counters, published once under the
// "blinkml" map so repeated server construction (tests, restarts in one
// process) reuses the same vars instead of panicking on re-publish.
type Metrics struct {
	JobsQueued    *expvar.Int // total jobs admitted
	JobsRunning   *expvar.Int // gauge: jobs currently training
	JobsSucceeded *expvar.Int
	JobsFailed    *expvar.Int
	JobsCancelled *expvar.Int

	TrainRuns         *expvar.Int   // completed training runs
	TrainLatencyMsSum *expvar.Float // sum of wall-clock train latencies (ms)
	SampleSizeSum     *expvar.Int   // sum of chosen sample sizes n
	SampleSizeLast    *expvar.Int   // most recent chosen n

	TuneRuns             *expvar.Int   // completed hyperparameter searches
	TuneLatencyMsSum     *expvar.Float // sum of wall-clock search latencies (ms)
	TuneCandidates       *expvar.Int   // candidates entered across searches
	TuneCandidatesPruned *expvar.Int   // candidates dropped by successive halving

	PredictRequests   *expvar.Int // predict calls
	PredictionsServed *expvar.Int // individual rows predicted
	ModelsStored      *expvar.Int // gauge: models in the registry

	DatasetsStored         *expvar.Int   // gauge: datasets in the store
	DatasetBytes           *expvar.Int   // gauge: store bytes on disk
	IngestRows             *expvar.Int   // rows ingested across uploads
	IngestMsSum            *expvar.Float // sum of ingest wall times (ms) — rows/sec is IngestRows/IngestMsSum
	SampleRows             *expvar.Int   // rows materialized from the store
	SampleMaterializeMsSum *expvar.Float // sum of sample-materialization latencies (ms)
}

var (
	metricsOnce sync.Once
	metrics     *Metrics
)

// sharedMetrics returns the process-wide metrics, publishing them on first
// use.
func sharedMetrics() *Metrics {
	metricsOnce.Do(func() {
		m := expvar.NewMap("blinkml")
		newInt := func(name string) *expvar.Int {
			v := new(expvar.Int)
			m.Set(name, v)
			return v
		}
		newFloat := func(name string) *expvar.Float {
			v := new(expvar.Float)
			m.Set(name, v)
			return v
		}
		metrics = &Metrics{
			JobsQueued:           newInt("jobs_queued"),
			JobsRunning:          newInt("jobs_running"),
			JobsSucceeded:        newInt("jobs_succeeded"),
			JobsFailed:           newInt("jobs_failed"),
			JobsCancelled:        newInt("jobs_cancelled"),
			TrainRuns:            newInt("train_runs"),
			TrainLatencyMsSum:    newFloat("train_latency_ms_sum"),
			SampleSizeSum:        newInt("sample_size_sum"),
			SampleSizeLast:       newInt("sample_size_last"),
			TuneRuns:             newInt("tune_runs"),
			TuneLatencyMsSum:     newFloat("tune_latency_ms_sum"),
			TuneCandidates:       newInt("tune_candidates"),
			TuneCandidatesPruned: newInt("tune_candidates_pruned"),
			PredictRequests:      newInt("predict_requests"),
			PredictionsServed:    newInt("predictions_served"),
			ModelsStored:         newInt("models_stored"),

			DatasetsStored:         newInt("datasets_stored"),
			DatasetBytes:           newInt("dataset_bytes"),
			IngestRows:             newInt("ingest_rows"),
			IngestMsSum:            newFloat("ingest_ms_sum"),
			SampleRows:             newInt("sample_rows_materialized"),
			SampleMaterializeMsSum: newFloat("sample_materialize_ms_sum"),
		}
	})
	return metrics
}

// storeObserver feeds store events into the expvar counters (it implements
// store.Observer).
type storeObserver struct{ m *Metrics }

func (o storeObserver) IngestDone(rows int, bytes int64, d time.Duration) {
	o.m.IngestRows.Add(int64(rows))
	o.m.IngestMsSum.Add(float64(d) / float64(time.Millisecond))
}

func (o storeObserver) Materialized(rows int, d time.Duration) {
	o.m.SampleRows.Add(int64(rows))
	o.m.SampleMaterializeMsSum.Add(float64(d) / float64(time.Millisecond))
}
