package serve

import (
	"expvar"
	"sync"
)

// Metrics are the service's expvar counters, published once under the
// "blinkml" map so repeated server construction (tests, restarts in one
// process) reuses the same vars instead of panicking on re-publish.
type Metrics struct {
	JobsQueued    *expvar.Int // total jobs admitted
	JobsRunning   *expvar.Int // gauge: jobs currently training
	JobsSucceeded *expvar.Int
	JobsFailed    *expvar.Int
	JobsCancelled *expvar.Int

	TrainRuns         *expvar.Int   // completed training runs
	TrainLatencyMsSum *expvar.Float // sum of wall-clock train latencies (ms)
	SampleSizeSum     *expvar.Int   // sum of chosen sample sizes n
	SampleSizeLast    *expvar.Int   // most recent chosen n

	TuneRuns             *expvar.Int   // completed hyperparameter searches
	TuneLatencyMsSum     *expvar.Float // sum of wall-clock search latencies (ms)
	TuneCandidates       *expvar.Int   // candidates entered across searches
	TuneCandidatesPruned *expvar.Int   // candidates dropped by successive halving

	PredictRequests   *expvar.Int // predict calls
	PredictionsServed *expvar.Int // individual rows predicted
	ModelsStored      *expvar.Int // gauge: models in the registry
}

var (
	metricsOnce sync.Once
	metrics     *Metrics
)

// sharedMetrics returns the process-wide metrics, publishing them on first
// use.
func sharedMetrics() *Metrics {
	metricsOnce.Do(func() {
		m := expvar.NewMap("blinkml")
		newInt := func(name string) *expvar.Int {
			v := new(expvar.Int)
			m.Set(name, v)
			return v
		}
		newFloat := func(name string) *expvar.Float {
			v := new(expvar.Float)
			m.Set(name, v)
			return v
		}
		metrics = &Metrics{
			JobsQueued:           newInt("jobs_queued"),
			JobsRunning:          newInt("jobs_running"),
			JobsSucceeded:        newInt("jobs_succeeded"),
			JobsFailed:           newInt("jobs_failed"),
			JobsCancelled:        newInt("jobs_cancelled"),
			TrainRuns:            newInt("train_runs"),
			TrainLatencyMsSum:    newFloat("train_latency_ms_sum"),
			SampleSizeSum:        newInt("sample_size_sum"),
			SampleSizeLast:       newInt("sample_size_last"),
			TuneRuns:             newInt("tune_runs"),
			TuneLatencyMsSum:     newFloat("tune_latency_ms_sum"),
			TuneCandidates:       newInt("tune_candidates"),
			TuneCandidatesPruned: newInt("tune_candidates_pruned"),
			PredictRequests:      newInt("predict_requests"),
			PredictionsServed:    newInt("predictions_served"),
			ModelsStored:         newInt("models_stored"),
		}
	})
	return metrics
}
