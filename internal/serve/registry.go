package serve

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"blinkml/internal/modelio"
)

// ErrModelNotFound is returned for lookups and deletes of unknown ids.
var ErrModelNotFound = errors.New("serve: model not found")

// Registry is a persistent, concurrency-safe model store. Every model is
// one file in dir — `m-<seq>.json` in the versioned modelio format — so a
// registry reopened on the same directory serves the same models it did
// before the restart. Stored models are treated as immutable: Get hands out
// shared records that callers must not mutate.
type Registry struct {
	dir string

	mu     sync.RWMutex
	models map[string]*modelio.Model
	seq    uint64 // last id issued (monotonic, survives restarts)
}

// OpenRegistry opens (creating if needed) a registry rooted at dir and
// loads every persisted model. Files that fail to decode are skipped with
// their error collected, not fatal: one corrupt file must not take down the
// whole store.
func OpenRegistry(dir string) (*Registry, error) {
	if dir == "" {
		return nil, errors.New("serve: registry needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: create registry dir: %w", err)
	}
	r := &Registry{dir: dir, models: make(map[string]*modelio.Model)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("serve: read registry dir: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "m-") || !strings.HasSuffix(name, ".json") {
			continue
		}
		id := strings.TrimSuffix(name, ".json")
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			continue
		}
		m, err := modelio.Decode(f)
		f.Close()
		if err != nil {
			continue // corrupt or future-version file; leave it on disk
		}
		r.models[id] = m
		if n, err := strconv.ParseUint(strings.TrimPrefix(id, "m-"), 10, 64); err == nil && n > r.seq {
			r.seq = n
		}
	}
	return r, nil
}

// Dir returns the backing directory.
func (r *Registry) Dir() string { return r.dir }

// Put stores m, persists it to disk (atomically: temp file + rename), and
// returns the assigned id. The id is reserved under the lock but the
// encode and disk write happen outside it, so persisting a large model
// never stalls concurrent Get/List — i.e. prediction traffic.
func (r *Registry) Put(m *modelio.Model) (string, error) {
	r.mu.Lock()
	r.seq++
	id := fmt.Sprintf("m-%06d", r.seq)
	r.mu.Unlock()

	path := filepath.Join(r.dir, id+".json")
	tmp, err := os.CreateTemp(r.dir, id+".tmp-*")
	if err != nil {
		return "", fmt.Errorf("serve: persist model: %w", err)
	}
	if err := modelio.Encode(tmp, m); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("serve: persist model: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("serve: persist model: %w", err)
	}

	r.mu.Lock()
	r.models[id] = m
	r.mu.Unlock()
	return id, nil
}

// Get returns the model for id.
func (r *Registry) Get(id string) (*modelio.Model, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.models[id]
	if !ok {
		return nil, ErrModelNotFound
	}
	return m, nil
}

// Delete evicts id from memory and disk.
func (r *Registry) Delete(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.models[id]; !ok {
		return ErrModelNotFound
	}
	delete(r.models, id)
	if err := os.Remove(filepath.Join(r.dir, id+".json")); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("serve: delete model file: %w", err)
	}
	return nil
}

// List returns the stored ids in ascending order.
func (r *Registry) List() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ids := make([]string, 0, len(r.models))
	for id := range r.models {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Len returns the number of stored models.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.models)
}
