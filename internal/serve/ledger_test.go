package serve

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"blinkml/internal/obs"
)

// TestJobLedgerDeterministic: the same store-backed train request run twice
// at a fixed seed produces ledgers whose deterministic fields — rows and
// bytes materialized, kernel calls, flops — are identical, while the job
// status carries a non-empty resources stanza either way. This is the
// attribution analogue of the model-bits determinism the repo already
// guarantees.
func TestJobLedgerDeterministic(t *testing.T) {
	s, err := New(Config{Dir: t.TempDir(), Workers: 1, QueueDepth: 8})
	if err != nil {
		t.Fatalf("new server: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		s.Close()
		ts.Close()
	}()

	dsID := uploadDataset(t, s)
	req := TrainRequest{
		Model:   modelSpec("logistic"),
		Dataset: DatasetRef{ID: dsID},
		Epsilon: 0.1,
		Delta:   0.05,
		Options: TrainOptions{Seed: 9, InitialSampleSize: 400},
	}

	var snaps []*obs.LedgerSnapshot
	for run := 0; run < 2; run++ {
		var ack TrainResponse
		if code := doJSON(t, ts.Client(), http.MethodPost, ts.URL+"/v1/train", req, &ack); code != http.StatusAccepted {
			t.Fatalf("run %d submit status %d", run, code)
		}
		st := waitJob(t, ts.Client(), ts.URL, ack.JobID, 60*time.Second)
		if st.State != JobSucceeded {
			t.Fatalf("run %d: %s (%s)", run, st.State, st.Error)
		}
		if st.Resources == nil {
			t.Fatalf("run %d: job status has no resources", run)
		}
		snaps = append(snaps, st.Resources)
	}

	a, b := snaps[0], snaps[1]
	if a.KernelCalls == 0 || a.Flops == 0 {
		t.Fatalf("no kernel charges recorded: %+v", a)
	}
	if a.RowsMaterialized == 0 || a.BytesMaterialized == 0 {
		t.Fatalf("store-backed train materialized nothing: %+v", a)
	}
	if a.CPUMs <= 0 {
		t.Fatalf("no pool busy time recorded: %+v", a)
	}
	if a.KernelCalls != b.KernelCalls || a.Flops != b.Flops ||
		a.RowsMaterialized != b.RowsMaterialized || a.BytesMaterialized != b.BytesMaterialized {
		t.Fatalf("deterministic ledger fields differ across identical runs:\n  %+v\n  %+v", a, b)
	}
	// Stage attribution: training charges must land in named stages.
	if len(a.Stages) == 0 {
		t.Fatalf("no stage breakdown: %+v", a)
	}
	var stageKernels int64
	for _, sc := range a.Stages {
		stageKernels += sc.KernelCalls
	}
	if stageKernels == 0 {
		t.Fatalf("stages carry no kernel calls: %+v", a.Stages)
	}
}

// TestFlightRecorderHTTP: a server armed with -flight-dir and a ~zero slow-
// request threshold dumps exactly one rate-limited bundle under a burst of
// requests, and the /v1/debug/flightrecords endpoints list and serve it.
func TestFlightRecorderHTTP(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "flight")
	s, err := New(Config{
		Dir:              t.TempDir(),
		Workers:          1,
		QueueDepth:       8,
		SlowRequestMs:    0.000001, // every request is "slow": deterministic trigger
		FlightDir:        dir,
		FlightCPUProfile: -1,
		Logger:           obs.Discard(),
	})
	if err != nil {
		t.Fatalf("new server: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		s.Close()
		ts.Close()
	}()

	// A burst of breaching requests; the recorder's rate limit (default 30s)
	// must collapse them into one bundle.
	for i := 0; i < 10; i++ {
		resp, err := ts.Client().Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		resp.Body.Close()
	}

	// The dump runs async off the trigger; wait for it to land.
	deadline := time.Now().Add(10 * time.Second)
	var list FlightList
	for {
		if code := doJSON(t, ts.Client(), http.MethodGet, ts.URL+"/v1/debug/flightrecords", nil, &list); code != http.StatusOK {
			t.Fatalf("list status %d", code)
		}
		if len(list.Bundles) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no bundle appeared in %s", dir)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if len(list.Bundles) != 1 {
		t.Fatalf("bundles = %d, want exactly 1 (rate-limited)", len(list.Bundles))
	}
	if list.Dumps != 1 {
		t.Fatalf("dump counter = %d, want 1", list.Dumps)
	}
	name := list.Bundles[0].Name
	if !strings.HasPrefix(name, "fr-") || !strings.Contains(name, "slow-request") {
		t.Fatalf("bundle name %q", name)
	}

	// Fetch one bundle's listing and one file through the API.
	var info obs.BundleInfo
	if code := doJSON(t, ts.Client(), http.MethodGet, ts.URL+"/v1/debug/flightrecords/"+name, nil, &info); code != http.StatusOK {
		t.Fatalf("bundle get status %d", code)
	}
	files := map[string]bool{}
	for _, bf := range info.Files {
		files[bf.Name] = true
	}
	for _, want := range []string{"meta.json", "flight.json", "goroutines.txt"} {
		if !files[want] {
			t.Fatalf("bundle files %v missing %s", files, want)
		}
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/debug/flightrecords/" + name + "/meta.json")
	if err != nil {
		t.Fatalf("file get: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "application/json" {
		t.Fatalf("file get status %d type %s", resp.StatusCode, resp.Header.Get("Content-Type"))
	}

	// Traversal through the HTTP surface is rejected, not served.
	resp2, err := ts.Client().Get(ts.URL + "/v1/debug/flightrecords/" + name + "/..%2f..%2fsecret")
	if err != nil {
		t.Fatalf("traversal get: %v", err)
	}
	resp2.Body.Close()
	if resp2.StatusCode == http.StatusOK {
		t.Fatal("path traversal through the bundle API succeeded")
	}

	// On-disk layout matches the advertised contract.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || !ents[0].IsDir() || ents[0].Name() != name {
		t.Fatalf("flight dir contents: %v", ents)
	}
}

// TestFlightRecorderDisabled: without -flight-dir the debug endpoints
// respond 404 with a hint rather than an empty listing.
func TestFlightRecorderDisabled(t *testing.T) {
	s, err := New(Config{Dir: t.TempDir(), Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatalf("new server: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		s.Close()
		ts.Close()
	}()
	resp, err := ts.Client().Get(ts.URL + "/v1/debug/flightrecords")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404 when disabled", resp.StatusCode)
	}
}
