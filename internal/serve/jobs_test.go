package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"blinkml/internal/cluster"
	"blinkml/internal/datagen"
	"blinkml/internal/dataset"
	"blinkml/internal/obs"
	"blinkml/internal/store"
)

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func ingestCSVOptions() store.IngestOptions {
	return store.IngestOptions{Format: "csv", Task: dataset.BinaryClassification, Name: "test"}
}

// TestJobListAndFilter drives GET /v1/jobs: all jobs in id order, and the
// ?state= filter.
func TestJobListAndFilter(t *testing.T) {
	s, err := New(Config{Dir: t.TempDir(), Workers: 2, QueueDepth: 8})
	if err != nil {
		t.Fatalf("new server: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		s.Close()
		ts.Close()
	}()

	good := TrainRequest{
		Model:   modelSpec("logistic"),
		Dataset: DatasetRef{Synthetic: &SyntheticRef{Name: "higgs", Rows: 1500, Dim: 6, Seed: 2}},
		Epsilon: 0.1,
		Options: TrainOptions{Seed: 2, InitialSampleSize: 300},
	}
	bad := good
	bad.Model = modelSpec("logistic")
	bad.Dataset = DatasetRef{Synthetic: &SyntheticRef{Name: "counts", Rows: 500, Dim: 4, Seed: 1}} // regression labels: training fails

	var a1, a2 TrainResponse
	if code := doJSON(t, ts.Client(), http.MethodPost, ts.URL+"/v1/train", good, &a1); code != http.StatusAccepted {
		t.Fatalf("submit 1 status %d", code)
	}
	if code := doJSON(t, ts.Client(), http.MethodPost, ts.URL+"/v1/train", bad, &a2); code != http.StatusAccepted {
		t.Fatalf("submit 2 status %d", code)
	}
	waitJob(t, ts.Client(), ts.URL, a1.JobID, 60*time.Second)
	waitJob(t, ts.Client(), ts.URL, a2.JobID, 60*time.Second)

	var all JobList
	if code := doJSON(t, ts.Client(), http.MethodGet, ts.URL+"/v1/jobs", nil, &all); code != http.StatusOK {
		t.Fatalf("list status %d", code)
	}
	if len(all.Jobs) != 2 {
		t.Fatalf("listed %d jobs, want 2", len(all.Jobs))
	}
	if all.Jobs[0].ID != a1.JobID || all.Jobs[1].ID != a2.JobID {
		t.Fatalf("list order %s, %s; want %s, %s", all.Jobs[0].ID, all.Jobs[1].ID, a1.JobID, a2.JobID)
	}

	var failed JobList
	if code := doJSON(t, ts.Client(), http.MethodGet, ts.URL+"/v1/jobs?state=failed", nil, &failed); code != http.StatusOK {
		t.Fatalf("filtered list status %d", code)
	}
	if len(failed.Jobs) != 1 || failed.Jobs[0].ID != a2.JobID {
		t.Fatalf("state=failed returned %+v, want just %s", failed.Jobs, a2.JobID)
	}
	var succeeded JobList
	doJSON(t, ts.Client(), http.MethodGet, ts.URL+"/v1/jobs?state=succeeded", nil, &succeeded)
	if len(succeeded.Jobs) != 1 || succeeded.Jobs[0].ID != a1.JobID {
		t.Fatalf("state=succeeded returned %+v, want just %s", succeeded.Jobs, a1.JobID)
	}

	// Unknown filter values are rejected, not silently empty.
	var er ErrorResponse
	if code := doJSON(t, ts.Client(), http.MethodGet, ts.URL+"/v1/jobs?state=done", nil, &er); code != http.StatusBadRequest {
		t.Fatalf("bad filter status %d, want 400", code)
	}
}

// uploadDataset ingests a small CSV into the server's store and returns its
// id.
func uploadDataset(t *testing.T, s *Server) string {
	t.Helper()
	ds, err := datagen.Generate("higgs", datagen.Config{Rows: 2000, Dim: 6, Seed: 3})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	var sb strings.Builder
	for i := 0; i < ds.Len(); i++ {
		row := make([]float64, ds.Dim)
		ds.X[i].AddTo(row, 1)
		for _, v := range row {
			sb.WriteString(formatFloat(v))
			sb.WriteByte(',')
		}
		sb.WriteString(formatFloat(ds.Y[i]))
		sb.WriteByte('\n')
	}
	h, err := s.Store().Ingest(strings.NewReader(sb.String()), ingestCSVOptions())
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	return h.ID
}

// TestDatasetDeleteRefusedWhileReferenced: a dataset backing a queued or
// running job returns 409 with the job ids; once the job is gone the delete
// succeeds.
func TestDatasetDeleteRefusedWhileReferenced(t *testing.T) {
	// A cluster-mode server with no workers keeps the job deterministically
	// in the running state (blocked on the remote task) for as long as the
	// test needs.
	s, ts := newClusterServer(t, clusterTestConfig())
	id := uploadDataset(t, s)

	req := TrainRequest{
		Model:   modelSpec("logistic"),
		Dataset: DatasetRef{ID: id},
		Epsilon: 0.1,
		Options: TrainOptions{Seed: 2, InitialSampleSize: 300},
	}
	var ack TrainResponse
	if code := doJSON(t, ts.Client(), http.MethodPost, ts.URL+"/v1/train", req, &ack); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}

	// Whether the job is still queued or already running, the delete must
	// be refused with the referencing job id.
	var er ErrorResponse
	code := doJSON(t, ts.Client(), http.MethodDelete, ts.URL+"/v1/datasets/"+id, nil, &er)
	if code != http.StatusConflict {
		t.Fatalf("delete status %d, want 409", code)
	}
	if len(er.Jobs) != 1 || er.Jobs[0] != ack.JobID {
		t.Fatalf("409 jobs = %v, want [%s]", er.Jobs, ack.JobID)
	}
	if !strings.Contains(er.Error, ack.JobID) {
		t.Fatalf("409 error %q does not name the job", er.Error)
	}

	// Cancel the job; once it is terminal the delete goes through.
	if code := doJSON(t, ts.Client(), http.MethodDelete, ts.URL+"/v1/jobs/"+ack.JobID, nil, nil); code != http.StatusOK {
		t.Fatalf("cancel status %d", code)
	}
	waitJob(t, ts.Client(), ts.URL, ack.JobID, 30*time.Second)
	if code := doJSON(t, ts.Client(), http.MethodDelete, ts.URL+"/v1/datasets/"+id, nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete after cancel status %d, want 204", code)
	}
}

// TestQueueListAndDatasetTracking exercises the queue-level API directly:
// List order/filter and ActiveDatasetJobs lifecycle.
func TestQueueListAndDatasetTracking(t *testing.T) {
	q := NewQueue(1, 8, nil)
	defer q.Close()

	block := make(chan struct{})
	unblock := sync.OnceFunc(func() { close(block) })
	defer unblock() // Close() drains the worker only once the task can finish

	j1, err := q.Enqueue(fakeDatasetTask{ds: "d-000001", run: func(ctx context.Context) (TaskResult, error) {
		<-block
		return TaskResult{}, nil
	}})
	if err != nil {
		t.Fatalf("enqueue: %v", err)
	}
	j2, err := q.Enqueue(fakeDatasetTask{ds: "d-000001", run: func(ctx context.Context) (TaskResult, error) {
		return TaskResult{}, nil
	}})
	if err != nil {
		t.Fatalf("enqueue 2: %v", err)
	}

	// Wait for j1 to be picked up (j2 stays queued behind the one worker);
	// both must show as active referencers of the dataset.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := j1.Status(); st.State == JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("j1 never started: %s", j1.Status().State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if ids := q.ActiveDatasetJobs("d-000001"); len(ids) != 2 || ids[0] != j1.ID || ids[1] != j2.ID {
		t.Fatalf("ActiveDatasetJobs = %v, want [%s %s]", ids, j1.ID, j2.ID)
	}
	if ids := q.ActiveDatasetJobs("d-999999"); len(ids) != 0 {
		t.Fatalf("unrelated dataset has jobs: %v", ids)
	}
	if got := q.List(JobRunning); len(got) != 1 || got[0].ID != j1.ID {
		t.Fatalf("List(running) = %+v", got)
	}

	unblock()
	for {
		if ids := q.ActiveDatasetJobs("d-000001"); len(ids) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("jobs still active after completion: %v", q.ActiveDatasetJobs("d-000001"))
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := q.List(""); len(got) != 2 {
		t.Fatalf("List() = %d jobs, want 2", len(got))
	}
}

// fakeDatasetTask is a scriptable task carrying a dataset reference.
type fakeDatasetTask struct {
	ds  string
	run func(ctx context.Context) (TaskResult, error)
}

func (f fakeDatasetTask) Kind() string      { return "train" }
func (f fakeDatasetTask) datasetID() string { return f.ds }
func (f fakeDatasetTask) Run(ctx context.Context) (TaskResult, error) {
	return f.run(ctx)
}

// TestClusterWorkerGracefulShutdownRequeues: stopping a worker mid-task
// hands the task back; a replacement finishes the job.
func TestClusterWorkerGracefulShutdownRequeues(t *testing.T) {
	s, ts := newClusterServer(t, clusterTestConfig())

	// Slow-ish job so the shutdown lands mid-task (the lease wait below
	// guarantees it regardless).
	req := TrainRequest{
		Model:   modelSpec("maxent"),
		Dataset: DatasetRef{Synthetic: &SyntheticRef{Name: "mnist", Rows: 8000, Dim: 48, Seed: 3}},
		Epsilon: 0.05,
		Options: TrainOptions{Seed: 3, InitialSampleSize: 1000},
	}
	var ack TrainResponse
	if code := doJSON(t, ts.Client(), http.MethodPost, ts.URL+"/v1/train", req, &ack); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}

	w, err := cluster.NewWorker(cluster.WorkerConfig{
		Coordinator: ts.URL, Name: "leaving", DataDir: t.TempDir(),
		Log: obs.Discard(),
	})
	if err != nil {
		t.Fatalf("new worker: %v", err)
	}
	wctx, stopWorker := context.WithCancel(context.Background())
	workerDone := make(chan struct{})
	go func() { defer close(workerDone); _ = w.Run(wctx) }()

	// Wait until the task is leased (job running), then stop the worker.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if st := s.Coordinator().Status(); st.TasksLeased == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("task never leased")
		}
		time.Sleep(10 * time.Millisecond)
	}
	stopWorker()
	<-workerDone

	// The graceful handback requeues the task; a replacement completes it.
	startClusterWorker(t, ts.URL, "replacement")
	st := waitJob(t, ts.Client(), ts.URL, ack.JobID, 120*time.Second)
	if st.State != JobSucceeded {
		t.Fatalf("job after graceful shutdown: %s (%s)", st.State, st.Error)
	}
}
