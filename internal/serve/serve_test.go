package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"blinkml/internal/datagen"
	"blinkml/internal/modelio"
)

func modelSpec(name string) modelio.SpecJSON { return modelio.SpecJSON{Name: name} }

// doJSON issues a request with a JSON body and decodes the JSON response.
func doJSON(t *testing.T, client *http.Client, method, url string, body, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal body: %v", err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	if out != nil && len(raw) > 0 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: unmarshal %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode
}

// waitJob polls the job endpoint until the job reaches a terminal state.
func waitJob(t *testing.T, client *http.Client, base, jobID string, timeout time.Duration) JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var st JobStatus
		if code := doJSON(t, client, http.MethodGet, base+"/v1/jobs/"+jobID, nil, &st); code != http.StatusOK {
			t.Fatalf("job poll status %d", code)
		}
		if st.Done() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", jobID, st.State, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// inlineHiggs converts a small synthetic binary-classification workload
// into an inline upload plus a probe batch for prediction checks.
func inlineHiggs(t *testing.T, rows int) (*InlineData, [][]float64) {
	t.Helper()
	ds, err := datagen.Generate("higgs", datagen.Config{Rows: rows, Dim: 10, Seed: 3})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	inline := &InlineData{Task: "binary", X: make([][]float64, ds.Len()), Y: ds.Y}
	for i := 0; i < ds.Len(); i++ {
		row := make([]float64, ds.Dim)
		ds.X[i].AddTo(row, 1)
		inline.X[i] = row
	}
	return inline, inline.X[:100]
}

// TestServeFullLoop drives the whole service end to end: enqueue a train
// job against a synthetic workload, poll it to completion, fetch the
// model, and run a batched predict — then reopens the registry from the
// same directory (a simulated restart) and checks the model still serves
// identical predictions.
func TestServeFullLoop(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{Dir: dir, Workers: 2, QueueDepth: 8})
	if err != nil {
		t.Fatalf("new server: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	client := ts.Client()

	inline, probe := inlineHiggs(t, 1500)
	trainReq := TrainRequest{
		Model:   modelio.SpecJSON{Name: "logistic", Reg: 0.001},
		Dataset: DatasetRef{Inline: inline},
		Epsilon: 0.1,
		Delta:   0.05,
		Options: TrainOptions{Seed: 5, InitialSampleSize: 300},
	}
	var tr TrainResponse
	if code := doJSON(t, client, http.MethodPost, ts.URL+"/v1/train", trainReq, &tr); code != http.StatusAccepted {
		t.Fatalf("train status %d", code)
	}
	if tr.JobID == "" || tr.State != JobQueued {
		t.Fatalf("train response %+v", tr)
	}

	st := waitJob(t, client, ts.URL, tr.JobID, 60*time.Second)
	if st.State != JobSucceeded {
		t.Fatalf("job %+v, want succeeded", st)
	}
	if st.ModelID == "" || st.Diagnostics == nil || st.Diagnostics.TotalMs <= 0 {
		t.Fatalf("missing model id or diagnostics: %+v", st)
	}

	var info ModelInfo
	if code := doJSON(t, client, http.MethodGet, ts.URL+"/v1/models/"+st.ModelID, nil, &info); code != http.StatusOK {
		t.Fatalf("model get status %d", code)
	}
	if info.Spec.Name != "logistic" || info.Dim != 10 || info.SampleSize <= 0 || info.PoolSize <= info.SampleSize/2 {
		t.Fatalf("model info %+v", info)
	}
	if len(info.Theta) != 0 {
		t.Fatal("theta included without ?theta=1")
	}
	var withTheta ModelInfo
	doJSON(t, client, http.MethodGet, ts.URL+"/v1/models/"+st.ModelID+"?theta=1", nil, &withTheta)
	if len(withTheta.Theta) != 10 {
		t.Fatalf("theta length %d, want 10", len(withTheta.Theta))
	}

	var pr PredictResponse
	if code := doJSON(t, client, http.MethodPost, ts.URL+"/v1/models/"+st.ModelID+"/predict", PredictRequest{Rows: probe}, &pr); code != http.StatusOK {
		t.Fatalf("predict status %d", code)
	}
	if len(pr.Predictions) != len(probe) {
		t.Fatalf("%d predictions for %d rows", len(pr.Predictions), len(probe))
	}
	for i, p := range pr.Predictions {
		if p != 0 && p != 1 {
			t.Fatalf("prediction %d = %v, want a class in {0,1}", i, p)
		}
	}

	var h Health
	if code := doJSON(t, client, http.MethodGet, ts.URL+"/healthz", nil, &h); code != http.StatusOK || h.Status != "ok" || h.Models < 1 || h.Parallelism < 1 {
		t.Fatalf("healthz %+v", h)
	}
	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(raw), "blinkml") || !strings.Contains(string(raw), "predictions_served") {
		t.Fatalf("metrics output missing blinkml counters: %.200s", raw)
	}

	// Simulated restart: a fresh server over the same directory must load
	// the persisted model and predict identically.
	ts.Close()
	s.Close()
	s2, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	var pr2 PredictResponse
	if code := doJSON(t, ts2.Client(), http.MethodPost, ts2.URL+"/v1/models/"+st.ModelID+"/predict", PredictRequest{Rows: probe}, &pr2); code != http.StatusOK {
		t.Fatalf("predict after restart: status %d", code)
	}
	for i := range pr.Predictions {
		if pr.Predictions[i] != pr2.Predictions[i] {
			t.Fatalf("row %d: prediction changed across restart (%v -> %v)", i, pr.Predictions[i], pr2.Predictions[i])
		}
	}

	// Evict and verify 404 + gone from disk-backed listing.
	if code := doJSON(t, ts2.Client(), http.MethodDelete, ts2.URL+"/v1/models/"+st.ModelID, nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete status %d", code)
	}
	if code := doJSON(t, ts2.Client(), http.MethodGet, ts2.URL+"/v1/models/"+st.ModelID, nil, nil); code != http.StatusNotFound {
		t.Fatalf("deleted model still served (status %d)", code)
	}
	var list ModelList
	doJSON(t, ts2.Client(), http.MethodGet, ts2.URL+"/v1/models", nil, &list)
	for _, m := range list.Models {
		if m.ID == st.ModelID {
			t.Fatal("deleted model still listed")
		}
	}
}

// TestServeCancelStopsTraining enqueues a deliberately huge training job
// (full-pool maxent on a large synthetic MNIST), cancels it mid-run over
// HTTP, and checks the job reaches the cancelled state far sooner than the
// training could possibly have finished — i.e. the job's context actually
// stops the optimizer.
func TestServeCancelStopsTraining(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a multi-minute training job to cancel")
	}
	s, err := New(Config{Dir: t.TempDir(), Workers: 1})
	if err != nil {
		t.Fatalf("new server: %v", err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	// Full-pool training (n0 >= rows) on 40k x 784 with 10 classes: minutes
	// of L-BFGS work if left alone.
	trainReq := TrainRequest{
		Model:   modelio.SpecJSON{Name: "maxent", Classes: 10, Reg: 0.001},
		Dataset: DatasetRef{Synthetic: &SyntheticRef{Name: "mnist", Rows: 40000, Seed: 11}},
		Epsilon: 0.01,
		Options: TrainOptions{Seed: 11, InitialSampleSize: 1 << 30, MaxIters: 5000},
	}
	var tr TrainResponse
	if code := doJSON(t, client, http.MethodPost, ts.URL+"/v1/train", trainReq, &tr); code != http.StatusAccepted {
		t.Fatalf("train status %d", code)
	}

	// Wait until the job is actually running (dataset generation + first
	// optimizer iterations).
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st JobStatus
		doJSON(t, client, http.MethodGet, ts.URL+"/v1/jobs/"+tr.JobID, nil, &st)
		if st.State == JobRunning {
			break
		}
		if st.Done() {
			t.Fatalf("job finished before cancel: %+v", st)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(20 * time.Millisecond)
	}

	cancelAt := time.Now()
	var st JobStatus
	if code := doJSON(t, client, http.MethodDelete, ts.URL+"/v1/jobs/"+tr.JobID, nil, &st); code != http.StatusOK {
		t.Fatalf("cancel status %d", code)
	}
	final := waitJob(t, client, ts.URL, tr.JobID, 60*time.Second)
	if final.State != JobCancelled {
		t.Fatalf("job %+v, want cancelled", final)
	}
	if took := time.Since(cancelAt); took > 45*time.Second {
		t.Fatalf("cancellation took %v; context is not stopping the optimizer", took)
	}
	// No model must have been stored for the cancelled job.
	if final.ModelID != "" || s.Registry().Len() != 0 {
		t.Fatalf("cancelled job left a model behind: %+v (registry %d)", final, s.Registry().Len())
	}
}

// TestServeRequestValidation exercises the error paths.
func TestServeRequestValidation(t *testing.T) {
	s, err := New(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("new server: %v", err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	cases := []struct {
		name string
		req  TrainRequest
	}{
		{"unknown model", TrainRequest{Model: modelSpec("svm"), Epsilon: 0.1,
			Dataset: DatasetRef{Synthetic: &SyntheticRef{Name: "higgs"}}}},
		{"bad epsilon", TrainRequest{Model: modelSpec("logistic"), Epsilon: 2,
			Dataset: DatasetRef{Synthetic: &SyntheticRef{Name: "higgs"}}}},
		{"missing dataset", TrainRequest{Model: modelSpec("logistic"), Epsilon: 0.1}},
		{"both datasets", TrainRequest{Model: modelSpec("logistic"), Epsilon: 0.1,
			Dataset: DatasetRef{Synthetic: &SyntheticRef{Name: "higgs"}, Inline: &InlineData{Task: "binary", X: [][]float64{{1}}, Y: []float64{1}}}}},
		{"bad task", TrainRequest{Model: modelSpec("logistic"), Epsilon: 0.1,
			Dataset: DatasetRef{Inline: &InlineData{Task: "clustering", X: [][]float64{{1}}}}}},
	}
	for _, tc := range cases {
		var er ErrorResponse
		if code := doJSON(t, client, http.MethodPost, ts.URL+"/v1/train", tc.req, &er); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, code)
		} else if er.Error == "" {
			t.Errorf("%s: empty error body", tc.name)
		}
	}

	if code := doJSON(t, client, http.MethodGet, ts.URL+"/v1/jobs/j-999999", nil, nil); code != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", code)
	}
	if code := doJSON(t, client, http.MethodDelete, ts.URL+"/v1/jobs/j-999999", nil, nil); code != http.StatusNotFound {
		t.Errorf("cancel unknown job: status %d, want 404", code)
	}
	if code := doJSON(t, client, http.MethodGet, ts.URL+"/v1/models/m-999999", nil, nil); code != http.StatusNotFound {
		t.Errorf("unknown model: status %d, want 404", code)
	}
	if code := doJSON(t, client, http.MethodPost, ts.URL+"/v1/models/m-999999/predict", PredictRequest{Rows: [][]float64{{1}}}, nil); code != http.StatusNotFound {
		t.Errorf("predict unknown model: status %d, want 404", code)
	}
}

// TestServeStructuredErrors checks every error path returns a structured
// JSON body ({"error": ...}) with the right status code — malformed
// payloads, wrong feature dimensions, and unknown model/job ids alike.
func TestServeStructuredErrors(t *testing.T) {
	s, err := New(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("new server: %v", err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	// Train one tiny model so predict paths have a real target.
	inline, _ := inlineHiggs(t, 600)
	var tr TrainResponse
	doJSON(t, client, http.MethodPost, ts.URL+"/v1/train", TrainRequest{
		Model:   modelSpec("logistic"),
		Dataset: DatasetRef{Inline: inline},
		Epsilon: 0.2,
		Options: TrainOptions{Seed: 1, InitialSampleSize: 200},
	}, &tr)
	st := waitJob(t, client, ts.URL, tr.JobID, 60*time.Second)
	if st.State != JobSucceeded {
		t.Fatalf("setup job %+v", st)
	}
	predictURL := ts.URL + "/v1/models/" + st.ModelID + "/predict"

	// checkError posts raw bytes and asserts status + structured JSON error.
	checkError := func(name, method, url string, body []byte, wantStatus int) {
		t.Helper()
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, url, rd)
		if err != nil {
			t.Fatalf("%s: new request: %v", name, err)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Errorf("%s: status %d, want %d", name, resp.StatusCode, wantStatus)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: content type %q, want application/json", name, ct)
		}
		raw, _ := io.ReadAll(resp.Body)
		var er ErrorResponse
		if err := json.Unmarshal(raw, &er); err != nil || er.Error == "" {
			t.Errorf("%s: body %q is not a structured error", name, raw)
		}
	}

	// Malformed payloads (unparsable JSON, unknown fields).
	checkError("predict garbage body", http.MethodPost, predictURL, []byte("{not json"), http.StatusBadRequest)
	checkError("predict unknown field", http.MethodPost, predictURL, []byte(`{"rowz": [[1]]}`), http.StatusBadRequest)
	checkError("train garbage body", http.MethodPost, ts.URL+"/v1/train", []byte("]["), http.StatusBadRequest)
	checkError("tune garbage body", http.MethodPost, ts.URL+"/v1/tune", []byte("{{"), http.StatusBadRequest)

	// Wrong feature dimension and non-finite features.
	wrongDim, _ := json.Marshal(PredictRequest{Rows: [][]float64{{1, 2, 3}}})
	checkError("predict wrong dim", http.MethodPost, predictURL, wrongDim, http.StatusBadRequest)
	checkError("predict empty batch", http.MethodPost, predictURL, []byte(`{"rows": []}`), http.StatusBadRequest)
	huge := []byte(`{"rows": [[1,2,3,4,5,6,7,8,9,1e999]]}`)
	checkError("predict out-of-range feature", http.MethodPost, predictURL, huge, http.StatusBadRequest)

	// Unknown model and job ids, across every verb that takes one.
	checkError("unknown model get", http.MethodGet, ts.URL+"/v1/models/m-424242", nil, http.StatusNotFound)
	checkError("unknown model delete", http.MethodDelete, ts.URL+"/v1/models/m-424242", nil, http.StatusNotFound)
	wellFormed, _ := json.Marshal(PredictRequest{Rows: [][]float64{{1}}})
	checkError("unknown model predict", http.MethodPost, ts.URL+"/v1/models/m-424242/predict", wellFormed, http.StatusNotFound)
	checkError("unknown job get", http.MethodGet, ts.URL+"/v1/jobs/j-424242", nil, http.StatusNotFound)
	checkError("unknown job cancel", http.MethodDelete, ts.URL+"/v1/jobs/j-424242", nil, http.StatusNotFound)
}

// TestPredictShapeValidation trains one tiny model and checks malformed
// predict batches are rejected.
func TestPredictShapeValidation(t *testing.T) {
	s, err := New(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("new server: %v", err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	inline, _ := inlineHiggs(t, 600)
	var tr TrainResponse
	doJSON(t, client, http.MethodPost, ts.URL+"/v1/train", TrainRequest{
		Model:   modelSpec("logistic"),
		Dataset: DatasetRef{Inline: inline},
		Epsilon: 0.2,
		Options: TrainOptions{Seed: 1, InitialSampleSize: 200},
	}, &tr)
	st := waitJob(t, client, ts.URL, tr.JobID, 60*time.Second)
	if st.State != JobSucceeded {
		t.Fatalf("job %+v", st)
	}
	url := fmt.Sprintf("%s/v1/models/%s/predict", ts.URL, st.ModelID)
	if code := doJSON(t, client, http.MethodPost, url, PredictRequest{}, nil); code != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", code)
	}
	if code := doJSON(t, client, http.MethodPost, url, PredictRequest{Rows: [][]float64{{1, 2}}}, nil); code != http.StatusBadRequest {
		t.Errorf("wrong dim: status %d, want 400", code)
	}
}
