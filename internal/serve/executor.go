package serve

import (
	"context"
	"errors"
	"time"

	"blinkml/internal/cluster"
	"blinkml/internal/core"
	"blinkml/internal/datagen"
	"blinkml/internal/obs"
	"blinkml/internal/optimize"
	"blinkml/internal/tune"
)

// executor is where a queued job's work actually runs. The queue stays the
// single admission/cancellation point; the executor decides *where*
// training happens: in this process (localExecutor — the default, exactly
// the pre-cluster behavior) or fanned out to cluster workers
// (clusterExecutor, when the server runs as a coordinator).
type executor interface {
	execTrain(ctx context.Context, req TrainRequest) (TaskResult, error)
	execTune(ctx context.Context, req TuneRequest) (TaskResult, error)
}

// trainCoreOptions maps a train request to core options (shared by both
// executors so the contract is identical wherever the job runs).
func trainCoreOptions(req TrainRequest) core.Options {
	return core.Options{
		Epsilon:           req.Epsilon,
		Delta:             req.Delta,
		Seed:              req.Options.Seed,
		InitialSampleSize: req.Options.InitialSampleSize,
		MinSampleSize:     req.Options.MinSampleSize,
		WarmStart:         req.Options.WarmStart,
		Optimizer:         optimize.Options{MaxIters: req.Options.MaxIters},
	}
}

// tuneConfig maps a tune request to a search config. The queue's worker
// pool is the service's concurrency budget; a tune job's internal training
// pool must not multiply it, so the per-request worker count is clamped to
// the server's own worker setting.
func (s *Server) tuneConfig(req TuneRequest) tune.Config {
	tf := req.Options.TestFraction
	if tf == 0 {
		tf = 0.15
	}
	workers := req.Options.Workers
	if workers <= 0 || workers > s.cfg.Workers {
		workers = s.cfg.Workers
	}
	return tune.Config{
		Train: core.Options{
			Epsilon:           req.Epsilon,
			Delta:             req.Delta,
			Seed:              req.Options.Seed,
			InitialSampleSize: req.Options.InitialSampleSize,
			TestFraction:      tf,
			Optimizer:         optimize.Options{MaxIters: req.Options.MaxIters},
		},
		Workers: workers,
		Halving: req.Options.Halving,
		Rungs:   req.Options.Rungs,
		Eta:     req.Options.Eta,
		Seed:    req.Options.Seed,
	}
}

// observeJobLedger distributes a finishing job's ledger totals into the
// per-family cost histograms (blinkml_job_cpu_ms / blinkml_job_alloc_bytes).
// family comes from the model spec, so the label set stays bounded.
func (s *Server) observeJobLedger(ctx context.Context, family string) {
	l := obs.LedgerFrom(ctx)
	if l == nil {
		return
	}
	snap := l.Snapshot()
	s.m.JobCPUFamily.With(family).Observe(snap.CPUMs)
	s.m.JobAllocFamily.With(family).Observe(float64(snap.BytesMaterialized))
}

// finishTune registers the search winner and builds the job result (shared
// executor tail). dim is the dataset's feature dimension; ref and opts
// feed the winner's audit record so a replay can rebuild the search's
// training environment.
func (s *Server) finishTune(ctx context.Context, res *tune.Result, dim int, ref DatasetRef, opts core.Options, elapsed time.Duration) (TaskResult, error) {
	s.m.TuneRuns.Add(1)
	s.m.TuneLatency.Observe(float64(elapsed) / float64(time.Millisecond))
	s.m.TuneCandidates.Add(int64(res.Evaluated))
	s.m.TuneCandidatesPruned.Add(int64(res.Pruned))
	best := res.Best
	endReg := obs.StartSpan(ctx, "registry")
	id, err := s.registerModel(ctx, "tune", best.Spec, best.Theta, dim, ref, opts, &core.Result{
		SampleSize:       best.SampleSize,
		PoolSize:         best.PoolSize,
		EstimatedEpsilon: best.EstimatedEpsilon,
		UsedInitialModel: best.UsedInitialModel,
		Diag:             best.Diag,
	})
	endReg()
	if err != nil {
		return TaskResult{}, err
	}
	rep, err := NewTuneReport(res)
	if err != nil {
		return TaskResult{}, err
	}
	s.observeJobLedger(ctx, best.Spec.Name())
	return TaskResult{
		ModelID:     id,
		Diagnostics: NewPhaseBreakdown(best.Diag),
		Tune:        rep,
	}, nil
}

// localExecutor runs jobs in-process — the pre-cluster path, bit for bit.
type localExecutor struct{ s *Server }

func (e localExecutor) execTrain(ctx context.Context, req TrainRequest) (TaskResult, error) {
	s := e.s
	spec, err := req.Model.Spec()
	if err != nil {
		return TaskResult{}, err
	}
	src, err := s.buildSource(req.Dataset)
	if err != nil {
		return TaskResult{}, err
	}
	opts := trainCoreOptions(req)
	start := time.Now()
	res, err := core.TrainSourceContext(ctx, spec, src, opts)
	if err != nil {
		return TaskResult{}, err
	}
	elapsed := float64(time.Since(start)) / float64(time.Millisecond)
	s.m.TrainRuns.Add(1)
	s.m.TrainLatency.Observe(elapsed)
	s.m.TrainLatencyFamily.With(spec.Name()).Observe(elapsed)
	s.m.SampleSizeSum.Add(int64(res.SampleSize))
	s.m.SampleSizeLast.Set(int64(res.SampleSize))
	endReg := obs.StartSpan(ctx, "registry")
	id, err := s.registerModel(ctx, "train", spec, res.Theta, src.Meta().Dim, req.Dataset, opts, res)
	endReg()
	if err != nil {
		return TaskResult{}, err
	}
	s.observeJobLedger(ctx, spec.Name())
	return TaskResult{ModelID: id, Diagnostics: NewPhaseBreakdown(res.Diag)}, nil
}

func (e localExecutor) execTune(ctx context.Context, req TuneRequest) (TaskResult, error) {
	s := e.s
	space, err := req.Space.Space()
	if err != nil {
		return TaskResult{}, err
	}
	src, err := s.buildSource(req.Dataset)
	if err != nil {
		return TaskResult{}, err
	}
	cfg := s.tuneConfig(req)
	start := time.Now()
	res, err := tune.RunSource(ctx, space, src, cfg)
	if err != nil {
		return TaskResult{}, err
	}
	return s.finishTune(ctx, res, src.Meta().Dim, req.Dataset, cfg.Train, time.Since(start))
}

// clusterExecutor dispatches jobs to the embedded coordinator's workers. A
// train job becomes one remote task; a tune job keeps its leaderboard logic
// here and ships every trial (each halving rung, each contract training) as
// its own task, so one search spreads across the fleet.
type clusterExecutor struct {
	s     *Server
	coord *cluster.Coordinator
}

func (e *clusterExecutor) execTrain(ctx context.Context, req TrainRequest) (TaskResult, error) {
	s := e.s
	if _, err := req.Model.Spec(); err != nil {
		return TaskResult{}, err
	}
	ref, _, err := s.clusterDatasetRef(req.Dataset)
	if err != nil {
		return TaskResult{}, err
	}
	opts := trainCoreOptions(req)
	start := time.Now()
	id, err := e.coord.Submit(cluster.TaskSpec{Kind: cluster.KindTrain, Trace: obs.TraceID(ctx), Train: &cluster.TrainTask{
		Spec:    req.Model,
		Dataset: ref,
		Options: clusterTrainOptions(opts),
	}})
	if err != nil {
		return TaskResult{}, err
	}
	payload, err := e.coord.Await(ctx, id)
	if err != nil {
		return TaskResult{}, err
	}
	// The worker recorded its own pipeline spans and resource ledger; rejoin
	// both to this job, so the stage breakdown and the cost record cover
	// remote work too.
	obs.RecorderFrom(ctx).Add(payload.Spans)
	obs.LedgerFrom(ctx).Merge(payload.Ledger)
	m, err := cluster.DecodeModel(payload.Model)
	if err != nil {
		return TaskResult{}, err
	}
	res := &core.Result{
		Theta:            m.Theta,
		SampleSize:       m.SampleSize,
		EstimatedEpsilon: m.EstimatedEpsilon,
		UsedInitialModel: m.UsedInitialModel,
		PoolSize:         m.PoolSize,
		Diag:             m.Diag,
	}
	elapsed := float64(time.Since(start)) / float64(time.Millisecond)
	s.m.TrainRuns.Add(1)
	s.m.TrainLatency.Observe(elapsed)
	s.m.TrainLatencyFamily.With(m.Spec.Name()).Observe(elapsed)
	s.m.SampleSizeSum.Add(int64(res.SampleSize))
	s.m.SampleSizeLast.Set(int64(res.SampleSize))
	// The worker shipped the model through modelio; registering its decoded
	// spec (which carries trained derived state — PPCA's σ² — exactly as
	// the local path's spec instance would) re-encodes the same bytes, so
	// the registry entry is identical to a locally trained one.
	endReg := obs.StartSpan(ctx, "registry")
	mid, err := s.registerModel(ctx, "train", m.Spec, m.Theta, m.Dim, req.Dataset, opts, res)
	endReg()
	if err != nil {
		return TaskResult{}, err
	}
	s.observeJobLedger(ctx, m.Spec.Name())
	return TaskResult{ModelID: mid, Diagnostics: NewPhaseBreakdown(res.Diag)}, nil
}

func (e *clusterExecutor) execTune(ctx context.Context, req TuneRequest) (TaskResult, error) {
	s := e.s
	space, err := req.Space.Space()
	if err != nil {
		return TaskResult{}, err
	}
	ref, shape, err := s.clusterDatasetRef(req.Dataset)
	if err != nil {
		return TaskResult{}, err
	}
	cfg := s.tuneConfig(req)
	// tuneConfig's worker clamp protects local CPU, but cluster trials run
	// on remote machines: the right bound is the fleet's capacity (what can
	// actually execute at once), not this process's queue width. An
	// explicit request still wins; a little headroom keeps the queue fed
	// as workers join mid-search.
	if req.Options.Workers > 0 {
		cfg.Workers = req.Options.Workers
	} else if fleet := e.coord.TotalCapacity(); fleet > cfg.Workers {
		cfg.Workers = fleet + 2
	}
	runner := cluster.NewTrialRunner(e.coord, ref, clusterTrainOptions(cfg.Train), core.PoolSize(shape.rows, cfg.Train))
	start := time.Now()
	res, err := tune.SearchRunner(ctx, space, runner, cfg)
	if err != nil {
		return TaskResult{}, err
	}
	return s.finishTune(ctx, res, shape.dim, req.Dataset, cfg.Train, time.Since(start))
}

// dataShape is a dataset's rows × dim, known without materializing it.
type dataShape struct{ rows, dim int }

// clusterDatasetRef converts a request's dataset reference to the cluster
// wire form, pinning stored datasets to their content checksums, and
// reports the dataset's shape (what sizes a search's pool).
func (s *Server) clusterDatasetRef(ref DatasetRef) (cluster.DatasetRef, dataShape, error) {
	switch {
	case ref.ID != "":
		h, err := s.store.Get(ref.ID)
		if err != nil {
			return cluster.DatasetRef{}, dataShape{}, err
		}
		man := h.Manifest()
		return cluster.DatasetRef{
			ID:         ref.ID,
			Rows:       man.Rows,
			RowCRC32:   man.RowCRC32,
			IndexCRC32: man.IndexCRC32,
		}, dataShape{man.Rows, man.Dim}, nil
	case ref.Synthetic != nil:
		r := ref.Synthetic
		rows, dim, err := datagen.Shape(r.Name, datagen.Config{Rows: r.Rows, Dim: r.Dim})
		if err != nil {
			return cluster.DatasetRef{}, dataShape{}, err
		}
		return cluster.DatasetRef{Synthetic: &cluster.Synth{
			Name: r.Name, Rows: r.Rows, Dim: r.Dim, Seed: r.Seed,
		}}, dataShape{rows, dim}, nil
	case ref.Inline != nil:
		// Validated at admission, so the shape is trustworthy here.
		in := ref.Inline
		dim := in.Dim
		if len(in.X) > 0 {
			dim = len(in.X[0])
		} else if dim == 0 {
			for _, idx := range in.Indices {
				if n := len(idx); n > 0 && int(idx[n-1])+1 > dim {
					dim = int(idx[n-1]) + 1
				}
			}
		}
		return cluster.DatasetRef{Inline: &cluster.Inline{
			Task:    in.Task,
			X:       in.X,
			Dim:     in.Dim,
			Indices: in.Indices,
			Values:  in.Values,
			Y:       in.Y,
			Classes: in.Classes,
		}}, dataShape{in.Rows(), dim}, nil
	default:
		return cluster.DatasetRef{}, dataShape{}, errors.New("serve: missing dataset")
	}
}

// clusterTrainOptions maps core options to the wire subset workers rebuild
// them from.
func clusterTrainOptions(o core.Options) cluster.TrainOptions {
	return cluster.TrainOptions{
		Epsilon:           o.Epsilon,
		Delta:             o.Delta,
		Seed:              o.Seed,
		InitialSampleSize: o.InitialSampleSize,
		MinSampleSize:     o.MinSampleSize,
		MaxIters:          o.Optimizer.MaxIters,
		WarmStart:         o.WarmStart,
		TestFraction:      o.TestFraction,
	}
}
