package serve

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"log/slog"
	"net/http"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"blinkml/internal/audit"
	"blinkml/internal/cluster"
	"blinkml/internal/compute"
	"blinkml/internal/core"
	"blinkml/internal/datagen"
	"blinkml/internal/dataset"
	"blinkml/internal/modelio"
	"blinkml/internal/models"
	"blinkml/internal/obs"
	"blinkml/internal/store"
)

// Config sizes a Server. Dir is required; everything else has defaults.
type Config struct {
	// Dir is the model registry directory (created if missing).
	Dir string
	// DataDir is the dataset store directory (default: "datasets" under
	// Dir).
	DataDir string
	// Workers is the training worker-pool size (default 2).
	Workers int
	// QueueDepth bounds the training backlog; a full queue returns 503
	// (default 64).
	QueueDepth int
	// MaxBodyBytes caps request bodies (default 64 MiB — inline datasets
	// can be large).
	MaxBodyBytes int64
	// MaxUploadBytes caps POST /v1/datasets uploads (default 4 GiB — the
	// upload streams to disk and is never resident).
	MaxUploadBytes int64
	// Parallelism sets the process-wide compute-pool degree: the budget
	// every training kernel (matrix products, gradient accumulation,
	// statistics, probes, batched prediction) draws from, across all
	// concurrent jobs. 0 leaves the pool at its current setting (default
	// GOMAXPROCS). Job-level concurrency (Workers) and kernel-level
	// concurrency share this one budget: the pool hands out at most
	// Parallelism−1 helper goroutines process-wide, so W concurrent jobs
	// never fan out into W×Parallelism goroutines.
	Parallelism int
	// Cluster, when non-nil, runs the server as a cluster coordinator:
	// train and tune jobs are dispatched to registered blinkml-worker
	// processes instead of training in-process (tune jobs are decomposed to
	// per-trial tasks), and the cluster protocol is mounted under
	// /v1/cluster. Nil keeps the fully local, single-process behavior.
	Cluster *cluster.Config
	// Logger receives structured job/coordinator lifecycle events, scoped
	// per request by trace ID. Nil discards (tests, embedded servers);
	// blinkml-serve passes a real slog handler.
	Logger *slog.Logger
	// SpanLog, when non-empty, appends every finished job's spans to this
	// file as JSONL (one obs.Span object per line).
	SpanLog string
	// SpanLogMaxBytes caps the span log: when an append would push the file
	// past this size it is rotated (renamed to <SpanLog>.old, keeping one
	// prior generation) and restarted. 0 disables rotation.
	SpanLogMaxBytes int64
	// AuditDir is the guarantee-audit log directory (default: "audit" under
	// Dir). Every train/tune job appends a calibration record there.
	AuditDir string
	// AuditInterval, when positive, starts the background auditor: every
	// interval it replays a sample of not-yet-audited jobs — training the
	// full-data model and recording the realized ε — to measure empirical
	// (ε, δ) coverage. 0 (the default) keeps auditing on-demand only
	// (POST /v1/audit/replay, blinkml-audit replay).
	AuditInterval time.Duration
	// AuditFraction is the fraction of pending records a background pass
	// replays (deterministically sampled by model ID; default 1).
	AuditFraction float64
	// SlowRequestMs, when positive, logs a slog warning — route, method,
	// status, latency, and trace ID — for any HTTP request slower than this
	// many milliseconds. 0 (the default) disables slow-request logging.
	SlowRequestMs float64
	// SLOLatencyMs is the per-endpoint latency bound the sliding-window SLO
	// attainment gauge (blinkml_http_slo_latency_attainment) measures
	// against (default 250 ms).
	SLOLatencyMs float64
	// FlightDir, when non-empty, enables the flight recorder: a bounded
	// in-memory ring of recent completed requests/jobs (span trees + ledgers)
	// that, on an SLO-window breach or a slow-request hit, dumps a diagnostic
	// bundle — ring contents, goroutine dump, CPU + heap profiles, live job
	// ledgers — into a rotated subdirectory of FlightDir. Bundles are listed
	// and fetched via GET /v1/debug/flightrecords.
	FlightDir string
	// FlightRingSize bounds the recorder's entry ring (default 64).
	FlightRingSize int
	// FlightMinInterval rate-limits bundle dumps (default 30s).
	FlightMinInterval time.Duration
	// FlightMaxBundles caps on-disk bundles; older ones rotate out (default 8).
	FlightMaxBundles int
	// FlightCPUProfile is the CPU-profile window captured into each bundle
	// (default 5s; negative disables the CPU profile).
	FlightCPUProfile time.Duration
}

func (c Config) withDefaults() Config {
	if c.DataDir == "" && c.Dir != "" {
		c.DataDir = filepath.Join(c.Dir, "datasets")
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.MaxUploadBytes <= 0 {
		c.MaxUploadBytes = 4 << 30
	}
	if c.AuditDir == "" && c.Dir != "" {
		c.AuditDir = filepath.Join(c.Dir, "audit")
	}
	if c.SLOLatencyMs <= 0 {
		c.SLOLatencyMs = obs.DefaultSLOLatencyMs
	}
	return c
}

// Server is the blinkml-serve HTTP service: an async training job queue in
// front of the BlinkML coordinator, plus a persistent model registry for
// the models it produces.
type Server struct {
	cfg     Config
	reg     *Registry
	store   *store.Store
	queue   *Queue
	coord   *cluster.Coordinator // non-nil in cluster mode
	exec    executor
	mux     *http.ServeMux
	m       *Metrics
	log     *slog.Logger
	spanLog *obs.SpanLog // open -span-log sink, closed by Close
	audit   *audit.Log
	auditor *audit.Auditor
	flight  *obs.FlightRecorder // non-nil when Config.FlightDir is set
	started time.Time
}

// New opens the registry at cfg.Dir and the dataset store at cfg.DataDir
// (recovering persisted models and datasets) and starts the worker pool.
// Call Close to stop it.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Parallelism > 0 {
		compute.SetParallelism(cfg.Parallelism)
	}
	reg, err := OpenRegistry(cfg.Dir)
	if err != nil {
		return nil, err
	}
	st, err := store.Open(cfg.DataDir)
	if err != nil {
		return nil, err
	}
	log := cfg.Logger
	if log == nil {
		log = obs.Discard()
	}
	// The HTTP telemetry plane and the runtime collector are process-wide
	// singletons (like the expvar metric maps); reconfigure the shared
	// thresholds from this server's settings.
	obs.RegisterRuntimeMetrics()
	hm := obs.SharedHTTP()
	hm.SetSlowRequestThreshold(cfg.SlowRequestMs, log)
	hm.SetSLOLatencyThreshold(cfg.SLOLatencyMs)
	s := &Server{
		cfg:     cfg,
		reg:     reg,
		store:   st,
		m:       sharedMetrics(),
		log:     log,
		started: time.Now(),
	}
	st.SetObserver(storeObserver{s.m})
	// Gauges survive server reconstruction within one process (the expvar
	// singletons outlive the server), so resync them from the actual
	// registry/store state rather than trusting stale values.
	s.m.ModelsStored.Set(int64(reg.Len()))
	s.refreshStoreGauges()
	s.queue = NewQueue(cfg.Workers, cfg.QueueDepth, s.m)
	s.queue.Log = cfg.Logger // nil keeps job logs silent
	if cfg.FlightDir != "" {
		fr, err := obs.NewFlightRecorder(obs.FlightConfig{
			Dir:         cfg.FlightDir,
			RingSize:    cfg.FlightRingSize,
			MinInterval: cfg.FlightMinInterval,
			MaxBundles:  cfg.FlightMaxBundles,
			CPUProfile:  cfg.FlightCPUProfile,
			Ledgers:     s.queue.LiveLedgers,
			Logger:      log,
		})
		if err != nil {
			s.queue.Close()
			return nil, err
		}
		s.flight = fr
		s.queue.Flight = fr
		hm.SetFlightRecorder(fr)
	}
	if cfg.SpanLog != "" {
		sl, err := obs.OpenSpanLog(cfg.SpanLog, cfg.SpanLogMaxBytes)
		if err != nil {
			s.queue.Close()
			return nil, fmt.Errorf("serve: open span log: %w", err)
		}
		s.spanLog = sl
		s.queue.SpanSink = func(spans []obs.Span) {
			if err := sl.Write(spans); err != nil {
				log.Warn("span log write failed", "err", err)
			}
		}
	}
	if cfg.Cluster != nil {
		ccfg := *cfg.Cluster
		if ccfg.Logger == nil {
			ccfg.Logger = log
		}
		s.coord = cluster.NewCoordinator(ccfg, st)
		s.exec = &clusterExecutor{s: s, coord: s.coord}
	} else {
		s.exec = localExecutor{s: s}
	}
	al, err := audit.Open(cfg.AuditDir, log)
	if err != nil {
		s.queue.Close()
		if s.coord != nil {
			s.coord.Close()
		}
		_ = s.spanLog.Close()
		return nil, err
	}
	s.audit = al
	// Replays train the full-data model — in cluster mode that work fans
	// out to the fleet, locally it runs through the shared compute pool.
	var replayer audit.Replayer = audit.LocalReplayer{Resolve: s.resolveAuditSource}
	if s.coord != nil {
		replayer = clusterReplayer{s: s}
	}
	s.auditor = audit.NewAuditor(al, s.reg.Get, replayer, audit.Config{
		Fraction: cfg.AuditFraction,
		Interval: cfg.AuditInterval,
		Logger:   log,
	})
	s.auditor.Start()
	s.mux = http.NewServeMux()
	s.routes()
	return s, nil
}

// Handler returns the HTTP handler for the whole API.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the model store (used by the CLI and tests).
func (s *Server) Registry() *Registry { return s.reg }

// Store exposes the dataset store (used by the CLI and tests).
func (s *Server) Store() *store.Store { return s.store }

// Coordinator returns the embedded cluster coordinator (nil outside
// cluster mode).
func (s *Server) Coordinator() *cluster.Coordinator { return s.coord }

// Close cancels all outstanding jobs and waits for the workers to drain.
// In cluster mode the coordinator is closed first, so jobs blocked on
// remote tasks fail fast instead of waiting out their contexts.
func (s *Server) Close() {
	if s.flight != nil {
		// The shared HTTP plane outlives this server; disarm it so requests
		// against a later server cannot dump into this one's directory.
		obs.SharedHTTP().SetFlightRecorder(nil)
	}
	if s.auditor != nil {
		s.auditor.Close()
	}
	if s.coord != nil {
		s.coord.Close()
	}
	s.queue.Close()
	_ = s.spanLog.Close()
	if s.audit != nil {
		_ = s.audit.Close()
	}
}

func (s *Server) routes() {
	// Every route goes through the obs HTTP middleware under its mux
	// pattern sans method, so the blinkml_http_* route label set is exactly
	// the registered API surface — request paths can never mint a series.
	hm := obs.SharedHTTP()
	handle := func(pattern string, h http.Handler) {
		route := pattern[strings.IndexByte(pattern, ' ')+1:]
		s.mux.Handle(pattern, hm.Wrap(route, h))
	}
	handle("POST /v1/train", http.HandlerFunc(s.handleTrain))
	handle("POST /v1/tune", http.HandlerFunc(s.handleTune))
	handle("POST /v1/datasets", http.HandlerFunc(s.handleDatasetUpload))
	handle("GET /v1/datasets", http.HandlerFunc(s.handleDatasetList))
	handle("GET /v1/datasets/{id}", http.HandlerFunc(s.handleDatasetGet))
	handle("DELETE /v1/datasets/{id}", http.HandlerFunc(s.handleDatasetDelete))
	handle("GET /v1/jobs", http.HandlerFunc(s.handleJobList))
	handle("GET /v1/jobs/{id}", http.HandlerFunc(s.handleJobGet))
	handle("DELETE /v1/jobs/{id}", http.HandlerFunc(s.handleJobCancel))
	handle("GET /v1/models", http.HandlerFunc(s.handleModelList))
	handle("GET /v1/models/{id}", http.HandlerFunc(s.handleModelGet))
	handle("DELETE /v1/models/{id}", http.HandlerFunc(s.handleModelDelete))
	handle("POST /v1/models/{id}/predict", http.HandlerFunc(s.handlePredict))
	handle("GET /v1/audit", http.HandlerFunc(s.handleAuditSummary))
	handle("GET /v1/audit/records", http.HandlerFunc(s.handleAuditRecords))
	handle("POST /v1/audit/replay", http.HandlerFunc(s.handleAuditReplay))
	handle("GET /v1/debug/flightrecords", http.HandlerFunc(s.handleFlightList))
	handle("GET /v1/debug/flightrecords/{name}", http.HandlerFunc(s.handleFlightGet))
	handle("GET /v1/debug/flightrecords/{name}/{file}", http.HandlerFunc(s.handleFlightFile))
	handle("GET /healthz", http.HandlerFunc(s.handleHealthz))
	handle("GET /metrics", obs.MetricsHandler())
	handle("GET /metrics.json", expvar.Handler())
	if s.coord != nil {
		s.coord.Mount(s.mux)
	}
}

// trainTask is the queued form of POST /v1/train; its work runs through the
// server's executor — in-process by default, on cluster workers in
// coordinator mode.
type trainTask struct {
	s   *Server
	req TrainRequest
}

// Kind implements Task.
func (trainTask) Kind() string { return "train" }

// datasetID implements datasetTask.
func (t trainTask) datasetID() string { return t.req.Dataset.ID }

// Run implements Task.
func (t trainTask) Run(ctx context.Context) (TaskResult, error) {
	return t.s.exec.execTrain(ctx, t.req)
}

// tuneTask is the queued form of POST /v1/tune; like trainTask it runs
// through the server's executor.
type tuneTask struct {
	s   *Server
	req TuneRequest
}

// Kind implements Task.
func (tuneTask) Kind() string { return "tune" }

// datasetID implements datasetTask.
func (t tuneTask) datasetID() string { return t.req.Dataset.ID }

// Run implements Task.
func (t tuneTask) Run(ctx context.Context) (TaskResult, error) {
	return t.s.exec.execTune(ctx, t.req)
}

// registerModel persists a trained model, refreshes the stored-models
// gauge, and appends the job's guarantee-calibration record to the audit
// log. kind is "train" or "tune"; ref and opts are what a later replay
// needs to rebuild the identical training environment.
func (s *Server) registerModel(ctx context.Context, kind string, spec models.Spec, theta []float64, dim int, ref DatasetRef, opts core.Options, res *core.Result) (string, error) {
	regStart := time.Now()
	id, err := s.reg.Put(&modelio.Model{
		Spec:             spec,
		Theta:            theta,
		Dim:              dim,
		SampleSize:       res.SampleSize,
		PoolSize:         res.PoolSize,
		EstimatedEpsilon: res.EstimatedEpsilon,
		UsedInitialModel: res.UsedInitialModel,
		Diag:             res.Diag,
		CreatedAt:        time.Now().UTC(),
	})
	obs.LedgerFrom(ctx).ChargeRegistryIO(time.Since(regStart))
	if err != nil {
		return "", err
	}
	s.m.ModelsStored.Set(int64(s.reg.Len()))
	s.recordAudit(ctx, kind, id, spec, ref, opts, res)
	return id, nil
}

// recordAudit appends the calibration record for a freshly registered
// model. Audit is an observability plane: a failed append is logged, never
// surfaced — a full disk must not fail the training job that already
// produced a registered model.
func (s *Server) recordAudit(ctx context.Context, kind, id string, spec models.Spec, ref DatasetRef, opts core.Options, res *core.Result) {
	if s.audit == nil {
		return
	}
	sj, err := modelio.SpecToJSON(spec)
	if err != nil {
		s.log.Warn("audit record skipped: unencodable spec", "model", id, "err", err)
		return
	}
	dsJSON, err := json.Marshal(ref)
	if err != nil {
		dsJSON = nil
	}
	fp := ""
	if cref, _, err := s.clusterDatasetRef(ref); err == nil {
		fp = cref.Key()
	}
	o := opts.WithDefaults()
	rec := audit.Record{
		ModelID:          id,
		JobID:            obs.JobID(ctx),
		TraceID:          obs.TraceID(ctx),
		Kind:             kind,
		Family:           sj.Name,
		Spec:             sj,
		Dataset:          dsJSON,
		Fingerprint:      fp,
		Epsilon:          o.Epsilon,
		Delta:            o.Delta,
		K:                o.K,
		SampleSize:       res.SampleSize,
		PoolSize:         res.PoolSize,
		EpsilonHat:       res.EstimatedEpsilon,
		InitialEpsilon:   res.Diag.InitialEpsilon,
		UsedInitialModel: res.UsedInitialModel,
		Options:          audit.FromCore(o),
		CreatedAt:        time.Now().UTC(),
		// Snapshot at registration time: training is done; only the registry
		// I/O tail is still accruing.
		Resources: obs.LedgerFrom(ctx).Snapshot(),
	}
	if err := s.audit.Append(rec); err != nil {
		s.log.Warn("audit record append failed", "model", id, "err", err)
	}
}

// buildSource resolves a dataset reference to a Source: synthetic and
// inline data are materialized in memory; a dataset_id resolves to the
// store handle, which reads rows on demand.
func (s *Server) buildSource(ref DatasetRef) (dataset.Source, error) {
	switch {
	case ref.Synthetic != nil:
		r := ref.Synthetic
		return datagen.Generate(r.Name, datagen.Config{Rows: r.Rows, Dim: r.Dim, Seed: r.Seed})
	case ref.Inline != nil:
		return ref.Inline.Build()
	case ref.ID != "":
		return s.store.Get(ref.ID)
	default:
		return nil, errors.New("serve: missing dataset")
	}
}

func (s *Server) handleTrain(w http.ResponseWriter, r *http.Request) {
	var req TrainRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if !s.checkDatasetRef(w, req.Dataset) {
		return
	}
	s.enqueue(w, r, trainTask{s: s, req: req})
}

func (s *Server) handleTune(w http.ResponseWriter, r *http.Request) {
	var req TuneRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if !s.checkDatasetRef(w, req.Dataset) {
		return
	}
	s.enqueue(w, r, tuneTask{s: s, req: req})
}

// checkDatasetRef rejects a dataset_id that is not in the store at submit
// time, so the client gets a 404 immediately instead of a failed job later.
// (The id is re-resolved when the job runs; a delete racing the queue fails
// the job, which is the honest outcome.)
func (s *Server) checkDatasetRef(w http.ResponseWriter, ref DatasetRef) bool {
	if ref.ID == "" {
		return true
	}
	if _, err := s.store.Get(ref.ID); err != nil {
		writeError(w, http.StatusNotFound, err)
		return false
	}
	return true
}

// enqueue admits a task and writes the 202 acknowledgement (or the 503
// backpressure error). The trace ID is minted here — at API admission — or
// adopted from the request's X-Blinkml-Trace header, and echoed in both the
// response body and header.
func (s *Server) enqueue(w http.ResponseWriter, r *http.Request, task Task) {
	job, err := s.queue.EnqueueTrace(task, r.Header.Get(obs.TraceHeader))
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	s.log.Info("job enqueued", "job", job.ID, "kind", task.Kind(), "trace", job.Trace())
	w.Header().Set("Location", "/v1/jobs/"+job.ID)
	w.Header().Set(obs.TraceHeader, job.Trace())
	writeJSON(w, http.StatusAccepted, TrainResponse{JobID: job.ID, State: JobQueued, TraceID: job.Trace()})
}

// handleJobList is GET /v1/jobs: every known job, oldest first, optionally
// filtered with ?state=queued|running|succeeded|failed|cancelled.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	state := r.URL.Query().Get("state")
	switch state {
	case "", JobQueued, JobRunning, JobSucceeded, JobFailed, JobCancelled:
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("serve: unknown state filter %q (want queued|running|succeeded|failed|cancelled)", state))
		return
	}
	writeJSON(w, http.StatusOK, JobList{Jobs: s.queue.List(state)})
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	job, err := s.queue.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	st := job.Status()
	// Join the guarantee-audit view: the job's calibration record and, once
	// the auditor has replayed it, the realized coverage sample.
	if st.ModelID != "" && s.audit != nil {
		if e, ok := s.audit.Get(st.ModelID); ok {
			st.Audit = &e
		}
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.queue.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleModelList(w http.ResponseWriter, r *http.Request) {
	ids := s.reg.List()
	list := ModelList{Models: make([]ModelInfo, 0, len(ids))}
	for _, id := range ids {
		m, err := s.reg.Get(id)
		if err != nil {
			continue // deleted between List and Get
		}
		info, err := NewModelInfo(id, m)
		if err != nil {
			continue
		}
		list.Models = append(list.Models, info)
	}
	writeJSON(w, http.StatusOK, list)
}

func (s *Server) handleModelGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	m, err := s.reg.Get(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	info, err := NewModelInfo(id, m)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if r.URL.Query().Get("theta") == "1" {
		info.Theta = m.Theta
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleModelDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.reg.Delete(id); err != nil {
		status := http.StatusNotFound
		if !errors.Is(err, ErrModelNotFound) {
			status = http.StatusInternalServerError
		}
		writeError(w, status, err)
		return
	}
	s.m.ModelsStored.Set(int64(s.reg.Len()))
	w.WriteHeader(http.StatusNoContent)
}

// predictGrain is the minimum number of rows per parallel prediction
// chunk; below 2×predictGrain the batch stays serial, where the
// scatter/gather overhead would dominate.
const predictGrain = 256

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	m, err := s.reg.Get(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	var req PredictRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if err := req.Validate(m.Dim); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.m.PredictRequests.Add(1)
	start := time.Now()
	preds := predictBatch(m.Spec, m.Theta, req.Rows)
	elapsed := float64(time.Since(start)) / float64(time.Millisecond)
	s.m.PredictLatency.Observe(elapsed)
	s.m.PredictLatencyFamily.With(m.Spec.Name()).Observe(elapsed)
	s.m.PredictionsServed.Add(int64(len(preds)))
	writeJSON(w, http.StatusOK, PredictResponse{ModelID: id, Predictions: preds})
}

// predictBatch evaluates the model on every row through the shared
// compute pool (predictions are independent and specs are safe for
// concurrent Predict), so large batches parallelize without adding
// goroutines beyond the process-wide budget.
func predictBatch(spec models.Spec, theta []float64, rows [][]float64) []float64 {
	preds := make([]float64, len(rows))
	compute.For(len(rows), predictGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			preds[i] = spec.Predict(theta, dataset.DenseRow(rows[i]))
		}
	})
	return preds
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := Health{
		Status:        "ok",
		Models:        s.reg.Len(),
		Datasets:      s.store.Len(),
		Jobs:          s.queue.Len(),
		Workers:       s.queue.Workers(),
		Parallelism:   compute.Parallelism(),
		Goroutines:    runtime.NumGoroutine(),
		UptimeSeconds: time.Since(s.started).Seconds(),
	}
	if s.coord != nil {
		st := s.coord.Status()
		h.Cluster = &ClusterHealth{
			Workers:      len(st.Workers),
			TasksPending: st.TasksPending,
			TasksLeased:  st.TasksLeased,
		}
	}
	writeJSON(w, http.StatusOK, h)
}

// readJSON decodes the request body into v, writing a 400 on failure.
func (s *Server) readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("serve: request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad request body: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}
