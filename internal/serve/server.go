package serve

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"path/filepath"
	"time"

	"blinkml/internal/compute"
	"blinkml/internal/core"
	"blinkml/internal/datagen"
	"blinkml/internal/dataset"
	"blinkml/internal/modelio"
	"blinkml/internal/models"
	"blinkml/internal/optimize"
	"blinkml/internal/store"
	"blinkml/internal/tune"
)

// Config sizes a Server. Dir is required; everything else has defaults.
type Config struct {
	// Dir is the model registry directory (created if missing).
	Dir string
	// DataDir is the dataset store directory (default: "datasets" under
	// Dir).
	DataDir string
	// Workers is the training worker-pool size (default 2).
	Workers int
	// QueueDepth bounds the training backlog; a full queue returns 503
	// (default 64).
	QueueDepth int
	// MaxBodyBytes caps request bodies (default 64 MiB — inline datasets
	// can be large).
	MaxBodyBytes int64
	// MaxUploadBytes caps POST /v1/datasets uploads (default 4 GiB — the
	// upload streams to disk and is never resident).
	MaxUploadBytes int64
	// Parallelism sets the process-wide compute-pool degree: the budget
	// every training kernel (matrix products, gradient accumulation,
	// statistics, probes, batched prediction) draws from, across all
	// concurrent jobs. 0 leaves the pool at its current setting (default
	// GOMAXPROCS). Job-level concurrency (Workers) and kernel-level
	// concurrency share this one budget: the pool hands out at most
	// Parallelism−1 helper goroutines process-wide, so W concurrent jobs
	// never fan out into W×Parallelism goroutines.
	Parallelism int
}

func (c Config) withDefaults() Config {
	if c.DataDir == "" && c.Dir != "" {
		c.DataDir = filepath.Join(c.Dir, "datasets")
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.MaxUploadBytes <= 0 {
		c.MaxUploadBytes = 4 << 30
	}
	return c
}

// Server is the blinkml-serve HTTP service: an async training job queue in
// front of the BlinkML coordinator, plus a persistent model registry for
// the models it produces.
type Server struct {
	cfg     Config
	reg     *Registry
	store   *store.Store
	queue   *Queue
	mux     *http.ServeMux
	m       *Metrics
	started time.Time
}

// New opens the registry at cfg.Dir and the dataset store at cfg.DataDir
// (recovering persisted models and datasets) and starts the worker pool.
// Call Close to stop it.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Parallelism > 0 {
		compute.SetParallelism(cfg.Parallelism)
	}
	reg, err := OpenRegistry(cfg.Dir)
	if err != nil {
		return nil, err
	}
	st, err := store.Open(cfg.DataDir)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		reg:     reg,
		store:   st,
		m:       sharedMetrics(),
		started: time.Now(),
	}
	st.SetObserver(storeObserver{s.m})
	s.m.ModelsStored.Set(int64(reg.Len()))
	s.refreshStoreGauges()
	s.queue = NewQueue(cfg.Workers, cfg.QueueDepth, s.m)
	s.mux = http.NewServeMux()
	s.routes()
	return s, nil
}

// Handler returns the HTTP handler for the whole API.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the model store (used by the CLI and tests).
func (s *Server) Registry() *Registry { return s.reg }

// Store exposes the dataset store (used by the CLI and tests).
func (s *Server) Store() *store.Store { return s.store }

// Close cancels all outstanding jobs and waits for the workers to drain.
func (s *Server) Close() { s.queue.Close() }

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/train", s.handleTrain)
	s.mux.HandleFunc("POST /v1/tune", s.handleTune)
	s.mux.HandleFunc("POST /v1/datasets", s.handleDatasetUpload)
	s.mux.HandleFunc("GET /v1/datasets", s.handleDatasetList)
	s.mux.HandleFunc("GET /v1/datasets/{id}", s.handleDatasetGet)
	s.mux.HandleFunc("DELETE /v1/datasets/{id}", s.handleDatasetDelete)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("GET /v1/models", s.handleModelList)
	s.mux.HandleFunc("GET /v1/models/{id}", s.handleModelGet)
	s.mux.HandleFunc("DELETE /v1/models/{id}", s.handleModelDelete)
	s.mux.HandleFunc("POST /v1/models/{id}/predict", s.handlePredict)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.Handle("GET /metrics", expvar.Handler())
}

// trainTask is the queued form of POST /v1/train: materialize the dataset,
// run the BlinkML coordinator under the job's context, and persist the
// result.
type trainTask struct {
	s   *Server
	req TrainRequest
}

// Kind implements Task.
func (trainTask) Kind() string { return "train" }

// Run implements Task.
func (t trainTask) Run(ctx context.Context) (TaskResult, error) {
	s, req := t.s, t.req
	spec, err := req.Model.Spec()
	if err != nil {
		return TaskResult{}, err
	}
	src, err := s.buildSource(req.Dataset)
	if err != nil {
		return TaskResult{}, err
	}
	cfg := core.Options{
		Epsilon:           req.Epsilon,
		Delta:             req.Delta,
		Seed:              req.Options.Seed,
		InitialSampleSize: req.Options.InitialSampleSize,
		MinSampleSize:     req.Options.MinSampleSize,
		WarmStart:         req.Options.WarmStart,
		Optimizer:         optimize.Options{MaxIters: req.Options.MaxIters},
	}
	start := time.Now()
	res, err := core.TrainSourceContext(ctx, spec, src, cfg)
	if err != nil {
		return TaskResult{}, err
	}
	s.m.TrainRuns.Add(1)
	s.m.TrainLatencyMsSum.Add(float64(time.Since(start)) / float64(time.Millisecond))
	s.m.SampleSizeSum.Add(int64(res.SampleSize))
	s.m.SampleSizeLast.Set(int64(res.SampleSize))
	id, err := s.registerModel(spec, res.Theta, src.Meta().Dim, res)
	if err != nil {
		return TaskResult{}, err
	}
	return TaskResult{ModelID: id, Diagnostics: NewPhaseBreakdown(res.Diag)}, nil
}

// tuneTask is the queued form of POST /v1/tune: run the search under the
// job's context, register the winning model, and report the leaderboard.
type tuneTask struct {
	s   *Server
	req TuneRequest
}

// Kind implements Task.
func (tuneTask) Kind() string { return "tune" }

// Run implements Task.
func (t tuneTask) Run(ctx context.Context) (TaskResult, error) {
	s, req := t.s, t.req
	space, err := req.Space.Space()
	if err != nil {
		return TaskResult{}, err
	}
	src, err := s.buildSource(req.Dataset)
	if err != nil {
		return TaskResult{}, err
	}
	tf := req.Options.TestFraction
	if tf == 0 {
		tf = 0.15
	}
	// The queue's worker pool is the service's concurrency budget; a tune
	// job's internal training pool must not multiply it, so the per-request
	// worker count is clamped to the server's own worker setting.
	workers := req.Options.Workers
	if workers <= 0 || workers > s.cfg.Workers {
		workers = s.cfg.Workers
	}
	cfg := tune.Config{
		Train: core.Options{
			Epsilon:           req.Epsilon,
			Delta:             req.Delta,
			Seed:              req.Options.Seed,
			InitialSampleSize: req.Options.InitialSampleSize,
			TestFraction:      tf,
			Optimizer:         optimize.Options{MaxIters: req.Options.MaxIters},
		},
		Workers: workers,
		Halving: req.Options.Halving,
		Rungs:   req.Options.Rungs,
		Eta:     req.Options.Eta,
		Seed:    req.Options.Seed,
	}
	start := time.Now()
	res, err := tune.RunSource(ctx, space, src, cfg)
	if err != nil {
		return TaskResult{}, err
	}
	s.m.TuneRuns.Add(1)
	s.m.TuneLatencyMsSum.Add(float64(time.Since(start)) / float64(time.Millisecond))
	s.m.TuneCandidates.Add(int64(res.Evaluated))
	s.m.TuneCandidatesPruned.Add(int64(res.Pruned))
	best := res.Best
	id, err := s.registerModel(best.Spec, best.Theta, src.Meta().Dim, &core.Result{
		SampleSize:       best.SampleSize,
		PoolSize:         best.PoolSize,
		EstimatedEpsilon: best.EstimatedEpsilon,
		UsedInitialModel: best.UsedInitialModel,
		Diag:             best.Diag,
	})
	if err != nil {
		return TaskResult{}, err
	}
	rep, err := NewTuneReport(res)
	if err != nil {
		return TaskResult{}, err
	}
	return TaskResult{
		ModelID:     id,
		Diagnostics: NewPhaseBreakdown(best.Diag),
		Tune:        rep,
	}, nil
}

// registerModel persists a trained model and refreshes the stored-models
// gauge.
func (s *Server) registerModel(spec models.Spec, theta []float64, dim int, res *core.Result) (string, error) {
	id, err := s.reg.Put(&modelio.Model{
		Spec:             spec,
		Theta:            theta,
		Dim:              dim,
		SampleSize:       res.SampleSize,
		PoolSize:         res.PoolSize,
		EstimatedEpsilon: res.EstimatedEpsilon,
		UsedInitialModel: res.UsedInitialModel,
		Diag:             res.Diag,
		CreatedAt:        time.Now().UTC(),
	})
	if err != nil {
		return "", err
	}
	s.m.ModelsStored.Set(int64(s.reg.Len()))
	return id, nil
}

// buildSource resolves a dataset reference to a Source: synthetic and
// inline data are materialized in memory; a dataset_id resolves to the
// store handle, which reads rows on demand.
func (s *Server) buildSource(ref DatasetRef) (dataset.Source, error) {
	switch {
	case ref.Synthetic != nil:
		r := ref.Synthetic
		return datagen.Generate(r.Name, datagen.Config{Rows: r.Rows, Dim: r.Dim, Seed: r.Seed})
	case ref.Inline != nil:
		return ref.Inline.Build()
	case ref.ID != "":
		return s.store.Get(ref.ID)
	default:
		return nil, errors.New("serve: missing dataset")
	}
}

func (s *Server) handleTrain(w http.ResponseWriter, r *http.Request) {
	var req TrainRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if !s.checkDatasetRef(w, req.Dataset) {
		return
	}
	s.enqueue(w, trainTask{s: s, req: req})
}

func (s *Server) handleTune(w http.ResponseWriter, r *http.Request) {
	var req TuneRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if !s.checkDatasetRef(w, req.Dataset) {
		return
	}
	s.enqueue(w, tuneTask{s: s, req: req})
}

// checkDatasetRef rejects a dataset_id that is not in the store at submit
// time, so the client gets a 404 immediately instead of a failed job later.
// (The id is re-resolved when the job runs; a delete racing the queue fails
// the job, which is the honest outcome.)
func (s *Server) checkDatasetRef(w http.ResponseWriter, ref DatasetRef) bool {
	if ref.ID == "" {
		return true
	}
	if _, err := s.store.Get(ref.ID); err != nil {
		writeError(w, http.StatusNotFound, err)
		return false
	}
	return true
}

// enqueue admits a task and writes the 202 acknowledgement (or the 503
// backpressure error).
func (s *Server) enqueue(w http.ResponseWriter, task Task) {
	job, err := s.queue.Enqueue(task)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+job.ID)
	writeJSON(w, http.StatusAccepted, TrainResponse{JobID: job.ID, State: JobQueued})
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	job, err := s.queue.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.queue.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleModelList(w http.ResponseWriter, r *http.Request) {
	ids := s.reg.List()
	list := ModelList{Models: make([]ModelInfo, 0, len(ids))}
	for _, id := range ids {
		m, err := s.reg.Get(id)
		if err != nil {
			continue // deleted between List and Get
		}
		info, err := NewModelInfo(id, m)
		if err != nil {
			continue
		}
		list.Models = append(list.Models, info)
	}
	writeJSON(w, http.StatusOK, list)
}

func (s *Server) handleModelGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	m, err := s.reg.Get(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	info, err := NewModelInfo(id, m)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if r.URL.Query().Get("theta") == "1" {
		info.Theta = m.Theta
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleModelDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.reg.Delete(id); err != nil {
		status := http.StatusNotFound
		if !errors.Is(err, ErrModelNotFound) {
			status = http.StatusInternalServerError
		}
		writeError(w, status, err)
		return
	}
	s.m.ModelsStored.Set(int64(s.reg.Len()))
	w.WriteHeader(http.StatusNoContent)
}

// predictGrain is the minimum number of rows per parallel prediction
// chunk; below 2×predictGrain the batch stays serial, where the
// scatter/gather overhead would dominate.
const predictGrain = 256

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	m, err := s.reg.Get(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	var req PredictRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if err := req.Validate(m.Dim); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.m.PredictRequests.Add(1)
	preds := predictBatch(m.Spec, m.Theta, req.Rows)
	s.m.PredictionsServed.Add(int64(len(preds)))
	writeJSON(w, http.StatusOK, PredictResponse{ModelID: id, Predictions: preds})
}

// predictBatch evaluates the model on every row through the shared
// compute pool (predictions are independent and specs are safe for
// concurrent Predict), so large batches parallelize without adding
// goroutines beyond the process-wide budget.
func predictBatch(spec models.Spec, theta []float64, rows [][]float64) []float64 {
	preds := make([]float64, len(rows))
	compute.For(len(rows), predictGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			preds[i] = spec.Predict(theta, dataset.DenseRow(rows[i]))
		}
	})
	return preds
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, Health{
		Status:        "ok",
		Models:        s.reg.Len(),
		Datasets:      s.store.Len(),
		Jobs:          s.queue.Len(),
		Workers:       s.queue.Workers(),
		Parallelism:   compute.Parallelism(),
		UptimeSeconds: time.Since(s.started).Seconds(),
	})
}

// readJSON decodes the request body into v, writing a 400 on failure.
func (s *Server) readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("serve: request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad request body: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}
