package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"blinkml/internal/obs"
)

// Job states (wire values of JobStatus.State).
const (
	JobQueued    = "queued"
	JobRunning   = "running"
	JobSucceeded = "succeeded"
	JobFailed    = "failed"
	JobCancelled = "cancelled"
)

// Queue admission errors.
var (
	ErrQueueFull   = errors.New("serve: training queue is full")
	ErrQueueClosed = errors.New("serve: queue is closed")
	ErrJobNotFound = errors.New("serve: job not found")
)

// Task is one unit of queued work — a training run or a hyperparameter
// search. Run must honor ctx: when the job is cancelled, ctx is cancelled
// and Run should return promptly (core.TrainContext and tune.Run already
// do). On success it returns the registry id of the stored model plus
// whatever kind-specific report it produced.
type Task interface {
	// Kind tags the job on the wire ("train" or "tune").
	Kind() string
	// Run executes the work under the job's context.
	Run(ctx context.Context) (TaskResult, error)
}

// TaskResult is what a finished task reports back through the job status.
type TaskResult struct {
	// ModelID is the registry id of the stored model.
	ModelID string
	// Diagnostics is the Figure-8 phase breakdown (training jobs, and the
	// winning candidate of tune jobs).
	Diagnostics *PhaseBreakdown
	// Tune is the search report (tune jobs only).
	Tune *TuneReport
}

// datasetTask is implemented by tasks that reference a stored dataset; the
// queue records the id so the dataset API can refuse to delete a dataset
// out from under queued or running work.
type datasetTask interface {
	datasetID() string
}

// Job is one queued or running task. All mutable state is behind mu;
// handlers read consistent snapshots via Status.
type Job struct {
	ID   string
	kind string
	// trace is the job's trace ID — client-supplied via the X-Blinkml-Trace
	// header or minted at admission. Immutable after Enqueue.
	trace string
	// dataset is the stored-dataset id the task references ("" when the job
	// trains on synthetic or inline data). Immutable after Enqueue.
	dataset string
	task    Task

	ctx    context.Context
	cancel context.CancelFunc

	mu           sync.Mutex
	state        string
	errMsg       string
	result       TaskResult
	spans        []obs.Span
	droppedSpans int
	resources    *obs.LedgerSnapshot
	enqueuedAt   time.Time
	startedAt    time.Time
	finishedAt   time.Time

	// ledger is the live resource ledger while the job runs (set by runJob;
	// read by the flight recorder's live-ledger dump callback).
	ledger *obs.Ledger
}

// Trace returns the job's trace ID.
func (j *Job) Trace() string { return j.trace }

// Status returns a consistent snapshot.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:          j.ID,
		Kind:        j.kind,
		State:       j.state,
		TraceID:     j.trace,
		ModelID:     j.result.ModelID,
		Error:       j.errMsg,
		Diagnostics: j.result.Diagnostics,
		Tune:        j.result.Tune,
		Resources:   j.resources,
		EnqueuedAt:  j.enqueuedAt,
		StartedAt:   j.startedAt,
		FinishedAt:  j.finishedAt,
	}
	if st.Resources == nil && j.ledger != nil {
		st.Resources = j.ledger.Snapshot() // job still running: report live costs
	}
	if len(j.spans) > 0 {
		st.Trace = &TraceReport{
			TraceID:      j.trace,
			Stages:       obs.AggregateStages(j.spans),
			Spans:        append([]obs.Span(nil), j.spans...),
			DroppedSpans: j.droppedSpans,
		}
	}
	return st
}

// markRunning transitions queued → running; it reports false when the job
// was cancelled while still waiting, in which case the worker must skip it.
func (j *Job) markRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != JobQueued {
		return false
	}
	j.state = JobRunning
	j.startedAt = time.Now()
	return true
}

// setSpans stores the job's recorded spans (before finish, so a Status read
// after the terminal state always sees them).
func (j *Job) setSpans(spans []obs.Span, dropped int) {
	j.mu.Lock()
	j.spans = spans
	j.droppedSpans = dropped
	j.mu.Unlock()
}

// setLedger publishes the job's live ledger while it runs.
func (j *Job) setLedger(l *obs.Ledger) {
	j.mu.Lock()
	j.ledger = l
	j.mu.Unlock()
}

// sealLedger stores the final ledger snapshot and drops the live ledger.
func (j *Job) sealLedger(s *obs.LedgerSnapshot) {
	j.mu.Lock()
	j.resources = s
	j.ledger = nil
	j.mu.Unlock()
}

// finish records a terminal state. The task is dropped so a finished job
// does not pin its (possibly inline, possibly huge) dataset in memory for
// the rest of the process lifetime.
func (j *Job) finish(state, errMsg string, result TaskResult) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = state
	j.errMsg = errMsg
	j.result = result
	j.finishedAt = time.Now()
	j.task = nil
}

// Queue is the async job queue: a bounded channel feeding a fixed worker
// pool, shared by training and tune jobs. Admission is non-blocking — a
// full queue rejects with ErrQueueFull so clients get backpressure instead
// of hung requests. Every job carries its own context derived from the
// queue's base context, so individual jobs can be cancelled and Close
// cancels everything at once.
type Queue struct {
	m       *Metrics
	workers int

	// SpanSink, when set before any Enqueue, receives every finished job's
	// spans (the -span-log JSONL export hook). Called from worker goroutines.
	SpanSink func([]obs.Span)
	// Flight, when set before any Enqueue, receives every finished job as a
	// flight-recorder ring entry (span tree + ledger snapshot).
	Flight *obs.FlightRecorder
	// Log receives job lifecycle events and becomes the request-scoped
	// logger for job work; nil discards (tests, embedded queues).
	Log *slog.Logger

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu     sync.Mutex
	jobs   map[string]*Job
	done   []string // terminal job ids, oldest first, for history eviction
	seq    uint64
	closed bool
	ch     chan *Job
	wg     sync.WaitGroup
}

// maxFinishedJobs bounds how many terminal jobs are kept queryable; older
// ones are evicted so the job map cannot grow without bound on a
// long-running server.
const maxFinishedJobs = 1024

// NewQueue starts a queue with the given worker count and backlog depth
// (both floored at 1).
func NewQueue(workers, depth int, m *Metrics) *Queue {
	if workers < 1 {
		workers = 1
	}
	if depth < 1 {
		depth = 1
	}
	if m == nil {
		m = sharedMetrics()
	}
	ctx, cancel := context.WithCancel(context.Background())
	q := &Queue{
		m:          m,
		workers:    workers,
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*Job),
		ch:         make(chan *Job, depth),
	}
	q.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go q.worker()
	}
	return q
}

// Workers returns the worker-pool size.
func (q *Queue) Workers() int { return q.workers }

// Enqueue admits a task with a freshly minted trace ID, returning the new
// job or ErrQueueFull / ErrQueueClosed.
func (q *Queue) Enqueue(task Task) (*Job, error) {
	return q.EnqueueTrace(task, "")
}

// EnqueueTrace is Enqueue with a caller-supplied trace ID (the value of the
// request's X-Blinkml-Trace header); empty mints a new one.
func (q *Queue) EnqueueTrace(task Task, trace string) (*Job, error) {
	if trace == "" {
		trace = obs.NewTraceID()
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil, ErrQueueClosed
	}
	q.seq++
	ctx, cancel := context.WithCancel(q.baseCtx)
	job := &Job{
		ID:         fmt.Sprintf("j-%06d", q.seq),
		kind:       task.Kind(),
		trace:      trace,
		task:       task,
		ctx:        ctx,
		cancel:     cancel,
		state:      JobQueued,
		enqueuedAt: time.Now(),
	}
	if dt, ok := task.(datasetTask); ok {
		job.dataset = dt.datasetID()
	}
	select {
	case q.ch <- job:
	default:
		cancel()
		q.seq--
		return nil, ErrQueueFull
	}
	q.jobs[job.ID] = job
	for len(q.done) > maxFinishedJobs {
		delete(q.jobs, q.done[0])
		q.done = q.done[1:]
	}
	q.m.JobsQueued.Add(1)
	return job, nil
}

// recordDone registers a terminal job for history eviction.
func (q *Queue) recordDone(id string) {
	q.mu.Lock()
	q.done = append(q.done, id)
	q.mu.Unlock()
}

// Get looks up a job by id.
func (q *Queue) Get(id string) (*Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	job, ok := q.jobs[id]
	if !ok {
		return nil, ErrJobNotFound
	}
	return job, nil
}

// Len returns the number of known jobs (any state).
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.jobs)
}

// List snapshots every known job in id order (oldest first), optionally
// filtered to one state ("" keeps all).
func (q *Queue) List(state string) []JobStatus {
	q.mu.Lock()
	jobs := make([]*Job, 0, len(q.jobs))
	for _, job := range q.jobs {
		jobs = append(jobs, job)
	}
	q.mu.Unlock()
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].ID < jobs[j].ID })
	out := make([]JobStatus, 0, len(jobs))
	for _, job := range jobs {
		st := job.Status()
		if state == "" || st.State == state {
			out = append(out, st)
		}
	}
	return out
}

// ActiveDatasetJobs returns the ids of queued or running jobs that
// reference the stored dataset, in id order. The dataset API consults it
// before a delete.
func (q *Queue) ActiveDatasetJobs(datasetID string) []string {
	if datasetID == "" {
		return nil
	}
	q.mu.Lock()
	var ids []string
	for _, job := range q.jobs {
		if job.dataset != datasetID {
			continue
		}
		job.mu.Lock()
		active := job.state == JobQueued || job.state == JobRunning
		job.mu.Unlock()
		if active {
			ids = append(ids, job.ID)
		}
	}
	q.mu.Unlock()
	sort.Strings(ids)
	return ids
}

// Cancel stops a job: a queued job is marked cancelled immediately (the
// worker will skip it), a running job has its context cancelled and reaches
// the cancelled state as soon as the training loop notices — between
// optimizer iterations, not at the end of the run. (The exception is a
// closed-form trainer like PPCA's, which has no iterations: it stops only
// at the coordinator's phase boundaries.) Cancelling a finished job is a
// harmless no-op.
func (q *Queue) Cancel(id string) (JobStatus, error) {
	job, err := q.Get(id)
	if err != nil {
		return JobStatus{}, err
	}
	job.mu.Lock()
	switch job.state {
	case JobQueued:
		job.state = JobCancelled
		job.errMsg = "cancelled before start"
		job.finishedAt = time.Now()
		job.task = nil
		job.mu.Unlock()
		job.cancel()
		q.m.JobsCancelled.Add(1)
		q.recordDone(job.ID)
	case JobRunning:
		job.mu.Unlock()
		job.cancel()
	default:
		job.mu.Unlock()
	}
	return job.Status(), nil
}

// Close stops accepting work, cancels every outstanding job context, and
// waits for the workers to drain.
func (q *Queue) Close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		q.wg.Wait()
		return
	}
	q.closed = true
	close(q.ch)
	q.mu.Unlock()
	q.baseCancel()
	q.wg.Wait()
}

func (q *Queue) worker() {
	defer q.wg.Done()
	for job := range q.ch {
		q.runJob(job)
	}
}

func (q *Queue) runJob(job *Job) {
	if !job.markRunning() {
		return // cancelled while queued
	}
	q.m.JobsRunning.Add(1)
	rec := obs.NewRecorder(job.trace)
	ctx := obs.WithRecorder(obs.WithTrace(job.ctx, job.trace), rec)
	ctx = obs.WithJobID(ctx, job.ID)
	// The job's resource ledger: carried in ctx (explicit charge sites,
	// audit, cluster merge) and bound to this worker goroutine so the
	// compute pool, linalg kernels, and the store charge it too.
	ledger := obs.NewLedger()
	ledger.ChargeQueueWait(time.Since(job.enqueuedAt))
	job.setLedger(ledger)
	ctx = obs.WithLedger(ctx, ledger)
	unbind := obs.BindLedger(ledger)
	logger := q.Log
	if logger == nil {
		logger = obs.Discard() // embedded/test queues stay quiet unless wired
	}
	ctx = obs.WithLogger(ctx, logger)
	log := obs.Logger(ctx).With("job", job.ID, "kind", job.kind)
	log.Info("job started")
	start := time.Now()
	result, err := job.task.Run(ctx)
	unbind()
	q.m.JobsRunning.Add(-1)
	job.setSpans(rec.Spans(), rec.Dropped())
	job.sealLedger(ledger.Snapshot())
	switch {
	case err == nil:
		job.finish(JobSucceeded, "", result)
		q.m.JobsSucceeded.Add(1)
		log.Info("job succeeded", "elapsed", time.Since(start), "model", result.ModelID)
	case errors.Is(err, context.Canceled) || job.ctx.Err() != nil:
		job.finish(JobCancelled, "cancelled: "+err.Error(), TaskResult{Diagnostics: result.Diagnostics})
		q.m.JobsCancelled.Add(1)
		log.Info("job cancelled", "elapsed", time.Since(start))
	default:
		job.finish(JobFailed, err.Error(), TaskResult{Diagnostics: result.Diagnostics})
		q.m.JobsFailed.Add(1)
		log.Warn("job failed", "elapsed", time.Since(start), "err", err)
	}
	job.cancel() // release the context's resources
	q.recordDone(job.ID)
	if q.SpanSink != nil {
		q.SpanSink(rec.Spans())
	}
	if q.Flight != nil {
		st := job.Status()
		q.Flight.Record(obs.FlightEntry{
			Trace:      job.trace,
			JobID:      job.ID,
			Kind:       "job:" + job.kind,
			Err:        st.Error,
			DurMs:      float64(time.Since(start)) / float64(time.Millisecond),
			FinishedAt: time.Now(),
			Spans:      rec.Spans(),
			Ledger:     st.Resources,
		})
	}
}

// LiveLedgers snapshots the ledgers of currently running jobs — the flight
// recorder's view of in-flight cost at dump time.
func (q *Queue) LiveLedgers() map[string]*obs.LedgerSnapshot {
	q.mu.Lock()
	jobs := make([]*Job, 0, len(q.jobs))
	for _, job := range q.jobs {
		jobs = append(jobs, job)
	}
	q.mu.Unlock()
	out := make(map[string]*obs.LedgerSnapshot)
	for _, job := range jobs {
		job.mu.Lock()
		l := job.ledger
		job.mu.Unlock()
		if l != nil {
			out[job.ID] = l.Snapshot()
		}
	}
	return out
}
