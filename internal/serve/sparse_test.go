package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"blinkml/internal/datagen"
	"blinkml/internal/dataset"
	"blinkml/internal/modelio"
)

// TestServeSparseInline drives a sparse inline upload end to end: a
// high-dimensional low-density dataset ships as indices+values, trains,
// and the resulting model predicts identically to one trained on the same
// rows shipped dense — the wire-level face of the sparse/dense parity
// contract.
func TestServeSparseInline(t *testing.T) {
	s, err := New(Config{Dir: t.TempDir(), Workers: 2, QueueDepth: 8})
	if err != nil {
		t.Fatalf("new server: %v", err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	ds, err := datagen.Generate("criteo", datagen.Config{Rows: 1200, Dim: 1500, Seed: 9})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	sparse := &InlineData{Task: "binary", Dim: ds.Dim, Y: ds.Y}
	denseUp := &InlineData{Task: "binary", Y: ds.Y}
	probe := make([][]float64, 0, 50)
	for i := 0; i < ds.Len(); i++ {
		sp := ds.X[i].(*dataset.SparseRow)
		sparse.Indices = append(sparse.Indices, sp.Idx)
		sparse.Values = append(sparse.Values, sp.Val)
		row := make([]float64, ds.Dim)
		sp.AddTo(row, 1)
		denseUp.X = append(denseUp.X, row)
		if len(probe) < 50 {
			probe = append(probe, row)
		}
	}

	train := func(in *InlineData) string {
		req := TrainRequest{
			Model:   modelio.SpecJSON{Name: "logistic", Reg: 0.001},
			Dataset: DatasetRef{Inline: in},
			Epsilon: 0.1,
			Delta:   0.05,
			Options: TrainOptions{Seed: 5, InitialSampleSize: 300},
		}
		var tr TrainResponse
		if code := doJSON(t, client, http.MethodPost, ts.URL+"/v1/train", req, &tr); code != http.StatusAccepted {
			t.Fatalf("train status %d", code)
		}
		st := waitJob(t, client, ts.URL, tr.JobID, 60*time.Second)
		if st.State != JobSucceeded {
			t.Fatalf("job %+v, want succeeded", st)
		}
		return st.ModelID
	}
	sparseModel := train(sparse)
	denseModel := train(denseUp)

	var prS, prD PredictResponse
	if code := doJSON(t, client, http.MethodPost, ts.URL+"/v1/models/"+sparseModel+"/predict", PredictRequest{Rows: probe}, &prS); code != http.StatusOK {
		t.Fatalf("sparse predict status %d", code)
	}
	if code := doJSON(t, client, http.MethodPost, ts.URL+"/v1/models/"+denseModel+"/predict", PredictRequest{Rows: probe}, &prD); code != http.StatusOK {
		t.Fatalf("dense predict status %d", code)
	}
	for i := range prS.Predictions {
		if prS.Predictions[i] != prD.Predictions[i] {
			t.Fatalf("row %d: sparse-trained %v vs dense-trained %v", i, prS.Predictions[i], prD.Predictions[i])
		}
	}

	// Malformed shapes are rejected at admission.
	bad := []*InlineData{
		{Task: "binary", X: [][]float64{{1}}, Indices: [][]int32{{0}}, Values: [][]float64{{1}}, Y: []float64{1}},
		{Task: "binary", Indices: [][]int32{{0}}, Y: []float64{1}},
		{Task: "binary"},
	}
	for i, in := range bad {
		req := TrainRequest{Model: modelio.SpecJSON{Name: "logistic", Reg: 0.001},
			Dataset: DatasetRef{Inline: in}, Epsilon: 0.1}
		if code := doJSON(t, client, http.MethodPost, ts.URL+"/v1/train", req, nil); code != http.StatusBadRequest {
			t.Fatalf("bad inline %d admitted with status %d", i, code)
		}
	}
}
