// Package serve implements blinkml-serve: an HTTP training-and-inference
// service over the BlinkML library. It has three pieces — an async job
// queue (training runs and hyperparameter searches) with a bounded worker
// pool and per-job context cancellation, a model registry with versioned
// persistence to disk (via modelio), and the JSON HTTP API that ties them
// together:
//
//	POST   /v1/train               enqueue a training job, returns a job id
//	POST   /v1/tune                enqueue a hyperparameter search, returns a job id
//	GET    /v1/jobs                list jobs (?state= filters by state)
//	GET    /v1/jobs/{id}           job status + Figure-8 phase breakdown (+ tune leaderboard)
//	DELETE /v1/jobs/{id}           cancel a queued or running job
//	POST   /v1/datasets            streaming CSV/LibSVM upload into the dataset store
//	GET    /v1/datasets            list stored datasets
//	GET    /v1/datasets/{id}       dataset manifest (shape, task, label stats)
//	DELETE /v1/datasets/{id}       evict a dataset from store and disk
//	GET    /v1/models              list stored models
//	GET    /v1/models/{id}         model metadata (?theta=1 adds parameters)
//	DELETE /v1/models/{id}         evict a model from registry and disk
//	POST   /v1/models/{id}/predict batched prediction over many rows
//	GET    /v1/audit               per-family empirical (ε, δ) coverage rollup
//	GET    /v1/audit/records       every calibration record joined with its replay
//	POST   /v1/audit/replay        replay pending records now (body: {model_id?, max?})
//	GET    /v1/debug/flightrecords list on-disk flight-record bundles
//	GET    /v1/debug/flightrecords/{name}        one bundle's manifest
//	GET    /v1/debug/flightrecords/{name}/{file} fetch a bundle file
//	GET    /healthz                liveness + registry/store/queue snapshot
//	GET    /metrics                Prometheus text exposition (counters + latency histograms)
//	GET    /metrics.json           raw expvar JSON (the pre-Prometheus /metrics shape)
//
// In cluster mode (Config.Cluster) the coordinator protocol is mounted
// under /v1/cluster (see internal/cluster) and jobs execute on remote
// blinkml-worker processes instead of in-process.
//
// Training and tuning requests reference data three ways: synthetic
// workloads, inline rows, or a dataset_id naming a stored upload — the
// out-of-core path, which materializes only sampled rows.
//
// This file defines the wire types. They are also reused by the blinkml CLI
// for its -json output, so one set of structs describes a training result
// everywhere.
package serve

import (
	"errors"
	"fmt"
	"math"
	"time"

	"blinkml/internal/audit"
	"blinkml/internal/core"
	"blinkml/internal/dataset"
	"blinkml/internal/modelio"
	"blinkml/internal/obs"
)

// TrainRequest is the body of POST /v1/train: a model spec, a dataset
// reference, and the (ε, δ) accuracy contract.
type TrainRequest struct {
	Model   modelio.SpecJSON `json:"model"`
	Dataset DatasetRef       `json:"dataset"`
	// Epsilon is the requested error bound ε in (0, 1].
	Epsilon float64 `json:"epsilon"`
	// Delta is the allowed violation probability δ (default 0.05).
	Delta   float64      `json:"delta,omitempty"`
	Options TrainOptions `json:"options,omitzero"`
}

// TrainOptions exposes the tuning knobs of core.Options that make sense
// per-request; everything omitted keeps the library default.
type TrainOptions struct {
	Seed              int64 `json:"seed,omitempty"`
	InitialSampleSize int   `json:"initial_sample_size,omitempty"`
	MinSampleSize     int   `json:"min_sample_size,omitempty"`
	MaxIters          int   `json:"max_iters,omitempty"`
	WarmStart         bool  `json:"warm_start,omitempty"`
}

// Validate checks the request before it is admitted to the queue, so a
// malformed request fails at submit time rather than inside a worker.
func (r *TrainRequest) Validate() error {
	if _, err := r.Model.Spec(); err != nil {
		return err
	}
	if r.Epsilon <= 0 || r.Epsilon > 1 {
		return fmt.Errorf("serve: epsilon must be in (0,1], got %v", r.Epsilon)
	}
	if r.Delta < 0 || r.Delta >= 1 {
		return fmt.Errorf("serve: delta must be in [0,1), got %v", r.Delta)
	}
	return r.Dataset.Validate()
}

// DatasetRef names the training data: exactly one of Synthetic (a
// paper-shaped generated workload), Inline (rows uploaded in the request),
// or ID (a dataset previously uploaded to the store via POST /v1/datasets)
// must be set. The ID path is the out-of-core one — training materializes
// only the rows it samples, never the whole dataset.
type DatasetRef struct {
	Synthetic *SyntheticRef `json:"synthetic,omitempty"`
	Inline    *InlineData   `json:"inline,omitempty"`
	ID        string        `json:"dataset_id,omitempty"`
}

// Validate checks that exactly one source is present and well-formed.
func (r *DatasetRef) Validate() error {
	set := 0
	if r.Synthetic != nil {
		set++
	}
	if r.Inline != nil {
		set++
	}
	if r.ID != "" {
		set++
	}
	if set > 1 {
		return errors.New("serve: dataset must name exactly one of synthetic, inline, or dataset_id")
	}
	switch {
	case r.Synthetic != nil:
		if r.Synthetic.Name == "" {
			return errors.New("serve: synthetic dataset needs a name")
		}
		return nil
	case r.Inline != nil:
		return r.Inline.validate()
	case r.ID != "":
		return nil
	default:
		return errors.New("serve: missing dataset (set synthetic, inline, or dataset_id)")
	}
}

// SyntheticRef selects one of the generated workloads ("gas", "power",
// "criteo", "higgs", "mnist", "yelp", "counts"); zero Rows/Dim use the
// per-dataset defaults.
type SyntheticRef struct {
	Name string `json:"name"`
	Rows int    `json:"rows,omitempty"`
	Dim  int    `json:"dim,omitempty"`
	Seed int64  `json:"seed,omitempty"`
}

// InlineData is a dataset shipped in the request body, either dense
// (row-major x) or sparse (per-row indices/values over an ambient dim) —
// exactly one of the two shapes must be present. Sparse uploads at or below
// the density threshold train on the sparse kernels; denser ones auto-fall
// back to dense rows, with bit-identical results either way.
type InlineData struct {
	// Task is "regression", "binary", "multiclass", or "unsupervised".
	Task string `json:"task"`
	// X holds dense rows.
	X [][]float64 `json:"x,omitempty"`
	// Dim is the ambient dimension for sparse rows (0 = infer from the
	// largest index). Indices[i] are strictly increasing 0-based feature
	// ids; Values[i] the matching entries.
	Dim     int         `json:"dim,omitempty"`
	Indices [][]int32   `json:"indices,omitempty"`
	Values  [][]float64 `json:"values,omitempty"`
	// Y holds labels (empty for unsupervised).
	Y []float64 `json:"y,omitempty"`
	// Classes is K for multiclass (0 = infer from the labels).
	Classes int `json:"classes,omitempty"`
}

// ParseTask maps a wire task name to the dataset constant.
func ParseTask(s string) (dataset.Task, error) { return dataset.ParseTask(s) }

// Sparse reports whether the payload uses the sparse shape.
func (d *InlineData) Sparse() bool { return len(d.Indices) > 0 }

func (d *InlineData) validate() error {
	if len(d.X) == 0 && len(d.Indices) == 0 {
		return errors.New("serve: inline dataset has no rows (set x, or indices+values)")
	}
	if len(d.X) > 0 && len(d.Indices) > 0 {
		return errors.New("serve: inline dataset must be dense (x) or sparse (indices+values), not both")
	}
	if d.Sparse() && len(d.Values) != len(d.Indices) {
		return fmt.Errorf("serve: inline dataset has %d index rows but %d value rows", len(d.Indices), len(d.Values))
	}
	if _, err := ParseTask(d.Task); err != nil {
		return err
	}
	return nil
}

// Rows returns the number of rows in either shape.
func (d *InlineData) Rows() int {
	if d.Sparse() {
		return len(d.Indices)
	}
	return len(d.X)
}

// Build materializes the inline data as a Dataset.
func (d *InlineData) Build() (*dataset.Dataset, error) {
	task, err := ParseTask(d.Task)
	if err != nil {
		return nil, err
	}
	if d.Sparse() {
		return dataset.FromSparse(task, d.Dim, d.Indices, d.Values, d.Y, d.Classes)
	}
	return dataset.FromDense(task, d.X, d.Y, d.Classes)
}

// TrainResponse acknowledges an enqueued job.
type TrainResponse struct {
	JobID string `json:"job_id"`
	// State is the state at admission ("queued").
	State string `json:"state"`
	// TraceID identifies the request's trace: the caller's X-Blinkml-Trace
	// header value, or a freshly minted ID. Every span and log line the job
	// produces — locally or on a cluster worker — carries it.
	TraceID string `json:"trace_id,omitempty"`
}

// JobStatus is the body of GET /v1/jobs/{id}.
type JobStatus struct {
	ID string `json:"id"`
	// Kind is the job type: "train" or "tune".
	Kind  string `json:"kind,omitempty"`
	State string `json:"state"` // queued | running | succeeded | failed | cancelled
	// ModelID is set once the job succeeds (for tune jobs, the winning
	// model).
	ModelID string `json:"model_id,omitempty"`
	Error   string `json:"error,omitempty"`
	// Diagnostics carries the Figure-8 phase breakdown once the job is done
	// (for tune jobs, the winning candidate's breakdown).
	Diagnostics *PhaseBreakdown `json:"diagnostics,omitempty"`
	// Tune carries the search leaderboard for finished tune jobs.
	Tune *TuneReport `json:"tune,omitempty"`
	// TraceID is the job's trace identity (also inside Trace, but present
	// from admission — before any span exists).
	TraceID string `json:"trace_id,omitempty"`
	// Trace is the per-stage timing breakdown recorded while the job ran
	// (set once spans exist, i.e. when the job has finished or is far
	// enough along to have recorded stages).
	Trace      *TraceReport `json:"trace,omitempty"`
	EnqueuedAt time.Time    `json:"enqueued_at"`
	StartedAt  time.Time    `json:"started_at,omitzero"`
	FinishedAt time.Time    `json:"finished_at,omitzero"`
	// Audit joins the job's guarantee-calibration record (appended when its
	// model registered) and, once the auditor has replayed the job, the
	// realized coverage sample. Set only on GET /v1/jobs/{id}.
	Audit *audit.Entry `json:"audit,omitempty"`
	// Resources is the job's resource-attribution ledger: CPU self-time,
	// kernel flops, rows/bytes materialized, queue wait, registry I/O — live
	// while the job runs, sealed when it finishes. In cluster mode the
	// worker-side charges are merged in, so the coordinator's job record
	// carries the whole cost.
	Resources *obs.LedgerSnapshot `json:"resources,omitempty"`
}

// TraceReport is a finished job's span breakdown: per-stage aggregates in
// pipeline order (ingest, sample, statistics, probe, optimize, registry),
// plus the raw spans. Spans recorded on cluster workers carry the worker
// name. DroppedSpans counts overflow beyond the per-job recording cap.
type TraceReport struct {
	TraceID      string      `json:"trace_id"`
	Stages       []obs.Stage `json:"stages"`
	Spans        []obs.Span  `json:"spans,omitempty"`
	DroppedSpans int         `json:"dropped_spans,omitempty"`
}

// Done reports whether the job has reached a terminal state.
func (s JobStatus) Done() bool {
	return s.State == JobSucceeded || s.State == JobFailed || s.State == JobCancelled
}

// JobList is the body of GET /v1/jobs (oldest first; ?state= filters).
type JobList struct {
	Jobs []JobStatus `json:"jobs"`
}

// PhaseBreakdown is the paper's Figure-8a decomposition of where training
// time went, in milliseconds, plus the headline estimator internals.
type PhaseBreakdown struct {
	InitialTrainMs float64 `json:"initial_train_ms"`
	StatisticsMs   float64 `json:"statistics_ms"`
	SampleSearchMs float64 `json:"sample_search_ms"`
	FinalTrainMs   float64 `json:"final_train_ms"`
	TotalMs        float64 `json:"total_ms"`
	InitialEpsilon float64 `json:"initial_epsilon"`
	InitialIters   int     `json:"initial_iters"`
	FinalIters     int     `json:"final_iters,omitempty"`
	Method         string  `json:"method"`
}

// NewPhaseBreakdown converts core diagnostics to the wire form.
func NewPhaseBreakdown(d core.Diagnostics) *PhaseBreakdown {
	ms := func(t time.Duration) float64 { return float64(t) / float64(time.Millisecond) }
	return &PhaseBreakdown{
		InitialTrainMs: ms(d.InitialTrain),
		StatisticsMs:   ms(d.Statistics),
		SampleSearchMs: ms(d.SampleSearch),
		FinalTrainMs:   ms(d.FinalTrain),
		TotalMs:        ms(d.Total()),
		InitialEpsilon: d.InitialEpsilon,
		InitialIters:   d.InitialIters,
		FinalIters:     d.FinalIters,
		Method:         d.Method.String(),
	}
}

// ModelInfo is the metadata view of a stored model (GET /v1/models/{id});
// Theta is included only when explicitly requested.
type ModelInfo struct {
	ID               string           `json:"id,omitempty"`
	Spec             modelio.SpecJSON `json:"spec"`
	Dim              int              `json:"dim"`
	SampleSize       int              `json:"sample_size"`
	PoolSize         int              `json:"pool_size"`
	EstimatedEpsilon float64          `json:"estimated_epsilon"`
	UsedInitialModel bool             `json:"used_initial_model"`
	CreatedAt        time.Time        `json:"created_at,omitzero"`
	Theta            []float64        `json:"theta,omitempty"`
}

// NewModelInfo builds the wire view of a stored model.
func NewModelInfo(id string, m *modelio.Model) (ModelInfo, error) {
	sj, err := modelio.SpecToJSON(m.Spec)
	if err != nil {
		return ModelInfo{}, err
	}
	return ModelInfo{
		ID:               id,
		Spec:             sj,
		Dim:              m.Dim,
		SampleSize:       m.SampleSize,
		PoolSize:         m.PoolSize,
		EstimatedEpsilon: m.EstimatedEpsilon,
		UsedInitialModel: m.UsedInitialModel,
		CreatedAt:        m.CreatedAt,
	}, nil
}

// ModelList is the body of GET /v1/models.
type ModelList struct {
	Models []ModelInfo `json:"models"`
}

// PredictRequest is the body of POST /v1/models/{id}/predict: many rows,
// one round trip.
type PredictRequest struct {
	Rows [][]float64 `json:"rows"`
}

// Validate checks shape and finiteness against the model's dimension.
func (r *PredictRequest) Validate(dim int) error {
	if len(r.Rows) == 0 {
		return errors.New("serve: predict needs at least one row")
	}
	for i, row := range r.Rows {
		if len(row) != dim {
			return fmt.Errorf("serve: row %d has %d features, model wants %d", i, len(row), dim)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("serve: row %d feature %d is not finite", i, j)
			}
		}
	}
	return nil
}

// PredictResponse returns one prediction per input row, in order.
type PredictResponse struct {
	ModelID     string    `json:"model_id"`
	Predictions []float64 `json:"predictions"`
}

// Health is the body of GET /healthz.
type Health struct {
	Status   string `json:"status"`
	Models   int    `json:"models"`
	Datasets int    `json:"datasets"`
	Jobs     int    `json:"jobs"`
	Workers  int    `json:"workers"`
	// Parallelism is the process-wide compute-pool degree shared by every
	// training kernel (see Config.Parallelism).
	Parallelism int `json:"parallelism"`
	// Goroutines is the live goroutine count (the same signal exported as
	// blinkml_go_goroutines on /metrics) — a cheap leak/overload check.
	Goroutines int `json:"goroutines"`
	// UptimeSeconds is time since the server was constructed.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Cluster reports coordinator state (cluster mode only).
	Cluster *ClusterHealth `json:"cluster,omitempty"`
}

// ClusterHealth is the healthz view of the embedded coordinator.
type ClusterHealth struct {
	// Workers is the number of registered, live cluster workers.
	Workers int `json:"workers"`
	// TasksPending and TasksLeased snapshot the coordinator's task queue.
	TasksPending int `json:"tasks_pending"`
	TasksLeased  int `json:"tasks_leased"`
}

// ErrorResponse is the uniform error body. Jobs carries the referencing job
// ids when a dataset delete is refused with 409.
type ErrorResponse struct {
	Error string   `json:"error"`
	Jobs  []string `json:"jobs,omitempty"`
}

// RunReport is the machine-readable result of a one-shot blinkml CLI run
// (-json). It reuses ModelInfo and PhaseBreakdown so scripted consumers see
// the same shapes the server produces.
type RunReport struct {
	Dataset  DatasetInfo     `json:"dataset"`
	Contract Contract        `json:"contract"`
	Model    ModelInfo       `json:"model"`
	Phases   *PhaseBreakdown `json:"phases,omitempty"`
	Full     *FullComparison `json:"full_comparison,omitempty"`
	// Resources is the run's resource-attribution ledger (same shape the
	// server reports on GET /v1/jobs/{id}).
	Resources *obs.LedgerSnapshot `json:"resources,omitempty"`
}

// DatasetInfo describes the workload a CLI run trained on.
type DatasetInfo struct {
	Name string `json:"name"`
	Rows int    `json:"rows"`
	Dim  int    `json:"dim"`
}

// Contract is the requested (ε, δ) pair.
type Contract struct {
	Epsilon float64 `json:"epsilon"`
	Delta   float64 `json:"delta"`
}

// FullComparison reports the realized difference against a fully trained
// model (the CLI's -compare-full path).
type FullComparison struct {
	RealizedDiff float64 `json:"realized_diff"`
	ContractMet  bool    `json:"contract_met"`
}
