package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"blinkml/internal/obs"
)

// postTrainWithTrace submits a train request carrying an explicit trace
// header and returns the decoded ack plus the response headers.
func postTrainWithTrace(t *testing.T, ts *httptest.Server, req TrainRequest, trace string) (TrainResponse, http.Header) {
	t.Helper()
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	hr, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/train", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	hr.Header.Set("Content-Type", "application/json")
	hr.Header.Set(obs.TraceHeader, trace)
	resp, err := ts.Client().Do(hr)
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("train status %d", resp.StatusCode)
	}
	var ack TrainResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatalf("decode ack: %v", err)
	}
	return ack, resp.Header
}

// TestTraceAndStageBreakdown drives one local training job under a
// caller-supplied trace id and checks the full observability contract: the
// trace id is echoed on the ack, survives to the job status, scopes every
// recorded span, and the per-stage breakdown accounts for the training
// wall-clock the diagnostics report.
func TestTraceAndStageBreakdown(t *testing.T) {
	s, err := New(Config{Dir: t.TempDir(), Workers: 1, QueueDepth: 8})
	if err != nil {
		t.Fatalf("new server: %v", err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const trace = "0badc0ffee015eed"
	ack, hdr := postTrainWithTrace(t, ts, trainBody(), trace)
	if ack.TraceID != trace {
		t.Fatalf("ack trace %q, want %q", ack.TraceID, trace)
	}
	if got := hdr.Get(obs.TraceHeader); got != trace {
		t.Fatalf("ack header trace %q, want %q", got, trace)
	}

	st := waitJob(t, ts.Client(), ts.URL, ack.JobID, 90*time.Second)
	if st.State != JobSucceeded {
		t.Fatalf("job %+v, want succeeded", st)
	}
	if st.TraceID != trace {
		t.Fatalf("job status trace %q, want %q", st.TraceID, trace)
	}
	if st.Trace == nil || st.Trace.TraceID != trace {
		t.Fatalf("job status missing trace report: %+v", st.Trace)
	}
	for _, sp := range st.Trace.Spans {
		if sp.Trace != trace {
			t.Fatalf("span %q has trace %q, want %q", sp.Name, sp.Trace, trace)
		}
	}
	stages := make(map[string]float64)
	var sum float64
	for _, stage := range st.Trace.Stages {
		stages[stage.Name] = stage.Ms
		sum += stage.Ms
	}
	for _, want := range []string{"ingest", "sample", "optimize", "statistics", "probe", "registry"} {
		if _, ok := stages[want]; !ok {
			t.Fatalf("stage breakdown missing %q (got %v)", want, stages)
		}
	}
	// The spans wrap the same code the diagnostics timers wrap (plus ingest
	// and registry, which diagnostics exclude), so the stage sum must
	// account for the diagnostics wall-clock.
	if st.Diagnostics == nil {
		t.Fatal("job has no diagnostics")
	}
	if sum < 0.9*st.Diagnostics.TotalMs {
		t.Fatalf("stage sum %.2fms accounts for less than 90%% of training wall-clock %.2fms (stages %v)",
			sum, st.Diagnostics.TotalMs, stages)
	}

	// A submission without the header mints a fresh id.
	ack2, _ := postTrainWithTrace(t, ts, trainBody(), "")
	if ack2.TraceID == "" || ack2.TraceID == trace {
		t.Fatalf("minted trace %q, want a fresh non-empty id", ack2.TraceID)
	}
}

// TestStoreGaugesResyncOnNewServer guards the expvar gauge-drift fix: the
// "blinkml" vars are process singletons, so a server constructed after
// another one died must resync the registry/store gauges from its own disk
// state instead of inheriting the predecessor's values.
func TestStoreGaugesResyncOnNewServer(t *testing.T) {
	s1, err := New(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("new server: %v", err)
	}
	// Simulate a dead server's leftovers on the shared gauges.
	s1.m.ModelsStored.Set(7)
	s1.m.DatasetsStored.Set(3)
	s1.m.DatasetBytes.Set(1 << 20)
	s1.Close()

	s2, err := New(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("second server: %v", err)
	}
	defer s2.Close()
	if got := s2.m.ModelsStored.Value(); got != 0 {
		t.Fatalf("models_stored gauge %d on fresh server, want 0", got)
	}
	if got := s2.m.DatasetsStored.Value(); got != 0 {
		t.Fatalf("datasets_stored gauge %d on fresh server, want 0", got)
	}
	if got := s2.m.DatasetBytes.Value(); got != 0 {
		t.Fatalf("dataset_bytes gauge %d on fresh server, want 0", got)
	}
}

// promSamples parses Prometheus text exposition into name{labels} -> value.
func promSamples(t *testing.T, body io.Reader) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			t.Fatalf("unparsable metrics line %q", line)
		}
		v, err := strconv.ParseFloat(line[idx+1:], 64)
		if err != nil {
			t.Fatalf("unparsable value in %q: %v", line, err)
		}
		out[line[:idx]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan metrics: %v", err)
	}
	return out
}

// TestMetricsPrometheusHistograms trains a model and runs predictions, then
// asserts GET /metrics serves Prometheus-text histograms for train and
// predict latency with coherent counts, cumulative buckets, and quantiles.
func TestMetricsPrometheusHistograms(t *testing.T) {
	s, err := New(Config{Dir: t.TempDir(), Workers: 1, QueueDepth: 8})
	if err != nil {
		t.Fatalf("new server: %v", err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	st := runJob(t, ts, "/v1/train", trainBody())
	if st.State != JobSucceeded {
		t.Fatalf("job %+v", st)
	}
	// The trained model is 8-dimensional (trainBody's synthetic higgs); any
	// finite rows of matching width exercise the predict path.
	rows := make([][]float64, 32)
	for i := range rows {
		row := make([]float64, 8)
		for j := range row {
			row[j] = float64(i+1) * 0.1 * float64(j+1)
		}
		rows[i] = row
	}
	var pr PredictResponse
	if code := doJSON(t, client, http.MethodPost, ts.URL+"/v1/models/"+st.ModelID+"/predict", PredictRequest{Rows: rows}, &pr); code != http.StatusOK {
		t.Fatalf("predict status %d", code)
	}

	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q, want text/plain exposition", ct)
	}
	samples := promSamples(t, resp.Body)

	// The serve metrics are process singletons, so counts reflect every test
	// run so far in this process — at least the one train and one predict
	// batch issued above.
	for _, h := range []string{"blinkml_train_latency_ms", "blinkml_predict_latency_ms"} {
		count, ok := samples[h+"_count"]
		if !ok || count < 1 {
			t.Fatalf("%s_count = %v, want >= 1", h, count)
		}
		inf, ok := samples[h+`_bucket{le="+Inf"}`]
		if !ok || inf != count {
			t.Fatalf("%s +Inf bucket %v != count %v", h, inf, count)
		}
		if sum := samples[h+"_sum"]; sum <= 0 {
			t.Fatalf("%s_sum = %v, want > 0", h, sum)
		}
		p50, p95, p99 := samples[h+"_p50"], samples[h+"_p95"], samples[h+"_p99"]
		if p50 <= 0 || p50 > p95 || p95 > p99 {
			t.Fatalf("%s quantiles not monotone: p50=%v p95=%v p99=%v", h, p50, p95, p99)
		}
		// Buckets are cumulative, so none may exceed the total count (full
		// monotonicity is covered by the obs package tests).
		for name, v := range samples {
			if strings.HasPrefix(name, h+"_bucket") && v > count {
				t.Fatalf("%s bucket %s = %v exceeds count %v", h, name, v, count)
			}
		}
	}

	// The compute plane is on the same page (its run histogram is a
	// package-level var, so it is always published). The blinkml_cluster map
	// only exists once a coordinator has been constructed in the process, so
	// its presence is asserted by the cluster smoke in CI, not here.
	if _, ok := samples[`blinkml_compute_run_ms_bucket{le="+Inf"}`]; !ok {
		t.Fatal("metrics output missing blinkml_compute_run_ms histogram")
	}

	// The raw expvar JSON stays available for programmatic consumers.
	jr, err := client.Get(ts.URL + "/metrics.json")
	if err != nil {
		t.Fatalf("metrics.json: %v", err)
	}
	defer jr.Body.Close()
	var all map[string]json.RawMessage
	if err := json.NewDecoder(jr.Body).Decode(&all); err != nil {
		t.Fatalf("metrics.json is not a JSON object: %v", err)
	}
	if _, ok := all["blinkml"]; !ok {
		t.Fatal("metrics.json missing blinkml map")
	}
}

// TestClusterTraceRoundTrip is the end-to-end tracing acceptance check: a
// trace id injected at /v1/train on a coordinator-mode server must come back
// on worker-side spans in the job's stage breakdown.
func TestClusterTraceRoundTrip(t *testing.T) {
	_, ts := newClusterServer(t, clusterTestConfig())
	startClusterWorker(t, ts.URL, "w-trace")

	const trace = "cafebabe87654321"
	ack, _ := postTrainWithTrace(t, ts, trainBody(), trace)
	if ack.TraceID != trace {
		t.Fatalf("ack trace %q, want %q", ack.TraceID, trace)
	}
	st := waitJob(t, ts.Client(), ts.URL, ack.JobID, 90*time.Second)
	if st.State != JobSucceeded {
		t.Fatalf("job %+v, want succeeded", st)
	}
	if st.Trace == nil || st.Trace.TraceID != trace {
		t.Fatalf("job trace report %+v, want trace %q", st.Trace, trace)
	}
	remote := 0
	names := make(map[string]bool)
	for _, sp := range st.Trace.Spans {
		if sp.Trace != trace {
			t.Fatalf("span %q has trace %q, want %q", sp.Name, sp.Trace, trace)
		}
		if sp.Worker != "" {
			if sp.Worker != "w-trace" {
				t.Fatalf("span %q from unexpected worker %q", sp.Name, sp.Worker)
			}
			remote++
			names[sp.Name] = true
		}
	}
	if remote == 0 {
		t.Fatal("no worker-side spans rejoined the job's trace")
	}
	for _, want := range []string{"sample", "optimize", "statistics"} {
		if !names[want] {
			t.Fatalf("worker-side spans missing stage %q (got %v)", want, names)
		}
	}
	// The coordinator-side registry span coexists with the remote ones.
	local := false
	for _, stage := range st.Trace.Stages {
		if stage.Name == "registry" {
			local = true
		}
	}
	if !local {
		t.Fatal("stage breakdown missing coordinator-side registry stage")
	}
}

// TestHTTPMiddlewareOnServe checks the per-endpoint HTTP telemetry plane:
// every serve route runs through the shared obs middleware, so after real
// traffic /metrics must carry per-route status-class counters, latency
// histograms with bounded route labels, inflight gauges, the SLO window
// gauges, and the blinkml_go_* runtime series — and /healthz must report the
// live goroutine count.
func TestHTTPMiddlewareOnServe(t *testing.T) {
	s, err := New(Config{Dir: t.TempDir(), Workers: 1, QueueDepth: 8})
	if err != nil {
		t.Fatalf("new server: %v", err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	var h Health
	if code := doJSON(t, client, http.MethodGet, ts.URL+"/healthz", nil, &h); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	if h.Goroutines <= 0 {
		t.Fatalf("healthz goroutines %d, want > 0", h.Goroutines)
	}

	// A request to an unregistered model must land in the 4xx class for the
	// parameterized route label, not a per-id label.
	resp, err := client.Get(ts.URL + "/v1/models/no-such-model")
	if err != nil {
		t.Fatalf("get model: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing model status %d, want 404", resp.StatusCode)
	}

	mr, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	defer mr.Body.Close()
	samples := promSamples(t, mr.Body)

	// The middleware state is a process singleton, so counts are cumulative
	// across tests — assert presence and lower bounds only.
	if v := samples[`blinkml_http_requests_total{route="/healthz",class="2xx"}`]; v < 1 {
		t.Fatalf("healthz 2xx counter %v, want >= 1", v)
	}
	if v := samples[`blinkml_http_requests_total{route="/v1/models/{id}",class="4xx"}`]; v < 1 {
		t.Fatalf("models/{id} 4xx counter %v, want >= 1 (route labels must stay parameterized)", v)
	}
	for name := range samples {
		if strings.Contains(name, "no-such-model") {
			t.Fatalf("unbounded route label leaked into metrics: %s", name)
		}
	}
	if v := samples[`blinkml_http_request_ms_count{route="/healthz"}`]; v < 1 {
		t.Fatalf("healthz latency histogram count %v, want >= 1", v)
	}
	// The /metrics request itself is wrapped, so it is inflight while the
	// exposition is rendered.
	if v := samples["blinkml_http_inflight"]; v < 1 {
		t.Fatalf("global inflight gauge %v, want >= 1 (the scrape itself)", v)
	}
	if v := samples[`blinkml_http_route_inflight{route="/metrics"}`]; v < 1 {
		t.Fatalf("/metrics route inflight %v, want >= 1", v)
	}
	// SLO window gauges for a route that has seen traffic.
	if v := samples[`blinkml_http_slo_availability{route="/healthz"}`]; v != 1 {
		t.Fatalf("healthz availability %v, want 1 (no 5xx served)", v)
	}
	if v := samples[`blinkml_http_slo_latency_attainment{route="/healthz"}`]; v <= 0 || v > 1 {
		t.Fatalf("healthz latency attainment %v, want in (0, 1]", v)
	}
	if v := samples["blinkml_http_slo_latency_threshold_ms"]; v != obs.DefaultSLOLatencyMs {
		t.Fatalf("slo threshold %v, want default %v", v, obs.DefaultSLOLatencyMs)
	}

	// The runtime collector is registered by serve.New, so the scrape carries
	// Go runtime health series.
	if v := samples["blinkml_go_goroutines"]; v <= 0 {
		t.Fatalf("blinkml_go_goroutines %v, want > 0", v)
	}
	if _, ok := samples[`blinkml_go_gc_pause_seconds_bucket{le="+Inf"}`]; !ok {
		t.Fatal("metrics output missing blinkml_go_gc_pause_seconds histogram")
	}
}
