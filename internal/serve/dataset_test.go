package serve

import (
	"bytes"
	"encoding/json"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"blinkml/internal/datagen"
	"blinkml/internal/dataset"
	"blinkml/internal/modelio"
)

// higgsCSV renders a small binary-classification workload as CSV text.
func higgsCSV(t *testing.T, rows int) []byte {
	t.Helper()
	ds, err := datagen.Generate("higgs", datagen.Config{Rows: rows, Dim: 8, Seed: 5})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	var buf bytes.Buffer
	if err := dataset.WriteCSV(&buf, ds); err != nil {
		t.Fatalf("write csv: %v", err)
	}
	return buf.Bytes()
}

// uploadMultipart posts a multipart dataset upload and returns the decoded
// response.
func uploadMultipart(t *testing.T, client *http.Client, base string, fields map[string]string, file []byte) (StoredDataset, int) {
	t.Helper()
	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	for k, v := range fields {
		if err := mw.WriteField(k, v); err != nil {
			t.Fatal(err)
		}
	}
	fw, err := mw.CreateFormFile("file", "data.csv")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Write(file); err != nil {
		t.Fatal(err)
	}
	mw.Close()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/datasets", &body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", mw.FormDataContentType())
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info StoredDataset
	if resp.StatusCode == http.StatusCreated {
		if err := jsonDecode(resp, &info); err != nil {
			t.Fatalf("decode upload response: %v", err)
		}
	}
	return info, resp.StatusCode
}

func jsonDecode(resp *http.Response, v any) error {
	return json.NewDecoder(resp.Body).Decode(v)
}

func TestDatasetUploadTrainByIDMatchesInline(t *testing.T) {
	s, err := New(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("new server: %v", err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	const rows = 2500
	csv := higgsCSV(t, rows)

	// Streaming multipart upload.
	info, code := uploadMultipart(t, client, ts.URL, map[string]string{
		"format": "csv", "task": "binary", "name": "higgs-up",
	}, csv)
	if code != http.StatusCreated {
		t.Fatalf("upload status %d", code)
	}
	if info.Rows != rows || info.Dim != 8 || info.Task != "binary" || info.Name != "higgs-up" {
		t.Fatalf("upload info %+v", info)
	}

	// The dataset endpoints see it.
	var list DatasetList
	if code := doJSON(t, client, http.MethodGet, ts.URL+"/v1/datasets", nil, &list); code != http.StatusOK {
		t.Fatalf("list status %d", code)
	}
	if len(list.Datasets) != 1 || list.Datasets[0].ID != info.ID {
		t.Fatalf("list %+v", list)
	}
	var got StoredDataset
	if code := doJSON(t, client, http.MethodGet, ts.URL+"/v1/datasets/"+info.ID, nil, &got); code != http.StatusOK || got.Rows != rows {
		t.Fatalf("get status %d info %+v", code, got)
	}

	// Train by dataset_id.
	trainReq := func(ref DatasetRef) JobStatus {
		var tr TrainResponse
		code := doJSON(t, client, http.MethodPost, ts.URL+"/v1/train", TrainRequest{
			Model:   modelSpec("logistic"),
			Dataset: ref,
			Epsilon: 0.08,
			Options: TrainOptions{Seed: 7, InitialSampleSize: 400},
		}, &tr)
		if code != http.StatusAccepted {
			t.Fatalf("train submit status %d", code)
		}
		st := waitJob(t, client, ts.URL, tr.JobID, 60*time.Second)
		if st.State != JobSucceeded {
			t.Fatalf("job %s: %s (%s)", tr.JobID, st.State, st.Error)
		}
		return st
	}
	byID := trainReq(DatasetRef{ID: info.ID})

	// The equivalent inline request (same float bits: both sides parsed the
	// same CSV) at the same seed must produce the same model.
	mem, err := dataset.ReadCSV(bytes.NewReader(csv), -1, dataset.BinaryClassification)
	if err != nil {
		t.Fatal(err)
	}
	inline := &InlineData{Task: "binary", X: make([][]float64, mem.Len()), Y: mem.Y}
	for i := 0; i < mem.Len(); i++ {
		v := make([]float64, mem.Dim)
		mem.X[i].AddTo(v, 1)
		inline.X[i] = v
	}
	byInline := trainReq(DatasetRef{Inline: inline})

	var mID, mInline ModelInfo
	if code := doJSON(t, client, http.MethodGet, ts.URL+"/v1/models/"+byID.ModelID+"?theta=1", nil, &mID); code != http.StatusOK {
		t.Fatalf("model get %d", code)
	}
	if code := doJSON(t, client, http.MethodGet, ts.URL+"/v1/models/"+byInline.ModelID+"?theta=1", nil, &mInline); code != http.StatusOK {
		t.Fatalf("model get %d", code)
	}
	if mID.SampleSize != mInline.SampleSize || mID.PoolSize != mInline.PoolSize {
		t.Fatalf("store %d/%d vs inline %d/%d", mID.SampleSize, mID.PoolSize, mInline.SampleSize, mInline.PoolSize)
	}
	if len(mID.Theta) == 0 || len(mID.Theta) != len(mInline.Theta) {
		t.Fatalf("theta lengths %d vs %d", len(mID.Theta), len(mInline.Theta))
	}
	for i := range mID.Theta {
		if mID.Theta[i] != mInline.Theta[i] {
			t.Fatalf("theta[%d]: by-id %v vs inline %v", i, mID.Theta[i], mInline.Theta[i])
		}
	}

	// Delete and confirm it is gone.
	if code := doJSON(t, client, http.MethodDelete, ts.URL+"/v1/datasets/"+info.ID, nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete status %d", code)
	}
	if code := doJSON(t, client, http.MethodGet, ts.URL+"/v1/datasets/"+info.ID, nil, nil); code != http.StatusNotFound {
		t.Fatalf("get after delete status %d", code)
	}
}

func TestDatasetRawBodyUploadAndTuneByID(t *testing.T) {
	s, err := New(Config{Dir: t.TempDir(), Workers: 2})
	if err != nil {
		t.Fatalf("new server: %v", err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	// Raw-body upload with query parameters (the curl --data-binary path).
	csv := higgsCSV(t, 1500)
	resp, err := client.Post(ts.URL+"/v1/datasets?format=csv&task=binary&name=raw-up", "text/csv", bytes.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	var info StoredDataset
	if err := jsonDecode(resp, &info); err != nil || resp.StatusCode != http.StatusCreated {
		t.Fatalf("raw upload status %d err %v", resp.StatusCode, err)
	}
	resp.Body.Close()
	if info.Rows != 1500 || info.Name != "raw-up" {
		t.Fatalf("raw upload info %+v", info)
	}

	var tr TrainResponse
	code := doJSON(t, client, http.MethodPost, ts.URL+"/v1/tune", TuneRequest{
		Space: SpaceJSON{
			Grid: []modelio.SpecJSON{{Name: "logistic", Reg: 0.01}, {Name: "logistic", Reg: 0.0001}},
		},
		Dataset: DatasetRef{ID: info.ID},
		Epsilon: 0.1,
		Options: TuneOptions{Seed: 5, InitialSampleSize: 300},
	}, &tr)
	if code != http.StatusAccepted {
		t.Fatalf("tune submit status %d", code)
	}
	st := waitJob(t, client, ts.URL, tr.JobID, 120*time.Second)
	if st.State != JobSucceeded {
		t.Fatalf("tune job: %s (%s)", st.State, st.Error)
	}
	if st.Tune == nil || len(st.Tune.Leaderboard) != 2 {
		t.Fatalf("tune report %+v", st.Tune)
	}
}

func TestDatasetUploadValidationAndUnknownID(t *testing.T) {
	s, err := New(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("new server: %v", err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	// Missing format/task.
	resp, err := client.Post(ts.URL+"/v1/datasets", "text/csv", strings.NewReader("1,2,0\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("parameterless upload status %d", resp.StatusCode)
	}

	// A parse error mid-stream surfaces with the offending location.
	resp, err = client.Post(ts.URL+"/v1/datasets?format=csv&task=binary", "text/csv",
		strings.NewReader("1,2,0\n1,zap,1\n"))
	if err != nil {
		t.Fatal(err)
	}
	var eresp ErrorResponse
	if err := jsonDecode(resp, &eresp); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad csv upload status %d", resp.StatusCode)
	}
	for _, want := range []string{"line 2", "column 2", "zap"} {
		if !strings.Contains(eresp.Error, want) {
			t.Fatalf("parse error %q does not name %q", eresp.Error, want)
		}
	}

	// Train against a dataset_id that does not exist → 404 at submit time.
	code := doJSON(t, client, http.MethodPost, ts.URL+"/v1/train", TrainRequest{
		Model:   modelSpec("logistic"),
		Dataset: DatasetRef{ID: "d-999999"},
		Epsilon: 0.05,
	}, nil)
	if code != http.StatusNotFound {
		t.Fatalf("unknown dataset_id train status %d", code)
	}

	// A ref naming two sources is rejected.
	code = doJSON(t, client, http.MethodPost, ts.URL+"/v1/train", TrainRequest{
		Model:   modelSpec("logistic"),
		Dataset: DatasetRef{ID: "d-000001", Synthetic: &SyntheticRef{Name: "higgs"}},
		Epsilon: 0.05,
	}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("ambiguous dataset ref status %d", code)
	}
}

func TestDatasetStoreSurvivesServerRestart(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatalf("new server: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	client := ts.Client()
	info, code := uploadMultipart(t, client, ts.URL, map[string]string{
		"format": "csv", "task": "binary",
	}, higgsCSV(t, 500))
	if code != http.StatusCreated {
		t.Fatalf("upload status %d", code)
	}
	ts.Close()
	s.Close()

	s2, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatalf("reopen server: %v", err)
	}
	defer s2.Close()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	var got StoredDataset
	if code := doJSON(t, ts2.Client(), http.MethodGet, ts2.URL+"/v1/datasets/"+info.ID, nil, &got); code != http.StatusOK {
		t.Fatalf("get after restart status %d", code)
	}
	if got.Rows != 500 {
		t.Fatalf("restarted manifest %+v", got)
	}
	var h Health
	if code := doJSON(t, ts2.Client(), http.MethodGet, ts2.URL+"/healthz", nil, &h); code != http.StatusOK || h.Datasets != 1 {
		t.Fatalf("healthz after restart: %d datasets (status %d)", h.Datasets, code)
	}
}

// TestMultipartUploadHonorsMaxUploadBytes: the multipart path must flow
// through the same byte cap as raw uploads (413, not an unbounded write).
func TestMultipartUploadHonorsMaxUploadBytes(t *testing.T) {
	s, err := New(Config{Dir: t.TempDir(), MaxUploadBytes: 10 << 10})
	if err != nil {
		t.Fatalf("new server: %v", err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, code := uploadMultipart(t, ts.Client(), ts.URL, map[string]string{
		"format": "csv", "task": "binary",
	}, higgsCSV(t, 2000)) // ~600 KB, far over the 10 KiB cap
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized multipart upload status %d, want 413", code)
	}
	if s.Store().Len() != 0 {
		t.Fatalf("capped upload still stored %d datasets", s.Store().Len())
	}
}
