package serve

import (
	"context"
	"errors"
	"testing"
	"time"
)

// waitState polls until the job reaches a terminal state or the deadline
// passes, returning the final snapshot.
func waitState(t *testing.T, q *Queue, id string, timeout time.Duration) JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		job, err := q.Get(id)
		if err != nil {
			t.Fatalf("get job %s: %v", id, err)
		}
		st := job.Status()
		if st.Done() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", id, st.State, timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// fnTask adapts a closure to the Task interface for queue tests.
type fnTask func(ctx context.Context) (TaskResult, error)

func (fnTask) Kind() string                                  { return "train" }
func (t fnTask) Run(ctx context.Context) (TaskResult, error) { return t(ctx) }

func TestQueueRunsJobs(t *testing.T) {
	run := fnTask(func(ctx context.Context) (TaskResult, error) {
		return TaskResult{ModelID: "m-000001", Diagnostics: &PhaseBreakdown{TotalMs: 1}}, nil
	})
	q := NewQueue(2, 8, nil)
	defer q.Close()
	job, err := q.Enqueue(run)
	if err != nil {
		t.Fatalf("enqueue: %v", err)
	}
	st := waitState(t, q, job.ID, 5*time.Second)
	if st.State != JobSucceeded || st.ModelID != "m-000001" {
		t.Fatalf("got %+v, want succeeded with model id", st)
	}
	if st.Diagnostics == nil || st.Diagnostics.TotalMs != 1 {
		t.Fatalf("diagnostics not propagated: %+v", st.Diagnostics)
	}
	if st.FinishedAt.Before(st.StartedAt) || st.StartedAt.Before(st.EnqueuedAt) {
		t.Fatalf("timestamps out of order: %+v", st)
	}
}

func TestQueueFailurePropagates(t *testing.T) {
	boom := errors.New("synthetic failure")
	run := fnTask(func(ctx context.Context) (TaskResult, error) {
		return TaskResult{}, boom
	})
	q := NewQueue(1, 4, nil)
	defer q.Close()
	job, _ := q.Enqueue(run)
	st := waitState(t, q, job.ID, 5*time.Second)
	if st.State != JobFailed || st.Error != boom.Error() {
		t.Fatalf("got %+v, want failed with error message", st)
	}
}

// TestQueueCancelRunning injects a run function that blocks until its
// context is cancelled — a deterministic stand-in for a long training loop.
func TestQueueCancelRunning(t *testing.T) {
	started := make(chan struct{})
	run := fnTask(func(ctx context.Context) (TaskResult, error) {
		close(started)
		<-ctx.Done() // "training" stops only when the job context says so
		return TaskResult{}, ctx.Err()
	})
	q := NewQueue(1, 4, nil)
	defer q.Close()
	job, _ := q.Enqueue(run)
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("job never started")
	}
	if _, err := q.Cancel(job.ID); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	st := waitState(t, q, job.ID, 5*time.Second)
	if st.State != JobCancelled {
		t.Fatalf("state %s, want cancelled", st.State)
	}
}

// TestQueueCancelQueued cancels a job that is still waiting behind a
// blocked worker: it must be marked cancelled without ever running.
func TestQueueCancelQueued(t *testing.T) {
	release := make(chan struct{})
	ran := make(chan string, 8)
	run := fnTask(func(ctx context.Context) (TaskResult, error) {
		<-release
		ran <- "ran"
		return TaskResult{ModelID: "m-000001"}, nil
	})
	q := NewQueue(1, 4, nil)
	defer q.Close()
	blocker, _ := q.Enqueue(run)
	waiting, err := q.Enqueue(run)
	if err != nil {
		t.Fatalf("enqueue waiting job: %v", err)
	}
	if _, err := q.Cancel(waiting.ID); err != nil {
		t.Fatalf("cancel queued: %v", err)
	}
	if st := waiting.Status(); st.State != JobCancelled || st.StartedAt != (time.Time{}) {
		t.Fatalf("queued job %+v, want cancelled and never started", st)
	}
	close(release)
	if st := waitState(t, q, blocker.ID, 5*time.Second); st.State != JobSucceeded {
		t.Fatalf("blocker %+v, want succeeded", st)
	}
	// Only the blocker may have run.
	if n := len(ran); n != 1 {
		t.Fatalf("%d jobs ran, want 1", n)
	}
}

func TestQueueBackpressure(t *testing.T) {
	release := make(chan struct{})
	run := fnTask(func(ctx context.Context) (TaskResult, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return TaskResult{}, ctx.Err()
	})
	q := NewQueue(1, 1, nil)
	defer q.Close()
	defer close(release)
	// One running + one queued fit; give the worker a moment to pick up the
	// first so the single buffer slot frees.
	first, _ := q.Enqueue(run)
	deadline := time.Now().Add(5 * time.Second)
	for first.Status().State != JobRunning {
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := q.Enqueue(run); err != nil {
		t.Fatalf("second enqueue should fit in the buffer: %v", err)
	}
	if _, err := q.Enqueue(run); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third enqueue err = %v, want ErrQueueFull", err)
	}
}

func TestQueueClosedRejects(t *testing.T) {
	q := NewQueue(1, 1, nil)
	q.Close()
	noop := fnTask(func(ctx context.Context) (TaskResult, error) { return TaskResult{}, nil })
	if _, err := q.Enqueue(noop); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("err = %v, want ErrQueueClosed", err)
	}
}
