package serve

import (
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strconv"
	"strings"
	"time"

	"blinkml/internal/store"
)

// StoredDataset is the wire view of a stored dataset (POST/GET
// /v1/datasets): the manifest without the checksums.
type StoredDataset struct {
	ID           string    `json:"id"`
	Name         string    `json:"name"`
	Task         string    `json:"task"`
	Rows         int       `json:"rows"`
	Dim          int       `json:"dim"`
	Classes      int       `json:"classes,omitempty"`
	Sparse       bool      `json:"sparse"`
	// Encoding is the row record format on disk: "sparse" or "dense".
	Encoding   string  `json:"encoding"`
	NNZ        int64   `json:"nnz"`
	MeanNNZRow float64 `json:"mean_nnz_per_row"`
	Density    float64 `json:"density"`
	DiskBytes    int64     `json:"disk_bytes"`
	SourceFormat string    `json:"source_format"`
	LabelMin     float64   `json:"label_min"`
	LabelMax     float64   `json:"label_max"`
	LabelMean    float64   `json:"label_mean"`
	CreatedAt    time.Time `json:"created_at,omitzero"`
}

// NewDatasetInfo builds the wire view of a store handle.
func NewDatasetInfo(h *store.Handle) StoredDataset {
	man := h.Manifest()
	encoding := "dense"
	if man.Sparse {
		encoding = "sparse"
	}
	meanNNZ := 0.0
	if man.Rows > 0 {
		meanNNZ = float64(man.NNZ) / float64(man.Rows)
	}
	return StoredDataset{
		ID:           h.ID,
		Name:         man.Name,
		Task:         man.Task,
		Rows:         man.Rows,
		Dim:          man.Dim,
		Classes:      man.NumClasses,
		Sparse:       man.Sparse,
		Encoding:     encoding,
		NNZ:          man.NNZ,
		MeanNNZRow:   meanNNZ,
		Density:      man.Density(),
		DiskBytes:    h.DiskBytes(),
		SourceFormat: man.SourceFormat,
		LabelMin:     man.LabelMin,
		LabelMax:     man.LabelMax,
		LabelMean:    man.LabelMean,
		CreatedAt:    man.CreatedAt,
	}
}

// DatasetList is the body of GET /v1/datasets.
type DatasetList struct {
	Datasets []StoredDataset `json:"datasets"`
}

// handleDatasetUpload is POST /v1/datasets: a streaming upload — the body
// flows through the parser into the store chunk by chunk and is never
// fully resident. Two encodings are accepted:
//
//   - multipart/form-data with the text fields (format, task, name,
//     label_col, dim, classes, max_line_bytes) before a "file" part that
//     carries the data;
//   - a raw body with the same parameters as query-string values, for
//     curl --data-binary pipelines.
func (s *Server) handleDatasetUpload(w http.ResponseWriter, r *http.Request) {
	// The cap tracker remembers when MaxBytesReader fires: intermediate
	// readers (multipart framing, the line scanner) can swallow the typed
	// error — a cap-truncated body often surfaces as a bogus parse error on
	// its final partial line — so the 413 decision must not depend on what
	// error bubbles out.
	body := &cappedBody{rc: http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)}

	var (
		opt  store.IngestOptions
		data io.Reader
	)
	params := ingestParams{}
	ct, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	if ct == "multipart/form-data" {
		// MultipartReader consumes r.Body directly; swap in the capped
		// reader so multipart uploads honor MaxUploadBytes too.
		r.Body = body
		mr, err := r.MultipartReader()
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad multipart body: %w", err))
			return
		}
		for {
			part, err := mr.NextPart()
			if err == io.EOF {
				writeError(w, http.StatusBadRequest, errors.New(`serve: multipart upload needs a "file" part (after the parameter fields)`))
				return
			}
			if err != nil {
				s.writeUploadError(w, body, err)
				return
			}
			if part.FormName() == "file" {
				data = part
				break
			}
			val, err := io.ReadAll(io.LimitReader(part, 1<<10))
			if err != nil {
				s.writeUploadError(w, body, err)
				return
			}
			if err := params.set(part.FormName(), string(val)); err != nil {
				writeError(w, http.StatusBadRequest, err)
				return
			}
		}
	} else {
		q := r.URL.Query()
		for _, key := range []string{"format", "task", "name", "label_col", "dim", "classes", "max_line_bytes"} {
			if v := q.Get(key); v != "" {
				if err := params.set(key, v); err != nil {
					writeError(w, http.StatusBadRequest, err)
					return
				}
			}
		}
		data = body
	}

	opt, err := params.options()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	h, err := s.store.Ingest(data, opt)
	if err != nil {
		s.writeUploadError(w, body, err)
		return
	}
	s.refreshStoreGauges()
	w.Header().Set("Location", "/v1/datasets/"+h.ID)
	writeJSON(w, http.StatusCreated, NewDatasetInfo(h))
}

// writeUploadError maps a mid-stream failure: an oversized body surfaces
// as 413 — whether the typed MaxBytesError survived the reader chain or
// the tracker caught it — everything else (parse errors included) as 400.
func (s *Server) writeUploadError(w http.ResponseWriter, body *cappedBody, err error) {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) || body.exceeded {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("serve: upload exceeds %d bytes", s.cfg.MaxUploadBytes))
		return
	}
	writeError(w, http.StatusBadRequest, err)
}

// cappedBody wraps the MaxBytesReader-limited request body and records
// whether the cap ever fired, regardless of how intermediate readers
// rewrite the error.
type cappedBody struct {
	rc       io.ReadCloser
	exceeded bool
}

func (c *cappedBody) Read(p []byte) (int, error) {
	n, err := c.rc.Read(p)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			c.exceeded = true
		}
	}
	return n, err
}

func (c *cappedBody) Close() error { return c.rc.Close() }

// ingestParams collects the textual upload parameters from either encoding
// before they are turned into store.IngestOptions.
type ingestParams struct {
	format, task, name         string
	labelCol                   *int
	dim, classes, maxLineBytes int
}

func (p *ingestParams) set(key, val string) error {
	atoi := func() (int, error) {
		n, err := strconv.Atoi(val)
		if err != nil {
			return 0, fmt.Errorf("serve: upload parameter %s=%q is not an integer", key, val)
		}
		return n, nil
	}
	var err error
	switch key {
	case "format":
		p.format = val
	case "task":
		p.task = val
	case "name":
		p.name = val
	case "label_col":
		var n int
		if n, err = atoi(); err == nil {
			p.labelCol = &n
		}
	case "dim":
		p.dim, err = atoi()
	case "classes":
		p.classes, err = atoi()
	case "max_line_bytes":
		p.maxLineBytes, err = atoi()
	default:
		return fmt.Errorf("serve: unknown upload parameter %q", key)
	}
	return err
}

func (p *ingestParams) options() (store.IngestOptions, error) {
	if p.format == "" {
		return store.IngestOptions{}, errors.New("serve: upload needs format=csv|libsvm")
	}
	if p.task == "" {
		return store.IngestOptions{}, errors.New("serve: upload needs task=regression|binary|multiclass|unsupervised")
	}
	task, err := ParseTask(p.task)
	if err != nil {
		return store.IngestOptions{}, err
	}
	return store.IngestOptions{
		Name:         p.name,
		Format:       p.format,
		Task:         task,
		NumClasses:   p.classes,
		LabelCol:     p.labelCol,
		Dim:          p.dim,
		MaxLineBytes: p.maxLineBytes,
	}, nil
}

func (s *Server) handleDatasetList(w http.ResponseWriter, r *http.Request) {
	ids := s.store.List()
	list := DatasetList{Datasets: make([]StoredDataset, 0, len(ids))}
	for _, id := range ids {
		h, err := s.store.Get(id)
		if err != nil {
			continue // deleted between List and Get
		}
		list.Datasets = append(list.Datasets, NewDatasetInfo(h))
	}
	writeJSON(w, http.StatusOK, list)
}

func (s *Server) handleDatasetGet(w http.ResponseWriter, r *http.Request) {
	h, err := s.store.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, NewDatasetInfo(h))
}

func (s *Server) handleDatasetDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// A dataset referenced by queued or running work must not be pulled out
	// from under it: the job would fail mid-task with a read error. 409
	// names the jobs so the client can cancel or wait them out. (A job
	// admitted between this check and the delete loses the race and fails
	// when it resolves the id — the honest outcome either way.)
	if jobs := s.queue.ActiveDatasetJobs(id); len(jobs) > 0 {
		writeJSON(w, http.StatusConflict, ErrorResponse{
			Error: fmt.Sprintf("serve: dataset %s is referenced by active jobs: %s", id, strings.Join(jobs, ", ")),
			Jobs:  jobs,
		})
		return
	}
	if err := s.store.Delete(id); err != nil {
		status := http.StatusNotFound
		if !errors.Is(err, store.ErrNotFound) {
			status = http.StatusInternalServerError
		}
		writeError(w, status, err)
		return
	}
	s.refreshStoreGauges()
	w.WriteHeader(http.StatusNoContent)
}

// refreshStoreGauges resets the dataset gauges after any store mutation.
func (s *Server) refreshStoreGauges() {
	s.m.DatasetsStored.Set(int64(s.store.Len()))
	s.m.DatasetBytes.Set(s.store.DiskBytes())
	rows, nnz := s.store.SparseStats()
	s.m.DatasetsSparseRows.Set(rows)
	s.m.DatasetSparseNNZ.Set(nnz)
}
