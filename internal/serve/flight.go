package serve

import (
	"errors"
	"net/http"
	"os"
	"strings"
	"time"

	"blinkml/internal/obs"
)

// Flight-recorder debug surface: list and fetch the diagnostic bundles the
// recorder dumped on SLO breaches and slow requests. Disabled (404) unless
// the server was started with Config.FlightDir.

// FlightList is the body of GET /v1/debug/flightrecords.
type FlightList struct {
	// Dir is the on-disk bundle directory.
	Dir string `json:"dir"`
	// Dumps counts bundles written since the server started (rotation may
	// have removed some from disk).
	Dumps   int64            `json:"dumps"`
	Bundles []obs.BundleInfo `json:"bundles"`
}

func (s *Server) flightEnabled(w http.ResponseWriter) bool {
	if s.flight == nil {
		writeError(w, http.StatusNotFound,
			errors.New("serve: flight recorder disabled (start with -flight-dir)"))
		return false
	}
	return true
}

func (s *Server) handleFlightList(w http.ResponseWriter, r *http.Request) {
	if !s.flightEnabled(w) {
		return
	}
	bundles, err := s.flight.Bundles()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, FlightList{
		Dir:     s.flight.Dir(),
		Dumps:   s.flight.Dumps(),
		Bundles: bundles,
	})
}

func (s *Server) handleFlightGet(w http.ResponseWriter, r *http.Request) {
	if !s.flightEnabled(w) {
		return
	}
	name := r.PathValue("name")
	bundles, err := s.flight.Bundles()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	for _, b := range bundles {
		if b.Name == name {
			writeJSON(w, http.StatusOK, b)
			return
		}
	}
	writeError(w, http.StatusNotFound, errors.New("serve: no such flight-record bundle"))
}

func (s *Server) handleFlightFile(w http.ResponseWriter, r *http.Request) {
	if !s.flightEnabled(w) {
		return
	}
	b, err := s.flight.ReadBundleFile(r.PathValue("name"), r.PathValue("file"))
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, os.ErrNotExist) {
			status = http.StatusNotFound
		}
		writeError(w, status, errors.New("serve: no such flight-record file"))
		return
	}
	w.Header().Set("Content-Type", flightContentType(r.PathValue("file")))
	w.Header().Set("Last-Modified", time.Now().UTC().Format(http.TimeFormat))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(b)
}

// flightContentType picks a content type by bundle-file suffix: JSON bundle
// members render inline, profiles download as binaries.
func flightContentType(name string) string {
	switch {
	case strings.HasSuffix(name, ".json"):
		return "application/json"
	case strings.HasSuffix(name, ".txt"):
		return "text/plain; charset=utf-8"
	default:
		return "application/octet-stream"
	}
}
