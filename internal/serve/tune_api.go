package serve

// Wire types for POST /v1/tune: a hyperparameter search runs through the
// same async job queue as training (pollable via GET /v1/jobs/{id},
// cancellable via DELETE /v1/jobs/{id}); on success the winning model is
// registered in the persistent registry like any trained model, and the job
// status carries the ranked leaderboard.

import (
	"errors"
	"fmt"
	"math"
	"time"

	"blinkml/internal/modelio"
	"blinkml/internal/tune"
)

// TuneRequest is the body of POST /v1/tune: a candidate space, a dataset
// reference, and the (ε, δ) contract every surviving candidate is trained
// under.
type TuneRequest struct {
	Space   SpaceJSON  `json:"space"`
	Dataset DatasetRef `json:"dataset"`
	// Epsilon is the requested error bound ε in (0, 1].
	Epsilon float64 `json:"epsilon"`
	// Delta is the allowed violation probability δ (default 0.05).
	Delta   float64     `json:"delta,omitempty"`
	Options TuneOptions `json:"options,omitzero"`
}

// SpaceJSON is the wire form of tune.Space: an explicit grid of model
// specs, a random sampler, or both.
type SpaceJSON struct {
	Grid   []modelio.SpecJSON `json:"grid,omitempty"`
	Random *RandomSpaceJSON   `json:"random,omitempty"`
}

// RandomSpaceJSON is the wire form of tune.RandomSpace.
type RandomSpaceJSON struct {
	// Model is the family: "linear", "logistic", "maxent", "poisson", or
	// "ppca".
	Model string `json:"model"`
	// Candidates is how many to draw (default 10).
	Candidates int `json:"candidates,omitempty"`
	// RegMin/RegMax bound the log-uniform L2 range (default [1e-6, 1]).
	RegMin float64 `json:"reg_min,omitempty"`
	RegMax float64 `json:"reg_max,omitempty"`
	// Classes is K for maxent.
	Classes int `json:"classes,omitempty"`
	// FactorsMin/FactorsMax bound PPCA's factor draw (default [2, 10]).
	FactorsMin int `json:"factors_min,omitempty"`
	FactorsMax int `json:"factors_max,omitempty"`
}

// TuneOptions exposes the search knobs that make sense per-request.
type TuneOptions struct {
	Seed              int64 `json:"seed,omitempty"`
	Workers           int   `json:"workers,omitempty"`
	Halving           bool  `json:"halving,omitempty"`
	Rungs             int   `json:"rungs,omitempty"`
	Eta               int   `json:"eta,omitempty"`
	InitialSampleSize int   `json:"initial_sample_size,omitempty"`
	MaxIters          int   `json:"max_iters,omitempty"`
	// TestFraction carves a test split for the leaderboard metric (default
	// 0.15).
	TestFraction float64 `json:"test_fraction,omitempty"`
}

// Space converts the wire space to the library form.
func (s SpaceJSON) Space() (tune.Space, error) {
	out := tune.Space{}
	for i, sj := range s.Grid {
		spec, err := sj.Spec()
		if err != nil {
			return tune.Space{}, fmt.Errorf("serve: grid candidate %d: %w", i, err)
		}
		out.Grid = append(out.Grid, spec)
	}
	if s.Random != nil {
		r := s.Random
		out.Random = &tune.RandomSpace{
			Model:      r.Model,
			N:          r.Candidates,
			RegMin:     r.RegMin,
			RegMax:     r.RegMax,
			Classes:    r.Classes,
			FactorsMin: r.FactorsMin,
			FactorsMax: r.FactorsMax,
		}
	}
	return out, nil
}

// Validate checks the request before it is admitted to the queue.
func (r *TuneRequest) Validate() error {
	space, err := r.Space.Space()
	if err != nil {
		return err
	}
	if err := space.Validate(); err != nil {
		return err
	}
	if r.Epsilon <= 0 || r.Epsilon > 1 {
		return fmt.Errorf("serve: epsilon must be in (0,1], got %v", r.Epsilon)
	}
	if r.Delta < 0 || r.Delta >= 1 {
		return fmt.Errorf("serve: delta must be in [0,1), got %v", r.Delta)
	}
	if o := r.Options; o.Rungs < 0 || o.Eta < 0 || o.Workers < 0 {
		return errors.New("serve: tune options must be non-negative")
	}
	if tf := r.Options.TestFraction; tf < 0 || tf >= 1 {
		return fmt.Errorf("serve: test_fraction must be in [0,1), got %v", tf)
	}
	return r.Dataset.Validate()
}

// TuneReport is the search summary attached to a finished tune job.
type TuneReport struct {
	// Evaluated and Pruned count candidates entered and halving-pruned.
	Evaluated int `json:"evaluated"`
	Pruned    int `json:"pruned"`
	// PoolSize is N, the shared training pool.
	PoolSize int `json:"pool_size"`
	// ElapsedMs is the whole search's wall-clock time.
	ElapsedMs float64 `json:"elapsed_ms"`
	// Leaderboard ranks every candidate best-first.
	Leaderboard []TuneEntryJSON `json:"leaderboard"`
}

// TuneEntryJSON is one wire leaderboard row.
type TuneEntryJSON struct {
	Rank int              `json:"rank"`
	Spec modelio.SpecJSON `json:"spec"`
	// Origin is "grid" or "random".
	Origin string `json:"origin"`
	// TestError is the evaluation-set generalization error (omitted when
	// the model class has no supervised test metric).
	TestError *float64 `json:"test_error,omitempty"`
	// EstimatedEpsilon is the contract bound (survivors only).
	EstimatedEpsilon float64 `json:"estimated_epsilon,omitempty"`
	SampleSize       int     `json:"sample_size,omitempty"`
	// Rung counts completed successive-halving rungs.
	Rung   int     `json:"rung,omitempty"`
	Pruned bool    `json:"pruned,omitempty"`
	WallMs float64 `json:"wall_ms"`
	Error  string  `json:"error,omitempty"`
}

// NewTuneReport converts a tune result to the wire form.
func NewTuneReport(res *tune.Result) (*TuneReport, error) {
	rep := &TuneReport{
		Evaluated:   res.Evaluated,
		Pruned:      res.Pruned,
		PoolSize:    res.PoolSize,
		ElapsedMs:   float64(res.Elapsed) / float64(time.Millisecond),
		Leaderboard: make([]TuneEntryJSON, 0, len(res.Entries)),
	}
	for _, e := range res.Entries {
		row, err := newTuneEntryJSON(e)
		if err != nil {
			return nil, err
		}
		rep.Leaderboard = append(rep.Leaderboard, row)
	}
	return rep, nil
}

func newTuneEntryJSON(e tune.Entry) (TuneEntryJSON, error) {
	sj, err := modelio.SpecToJSON(e.Spec)
	if err != nil {
		return TuneEntryJSON{}, err
	}
	row := TuneEntryJSON{
		Rank:             e.Rank,
		Spec:             sj,
		Origin:           e.Origin,
		EstimatedEpsilon: e.EstimatedEpsilon,
		SampleSize:       e.SampleSize,
		Rung:             e.Rung,
		Pruned:           e.Pruned,
		WallMs:           float64(e.Wall) / float64(time.Millisecond),
		Error:            e.Err,
	}
	if !math.IsNaN(e.TestError) {
		v := e.TestError
		row.TestError = &v
	}
	return row, nil
}
