package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"blinkml/internal/modelio"
)

// TestTuneEndToEnd is the acceptance scenario for the serving layer: POST
// /v1/tune with a successive-halving random search over logistic-regression
// candidates on an inline higgs workload, poll the job to completion, check
// the leaderboard, and predict with the registered winning model.
func TestTuneEndToEnd(t *testing.T) {
	s, err := New(Config{Dir: t.TempDir(), Workers: 2, QueueDepth: 8})
	if err != nil {
		t.Fatalf("new server: %v", err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	inline, probe := inlineHiggs(t, 3000)
	tuneReq := TuneRequest{
		Space: SpaceJSON{
			Random: &RandomSpaceJSON{Model: "logistic", Candidates: 20, RegMin: 1e-6, RegMax: 1},
		},
		Dataset: DatasetRef{Inline: inline},
		Epsilon: 0.1,
		Delta:   0.05,
		Options: TuneOptions{
			Seed:              11,
			Workers:           2,
			Halving:           true,
			Rungs:             2,
			Eta:               2,
			InitialSampleSize: 300,
		},
	}
	var tr TrainResponse
	if code := doJSON(t, client, http.MethodPost, ts.URL+"/v1/tune", tuneReq, &tr); code != http.StatusAccepted {
		t.Fatalf("tune status %d", code)
	}
	if tr.JobID == "" || tr.State != JobQueued {
		t.Fatalf("tune response %+v", tr)
	}

	st := waitJob(t, client, ts.URL, tr.JobID, 120*time.Second)
	if st.State != JobSucceeded {
		t.Fatalf("job %+v, want succeeded", st)
	}
	if st.Kind != "tune" {
		t.Fatalf("job kind %q, want tune", st.Kind)
	}
	if st.ModelID == "" {
		t.Fatal("winning model not registered")
	}
	if st.Diagnostics == nil || st.Diagnostics.TotalMs <= 0 {
		t.Fatalf("missing winner diagnostics: %+v", st.Diagnostics)
	}
	rep := st.Tune
	if rep == nil {
		t.Fatal("missing tune report")
	}
	if rep.Evaluated != 20 || len(rep.Leaderboard) != 20 {
		t.Fatalf("report evaluated=%d rows=%d, want 20", rep.Evaluated, len(rep.Leaderboard))
	}
	if rep.Pruned == 0 {
		t.Fatal("halving pruned nothing")
	}
	lead := rep.Leaderboard[0]
	if lead.Rank != 1 || lead.Spec.Name != "logistic" || lead.Pruned || lead.TestError == nil {
		t.Fatalf("leaderboard head %+v", lead)
	}
	if lead.EstimatedEpsilon <= 0 || lead.EstimatedEpsilon > 0.1 {
		t.Fatalf("winner epsilon %v outside (0, 0.1]", lead.EstimatedEpsilon)
	}

	// The registered winner serves predictions.
	var info ModelInfo
	if code := doJSON(t, client, http.MethodGet, ts.URL+"/v1/models/"+st.ModelID, nil, &info); code != http.StatusOK {
		t.Fatalf("model get status %d", code)
	}
	if info.Spec.Name != "logistic" || info.Spec.Reg != lead.Spec.Reg {
		t.Fatalf("registered model %+v does not match leaderboard winner %+v", info.Spec, lead.Spec)
	}
	var pr PredictResponse
	if code := doJSON(t, client, http.MethodPost, ts.URL+"/v1/models/"+st.ModelID+"/predict", PredictRequest{Rows: probe}, &pr); code != http.StatusOK {
		t.Fatalf("predict status %d", code)
	}
	if len(pr.Predictions) != len(probe) {
		t.Fatalf("%d predictions for %d rows", len(pr.Predictions), len(probe))
	}
	for i, p := range pr.Predictions {
		if p != 0 && p != 1 {
			t.Fatalf("prediction %d = %v, want a class in {0,1}", i, p)
		}
	}
}

// TestTuneCancellation cancels a running tune job over HTTP and checks it
// reaches the cancelled state without registering a model.
func TestTuneCancellation(t *testing.T) {
	s, err := New(Config{Dir: t.TempDir(), Workers: 1})
	if err != nil {
		t.Fatalf("new server: %v", err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	// A big flat sweep that cannot finish instantly.
	tuneReq := TuneRequest{
		Space: SpaceJSON{
			Random: &RandomSpaceJSON{Model: "logistic", Candidates: 64},
		},
		Dataset: DatasetRef{Synthetic: &SyntheticRef{Name: "higgs", Rows: 60000, Seed: 5}},
		Epsilon: 0.02,
		Options: TuneOptions{Seed: 5, Workers: 1},
	}
	var tr TrainResponse
	if code := doJSON(t, client, http.MethodPost, ts.URL+"/v1/tune", tuneReq, &tr); code != http.StatusAccepted {
		t.Fatalf("tune status %d", code)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st JobStatus
		doJSON(t, client, http.MethodGet, ts.URL+"/v1/jobs/"+tr.JobID, nil, &st)
		if st.State == JobRunning {
			break
		}
		if st.Done() {
			t.Fatalf("job finished before cancel: %+v", st)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if code := doJSON(t, client, http.MethodDelete, ts.URL+"/v1/jobs/"+tr.JobID, nil, nil); code != http.StatusOK {
		t.Fatalf("cancel status %d", code)
	}
	final := waitJob(t, client, ts.URL, tr.JobID, 60*time.Second)
	if final.State != JobCancelled {
		t.Fatalf("job %+v, want cancelled", final)
	}
	if final.ModelID != "" || s.Registry().Len() != 0 {
		t.Fatalf("cancelled tune left a model: %+v (registry %d)", final, s.Registry().Len())
	}
}

// TestTuneRequestValidation exercises the admission-time error paths of
// POST /v1/tune.
func TestTuneRequestValidation(t *testing.T) {
	s, err := New(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("new server: %v", err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	higgsRef := DatasetRef{Synthetic: &SyntheticRef{Name: "higgs"}}
	cases := []struct {
		name string
		req  TuneRequest
	}{
		{"empty space", TuneRequest{Epsilon: 0.1, Dataset: higgsRef}},
		{"unknown family", TuneRequest{Epsilon: 0.1, Dataset: higgsRef,
			Space: SpaceJSON{Random: &RandomSpaceJSON{Model: "svm"}}}},
		{"bad grid spec", TuneRequest{Epsilon: 0.1, Dataset: higgsRef,
			Space: SpaceJSON{Grid: []modelio.SpecJSON{{Name: "svm"}}}}},
		{"bad epsilon", TuneRequest{Epsilon: 2, Dataset: higgsRef,
			Space: SpaceJSON{Random: &RandomSpaceJSON{Model: "logistic"}}}},
		{"bad test fraction", TuneRequest{Epsilon: 0.1, Dataset: higgsRef,
			Space:   SpaceJSON{Random: &RandomSpaceJSON{Model: "logistic"}},
			Options: TuneOptions{TestFraction: 1.5}}},
		{"missing dataset", TuneRequest{Epsilon: 0.1,
			Space: SpaceJSON{Random: &RandomSpaceJSON{Model: "logistic"}}}},
	}
	for _, tc := range cases {
		var er ErrorResponse
		if code := doJSON(t, client, http.MethodPost, ts.URL+"/v1/tune", tc.req, &er); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, code)
		} else if er.Error == "" {
			t.Errorf("%s: empty error body", tc.name)
		}
	}
}
