package compute

// Ordered reductions for per-chunk partial results. Both helpers combine
// in a fixed pairwise-tree shape that depends only on len(parts), so a
// chunked accumulation (ForChunks + scratch per chunk + Reduce*) is
// bit-identical across runs at a fixed parallelism degree. With a single
// chunk they return the partial untouched — the serial result, unchanged.
//
// The tree shape also bounds the reduction's rounding error at O(log c)
// accumulated ulps instead of the O(c) of a left fold, which keeps
// chunked sums close to the serial ones as the degree grows.

// ReduceFloats sums per-chunk scalar partials with an ordered pairwise
// tree: parts is folded as (((p0+p1)+(p2+p3))+…), halving adjacent pairs
// until one value remains. parts is clobbered.
func ReduceFloats(parts []float64) float64 {
	if len(parts) == 0 {
		return 0
	}
	for n := len(parts); n > 1; n = (n + 1) / 2 {
		for i := 0; i < n/2; i++ {
			parts[i] = parts[2*i] + parts[2*i+1]
		}
		if n%2 == 1 {
			parts[n/2] = parts[n-1]
		}
	}
	return parts[0]
}

// ReduceVecs folds per-chunk vector partials element-wise with the same
// pairwise tree as ReduceFloats and returns the result (aliasing
// parts[0], which is overwritten; the other partials are clobbered too).
// All partials must share a length. Large vectors are combined on the
// pool, chunked over the element index.
func ReduceVecs(parts [][]float64) []float64 {
	if len(parts) == 0 {
		return nil
	}
	if len(parts) == 1 {
		return parts[0]
	}
	dim := len(parts[0])
	for n := len(parts); n > 1; n = (n + 1) / 2 {
		half := n / 2
		// Each pairwise add is element-independent, so the element range
		// is chunked across the pool; the tree shape (and therefore the
		// result) does not depend on how the additions are scheduled.
		For(dim, 4096, func(lo, hi int) {
			for i := 0; i < half; i++ {
				dst, src := parts[2*i], parts[2*i+1]
				for j := lo; j < hi; j++ {
					dst[j] += src[j]
				}
			}
		})
		for i := 0; i < half; i++ {
			parts[i] = parts[2*i]
		}
		if n%2 == 1 {
			parts[half] = parts[n-1]
		}
	}
	return parts[0]
}
