// Package compute is the process-wide parallel execution layer: one
// bounded worker budget shared by every kernel in the repository (linalg
// matrix products, per-example gradient accumulation, statistics
// construction, sample-size probes, batched prediction). Layers above
// never spawn their own unbounded goroutines; they split work into
// deterministic chunks with For/ForChunks and the pool supplies at most
// Parallelism()−1 helper goroutines across the whole process, so a loaded
// server saturates the CPU instead of oversubscribing it.
//
// Determinism contract: the way a loop is chunked depends only on the
// loop bounds, the grain, and the configured parallelism degree — never
// on how many helpers happened to be free. Combined with the ordered
// reductions in this package, every computation is bit-identical across
// runs at a fixed parallelism degree, and at parallelism 1 every loop
// collapses to a single chunk executed in caller order (the exact serial
// semantics).
package compute

import (
	"expvar"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"blinkml/internal/obs"
)

// state is the immutable pool configuration; SetParallelism swaps the
// whole value atomically so in-flight loops keep a consistent view.
type state struct {
	degree int
	tokens chan struct{} // helper budget, capacity degree-1
}

var cur atomic.Pointer[state]

func init() {
	SetParallelism(0)
}

// SetParallelism fixes the process-wide parallelism degree: the number of
// goroutines (including callers) that may execute pool work at once, and
// the degree the deterministic chunking is derived from. n <= 0 resets to
// runtime.GOMAXPROCS(0). It returns the degree actually installed.
//
// Loops already in flight keep the budget they started with; the new
// budget applies to subsequent loops.
func SetParallelism(n int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	s := &state{degree: n, tokens: make(chan struct{}, n-1)}
	for i := 0; i < n-1; i++ {
		s.tokens <- struct{}{}
	}
	cur.Store(s)
	metrics.parallelism.Set(int64(n))
	return n
}

// Parallelism returns the configured degree.
func Parallelism() int { return cur.Load().degree }

// Chunks returns the number of pieces For and ForChunks split n items
// into: at most Parallelism(), and never so many that a chunk would hold
// fewer than grain items (grain <= 0 is treated as 1). The result depends
// only on (n, grain, degree) — this is what makes chunked reductions
// deterministic at a fixed degree.
func Chunks(n, grain int) int {
	if n <= 0 {
		return 0
	}
	if grain < 1 {
		grain = 1
	}
	c := n / grain
	if c < 1 {
		c = 1
	}
	if p := Parallelism(); c > p {
		c = p
	}
	return c
}

// chunkBounds returns the half-open range of chunk i when n items are
// split into c balanced chunks.
func chunkBounds(n, c, i int) (lo, hi int) {
	return i * n / c, (i + 1) * n / c
}

// Run executes fn(0), …, fn(tasks−1) with the pool: the caller works
// through tasks alongside up to min(tasks, Parallelism())−1 helper
// goroutines drawn from the shared budget. If no helpers are free (other
// loops hold the budget) the caller runs everything itself — Run never
// blocks waiting for a token, so nested Run/For calls cannot deadlock.
// Tasks are claimed dynamically, so unequal task costs balance across
// workers; fn must not assume any particular task→goroutine assignment.
func Run(tasks int, fn func(task int)) {
	if tasks <= 0 {
		return
	}
	s := cur.Load()
	if tasks == 1 || s.degree == 1 {
		// Serial fast path still opens a ledger pool frame: the outermost
		// frame charges the caller's busy time to the owning job; nested
		// frames (a serial loop inside a parallel kernel) charge nothing.
		// Free (one atomic load) when no ledger is bound.
		frame := obs.EnterPool()
		for i := 0; i < tasks; i++ {
			fn(i)
		}
		frame.Exit(0)
		return
	}
	metrics.parallelCalls.Add(1)
	metrics.tasksRun.Add(int64(tasks))
	start := time.Now()
	defer func() {
		metrics.runLatency.Observe(float64(time.Since(start)) / float64(time.Millisecond))
	}()
	var next atomic.Int64
	work := func() int {
		n := 0
		for {
			i := int(next.Add(1)) - 1
			if i >= tasks {
				return n
			}
			fn(i)
			n++
		}
	}
	want := tasks - 1
	if want > s.degree-1 {
		want = s.degree - 1
	}
	// Helper goroutines inherit the caller's resource ledger so their work
	// is attributed to the same job; each helper charges its own busy time
	// and the tasks it executed count as steals.
	ledger := obs.BoundLedger()
	var wg sync.WaitGroup
acquire:
	for h := 0; h < want; h++ {
		select {
		case <-s.tokens:
			wg.Add(1)
			metrics.helpersSpawned.Add(1)
			metrics.helpersBusy.Add(1)
			go func() {
				defer func() {
					metrics.helpersBusy.Add(-1)
					s.tokens <- struct{}{}
					wg.Done()
				}()
				release := obs.BindLedger(ledger)
				frame := obs.EnterPool()
				n := work()
				frame.Exit(int64(n))
				release()
			}()
		default:
			break acquire // budget exhausted; the caller picks up the slack
		}
	}
	// The caller charges only its own work interval (not the wg.Wait), and
	// only at the outermost pool frame — nested Run calls don't double-bill.
	frame := obs.EnterPool()
	work()
	frame.Exit(0)
	wg.Wait()
}

// ForChunks splits [0, n) into Chunks(n, grain) contiguous balanced
// chunks and calls fn(chunk, lo, hi) for each, in parallel on the pool.
// It returns the chunk count so callers can pre-size per-chunk partial
// results for an ordered reduction (see Reduce*). At parallelism 1 (or
// when n/grain < 2) this is exactly one serial call fn(0, 0, n).
//
// Callers that allocate per-chunk partials BEFORE the loop must instead
// call Chunks once and pass the count to ForChunksN, so a concurrent
// SetParallelism cannot desynchronize the two.
func ForChunks(n, grain int, fn func(chunk, lo, hi int)) int {
	return ForChunksN(n, Chunks(n, grain), fn)
}

// ForChunksN is ForChunks with an explicit chunk count (normally obtained
// from Chunks). chunks is clamped to [1, n] for n > 0; n <= 0 runs
// nothing.
func ForChunksN(n, chunks int, fn func(chunk, lo, hi int)) int {
	if n <= 0 {
		return 0
	}
	if chunks < 1 {
		chunks = 1
	}
	if chunks > n {
		chunks = n
	}
	Run(chunks, func(i int) {
		lo, hi := chunkBounds(n, chunks, i)
		fn(i, lo, hi)
	})
	return chunks
}

// For runs fn over [0, n) in parallel contiguous chunks of at least grain
// items. Use it for loops whose iterations are independent (each output
// written by exactly one iteration); use ForChunks when per-chunk state
// must be reduced afterwards.
func For(n, grain int, fn func(lo, hi int)) {
	ForChunks(n, grain, func(_, lo, hi int) { fn(lo, hi) })
}

// Range is a half-open index interval.
type Range struct{ Lo, Hi int }

// TriangleRanges partitions [0, n) into at most Parallelism() contiguous
// ranges balanced for triangular loops where iteration i costs n−i (the
// upper-triangle Gram/SYRK pattern): every range carries roughly equal
// total cost. Deterministic in (n, degree); returns nil for n <= 0.
func TriangleRanges(n int) []Range {
	if n <= 0 {
		return nil
	}
	p := Parallelism()
	if p > n {
		p = n
	}
	total := n * (n + 1) / 2
	ranges := make([]Range, 0, p)
	lo, acc := 0, 0
	for c := 0; c < p && lo < n; c++ {
		target := (c + 1) * total / p
		hi := lo
		for hi < n && (acc < target || hi == lo) {
			acc += n - hi
			hi++
		}
		if c == p-1 {
			hi = n
		}
		ranges = append(ranges, Range{Lo: lo, Hi: hi})
		lo = hi
	}
	return ranges
}

// metrics are the pool's expvar gauges, published once under
// "blinkml_compute" (scraped together with the serve metrics at
// /metrics).
var metrics = func() struct {
	parallelism    *expvar.Int    // gauge: configured degree
	parallelCalls  *expvar.Int    // Run invocations that went parallel
	tasksRun       *expvar.Int    // tasks executed by parallel Run calls
	helpersSpawned *expvar.Int    // helper goroutines actually obtained
	helpersBusy    *expvar.Int    // gauge: helpers currently executing
	runLatency     *obs.Histogram // wall time of parallel Run calls (ms)
} {
	m := expvar.NewMap("blinkml_compute")
	newInt := func(name string) *expvar.Int {
		v := new(expvar.Int)
		m.Set(name, v)
		return v
	}
	h := obs.NewHistogram()
	m.Set("run_ms", h)
	return struct {
		parallelism    *expvar.Int
		parallelCalls  *expvar.Int
		tasksRun       *expvar.Int
		helpersSpawned *expvar.Int
		helpersBusy    *expvar.Int
		runLatency     *obs.Histogram
	}{
		parallelism:    newInt("parallelism"),
		parallelCalls:  newInt("parallel_calls"),
		tasksRun:       newInt("tasks_run"),
		helpersSpawned: newInt("helpers_spawned"),
		helpersBusy:    newInt("helpers_busy"),
		runLatency:     h,
	}
}()
