package compute

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// withParallelism runs fn under a fixed degree, restoring the previous
// one afterwards (the pool is process-wide state).
func withParallelism(t *testing.T, n int, fn func()) {
	t.Helper()
	prev := Parallelism()
	SetParallelism(n)
	defer SetParallelism(prev)
	fn()
}

// Every index in [0, n) must be visited exactly once, for chunked and
// degenerate shapes alike.
func TestForCoversEachIndexOnce(t *testing.T) {
	for _, p := range []int{1, 2, 7} {
		withParallelism(t, p, func() {
			for _, n := range []int{0, 1, 2, 3, 16, 1000, 1023} {
				counts := make([]int32, n)
				For(n, 3, func(lo, hi int) {
					if lo < 0 || hi > n || lo >= hi {
						t.Errorf("p=%d n=%d: bad chunk [%d,%d)", p, n, lo, hi)
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&counts[i], 1)
					}
				})
				for i, c := range counts {
					if c != 1 {
						t.Fatalf("p=%d n=%d: index %d visited %d times", p, n, i, c)
					}
				}
			}
		})
	}
}

func TestChunksRespectsGrainAndDegree(t *testing.T) {
	withParallelism(t, 4, func() {
		if c := Chunks(100, 10); c != 4 {
			t.Fatalf("Chunks(100,10)=%d, want 4 (degree cap)", c)
		}
		if c := Chunks(25, 10); c != 2 {
			t.Fatalf("Chunks(25,10)=%d, want 2 (grain floor)", c)
		}
		if c := Chunks(9, 10); c != 1 {
			t.Fatalf("Chunks(9,10)=%d, want 1", c)
		}
		if c := Chunks(0, 10); c != 0 {
			t.Fatalf("Chunks(0,10)=%d, want 0", c)
		}
	})
	withParallelism(t, 1, func() {
		if c := Chunks(1000, 1); c != 1 {
			t.Fatalf("Chunks at degree 1 = %d, want 1", c)
		}
	})
}

// At parallelism 1 every loop must run serially in the caller goroutine,
// in order.
func TestDegreeOneIsSerialInOrder(t *testing.T) {
	withParallelism(t, 1, func() {
		var seen []int
		Run(5, func(i int) { seen = append(seen, i) })
		for i, v := range seen {
			if v != i {
				t.Fatalf("out-of-order serial execution: %v", seen)
			}
		}
		if len(seen) != 5 {
			t.Fatalf("ran %d tasks, want 5", len(seen))
		}
	})
}

// Nested parallel loops must complete without deadlock even when the
// helper budget is exhausted by the outer level.
func TestNestedLoopsDoNotDeadlock(t *testing.T) {
	withParallelism(t, 2, func() {
		var total atomic.Int64
		Run(8, func(int) {
			For(100, 1, func(lo, hi int) {
				total.Add(int64(hi - lo))
			})
		})
		if total.Load() != 800 {
			t.Fatalf("total=%d, want 800", total.Load())
		}
	})
}

// Concurrent loops from many goroutines (the serve worker-pool pattern)
// must all complete and stay within budget. Run under -race in CI.
func TestConcurrentLoopsComplete(t *testing.T) {
	withParallelism(t, 4, func() {
		var wg sync.WaitGroup
		for j := 0; j < 8; j++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var sum atomic.Int64
				For(1000, 10, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						sum.Add(int64(i))
					}
				})
				if sum.Load() != 999*1000/2 {
					t.Errorf("sum=%d", sum.Load())
				}
			}()
		}
		wg.Wait()
	})
}

// The chunk decomposition must depend only on (n, grain, degree): two
// identical ForChunks calls see identical chunk boundaries.
func TestChunkingDeterministic(t *testing.T) {
	withParallelism(t, 3, func() {
		shape := func() []int {
			var mu sync.Mutex
			var bounds []int
			ForChunks(1000, 1, func(chunk, lo, hi int) {
				mu.Lock()
				bounds = append(bounds, chunk, lo, hi)
				mu.Unlock()
			})
			return bounds
		}
		a, b := shape(), shape()
		if len(a) != len(b) {
			t.Fatalf("chunk count changed: %d vs %d", len(a)/3, len(b)/3)
		}
		seen := map[int]bool{}
		for i := 0; i < len(a); i += 3 {
			seen[a[i]] = true
		}
		if len(seen) != len(a)/3 {
			t.Fatalf("duplicate chunk ids: %v", a)
		}
	})
}

func TestReduceFloatsMatchesOrderedTree(t *testing.T) {
	if got := ReduceFloats(nil); got != 0 {
		t.Fatalf("empty reduce = %v", got)
	}
	if got := ReduceFloats([]float64{3.5}); got != 3.5 {
		t.Fatalf("single reduce = %v", got)
	}
	// (((1+2)+(3+4))+5)
	if got := ReduceFloats([]float64{1, 2, 3, 4, 5}); got != ((1+2)+(3+4))+5 {
		t.Fatalf("tree reduce = %v", got)
	}
}

func TestReduceVecsMatchesScalarTree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, c := range []int{1, 2, 3, 5, 8} {
		parts := make([][]float64, c)
		scalars := make([][]float64, 3) // per-element copies for ReduceFloats
		for e := range scalars {
			scalars[e] = make([]float64, c)
		}
		for i := range parts {
			parts[i] = make([]float64, 3)
			for e := range parts[i] {
				parts[i][e] = rng.NormFloat64()
				scalars[e][i] = parts[i][e]
			}
		}
		got := ReduceVecs(parts)
		for e := range got {
			want := ReduceFloats(scalars[e])
			if got[e] != want {
				t.Fatalf("c=%d elem %d: ReduceVecs=%v ReduceFloats=%v", c, e, got[e], want)
			}
		}
	}
}

// TriangleRanges must cover [0, n) exactly and balance the triangular
// cost to within a factor ~2 of ideal.
func TestTriangleRangesCoverAndBalance(t *testing.T) {
	withParallelism(t, 4, func() {
		for _, n := range []int{1, 2, 3, 4, 5, 64, 1000} {
			rs := TriangleRanges(n)
			if len(rs) == 0 || rs[0].Lo != 0 || rs[len(rs)-1].Hi != n {
				t.Fatalf("n=%d: ranges %v do not cover [0,%d)", n, rs, n)
			}
			total := n * (n + 1) / 2
			prev := 0
			for _, r := range rs {
				if r.Lo != prev || r.Hi <= r.Lo {
					t.Fatalf("n=%d: gap or empty range in %v", n, rs)
				}
				prev = r.Hi
				cost := 0
				for i := r.Lo; i < r.Hi; i++ {
					cost += n - i
				}
				if n >= 64 && cost > 2*total/len(rs)+n {
					t.Fatalf("n=%d: range %v cost %d too unbalanced (total %d over %d)", n, r, cost, total, len(rs))
				}
			}
		}
	})
}

func TestSetParallelismDefaults(t *testing.T) {
	prev := Parallelism()
	defer SetParallelism(prev)
	if got := SetParallelism(0); got < 1 {
		t.Fatalf("SetParallelism(0) = %d", got)
	}
	if got := SetParallelism(5); got != 5 || Parallelism() != 5 {
		t.Fatalf("SetParallelism(5) = %d, Parallelism() = %d", got, Parallelism())
	}
}
