package optimize

import (
	"math"

	"blinkml/internal/linalg"
)

// LBFGS minimizes p starting from x0 with the limited-memory BFGS method
// (two-loop recursion) and a strong-Wolfe line search. x0 is not modified.
func LBFGS(p Problem, x0 []float64, opt Options) (Result, error) {
	opt = opt.withDefaults()
	n := p.Dim()
	ec := &evalCounter{p: p, max: opt.MaxEvals}

	x := linalg.CopyVec(x0)
	g := make([]float64, n)
	f, err := ec.eval(x, g)
	if err != nil {
		return Result{X: x, F: f}, err
	}

	// History ring buffers for s_k = x_{k+1}-x_k and y_k = g_{k+1}-g_k.
	m := opt.Memory
	sHist := make([][]float64, 0, m)
	yHist := make([][]float64, 0, m)
	rhoHist := make([]float64, 0, m)

	dir := make([]float64, n)
	xNew := make([]float64, n)
	gNew := make([]float64, n)
	alpha := make([]float64, m)

	res := Result{X: x, F: f, GradNorm: linalg.NormInf(g)}
	for iter := 0; iter < opt.MaxIters; iter++ {
		if err := checkStop(opt, &res, ec); err != nil {
			return res, err
		}
		if res.GradNorm <= opt.GradTol {
			res.Converged = true
			res.Status = "gradient tolerance reached"
			break
		}

		// Two-loop recursion: dir = -H_k * g.
		copy(dir, g)
		k := len(sHist)
		for i := k - 1; i >= 0; i-- {
			alpha[i] = rhoHist[i] * linalg.Dot(sHist[i], dir)
			linalg.Axpy(-alpha[i], yHist[i], dir)
		}
		if k > 0 {
			// Initial Hessian scaling gamma = sᵀy / yᵀy.
			last := k - 1
			gamma := linalg.Dot(sHist[last], yHist[last]) / linalg.Dot(yHist[last], yHist[last])
			if gamma > 0 && !math.IsInf(gamma, 0) {
				linalg.Scale(gamma, dir)
			}
		}
		for i := 0; i < k; i++ {
			beta := rhoHist[i] * linalg.Dot(yHist[i], dir)
			linalg.Axpy(alpha[i]-beta, sHist[i], dir)
		}
		linalg.Scale(-1, dir)

		stepInit := opt.StepInit
		if iter == 0 {
			// Conservative first step: unit direction.
			if nrm := linalg.Norm2(dir); nrm > 1 {
				stepInit = 1 / nrm
			}
		}
		t, fNew, lsErr := lineSearchWolfe(ec, x, dir, f, g, stepInit, xNew, gNew)
		if lsErr != nil {
			// Restart with steepest descent once; if that also fails, stop.
			copy(dir, g)
			linalg.Scale(-1, dir)
			sHist, yHist, rhoHist = sHist[:0], yHist[:0], rhoHist[:0]
			t, fNew, lsErr = lineSearchWolfe(ec, x, dir, f, g, 1/math.Max(1, linalg.Norm2(g)), xNew, gNew)
			if lsErr != nil {
				res.Status = "line search failed"
				break
			}
		}

		s := make([]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			s[i] = xNew[i] - x[i]
			y[i] = gNew[i] - g[i]
		}
		sy := linalg.Dot(s, y)
		if sy > 1e-12*linalg.Norm2(s)*linalg.Norm2(y) {
			if len(sHist) == m {
				sHist = sHist[1:]
				yHist = yHist[1:]
				rhoHist = rhoHist[1:]
			}
			sHist = append(sHist, s)
			yHist = append(yHist, y)
			rhoHist = append(rhoHist, 1/sy)
		}

		fPrev := f
		copy(x, xNew)
		copy(g, gNew)
		f = fNew
		res.Iters = iter + 1
		res.F = f
		res.GradNorm = linalg.NormInf(g)
		if opt.OnIterate != nil {
			opt.OnIterate(res.Iters, f, res.GradNorm)
		}
		if math.Abs(fPrev-f) <= opt.FtolRel*(math.Abs(fPrev)+1e-30) && t > 0 {
			res.Converged = true
			res.Status = "objective decrease below tolerance"
			break
		}
	}
	if res.Status == "" {
		if res.GradNorm <= opt.GradTol {
			res.Converged = true
			res.Status = "gradient tolerance reached"
		} else {
			res.Status = "iteration limit reached"
		}
	}
	res.X = x
	res.FuncEvals = ec.count
	return res, nil
}

// BFGS minimizes p with the full dense BFGS update. Suitable for
// low-dimensional problems (the paper uses BFGS when d < 100). x0 is not
// modified.
func BFGS(p Problem, x0 []float64, opt Options) (Result, error) {
	opt = opt.withDefaults()
	n := p.Dim()
	ec := &evalCounter{p: p, max: opt.MaxEvals}

	x := linalg.CopyVec(x0)
	g := make([]float64, n)
	f, err := ec.eval(x, g)
	if err != nil {
		return Result{X: x, F: f}, err
	}

	hInv := linalg.Identity(n) // inverse Hessian approximation
	dir := make([]float64, n)
	xNew := make([]float64, n)
	gNew := make([]float64, n)
	s := make([]float64, n)
	y := make([]float64, n)
	hy := make([]float64, n)

	res := Result{X: x, F: f, GradNorm: linalg.NormInf(g)}
	for iter := 0; iter < opt.MaxIters; iter++ {
		if err := checkStop(opt, &res, ec); err != nil {
			return res, err
		}
		if res.GradNorm <= opt.GradTol {
			res.Converged = true
			res.Status = "gradient tolerance reached"
			break
		}
		hInv.MulVec(g, dir)
		linalg.Scale(-1, dir)

		stepInit := opt.StepInit
		if iter == 0 {
			if nrm := linalg.Norm2(dir); nrm > 1 {
				stepInit = 1 / nrm
			}
		}
		t, fNew, lsErr := lineSearchWolfe(ec, x, dir, f, g, stepInit, xNew, gNew)
		if lsErr != nil {
			// Reset curvature and retry along steepest descent.
			hInv = linalg.Identity(n)
			copy(dir, g)
			linalg.Scale(-1, dir)
			t, fNew, lsErr = lineSearchWolfe(ec, x, dir, f, g, 1/math.Max(1, linalg.Norm2(g)), xNew, gNew)
			if lsErr != nil {
				res.Status = "line search failed"
				break
			}
		}

		for i := 0; i < n; i++ {
			s[i] = xNew[i] - x[i]
			y[i] = gNew[i] - g[i]
		}
		sy := linalg.Dot(s, y)
		if sy > 1e-12*linalg.Norm2(s)*linalg.Norm2(y) {
			// BFGS inverse update:
			// H ← (I - ρ s yᵀ) H (I - ρ y sᵀ) + ρ s sᵀ, ρ = 1/sᵀy.
			rho := 1 / sy
			hInv.MulVec(y, hy)
			yHy := linalg.Dot(y, hy)
			// H ← H - ρ (s (Hy)ᵀ + (Hy) sᵀ) + ρ² yᵀHy s sᵀ + ρ s sᵀ
			hInv.OuterAdd(-rho, s, hy)
			hInv.OuterAdd(-rho, hy, s)
			hInv.OuterAdd(rho*rho*yHy+rho, s, s)
		}

		fPrev := f
		copy(x, xNew)
		copy(g, gNew)
		f = fNew
		res.Iters = iter + 1
		res.F = f
		res.GradNorm = linalg.NormInf(g)
		if opt.OnIterate != nil {
			opt.OnIterate(res.Iters, f, res.GradNorm)
		}
		if math.Abs(fPrev-f) <= opt.FtolRel*(math.Abs(fPrev)+1e-30) && t > 0 {
			res.Converged = true
			res.Status = "objective decrease below tolerance"
			break
		}
	}
	if res.Status == "" {
		if res.GradNorm <= opt.GradTol {
			res.Converged = true
			res.Status = "gradient tolerance reached"
		} else {
			res.Status = "iteration limit reached"
		}
	}
	res.X = x
	res.FuncEvals = ec.count
	return res, nil
}

// GradientDescent is a fixed-shrinkage backtracking gradient method used as
// a slow-but-simple oracle in tests.
func GradientDescent(p Problem, x0 []float64, opt Options) (Result, error) {
	opt = opt.withDefaults()
	n := p.Dim()
	ec := &evalCounter{p: p, max: opt.MaxEvals}
	x := linalg.CopyVec(x0)
	g := make([]float64, n)
	f, err := ec.eval(x, g)
	if err != nil {
		return Result{X: x, F: f}, err
	}
	xNew := make([]float64, n)
	gNew := make([]float64, n)
	res := Result{X: x, F: f, GradNorm: linalg.NormInf(g)}
	for iter := 0; iter < opt.MaxIters; iter++ {
		if err := checkStop(opt, &res, ec); err != nil {
			return res, err
		}
		if res.GradNorm <= opt.GradTol {
			res.Converged = true
			res.Status = "gradient tolerance reached"
			break
		}
		t := opt.StepInit
		accepted := false
		for back := 0; back < 60; back++ {
			for i := range x {
				xNew[i] = x[i] - t*g[i]
			}
			fNew, err := ec.eval(xNew, gNew)
			if err != nil {
				res.X, res.FuncEvals = x, ec.count
				return res, err
			}
			if fNew < f-wolfeC1*t*linalg.Dot(g, g) {
				f = fNew
				copy(x, xNew)
				copy(g, gNew)
				accepted = true
				break
			}
			t /= 2
		}
		if !accepted {
			res.Status = "backtracking stalled"
			break
		}
		res.Iters = iter + 1
		res.F = f
		res.GradNorm = linalg.NormInf(g)
	}
	if res.Status == "" {
		if res.GradNorm <= opt.GradTol {
			res.Converged = true
			res.Status = "gradient tolerance reached"
		} else {
			res.Status = "iteration limit reached"
		}
	}
	res.X = x
	res.FuncEvals = ec.count
	return res, nil
}

// checkStop polls opt.Stop and, on a non-nil error, finalizes res so the
// caller can return the best iterate found so far alongside the error.
func checkStop(opt Options, res *Result, ec *evalCounter) error {
	if opt.Stop == nil {
		return nil
	}
	err := opt.Stop()
	if err != nil {
		res.FuncEvals = ec.count
		res.Status = "stopped: " + err.Error()
	}
	return err
}

// Minimize picks the solver the paper's setup prescribes: BFGS when the
// problem dimension is below 100, L-BFGS otherwise (§5.1).
func Minimize(p Problem, x0 []float64, opt Options) (Result, error) {
	if p.Dim() < 100 {
		return BFGS(p, x0, opt)
	}
	return LBFGS(p, x0, opt)
}
