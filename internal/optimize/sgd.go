package optimize

import (
	"errors"
	"math"
	"math/rand"

	"blinkml/internal/linalg"
)

// StochasticProblem is an objective decomposable over examples, for
// minibatch methods. EvalBatch evaluates the mean loss and gradient over
// the given example indices (plus any regularizer).
type StochasticProblem interface {
	Dim() int
	NumExamples() int
	EvalBatch(x []float64, idx []int, grad []float64) float64
}

// SGDOptions configures the stochastic optimizers. Zero values pick the
// defaults noted per field.
type SGDOptions struct {
	BatchSize    int     // default 64
	Epochs       int     // default 10
	LearningRate float64 // default 0.1 (SGD) / 0.001 (Adam)
	Momentum     float64 // SGD only; default 0.9
	Beta1, Beta2 float64 // Adam; defaults 0.9, 0.999
	Epsilon      float64 // Adam; default 1e-8
	Seed         int64
}

func (o SGDOptions) withDefaults(adam bool) SGDOptions {
	if o.BatchSize <= 0 {
		o.BatchSize = 64
	}
	if o.Epochs <= 0 {
		o.Epochs = 10
	}
	if o.LearningRate <= 0 {
		if adam {
			o.LearningRate = 0.001
		} else {
			o.LearningRate = 0.1
		}
	}
	if o.Momentum <= 0 {
		o.Momentum = 0.9
	}
	if o.Beta1 <= 0 {
		o.Beta1 = 0.9
	}
	if o.Beta2 <= 0 {
		o.Beta2 = 0.999
	}
	if o.Epsilon <= 0 {
		o.Epsilon = 1e-8
	}
	return o
}

// SGD minimizes p with minibatch stochastic gradient descent plus
// momentum. It exists as the baseline the related-work discussion compares
// quasi-Newton training against (the paper trains with BFGS/L-BFGS; see
// the ablation benchmarks). Returns the final iterate; convergence is not
// certified.
func SGD(p StochasticProblem, x0 []float64, opt SGDOptions) (Result, error) {
	opt = opt.withDefaults(false)
	n := p.NumExamples()
	if n == 0 {
		return Result{}, errors.New("optimize: SGD on empty problem")
	}
	d := p.Dim()
	x := linalg.CopyVec(x0)
	vel := make([]float64, d)
	grad := make([]float64, d)
	rng := rand.New(rand.NewSource(opt.Seed))
	perm := rng.Perm(n)
	evals := 0
	var lastF float64
	for epoch := 0; epoch < opt.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		// Step-size decay 1/sqrt(epoch) keeps late epochs stable.
		lr := opt.LearningRate / math.Sqrt(float64(epoch+1))
		for lo := 0; lo < n; lo += opt.BatchSize {
			hi := lo + opt.BatchSize
			if hi > n {
				hi = n
			}
			lastF = p.EvalBatch(x, perm[lo:hi], grad)
			evals++
			for i := 0; i < d; i++ {
				vel[i] = opt.Momentum*vel[i] - lr*grad[i]
				x[i] += vel[i]
			}
		}
	}
	if !linalg.AllFinite(x) {
		return Result{X: x}, errors.New("optimize: SGD diverged (non-finite parameters); lower the learning rate")
	}
	return Result{X: x, F: lastF, Iters: opt.Epochs, FuncEvals: evals, Converged: true, Status: "epoch budget exhausted"}, nil
}

// Adam minimizes p with the Adam update rule (adaptive per-coordinate
// step sizes), included alongside SGD as a standard stochastic baseline.
func Adam(p StochasticProblem, x0 []float64, opt SGDOptions) (Result, error) {
	opt = opt.withDefaults(true)
	n := p.NumExamples()
	if n == 0 {
		return Result{}, errors.New("optimize: Adam on empty problem")
	}
	d := p.Dim()
	x := linalg.CopyVec(x0)
	m := make([]float64, d)
	v := make([]float64, d)
	grad := make([]float64, d)
	rng := rand.New(rand.NewSource(opt.Seed))
	perm := rng.Perm(n)
	evals, step := 0, 0
	var lastF float64
	for epoch := 0; epoch < opt.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		for lo := 0; lo < n; lo += opt.BatchSize {
			hi := lo + opt.BatchSize
			if hi > n {
				hi = n
			}
			lastF = p.EvalBatch(x, perm[lo:hi], grad)
			evals++
			step++
			c1 := 1 - math.Pow(opt.Beta1, float64(step))
			c2 := 1 - math.Pow(opt.Beta2, float64(step))
			for i := 0; i < d; i++ {
				m[i] = opt.Beta1*m[i] + (1-opt.Beta1)*grad[i]
				v[i] = opt.Beta2*v[i] + (1-opt.Beta2)*grad[i]*grad[i]
				x[i] -= opt.LearningRate * (m[i] / c1) / (math.Sqrt(v[i]/c2) + opt.Epsilon)
			}
		}
	}
	if !linalg.AllFinite(x) {
		return Result{X: x}, errors.New("optimize: Adam diverged (non-finite parameters)")
	}
	return Result{X: x, F: lastF, Iters: opt.Epochs, FuncEvals: evals, Converged: true, Status: "epoch budget exhausted"}, nil
}
