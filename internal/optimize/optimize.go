// Package optimize implements the unconstrained smooth minimizers BlinkML
// trains with: BFGS for low-dimensional problems (d < 100, as in the
// paper's §5.1 setup) and limited-memory L-BFGS for high-dimensional ones,
// both driven by a strong-Wolfe line search. Plain gradient descent is
// included as a test oracle.
package optimize

import (
	"errors"
	"fmt"
	"math"

	"blinkml/internal/linalg"
)

// Problem is a smooth objective. Eval must write the gradient at x into
// grad (len == Dim) and return the objective value.
type Problem interface {
	Dim() int
	Eval(x, grad []float64) float64
}

// FuncProblem adapts a closure to the Problem interface.
type FuncProblem struct {
	N int
	F func(x, grad []float64) float64
}

// Dim implements Problem.
func (p FuncProblem) Dim() int { return p.N }

// Eval implements Problem.
func (p FuncProblem) Eval(x, grad []float64) float64 { return p.F(x, grad) }

// Options configures a solver run. The zero value is usable: it picks the
// defaults below.
type Options struct {
	MaxIters  int     // default 200
	GradTol   float64 // stop when ‖grad‖∞ <= GradTol; default 1e-6
	Memory    int     // L-BFGS history pairs; default 10
	StepInit  float64 // first trial step of each line search; default 1
	MaxEvals  int     // cap on objective evaluations; default 10*MaxIters
	FtolRel   float64 // stop when relative objective decrease < FtolRel; default 1e-12
	OnIterate func(iter int, f float64, gradNorm float64)
	// Stop, when non-nil, is polled once per iteration; a non-nil return
	// aborts the solve immediately with that error. This is how context
	// cancellation reaches the inner loops: a killed training job stops
	// burning CPU at the next iteration boundary.
	Stop func() error
}

func (o Options) withDefaults() Options {
	if o.MaxIters <= 0 {
		o.MaxIters = 200
	}
	if o.GradTol <= 0 {
		o.GradTol = 1e-6
	}
	if o.Memory <= 0 {
		o.Memory = 10
	}
	if o.StepInit <= 0 {
		o.StepInit = 1
	}
	if o.MaxEvals <= 0 {
		o.MaxEvals = 10 * o.MaxIters
	}
	if o.FtolRel <= 0 {
		o.FtolRel = 1e-12
	}
	return o
}

// Result reports the outcome of a solver run.
type Result struct {
	X         []float64
	F         float64
	GradNorm  float64 // infinity norm at X
	Iters     int
	FuncEvals int
	Converged bool
	Status    string
}

// ErrLineSearch is returned when the Wolfe line search cannot make progress
// (typically a non-descent direction from numerical breakdown).
var ErrLineSearch = errors.New("optimize: line search failed to find an acceptable step")

// evalCounter wraps a Problem to count evaluations and enforce MaxEvals.
type evalCounter struct {
	p     Problem
	count int
	max   int
}

func (e *evalCounter) eval(x, grad []float64) (float64, error) {
	if e.count >= e.max {
		return math.NaN(), fmt.Errorf("optimize: exceeded %d objective evaluations", e.max)
	}
	e.count++
	return e.p.Eval(x, grad), nil
}

const (
	wolfeC1 = 1e-4
	wolfeC2 = 0.9
)

// lineSearchWolfe finds a step t along direction p from x satisfying the
// strong Wolfe conditions (Nocedal & Wright, Algorithm 3.5/3.6). It returns
// the accepted step together with the objective and gradient at the new
// point (written into fNew/gNew).
func lineSearchWolfe(ec *evalCounter, x, p []float64, f0 float64, g0 []float64, t0 float64, xNew, gNew []float64) (float64, float64, error) {
	d0 := linalg.Dot(g0, p)
	if d0 >= 0 {
		return 0, f0, ErrLineSearch
	}
	evalAt := func(t float64) (float64, float64, error) {
		for i := range x {
			xNew[i] = x[i] + t*p[i]
		}
		f, err := ec.eval(xNew, gNew)
		if err != nil {
			return 0, 0, err
		}
		return f, linalg.Dot(gNew, p), nil
	}

	var tPrev, fPrev float64 = 0, f0
	t := t0
	const maxBracket = 30
	for iter := 0; iter < maxBracket; iter++ {
		f, d, err := evalAt(t)
		if err != nil {
			return 0, f0, err
		}
		if math.IsNaN(f) || math.IsInf(f, 0) {
			// Step overshot into a non-finite region; shrink hard.
			t /= 10
			continue
		}
		if f > f0+wolfeC1*t*d0 || (iter > 0 && f >= fPrev) {
			return zoomWolfe(ec, x, p, f0, d0, tPrev, fPrev, t, f, xNew, gNew)
		}
		if math.Abs(d) <= -wolfeC2*d0 {
			return t, f, nil
		}
		if d >= 0 {
			return zoomWolfe(ec, x, p, f0, d0, t, f, tPrev, fPrev, xNew, gNew)
		}
		tPrev, fPrev = t, f
		t *= 2
	}
	return 0, f0, ErrLineSearch
}

// zoomWolfe refines a bracketing interval [lo, hi] until a strong-Wolfe
// point is found (Nocedal & Wright, Algorithm 3.6, bisection variant).
func zoomWolfe(ec *evalCounter, x, p []float64, f0, d0, tLo, fLo, tHi, fHi float64, xNew, gNew []float64) (float64, float64, error) {
	const maxZoom = 40
	for iter := 0; iter < maxZoom; iter++ {
		t := (tLo + tHi) / 2
		for i := range x {
			xNew[i] = x[i] + t*p[i]
		}
		f, err := ec.eval(xNew, gNew)
		if err != nil {
			return 0, f0, err
		}
		d := linalg.Dot(gNew, p)
		if f > f0+wolfeC1*t*d0 || f >= fLo {
			tHi, fHi = t, f
		} else {
			if math.Abs(d) <= -wolfeC2*d0 {
				return t, f, nil
			}
			if d*(tHi-tLo) >= 0 {
				tHi, fHi = tLo, fLo
			}
			tLo, fLo = t, f
		}
		if math.Abs(tHi-tLo) < 1e-16*(1+math.Abs(tLo)) {
			// Interval collapsed; accept lo if it at least decreases f.
			if fLo < f0 {
				for i := range x {
					xNew[i] = x[i] + tLo*p[i]
				}
				fAccept, err := ec.eval(xNew, gNew)
				if err != nil {
					return 0, f0, err
				}
				return tLo, fAccept, nil
			}
			return 0, f0, ErrLineSearch
		}
	}
	if fLo < f0 {
		for i := range x {
			xNew[i] = x[i] + tLo*p[i]
		}
		fAccept, err := ec.eval(xNew, gNew)
		if err != nil {
			return 0, f0, err
		}
		return tLo, fAccept, nil
	}
	return 0, f0, ErrLineSearch
}
