package optimize

import (
	"math"
	"math/rand"
	"testing"

	"blinkml/internal/linalg"
)

// leastSquares is a simple stochastic problem: ½ mean (aᵢᵀx − bᵢ)².
type leastSquares struct {
	a *linalg.Dense
	b []float64
}

func (p *leastSquares) Dim() int         { return p.a.Cols }
func (p *leastSquares) NumExamples() int { return p.a.Rows }
func (p *leastSquares) EvalBatch(x []float64, idx []int, grad []float64) float64 {
	linalg.Fill(grad, 0)
	var f float64
	for _, i := range idx {
		row := p.a.Row(i)
		r := linalg.Dot(row, x) - p.b[i]
		f += 0.5 * r * r
		linalg.Axpy(r, row, grad)
	}
	inv := 1 / float64(len(idx))
	linalg.Scale(inv, grad)
	return f * inv
}

func newLeastSquares(seed int64, n, d int) (*leastSquares, []float64) {
	rng := rand.New(rand.NewSource(seed))
	a := linalg.NewDense(n, d)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	truth := make([]float64, d)
	for i := range truth {
		truth[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	a.MulVec(truth, b)
	return &leastSquares{a: a, b: b}, truth
}

func TestSGDConvergesOnLeastSquares(t *testing.T) {
	p, truth := newLeastSquares(1, 2000, 6)
	res, err := SGD(p, make([]float64, 6), SGDOptions{Epochs: 40, LearningRate: 0.05, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth {
		if math.Abs(res.X[i]-truth[i]) > 0.05 {
			t.Fatalf("SGD x[%d]=%v want %v", i, res.X[i], truth[i])
		}
	}
}

func TestAdamConvergesOnLeastSquares(t *testing.T) {
	p, truth := newLeastSquares(3, 2000, 6)
	res, err := Adam(p, make([]float64, 6), SGDOptions{Epochs: 60, LearningRate: 0.05, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth {
		if math.Abs(res.X[i]-truth[i]) > 0.05 {
			t.Fatalf("Adam x[%d]=%v want %v", i, res.X[i], truth[i])
		}
	}
}

func TestSGDDivergenceDetected(t *testing.T) {
	p, _ := newLeastSquares(5, 500, 4)
	if _, err := SGD(p, make([]float64, 4), SGDOptions{Epochs: 30, LearningRate: 1e6, Momentum: 0.99, Seed: 6}); err == nil {
		t.Fatal("divergence not reported")
	}
}

func TestSGDEmptyProblem(t *testing.T) {
	p := &leastSquares{a: linalg.NewDense(0, 3), b: nil}
	if _, err := SGD(p, make([]float64, 3), SGDOptions{}); err == nil {
		t.Fatal("empty problem accepted")
	}
	if _, err := Adam(p, make([]float64, 3), SGDOptions{}); err == nil {
		t.Fatal("empty problem accepted by Adam")
	}
}

func TestSGDDeterministicGivenSeed(t *testing.T) {
	p, _ := newLeastSquares(7, 500, 4)
	r1, err := SGD(p, make([]float64, 4), SGDOptions{Epochs: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := SGD(p, make([]float64, 4), SGDOptions{Epochs: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.X {
		if r1.X[i] != r2.X[i] {
			t.Fatal("same seed gave different iterates")
		}
	}
}
