package optimize

import (
	"math"
	"math/rand"
	"testing"

	"blinkml/internal/linalg"
)

// quadratic returns the problem f(x) = ½ (x-c)ᵀ A (x-c) for SPD A.
func quadratic(a *linalg.Dense, c []float64) Problem {
	n := len(c)
	return FuncProblem{N: n, F: func(x, grad []float64) float64 {
		d := make([]float64, n)
		linalg.Sub(d, x, c)
		a.MulVec(d, grad)
		return 0.5 * linalg.Dot(d, grad)
	}}
}

func randomSPDProblem(seed int64, n int) (Problem, []float64) {
	rng := rand.New(rand.NewSource(seed))
	m := linalg.NewDense(n, n)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	a := linalg.MatMulTransA(m, m)
	a.AddDiag(1)
	c := make([]float64, n)
	for i := range c {
		c[i] = rng.NormFloat64() * 3
	}
	return quadratic(a, c), c
}

func solvers() map[string]func(Problem, []float64, Options) (Result, error) {
	return map[string]func(Problem, []float64, Options) (Result, error){
		"BFGS":  BFGS,
		"LBFGS": LBFGS,
	}
}

func TestSolversOnQuadratic(t *testing.T) {
	for name, solve := range solvers() {
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 5; seed++ {
				p, c := randomSPDProblem(seed, 8)
				res, err := solve(p, make([]float64, 8), Options{GradTol: 1e-9})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if !res.Converged {
					t.Fatalf("seed %d: did not converge: %s", seed, res.Status)
				}
				for i := range c {
					if math.Abs(res.X[i]-c[i]) > 1e-5 {
						t.Fatalf("seed %d: x[%d]=%v want %v", seed, i, res.X[i], c[i])
					}
				}
			}
		})
	}
}

// rosenbrock is the classic banana function: a narrow curved valley that
// breaks naive line searches.
func rosenbrock(n int) Problem {
	return FuncProblem{N: n, F: func(x, grad []float64) float64 {
		var f float64
		for i := range grad {
			grad[i] = 0
		}
		for i := 0; i < n-1; i++ {
			t1 := x[i+1] - x[i]*x[i]
			t2 := 1 - x[i]
			f += 100*t1*t1 + t2*t2
			grad[i] += -400*x[i]*t1 - 2*t2
			grad[i+1] += 200 * t1
		}
		return f
	}}
}

func TestSolversOnRosenbrock(t *testing.T) {
	for name, solve := range solvers() {
		t.Run(name, func(t *testing.T) {
			p := rosenbrock(4)
			x0 := []float64{-1.2, 1, -1.2, 1}
			res, err := solve(p, x0, Options{MaxIters: 2000, GradTol: 1e-8})
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range res.X {
				if math.Abs(v-1) > 1e-4 {
					t.Fatalf("x[%d]=%v want 1 (status %q, f=%v)", i, v, res.Status, res.F)
				}
			}
		})
	}
}

func TestLBFGSMatchesBFGSOnSmallProblem(t *testing.T) {
	p, _ := randomSPDProblem(11, 12)
	x0 := make([]float64, 12)
	r1, err := BFGS(p, x0, Options{GradTol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := LBFGS(p, x0, Options{GradTol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.X {
		if math.Abs(r1.X[i]-r2.X[i]) > 1e-5 {
			t.Fatalf("solution mismatch at %d: %v vs %v", i, r1.X[i], r2.X[i])
		}
	}
}

func TestGradientDescentOnQuadratic(t *testing.T) {
	p, c := randomSPDProblem(3, 4)
	res, err := GradientDescent(p, make([]float64, 4), Options{MaxIters: 5000, GradTol: 1e-7, StepInit: 0.5, MaxEvals: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := range c {
		if math.Abs(res.X[i]-c[i]) > 1e-4 {
			t.Fatalf("GD x[%d]=%v want %v", i, res.X[i], c[i])
		}
	}
}

func TestMinimizeSelectsSolverByDimension(t *testing.T) {
	// Just verify both paths run; the dispatch is by Dim() < 100.
	small, _ := randomSPDProblem(5, 3)
	if _, err := Minimize(small, make([]float64, 3), Options{}); err != nil {
		t.Fatal(err)
	}
	big := FuncProblem{N: 150, F: func(x, grad []float64) float64 {
		var f float64
		for i := range x {
			grad[i] = 2 * (x[i] - 1)
			f += (x[i] - 1) * (x[i] - 1)
		}
		return f
	}}
	res, err := Minimize(big, make([]float64, 150), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[77]-1) > 1e-5 {
		t.Fatalf("high-dim minimize failed: %v", res.X[77])
	}
}

func TestMaxEvalsEnforced(t *testing.T) {
	calls := 0
	p := FuncProblem{N: 2, F: func(x, grad []float64) float64 {
		calls++
		grad[0], grad[1] = 2*x[0], 2*x[1]
		return x[0]*x[0] + x[1]*x[1]
	}}
	_, _ = LBFGS(p, []float64{100, 100}, Options{MaxIters: 10000, MaxEvals: 7, GradTol: 0})
	if calls > 7 {
		t.Fatalf("MaxEvals violated: %d calls", calls)
	}
}

func TestOnIterateCallback(t *testing.T) {
	p, _ := randomSPDProblem(1, 4)
	seen := 0
	_, err := BFGS(p, make([]float64, 4), Options{OnIterate: func(iter int, f, g float64) { seen++ }})
	if err != nil {
		t.Fatal(err)
	}
	if seen == 0 {
		t.Fatal("OnIterate never called")
	}
}

func TestIterationCountReported(t *testing.T) {
	p, _ := randomSPDProblem(2, 6)
	res, err := LBFGS(p, make([]float64, 6), Options{GradTol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters <= 0 || res.FuncEvals < res.Iters {
		t.Fatalf("bad counters: iters=%d evals=%d", res.Iters, res.FuncEvals)
	}
}

// Non-convex but smooth objective with a known global structure: solvers
// must at least reach a stationary point.
func TestStationaryPointOnNonConvex(t *testing.T) {
	p := FuncProblem{N: 1, F: func(x, grad []float64) float64 {
		grad[0] = math.Cos(x[0]) + 0.2*x[0]
		return math.Sin(x[0]) + 0.1*x[0]*x[0]
	}}
	res, err := LBFGS(p, []float64{2}, Options{GradTol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if res.GradNorm > 1e-7 {
		t.Fatalf("not stationary: grad=%v", res.GradNorm)
	}
}

func TestStartingAtOptimum(t *testing.T) {
	p, c := randomSPDProblem(9, 5)
	res, err := BFGS(p, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iters != 0 {
		t.Fatalf("expected immediate convergence, got iters=%d status=%q", res.Iters, res.Status)
	}
}
