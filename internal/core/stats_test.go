package core

import (
	"math"
	"testing"

	"blinkml/internal/datagen"
	"blinkml/internal/dataset"
	"blinkml/internal/linalg"
	"blinkml/internal/models"
	"blinkml/internal/optimize"
	"blinkml/internal/stat"
)

func trainOn(t *testing.T, spec models.Spec, ds *dataset.Dataset) []float64 {
	t.Helper()
	res, err := models.Train(spec, ds, nil, optimize.Options{GradTol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	return res.Theta
}

func TestAlpha(t *testing.T) {
	if got := Alpha(100, 1000); math.Abs(got-(0.01-0.001)) > 1e-15 {
		t.Fatalf("Alpha=%v", got)
	}
	if Alpha(1000, 1000) != 0 || Alpha(2000, 1000) != 0 {
		t.Fatal("Alpha must clamp at n >= N")
	}
}

// All three statistics methods must produce (nearly) the same covariance
// H⁻¹JH⁻¹ on a low-dimensional logistic problem.
func TestStatisticsMethodsAgree(t *testing.T) {
	ds := datagen.Higgs(datagen.Config{Rows: 3000, Dim: 6, Seed: 1})
	spec := models.LogisticRegression{Reg: 0.01}
	theta := trainOn(t, spec, ds)

	covs := map[Method]*linalg.Dense{}
	for _, m := range []Method{ObservedFisher, InverseGradients, ClosedForm} {
		st, err := ComputeStatistics(spec, ds, theta, Options{Method: m, Epsilon: 0.1})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		covs[m] = Covariance(st.Factor)
	}
	ref := covs[ClosedForm]
	scale := ref.FrobeniusNorm()
	for _, m := range []Method{ObservedFisher, InverseGradients} {
		if d := linalg.FrobeniusDistance(covs[m], ref); d > 0.15*scale {
			t.Errorf("%v covariance deviates from ClosedForm by %v (ref norm %v)", m, d, scale)
		}
	}
}

// The Gram-side (d > n) and covariance-side (d <= n) ObservedFisher paths
// must agree on the same data.
func TestObservedFisherGramAndCovarianceSidesAgree(t *testing.T) {
	ds := datagen.Higgs(datagen.Config{Rows: 40, Dim: 8, Seed: 2}) // n=40 > d=8
	spec := models.LogisticRegression{Reg: 0.05}
	theta := trainOn(t, spec, ds)

	rows := models.PerExampleGradRows(spec, ds, theta)
	mean := make([]float64, len(theta))
	for _, r := range rows {
		r.AddTo(mean, 1)
	}
	linalg.Scale(1/float64(len(rows)), mean)

	opt := Options{Epsilon: 0.1}.withDefaults()
	covSide, err := fisherCovarianceSide(rows, mean, len(theta), len(rows), spec.Reg, opt)
	if err != nil {
		t.Fatal(err)
	}
	gramSide, err := fisherGramSide(rows, mean, len(theta), len(rows), spec.Reg, opt)
	if err != nil {
		t.Fatal(err)
	}
	c1 := Covariance(covSide.Factor)
	c2 := Covariance(gramSide.Factor)
	if d := linalg.FrobeniusDistance(c1, c2); d > 1e-6*(1+c1.FrobeniusNorm()) {
		t.Fatalf("Gram and covariance sides disagree by %v", d)
	}
}

// Factor identity: Covariance(f) == L·Lᵀ and Apply is linear.
func TestFactorApplyMatchesCovariance(t *testing.T) {
	ds := datagen.Gas(datagen.Config{Rows: 500, Dim: 5, Seed: 3})
	spec := models.LinearRegression{Reg: 0.01}
	theta := trainOn(t, spec, ds)
	st, err := ComputeStatistics(spec, ds, theta, Options{Epsilon: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	f := st.Factor
	cov := Covariance(f)
	// E[(Lz)(Lz)ᵀ] over unit vectors reconstructs covariance columns.
	z := make([]float64, f.Rank())
	out := make([]float64, f.Dim())
	acc := linalg.NewDense(f.Dim(), f.Dim())
	for j := 0; j < f.Rank(); j++ {
		z[j] = 1
		f.Apply(z, out)
		acc.OuterAdd(1, out, out)
		z[j] = 0
	}
	if d := linalg.FrobeniusDistance(acc, cov); d > 1e-8*(1+cov.FrobeniusNorm()) {
		t.Fatalf("sum of rank-1 applies deviates from covariance by %v", d)
	}
}

// Theorem 1, Monte-Carlo check: the empirical covariance of parameters
// trained on independent samples of size n must match α·H⁻¹JH⁻¹ within
// statistical tolerance.
func TestTheorem1ParameterCovariance(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo validation skipped in -short mode")
	}
	pool := datagen.Gas(datagen.Config{Rows: 30000, Dim: 4, Seed: 4})
	spec := models.LinearRegression{Reg: 0.001}
	n := 600
	trials := 50
	rng := stat.NewRNG(99)
	dim := 4
	thetas := make([][]float64, trials)
	for tr := 0; tr < trials; tr++ {
		idx := dataset.SampleWithoutReplacement(rng, pool.Len(), n)
		res, err := models.Train(spec, pool.Subset(idx), nil, optimize.Options{GradTol: 1e-10})
		if err != nil {
			t.Fatal(err)
		}
		thetas[tr] = res.Theta
	}
	// Empirical per-coordinate variance.
	empVar := make([]float64, dim)
	for j := 0; j < dim; j++ {
		col := make([]float64, trials)
		for tr := range thetas {
			col[tr] = thetas[tr][j]
		}
		empVar[j] = stat.Variance(col)
	}
	// Predicted: α·diag(H⁻¹JH⁻¹) with the statistics computed on one sample.
	idx := dataset.SampleWithoutReplacement(rng, pool.Len(), n)
	sample := pool.Subset(idx)
	theta := trainOn(t, spec, sample)
	st, err := ComputeStatistics(spec, sample, theta, Options{Epsilon: 0.1, Method: ClosedForm})
	if err != nil {
		t.Fatal(err)
	}
	cov := Covariance(st.Factor)
	alpha := Alpha(n, pool.Len())
	for j := 0; j < dim; j++ {
		pred := alpha * cov.At(j, j)
		ratio := pred / empVar[j]
		if ratio < 0.4 || ratio > 2.5 {
			t.Errorf("coordinate %d: predicted var %v, empirical %v (ratio %v)", j, pred, empVar[j], ratio)
		}
	}
}

func TestClosedFormRequiresHessianer(t *testing.T) {
	ds := datagen.MNIST(datagen.Config{Rows: 60, Dim: 16, Seed: 5})
	spec := models.NewPPCA(2)
	theta, _, err := spec.TrainCustom(ds)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ComputeStatistics(spec, ds, theta, Options{Method: ClosedForm, Epsilon: 0.1}); err != ErrNoHessian {
		t.Fatalf("want ErrNoHessian, got %v", err)
	}
}

// A singular Hessian (duplicated features, zero regularization) must not
// crash the ClosedForm path.
func TestStatsFromSingularHessian(t *testing.T) {
	ds := &dataset.Dataset{Dim: 2, Task: dataset.Regression, Name: "collinear"}
	for i := 0; i < 50; i++ {
		v := float64(i) / 10
		ds.X = append(ds.X, dataset.DenseRow{v, v}) // perfectly collinear
		ds.Y = append(ds.Y, 2*v)
	}
	spec := models.LinearRegression{Reg: 0}
	theta := []float64{1, 1}
	st, err := ComputeStatistics(spec, ds, theta, Options{Method: ClosedForm, Epsilon: 0.1})
	if err != nil {
		t.Fatalf("singular Hessian not handled: %v", err)
	}
	if st.Rank > 2 {
		t.Fatalf("rank %d impossible", st.Rank)
	}
}

func TestObservedFisherEmptySample(t *testing.T) {
	ds := &dataset.Dataset{Dim: 2, Task: dataset.Regression}
	if _, err := ComputeStatistics(models.LinearRegression{}, ds, []float64{0, 0}, Options{Epsilon: 0.1}); err == nil {
		t.Fatal("expected error on empty sample")
	}
}

func TestGradsCallCounts(t *testing.T) {
	ds := datagen.Higgs(datagen.Config{Rows: 200, Dim: 5, Seed: 6})
	spec := models.LogisticRegression{Reg: 0.01}
	theta := trainOn(t, spec, ds)
	of, err := ComputeStatistics(spec, ds, theta, Options{Method: ObservedFisher, Epsilon: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if of.GradsCalls != 1 {
		t.Fatalf("ObservedFisher grads calls = %d, want 1", of.GradsCalls)
	}
	ig, err := ComputeStatistics(spec, ds, theta, Options{Method: InverseGradients, Epsilon: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if ig.GradsCalls != 6 { // d+1
		t.Fatalf("InverseGradients grads calls = %d, want d+1=6", ig.GradsCalls)
	}
}
